//===- examples/jit_pipeline.cpp - Online use inside a JIT ------------------===//
//
// Shows the filter where it actually lives: inside a JIT's compilation
// pipeline.  Compiles the mpegaudio stand-in (the SPECjvm98 member that
// benefits most from scheduling) under the paper's three policies --
// never schedule, always schedule, and filtered -- and reports the
// efficiency/effectiveness trade-off for each.
//
// Run: ./build/examples/jit_pipeline
//
//===----------------------------------------------------------------------===//

#include "harness/Experiments.h"
#include "ml/Ripper.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace schedfilter;

int main() {
  MachineModel Model = MachineModel::ppc7410();

  // Train the filter on the six *other* SPECjvm98 benchmarks, exactly as
  // the paper's leave-one-out methodology prescribes: the JIT ships with
  // a filter that has never seen the program it is compiling.
  std::vector<BenchmarkSpec> Suite = specjvm98Suite();
  for (BenchmarkSpec &S : Suite)
    S.NumMethods = 60;
  std::vector<BenchmarkRun> Runs = generateSuiteData(Suite, Model);

  Dataset Train("train");
  const BenchmarkRun *Target = nullptr;
  for (size_t B = 0; B != Runs.size(); ++B) {
    if (Runs[B].Name == "mpegaudio") {
      Target = &Runs[B];
      continue;
    }
    Train.append(buildDataset(Runs[B].Records, /*ThresholdPct=*/0.0,
                              Runs[B].Name));
  }
  RuleSet Rules = Ripper().train(Train);
  std::cout << "filter trained on " << Train.size()
            << " blocks from the other benchmarks; " << Rules.size()
            << " rules\n\n";

  // Compile mpegaudio under the three policies.
  ScheduleFilter Filter(Rules);
  CompileReport NS = compileProgram(Target->Prog, Model,
                                    SchedulingPolicy::Never);
  CompileReport LS = compileProgram(Target->Prog, Model,
                                    SchedulingPolicy::Always);
  CompileReport LN = compileProgram(Target->Prog, Model,
                                    SchedulingPolicy::Filtered, &Filter);

  TablePrinter T({"Policy", "Blocks scheduled", "Sched work units",
                  "Sched wall (ms)", "App time vs NS"});
  auto Row = [&](const CompileReport &R) {
    T.addRow({getPolicyName(R.Policy),
              std::to_string(R.NumScheduled) + "/" +
                  std::to_string(R.NumBlocks),
              std::to_string(R.SchedulingWork),
              formatDouble(R.SchedulingSeconds * 1e3, 3),
              formatDouble(R.SimulatedTime / NS.SimulatedTime, 4)});
  };
  Row(NS);
  Row(LS);
  Row(LN);
  T.print(std::cout);

  double EffortSaved =
      100.0 * (1.0 - static_cast<double>(LN.SchedulingWork) /
                         static_cast<double>(LS.SchedulingWork));
  double BenefitKept = 100.0 * (NS.SimulatedTime - LN.SimulatedTime) /
                       (NS.SimulatedTime - LS.SimulatedTime);
  std::cout << "\nThe filter kept " << formatDouble(BenefitKept, 1)
            << "% of the scheduling benefit while avoiding "
            << formatDouble(EffortSaved, 1) << "% of the scheduling work.\n";
  return 0;
}
