//===- examples/visualize_schedule.cpp - Cycle-level before/after ----------===//
//
// Renders the simulator's cycle-by-cycle issue trace of one block before
// and after list scheduling, making the source of the speedup visible:
// the scheduler drags independent loads into the latency shadows of
// earlier instructions.  Also dumps the dependence graph edges.
//
// Run: ./build/examples/visualize_schedule
//
//===----------------------------------------------------------------------===//

#include "sched/ListScheduler.h"
#include "sim/BlockSimulator.h"
#include "workloads/ProgramGenerator.h"

#include <iostream>

using namespace schedfilter;

int main() {
  MachineModel Model = MachineModel::ppc7410();

  // A generated mpegaudio-style block with several statements of ILP.
  const BenchmarkSpec *Spec = findBenchmarkSpec("mpegaudio");
  Rng R(0x5EE);
  BasicBlock BB = ProgramGenerator(*Spec).generateBlock(
      R, /*NumStatements=*/4, /*EndWithTerminator=*/true);

  std::cout << "== Block (naive JIT emission order) ==\n"
            << BB.toString() << '\n';

  DependenceGraph Dag(BB, Model);
  std::cout << "== Dependence edges ==\n";
  static const char *KindNames[] = {"data",   "anti",    "output",
                                    "memory", "control", "hazard"};
  for (size_t I = 0; I != Dag.numNodes(); ++I)
    for (const DepEdge &E : Dag.succs(static_cast<int>(I)))
      std::cout << "  " << I << " -> " << E.To << "  ["
                << KindNames[static_cast<int>(E.Kind)] << ", latency "
                << E.Latency << "]\n";
  std::cout << '\n';

  BlockSimulator Sim(Model);
  std::vector<int> Naive = ListScheduler::identity(BB).Order;
  std::cout << "== Issue trace, unscheduled ==\n"
            << Sim.simulateWithTrace(BB, Naive).toString(BB, Model) << '\n';

  ListScheduler Sched(Model);
  ScheduleResult SR = Sched.schedule(BB, Dag);
  std::cout << "== Issue trace, after CPS list scheduling ==\n"
            << Sim.simulateWithTrace(BB, SR.Order).toString(BB, Model)
            << '\n';

  uint64_t Before = Sim.simulate(BB);
  uint64_t After = Sim.simulate(BB, SR.Order);
  std::cout << "scheduling saved "
            << (Before - After) << " of " << Before << " cycles ("
            << (100 * (Before - After) / Before) << "%)\n";
  return 0;
}
