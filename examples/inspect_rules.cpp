//===- examples/inspect_rules.cpp - Understanding an induced filter --------===//
//
// The paper argues that rule sets, unlike neural networks or genetic
// programs, are something a compiler writer can *read* (§4.6).  This
// example leans into that: it trains filters at several thresholds,
// prints them, explains the first rule in prose, and reports which
// features the rules actually use -- reproducing the paper's observation
// that block size and the call/system/load/store fractions carry most of
// the signal.
//
// Run: ./build/examples/inspect_rules
//
//===----------------------------------------------------------------------===//

#include "harness/Experiments.h"
#include "ml/Ripper.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <iostream>
#include <map>

using namespace schedfilter;

namespace {

void explainFirstRule(const RuleSet &RS) {
  if (RS.rules().empty()) {
    std::cout << "(no rules: the filter never schedules)\n";
    return;
  }
  const Rule &R = RS.rules().front();
  std::cout << "In prose, the first rule schedules a block when:";
  for (const Condition &C : R.Conditions) {
    std::cout << "\n  - ";
    if (C.Feature == FeatBBLen)
      std::cout << "it has " << (C.IsLessEqual ? "at most " : "at least ")
                << formatDouble(C.Threshold, 0) << " instructions";
    else
      std::cout << (C.IsLessEqual ? "at most " : "at least ")
                << formatPercent(C.Threshold, 1) << " of it is "
                << getFeatureName(C.Feature);
  }
  std::cout << "\nand it claimed " << R.NumCorrect << " blocks correctly ("
            << R.NumIncorrect << " incorrectly) in training.\n";
}

} // namespace

int main() {
  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkSpec> Suite = specjvm98Suite();
  for (BenchmarkSpec &S : Suite)
    S.NumMethods = 60;
  std::vector<BenchmarkRun> Runs = generateSuiteData(Suite, Model);

  std::map<std::string, size_t> FeatureUse;
  for (double T : {0.0, 20.0, 40.0}) {
    std::vector<Dataset> Labeled = labelSuite(Runs, T);
    Dataset All("all");
    for (const Dataset &D : Labeled)
      All.append(D);
    RuleSet RS = Ripper().train(All);

    std::cout << "== Filter induced at t = " << T << " ==\n"
              << RS.toString() << '\n';
    explainFirstRule(RS);
    std::cout << '\n';

    for (const Rule &R : RS.rules())
      for (const Condition &C : R.Conditions)
        ++FeatureUse[getFeatureName(C.Feature)];
  }

  std::cout << "== Feature usage across all induced rules ==\n";
  TablePrinter T({"Feature", "Conditions"});
  for (const auto &[Name, Count] : FeatureUse)
    T.addRow({Name, std::to_string(Count)});
  T.print(std::cout);
  std::cout << "\nAs in the paper's Figure 4, block size and the memory/"
               "call-related\nfractions dominate; hazard fractions fine-tune."
            << '\n';
  return 0;
}
