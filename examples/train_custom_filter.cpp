//===- examples/train_custom_filter.cpp - Offline training walkthrough -----===//
//
// Walks through the paper's full offline procedure (§2.2) the way a
// compiler team would run it "at the factory":
//
//   1. Compile a benchmark suite with the instrumented scheduler, writing
//      a trace of (features, cost unscheduled, cost scheduled) per block.
//   2. Label the trace at a chosen threshold t, dropping the (0, t] noise
//      band.
//   3. Induce a rule set with RIPPER and inspect it.
//   4. Evaluate with leave-one-out cross-validation before shipping.
//
// Run: ./build/examples/train_custom_filter [threshold-percent]
//
//===----------------------------------------------------------------------===//

#include "harness/Experiments.h"
#include "ml/Metrics.h"
#include "ml/Ripper.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"

#include <cstdlib>
#include <iostream>

using namespace schedfilter;

int main(int argc, char **argv) {
  double Threshold = 20.0;
  if (argc > 1)
    Threshold = std::strtod(argv[1], nullptr);

  MachineModel Model = MachineModel::ppc7410();

  // Step 1: the instrumented-scheduler pass over the suite.
  std::cout << "== Step 1: tracing the SPECjvm98 suite ==\n";
  std::vector<BenchmarkSpec> Suite = specjvm98Suite();
  for (BenchmarkSpec &S : Suite)
    S.NumMethods = 60; // reduced for example runtime
  std::vector<BenchmarkRun> Runs = generateSuiteData(Suite, Model);
  size_t Blocks = 0;
  for (const BenchmarkRun &R : Runs)
    Blocks += R.Records.size();
  std::cout << "traced " << Blocks << " blocks from " << Runs.size()
            << " benchmarks\n\n";

  // Step 2: threshold labeling.
  std::cout << "== Step 2: labeling at t = " << Threshold << "% ==\n";
  std::vector<Dataset> Labeled = labelSuite(Runs, Threshold);
  Dataset All("all");
  for (const Dataset &D : Labeled)
    All.append(D);
  std::cout << All.size() << " training instances ("
            << All.countLabel(Label::LS) << " LS, "
            << All.countLabel(Label::NS) << " NS); "
            << (Blocks - All.size())
            << " blocks dropped as noise (benefit in (0, t])\n\n";

  // Step 3: induce and inspect.
  std::cout << "== Step 3: RIPPER rule induction ==\n";
  RuleSet Filter = Ripper().train(All);
  std::cout << Filter.toString() << '\n';

  // Step 4: honest evaluation -- leave-one-out by benchmark.
  std::cout << "== Step 4: leave-one-out cross-validation ==\n";
  std::vector<LoocvFold> Folds = leaveOneOut(Labeled, ripperLearner());
  std::vector<double> Errors;
  for (size_t B = 0; B != Folds.size(); ++B) {
    double Err = errorRatePercent(Folds[B].Filter, Labeled[B]);
    Errors.push_back(Err);
    std::cout << padRight(Folds[B].HeldOut, 10) << " error "
              << formatDouble(Err, 2) << "%\n";
  }
  std::cout << "geometric mean " << formatDouble(geometricMean(Errors), 2)
            << "%\n";
  return 0;
}
