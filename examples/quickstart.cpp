//===- examples/quickstart.cpp - Smallest end-to-end use of the library ----===//
//
// Quickstart: build a basic block, schedule it, train a filter on a tiny
// synthetic suite, and use the filter to decide whether to schedule.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "filter/Pipeline.h"
#include "harness/Experiments.h"
#include "ml/Ripper.h"
#include "sched/ScheduleVerifier.h"

#include <iostream>

using namespace schedfilter;

int main() {
  MachineModel Model = MachineModel::ppc7410();

  // 1. Build a block by hand: two independent float expressions over
  // loaded values, emitted in naive (JIT) order.
  BasicBlock BB("example", /*ExecCount=*/1000);
  BB.append(Instruction(Opcode::LoadFloat, {100}, {0}));
  BB.append(Instruction(Opcode::FMul, {101}, {100, 100}));
  BB.append(Instruction(Opcode::LoadFloat, {102}, {1}));
  BB.append(Instruction(Opcode::FMul, {103}, {102, 102}));
  BB.append(Instruction(Opcode::FAdd, {104}, {101, 103}));
  BB.append(Instruction(Opcode::StoreFloat, {}, {104, 2}));

  // 2. Cost it with and without list scheduling.
  BlockSimulator Sim(Model);
  ListScheduler Sched(Model);
  uint64_t Before = Sim.simulate(BB);
  ScheduleResult SR = Sched.schedule(BB);
  uint64_t After = Sim.simulate(BB, SR.Order);
  std::cout << "block cost unscheduled: " << Before << " cycles\n"
            << "block cost scheduled:   " << After << " cycles\n"
            << "schedule is legal:      "
            << (verifySchedule(BB, Model, SR.Order).Ok ? "yes" : "no")
            << "\n\n";

  // 3. Train a filter on a small synthetic suite and apply it online.
  std::vector<BenchmarkSpec> Suite = specjvm98Suite();
  for (BenchmarkSpec &S : Suite)
    S.NumMethods = 12; // keep the quickstart fast
  std::vector<BenchmarkRun> Runs = generateSuiteData(Suite, Model);
  std::vector<Dataset> Labeled = labelSuite(Runs, /*ThresholdPct=*/0.0);

  Dataset Train("all");
  for (const Dataset &D : Labeled)
    Train.append(D);
  RuleSet Filter = Ripper().train(Train);
  std::cout << "induced filter (" << Filter.size() << " rules):\n"
            << Filter.toString() << '\n';

  ScheduleFilter Online(Filter);
  std::cout << "filter says schedule the example block: "
            << (Online.shouldSchedule(BB) ? "yes" : "no") << '\n';
  return 0;
}
