//===- bench/bench_fig4_induced_filter.cpp - Paper Figure 4 ----------------===//
//
// Regenerates Figure 4: a sample induced filter.  As in the paper, the
// rule set is trained on 6 of the 7 SPECjvm98 benchmarks (jack held out)
// at t = 0, and printed with per-rule (correct/incorrect) training
// coverage counts.
//
// Paper reference: rules of the form
//   (924/12) list :- bbLen >= 7, calls <= 0.0857, loads >= 0.3793, ...
// with block size and the call/system/load/store fractions carrying most
// of the signal, and a default "orig" rule covering the large majority of
// blocks.  Those are exactly the properties to eyeball here.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "harness/TableRender.h"
#include "ml/Ripper.h"
#include "support/CommandLine.h"

#include "EngineOption.h"

#include <iostream>

using namespace schedfilter;

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkRun> Suite =
      Engine.generateSuiteData(specjvm98Suite(), Model);
  std::vector<Dataset> Labeled = Engine.labelSuite(Suite, /*ThresholdPct=*/0.0);

  // Train on everything except jack (the last suite member).
  Dataset Train("specjvm98-minus-jack");
  for (size_t I = 0; I + 1 < Labeled.size(); ++I)
    Train.append(Labeled[I]);
  RuleSet Filter = Ripper().train(Train);

  renderInducedFilter(Filter, std::cout);

  std::cout << "\nTraining set: " << Train.size() << " instances ("
            << Train.countLabel(Label::LS) << " LS, "
            << Train.countLabel(Label::NS) << " NS)\n"
            << "Rules: " << Filter.size() << ", total conditions "
            << Filter.totalConditions() << "\n"
            << "O(1) bbLen rejection gate: blocks shorter than "
            << Filter.minMatchableBBLen()
            << " instructions classify as NS immediately\n";
  return 0;
}
