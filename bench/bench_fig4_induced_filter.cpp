//===- bench/bench_fig4_induced_filter.cpp - Paper Figure 4 ----------------===//
//
// Regenerates Figure 4: a sample induced filter.  As in the paper, the
// rule set is trained on 6 of the 7 SPECjvm98 benchmarks (jack held out)
// at t = 0, and printed with per-rule (correct/incorrect) training
// coverage counts.
//
// Paper reference: rules of the form
//   (924/12) list :- bbLen >= 7, calls <= 0.0857, loads >= 0.3793, ...
// with block size and the call/system/load/store fractions carrying most
// of the signal, and a default "orig" rule covering the large majority of
// blocks.  Those are exactly the properties to eyeball here.
//
//===----------------------------------------------------------------------===//

#include "analysis/RuleAnalysis.h"
#include "harness/ParallelExperiments.h"
#include "harness/TableRender.h"
#include "ml/Ripper.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include "EngineOption.h"

#include <iostream>

using namespace schedfilter;

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkRun> Suite =
      Engine.generateSuiteData(specjvm98Suite(), Model);
  std::vector<Dataset> Labeled = Engine.labelSuite(Suite, /*ThresholdPct=*/0.0);

  // Train on everything except jack (the last suite member).
  Dataset Train("specjvm98-minus-jack");
  for (size_t I = 0; I + 1 < Labeled.size(); ++I)
    Train.append(Labeled[I]);
  RuleSet Filter = Ripper().train(Train);

  renderInducedFilter(Filter, std::cout);

  std::cout << "\nTraining set: " << Train.size() << " instances ("
            << Train.countLabel(Label::LS) << " LS, "
            << Train.countLabel(Label::NS) << " NS)\n"
            << "Rules: " << Filter.size() << ", total conditions "
            << Filter.totalConditions() << "\n"
            << "O(1) bbLen rejection gate: blocks shorter than "
            << Filter.minMatchableBBLen()
            << " instructions classify as NS immediately\n";

  // The static analyzer's view of the same filter: findings, and the
  // per-prediction work a normalized (dead/shadowed/redundant-free)
  // filter saves over the whole suite's blocks.  The trainer never emits
  // dead or shadowed rules (golden-pinned in analysis_test), but greedy
  // growth does re-test a feature with a tighter threshold ("bbLen >= 6,
  // ..., bbLen >= 11"), so a few redundant conditions -- and a small
  // work saving -- are expected and reported here.
  RuleAnalysis Lint = analyzeRuleSet(Filter, &Train);
  std::cout << "\nStatic analysis: "
            << Lint.numFindings(LintSeverity::Error) << " errors, "
            << Lint.numFindings(LintSeverity::Warning) << " warnings, "
            << Lint.numFindings(LintSeverity::Note) << " notes ("
            << Lint.removedRules() << " rules / " << Lint.removedConditions()
            << " conditions normalizable)\n";
  RuleSet Normalized = normalizeRuleSet(Filter, Lint);
  uint64_t WorkBefore = 0, WorkAfter = 0;
  size_t NumBlocks = 0;
  for (const Dataset &D : Labeled) {
    NumBlocks += D.size();
    for (const Instance &I : D) {
      WorkBefore += Filter.predictionWork(I.X);
      WorkAfter += Normalized.predictionWork(I.X);
    }
  }
  std::cout << "predictionWork over the suite's " << NumBlocks
            << " blocks: " << WorkBefore << " units as induced, " << WorkAfter
            << " normalized (saves "
            << formatPercent(WorkBefore == 0
                                 ? 0.0
                                 : 1.0 - static_cast<double>(WorkAfter) /
                                             static_cast<double>(WorkBefore))
            << "; the O(1) bbLen gate is applied before either)\n";
  return 0;
}
