//===- bench/bench_transfer_targets.cpp - Cross-target filter transfer -----===//
//
// The paper trains and deploys on one machine (the MPC7410) and notes the
// then-new G5 is "at least as complex."  A natural question for anyone
// shipping a factory-trained filter: does a filter trained against one
// microarchitecture's timing model still work when the JIT runs on a
// different one?
//
// This bench labels the SPECjvm98 suite under both the 7410 and a
// 970 (G5)-like model, then evaluates filters in all four
// train-target/deploy-target combinations (LOOCV in every case), on both
// classification error and retained scheduling benefit.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "ml/Metrics.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/CommandLine.h"

#include "EngineOption.h"

#include <iostream>

using namespace schedfilter;

namespace {

struct TargetData {
  std::string ModelName;
  std::vector<BenchmarkRun> Runs;
  std::vector<Dataset> Labeled;
  std::vector<LoocvFold> Folds;
};

TargetData prepare(ExperimentEngine &Engine, const MachineModel &Model) {
  TargetData D;
  D.ModelName = Model.getName();
  D.Runs = Engine.generateSuiteData(specjvm98Suite(), Model);
  D.Labeled = Engine.labelSuite(D.Runs, /*ThresholdPct=*/0.0);
  D.Folds = leaveOneOut(D.Labeled, ripperLearner(), Engine.pool());
  return D;
}

/// Evaluates Train's cross-validated filters against Deploy's labels and
/// block costs.
void evaluateTransfer(const TargetData &Train, const TargetData &Deploy,
                      TablePrinter &T) {
  std::vector<double> Errors, Retention;
  for (size_t B = 0; B != Deploy.Runs.size(); ++B) {
    const RuleSet &Filter = Train.Folds[B].Filter;
    Errors.push_back(errorRatePercent(Filter, Deploy.Labeled[B]));

    double NoSched = 0.0, WithFilter = 0.0, FullSched = 0.0;
    for (const BlockRecord &Rec : Deploy.Runs[B].Records) {
      double W = static_cast<double>(Rec.ExecCount);
      NoSched += W * static_cast<double>(Rec.CostNoSched);
      FullSched += W * static_cast<double>(Rec.CostSched);
      bool Sched = Filter.predict(Rec.X) == Label::LS;
      WithFilter +=
          W * static_cast<double>(Sched ? Rec.CostSched : Rec.CostNoSched);
    }
    double Full = NoSched - FullSched;
    Retention.push_back(Full > 0.0 ? (NoSched - WithFilter) / Full : 1.0);
  }
  T.addRow({Train.ModelName, Deploy.ModelName,
            formatDouble(geometricMean(Errors), 2) + "%",
            formatPercent(geometricMean(Retention), 1)});
}

} // namespace

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  TargetData G4 = prepare(Engine, MachineModel::ppc7410());
  TargetData G5 = prepare(Engine, MachineModel::ppc970());

  std::cout << "Cross-target transfer of factory-trained filters "
               "(SPECjvm98, t = 0, LOOCV)\n\n";
  TablePrinter T({"Trained on", "Deployed on", "Error (geomean)",
                  "Benefit retained"});
  evaluateTransfer(G4, G4, T);
  evaluateTransfer(G4, G5, T);
  evaluateTransfer(G5, G4, T);
  evaluateTransfer(G5, G5, T);
  T.print(std::cout);

  std::cout << "\nMismatched rows show the cost of shipping a filter tuned "
               "for the wrong\nmicroarchitecture; because the features are "
               "machine-independent and the\nschedulable-block population "
               "is similar, transfer degrades accuracy only\nmodestly.\n";
  return 0;
}
