//===- bench/bench_table3_error_rates.cpp - Paper Table 3 ------------------===//
//
// Regenerates Table 3: leave-one-out cross-validated classification error
// rates (percent misclassified) of the RIPPER-induced filters on the
// SPECjvm98 stand-in suite, for threshold values t = 0..50 step 5.
//
// Paper reference (geometric means): 7.86 at t=0 falling monotonically to
// 0.06 at t=50.  The shape to check: errors are single-digit at t=0, are
// fairly consistent across benchmarks, and fall toward zero as t rises.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "harness/TableRender.h"
#include "support/CommandLine.h"

#include "EngineOption.h"

#include <iostream>

using namespace schedfilter;

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkRun> Suite =
      Engine.generateSuiteData(specjvm98Suite(), Model);
  std::vector<ThresholdResult> Sweep =
      Engine.runThresholdSweep(Suite, paperThresholds(), ripperLearner());
  renderTable3(Sweep, std::cout);
  return 0;
}
