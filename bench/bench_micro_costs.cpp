//===- bench/bench_micro_costs.cpp - Filter vs scheduler unit costs --------===//
//
// Microbenchmarks substantiating the paper's premise that "the filter is
// much cheaper to apply than instruction scheduling itself": per-block
// cost of (1) feature extraction, (2) rule-set evaluation, (3) dependence
// DAG construction, (4) full list scheduling (one-shot and
// SchedContext-reused), and (5) the block timing simulator, across block
// sizes.  Uses google-benchmark.
//
// After the google-benchmark suites, the driver times one-shot vs
// context-reused scheduling over every block of the fig3 FP suite and
// writes the blocks/sec comparison to BENCH_schedcontext.json, so the
// perf trajectory of the allocation-free hot path is tracked run over
// run.
//
//===----------------------------------------------------------------------===//

#include "features/Features.h"
#include "ml/Ripper.h"
#include "sched/SchedContext.h"
#include "sim/BlockSimulator.h"
#include "support/Timer.h"
#include "workloads/ProgramGenerator.h"

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>

using namespace schedfilter;

namespace {

/// Builds one block with roughly the requested number of statements from
/// the mpegaudio profile (FP-rich, the interesting case for scheduling).
BasicBlock makeBlock(int Statements) {
  const BenchmarkSpec *Spec = findBenchmarkSpec("mpegaudio");
  Rng R(0xB10C + static_cast<uint64_t>(Statements));
  return ProgramGenerator(*Spec).generateBlock(R, Statements,
                                               /*EndWithTerminator=*/true);
}

/// A realistic filter to price rule evaluation: trained on a small
/// sample of labeled blocks.
RuleSet makeFilter() {
  const BenchmarkSpec *Spec = findBenchmarkSpec("mpegaudio");
  MachineModel Model = MachineModel::ppc7410();
  ListScheduler Sched(Model);
  BlockSimulator Sim(Model);
  Rng R(0xF117);
  Dataset D("micro");
  for (int I = 0; I < 600; ++I) {
    BasicBlock BB = ProgramGenerator(*Spec).generateBlock(
        R, R.range(0, 6), /*EndWithTerminator=*/true);
    uint64_t Before = Sim.simulate(BB);
    uint64_t After = Sim.simulate(BB, Sched.schedule(BB).Order);
    D.add({extractFeatures(BB), After < Before ? Label::LS : Label::NS});
  }
  return Ripper().train(D);
}

void BM_FeatureExtraction(benchmark::State &State) {
  BasicBlock BB = makeBlock(static_cast<int>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(extractFeatures(BB));
  State.SetLabel(std::to_string(BB.size()) + " insts");
}

void BM_FilterDecision(benchmark::State &State) {
  BasicBlock BB = makeBlock(static_cast<int>(State.range(0)));
  static const RuleSet Filter = makeFilter();
  for (auto _ : State) {
    bool Decision = Filter.predict(extractFeatures(BB)) == Label::LS;
    benchmark::DoNotOptimize(Decision);
  }
  State.SetLabel(std::to_string(BB.size()) + " insts");
}

void BM_DagBuild(benchmark::State &State) {
  BasicBlock BB = makeBlock(static_cast<int>(State.range(0)));
  MachineModel Model = MachineModel::ppc7410();
  for (auto _ : State) {
    DependenceGraph Dag(BB, Model);
    benchmark::DoNotOptimize(Dag.numEdges());
  }
  State.SetLabel(std::to_string(BB.size()) + " insts");
}

void BM_ListSchedule(benchmark::State &State) {
  BasicBlock BB = makeBlock(static_cast<int>(State.range(0)));
  MachineModel Model = MachineModel::ppc7410();
  ListScheduler Sched(Model);
  for (auto _ : State) {
    ScheduleResult SR = Sched.schedule(BB);
    benchmark::DoNotOptimize(SR.Order.data());
  }
  State.SetLabel(std::to_string(BB.size()) + " insts");
}

void BM_ListScheduleReused(benchmark::State &State) {
  BasicBlock BB = makeBlock(static_cast<int>(State.range(0)));
  MachineModel Model = MachineModel::ppc7410();
  ListScheduler Sched(Model);
  SchedContext Ctx;
  std::vector<int> Order;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Sched.schedule(BB, Ctx, Order));
    benchmark::DoNotOptimize(Order.data());
  }
  State.SetLabel(std::to_string(BB.size()) + " insts");
}

void BM_BlockSimulate(benchmark::State &State) {
  BasicBlock BB = makeBlock(static_cast<int>(State.range(0)));
  MachineModel Model = MachineModel::ppc7410();
  BlockSimulator Sim(Model);
  for (auto _ : State)
    benchmark::DoNotOptimize(Sim.simulate(BB));
  State.SetLabel(std::to_string(BB.size()) + " insts");
}

/// Times one-shot vs SchedContext-reused scheduling over every block of
/// the fig3 FP suite (the suite whose blocks genuinely need scheduling)
/// and writes the blocks/sec comparison to \p JsonPath.
void runSchedContextComparison(const char *JsonPath) {
  MachineModel Model = MachineModel::ppc7410();
  ListScheduler Sched(Model);

  std::vector<BasicBlock> Blocks;
  for (const Program &P : generateSuite(fpSuite()))
    P.forEachBlock([&](const BasicBlock &BB) { Blocks.push_back(BB); });

  // Pick a repetition count that gives stable timings (~hundreds of ms
  // per side) without inflating bench time on slow machines.
  const int Reps = 20;
  uint64_t Guard = 0; // defeat dead-code elimination across reps

  AccumulatingTimer OneShotTimer;
  OneShotTimer.start();
  for (int R = 0; R != Reps; ++R)
    for (const BasicBlock &BB : Blocks) {
      ScheduleResult SR = Sched.schedule(BB);
      Guard += SR.WorkUnits + static_cast<uint64_t>(SR.Order.size());
    }
  OneShotTimer.stop();

  SchedContext Ctx;
  std::vector<int> Order;
  AccumulatingTimer ReusedTimer;
  ReusedTimer.start();
  for (int R = 0; R != Reps; ++R)
    for (const BasicBlock &BB : Blocks) {
      Guard += Sched.schedule(BB, Ctx, Order);
      Guard += static_cast<uint64_t>(Order.size());
    }
  ReusedTimer.stop();

  double Scheduled = static_cast<double>(Blocks.size()) * Reps;
  double OneShotRate = Scheduled / OneShotTimer.seconds();
  double ReusedRate = Scheduled / ReusedTimer.seconds();
  double Speedup = ReusedRate / OneShotRate;

  std::ofstream OS(JsonPath);
  OS << "{\n"
     << "  \"suite\": \"fp\",\n"
     << "  \"blocks\": " << Blocks.size() << ",\n"
     << "  \"repetitions\": " << Reps << ",\n"
     << "  \"one_shot_blocks_per_sec\": " << static_cast<uint64_t>(OneShotRate)
     << ",\n"
     << "  \"context_reused_blocks_per_sec\": "
     << static_cast<uint64_t>(ReusedRate) << ",\n"
     << "  \"speedup\": " << Speedup << "\n"
     << "}\n";

  std::cout << "\nSchedContext reuse on the fig3 FP suite ("
            << Blocks.size() << " blocks x " << Reps << " reps):\n"
            << "  one-shot:       " << static_cast<uint64_t>(OneShotRate)
            << " blocks/sec\n"
            << "  context-reused: " << static_cast<uint64_t>(ReusedRate)
            << " blocks/sec\n"
            << "  speedup:        " << Speedup << "x  (guard " << (Guard & 1)
            << ")\n"
            << "wrote " << JsonPath << '\n';
}

} // namespace

BENCHMARK(BM_FeatureExtraction)->Arg(1)->Arg(3)->Arg(6)->Arg(10);
BENCHMARK(BM_FilterDecision)->Arg(1)->Arg(3)->Arg(6)->Arg(10);
BENCHMARK(BM_DagBuild)->Arg(1)->Arg(3)->Arg(6)->Arg(10);
BENCHMARK(BM_ListSchedule)->Arg(1)->Arg(3)->Arg(6)->Arg(10);
BENCHMARK(BM_ListScheduleReused)->Arg(1)->Arg(3)->Arg(6)->Arg(10);
BENCHMARK(BM_BlockSimulate)->Arg(1)->Arg(3)->Arg(6)->Arg(10);

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  runSchedContextComparison("BENCH_schedcontext.json");
  return 0;
}
