//===- bench/bench_micro_costs.cpp - Filter vs scheduler unit costs --------===//
//
// Microbenchmarks substantiating the paper's premise that "the filter is
// much cheaper to apply than instruction scheduling itself": per-block
// cost of (1) feature extraction, (2) rule-set evaluation (interpreted
// and compiled), (3) dependence DAG construction, (4) full list
// scheduling (one-shot and SchedContext-reused), and (5) the block timing
// simulator, across block sizes.  Uses google-benchmark.
//
// After the google-benchmark suites, the driver runs two tracked
// comparisons:
//   * one-shot vs SchedContext-reused scheduling over the fig3 FP suite
//     -> BENCH_schedcontext.json (--out-schedcontext);
//   * interpreter vs compiled vs compiled-batch evaluation of the
//     SPECjvm98 t = 0 filter over every block of the suite, with a
//     bit-identity cross-check of all three paths
//     -> BENCH_filter_eval.json (--out-filter-eval).
//
// Usage:
//   bench_micro_costs [--quick] [--jobs N] [--corpus-dir DIR | --no-cache]
//                     [--out-schedcontext PATH] [--out-filter-eval PATH]
//                     [google-benchmark flags]
//
// --quick skips the google-benchmark suites and shrinks the comparison
// repetitions for CI smoke runs.  Custom flags are stripped from argv
// before google-benchmark sees it (it rejects flags it does not know).
//
//===----------------------------------------------------------------------===//

#include "features/FeatureMatrix.h"
#include "features/Features.h"
#include "filter/CompiledFilter.h"
#include "harness/ParallelExperiments.h"
#include "ml/Ripper.h"
#include "sched/SchedContext.h"
#include "sim/BlockSimulator.h"
#include "support/CommandLine.h"
#include "support/Timer.h"
#include "workloads/ProgramGenerator.h"

#include "BenchJson.h"
#include "EngineOption.h"

#include <benchmark/benchmark.h>

#include <iostream>
#include <sstream>

using namespace schedfilter;

namespace {

/// Builds one block with roughly the requested number of statements from
/// the mpegaudio profile (FP-rich, the interesting case for scheduling).
BasicBlock makeBlock(int Statements) {
  const BenchmarkSpec *Spec = findBenchmarkSpec("mpegaudio");
  Rng R(0xB10C + static_cast<uint64_t>(Statements));
  return ProgramGenerator(*Spec).generateBlock(R, Statements,
                                               /*EndWithTerminator=*/true);
}

/// A realistic filter to price rule evaluation: trained on a small
/// sample of labeled blocks.
RuleSet makeFilter() {
  const BenchmarkSpec *Spec = findBenchmarkSpec("mpegaudio");
  MachineModel Model = MachineModel::ppc7410();
  ListScheduler Sched(Model);
  BlockSimulator Sim(Model);
  Rng R(0xF117);
  Dataset D("micro");
  for (int I = 0; I < 600; ++I) {
    BasicBlock BB = ProgramGenerator(*Spec).generateBlock(
        R, R.range(0, 6), /*EndWithTerminator=*/true);
    uint64_t Before = Sim.simulate(BB);
    uint64_t After = Sim.simulate(BB, Sched.schedule(BB).Order);
    D.add({extractFeatures(BB), After < Before ? Label::LS : Label::NS});
  }
  return Ripper().train(D);
}

void BM_FeatureExtraction(benchmark::State &State) {
  BasicBlock BB = makeBlock(static_cast<int>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(extractFeatures(BB));
  State.SetLabel(std::to_string(BB.size()) + " insts");
}

void BM_FilterDecision(benchmark::State &State) {
  BasicBlock BB = makeBlock(static_cast<int>(State.range(0)));
  static const RuleSet Filter = makeFilter();
  for (auto _ : State) {
    bool Decision = Filter.predict(extractFeatures(BB)) == Label::LS;
    benchmark::DoNotOptimize(Decision);
  }
  State.SetLabel(std::to_string(BB.size()) + " insts");
}

void BM_FilterDecisionCompiled(benchmark::State &State) {
  BasicBlock BB = makeBlock(static_cast<int>(State.range(0)));
  static const RuleSet Filter = makeFilter();
  static const CompiledFilter Compiled(Filter);
  for (auto _ : State) {
    CompiledFilter::Decision D = Compiled.evaluate(extractFeatures(BB));
    benchmark::DoNotOptimize(D);
  }
  State.SetLabel(std::to_string(BB.size()) + " insts");
}

void BM_DagBuild(benchmark::State &State) {
  BasicBlock BB = makeBlock(static_cast<int>(State.range(0)));
  MachineModel Model = MachineModel::ppc7410();
  for (auto _ : State) {
    DependenceGraph Dag(BB, Model);
    benchmark::DoNotOptimize(Dag.numEdges());
  }
  State.SetLabel(std::to_string(BB.size()) + " insts");
}

void BM_ListSchedule(benchmark::State &State) {
  BasicBlock BB = makeBlock(static_cast<int>(State.range(0)));
  MachineModel Model = MachineModel::ppc7410();
  ListScheduler Sched(Model);
  for (auto _ : State) {
    ScheduleResult SR = Sched.schedule(BB);
    benchmark::DoNotOptimize(SR.Order.data());
  }
  State.SetLabel(std::to_string(BB.size()) + " insts");
}

void BM_ListScheduleReused(benchmark::State &State) {
  BasicBlock BB = makeBlock(static_cast<int>(State.range(0)));
  MachineModel Model = MachineModel::ppc7410();
  ListScheduler Sched(Model);
  SchedContext Ctx;
  std::vector<int> Order;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Sched.schedule(BB, Ctx, Order));
    benchmark::DoNotOptimize(Order.data());
  }
  State.SetLabel(std::to_string(BB.size()) + " insts");
}

void BM_BlockSimulate(benchmark::State &State) {
  BasicBlock BB = makeBlock(static_cast<int>(State.range(0)));
  MachineModel Model = MachineModel::ppc7410();
  BlockSimulator Sim(Model);
  for (auto _ : State)
    benchmark::DoNotOptimize(Sim.simulate(BB));
  State.SetLabel(std::to_string(BB.size()) + " insts");
}

/// Times one-shot vs SchedContext-reused scheduling over every block of
/// the fig3 FP suite (the suite whose blocks genuinely need scheduling)
/// and writes the blocks/sec comparison to \p JsonPath.
bool runSchedContextComparison(const std::string &JsonPath, bool Quick) {
  MachineModel Model = MachineModel::ppc7410();
  ListScheduler Sched(Model);

  std::vector<BasicBlock> Blocks;
  for (const Program &P : generateSuite(fpSuite()))
    P.forEachBlock([&](const BasicBlock &BB) { Blocks.push_back(BB); });

  // Pick a repetition count that gives stable timings (~hundreds of ms
  // per side) without inflating bench time on slow machines.
  const int Reps = Quick ? 5 : 20;
  uint64_t Guard = 0; // defeat dead-code elimination across reps

  AccumulatingTimer OneShotTimer;
  OneShotTimer.start();
  for (int R = 0; R != Reps; ++R)
    for (const BasicBlock &BB : Blocks) {
      ScheduleResult SR = Sched.schedule(BB);
      Guard += SR.WorkUnits + static_cast<uint64_t>(SR.Order.size());
    }
  OneShotTimer.stop();

  SchedContext Ctx;
  std::vector<int> Order;
  AccumulatingTimer ReusedTimer;
  ReusedTimer.start();
  for (int R = 0; R != Reps; ++R)
    for (const BasicBlock &BB : Blocks) {
      Guard += Sched.schedule(BB, Ctx, Order);
      Guard += static_cast<uint64_t>(Order.size());
    }
  ReusedTimer.stop();

  double Scheduled = static_cast<double>(Blocks.size()) * Reps;
  double OneShotRate = Scheduled / OneShotTimer.seconds();
  double ReusedRate = Scheduled / ReusedTimer.seconds();
  double Speedup = ReusedRate / OneShotRate;

  std::ostringstream OS;
  OS << "{\n"
     << "  \"suite\": \"fp\",\n"
     << "  \"blocks\": " << Blocks.size() << ",\n"
     << "  \"repetitions\": " << Reps << ",\n"
     << "  \"one_shot_blocks_per_sec\": " << static_cast<uint64_t>(OneShotRate)
     << ",\n"
     << "  \"context_reused_blocks_per_sec\": "
     << static_cast<uint64_t>(ReusedRate) << ",\n"
     << "  \"speedup\": " << Speedup << "\n"
     << "}\n";

  std::cout << "\nSchedContext reuse on the fig3 FP suite ("
            << Blocks.size() << " blocks x " << Reps << " reps):\n"
            << "  one-shot:       " << static_cast<uint64_t>(OneShotRate)
            << " blocks/sec\n"
            << "  context-reused: " << static_cast<uint64_t>(ReusedRate)
            << " blocks/sec\n"
            << "  speedup:        " << Speedup << "x  (guard " << (Guard & 1)
            << ")\n";
  return writeBenchJson(JsonPath, OS.str());
}

/// The headline comparison for the compiled filter: interpreter vs
/// compiled-scalar vs compiled-batch evaluation of the SPECjvm98 t = 0
/// filter over every block of the suite, bit-identity checked across all
/// three paths before any timing is reported.  The interpreter side pays
/// predict + predictionWork -- exactly what ScheduleFilter's Interpreted
/// mode pays per decision -- while the compiled paths return both in one
/// walk.
bool runFilterEvalComparison(ExperimentEngine &Engine,
                             const std::string &JsonPath, bool Quick) {
  std::cerr << "training the SPECjvm98 t = 0 filter (tracing on cache "
               "miss)...\n";
  std::vector<BenchmarkRun> Runs =
      Engine.generateSuiteData(specjvm98Suite(), MachineModel::ppc7410());
  std::vector<Dataset> Labeled = Engine.labelSuite(Runs, 0.0);
  Dataset Suite("suite");
  for (const Dataset &D : Labeled)
    Suite.append(D);
  RuleSet Filter = Ripper().train(Suite, Engine.pool());
  CompiledFilter Compiled(Filter);

  // Every block of the suite, features extracted once (row-major for the
  // scalar paths, SoA for the batch path -- bit-identical values).
  std::vector<FeatureVector> Rows;
  FeatureMatrix M;
  for (const BenchmarkRun &R : Runs)
    R.Prog.forEachBlock([&](const BasicBlock &BB) {
      Rows.push_back(extractFeatures(BB));
      M.appendRow(Rows.back());
    });
  const size_t N = Rows.size();

  // Bit-identity first: predictions and work units of all three paths
  // must agree on every block before the timings mean anything.
  std::vector<unsigned char> BatchLS(N, 0);
  std::vector<uint64_t> BatchWork(N, 0);
  CompiledFilter::BatchScratch Scratch;
  Compiled.evaluateBatch(M, Scratch, BatchLS.data(), BatchWork.data());
  for (size_t I = 0; I != N; ++I) {
    bool InterpLS = Filter.predict(Rows[I]) == Label::LS;
    uint64_t InterpWork = Filter.predictionWork(Rows[I]);
    CompiledFilter::Decision D = Compiled.evaluate(Rows[I]);
    if (D.ScheduleLS != InterpLS || D.Work != InterpWork ||
        (BatchLS[I] != 0) != InterpLS || BatchWork[I] != InterpWork) {
      std::cerr << "error: evaluator paths diverged on block " << I
                << " (run compiled_filter_test)\n";
      return false;
    }
  }

  const int Reps = Quick ? 40 : 400;
  uint64_t Guard = 0;

  // The three paths are timed interleaved, one full pass each per rep:
  // external load then perturbs all three about equally, so the reported
  // speedup ratios are stable even on a busy machine.
  AccumulatingTimer InterpTimer, ScalarTimer, BatchTimer;
  for (int R = 0; R != Reps; ++R) {
    InterpTimer.start();
    for (size_t I = 0; I != N; ++I) {
      Guard += Filter.predict(Rows[I]) == Label::LS;
      Guard += Filter.predictionWork(Rows[I]);
    }
    InterpTimer.stop();

    ScalarTimer.start();
    for (size_t I = 0; I != N; ++I) {
      CompiledFilter::Decision D = Compiled.evaluate(Rows[I]);
      Guard += D.Work + D.ScheduleLS;
    }
    ScalarTimer.stop();

    BatchTimer.start();
    Compiled.evaluateBatch(M, Scratch, BatchLS.data(), BatchWork.data());
    BatchTimer.stop();
    Guard += BatchWork[N - 1] + BatchLS[0];
  }

  double Decisions = static_cast<double>(N) * Reps;
  auto NsPer = [&](const AccumulatingTimer &T) {
    return T.seconds() * 1e9 / Decisions;
  };
  auto Rate = [&](const AccumulatingTimer &T) {
    return static_cast<uint64_t>(Decisions / T.seconds());
  };
  double InterpNs = NsPer(InterpTimer);
  double ScalarNs = NsPer(ScalarTimer);
  double BatchNs = NsPer(BatchTimer);

  std::ostringstream OS;
  OS << "{\n"
     << "  \"filter\": \"specjvm98 @ t=0\",\n"
     << "  \"rules\": " << Filter.size() << ",\n"
     << "  \"conditions\": " << Filter.totalConditions() << ",\n"
     << "  \"predicate_rows\": " << Compiled.numPredRows() << ",\n"
     << "  \"blocks\": " << N << ",\n"
     << "  \"repetitions\": " << Reps << ",\n"
     << "  \"interpreter_ns_per_decision\": " << InterpNs << ",\n"
     << "  \"compiled_ns_per_decision\": " << ScalarNs << ",\n"
     << "  \"compiled_batch_ns_per_decision\": " << BatchNs << ",\n"
     << "  \"interpreter_blocks_per_sec\": " << Rate(InterpTimer) << ",\n"
     << "  \"compiled_blocks_per_sec\": " << Rate(ScalarTimer) << ",\n"
     << "  \"compiled_batch_blocks_per_sec\": " << Rate(BatchTimer) << ",\n"
     << "  \"compiled_speedup\": " << InterpNs / ScalarNs << ",\n"
     << "  \"batch_speedup\": " << InterpNs / BatchNs << "\n"
     << "}\n";

  std::cout << "\nfilter evaluation on the SPECjvm98 t = 0 filter ("
            << Filter.size() << " rules, " << Filter.totalConditions()
            << " conditions -> " << Compiled.numCells() << " cells, "
            << Compiled.numPredRows() << " predicate rows; " << N
            << " blocks x " << Reps << " reps):\n"
            << "  interpreter:    " << InterpNs << " ns/decision ("
            << Rate(InterpTimer) << " blocks/sec)\n"
            << "  compiled:       " << ScalarNs << " ns/decision ("
            << Rate(ScalarTimer) << " blocks/sec, " << InterpNs / ScalarNs
            << "x)\n"
            << "  compiled-batch: " << BatchNs << " ns/decision ("
            << Rate(BatchTimer) << " blocks/sec, " << InterpNs / BatchNs
            << "x)  (guard " << (Guard & 1) << ")\n";
  return writeBenchJson(JsonPath, OS.str());
}

} // namespace

BENCHMARK(BM_FeatureExtraction)->Arg(1)->Arg(3)->Arg(6)->Arg(10);
BENCHMARK(BM_FilterDecision)->Arg(1)->Arg(3)->Arg(6)->Arg(10);
BENCHMARK(BM_FilterDecisionCompiled)->Arg(1)->Arg(3)->Arg(6)->Arg(10);
BENCHMARK(BM_DagBuild)->Arg(1)->Arg(3)->Arg(6)->Arg(10);
BENCHMARK(BM_ListSchedule)->Arg(1)->Arg(3)->Arg(6)->Arg(10);
BENCHMARK(BM_ListScheduleReused)->Arg(1)->Arg(3)->Arg(6)->Arg(10);
BENCHMARK(BM_BlockSimulate)->Arg(1)->Arg(3)->Arg(6)->Arg(10);

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  bool Quick = CL.has("quick");

  // google-benchmark rejects flags it does not recognize, so strip this
  // driver's own flags (and their space-separated values, mirroring
  // CommandLine's consumption rule) before handing argv over.
  std::vector<char *> BenchArgv;
  BenchArgv.push_back(argv[0]);
  auto IsOwnFlag = [](const std::string &A) {
    static const char *Own[] = {"--quick",           "--no-cache",
                                "--jobs",            "--corpus-dir",
                                "--out-schedcontext", "--out-filter-eval"};
    for (const char *F : Own)
      if (A == F || A.rfind(std::string(F) + "=", 0) == 0)
        return true;
    return false;
  };
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (IsOwnFlag(A)) {
      if (A.find('=') == std::string::npos && I + 1 < argc &&
          std::string(argv[I + 1]).rfind("--", 0) != 0)
        ++I; // the flag's space-separated value
      continue;
    }
    BenchArgv.push_back(argv[I]);
  }
  int BenchArgc = static_cast<int>(BenchArgv.size());

  benchmark::Initialize(&BenchArgc, BenchArgv.data());
  if (benchmark::ReportUnrecognizedArguments(BenchArgc, BenchArgv.data()))
    return 1;
  if (!Quick)
    benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!runSchedContextComparison(
          benchOutPath(CL, "out-schedcontext", "BENCH_schedcontext.json"),
          Quick))
    return 1;
  if (!runFilterEvalComparison(
          **Handle, benchOutPath(CL, "out-filter-eval", "BENCH_filter_eval.json"),
          Quick))
    return 1;
  return 0;
}
