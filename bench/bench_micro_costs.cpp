//===- bench/bench_micro_costs.cpp - Filter vs scheduler unit costs --------===//
//
// Microbenchmarks substantiating the paper's premise that "the filter is
// much cheaper to apply than instruction scheduling itself": per-block
// cost of (1) feature extraction, (2) rule-set evaluation, (3) dependence
// DAG construction, (4) full list scheduling, and (5) the block timing
// simulator, across block sizes.  Uses google-benchmark.
//
//===----------------------------------------------------------------------===//

#include "features/Features.h"
#include "ml/Ripper.h"
#include "sched/ListScheduler.h"
#include "sim/BlockSimulator.h"
#include "workloads/ProgramGenerator.h"

#include <benchmark/benchmark.h>

using namespace schedfilter;

namespace {

/// Builds one block with roughly the requested number of statements from
/// the mpegaudio profile (FP-rich, the interesting case for scheduling).
BasicBlock makeBlock(int Statements) {
  const BenchmarkSpec *Spec = findBenchmarkSpec("mpegaudio");
  Rng R(0xB10C + static_cast<uint64_t>(Statements));
  return ProgramGenerator(*Spec).generateBlock(R, Statements,
                                               /*EndWithTerminator=*/true);
}

/// A realistic filter to price rule evaluation: trained on a small
/// sample of labeled blocks.
RuleSet makeFilter() {
  const BenchmarkSpec *Spec = findBenchmarkSpec("mpegaudio");
  MachineModel Model = MachineModel::ppc7410();
  ListScheduler Sched(Model);
  BlockSimulator Sim(Model);
  Rng R(0xF117);
  Dataset D("micro");
  for (int I = 0; I < 600; ++I) {
    BasicBlock BB = ProgramGenerator(*Spec).generateBlock(
        R, R.range(0, 6), /*EndWithTerminator=*/true);
    uint64_t Before = Sim.simulate(BB);
    uint64_t After = Sim.simulate(BB, Sched.schedule(BB).Order);
    D.add({extractFeatures(BB), After < Before ? Label::LS : Label::NS});
  }
  return Ripper().train(D);
}

void BM_FeatureExtraction(benchmark::State &State) {
  BasicBlock BB = makeBlock(static_cast<int>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(extractFeatures(BB));
  State.SetLabel(std::to_string(BB.size()) + " insts");
}

void BM_FilterDecision(benchmark::State &State) {
  BasicBlock BB = makeBlock(static_cast<int>(State.range(0)));
  static const RuleSet Filter = makeFilter();
  for (auto _ : State) {
    bool Decision = Filter.predict(extractFeatures(BB)) == Label::LS;
    benchmark::DoNotOptimize(Decision);
  }
  State.SetLabel(std::to_string(BB.size()) + " insts");
}

void BM_DagBuild(benchmark::State &State) {
  BasicBlock BB = makeBlock(static_cast<int>(State.range(0)));
  MachineModel Model = MachineModel::ppc7410();
  for (auto _ : State) {
    DependenceGraph Dag(BB, Model);
    benchmark::DoNotOptimize(Dag.numEdges());
  }
  State.SetLabel(std::to_string(BB.size()) + " insts");
}

void BM_ListSchedule(benchmark::State &State) {
  BasicBlock BB = makeBlock(static_cast<int>(State.range(0)));
  MachineModel Model = MachineModel::ppc7410();
  ListScheduler Sched(Model);
  for (auto _ : State) {
    ScheduleResult SR = Sched.schedule(BB);
    benchmark::DoNotOptimize(SR.Order.data());
  }
  State.SetLabel(std::to_string(BB.size()) + " insts");
}

void BM_BlockSimulate(benchmark::State &State) {
  BasicBlock BB = makeBlock(static_cast<int>(State.range(0)));
  MachineModel Model = MachineModel::ppc7410();
  BlockSimulator Sim(Model);
  for (auto _ : State)
    benchmark::DoNotOptimize(Sim.simulate(BB));
  State.SetLabel(std::to_string(BB.size()) + " insts");
}

} // namespace

BENCHMARK(BM_FeatureExtraction)->Arg(1)->Arg(3)->Arg(6)->Arg(10);
BENCHMARK(BM_FilterDecision)->Arg(1)->Arg(3)->Arg(6)->Arg(10);
BENCHMARK(BM_DagBuild)->Arg(1)->Arg(3)->Arg(6)->Arg(10);
BENCHMARK(BM_ListSchedule)->Arg(1)->Arg(3)->Arg(6)->Arg(10);
BENCHMARK(BM_BlockSimulate)->Arg(1)->Arg(3)->Arg(6)->Arg(10);

BENCHMARK_MAIN();
