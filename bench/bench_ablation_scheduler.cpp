//===- bench/bench_ablation_scheduler.cpp - Scheduler-independence ---------===//
//
// §1.1 of the paper: "our filtering technique applies to any competent
// scheduler: in essence we are discriminating between those blocks that a
// scheduler can improve significantly and those that it cannot, and this
// has more to do with the block than with details of the scheduler."
//
// Test: label the training data with the paper's CPS scheduler, induce
// filters (LOOCV, t = 0), then *deploy* them over a different competent
// scheduler (fanout-first tie-breaking).  If the paper is right, the
// filter should preserve (nearly) as much of the second scheduler's
// benefit as of the first's.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/CommandLine.h"

#include "EngineOption.h"

#include <iostream>

using namespace schedfilter;

namespace {

/// SIM-metric ratios when the CPS-trained filter gates scheduler \p Sched.
void evaluate(const std::vector<BenchmarkRun> &Suite,
              const std::vector<LoocvFold> &Folds, SchedPriority Priority,
              const char *Name, const MachineModel &Model,
              TablePrinter &T) {
  ListScheduler Sched(Model, Priority);
  BlockSimulator Sim(Model);
  std::vector<double> AppLS, AppLN;
  for (size_t B = 0; B != Suite.size(); ++B) {
    const RuleSet &Filter = Folds[B].Filter;
    double NS = 0.0, LS = 0.0, LN = 0.0;
    size_t RecIdx = 0;
    Suite[B].Prog.forEachBlock([&](const BasicBlock &BB) {
      const BlockRecord &Rec = Suite[B].Records[RecIdx++];
      double W = static_cast<double>(BB.getExecCount());
      double Unsched = static_cast<double>(Rec.CostNoSched);
      double Sched2 =
          static_cast<double>(Sim.simulate(BB, Sched.schedule(BB).Order));
      NS += W * Unsched;
      LS += W * Sched2;
      LN += W * (Filter.predict(Rec.X) == Label::LS ? Sched2 : Unsched);
    });
    AppLS.push_back(LS / NS);
    AppLN.push_back(LN / NS);
  }
  double GLs = geometricMean(AppLS), GLn = geometricMean(AppLN);
  T.addRow({Name, formatDouble(GLs, 4), formatDouble(GLn, 4),
            formatDouble(100.0 * (1.0 - GLn) / (1.0 - GLs), 1) + "%"});
}

} // namespace

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  MachineModel Model = MachineModel::ppc7410();
  // Labels and filters come from the CPS scheduler only.
  std::vector<BenchmarkRun> Suite =
      Engine.generateSuiteData(specjvm98Suite(), Model);
  std::vector<LoocvFold> Folds =
      leaveOneOut(Engine.labelSuite(Suite, 0.0), ripperLearner(), Engine.pool());

  std::cout << "Scheduler-independence ablation (SPECjvm98, t = 0):\n"
               "filters trained with CPS labels, deployed over two "
               "different schedulers\n\n";
  TablePrinter T({"Deployed scheduler", "Always-schedule vs NS",
                  "Filtered vs NS", "Benefit retained"});
  evaluate(Suite, Folds, SchedPriority::CriticalPath,
           "CPS (training scheduler)", Model, T);
  evaluate(Suite, Folds, SchedPriority::Fanout, "fanout-first (unseen)",
           Model, T);
  T.print(std::cout);

  std::cout << "\nNear-equal retention across schedulers supports §1.1: "
               "the filter keys on the\nblock, not on the scheduler's "
               "tie-breaking details.\n";
  return 0;
}
