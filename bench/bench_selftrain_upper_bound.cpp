//===- bench/bench_selftrain_upper_bound.cpp - Footnote 4 ------------------===//
//
// Paper, footnote 4: end users could retrain on their own programs, but
// "it is not clear that user retraining would have much value ... This is
// something we could explore using additional experimental data, such as
// training on an individual program and testing on that same program,
// which gives a kind of upper bound on how much improvement you could get
// by retraining."
//
// This bench runs that exact experiment: per benchmark, compare the
// factory filter (LOOCV: trained on the other benchmarks) against the
// self-trained filter (trained on the benchmark itself) on classification
// error and retained benefit at t = 0.  A small gap vindicates shipping
// one factory-trained filter.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "ml/Metrics.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/CommandLine.h"

#include "EngineOption.h"

#include <iostream>

using namespace schedfilter;

namespace {

double retention(const BenchmarkRun &Run, const RuleSet &Filter) {
  double NS = 0.0, LS = 0.0, LN = 0.0;
  for (const BlockRecord &Rec : Run.Records) {
    double W = static_cast<double>(Rec.ExecCount);
    NS += W * static_cast<double>(Rec.CostNoSched);
    LS += W * static_cast<double>(Rec.CostSched);
    LN += W * static_cast<double>(
                  Filter.predict(Rec.X) == Label::LS ? Rec.CostSched
                                                     : Rec.CostNoSched);
  }
  double Full = NS - LS;
  return Full > 0.0 ? (NS - LN) / Full : 1.0;
}

} // namespace

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkRun> Suite =
      Engine.generateSuiteData(specjvm98Suite(), Model);
  std::vector<Dataset> Labeled = Engine.labelSuite(Suite, 0.0);
  std::vector<LoocvFold> Factory =
      leaveOneOut(Labeled, ripperLearner(), Engine.pool());
  std::vector<LoocvFold> Self = selfTrain(Labeled, ripperLearner());

  std::cout << "Retraining upper bound (paper footnote 4): factory (LOOCV) "
               "vs self-trained\nfilters, SPECjvm98, t = 0\n\n";
  TablePrinter T({"Benchmark", "Factory error", "Self error",
                  "Factory retention", "Self retention"});
  std::vector<double> FErr, SErr, FRet, SRet;
  for (size_t B = 0; B != Suite.size(); ++B) {
    FErr.push_back(errorRatePercent(Factory[B].Filter, Labeled[B]));
    SErr.push_back(errorRatePercent(Self[B].Filter, Labeled[B]));
    FRet.push_back(retention(Suite[B], Factory[B].Filter));
    SRet.push_back(retention(Suite[B], Self[B].Filter));
    T.addRow({Suite[B].Name, formatDouble(FErr.back(), 2) + "%",
              formatDouble(SErr.back(), 2) + "%",
              formatPercent(FRet.back(), 1),
              formatPercent(SRet.back(), 1)});
  }
  T.addRow({"geomean", formatDouble(geometricMean(FErr), 2) + "%",
            formatDouble(geometricMean(SErr), 2) + "%",
            formatPercent(geometricMean(FRet), 1),
            formatPercent(geometricMean(SRet), 1)});
  T.print(std::cout);

  std::cout << "\nSelf-training (an optimistic bound: train == test) buys "
               "only a few points --\nthe factory filter already covers "
               "'all the interesting behaviors', as the\npaper argues.\n";
  return 0;
}
