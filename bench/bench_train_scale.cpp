//===- bench/bench_train_scale.cpp - Training throughput across corpus tiers -===//
//
// Tracks the payoff of the indexed RIPPER training engine (column
// indexes, coverage bit-sets, value-order sweeps, shrinking grow
// universes -- see ml/Ripper.cpp) the way bench_micro_costs tracks the
// SchedContext arena: times the *reference* trainer (the original
// sort-per-condition implementation, kept verbatim in
// tests/ReferenceRipper.h) against the indexed engine, serial and
// pooled, over growing tiers of the repository's real training corpus,
// verifies the induced filters are byte-identical along the way, and
// writes the instances/sec comparison to BENCH_train_scale.json so the
// speedup is tracked across PRs.
//
// The corpus is the paper's own: every SPECjvm98 stand-in block traced
// through the instrumented scheduler and labeled at t = 0 (8 827
// instances; corpus-cache-served when warm).  Tiers replicate it 1x/2x/4x
// -- training cost grows superlinearly because richer corpora induce
// more rules with more conditions, which is exactly the regime that
// separates the engines: the reference re-sorts every feature column for
// every candidate condition, the indexed engine sweeps presorted
// entries.
//
// Usage:
//   bench_train_scale [--quick] [--jobs N] [--corpus-dir DIR | --no-cache]
//                     [--out PATH]
//
// --quick drops the largest tier for CI smoke runs.  Everything printed
// except the timings is deterministic.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "ml/Ripper.h"
#include "support/Timer.h"

#include "BenchJson.h"
#include "EngineOption.h"
#include "ReferenceRipper.h"
#include "RuleSetIdentity.h"

#include <iostream>
#include <sstream>
#include <vector>

using namespace schedfilter;

namespace {

/// Times one \p Train call and returns instances/sec; the trained filter
/// goes to \p Out for the identity check.
template <typename Fn>
double throughput(const Dataset &D, const Fn &Train, RuleSet &Out) {
  AccumulatingTimer T;
  T.start();
  Out = Train();
  T.stop();
  return static_cast<double>(D.size()) / T.seconds();
}

} // namespace

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;
  bool Quick = CL.has("quick");

  std::cerr << "labeling the SPECjvm98 suite at t = 0 (tracing on cache "
               "miss)...\n";
  std::vector<BenchmarkRun> Runs =
      Engine.generateSuiteData(specjvm98Suite(), MachineModel::ppc7410());
  std::vector<Dataset> Labeled = Engine.labelSuite(Runs, 0.0);
  Dataset Suite("suite");
  for (const Dataset &D : Labeled)
    Suite.append(D);

  const std::vector<int> Tiers = Quick ? std::vector<int>{1, 2}
                                       : std::vector<int>{1, 2, 4};

  std::string OutPath = benchOutPath(CL, "out", "BENCH_train_scale.json");
  std::ostringstream OS;
  OS << "{\n  \"corpus\": \"specjvm98 @ t=0\",\n  \"base_instances\": "
     << Suite.size() << ",\n  \"jobs\": " << Engine.jobs()
     << ",\n  \"tiers\": [\n";

  double LargestTierSpeedup = 0.0;
  for (size_t TI = 0; TI != Tiers.size(); ++TI) {
    Dataset Train("tier-" + std::to_string(Tiers[TI]));
    for (int R = 0; R != Tiers[TI]; ++R)
      Train.append(Suite);

    RuleSet FromRef(Label::NS), FromIndexed(Label::NS), FromPooled(Label::NS);
    double RefRate = throughput(
        Train, [&] { return reference::trainReference(Train); }, FromRef);
    double IndexedRate = throughput(
        Train, [&] { return Ripper().train(Train); }, FromIndexed);
    double PooledRate = throughput(
        Train, [&] { return Ripper().train(Train, Engine.pool()); },
        FromPooled);

    // The speedup only counts if the engines agree bit-for-bit.
    if (!identicalRuleSets(FromIndexed, FromRef) ||
        !identicalRuleSets(FromPooled, FromRef)) {
      std::cerr << "error: engines diverged on tier " << Tiers[TI]
                << "x (run ripper_engine_test)\n";
      return 1;
    }

    double Speedup = IndexedRate / RefRate;
    double PooledSpeedup = PooledRate / RefRate;
    LargestTierSpeedup = Speedup;

    OS << "    {\"replication\": " << Tiers[TI]
       << ", \"instances\": " << Train.size()
       << ", \"rules\": " << FromRef.size()
       << ", \"conditions\": " << FromRef.totalConditions()
       << ", \"reference_inst_per_sec\": " << static_cast<uint64_t>(RefRate)
       << ", \"indexed_inst_per_sec\": " << static_cast<uint64_t>(IndexedRate)
       << ", \"indexed_jobs" << Engine.jobs()
       << "_inst_per_sec\": " << static_cast<uint64_t>(PooledRate)
       << ", \"speedup\": " << Speedup
       << ", \"pooled_speedup\": " << PooledSpeedup << "}"
       << (TI + 1 == Tiers.size() ? "\n" : ",\n");

    std::cout << "tier " << Tiers[TI] << "x = " << Train.size()
              << " instances (" << FromRef.size() << " rules, "
              << FromRef.totalConditions() << " conditions):\n"
              << "  reference:       " << static_cast<uint64_t>(RefRate)
              << " inst/sec\n"
              << "  indexed:         " << static_cast<uint64_t>(IndexedRate)
              << " inst/sec  (" << Speedup << "x)\n"
              << "  indexed, jobs=" << Engine.jobs() << ": "
              << static_cast<uint64_t>(PooledRate) << " inst/sec  ("
              << PooledSpeedup << "x)\n";
  }

  OS << "  ],\n  \"largest_tier_speedup\": " << LargestTierSpeedup << "\n}\n";
  if (!writeBenchJson(OutPath, OS.str()))
    return 1;
  std::cout << "largest tier speedup " << LargestTierSpeedup << "x\n";
  return 0;
}
