//===- bench/bench_suites.cpp - Tables 2 & 7: benchmark inventories --------===//
//
// Prints the two benchmark suites (the paper's Tables 2 and 7) together
// with the population statistics of their synthetic stand-ins: block
// counts, instruction counts, and the fraction of blocks that benefit from
// scheduling at t = 0.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/CommandLine.h"

#include "EngineOption.h"

#include <iostream>

using namespace schedfilter;

static void printSuite(ExperimentEngine &Engine, const char *Title,
                       const std::vector<BenchmarkSpec> &Suite) {
  std::cout << Title << "\n\n";
  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkRun> Runs = Engine.generateSuiteData(Suite, Model);

  TablePrinter T({"Benchmark", "Description", "Methods", "Blocks", "Insts",
                  "LS blocks (t=0)", "LS frac"});
  for (size_t I = 0; I != Runs.size(); ++I) {
    const BenchmarkRun &R = Runs[I];
    size_t NumLS = 0;
    for (const BlockRecord &Rec : R.Records)
      NumLS += schedulingBenefitPercent(Rec) > 0.0;
    T.addRow({R.Name, Suite[I].Description,
              std::to_string(R.Prog.size()),
              std::to_string(R.Prog.totalBlocks()),
              std::to_string(R.Prog.totalInstructions()),
              std::to_string(NumLS),
              formatPercent(static_cast<double>(NumLS) /
                            static_cast<double>(R.Records.size()))});
  }
  T.print(std::cout);
  std::cout << '\n';
}

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  printSuite(Engine, "Table 2: SPECjvm98 benchmark stand-ins",
             specjvm98Suite());
  printSuite(Engine,
             "Table 7: benchmarks that benefit from scheduling (FP suite)",
             fpSuite());
  return 0;
}
