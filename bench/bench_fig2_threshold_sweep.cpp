//===- bench/bench_fig2_threshold_sweep.cpp - Paper Figure 2 ---------------===//
//
// Regenerates Figure 2: the threshold sweep t = 0..50 on SPECjvm98:
// (a) scheduling time of L/N relative to LS per threshold, and (b)
// application (simulated) running time relative to NS.
//
// Paper reference: (a) geometric-mean effort falls steadily from ~0.39 at
// t=0 to ~0.06 at t=50; (b) effectiveness stays near LS at small t and
// degrades at large t (in the paper's *measured* times t=20 was a local
// sweet spot at 93% of LS's benefit; in its *simulated* Table 4 the
// benefit erodes gradually, which is the behaviour reproduced here).
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "harness/TableRender.h"
#include "support/CommandLine.h"

#include "EngineOption.h"

#include <iostream>

using namespace schedfilter;

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkRun> Suite =
      Engine.generateSuiteData(specjvm98Suite(), Model);
  std::vector<ThresholdResult> Sweep =
      Engine.runThresholdSweep(Suite, paperThresholds(), ripperLearner());

  renderEffortFigure(Sweep, /*UseWallTime=*/false, std::cout);
  std::cout << '\n';
  renderEffortFigure(Sweep, /*UseWallTime=*/true, std::cout);
  std::cout << '\n';
  renderAppTimeFigure(Sweep, std::cout);
  std::cout << '\n';
  renderHeadline(Sweep, std::cout);
  return 0;
}
