//===- bench/bench_table4_predicted_times.cpp - Paper Table 4 --------------===//
//
// Regenerates Table 4: predicted (simulated) execution times of each
// SPECjvm98 benchmark under its cross-validated filter, as a percent of
// the unscheduled code's predicted time, for t = 0..50.
//
// Paper reference (geometric means): 91.85 at t=0, drifting up to 99.64 at
// t=50.  The shape to check: the model predicts improvement (values < 100)
// at all thresholds, with the improvement eroding as t rises and the
// filter schedules fewer blocks.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "harness/TableRender.h"
#include "support/CommandLine.h"

#include "EngineOption.h"

#include <iostream>

using namespace schedfilter;

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkRun> Suite =
      Engine.generateSuiteData(specjvm98Suite(), Model);
  std::vector<ThresholdResult> Sweep =
      Engine.runThresholdSweep(Suite, paperThresholds(), ripperLearner());
  renderTable4(Sweep, std::cout);
  return 0;
}
