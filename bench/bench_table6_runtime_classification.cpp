//===- bench/bench_table6_runtime_classification.cpp - Paper Table 6 -------===//
//
// Regenerates Table 6: how many blocks the installed (cross-validated)
// filters classify LS vs NS at run time, summed over SPECjvm98, for each
// threshold.  Every block is classified (nothing is dropped online), so
// the total is constant; as t rises the induced rules predict more blocks
// not to benefit, which is what makes filtering cheaper.
//
// Paper reference: LS falls 6064 -> 160 while NS rises correspondingly;
// total constant at 45453.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "harness/TableRender.h"
#include "support/CommandLine.h"

#include "EngineOption.h"

#include <iostream>

using namespace schedfilter;

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkRun> Suite =
      Engine.generateSuiteData(specjvm98Suite(), Model);
  std::vector<ThresholdResult> Sweep =
      Engine.runThresholdSweep(Suite, paperThresholds(), ripperLearner());
  renderTable6(Sweep, std::cout);
  return 0;
}
