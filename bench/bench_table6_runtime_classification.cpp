//===- bench/bench_table6_runtime_classification.cpp - Paper Table 6 -------===//
//
// Regenerates Table 6: how many blocks the installed (cross-validated)
// filters classify LS vs NS at run time, summed over SPECjvm98, for each
// threshold.  Every block is classified (nothing is dropped online), so
// the total is constant; as t rises the induced rules predict more blocks
// not to benefit, which is what makes filtering cheaper.
//
// Paper reference: LS falls 6064 -> 160 while NS rises correspondingly;
// total constant at 45453.
//
// A second section replays the same filters inside the CompileService
// (src/runtime/): in the adaptive regime only promoted-hot methods ever
// reach the optimizing tier, so the filter classifies a fraction of each
// program's blocks online -- the difference between "classify the whole
// program" (Table 6 proper) and "classify what a real adaptive system
// actually compiles" (§3.1).
//
// A third section pushes further into that regime: an interleaved
// multi-app stream (--workload, default specjvm98:3,serverloop:1) served
// by one shared service with the pooled SPECjvm98 t = 0 factory filter
// installed -- how the classifier behaves when part of the traffic is
// from families it never trained on.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "harness/TableRender.h"
#include "ml/Ripper.h"
#include "runtime/CompileService.h"
#include "runtime/MultiAppService.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include "EngineOption.h"
#include "WorkloadOption.h"

#include <iostream>

using namespace schedfilter;

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<WorkloadMix> MixFlag = parseWorkloadOption(CL);
  if (!MixFlag)
    return 1;
  WorkloadMix Mix = MixFlag->empty()
                        ? WorkloadMix{{"specjvm98", 3.0}, {"serverloop", 1.0}}
                        : *MixFlag;
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkSpec> Specs = specjvm98Suite();
  std::vector<BenchmarkRun> Suite = Engine.generateSuiteData(Specs, Model);
  std::vector<ThresholdResult> Sweep =
      Engine.runThresholdSweep(Suite, paperThresholds(), ripperLearner());
  renderTable6(Sweep, std::cout);

  // Runtime regime: the t = 0 filters of the sweep, installed in the
  // CompileService's optimizing tier.  Only blocks of promoted methods
  // are ever classified online.
  const ThresholdResult &AtZero = Sweep.front();
  std::cout << "\nCompileService replay (t = 0 filters, default service "
               "config):\nblocks classified online when only promoted-hot "
               "methods reach the optimizing tier\n\n";
  TablePrinter T({"Benchmark", "Methods opt", "Blocks online", "LS", "NS",
                  "Blocks total"});
  size_t TotalLS = 0, TotalNS = 0, TotalBlocks = 0;
  for (size_t B = 0; B != Suite.size(); ++B) {
    ServiceConfig Cfg;
    Cfg.StreamSeed = invocationStreamSeed(Specs[B].Seed);
    CompileService Service(Suite[B].Prog, Model, Cfg, &AtZero.Filters[B],
                           Engine.pool());
    ServiceStats St = Service.run();
    T.addRow({Suite[B].Name,
              std::to_string(St.MethodsOptimized) + "/" +
                  std::to_string(St.MethodsTotal),
              std::to_string(St.FilterLS + St.FilterNS),
              std::to_string(St.FilterLS), std::to_string(St.FilterNS),
              std::to_string(Suite[B].Prog.totalBlocks())});
    TotalLS += St.FilterLS;
    TotalNS += St.FilterNS;
    TotalBlocks += Suite[B].Prog.totalBlocks();
  }
  T.addRow({"Total", "", std::to_string(TotalLS + TotalNS),
            std::to_string(TotalLS), std::to_string(TotalNS),
            std::to_string(TotalBlocks)});
  T.print(std::cout);

  // Mixed-traffic regime: one shared service, several apps interleaved,
  // the pooled SPECjvm98 t = 0 filter (the factory artifact) classifying
  // whatever traffic reaches the optimizing tier -- including families
  // it never saw at training time.
  Dataset Pooled("specjvm98-t0");
  for (const Dataset &D : Engine.labelSuite(Suite, 0.0))
    Pooled.append(D);
  RuleSet Factory = ripperLearner(Engine.pool())(Pooled);

  std::vector<AppSpec> Apps = expandWorkloadMix(Mix);
  ServiceConfig Cfg;
  Cfg.StreamSeed = workloadMixSeed(Apps);
  std::vector<Program> Programs = generateMixPrograms(Apps);
  MultiAppComparison Cmp = runMultiAppComparison(Apps, Programs, Model, Cfg,
                                                 Factory, Engine.pool());

  std::cout << "\nmixed-traffic replay (--workload " << formatWorkloadMix(Mix)
            << "; pooled SPECjvm98 t = 0 filter, default service config):\n"
               "online classification per app of one interleaved stream\n\n";
  TablePrinter M({"App", "Family", "Blocks online", "LS", "NS", "Recouped"});
  size_t MixLS = 0, MixNS = 0;
  for (size_t A = 0; A != Apps.size(); ++A) {
    const ServiceStats &St = Cmp.Filtered.PerApp[A];
    M.addRow({Cmp.Filtered.AppNames[A], Apps[A].Spec.Family,
              std::to_string(St.FilterLS + St.FilterNS),
              std::to_string(St.FilterLS), std::to_string(St.FilterNS),
              formatPercent(Cmp.PerAppRecoup[A], 1)});
    MixLS += St.FilterLS;
    MixNS += St.FilterNS;
  }
  M.addRow({"Total", "", std::to_string(MixLS + MixNS),
            std::to_string(MixLS), std::to_string(MixNS),
            formatPercent(Cmp.RecoupedWorkFraction, 1)});
  M.print(std::cout);
  return 0;
}
