//===- bench/bench_table6_runtime_classification.cpp - Paper Table 6 -------===//
//
// Regenerates Table 6: how many blocks the installed (cross-validated)
// filters classify LS vs NS at run time, summed over SPECjvm98, for each
// threshold.  Every block is classified (nothing is dropped online), so
// the total is constant; as t rises the induced rules predict more blocks
// not to benefit, which is what makes filtering cheaper.
//
// Paper reference: LS falls 6064 -> 160 while NS rises correspondingly;
// total constant at 45453.
//
// A second section replays the same filters inside the CompileService
// (src/runtime/): in the adaptive regime only promoted-hot methods ever
// reach the optimizing tier, so the filter classifies a fraction of each
// program's blocks online -- the difference between "classify the whole
// program" (Table 6 proper) and "classify what a real adaptive system
// actually compiles" (§3.1).
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "harness/TableRender.h"
#include "runtime/CompileService.h"
#include "support/CommandLine.h"
#include "support/TablePrinter.h"

#include "EngineOption.h"

#include <iostream>

using namespace schedfilter;

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkSpec> Specs = specjvm98Suite();
  std::vector<BenchmarkRun> Suite = Engine.generateSuiteData(Specs, Model);
  std::vector<ThresholdResult> Sweep =
      Engine.runThresholdSweep(Suite, paperThresholds(), ripperLearner());
  renderTable6(Sweep, std::cout);

  // Runtime regime: the t = 0 filters of the sweep, installed in the
  // CompileService's optimizing tier.  Only blocks of promoted methods
  // are ever classified online.
  const ThresholdResult &AtZero = Sweep.front();
  std::cout << "\nCompileService replay (t = 0 filters, default service "
               "config):\nblocks classified online when only promoted-hot "
               "methods reach the optimizing tier\n\n";
  TablePrinter T({"Benchmark", "Methods opt", "Blocks online", "LS", "NS",
                  "Blocks total"});
  size_t TotalLS = 0, TotalNS = 0, TotalBlocks = 0;
  for (size_t B = 0; B != Suite.size(); ++B) {
    ServiceConfig Cfg;
    Cfg.StreamSeed = invocationStreamSeed(Specs[B].Seed);
    CompileService Service(Suite[B].Prog, Model, Cfg, &AtZero.Filters[B],
                           Engine.pool());
    ServiceStats St = Service.run();
    T.addRow({Suite[B].Name,
              std::to_string(St.MethodsOptimized) + "/" +
                  std::to_string(St.MethodsTotal),
              std::to_string(St.FilterLS + St.FilterNS),
              std::to_string(St.FilterLS), std::to_string(St.FilterNS),
              std::to_string(Suite[B].Prog.totalBlocks())});
    TotalLS += St.FilterLS;
    TotalNS += St.FilterNS;
    TotalBlocks += Suite[B].Prog.totalBlocks();
  }
  T.addRow({"Total", "", std::to_string(TotalLS + TotalNS),
            std::to_string(TotalLS), std::to_string(TotalNS),
            std::to_string(TotalBlocks)});
  T.print(std::cout);
  return 0;
}
