//===- bench/bench_ablation_noise.cpp - Threshold noise-filter ablation ----===//
//
// The paper's §4.4 insight, which it encourages others to reuse: when
// labels come from comparing a predicted metric under two treatments,
// *dropping* instances whose difference is inside a threshold band
// improves both the efficiency and the effectiveness of the induced
// heuristic.
//
// This ablation isolates the device.  At t = 20, the band (0, 20] can be
// handled three ways:
//   drop      - the paper's method: no training instance at all;
//   label-NS  - keep the block, call it NS ("not worth it");
//   label-LS  - keep the block, call it LS (any improvement counts).
// Each variant trains with LOOCV on SPECjvm98 and is measured on effort
// and retained benefit.  The paper's claim to verify: "drop" dominates
// "label-LS" on efficiency while matching (or beating) both on the
// effort/benefit frontier.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "ml/Metrics.h"
#include "ml/Ripper.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/CommandLine.h"

#include "EngineOption.h"
#include "WorkloadOption.h"

#include <iostream>

using namespace schedfilter;

namespace {

enum class BandHandling { Drop, LabelNS, LabelLS };

Dataset labelVariant(const BenchmarkRun &Run, double T, BandHandling H) {
  Dataset D(Run.Name);
  for (const BlockRecord &Rec : Run.Records) {
    double Benefit = schedulingBenefitPercent(Rec);
    if (Benefit > T) {
      D.add({Rec.X, Label::LS});
    } else if (Benefit <= 0.0) {
      D.add({Rec.X, Label::NS});
    } else {
      switch (H) {
      case BandHandling::Drop:
        break;
      case BandHandling::LabelNS:
        D.add({Rec.X, Label::NS});
        break;
      case BandHandling::LabelLS:
        D.add({Rec.X, Label::LS});
        break;
      }
    }
  }
  return D;
}

} // namespace

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  const double T = 20.0;
  MachineModel Model = MachineModel::ppc7410();
  // --suite picks any registered workload family (default specjvm98, the
  // paper's population); the ablation itself is family-agnostic.
  std::string SuiteName = CL.get("suite", "specjvm98");
  const WorkloadFamily *Family = findWorkloadFamily(SuiteName);
  if (!Family) {
    std::cerr << "error: unknown suite: got '" << SuiteName
              << "', known: " << knownFamilyNames() << '\n';
    return 1;
  }
  std::vector<BenchmarkRun> Suite =
      Engine.generateSuiteData(Family->makeBenchmarkSuite(), Model);

  std::cout << "Noise-filtering ablation at t = " << T << " ("
            << (SuiteName == "specjvm98" ? "SPECjvm98" : SuiteName)
            << " geometric means, LOOCV)\n\n";
  TablePrinter Table({"Band handling", "Train size", "Runtime LS share",
                      "Effort vs LS", "App time vs NS",
                      "LS benefit retained"});

  const std::pair<const char *, BandHandling> Variants[] = {
      {"drop (paper)", BandHandling::Drop},
      {"label as NS", BandHandling::LabelNS},
      {"label as LS", BandHandling::LabelLS},
  };

  for (const auto &[Name, Handling] : Variants) {
    std::vector<Dataset> Labeled;
    size_t TrainSize = 0;
    for (const BenchmarkRun &Run : Suite) {
      Labeled.push_back(labelVariant(Run, T, Handling));
      TrainSize += Labeled.back().size();
    }
    std::vector<LoocvFold> Folds =
        leaveOneOut(Labeled, ripperLearner(), Engine.pool());

    std::vector<double> Effort, AppLN, AppLS;
    size_t RtLS = 0, RtAll = 0;
    for (size_t B = 0; B != Suite.size(); ++B) {
      const BenchmarkRun &Run = Suite[B];
      ScheduleFilter F(Folds[B].Filter);
      CompileReport LN = compileProgram(Run.Prog, Model,
                                        SchedulingPolicy::Filtered, &F);
      Effort.push_back(
          safeRatio(static_cast<double>(LN.SchedulingWork),
                    static_cast<double>(Run.AlwaysReport.SchedulingWork)));
      AppLN.push_back(LN.SimulatedTime / Run.NeverReport.SimulatedTime);
      AppLS.push_back(Run.AlwaysReport.SimulatedTime /
                      Run.NeverReport.SimulatedTime);
      RtLS += LN.NumScheduled;
      RtAll += LN.NumBlocks;
    }
    double LS = geometricMean(AppLS);
    double LN = geometricMean(AppLN);
    Table.addRow(
        {Name, std::to_string(TrainSize),
         formatPercent(static_cast<double>(RtLS) /
                           static_cast<double>(RtAll),
                       1),
         formatPercent(geometricMean(Effort), 1), formatDouble(LN, 4),
         formatDouble(100.0 * (1.0 - LN) / (1.0 - LS), 1) + "%"});
  }
  Table.print(std::cout);

  std::cout << "\n'label as LS' recreates t = 0 (maximal effort); "
               "'label as NS' loses benefit\nby teaching the filter that "
               "mildly-improvable blocks are worthless; dropping\nthe band "
               "gives the learner a clean signal -- the paper's point.\n";
  return 0;
}
