//===- bench/bench_ablation_noise.cpp - Threshold noise-filter ablation ----===//
//
// The paper's §4.4 insight, which it encourages others to reuse: when
// labels come from comparing a predicted metric under two treatments,
// *dropping* instances whose difference is inside a threshold band
// improves both the efficiency and the effectiveness of the induced
// heuristic.
//
// This ablation isolates the device.  At t = 20, the band (0, 20] can be
// handled three ways:
//   drop      - the paper's method: no training instance at all;
//   label-NS  - keep the block, call it NS ("not worth it");
//   label-LS  - keep the block, call it LS (any improvement counts).
// Each variant is one configuration of the noise layer: a band-filling
// label source appended to the (optionally --noise-corrupted) stack, run
// through the same perturb/label/LOOCV/price pipeline as the robustness
// ladder (noise/Robustness.h).  The paper's claim to verify: "drop"
// dominates "label-LS" on efficiency while matching (or beating) both on
// the effort/benefit frontier.
//
//===----------------------------------------------------------------------===//

#include "noise/Robustness.h"
#include "support/CommandLine.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include "EngineOption.h"
#include "NoiseOption.h"
#include "WorkloadOption.h"

#include <iostream>

using namespace schedfilter;

namespace {

/// The band-handling variants as a label-boundary noise source: records
/// the threshold rule dropped get \p Fill instead.  Appended after any
/// --noise sources, so it sees the verdicts they already transformed.
class BandFill final : public NoiseSource {
public:
  explicit BandFill(Label Fill) : Fill(Fill) {}

  const char *name() const override { return "band-fill"; }
  uint32_t version() const override { return 1; }
  std::string describe() const override {
    return std::string("band-fill:") + getLabelName(Fill);
  }

  std::optional<Label> perturbLabel(std::optional<Label> L,
                                    const BlockRecord &, size_t,
                                    const Rng &) const override {
    return L ? L : std::optional<Label>(Fill);
  }

private:
  Label Fill;
};

} // namespace

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  // Validate the shared --noise surface once up front; per variant the
  // spec is re-parsed so each stack owns its sources.
  std::optional<NoiseStack> Probe = parseNoiseOption(CL);
  if (!Probe)
    return 1;
  const std::string NoiseSpec = CL.get("noise");
  const uint64_t NoiseSeed = Probe->seed();

  const double T = 20.0;
  // --suite picks any registered workload family (default specjvm98, the
  // paper's population); the ablation itself is family-agnostic.
  std::string SuiteName = CL.get("suite", "specjvm98");
  const WorkloadFamily *Family = findWorkloadFamily(SuiteName);
  if (!Family) {
    std::cerr << "error: unknown suite: got '" << SuiteName
              << "', known: " << knownFamilyNames() << '\n';
    return 1;
  }
  std::vector<BenchmarkRun> Suite = Engine.generateSuiteData(
      Family->makeBenchmarkSuite(), MachineModel::ppc7410());

  std::cout << "Noise-filtering ablation at t = " << T << " ("
            << Family->displayName() << " geometric means, LOOCV"
            << (NoiseSpec.empty() ? "" : "; noise " + Probe->describe())
            << ")\n\n";
  TablePrinter Table({"Band handling", "Train size", "Runtime LS share",
                      "Effort vs LS", "App time vs NS",
                      "LS benefit retained"});

  const std::pair<const char *, std::optional<Label>> Variants[] = {
      {"drop (paper)", std::nullopt},
      {"label as NS", Label::NS},
      {"label as LS", Label::LS},
  };

  for (const auto &[Name, Fill] : Variants) {
    ParseResult<NoiseStack> Stack = parseNoiseStack(NoiseSpec, NoiseSeed);
    if (!Stack) { // validated above; re-parse cannot fail
      std::cerr << "error: --noise: " << Stack.error().Message << '\n';
      return 1;
    }
    if (Fill)
      Stack->add(std::make_unique<BandFill>(*Fill));
    RobustnessPoint P = runRobustnessPoint(Engine, Suite, *Stack, T);
    Table.addRow(
        {Name, std::to_string(P.TrainLS + P.TrainNS),
         formatPercent(safeRatio(static_cast<double>(P.RuntimeLS),
                                 static_cast<double>(P.RuntimeBlocks)),
                       1),
         formatPercent(P.EffortRatio, 1), formatDouble(P.AppTimeLN, 4),
         formatDouble(100.0 * P.Retention, 1) + "%"});
  }
  Table.print(std::cout);

  std::cout << "\n'label as LS' recreates t = 0 (maximal effort); "
               "'label as NS' loses benefit\nby teaching the filter that "
               "mildly-improvable blocks are worthless; dropping\nthe band "
               "gives the learner a clean signal -- the paper's point.\n";
  return 0;
}
