//===- bench/bench_companion_how_to_schedule.cpp - The NIPS'97 companion ---===//
//
// §2 of the paper separates two learning problems: *whether* to schedule
// (its contribution) and *how* to schedule (its earlier work: "machine
// learning could find, automatically, quite competent priority functions
// for local instruction scheduling heuristics", Moss et al. NIPS'97).
//
// This bench reproduces the companion result on our substrate: a linear
// preference function trained by averaged perceptron on decision points
// of simulator-optimal schedules of small blocks, compared against the
// hand-coded CPS heuristic and the optimal schedule itself, on held-out
// blocks.  Metrics: simulated cycles relative to the unscheduled order,
// and the fraction of blocks where each scheduler matches the optimum.
//
//===----------------------------------------------------------------------===//

#include "sched/LearnedPriority.h"
#include "sched/OptimalScheduler.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "workloads/ProgramGenerator.h"

#include <iostream>

using namespace schedfilter;

namespace {

std::vector<BasicBlock> sampleBlocks(const char *Benchmark, uint64_t Seed,
                                     int Count, size_t MaxSize) {
  const BenchmarkSpec *Spec = findBenchmarkSpec(Benchmark);
  Rng R(Seed);
  std::vector<BasicBlock> Out;
  while (static_cast<int>(Out.size()) < Count) {
    BasicBlock BB = ProgramGenerator(*Spec).generateBlock(
        R, R.range(1, 4), /*EndWithTerminator=*/true);
    if (!BB.empty() && BB.size() <= MaxSize)
      Out.push_back(std::move(BB));
  }
  return Out;
}

} // namespace

int main() {
  MachineModel Model = MachineModel::ppc7410();

  std::cout << "Companion problem (paper §2 / NIPS'97): learning *how* to "
               "schedule\n\n";

  // Train on small blocks from three benchmarks; test on two others.
  std::vector<BasicBlock> Train = sampleBlocks("mpegaudio", 11, 120, 11);
  std::vector<BasicBlock> MoreTrain = sampleBlocks("compress", 12, 80, 11);
  Train.insert(Train.end(), MoreTrain.begin(), MoreTrain.end());
  PreferenceFunction Fn = PreferenceLearner().train(Train, Model);

  std::cout << "learned priority weights:\n";
  for (unsigned F = 0; F != DecisionFeatures::NumFeatures; ++F)
    std::cout << "  " << padRight(getDecisionFeatureName(F), 14)
              << formatDouble(Fn.weights()[F], 4) << '\n';
  std::cout << '\n';

  // Held-out evaluation.
  std::vector<BasicBlock> Test = sampleBlocks("raytrace", 21, 150, 11);
  std::vector<BasicBlock> Test2 = sampleBlocks("scimark", 22, 150, 11);
  Test.insert(Test.end(), Test2.begin(), Test2.end());

  ListScheduler Cps(Model);
  LearnedListScheduler Learned(Model, Fn);
  BlockSimulator Sim(Model);

  std::vector<double> CpsRatio, LearnedRatio, OptRatio;
  int CpsOptimal = 0, LearnedOptimal = 0, Exact = 0;
  for (const BasicBlock &BB : Test) {
    uint64_t Unsched = Sim.simulate(BB);
    if (Unsched == 0)
      continue;
    OptimalResult Opt = findOptimalSchedule(BB, Model);
    uint64_t CpsC = Sim.simulate(BB, Cps.schedule(BB).Order);
    uint64_t LearnedC = Sim.simulate(BB, Learned.schedule(BB).Order);
    double U = static_cast<double>(Unsched);
    CpsRatio.push_back(static_cast<double>(CpsC) / U);
    LearnedRatio.push_back(static_cast<double>(LearnedC) / U);
    OptRatio.push_back(static_cast<double>(Opt.Cycles) / U);
    Exact += Opt.Exact;
    CpsOptimal += CpsC == Opt.Cycles;
    LearnedOptimal += LearnedC == Opt.Cycles;
  }

  TablePrinter T({"Scheduler", "Cycles vs unscheduled (geomean)",
                  "Matches optimal"});
  auto Pct = [&](int N) {
    return formatPercent(static_cast<double>(N) /
                         static_cast<double>(CpsRatio.size()),
                         1);
  };
  T.addRow({"CPS heuristic", formatDouble(geometricMean(CpsRatio), 4),
            Pct(CpsOptimal)});
  T.addRow({"learned preference fn", formatDouble(geometricMean(LearnedRatio), 4),
            Pct(LearnedOptimal)});
  T.addRow({"optimal (exhaustive)", formatDouble(geometricMean(OptRatio), 4),
            "100.0%"});
  T.print(std::cout);

  std::cout << '\n'
            << Exact << "/" << CpsRatio.size()
            << " optimal searches were exact within budget.\n"
            << "The learned function is competent (close to CPS and to "
               "optimal) -- the paper's\npremise that the *how* problem "
               "is learnable, before it moves on to *whether*.\n";
  return 0;
}
