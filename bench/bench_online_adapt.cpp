//===- bench/bench_online_adapt.cpp - Online recovery after a shift -------===//
//
// The headline experiment for online self-training: a mixed stream whose
// traffic *shifts* mid-run (step change in the app interleave at
// ShiftEpoch), served under three filters over the bit-identical drifting
// stream:
//
//   static  -- a fixed filter trained only on the pre-shift family; after
//              the shift it keeps judging the new traffic with stale
//              rules and forfeits most of the scheduling benefit;
//   online  -- starts from the *same* stale filter (its v1) and the same
//              training corpus, but retrains from its own serve-time
//              traces and hot-swaps new versions at epoch boundaries;
//   oracle  -- a fixed filter trained on both families upfront: the
//              ceiling a post-shift-aware factory filter would reach.
//
// The recovery metric is app-time based.  Each run recoups
// (BaselineAppTime - AppTime) SIM units versus the never-optimized
// baseline; the Always policy over the same stream is the scheduling
// ceiling.  With Benefit(x) = BaselineAppTime - AppTime of variant x:
//
//   retention(x) = Benefit(x) / Benefit(always)
//   recovered    = (Benefit(online) - Benefit(static))
//                / (Benefit(oracle) - Benefit(static))
//
// i.e. how much of the benefit the stale filter lost the online trainer
// won back.  The acceptance gate -- recovered >= 0.5 while the static
// filter stays behind the oracle -- is enforced by exit status, so CI
// fails if a regression ever makes the trainer stop adapting.
//
// The per-compile pins (ServiceStats::Compiles) double as an alignment
// proof: promotion dynamics are policy-independent, so all three runs
// drain the same (epoch, method) sequence and their Always sides are
// bit-identical; the bench asserts both before quoting any number.
//
// Deterministic like every bench here: bit-identical output at any
// --jobs and cache temperature (the stream, the drift, the retrain
// schedule and the learned rules are all pure functions of seeds).
//
//===----------------------------------------------------------------------===//

#include "ml/Ripper.h"
#include "runtime/MultiAppService.h"
#include "support/CommandLine.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include "BenchJson.h"
#include "EngineOption.h"
#include "WorkloadOption.h"

#include <cassert>
#include <iostream>
#include <sstream>

using namespace schedfilter;

namespace {

/// Scheduling work drained strictly after the shift epoch, from the
/// per-compile version pins.
uint64_t postShiftWork(const ServiceStats &St, uint64_t ShiftEpoch) {
  uint64_t W = 0;
  for (const ServiceStats::CompilePinStat &C : St.Compiles)
    if (C.Epoch > ShiftEpoch)
      W += C.SchedulingWork;
  return W;
}

/// True when both runs drained the same (epoch, method) sequence -- the
/// alignment that makes per-variant comparisons like-for-like.
bool sameDrainSequence(const ServiceStats &A, const ServiceStats &B) {
  if (A.Compiles.size() != B.Compiles.size())
    return false;
  for (size_t I = 0; I != A.Compiles.size(); ++I)
    if (A.Compiles[I].Epoch != B.Compiles[I].Epoch ||
        A.Compiles[I].Method != B.Compiles[I].Method)
      return false;
  return true;
}

struct Variant {
  std::string Name;
  MultiAppComparison Run;
  double Benefit = 0.0;   ///< BaselineAppTime - AppTime, Filtered side
  double Retention = 0.0; ///< Benefit / Benefit(always)
  uint64_t PostWork = 0;  ///< post-shift scheduling work, Filtered side
};

} // namespace

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;
  TaskPool &Pool = Engine.pool();
  const bool Quick = CL.has("quick");

  std::optional<double> ThresholdFlag = CL.getDouble("threshold", 20.0);
  if (!ThresholdFlag)
    return 1;
  double Threshold = *ThresholdFlag;
  if (!(Threshold >= 0.0 && Threshold <= 100.0)) {
    std::cerr << "error: --threshold expects a percentage in [0, 100] "
                 "(got '" << CL.get("threshold") << "')\n";
    return 1;
  }

  // The two sides of the shift.  Pre-shift traffic is pointer-chasing
  // (scheduling barely pays; a filter trained here learns to decline);
  // post-shift traffic is the fp-heavy SPECjvm98 stand-ins (scheduling
  // pays; declining forfeits the benefit).
  const std::string PreFamily = "ptrchase";
  const std::string PostFamily = "specjvm98";
  const WorkloadFamily *Pre = findWorkloadFamily(PreFamily);
  const WorkloadFamily *Post = findWorkloadFamily(PostFamily);
  assert(Pre && Post && "stock families must be registered");

  MachineModel Model = MachineModel::ppc7410();
  std::vector<AppSpec> Apps =
      expandWorkloadMix({{PreFamily, 1.0}, {PostFamily, 1.0}});
  std::vector<Program> Programs = generateMixPrograms(Apps);
  const size_t NumPreApps = Pre->makeBenchmarkSuite().size();

  ServiceConfig Cfg;
  Cfg.StreamSeed = workloadMixSeed(Apps);
  Cfg.Invocations = Quick ? 60000 : 200000;
  Cfg.HotThreshold = 24;
                        // not tier policy, and a mixed stream dilutes
                        // per-method heat
  Cfg.RetrainEvery = 4096;
  Cfg.RetrainThreshold = Threshold;
  const uint64_t Epochs = Cfg.Invocations / Cfg.EpochLen;
  const uint64_t ShiftEpoch = Epochs / 3;

  // The step shift: before ShiftEpoch the pre-family owns the interleave
  // 20:1, after it the post-family does.  Pure in (epoch, app), so the
  // drifting stream stays bit-identical at any --jobs.
  auto Drift = [NumPreApps, ShiftEpoch](uint64_t Epoch, size_t App) {
    bool IsPre = App < NumPreApps;
    bool Shifted = Epoch >= ShiftEpoch;
    return (IsPre != Shifted) ? 1.0 : 0.05;
  };

  // Factory corpora.  The stale/online starting filter sees only the
  // pre-shift family; the oracle sees both.
  std::cerr << "tracing " << PreFamily << " + " << PostFamily
            << " factory corpora (cache-served when warm)...\n";
  std::vector<BenchmarkRun> PreRuns =
      Engine.generateSuiteData(Pre->makeBenchmarkSuite(), Model);
  std::vector<BenchmarkRun> PostRuns =
      Engine.generateSuiteData(Post->makeBenchmarkSuite(), Model);

  Dataset PreSet("pre");
  for (const Dataset &D : Engine.labelSuite(PreRuns, Threshold))
    PreSet.append(D);
  Dataset BothSet("both");
  BothSet.append(PreSet);
  for (const Dataset &D : Engine.labelSuite(PostRuns, Threshold))
    BothSet.append(D);

  RuleSet StaleRules = Ripper().train(PreSet, Pool);
  RuleSet OracleRules = Ripper().train(BothSet, Pool);

  std::vector<BlockRecord> SeedCorpus;
  for (const BenchmarkRun &R : PreRuns)
    SeedCorpus.insert(SeedCorpus.end(), R.Records.begin(), R.Records.end());

  std::cout << "Online adaptation after a workload shift ("
            << PreFamily << " -> " << PostFamily << " at epoch "
            << ShiftEpoch << " of " << Epochs << ", t = "
            << formatTrimmed(Threshold) << ", retrain every "
            << Cfg.RetrainEvery << " ticks)\n";

  // The three variants over the bit-identical drifting stream.
  std::vector<Variant> Variants(3);
  Variants[0].Name = "static";
  Variants[0].Run = runMultiAppComparison(Apps, Programs, Model, Cfg,
                                          StaleRules, Pool, Drift);
  {
    ServiceConfig OnlineCfg = Cfg;
    OnlineCfg.Online = true;
    Variants[1].Name = "online";
    Variants[1].Run =
        runMultiAppComparison(Apps, Programs, Model, OnlineCfg, StaleRules,
                              Pool, Drift, SeedCorpus);
  }
  Variants[2].Name = "oracle";
  Variants[2].Run = runMultiAppComparison(Apps, Programs, Model, Cfg,
                                          OracleRules, Pool, Drift);

  // Alignment proof before any number is quoted: the Always side is
  // filter-independent, so all three must agree bit-for-bit, and every
  // Filtered side must drain the same (epoch, method) sequence.
  const ServiceStats &Always = Variants[0].Run.Always.Total;
  for (const Variant &V : Variants) {
    if (!(V.Run.Always.Total == Always)) {
      std::cerr << "error: Always-side stats diverged across variants "
                   "(determinism bug)\n";
      return 1;
    }
    if (!sameDrainSequence(V.Run.Filtered.Total, Always)) {
      std::cerr << "error: drain sequences diverged across policies "
                   "(alignment bug)\n";
      return 1;
    }
  }

  const double AlwaysBenefit = Always.BaselineAppTime - Always.AppTime;
  const uint64_t AlwaysPostWork = postShiftWork(Always, ShiftEpoch);
  for (Variant &V : Variants) {
    const ServiceStats &St = V.Run.Filtered.Total;
    V.Benefit = St.BaselineAppTime - St.AppTime;
    V.Retention = safeRatio(V.Benefit, AlwaysBenefit);
    V.PostWork = postShiftWork(St, ShiftEpoch);
  }

  const ServiceStats &Online = Variants[1].Run.Filtered.Total;
  TablePrinter T({"Filter", "Retention", "Post-shift work vs LS",
                  "Retrains", "Final version"});
  T.addRow({"always-LS", formatPercent(1.0, 1), formatPercent(1.0, 1), "-",
            "-"});
  for (const Variant &V : Variants) {
    const ServiceStats &St = V.Run.Filtered.Total;
    T.addRow({V.Name, formatPercent(V.Retention, 1),
              formatPercent(safeRatio(static_cast<double>(V.PostWork),
                                      static_cast<double>(AlwaysPostWork)),
                            1),
              St.Retrains ? std::to_string(St.Retrains) : "-",
              St.FinalFilterVersion ? "v" + std::to_string(St.FinalFilterVersion)
                                    : "-"});
  }
  T.print(std::cout);

  // The headline: how much of the benefit the stale filter forfeited did
  // online training win back?
  const double Lost = Variants[2].Benefit - Variants[0].Benefit;
  const double Recovered =
      safeRatio(Variants[1].Benefit - Variants[0].Benefit, Lost);
  const double StaticGap = Variants[2].Retention - Variants[0].Retention;

  std::cout << "\nstale filter forfeits "
            << formatPercent(StaticGap, 1)
            << " of the ceiling's retention after the shift; online "
               "training recovers " << formatPercent(Recovered, 1)
            << " of the forfeited benefit over " << Online.Retrains
            << " retrains\n";

  const bool ShiftHurts = StaticGap >= 0.05;
  const bool OnlineRecovers = Recovered >= 0.5;
  std::cout << "gate: shift costs the static filter >= 5% retention: "
            << (ShiftHurts ? "yes" : "NO")
            << "; online recovers >= 50% of it: "
            << (OnlineRecovers ? "yes" : "NO") << '\n';

  std::ostringstream OS;
  OS << "{\n  \"bench\": \"online_adapt\",\n"
     << "  \"pre_family\": \"" << PreFamily << "\",\n"
     << "  \"post_family\": \"" << PostFamily << "\",\n"
     << "  \"threshold\": " << formatTrimmed(Threshold) << ",\n"
     << "  \"invocations\": " << Cfg.Invocations << ",\n"
     << "  \"shift_epoch\": " << ShiftEpoch << ",\n"
     << "  \"retrain_every\": " << Cfg.RetrainEvery << ",\n"
     << "  \"always_benefit\": " << AlwaysBenefit << ",\n"
     << "  \"variants\": [\n";
  for (size_t I = 0; I != Variants.size(); ++I) {
    const Variant &V = Variants[I];
    const ServiceStats &St = V.Run.Filtered.Total;
    OS << "    {\"name\": \"" << V.Name << "\", \"benefit\": " << V.Benefit
       << ", \"retention\": " << V.Retention
       << ", \"post_shift_work\": " << V.PostWork
       << ", \"retrains\": " << St.Retrains
       << ", \"final_version\": " << St.FinalFilterVersion
       << ", \"corpus_records\": " << St.CorpusRecords << "}"
       << (I + 1 == Variants.size() ? "\n" : ",\n");
  }
  OS << "  ],\n"
     << "  \"post_shift_work_always\": " << AlwaysPostWork << ",\n"
     << "  \"static_retention_gap\": " << StaticGap << ",\n"
     << "  \"recovered_fraction\": " << Recovered << ",\n"
     << "  \"gate_passed\": "
     << ((ShiftHurts && OnlineRecovers) ? "true" : "false") << "\n}\n";

  std::string OutPath = benchOutPath(CL, "out", "BENCH_online_adapt.json");
  if (!writeBenchJson(OutPath, OS.str()))
    return 1;
  return (ShiftHurts && OnlineRecovers) ? 0 : 1;
}
