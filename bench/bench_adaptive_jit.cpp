//===- bench/bench_adaptive_jit.cpp - Hot-method-only compilation ----------===//
//
// Paper §3.1: "we did not apply our filters to a compilation approach
// that identifies and optimizes only frequently executed (or hot)
// methods.  Applying filters to this approach would still save a lot of
// scheduling time ... but the savings will be smaller as a fraction of
// application running time (because compile time will be smaller
// overall)."
//
// This bench reproduces that discussion quantitatively: for several
// hot-method fractions it compiles SPECjvm98 under LS and L/N (filter at
// t = 0, LOOCV) restricted to hot methods, and reports scheduling work
// and application (simulated) time.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "runtime/CompileService.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/CommandLine.h"

#include "EngineOption.h"

#include <iostream>

using namespace schedfilter;

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkRun> Suite =
      Engine.generateSuiteData(specjvm98Suite(), Model);
  std::vector<Dataset> Labeled = Engine.labelSuite(Suite, 0.0);
  std::vector<LoocvFold> Folds =
      leaveOneOut(Labeled, ripperLearner(), Engine.pool());

  std::cout << "Adaptive (hot-method-only) JIT regime: filter savings at "
               "each hot fraction\n(SPECjvm98 geometric means; t = 0 "
               "filters, LOOCV)\n\n";
  TablePrinter T({"Hot fraction", "LS work", "L/N work", "L/N / LS",
                  "App time LS", "App time L/N"});

  for (double Hot : {1.0, 0.5, 0.25, 0.1}) {
    std::vector<double> LsWork, LnWork, Ratio, AppLS, AppLN;
    for (size_t B = 0; B != Suite.size(); ++B) {
      const BenchmarkRun &Run = Suite[B];
      CompileReport NS =
          compileProgramAdaptive(Run.Prog, Model, SchedulingPolicy::Never,
                                 nullptr, Hot);
      CompileReport LS =
          compileProgramAdaptive(Run.Prog, Model, SchedulingPolicy::Always,
                                 nullptr, Hot);
      ScheduleFilter F(Folds[B].Filter);
      CompileReport LN = compileProgramAdaptive(
          Run.Prog, Model, SchedulingPolicy::Filtered, &F, Hot);
      LsWork.push_back(static_cast<double>(LS.SchedulingWork));
      LnWork.push_back(static_cast<double>(LN.SchedulingWork));
      Ratio.push_back(safeRatio(static_cast<double>(LN.SchedulingWork),
                                static_cast<double>(LS.SchedulingWork)));
      AppLS.push_back(LS.SimulatedTime / NS.SimulatedTime);
      AppLN.push_back(LN.SimulatedTime / NS.SimulatedTime);
    }
    T.addRow({formatPercent(Hot, 0),
              formatDouble(geometricMean(LsWork) / 1e3, 0) + "k",
              formatDouble(geometricMean(LnWork) / 1e3, 0) + "k",
              formatPercent(geometricMean(Ratio), 1),
              formatDouble(geometricMean(AppLS), 4),
              formatDouble(geometricMean(AppLN), 4)});
  }
  T.print(std::cout);

  std::cout << "\nAs the paper argues: the filter's *relative* savings "
               "persist at every hot\nfraction (the L/N / LS column), while "
               "the absolute amount of scheduling work\nit avoids shrinks "
               "with the amount of scheduling done at all.\n";
  return 0;
}
