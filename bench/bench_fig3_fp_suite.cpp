//===- bench/bench_fig3_fp_suite.cpp - Paper Figure 3 ----------------------===//
//
// Regenerates Figure 3: the same efficiency/effectiveness threshold sweep
// as Figure 2, but on the suite of programs chosen *because* they benefit
// from scheduling (Table 7: linpack, power, bh, voronoi, aes, scimark).
//
// Paper reference: on this suite scheduling matters a lot, and the point
// of the figure is critical: filtering must preserve the large benefit
// while cutting effort.  The shape to check: (b) L/N hugs the LS line at
// low thresholds (here ~99% of the benefit at t=0), and (a) effort is
// reduced, though less dramatically than on SPECjvm98 because these
// programs genuinely contain many schedulable blocks.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "harness/TableRender.h"
#include "support/CommandLine.h"

#include "EngineOption.h"

#include <iostream>

using namespace schedfilter;

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkRun> Suite = Engine.generateSuiteData(fpSuite(), Model);
  std::vector<ThresholdResult> Sweep =
      Engine.runThresholdSweep(Suite, paperThresholds(), ripperLearner());

  renderEffortFigure(Sweep, /*UseWallTime=*/false, std::cout);
  std::cout << '\n';
  renderEffortFigure(Sweep, /*UseWallTime=*/true, std::cout);
  std::cout << '\n';
  renderAppTimeFigure(Sweep, std::cout);
  std::cout << '\n';
  renderHeadline(Sweep, std::cout);
  return 0;
}
