//===- bench/bench_ablation_features.cpp - Feature-group ablation ----------===//
//
// §2.1 of the paper develops its 13 features with "a little domain
// knowledge" and reports they "work well" without refinement; the sample
// filter in Figure 4 suggests block size and the call/system/load/store
// fractions carry most of the signal.  This ablation quantifies that:
// LOOCV error on SPECjvm98 (t = 0) with feature groups removed (their
// columns zeroed so they carry no information).
//
//   all features      - the paper's Table 1 set
//   no bbLen          - drop the block size
//   no op kinds       - drop branch/call/load/store/return fractions
//   no FU use         - drop integer/float/system fractions
//   no hazards        - drop PEI/GC/TS/yield fractions
//   bbLen only        - size alone
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "ml/Metrics.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/CommandLine.h"

#include "EngineOption.h"

#include <iostream>

using namespace schedfilter;

namespace {

Dataset maskFeatures(const Dataset &D, const std::vector<unsigned> &Dropped) {
  Dataset Out(D.getName());
  for (const Instance &I : D) {
    Instance Masked = I;
    for (unsigned F : Dropped)
      Masked.X[F] = 0.0;
    Out.add(Masked);
  }
  return Out;
}

double loocvError(ExperimentEngine &Engine,
                  const std::vector<Dataset> &Labeled,
                  const std::vector<unsigned> &Dropped) {
  std::vector<Dataset> Masked;
  for (const Dataset &D : Labeled)
    Masked.push_back(maskFeatures(D, Dropped));
  std::vector<LoocvFold> Folds =
      leaveOneOut(Masked, ripperLearner(), Engine.pool());
  std::vector<double> Errors;
  for (size_t B = 0; B != Masked.size(); ++B)
    Errors.push_back(errorRatePercent(Folds[B].Filter, Masked[B]));
  return geometricMean(Errors);
}

} // namespace

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkRun> Suite =
      Engine.generateSuiteData(specjvm98Suite(), Model);
  std::vector<Dataset> Labeled = Engine.labelSuite(Suite, 0.0);

  const std::vector<unsigned> OpKinds = {FeatBranch, FeatCall, FeatLoad,
                                         FeatStore, FeatReturn};
  const std::vector<unsigned> FuUse = {FeatInteger, FeatFloat, FeatSystem};
  const std::vector<unsigned> Hazards = {FeatPEI, FeatGC, FeatTS, FeatYield};
  std::vector<unsigned> AllButBBLen;
  for (unsigned F = FeatBranch; F != NumFeatures; ++F)
    AllButBBLen.push_back(F);

  std::cout << "Feature-group ablation: LOOCV error on SPECjvm98 at t = 0\n\n";
  TablePrinter T({"Feature set", "Error % (geomean)"});
  T.addRow({"all features (Table 1)", formatDouble(loocvError(Engine, Labeled, {}), 2)});
  T.addRow({"no bbLen", formatDouble(loocvError(Engine, Labeled, {FeatBBLen}), 2)});
  T.addRow({"no op kinds", formatDouble(loocvError(Engine, Labeled, OpKinds), 2)});
  T.addRow({"no FU use", formatDouble(loocvError(Engine, Labeled, FuUse), 2)});
  T.addRow({"no hazards", formatDouble(loocvError(Engine, Labeled, Hazards), 2)});
  T.addRow({"bbLen only", formatDouble(loocvError(Engine, Labeled, AllButBBLen), 2)});
  T.print(std::cout);

  std::cout << "\nExpected shape (matching the paper's Figure 4 reading): "
               "removing bbLen hurts\nmost, op-kind fractions matter next, "
               "and hazards are fine-tuning.\n";
  return 0;
}
