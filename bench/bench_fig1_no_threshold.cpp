//===- bench/bench_fig1_no_threshold.cpp - Paper Figure 1 ------------------===//
//
// Regenerates Figure 1: at t = 0 on SPECjvm98, (a) the scheduling time of
// the L/N filter relative to always list scheduling (LS), and (b) the
// application running time of LS and L/N relative to never scheduling
// (NS).
//
// Paper reference: (a) L/N takes 38% of LS's scheduling time on average
// (2.5x faster); (b) LS at 0.977 and L/N at 0.979 of NS, i.e. the filter
// keeps ~93% of LS's benefit.  Here application time is the simulated
// SIM(P) metric (the paper's Table 4 counterpart), so the improvements are
// larger in magnitude; the shape to check is L/N tracking LS closely while
// spending a fraction of the effort.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "harness/TableRender.h"
#include "support/CommandLine.h"

#include "EngineOption.h"

#include <iostream>

using namespace schedfilter;

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkRun> Suite =
      Engine.generateSuiteData(specjvm98Suite(), Model);
  std::vector<ThresholdResult> Sweep =
      Engine.runThresholdSweep(Suite, {0.0}, ripperLearner());

  renderEffortFigure(Sweep, /*UseWallTime=*/false, std::cout);
  std::cout << '\n';
  renderEffortFigure(Sweep, /*UseWallTime=*/true, std::cout);
  std::cout << '\n';
  renderAppTimeFigure(Sweep, std::cout);
  std::cout << '\n';
  renderHeadline(Sweep, std::cout);
  return 0;
}
