//===- bench/bench_robustness.cpp - Effort/benefit under noise ------------===//
//
// The production question behind the paper's transfer experiment: how
// much signal corruption does the induced filter's advantage survive?
// For every registered workload family, the severity ladder of
// noise/Robustness.h is swept: each rung perturbs the traced suite
// through its noise stack, relabels through the stack's label hooks,
// LOOCV-trains RIPPER, and prices the held-out filters against the
// always-schedule baseline.
//
// The frontier per rung:
//   retention R = share of always-schedule's app-time benefit kept;
//   effort    E = share of always-schedule's scheduling work spent.
// Always-schedule sits at (1, 1), so the filter wins while R - E >= 0.
// A final section serves one family's app mix through MultiAppService
// under a static vs a drifting interleave (the drift source), comparing
// recouped scheduling work under both traffics.
//
// Every number is deterministic -- bit-identical at any --jobs and any
// corpus-cache temperature (perturbation applies downstream of the
// cache) -- which CI pins with byte-diffs of this binary's output.
//
//===----------------------------------------------------------------------===//

#include "ml/Ripper.h"
#include "noise/Robustness.h"
#include "runtime/MultiAppService.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include "BenchJson.h"
#include "EngineOption.h"
#include "NoiseOption.h"
#include "WorkloadOption.h"

#include <iostream>
#include <sstream>

using namespace schedfilter;

namespace {

/// One family's sweep: suite generated once (cache-served when warm),
/// each rung evaluated on a fresh perturbed copy.
struct FamilySweep {
  std::string Family;
  std::vector<unsigned> Levels;
  std::vector<RobustnessPoint> Points;
};

FamilySweep sweepFamily(ExperimentEngine &Engine, const WorkloadFamily &F,
                        const std::vector<unsigned> &Levels, double Threshold,
                        uint64_t Seed) {
  FamilySweep S;
  S.Family = F.name();
  S.Levels = Levels;
  std::vector<BenchmarkRun> Suite = Engine.generateSuiteData(
      F.makeBenchmarkSuite(), MachineModel::ppc7410());
  for (unsigned L : Levels)
    S.Points.push_back(runRobustnessPoint(Engine, Suite,
                                          robustnessStack(L, Seed), Threshold));
  return S;
}

/// True when the win margin never increases as severity does.
bool monotoneMargins(const std::vector<RobustnessPoint> &Points) {
  for (size_t I = 1; I < Points.size(); ++I)
    if (Points[I].WinMargin > Points[I - 1].WinMargin + 1e-12)
      return false;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  std::optional<uint64_t> Seed =
      parseCountOption(CL, "noise-seed", DefaultNoiseSeed, 0, UINT64_MAX);
  if (!Seed)
    return 1;
  std::optional<double> Threshold = CL.getDouble("threshold", 20.0);
  if (!Threshold)
    return 1;
  if (!(*Threshold >= 0.0 && *Threshold <= 100.0)) {
    std::cerr << "error: --threshold expects a percentage in [0, 100] "
                 "(got '" << CL.get("threshold") << "')\n";
    return 1;
  }
  const bool Quick = CL.has("quick");

  // Which families and which rungs.  --quick keeps CI's smoke cheap: one
  // family, the ladder endpoints plus one middle rung.
  std::vector<const WorkloadFamily *> Families;
  std::string SuiteName = CL.get("suite");
  if (!SuiteName.empty()) {
    const WorkloadFamily *F = findWorkloadFamily(SuiteName);
    if (!F) {
      std::cerr << "error: unknown suite: got '" << SuiteName
                << "', known: " << knownFamilyNames() << '\n';
      return 1;
    }
    Families.push_back(F);
  } else if (Quick) {
    Families.push_back(findWorkloadFamily("specjvm98"));
  } else {
    Families = WorkloadRegistry::instance().families();
  }
  std::vector<unsigned> Levels;
  if (Quick) {
    Levels = {0, 2, numRobustnessLevels() - 1};
  } else {
    for (unsigned L = 0; L != numRobustnessLevels(); ++L)
      Levels.push_back(L);
  }

  std::cout << "Robustness frontier: effort vs benefit retention under the "
               "noise ladder\n(t = " << formatTrimmed(*Threshold)
            << ", LOOCV RIPPER, noise seed " << *Seed
            << "; win margin = retention - effort)\n";

  std::ostringstream OS;
  OS << "{\n  \"bench\": \"robustness\",\n"
     << "  \"threshold\": " << formatTrimmed(*Threshold) << ",\n"
     << "  \"noise_seed\": " << *Seed << ",\n  \"families\": [\n";

  bool AllMonotone = true;
  for (size_t FI = 0; FI != Families.size(); ++FI) {
    const WorkloadFamily &F = *Families[FI];
    FamilySweep S = sweepFamily(Engine, F, Levels, *Threshold, *Seed);

    std::cout << "\n" << F.displayName() << " (" << F.description() << ")\n";
    TablePrinter T({"Level", "Stack", "Train LS/NS", "Effort vs LS",
                    "App time vs NS", "Retention", "Win margin", "Verdict"});
    OS << "    {\"family\": \"" << S.Family << "\", \"points\": [\n";
    for (size_t I = 0; I != S.Points.size(); ++I) {
      const RobustnessPoint &P = S.Points[I];
      T.addRow({"L" + std::to_string(S.Levels[I]),
                P.Stack,
                std::to_string(P.TrainLS) + "/" + std::to_string(P.TrainNS),
                formatPercent(P.EffortRatio, 1), formatDouble(P.AppTimeLN, 4),
                formatPercent(P.Retention, 1),
                formatDouble(P.WinMargin, 3),
                P.WinMargin >= 0.0 ? "filter wins" : "always-LS wins"});
      OS << "      {\"level\": " << S.Levels[I] << ", \"stack\": \"" << P.Stack
         << "\", \"train_ls\": " << P.TrainLS
         << ", \"train_ns\": " << P.TrainNS
         << ", \"effort\": " << P.EffortRatio
         << ", \"app_ln\": " << P.AppTimeLN << ", \"app_ls\": " << P.AppTimeLS
         << ", \"retention\": " << P.Retention
         << ", \"win_margin\": " << P.WinMargin << "}"
         << (I + 1 == S.Points.size() ? "\n" : ",\n");
    }
    T.print(std::cout);
    bool Monotone = monotoneMargins(S.Points);
    AllMonotone = AllMonotone && Monotone;
    std::cout << "frontier monotone (win margin non-increasing): "
              << (Monotone ? "yes" : "NO") << '\n';
    OS << "    ], \"monotone\": " << (Monotone ? "true" : "false") << "}"
       << (FI + 1 == Families.size() ? "\n" : ",\n");
  }
  OS << "  ],\n";

  // Drifting-mix section: the same interleaved stream served with a
  // static vs a drifting app mix, under the first family's pooled
  // filter.  Drift reshapes *which* apps own the clock, not any app's
  // own method draws, so the comparison isolates traffic shape.
  {
    const WorkloadFamily &F = *Families.front();
    std::vector<AppSpec> Apps = expandWorkloadMix({{F.name(), 1.0}});
    std::vector<Program> Programs = generateMixPrograms(Apps);
    std::vector<BenchmarkRun> Suite = Engine.generateSuiteData(
        F.makeBenchmarkSuite(), MachineModel::ppc7410());
    Dataset Pooled("pooled");
    for (const Dataset &D : Engine.labelSuite(Suite, *Threshold))
      Pooled.append(D);
    RuleSet Rules = Ripper().train(Pooled, Engine.pool());

    ServiceConfig Cfg;
    Cfg.StreamSeed = workloadMixSeed(Apps);
    if (Quick)
      Cfg.Invocations = 40000;
    const double Amplitude = 1.0;
    ParseResult<NoiseStack> Parsed =
        parseNoiseStack("drift:" + formatTrimmed(Amplitude), *Seed);
    NoiseStack Drift = std::move(*Parsed);

    MultiAppComparison Static = runMultiAppComparison(
        Apps, Programs, MachineModel::ppc7410(), Cfg, Rules, Engine.pool());
    MultiAppComparison Drifting =
        runMultiAppComparison(Apps, Programs, MachineModel::ppc7410(), Cfg,
                              Rules, Engine.pool(), Drift.mixDrift());

    std::cout << "\nDrifting mix (" << F.displayName() << " x "
              << Apps.size() << " apps, " << Drift.describe()
              << "): recouped scheduling work\n  static mix:   "
              << formatPercent(Static.RecoupedWorkFraction, 1)
              << "\n  drifting mix: "
              << formatPercent(Drifting.RecoupedWorkFraction, 1) << '\n';
    OS << "  \"drift\": {\"family\": \"" << F.name()
       << "\", \"stack\": \"" << Drift.describe()
       << "\", \"static_recoup\": " << Static.RecoupedWorkFraction
       << ", \"drifting_recoup\": " << Drifting.RecoupedWorkFraction
       << "},\n";
  }

  OS << "  \"all_monotone\": " << (AllMonotone ? "true" : "false") << "\n}\n";
  std::string OutPath = benchOutPath(CL, "out", "BENCH_robustness.json");
  if (!writeBenchJson(OutPath, OS.str()))
    return 1;
  return 0;
}
