//===- bench/bench_serve_throughput.cpp - CompileService suite sweep --------===//
//
// The runtime-regime counterpart of bench_adaptive_jit: every SPECjvm98
// stand-in is replayed through the CompileService (sampling, bounded
// queue, tiered promotion under a virtual clock) with its LOOCV t = 0
// filter in the optimizing tier, against the same service with LS in the
// optimizing tier.  Reported per benchmark: promotion/queue dynamics,
// tier residency, and the scheduling work the filter recoups once
// compilation happens at run time -- the paper's §3.1 claim, measured in
// the regime it was made about.
//
// All table numbers are deterministic (bit-identical at any --jobs and
// cache temperature); wall-clock throughput goes to stderr.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "runtime/CompileService.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/CommandLine.h"
#include "support/Timer.h"

#include "EngineOption.h"

#include <iostream>

using namespace schedfilter;

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkSpec> Specs = specjvm98Suite();
  std::vector<BenchmarkRun> Suite = Engine.generateSuiteData(Specs, Model);
  std::vector<Dataset> Labeled = Engine.labelSuite(Suite, 0.0);
  std::vector<LoocvFold> Folds =
      leaveOneOut(Labeled, ripperLearner(), Engine.pool());

  std::cout << "CompileService regime: invocation streams served under LS "
               "vs L/N optimizing tiers\n(SPECjvm98; t = 0 LOOCV filters; "
               "default service config)\n\n";
  TablePrinter T({"Benchmark", "Promoted", "Deferred", "Max queue",
                  "Opt residency", "LS work", "L/N work", "Recouped"});

  AccumulatingTimer Wall;
  Wall.start();
  std::vector<double> WorkRatio, Residency;
  uint64_t TotalInvocations = 0;
  for (size_t B = 0; B != Suite.size(); ++B) {
    ServiceConfig Cfg;
    Cfg.StreamSeed = invocationStreamSeed(Specs[B].Seed);
    ServeComparison Cmp = runServeComparison(
        Suite[B].Prog, Model, Cfg, Folds[B].Filter, Engine.pool());
    const ServiceStats &LS = Cmp.Always;
    const ServiceStats &LN = Cmp.Filtered;
    double OptResidency =
        safeRatio(static_cast<double>(LN.OptimizedInvocations),
                  static_cast<double>(LN.Invocations));
    T.addRow({Suite[B].Name, std::to_string(LN.Promotions),
              std::to_string(LN.Deferred),
              std::to_string(LN.MaxQueueDepth),
              formatPercent(OptResidency, 1),
              std::to_string(LS.SchedulingWork),
              std::to_string(LN.SchedulingWork),
              formatPercent(Cmp.RecoupedWorkFraction, 1)});
    // Geomean over the (always positive) L/N-to-LS work ratios, so a
    // benchmark whose filter *costs* work (ratio > 1, negative recoup)
    // degrades the headline instead of being clamped away.
    WorkRatio.push_back(safeRatio(static_cast<double>(LN.SchedulingWork),
                                  static_cast<double>(LS.SchedulingWork),
                                  1.0));
    Residency.push_back(OptResidency);
    TotalInvocations += LS.Invocations + LN.Invocations;
  }
  Wall.stop();
  T.print(std::cout);

  std::cout << "\nrecouped scheduling work (1 - geomean work ratio): "
            << formatPercent(1.0 - geometricMean(WorkRatio), 1)
            << "; mean optimized-tier residency: "
            << formatPercent(mean(Residency), 1) << '\n';

  double Seconds = Wall.seconds();
  std::cerr << "throughput: " << TotalInvocations
            << " invocations served in " << formatDouble(Seconds * 1e3, 1)
            << " ms ("
            << formatDouble(Seconds > 0.0 ? static_cast<double>(
                                                TotalInvocations) /
                                                Seconds / 1e6
                                          : 0.0,
                            2)
            << "M inv/s)\n";
  return 0;
}
