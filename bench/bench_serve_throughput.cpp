//===- bench/bench_serve_throughput.cpp - CompileService suite sweep --------===//
//
// The runtime-regime counterpart of bench_adaptive_jit: every SPECjvm98
// stand-in is replayed through the CompileService (sampling, bounded
// queue, tiered promotion under a virtual clock) with its LOOCV t = 0
// filter in the optimizing tier, against the same service with LS in the
// optimizing tier.  Reported per benchmark: promotion/queue dynamics,
// tier residency, and the scheduling work the filter recoups once
// compilation happens at run time -- the paper's §3.1 claim, measured in
// the regime it was made about.
//
// The whole sweep runs twice, once per filter evaluator (compiled and
// interpreter), asserting every ServiceStats field is identical between
// the two -- the compiled evaluator's end-to-end effect is then a pure
// wall-clock difference, reported to stderr.  --filter-eval picks which
// mode the (identical) stdout table is attributed to.
//
// All table numbers are deterministic (bit-identical at any --jobs and
// cache temperature); wall-clock throughput goes to stderr.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "runtime/CompileService.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/CommandLine.h"
#include "support/Timer.h"

#include "EngineOption.h"
#include "FilterEvalOption.h"
#include "WorkloadOption.h"

#include <iostream>

using namespace schedfilter;

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  if (!parseFilterEvalOption(CL))
    return 1;
  // --workload swaps in any family mix's benchmarks (each still served as
  // its own single-app stream here; sf-serve --workload interleaves them).
  // Weights are accepted for flag symmetry but don't affect this sweep.
  std::optional<WorkloadMix> Mix = parseWorkloadOption(CL);
  if (!Mix)
    return 1;
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkSpec> Specs =
      Mix->empty() ? specjvm98Suite() : workloadMixSuite(*Mix);
  std::vector<BenchmarkRun> Suite = Engine.generateSuiteData(Specs, Model);
  std::vector<Dataset> Labeled = Engine.labelSuite(Suite, 0.0);
  std::vector<LoocvFold> Folds =
      leaveOneOut(Labeled, ripperLearner(), Engine.pool());

  // One full sweep per evaluator mode.  The stats must be bit-identical
  // between the two (the compiled filter's equivalence contract), so the
  // second sweep costs wall clock only -- which is exactly the number it
  // exists to produce.
  auto RunSweep = [&](FilterEval Mode, std::vector<ServeComparison> &Out) {
    ScheduleFilter::setDefaultEval(Mode);
    Out.clear();
    AccumulatingTimer Wall;
    Wall.start();
    for (size_t B = 0; B != Suite.size(); ++B) {
      ServiceConfig Cfg;
      Cfg.StreamSeed = invocationStreamSeed(Specs[B].Seed);
      Out.push_back(runServeComparison(Suite[B].Prog, Model, Cfg,
                                       Folds[B].Filter, Engine.pool()));
    }
    Wall.stop();
    return Wall.seconds();
  };

  FilterEval Primary = ScheduleFilter::defaultEval();
  FilterEval Secondary = Primary == FilterEval::Compiled
                             ? FilterEval::Interpreted
                             : FilterEval::Compiled;
  std::vector<ServeComparison> Results, Cross;
  double PrimarySeconds = RunSweep(Primary, Results);
  double SecondarySeconds = RunSweep(Secondary, Cross);
  ScheduleFilter::setDefaultEval(Primary);

  for (size_t B = 0; B != Suite.size(); ++B)
    if (Results[B].Always != Cross[B].Always ||
        Results[B].Filtered != Cross[B].Filtered) {
      std::cerr << "error: " << getFilterEvalName(Primary) << " and "
                << getFilterEvalName(Secondary)
                << " evaluators diverged on " << Suite[B].Name
                << " (run compiled_filter_test)\n";
      return 1;
    }

  std::cout << "CompileService regime: invocation streams served under LS "
               "vs L/N optimizing tiers\n("
            << (Mix->empty() ? familyDisplayName("specjvm98")
                             : formatWorkloadMix(*Mix))
            << "; t = 0 LOOCV filters; default service config; "
            << getFilterEvalName(Primary) << " filter evaluator)\n\n";
  TablePrinter T({"Benchmark", "Promoted", "Deferred", "Max queue",
                  "Opt residency", "LS work", "L/N work", "Recouped"});

  std::vector<double> WorkRatio, Residency;
  uint64_t TotalInvocations = 0;
  for (size_t B = 0; B != Suite.size(); ++B) {
    const ServiceStats &LS = Results[B].Always;
    const ServiceStats &LN = Results[B].Filtered;
    double OptResidency =
        safeRatio(static_cast<double>(LN.OptimizedInvocations),
                  static_cast<double>(LN.Invocations));
    T.addRow({Suite[B].Name, std::to_string(LN.Promotions),
              std::to_string(LN.Deferred),
              std::to_string(LN.MaxQueueDepth),
              formatPercent(OptResidency, 1),
              std::to_string(LS.SchedulingWork),
              std::to_string(LN.SchedulingWork),
              formatPercent(Results[B].RecoupedWorkFraction, 1)});
    // Geomean over the (always positive) L/N-to-LS work ratios, so a
    // benchmark whose filter *costs* work (ratio > 1, negative recoup)
    // degrades the headline instead of being clamped away.
    WorkRatio.push_back(safeRatio(static_cast<double>(LN.SchedulingWork),
                                  static_cast<double>(LS.SchedulingWork),
                                  1.0));
    Residency.push_back(OptResidency);
    TotalInvocations += LS.Invocations + LN.Invocations;
  }
  T.print(std::cout);

  std::cout << "\nrecouped scheduling work (1 - geomean work ratio): "
            << formatPercent(1.0 - geometricMean(WorkRatio), 1)
            << "; mean optimized-tier residency: "
            << formatPercent(mean(Residency), 1) << '\n';

  double CompiledSeconds =
      Primary == FilterEval::Compiled ? PrimarySeconds : SecondarySeconds;
  double InterpSeconds =
      Primary == FilterEval::Compiled ? SecondarySeconds : PrimarySeconds;
  std::cerr << "throughput: " << TotalInvocations
            << " invocations served in "
            << formatDouble(PrimarySeconds * 1e3, 1) << " ms ("
            << formatDouble(PrimarySeconds > 0.0
                                ? static_cast<double>(TotalInvocations) /
                                      PrimarySeconds / 1e6
                                : 0.0,
                            2)
            << "M inv/s, " << getFilterEvalName(Primary) << ")\n";
  std::cerr << "filter evaluators (identical stats): compiled "
            << formatDouble(CompiledSeconds * 1e3, 1) << " ms vs interpreter "
            << formatDouble(InterpSeconds * 1e3, 1)
            << " ms; end-to-end speedup "
            << formatDouble(
                   CompiledSeconds > 0.0 ? InterpSeconds / CompiledSeconds
                                         : 0.0,
                   2)
            << "x\n";
  return 0;
}
