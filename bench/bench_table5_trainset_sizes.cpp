//===- bench/bench_table5_trainset_sizes.cpp - Paper Table 5 ---------------===//
//
// Regenerates Table 5: the effect of the threshold t on training-set size
// for SPECjvm98.  Instances whose scheduling benefit lies in (0, t] are
// dropped, so the LS count falls steadily with t while the NS count is
// exactly constant (NS labeling does not depend on t).
//
// Paper reference: LS falls 8173 -> 49 over t = 0..50; NS constant 37280.
// Absolute counts differ here (synthetic suite, smaller population); the
// monotone LS decay and constant NS are the reproduced properties.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "harness/TableRender.h"
#include "support/CommandLine.h"

#include "EngineOption.h"

#include <iostream>

using namespace schedfilter;

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkRun> Suite =
      Engine.generateSuiteData(specjvm98Suite(), Model);

  // Only labeling is needed for this table; avoid the full LOOCV sweep.
  std::vector<ThresholdResult> Sweep;
  for (double T : paperThresholds()) {
    ThresholdResult R;
    R.ThresholdPct = T;
    for (const Dataset &D : Engine.labelSuite(Suite, T)) {
      R.TrainLS += D.countLabel(Label::LS);
      R.TrainNS += D.countLabel(Label::NS);
    }
    Sweep.push_back(std::move(R));
  }
  renderTable5(Sweep, std::cout);
  return 0;
}
