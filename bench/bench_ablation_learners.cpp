//===- bench/bench_ablation_learners.cpp - Learner ablation -----------------===//
//
// Ablation study behind the paper's choice of rule induction: compares
// RIPPER against the fixed strategies (always / never schedule) and two
// cheap learned baselines (a bbLen decision stump and 1R, the best
// single-feature split) on SPECjvm98 with leave-one-out cross-validation
// at t = 0 and t = 20.
//
// For each policy we report classification error, scheduling effort
// relative to LS, and application (simulated) time relative to NS.  The
// paper's implicit claim to verify: the multi-condition induced rules beat
// every trivial policy on the effort/benefit frontier (the stump gets part
// of the way -- bbLen is the strongest single feature -- but leaves either
// benefit or effort on the table).
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "ml/Baselines.h"
#include "ml/DecisionTree.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/CommandLine.h"

#include "EngineOption.h"

#include <iostream>

using namespace schedfilter;

namespace {

void runAblation(ExperimentEngine &Engine,
                 const std::vector<BenchmarkRun> &Suite, double Threshold,
                 std::ostream &OS) {
  struct NamedLearner {
    const char *Name;
    LearnerFn Learner;
  };
  const NamedLearner Learners[] = {
      {"RIPPER", ripperLearner()},
      {"C4.5-style tree",
       [](const Dataset &D) { return learnDecisionTreeRules(D); }},
      {"1R (best single split)",
       [](const Dataset &D) { return learnOneR(D); }},
      {"bbLen stump", [](const Dataset &D) { return learnSizeStump(D); }},
      {"always schedule", [](const Dataset &) { return makeAlwaysSchedule(); }},
      {"never schedule", [](const Dataset &) { return makeNeverSchedule(); }},
  };

  OS << "Ablation at t = " << Threshold << " (suite geometric means)\n\n";
  TablePrinter T({"Policy", "Error %", "Model size (rules/conds)",
                  "Effort vs LS", "App time vs NS", "LS benefit retained"});
  for (const NamedLearner &L : Learners) {
    ThresholdResult R = Engine.runThreshold(Suite, Threshold, L.Learner);
    double LS = geometricMean(R.AppRatioLS);
    double LN = geometricMean(R.AppRatioLN);
    double Retained = LS < 1.0 ? 100.0 * (1.0 - LN) / (1.0 - LS) : 100.0;
    size_t Rules = 0, Conds = 0;
    for (const RuleSet &RS : R.Filters) {
      Rules += RS.size();
      Conds += RS.totalConditions();
    }
    T.addRow({L.Name, formatDouble(geometricMean(R.ErrorPct), 2),
              std::to_string(Rules / R.Filters.size()) + "/" +
                  std::to_string(Conds / R.Filters.size()),
              formatPercent(geometricMean(R.EffortRatioWork), 1),
              formatDouble(LN, 4), formatDouble(Retained, 1) + "%"});
  }
  T.print(OS);
  OS << '\n';
}

} // namespace

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkRun> Suite =
      Engine.generateSuiteData(specjvm98Suite(), Model);
  runAblation(Engine, Suite, 0.0, std::cout);
  runAblation(Engine, Suite, 20.0, std::cout);
  return 0;
}
