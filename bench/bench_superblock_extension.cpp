//===- bench/bench_superblock_extension.cpp - Paper §3.1 extension ---------===//
//
// The paper: "We have investigated superblock scheduling in our compiler
// setting, and with it one can get slight (1-2%) additional improvement
// over local scheduling ... We could apply our same procedure to the
// superblock case."  (§3.1 and footnote 6.)
//
// This bench does both things: (1) measures the additional simulated
// improvement of superblock scheduling over local scheduling on each
// suite, and (2) re-runs the whether-to-schedule learning procedure at
// the superblock granularity, reporting cross-validated error -- showing
// the filtering technique carries over, as the paper predicts.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiments.h"
#include "ml/Metrics.h"
#include "ml/Ripper.h"
#include "sched/Superblock.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/CommandLine.h"
#include "support/TaskPool.h"

#include "JobsOption.h"

#include <iostream>

using namespace schedfilter;

namespace {

struct SuperblockData {
  std::string Name;
  double LocalRatio;      // local-scheduled SIM / unscheduled SIM
  double SuperRatio;      // superblock-scheduled SIM / unscheduled SIM
  Dataset Labeled{"sb"};  // superblock-level instances at t = 0
};

SuperblockData measure(const BenchmarkSpec &Spec, const MachineModel &Model) {
  SuperblockData Out;
  Out.Name = Spec.Name;
  Out.Labeled = Dataset(Spec.Name);
  Program P = ProgramGenerator(Spec).generate();
  ListScheduler Local(Model);
  BlockSimulator Sim(Model);

  double Unsched = 0.0, LocalTime = 0.0, SuperTime = 0.0;
  for (const Method &M : P) {
    // Local scheduling block by block.
    for (const BasicBlock &BB : M) {
      double W = static_cast<double>(BB.getExecCount());
      Unsched += W * static_cast<double>(Sim.simulate(BB));
      LocalTime += W * static_cast<double>(
                           Sim.simulate(BB, Local.schedule(BB).Order));
    }
    // Superblock scheduling over the merged hot traces.
    for (const BasicBlock &SB : formSuperblocks(M)) {
      double W = static_cast<double>(SB.getExecCount());
      uint64_t Before = Sim.simulate(SB);
      uint64_t After =
          Sim.simulate(SB, scheduleSuperblock(SB, Model).Order);
      SuperTime += W * static_cast<double>(After);
      BlockRecord Rec;
      Rec.X = extractFeatures(SB);
      Rec.CostNoSched = Before;
      Rec.CostSched = After;
      if (std::optional<Label> L = labelWithThreshold(Rec, 0.0))
        Out.Labeled.add({Rec.X, *L});
    }
  }
  // Note: local and superblock SIM times use different weightings (block
  // vs trace entry counts), so each is normalized by the matching
  // unscheduled baseline.
  double SuperUnsched = 0.0;
  for (const Method &M : P)
    for (const BasicBlock &SB : formSuperblocks(M))
      SuperUnsched += static_cast<double>(SB.getExecCount()) *
                      static_cast<double>(Sim.simulate(SB));
  Out.LocalRatio = LocalTime / Unsched;
  Out.SuperRatio = SuperTime / SuperUnsched;
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  std::optional<unsigned> Jobs = parseJobsOption(CL);
  if (!Jobs)
    return 1;
  TaskPool Pool(*Jobs);

  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkSpec> Suite = specjvm98Suite();

  std::cout << "Superblock extension (paper §3.1): additional improvement "
               "over local scheduling,\nand the filter procedure applied at "
               "superblock granularity\n\n";

  // Per-benchmark measurement is a pure function of (Spec, Model); fan
  // it out and keep suite order by writing into index-owned slots.
  std::vector<SuperblockData> Data(Suite.size());
  Pool.parallelFor(Suite.size(),
                   [&](size_t I) { Data[I] = measure(Suite[I], Model); });

  TablePrinter T({"Benchmark", "Local sched vs NS", "Superblock vs NS",
                  "Extra improvement"});
  std::vector<double> LocalR, SuperR;
  for (const SuperblockData &D : Data) {
    LocalR.push_back(D.LocalRatio);
    SuperR.push_back(D.SuperRatio);
    T.addRow({D.Name, formatDouble(D.LocalRatio, 4),
              formatDouble(D.SuperRatio, 4),
              formatPercent(D.LocalRatio - D.SuperRatio, 2)});
  }
  T.addRow({"geomean", formatDouble(geometricMean(LocalR), 4),
            formatDouble(geometricMean(SuperR), 4),
            formatPercent(geometricMean(LocalR) - geometricMean(SuperR), 2)});
  T.print(std::cout);

  // LOOCV at superblock granularity.
  std::vector<Dataset> Labeled;
  for (SuperblockData &D : Data)
    Labeled.push_back(std::move(D.Labeled));
  std::vector<LoocvFold> Folds =
      leaveOneOut(Labeled, ripperLearner(), Pool);
  std::vector<double> Errors;
  std::cout << "\nLOOCV error at superblock granularity (t = 0):\n";
  for (size_t B = 0; B != Folds.size(); ++B) {
    Errors.push_back(errorRatePercent(Folds[B].Filter, Labeled[B]));
    std::cout << "  " << padRight(Folds[B].HeldOut, 10)
              << formatDouble(Errors.back(), 2) << "%\n";
  }
  std::cout << "  geometric mean " << formatDouble(geometricMean(Errors), 2)
            << "%\n\nThe same cheap features remain predictive when the "
               "unit of work is a superblock.\n";
  return 0;
}
