//===- tools/sf-lint.cpp - Statically analyze an induced filter -------------===//
//
// Lints a rules file (or a freshly self-trained filter) with the
// analysis/ interval-domain analyzer: dead rules, shadowed rules,
// redundant conditions, unreachable default class, and threshold hygiene
// (NaN/inf, domain violations, and -- when a benchmark supplies a
// training corpus -- thresholds outside the observed feature ranges).
//
// Findings print one per line in the io/ file:line discipline
// ("rules.txt:7: error: rule #3 is dead: ...").  Exit status is non-zero
// when any error-severity finding is reported, so a broken filter fails a
// pipeline before it reaches the serve hot path.
//
// --fix --out FIXED.txt writes the normalized rule set (dead/shadowed
// rules and redundant conditions removed) after *proving* it
// predict()-equivalent to the original by exhaustive evaluation over the
// threshold corner grid; see analysis/RuleAnalysis.h for why that finite
// grid is a sound and complete test basis.
//
// Usage:
//   sf-lint RULES.txt [--benchmark NAME [--threshold T]]
//           [--fix --out FIXED.txt] [--max-grid N]
//           [--model ppc7410|ppc970|simple-scalar]
//           [--jobs N] [--corpus-dir DIR | --no-cache]
//   sf-lint --benchmark NAME [--threshold T] [--fix --out FIXED.txt]
//   sf-lint --help | --version
//
// With a rules file and --benchmark, the benchmark's labeled trace (from
// the corpus cache when warm) supplies the observed-range hygiene check.
// Without a rules file, the filter is self-trained on the benchmark at
// --threshold, exactly like sf-serve, and then linted -- the quick way to
// confirm the trainer's own output is clean.
//
//===----------------------------------------------------------------------===//

#include "analysis/RuleAnalysis.h"
#include "harness/ParallelExperiments.h"
#include "ml/Serialization.h"
#include "support/CommandLine.h"

#include "EngineOption.h"
#include "ModelOption.h"
#include "RulesOption.h"
#include "VersionOption.h"
#include "WorkloadOption.h"

#include <fstream>
#include <iostream>

using namespace schedfilter;

namespace {

void printUsage(std::ostream &OS) {
  OS << "usage: sf-lint RULES.txt [--benchmark NAME [--threshold T]]\n"
        "               [--fix --out FIXED.txt] [--max-grid N]\n"
        "               [--model ppc7410|ppc970|simple-scalar]\n"
        "               [--jobs N] [--corpus-dir DIR | --no-cache]\n"
        "       sf-lint --benchmark NAME [--threshold T]"
        " [--fix --out FIXED.txt]\n"
        "       sf-lint --list\n"
        "       sf-lint --help | --version\n";
}

int usage() {
  printUsage(std::cerr);
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  if (CL.has("help")) {
    printUsage(std::cout);
    return 0;
  }
  if (handleVersionOption(CL, "sf-lint"))
    return 0;
  if (CL.has("list")) {
    printWorkloadList(std::cout);
    return 0;
  }

  if (CL.positional().size() > 1)
    return usage();
  std::string RulesPath =
      CL.positional().empty() ? std::string() : CL.positional()[0];
  std::string Benchmark = CL.get("benchmark");
  if (RulesPath.empty() && Benchmark.empty()) {
    std::cerr << "error: give a rules file, a --benchmark to self-train on, "
                 "or both\n";
    return usage();
  }

  // Validate every flag before touching any file; benchmark resolution is
  // the shared registry-backed lookup (any family's benchmark lints).
  std::optional<BenchmarkSelection> Bench = parseBenchmarkOption(CL);
  if (!Bench)
    return 1;
  const BenchmarkSpec *Spec = Bench->Spec;
  std::optional<MachineModel> Model = parseModelOption(CL);
  if (!Model)
    return 1;
  std::optional<double> Threshold = CL.getDouble("threshold", 0.0);
  if (!Threshold)
    return 1;
  if (!(*Threshold >= 0.0 && *Threshold <= 100.0)) {
    std::cerr << "error: --threshold expects a percentage in [0, 100] "
                 "(got '" << CL.get("threshold") << "')\n";
    return 1;
  }
  std::optional<uint64_t> MaxGrid =
      parseCountOption(CL, "max-grid", 1u << 22, 1, 1u << 30);
  if (!MaxGrid)
    return 1;
  bool Fix = CL.has("fix");
  std::string OutPath = CL.get("out");
  if (Fix && OutPath.empty()) {
    std::cerr << "error: --fix needs --out FIXED.txt (the original file is "
                 "never rewritten in place)\n";
    return 1;
  }
  if (!Fix && !OutPath.empty()) {
    std::cerr << "error: --out only applies with --fix\n";
    return 1;
  }
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  // The benchmark's labeled corpus: observed-range hygiene, the
  // self-training set, and the predictionWork accounting all use it.
  std::optional<Dataset> Corpus;
  if (Spec) {
    std::vector<BenchmarkRun> Runs = Engine.generateSuiteData({*Spec}, *Model);
    Corpus = std::move(Engine.labelSuite(Runs, *Threshold)[0]);
  }

  // The subject rule set: parsed from the file, or self-trained.
  RuleSet Rules(Label::NS);
  std::vector<size_t> RuleLines;
  std::string Subject;
  if (!RulesPath.empty()) {
    // Checked load without the load-time lint: this tool IS the lint.
    std::optional<RuleSetFile> Parsed = readRulesFileChecked(RulesPath);
    if (!Parsed)
      return 1;
    Rules = std::move(Parsed->Rules);
    RuleLines = std::move(Parsed->RuleLines);
    Subject = RulesPath;
  } else {
    std::cerr << "training filter on " << Benchmark << "'s own trace (t = "
              << *Threshold << ")...\n";
    Rules = ripperLearner(Engine.pool())(*Corpus);
    Subject = Benchmark + " (self-trained, t = " + CL.get("threshold", "0") +
              ")";
  }

  RuleAnalysis Analysis = analyzeRuleSet(
      Rules, Corpus ? &*Corpus : nullptr, *MaxGrid);
  printFindings(Analysis, std::cout, RulesPath,
                RuleLines.empty() ? nullptr : &RuleLines);
  std::cout << Subject << ": " << Rules.size() << " rules, "
            << Rules.totalConditions() << " conditions: "
            << Analysis.numFindings(LintSeverity::Error) << " errors, "
            << Analysis.numFindings(LintSeverity::Warning) << " warnings, "
            << Analysis.numFindings(LintSeverity::Note) << " notes\n";

  if (!Fix)
    return Analysis.hasErrors() ? 1 : 0;

  // --- --fix: normalize, prove equivalence, write. ---
  RuleSet Fixed = normalizeRuleSet(Rules, Analysis);
  EquivalenceCheck Eq = checkPredictEquivalence(Rules, Fixed, *MaxGrid);
  if (!Eq.Equivalent) {
    // Unreachable by construction; if it ever fires, refuse to write.
    std::cerr << "error: normalization changed predict() behavior "
                 "(corner-grid counterexample found after "
              << Eq.PointsChecked << " points) -- not writing '" << OutPath
              << "'\n";
    return 1;
  }
  std::ofstream OS(OutPath, std::ios::trunc);
  if (!OS) {
    std::cerr << "error: cannot open '" << OutPath << "' for writing\n";
    return 1;
  }
  writeRuleSet(Fixed, OS);
  OS.flush();
  if (!OS) {
    std::cerr << "error: failed writing '" << OutPath
              << "' (disk full or device error)\n";
    return 1;
  }

  std::cout << "wrote " << OutPath << ": removed " << Analysis.removedRules()
            << " rules and " << Analysis.removedConditions()
            << " conditions; predict()-equivalence "
            << (Eq.Exhaustive ? "proven" : "sampled") << " over "
            << Eq.PointsChecked << " of " << Eq.GridSize
            << " corner-grid points\n";
  if (Corpus) {
    uint64_t Before = 0, After = 0;
    for (const Instance &I : *Corpus) {
      Before += Rules.predictionWork(I.X);
      After += Fixed.predictionWork(I.X);
    }
    std::cout << "predictionWork over " << Corpus->size() << " " << Benchmark
              << " blocks: " << Before << " -> " << After << " units\n";
  }

  // Errors that the removal plan does not remediate (e.g. an infinite
  // threshold on a live rule) survive into the fixed set; keep failing.
  RuleAnalysis Recheck = analyzeRuleSet(Fixed, nullptr, *MaxGrid);
  if (Recheck.hasErrors()) {
    std::cerr << "error: " << Recheck.numFindings(LintSeverity::Error)
              << " errors remain after normalization (hand-editing "
                 "required)\n";
    return 1;
  }
  return 0;
}
