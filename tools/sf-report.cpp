//===- tools/sf-report.cpp - One-shot reproduction report -------------------===//
//
// Runs the paper's whole evaluation in one command and prints every table
// and figure in order (Tables 3-6, Figures 1-4), plus the headline
// benefit/effort frontier, for the chosen suite.  This is the "regenerate
// the paper" button; the per-table bench binaries exist for focused runs.
//
// Usage:
//   sf-report [--suite FAMILY] [--model ppc7410|ppc970|simple-scalar]
//             [--fig4-holdout NAME] [--jobs N] [--corpus-dir DIR | --no-cache]
//
// --suite accepts any registered workload family (specjvm98 by default;
// fp, serverloop, fpkernel, ptrchase, ... -- see sf-serve --list).
//
// --jobs N fans the tracing and the threshold sweep out over N workers;
// the printed numbers are bit-for-bit identical at any N -- and whether
// the suite was traced fresh or loaded from a warm corpus cache.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "harness/TableRender.h"
#include "ml/Ripper.h"
#include "support/CommandLine.h"

#include "EngineOption.h"
#include "ModelOption.h"
#include "VersionOption.h"
#include "WorkloadOption.h"

#include <iostream>

using namespace schedfilter;

static void printUsage(std::ostream &OS) {
  OS << "usage: sf-report [--suite FAMILY]"
        " [--model ppc7410|ppc970|simple-scalar]\n"
        "                 [--fig4-holdout NAME] [--jobs N]"
        " [--corpus-dir DIR | --no-cache]\n"
        "       sf-report --help | --version\n";
}

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  if (CL.has("help")) {
    printUsage(std::cout);
    return 0;
  }
  if (handleVersionOption(CL, "sf-report"))
    return 0;
  std::string SuiteName = CL.get("suite", "specjvm98");
  const WorkloadFamily *Family = findWorkloadFamily(SuiteName);
  if (!Family) {
    std::cerr << "error: unknown suite: got '" << SuiteName
              << "', known: " << knownFamilyNames() << '\n';
    return 1;
  }
  std::vector<BenchmarkSpec> Suite = Family->makeBenchmarkSuite();

  std::optional<MachineModel> Model = parseModelOption(CL);
  if (!Model)
    return 1;
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  std::cerr << "preparing " << Suite.size() << " benchmarks on "
            << Model->getName() << " (" << Engine.jobs() << " job"
            << (Engine.jobs() == 1 ? "" : "s")
            << "; tracing on cache miss)...\n";
  std::vector<BenchmarkRun> Runs = Engine.generateSuiteData(Suite, *Model);
  if (CorpusCache *C = Engine.corpusCache()) {
    CorpusCache::Stats St = C->stats();
    std::cerr << "corpus cache: " << St.Hits << " hit"
              << (St.Hits == 1 ? "" : "s") << ", " << St.Misses << " miss"
              << (St.Misses == 1 ? "" : "es") << " (" << C->directory()
              << ")\n";
  }
  std::cerr << "running the threshold sweep (11 x LOOCV RIPPER)...\n";
  std::vector<ThresholdResult> Sweep =
      Engine.runThresholdSweep(Runs, paperThresholds(), ripperLearner());

  renderTable3(Sweep, std::cout);
  std::cout << '\n';
  renderTable4(Sweep, std::cout);
  std::cout << '\n';
  renderTable5(Sweep, std::cout);
  std::cout << '\n';
  renderTable6(Sweep, std::cout);
  std::cout << '\n';
  renderEffortFigure(Sweep, /*UseWallTime=*/false, std::cout);
  std::cout << '\n';
  renderEffortFigure(Sweep, /*UseWallTime=*/true, std::cout);
  std::cout << '\n';
  renderAppTimeFigure(Sweep, std::cout);
  std::cout << '\n';
  renderHeadline(Sweep, std::cout);
  std::cout << '\n';

  // Figure 4: train on all but one benchmark at t = 0.
  std::string Holdout = CL.get("fig4-holdout", Suite.back().Name);
  std::vector<Dataset> Labeled = Engine.labelSuite(Runs, 0.0);
  Dataset Train("all-minus-" + Holdout);
  for (const Dataset &D : Labeled)
    if (D.getName() != Holdout)
      Train.append(D);
  RuleSet Filter = Ripper().train(Train);
  renderInducedFilter(Filter, std::cout);
  return 0;
}
