//===- tools/CorpusOption.h - Shared --corpus-dir/--no-cache ----*- C++ -*-===//
///
/// \file
/// One place for the sf-* tools and the suite-level bench drivers to
/// resolve the corpus-cache flags, like JobsOption.h does for --jobs, so
/// the defaulting rules and error messages cannot drift between them:
///
///   (default)          cache under CorpusCache::defaultDirectory()
///                      ($SCHEDFILTER_CORPUS_DIR / XDG / ~/.cache); when
///                      no location resolves, caching is silently off
///   --corpus-dir DIR   cache under DIR (must be creatable: error if not)
///   --no-cache         caching off (always retrace)
///
/// Cached and uncached runs produce bit-identical results (the engine
/// guarantees it; tests/corpuscache_test.cpp pins it), so the flags are
/// purely wall-clock knobs -- which is why caching can default on.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_TOOLS_CORPUSOPTION_H
#define SCHEDFILTER_TOOLS_CORPUSOPTION_H

#include "io/CorpusCache.h"
#include "support/CommandLine.h"

#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>

namespace schedfilter {

/// Resolves the corpus-cache flags.  Outer nullopt = invalid flags (an
/// error was printed; exit non-zero).  Inner null = caching disabled.
/// Otherwise an owning cache handle: keep it alive for the engine's
/// lifetime and attach with ExperimentEngine::setCorpusCache(Ptr.get()).
inline std::optional<std::unique_ptr<CorpusCache>>
parseCorpusOption(const CommandLine &CL) {
  bool NoCache = CL.has("no-cache");
  std::string Dir = CL.get("corpus-dir");
  if (NoCache && !Dir.empty()) {
    std::cerr << "error: --no-cache and --corpus-dir are mutually "
                 "exclusive\n";
    return std::nullopt;
  }
  if (NoCache)
    return std::unique_ptr<CorpusCache>();
  // A bare trailing "--corpus-dir" parses as the boolean value "true";
  // nobody keeps a corpus in ./true on purpose.
  if (Dir == "true") {
    std::cerr << "error: --corpus-dir expects a directory path\n";
    return std::nullopt;
  }

  bool Explicit = !Dir.empty();
  if (!Explicit) {
    Dir = CorpusCache::defaultDirectory();
    if (Dir.empty())
      return std::unique_ptr<CorpusCache>();
  }
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    if (Explicit) {
      std::cerr << "error: cannot create corpus directory '" << Dir
                << "': " << EC.message() << '\n';
      return std::nullopt;
    }
    std::cerr << "warning: corpus cache disabled (cannot create '" << Dir
              << "': " << EC.message() << ")\n";
    return std::unique_ptr<CorpusCache>();
  }
  return std::make_unique<CorpusCache>(Dir);
}

} // namespace schedfilter

#endif // SCHEDFILTER_TOOLS_CORPUSOPTION_H
