//===- tools/sf-trace.cpp - Emit an instrumented-scheduler trace ------------===//
//
// Generates one benchmark's program, runs the instrumented scheduler over
// every block (§2.2), and writes the raw trace: per block, the Table 1
// features, the simulated cost without and with list scheduling, and the
// profile weight.  The trace feeds sf-train.
//
// Two formats (io/TraceStore.h): CSV (human readable, the default) and
// the SFTB1 binary interchange format; both round-trip records exactly
// and every reader auto-detects.  With a warm corpus cache the records
// are loaded instead of retraced.
//
// Usage:
//   sf-trace --benchmark mpegaudio [--model ppc7410|ppc970|simple-scalar]
//            [--out FILE] [--format csv|binary] [--jobs N]
//            [--corpus-dir DIR | --no-cache]
//   sf-trace --workload specjvm98,serverloop [...]
//   sf-trace --list
//
// --format defaults to csv, or binary when --out ends in ".sftb".
// --workload traces every benchmark of the named families (any registered
// workload family; see --list) and concatenates the records in suite
// order -- one trace covering the whole mix, ready for sf-train.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "io/TraceStore.h"
#include "support/CommandLine.h"

#include "EngineOption.h"
#include "ModelOption.h"
#include "NoiseOption.h"
#include "VersionOption.h"
#include "WorkloadOption.h"

#include <fstream>
#include <iostream>

using namespace schedfilter;

static void printUsage(std::ostream &OS) {
  OS << "usage: sf-trace --benchmark NAME"
        " [--model ppc7410|ppc970|simple-scalar] [--out FILE]\n"
        "                [--format csv|binary] [--jobs N]"
        " [--corpus-dir DIR | --no-cache]\n"
        "                [--noise SRC:PARAM[,...]] [--noise-seed N]\n"
        "       sf-trace --workload FAMILY[,FAMILY...] [...]\n"
        "       sf-trace --list\n"
        "       sf-trace --help | --version\n";
}

static int usage() {
  printUsage(std::cerr);
  return 1;
}

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  if (CL.has("help")) {
    printUsage(std::cout);
    return 0;
  }
  if (handleVersionOption(CL, "sf-trace"))
    return 0;

  if (CL.has("list")) {
    printWorkloadList(std::cout);
    return 0;
  }

  std::optional<BenchmarkSelection> Bench = parseBenchmarkOption(CL);
  if (!Bench)
    return 1;
  std::optional<WorkloadMix> Mix = parseWorkloadOption(CL);
  if (!Mix)
    return 1;
  if (Bench->Present == !Mix->empty()) {
    std::cerr << "error: give exactly one of --benchmark or --workload\n";
    return usage();
  }
  std::vector<BenchmarkSpec> Suite = Bench->Present
                                         ? std::vector<BenchmarkSpec>{*Bench->Spec}
                                         : workloadMixSuite(*Mix);

  std::optional<MachineModel> Model = parseModelOption(CL);
  if (!Model)
    return 1;
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;

  std::string Out = CL.get("out");
  std::string FormatName = CL.get("format");
  TraceFormat Format = TraceFormat::Csv;
  if (FormatName.empty()) {
    if (Out.size() >= 5 && Out.compare(Out.size() - 5, 5, ".sftb") == 0)
      Format = TraceFormat::Binary;
  } else if (FormatName == "csv") {
    Format = TraceFormat::Csv;
  } else if (FormatName == "binary") {
    Format = TraceFormat::Binary;
  } else {
    std::cerr << "error: --format expects 'csv' or 'binary' (got '"
              << FormatName << "')\n";
    return 1;
  }

  std::optional<NoiseStack> Noise = parseNoiseOption(CL);
  if (!Noise)
    return 1;

  ExperimentEngine &Engine = **Handle;
  std::vector<BenchmarkRun> Runs = Engine.generateSuiteData(Suite, *Model);
  // Perturbation applies downstream of the corpus cache, so noisy runs
  // never pollute cached corpora and warm/cold traces stay identical.
  Noise->perturbSuite(Runs, Engine.pool());
  std::vector<BlockRecord> Records;
  for (BenchmarkRun &Run : Runs) {
    if (Records.empty())
      Records = std::move(Run.Records);
    else
      Records.insert(Records.end(), Run.Records.begin(), Run.Records.end());
  }

  // A trace that was silently cut short by a full disk poisons every
  // downstream training run, so both sinks are flushed and checked.
  if (Out.empty()) {
    writeTrace(Records, std::cout, Format);
    std::cout.flush();
    if (!std::cout) {
      std::cerr << "error: failed writing trace to stdout\n";
      return 1;
    }
  } else {
    std::ofstream OS(Out, std::ios::binary | std::ios::trunc);
    if (!OS) {
      std::cerr << "error: cannot open '" << Out << "' for writing\n";
      return 1;
    }
    writeTrace(Records, OS, Format);
    OS.flush();
    if (!OS) {
      std::cerr << "error: failed writing trace to '" << Out
                << "' (disk full or device error)\n";
      return 1;
    }
    std::cerr << "wrote " << Records.size() << " block records to " << Out
              << (Format == TraceFormat::Binary ? " (SFTB1)" : " (CSV)")
              << '\n';
  }
  return 0;
}
