//===- tools/sf-trace.cpp - Emit an instrumented-scheduler trace ------------===//
//
// Generates one benchmark's program, runs the instrumented scheduler over
// every block (§2.2), and writes the raw trace as CSV: per block, the
// Table 1 features, the simulated cost without and with list scheduling,
// and the profile weight.  The trace feeds sf-train.
//
// Usage:
//   sf-trace --benchmark mpegaudio [--model ppc7410|ppc970|simple-scalar]
//            [--out FILE] [--jobs N]
//   sf-trace --list
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "harness/TraceFile.h"
#include "support/CommandLine.h"

#include "JobsOption.h"
#include "ModelOption.h"

#include <fstream>
#include <iostream>

using namespace schedfilter;

static int usage() {
  std::cerr << "usage: sf-trace --benchmark NAME"
               " [--model ppc7410|ppc970|simple-scalar] [--out FILE]"
               " [--jobs N]\n"
               "       sf-trace --list\n";
  return 1;
}

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);

  if (CL.has("list")) {
    for (const auto &Suite : {specjvm98Suite(), fpSuite()})
      for (const BenchmarkSpec &S : Suite)
        std::cout << S.Name << "\t" << S.Description << '\n';
    return 0;
  }

  std::string Name = CL.get("benchmark");
  if (Name.empty())
    return usage();
  const BenchmarkSpec *Spec = findBenchmarkSpec(Name);
  if (!Spec) {
    std::cerr << "error: unknown benchmark '" << Name
              << "' (try --list)\n";
    return 1;
  }

  std::optional<MachineModel> Model = parseModelOption(CL);
  if (!Model)
    return 1;
  std::optional<unsigned> Jobs = parseJobsOption(CL);
  if (!Jobs)
    return 1;

  ExperimentEngine Engine(*Jobs);
  std::vector<BenchmarkRun> Runs = Engine.generateSuiteData({*Spec}, *Model);
  const std::vector<BlockRecord> &Records = Runs[0].Records;

  std::string Out = CL.get("out");
  if (Out.empty()) {
    writeTrace(Records, std::cout);
  } else {
    std::ofstream OS(Out);
    if (!OS) {
      std::cerr << "error: cannot open '" << Out << "' for writing\n";
      return 1;
    }
    writeTrace(Records, OS);
    std::cerr << "wrote " << Records.size() << " block records to " << Out
              << '\n';
  }
  return 0;
}
