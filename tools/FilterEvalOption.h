//===- tools/FilterEvalOption.h - Shared --filter-eval parsing ---*- C++ -*-===//
///
/// \file
/// Resolves the --filter-eval flag ("compiled", the default, or
/// "interpreter") into the process-wide ScheduleFilter evaluator mode.
/// Setting the static default is what makes the flag reach filters
/// constructed deep inside the service (CompileService builds one
/// ScheduleFilter per parallel task) without threading a parameter
/// through every layer.  Both modes are bit-exactly equivalent in
/// predictions, counters and work units -- the flag exists so CI can
/// byte-diff the two and so benches can price the difference.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_TOOLS_FILTEREVALOPTION_H
#define SCHEDFILTER_TOOLS_FILTEREVALOPTION_H

#include "filter/ScheduleFilter.h"
#include "support/CommandLine.h"

#include <iostream>

namespace schedfilter {

/// Parses --filter-eval and installs the mode as the process-wide
/// default.  Returns false (with a diagnostic) on an unknown value.
inline bool parseFilterEvalOption(const CommandLine &CL) {
  std::string V = CL.get("filter-eval", "compiled");
  if (V == "compiled") {
    ScheduleFilter::setDefaultEval(FilterEval::Compiled);
    return true;
  }
  if (V == "interpreter") {
    ScheduleFilter::setDefaultEval(FilterEval::Interpreted);
    return true;
  }
  std::cerr << "error: --filter-eval expects 'compiled' or 'interpreter' "
               "(got '" << V << "')\n";
  return false;
}

} // namespace schedfilter

#endif // SCHEDFILTER_TOOLS_FILTEREVALOPTION_H
