//===- tools/BenchJson.h - Shared BENCH_*.json writing ----------*- C++ -*-===//
///
/// \file
/// One place for every bench driver that persists a BENCH_*.json
/// trajectory file to resolve its output path and write it safely.
/// Before this helper, each driver opened its own ofstream against a
/// hardcoded filename; now the path comes from a per-file --out flag
/// (CI and local runs can redirect without editing source) and the write
/// is flush+error-checked, the same audit PR 3 applied to sf-trace
/// --out: a full disk or unwritable directory fails the run loudly
/// instead of leaving a silent empty file behind.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_TOOLS_BENCHJSON_H
#define SCHEDFILTER_TOOLS_BENCHJSON_H

#include "support/CommandLine.h"

#include <fstream>
#include <iostream>
#include <string>

namespace schedfilter {

/// Resolves where a bench driver writes its JSON: the value of
/// --<Flag> when given, \p Default otherwise.  Drivers with one output
/// use Flag = "out"; drivers with several use one flag per file
/// (e.g. bench_micro_costs's --out-schedcontext / --out-filter-eval).
inline std::string benchOutPath(const CommandLine &CL, const std::string &Flag,
                                const std::string &Default) {
  std::string Out = CL.get(Flag);
  return Out.empty() ? Default : Out;
}

/// Writes \p Json to \p Path with an explicit flush and stream-state
/// check.  Returns true and prints "wrote PATH" to stdout on success;
/// prints an error to stderr and returns false otherwise (callers exit
/// non-zero -- a bench whose trajectory file did not land must not look
/// green).
inline bool writeBenchJson(const std::string &Path, const std::string &Json) {
  std::ofstream OS(Path);
  OS << Json;
  OS.flush();
  if (!OS) {
    std::cerr << "error: failed writing " << Path << '\n';
    return false;
  }
  std::cout << "wrote " << Path << '\n';
  return true;
}

} // namespace schedfilter

#endif // SCHEDFILTER_TOOLS_BENCHJSON_H
