//===- tools/JobsOption.h - Shared numeric flag handling --------*- C++ -*-===//
///
/// \file
/// One place for the sf-* tools and bench drivers to resolve strict
/// decimal-integer flags -- --jobs and sf-serve's service knobs -- so
/// the validation and the error message cannot drift between them.  The
/// engine guarantees results are bit-for-bit identical at any accepted
/// --jobs value (see harness/ParallelExperiments.h), so --jobs is purely
/// a wall-clock knob.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_TOOLS_JOBSOPTION_H
#define SCHEDFILTER_TOOLS_JOBSOPTION_H

#include "support/CommandLine.h"

#include <cstdint>
#include <iostream>
#include <optional>

namespace schedfilter {

/// Resolves the decimal-integer flag --\p Name in [\p Min, \p Max]:
/// \p Default when absent, the validated value otherwise.  Anything else
/// -- an empty value, negatives, trailing junk, out-of-range counts --
/// prints an error naming the accepted range and returns nullopt so the
/// caller can exit non-zero (a mistyped knob must never silently fall
/// back to its default).
inline std::optional<uint64_t> parseCountOption(const CommandLine &CL,
                                                const char *Name,
                                                uint64_t Default,
                                                uint64_t Min, uint64_t Max) {
  if (!CL.has(Name))
    return Default;
  std::string Value = CL.get(Name);
  bool Valid = !Value.empty();
  uint64_t V = 0;
  for (char C : Value) {
    if (C < '0' || C > '9' || V > Max / 10) {
      Valid = false;
      break;
    }
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  if (!Valid || V < Min || V > Max) {
    std::cerr << "error: --" << Name << " expects an integer in [" << Min
              << ", " << Max << "] (got '" << Value << "')\n";
    return std::nullopt;
  }
  return V;
}

/// Resolves --jobs (default 1).  Accepts only a decimal integer in
/// [1, 4096] (the cap bounds thread explosions and guards overflow).
inline std::optional<unsigned> parseJobsOption(const CommandLine &CL) {
  std::optional<uint64_t> Jobs = parseCountOption(CL, "jobs", 1, 1, 4096);
  if (!Jobs)
    return std::nullopt;
  return static_cast<unsigned>(*Jobs);
}

} // namespace schedfilter

#endif // SCHEDFILTER_TOOLS_JOBSOPTION_H
