//===- tools/JobsOption.h - Shared --jobs option handling -------*- C++ -*-===//
///
/// \file
/// One place for the sf-* tools and bench drivers to resolve the --jobs
/// flag, so the validation and the error message cannot drift between
/// them.  The engine guarantees results are bit-for-bit identical at any
/// accepted value (see harness/ParallelExperiments.h), so --jobs is purely
/// a wall-clock knob.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_TOOLS_JOBSOPTION_H
#define SCHEDFILTER_TOOLS_JOBSOPTION_H

#include "support/CommandLine.h"

#include <cctype>
#include <iostream>
#include <optional>

namespace schedfilter {

/// Resolves --jobs (default 1).  Accepts only a decimal integer in
/// [1, 4096] (the cap bounds thread explosions and guards overflow);
/// anything else -- 0, negative values, trailing junk, or an
/// over-the-cap count -- prints an error naming the accepted range and
/// returns nullopt so the caller can exit non-zero (a mistyped value
/// must never silently fall back to serial).
inline std::optional<unsigned> parseJobsOption(const CommandLine &CL) {
  constexpr unsigned long MaxJobs = 4096;
  std::string Value = CL.get("jobs", "1");
  bool Valid = !Value.empty();
  unsigned long Jobs = 0;
  for (char C : Value) {
    if (!std::isdigit(static_cast<unsigned char>(C))) {
      Valid = false;
      break;
    }
    Jobs = Jobs * 10 + static_cast<unsigned long>(C - '0');
    if (Jobs > MaxJobs) {
      Valid = false;
      break;
    }
  }
  if (!Valid || Jobs == 0) {
    std::cerr << "error: --jobs expects an integer in [1, " << MaxJobs
              << "] (got '" << Value << "')\n";
    return std::nullopt;
  }
  return static_cast<unsigned>(Jobs);
}

} // namespace schedfilter

#endif // SCHEDFILTER_TOOLS_JOBSOPTION_H
