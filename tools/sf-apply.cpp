//===- tools/sf-apply.cpp - Deploy a filter in the JIT pipeline -------------===//
//
// Loads a serialized filter (written by sf-train) and compiles a
// benchmark under the paper's three policies, reporting scheduling effort
// and simulated application time -- the online half of the procedure.
//
// Usage:
//   sf-apply --rules RULES.txt --benchmark mpegaudio
//            [--model ppc7410|ppc970|simple-scalar] [--hot FRACTION]
//
//===----------------------------------------------------------------------===//

#include "analysis/RuleAnalysis.h"
#include "harness/Experiments.h"
#include "ml/Serialization.h"
#include "runtime/CompileService.h"
#include "support/CommandLine.h"

#include "ModelOption.h"
#include "RulesOption.h"
#include "VersionOption.h"
#include "WorkloadOption.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace schedfilter;

static void printUsage(std::ostream &OS) {
  OS << "usage: sf-apply --rules RULES.txt --benchmark NAME\n"
        "                [--model ppc7410|ppc970|simple-scalar]"
        " [--hot FRACTION]\n"
        "       sf-apply --list\n"
        "       sf-apply --help | --version\n";
}

static int usage() {
  printUsage(std::cerr);
  return 1;
}

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  if (CL.has("help")) {
    printUsage(std::cout);
    return 0;
  }
  if (handleVersionOption(CL, "sf-apply"))
    return 0;
  if (CL.has("list")) {
    printWorkloadList(std::cout);
    return 0;
  }
  std::string RulesPath = CL.get("rules");
  std::string Name = CL.get("benchmark");
  if (RulesPath.empty() || Name.empty())
    return usage();

  // Validate every flag before touching any file, so a mistyped knob
  // fails fast regardless of the rules file's state.
  std::optional<BenchmarkSelection> Bench = parseBenchmarkOption(CL);
  if (!Bench)
    return 1;
  const BenchmarkSpec *Spec = Bench->Spec;
  std::optional<MachineModel> Model = parseModelOption(CL);
  if (!Model)
    return 1;
  std::optional<double> HotFlag = CL.getDouble("hot", 1.0);
  if (!HotFlag)
    return 1;
  if (!(*HotFlag >= 0.0 && *HotFlag <= 1.0)) {
    std::cerr << "error: --hot expects a fraction in [0, 1] (got '"
              << CL.get("hot") << "')\n";
    return 1;
  }
  double Hot = *HotFlag;

  std::optional<RuleSetFile> Rules = loadRulesFileWithLint(RulesPath);
  if (!Rules)
    return 1;

  Program P = generateWorkloadProgram(*Spec);
  ScheduleFilter Filter(Rules->Rules);

  CompileReport NS = compileProgramAdaptive(P, *Model,
                                            SchedulingPolicy::Never,
                                            nullptr, Hot);
  CompileReport LS = compileProgramAdaptive(P, *Model,
                                            SchedulingPolicy::Always,
                                            nullptr, Hot);
  CompileReport LN = compileProgramAdaptive(
      P, *Model, SchedulingPolicy::Filtered, &Filter, Hot);

  std::cout << Name << " on " << Model->getName() << " (hot fraction "
            << formatPercent(Hot, 0) << ")\n\n";
  TablePrinter T({"Policy", "Scheduled", "Work units", "Wall (ms)",
                  "App time vs NS"});
  for (const CompileReport &R : {NS, LS, LN})
    T.addRow({getPolicyName(R.Policy),
              std::to_string(R.NumScheduled) + "/" +
                  std::to_string(R.NumBlocks),
              std::to_string(R.SchedulingWork),
              formatDouble(R.SchedulingSeconds * 1e3, 3),
              formatDouble(R.SimulatedTime / NS.SimulatedTime, 4)});
  T.print(std::cout);

  if (NS.SimulatedTime > LS.SimulatedTime) {
    double Kept = 100.0 * (NS.SimulatedTime - LN.SimulatedTime) /
                  (NS.SimulatedTime - LS.SimulatedTime);
    std::cout << "\nfilter keeps " << formatDouble(Kept, 1)
              << "% of the scheduling benefit at "
              << formatPercent(
                     safeRatio(static_cast<double>(LN.SchedulingWork),
                               static_cast<double>(LS.SchedulingWork)),
                     1)
              << " of the effort\n";
  }
  return 0;
}
