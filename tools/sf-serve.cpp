//===- tools/sf-serve.cpp - Serve a method-invocation stream ----------------===//
//
// The runtime half of the reproduction: replay a benchmark's method
// invocation stream through the CompileService (baseline tier, sampling
// based hotness counters, bounded recompilation queue, optimizing tier)
// and report what the induced filter recoups once scheduling cost is paid
// at run time -- the regime of the paper's host JIT (§3.1).
//
// The service runs the identical stream twice: optimizing tier = LS
// (schedule every block of every promoted method) and optimizing tier =
// L/N (the filter decides per block).  Promotion dynamics are identical
// in both runs, so the work delta is purely the filter's doing.
//
// Everything printed to stdout is deterministic: bit-identical at any
// --jobs value and with a cold or warm corpus cache.  Wall-clock
// throughput goes to stderr.
//
// Usage:
//   sf-serve --benchmark NAME [--rules RULES.txt | --threshold T]
//            [--model ppc7410|ppc970|simple-scalar]
//            [--invocations N] [--hot-threshold N] [--queue-cap N]
//            [--sample-every N] [--epoch-len N] [--drain N]
//            [--filter-eval compiled|interpreter]
//            [--jobs N] [--corpus-dir DIR | --no-cache]
//   sf-serve --workload FAMILY[:WEIGHT][,FAMILY[:WEIGHT]...] [...]
//   sf-serve --list
//   sf-serve --help | --version
//
// Without --rules the filter is trained on the benchmark's own trace at
// --threshold (default 0) -- the self-training upper bound; the trace
// comes from the corpus cache when warm.
//
// --workload serves the interleaved multi-app stream instead: every
// benchmark of each named family becomes one app, the family weight is
// its share of the interleave, and one shared service (one clock, one
// hotness sampler, one bounded queue) serves them all -- the
// multi-tenant regime of a server JIT.  Per-app tier residency and
// recouped work print alongside the aggregate; without --rules the
// filter self-trains on the mix's own traces.  Output is bit-identical
// at any --jobs and cache temperature, like the single-app mode.
//
//===----------------------------------------------------------------------===//

#include "analysis/RuleAnalysis.h"
#include "harness/ParallelExperiments.h"
#include "ml/Serialization.h"
#include "runtime/CompileService.h"
#include "runtime/MultiAppService.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"

#include "EngineOption.h"
#include "FilterEvalOption.h"
#include "ModelOption.h"
#include "VersionOption.h"
#include "WorkloadOption.h"

#include <fstream>
#include <iostream>

using namespace schedfilter;

namespace {

void printUsage(std::ostream &OS) {
  OS << "usage: sf-serve --benchmark NAME [--rules RULES.txt |"
        " --threshold T]\n"
        "                [--model ppc7410|ppc970|simple-scalar]\n"
        "                [--invocations N] [--hot-threshold N]"
        " [--queue-cap N]\n"
        "                [--sample-every N] [--epoch-len N] [--drain N]\n"
        "                [--filter-eval compiled|interpreter]\n"
        "                [--jobs N] [--corpus-dir DIR | --no-cache]\n"
        "       sf-serve --workload FAMILY[:WEIGHT][,...] [...]\n"
        "       sf-serve --list\n"
        "       sf-serve --help | --version\n";
}

/// Resolves --threshold (a percentage in [0, 100]): the strict shared
/// numeric parse (CommandLine::getDouble) plus the range check.  Trailing
/// junk or out-of-range values error out, never silently fall back to the
/// default -- identically across all five sf-* tools.
bool parseThresholdFlag(const CommandLine &CL, double &Out) {
  std::optional<double> V = CL.getDouble("threshold", 0.0);
  if (!V)
    return false;
  if (!(*V >= 0.0 && *V <= 100.0)) {
    std::cerr << "error: --threshold expects a percentage in [0, 100] "
                 "(got '" << CL.get("threshold") << "')\n";
    return false;
  }
  Out = *V;
  return true;
}

std::string formatKiloUnits(uint64_t Units) {
  return formatDouble(static_cast<double>(Units) / 1e3, 1) + "k";
}

/// Resolves --rules when present: parses the file into \p Rules (with the
/// load-time lint on stderr) and sets \p Loaded.  Returns false after a
/// printed diagnostic -- bad file, or --threshold given alongside.
bool loadRulesOption(const CommandLine &CL, RuleSet &Rules, bool &Loaded) {
  Loaded = false;
  std::string RulesPath = CL.get("rules");
  if (RulesPath.empty())
    return true;
  if (CL.has("threshold")) {
    std::cerr << "error: --rules and --threshold are mutually exclusive "
                 "(the threshold labels the self-training trace)\n";
    return false;
  }
  std::ifstream IS(RulesPath);
  if (!IS) {
    std::cerr << "error: cannot open rules '" << RulesPath << "'\n";
    return false;
  }
  ParseResult<RuleSetFile> Parsed = readRuleSetFile(IS);
  if (!Parsed) {
    const ParseError &E = Parsed.error();
    std::cerr << "error: " << RulesPath
              << (E.Line ? ":" + std::to_string(E.Line) : "") << ": "
              << E.Message << '\n';
    return false;
  }
  // Load-time lint: a dead or shadowed rule burns serve-path work for
  // nothing, so say so before the stream starts (stderr; serving
  // proceeds -- sf-lint --fix normalizes).
  RuleAnalysis Lint = analyzeRuleSet(Parsed->Rules);
  if (!Lint.clean())
    printFindings(Lint, std::cerr, RulesPath, &Parsed->RuleLines);
  Rules = std::move(Parsed->Rules);
  Loaded = true;
  return true;
}

/// The --workload path: expand the mix into apps, resolve the filter
/// (--rules or self-trained on the mix's own traces), replay the
/// interleaved stream under both optimizing-tier policies, and report
/// per-app and aggregate stats.  Everything on stdout is a pure function
/// of (mix, model, config) -- same contract as the single-app mode.
int serveMix(const CommandLine &CL, const WorkloadMix &Mix,
             const MachineModel &Model, ExperimentEngine &Engine,
             ServiceConfig Cfg) {
  std::vector<AppSpec> Apps = expandWorkloadMix(Mix);
  Cfg.StreamSeed = workloadMixSeed(Apps);

  RuleSet Rules(Label::NS);
  bool RulesFromFile = false;
  if (!loadRulesOption(CL, Rules, RulesFromFile))
    return 1;

  std::vector<Program> Programs;
  if (RulesFromFile) {
    Programs = generateMixPrograms(Apps);
  } else {
    // Self-train on the whole mix: the factory filter for exactly the
    // population this service is about to serve.  Reuse the synthesized
    // programs instead of generating them a second time.
    double Threshold = 0.0;
    if (!parseThresholdFlag(CL, Threshold))
      return 1;
    std::vector<BenchmarkSpec> Suite;
    Suite.reserve(Apps.size());
    for (const AppSpec &A : Apps)
      Suite.push_back(A.Spec);
    std::cerr << "training filter on the mix's own traces (t = " << Threshold
              << "; tracing on cache miss)...\n";
    std::vector<BenchmarkRun> Runs = Engine.generateSuiteData(Suite, Model);
    std::vector<Dataset> Labeled = Engine.labelSuite(Runs, Threshold);
    Dataset Train(formatWorkloadMix(Mix));
    for (const Dataset &D : Labeled)
      Train.append(D);
    Rules = ripperLearner(Engine.pool())(Train);
    RuleAnalysis Lint = analyzeRuleSet(Rules, &Train);
    if (!Lint.clean())
      printFindings(Lint, std::cerr);
    Programs.reserve(Runs.size());
    for (BenchmarkRun &Run : Runs)
      Programs.push_back(std::move(Run.Prog));
  }

  AccumulatingTimer Wall;
  Wall.start();
  MultiAppComparison Cmp =
      runMultiAppComparison(Apps, Programs, Model, Cfg, Rules, Engine.pool());
  Wall.stop();

  // --- Deterministic report (stdout). ---
  const ServiceStats &LS = Cmp.Always.Total;
  const ServiceStats &LN = Cmp.Filtered.Total;
  std::cout << "workload mix " << formatWorkloadMix(Mix) << " on "
            << Model.getName() << ": " << Apps.size() << " apps, "
            << LS.Invocations << " invocations interleaved,\nsample every "
            << Cfg.SampleEvery << ", hot threshold " << Cfg.HotThreshold
            << ", queue cap " << Cfg.QueueCap << ", drain "
            << Cfg.DrainPerEpoch << "/epoch, epoch " << Cfg.EpochLen << " ("
            << LS.Epochs << " epochs)\n\n";

  TablePrinter PerApp({"App", "Family", "Invocations", "Optimized inv",
                       "Methods opt", "LS work", "L/N work", "Recouped"});
  for (size_t A = 0; A != Apps.size(); ++A) {
    const ServiceStats &ALS = Cmp.Always.PerApp[A];
    const ServiceStats &ALN = Cmp.Filtered.PerApp[A];
    PerApp.addRow({Cmp.Filtered.AppNames[A], Apps[A].Spec.Family,
                   std::to_string(ALN.Invocations),
                   std::to_string(ALN.OptimizedInvocations),
                   std::to_string(ALN.MethodsOptimized) + "/" +
                       std::to_string(ALN.MethodsTotal),
                   std::to_string(ALS.SchedulingWork),
                   std::to_string(ALN.SchedulingWork),
                   formatPercent(Cmp.PerAppRecoup[A], 1)});
  }
  PerApp.print(std::cout);

  std::cout << "\nrecompilation queue (L/N run, shared): max depth "
            << LN.MaxQueueDepth << ", mean "
            << formatDouble(LN.MeanQueueDepth, 2) << ", " << LN.Deferred
            << " deferred (backpressure), " << LN.FinalQueueDepth
            << " still queued\n\n";

  TablePrinter T({"Opt tier", "Compiled", "Blocks", "Scheduled",
                  "Work units", "Filter work", "App time vs baseline"});
  for (const ServiceStats *St : {&LS, &LN})
    T.addRow({St == &LS ? "LS" : "L/N", std::to_string(St->CompiledMethods),
              std::to_string(St->BlocksCompiled),
              std::to_string(St->BlocksScheduled),
              std::to_string(St->SchedulingWork),
              std::to_string(St->FilterWork),
              formatDouble(St->AppTime / St->BaselineAppTime, 4)});
  T.print(std::cout);

  std::cout << "\nonline filter decisions (optimizing tier): " << LN.FilterLS
            << " LS, " << LN.FilterNS << " NS\n";
  std::cout << "recouped scheduling work: "
            << formatPercent(Cmp.RecoupedWorkFraction, 1) << " (LS "
            << formatKiloUnits(LS.SchedulingWork) << " units -> L/N "
            << formatKiloUnits(LN.SchedulingWork) << " units)\n";

  // --- Wall-clock throughput (stderr). ---
  double Seconds = Wall.seconds();
  double Served = 2.0 * static_cast<double>(LS.Invocations);
  std::cerr << "throughput: " << Served << " invocations served in "
            << formatDouble(Seconds * 1e3, 1) << " ms ("
            << formatDouble(Seconds > 0.0 ? Served / Seconds / 1e6 : 0.0, 2)
            << "M inv/s across both runs)\n";
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  if (CL.has("help")) {
    printUsage(std::cout);
    return 0;
  }
  if (handleVersionOption(CL, "sf-serve"))
    return 0;
  if (CL.has("list")) {
    printWorkloadList(std::cout);
    return 0;
  }

  std::optional<BenchmarkSelection> Bench = parseBenchmarkOption(CL);
  if (!Bench)
    return 1;
  std::optional<WorkloadMix> Mix = parseWorkloadOption(CL);
  if (!Mix)
    return 1;
  if (Bench->Present == !Mix->empty()) {
    std::cerr << "error: give exactly one of --benchmark or --workload\n";
    printUsage(std::cerr);
    return 1;
  }
  const BenchmarkSpec *Spec = Bench->Spec;
  std::string Name = Bench->Present ? Spec->Name : std::string();

  std::optional<MachineModel> Model = parseModelOption(CL);
  if (!Model)
    return 1;
  if (!parseFilterEvalOption(CL))
    return 1;
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  ServiceConfig Cfg;
  std::optional<uint64_t> Invocations =
      parseCountOption(CL, "invocations", Cfg.Invocations, 1, 1000000000);
  std::optional<uint64_t> HotThreshold =
      parseCountOption(CL, "hot-threshold", Cfg.HotThreshold, 1, 1000000);
  std::optional<uint64_t> QueueCap =
      parseCountOption(CL, "queue-cap", Cfg.QueueCap, 1, 1000000);
  std::optional<uint64_t> SampleEvery =
      parseCountOption(CL, "sample-every", Cfg.SampleEvery, 1, 1000000);
  std::optional<uint64_t> EpochLen =
      parseCountOption(CL, "epoch-len", Cfg.EpochLen, 1, 100000000);
  std::optional<uint64_t> Drain =
      parseCountOption(CL, "drain", Cfg.DrainPerEpoch, 1, 1000000);
  if (!Invocations || !HotThreshold || !QueueCap || !SampleEvery ||
      !EpochLen || !Drain)
    return 1;
  Cfg.Invocations = *Invocations;
  Cfg.HotThreshold = static_cast<uint32_t>(*HotThreshold);
  Cfg.QueueCap = static_cast<uint32_t>(*QueueCap);
  Cfg.SampleEvery = static_cast<uint32_t>(*SampleEvery);
  Cfg.EpochLen = static_cast<uint32_t>(*EpochLen);
  Cfg.DrainPerEpoch = static_cast<uint32_t>(*Drain);

  // The interleaved multi-app mode has its own report shape.
  if (!Mix->empty())
    return serveMix(CL, *Mix, *Model, Engine, Cfg);

  Cfg.StreamSeed = invocationStreamSeed(Spec->Seed);

  // The optimizing-tier filter: deserialized from --rules, or self-trained
  // on the benchmark's own trace (corpus-cache-served when warm).  The
  // self-training path already synthesized the program; reuse it instead
  // of generating it a second time.
  RuleSet Rules(Label::NS);
  bool RulesFromFile = false;
  if (!loadRulesOption(CL, Rules, RulesFromFile))
    return 1;
  std::optional<Program> P;
  if (!RulesFromFile) {
    double Threshold = 0.0;
    if (!parseThresholdFlag(CL, Threshold))
      return 1;
    std::cerr << "training filter on " << Name << "'s own trace (t = "
              << Threshold << "; tracing on cache miss)...\n";
    std::vector<BenchmarkRun> Runs =
        Engine.generateSuiteData({*Spec}, *Model);
    std::vector<Dataset> Labeled = Engine.labelSuite(Runs, Threshold);
    Rules = ripperLearner(Engine.pool())(Labeled[0]);
    RuleAnalysis Lint = analyzeRuleSet(Rules, &Labeled[0]);
    if (!Lint.clean())
      printFindings(Lint, std::cerr);
    P = std::move(Runs[0].Prog);
  }
  if (!P)
    P = generateWorkloadProgram(*Spec);

  AccumulatingTimer Wall;
  Wall.start();
  ServeComparison Cmp =
      runServeComparison(*P, *Model, Cfg, Rules, Engine.pool());
  Wall.stop();

  // --- Deterministic report (stdout). ---
  const ServiceStats &LS = Cmp.Always;
  const ServiceStats &LN = Cmp.Filtered;
  std::cout << Name << " on " << Model->getName() << ": " << LS.Invocations
            << " invocations, sample every " << Cfg.SampleEvery
            << ", hot threshold " << Cfg.HotThreshold << ",\nqueue cap "
            << Cfg.QueueCap << ", drain " << Cfg.DrainPerEpoch
            << "/epoch, epoch " << Cfg.EpochLen << " (" << LS.Epochs
            << " epochs)\n\n";

  std::cout << "tier residency (L/N run): " << LN.BaselineInvocations
            << " baseline / " << LN.OptimizedInvocations
            << " optimized invocations; " << LN.MethodsOptimized << "/"
            << LN.MethodsTotal << " methods optimized\n";
  std::cout << "recompilation queue: max depth " << LN.MaxQueueDepth
            << ", mean " << formatDouble(LN.MeanQueueDepth, 2) << ", "
            << LN.Deferred << " deferred (backpressure), "
            << LN.FinalQueueDepth << " still queued\n\n";

  TablePrinter T({"Opt tier", "Compiled", "Blocks", "Scheduled",
                  "Work units", "Filter work", "App time vs baseline"});
  for (const ServiceStats *St : {&LS, &LN})
    T.addRow({St == &LS ? "LS" : "L/N", std::to_string(St->CompiledMethods),
              std::to_string(St->BlocksCompiled),
              std::to_string(St->BlocksScheduled),
              std::to_string(St->SchedulingWork),
              std::to_string(St->FilterWork),
              formatDouble(St->AppTime / St->BaselineAppTime, 4)});
  T.print(std::cout);

  std::cout << "\nonline filter decisions (optimizing tier): " << LN.FilterLS
            << " LS, " << LN.FilterNS << " NS\n";
  std::cout << "recouped scheduling work: "
            << formatPercent(Cmp.RecoupedWorkFraction, 1) << " (LS "
            << formatKiloUnits(LS.SchedulingWork) << " units -> L/N "
            << formatKiloUnits(LN.SchedulingWork) << " units)\n";

  // --- Wall-clock throughput (stderr: varies run to run, backs nothing
  // deterministic). ---
  double Seconds = Wall.seconds();
  double Served = 2.0 * static_cast<double>(LS.Invocations);
  std::cerr << "throughput: " << Served << " invocations served in "
            << formatDouble(Seconds * 1e3, 1) << " ms ("
            << formatDouble(Seconds > 0.0 ? Served / Seconds / 1e6 : 0.0, 2)
            << "M inv/s across both runs)\n";
  return 0;
}
