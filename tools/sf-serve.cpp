//===- tools/sf-serve.cpp - Serve a method-invocation stream ----------------===//
//
// The runtime half of the reproduction: replay a benchmark's method
// invocation stream through the CompileService (baseline tier, sampling
// based hotness counters, bounded recompilation queue, optimizing tier)
// and report what the induced filter recoups once scheduling cost is paid
// at run time -- the regime of the paper's host JIT (§3.1).
//
// The service runs the identical stream twice: optimizing tier = LS
// (schedule every block of every promoted method) and optimizing tier =
// L/N (the filter decides per block).  Promotion dynamics are identical
// in both runs, so the work delta is purely the filter's doing.
//
// Everything printed to stdout is deterministic: bit-identical at any
// --jobs value and with a cold or warm corpus cache.  Wall-clock
// throughput goes to stderr.
//
// Usage:
//   sf-serve --benchmark NAME [--rules RULES.txt | --threshold T]
//            [--model ppc7410|ppc970|simple-scalar]
//            [--invocations N] [--hot-threshold N] [--queue-cap N]
//            [--sample-every N] [--epoch-len N] [--drain N]
//            [--online [--retrain-every N] [--registry DIR]]
//            [--filter-eval compiled|interpreter]
//            [--jobs N] [--corpus-dir DIR | --no-cache]
//   sf-serve --workload FAMILY[:WEIGHT][,FAMILY[:WEIGHT]...] [...]
//   sf-serve --list
//   sf-serve --help | --version
//
// Without --rules the filter is trained on the benchmark's own trace at
// --threshold (default 0) -- the self-training upper bound; the trace
// comes from the corpus cache when warm.
//
// --online closes the loop while serving: the optimizing tier traces the
// methods it compiles, the records accumulate, and every --retrain-every
// virtual ticks (default 8192) the filter retrains in the background and
// hot-swaps at the next epoch boundary; the run's swap lineage prints
// after the tables.  --registry DIR persists every installed version as
// an SFFR1 file (inspect/export with sf-train --from-registry).  All of
// it is deterministic: the swap sequence, the stats, and the registry
// bytes are identical at any --jobs and cache temperature.  --online is
// incompatible with --rules (a fixed rules file cannot hot-swap).
//
// --workload serves the interleaved multi-app stream instead: every
// benchmark of each named family becomes one app, the family weight is
// its share of the interleave, and one shared service (one clock, one
// hotness sampler, one bounded queue) serves them all -- the
// multi-tenant regime of a server JIT.  Per-app tier residency and
// recouped work print alongside the aggregate; without --rules the
// filter self-trains on the mix's own traces.  Output is bit-identical
// at any --jobs and cache temperature, like the single-app mode.
//
//===----------------------------------------------------------------------===//

#include "analysis/RuleAnalysis.h"
#include "harness/ParallelExperiments.h"
#include "io/FilterRegistry.h"
#include "ml/Serialization.h"
#include "runtime/CompileService.h"
#include "runtime/MultiAppService.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"

#include "EngineOption.h"
#include "FilterEvalOption.h"
#include "ModelOption.h"
#include "RulesOption.h"
#include "VersionOption.h"
#include "WorkloadOption.h"

#include <iostream>

using namespace schedfilter;

namespace {

void printUsage(std::ostream &OS) {
  OS << "usage: sf-serve --benchmark NAME [--rules RULES.txt |"
        " --threshold T]\n"
        "                [--model ppc7410|ppc970|simple-scalar]\n"
        "                [--invocations N] [--hot-threshold N]"
        " [--queue-cap N]\n"
        "                [--sample-every N] [--epoch-len N] [--drain N]\n"
        "                [--online [--retrain-every N] [--registry DIR]]\n"
        "                [--filter-eval compiled|interpreter]\n"
        "                [--jobs N] [--corpus-dir DIR | --no-cache]\n"
        "       sf-serve --workload FAMILY[:WEIGHT][,...] [...]\n"
        "       sf-serve --list\n"
        "       sf-serve --help | --version\n";
}

/// Resolves --threshold (a percentage in [0, 100]): the strict shared
/// numeric parse (CommandLine::getDouble) plus the range check.  Trailing
/// junk or out-of-range values error out, never silently fall back to the
/// default -- identically across all five sf-* tools.
bool parseThresholdFlag(const CommandLine &CL, double &Out) {
  std::optional<double> V = CL.getDouble("threshold", 0.0);
  if (!V)
    return false;
  if (!(*V >= 0.0 && *V <= 100.0)) {
    std::cerr << "error: --threshold expects a percentage in [0, 100] "
                 "(got '" << CL.get("threshold") << "')\n";
    return false;
  }
  Out = *V;
  return true;
}

std::string formatKiloUnits(uint64_t Units) {
  return formatDouble(static_cast<double>(Units) / 1e3, 1) + "k";
}

/// Resolves --rules when present: the shared checked-load-with-lint
/// (tools/RulesOption.h) plus this tool's conflict checks.  Returns false
/// after a printed diagnostic -- bad file, or --threshold / --online
/// given alongside.
bool loadRulesOption(const CommandLine &CL, RuleSet &Rules, bool &Loaded) {
  Loaded = false;
  std::string RulesPath = CL.get("rules");
  if (RulesPath.empty())
    return true;
  if (CL.has("threshold")) {
    std::cerr << "error: --rules and --threshold are mutually exclusive "
                 "(the threshold labels the self-training trace)\n";
    return false;
  }
  if (CL.has("online")) {
    std::cerr << "error: --rules and --online are mutually exclusive "
                 "(--online self-trains its own v1 filter and adapts it; "
                 "a fixed rules file cannot hot-swap)\n";
    return false;
  }
  std::optional<RuleSetFile> Parsed = loadRulesFileWithLint(RulesPath);
  if (!Parsed)
    return false;
  Rules = std::move(Parsed->Rules);
  Loaded = true;
  return true;
}

/// Resolves --online / --retrain-every / --registry into \p Cfg and
/// \p RegistryDir.  The dependent flags require --online.
bool parseOnlineOptions(const CommandLine &CL, ServiceConfig &Cfg,
                        std::string &RegistryDir) {
  if (!CL.has("online")) {
    if (CL.has("retrain-every") || CL.has("registry")) {
      std::cerr << "error: --retrain-every and --registry require --online\n";
      return false;
    }
    return true;
  }
  Cfg.Online = true;
  std::optional<uint64_t> RetrainEvery =
      parseCountOption(CL, "retrain-every", Cfg.RetrainEvery, 1, 1000000000);
  if (!RetrainEvery)
    return false;
  Cfg.RetrainEvery = *RetrainEvery;
  RegistryDir = CL.get("registry");
  if (CL.has("registry") && RegistryDir.empty()) {
    std::cerr << "error: --registry expects a directory\n";
    return false;
  }
  return true;
}

std::string formatHex64(uint64_t V) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I, V >>= 4)
    Out[static_cast<size_t>(I)] = Digits[V & 0xf];
  return Out;
}

/// The online-mode stdout tail: retrain counters and the run's full swap
/// lineage.  Every field is deterministic -- part of the byte-identical
/// stdout contract at any --jobs and cache temperature.
void printOnlineReport(const ServiceStats &LN) {
  std::cout << "\nonline self-training: " << LN.Retrains << " retrains, "
            << LN.CorpusRecords << " records absorbed, final filter v"
            << LN.FinalFilterVersion << "\n";
  std::cout << "filter lineage (swap sequence):\n";
  for (const ServiceStats::FilterSwapStat &S : LN.Swaps)
    std::cout << "  v" << S.Version << " <- v" << S.ParentVersion
              << " installed epoch " << S.Epoch << " tick " << S.Tick
              << " (trigger tick " << S.TriggerTick << ", corpus "
              << S.CorpusRecords << ", rules " << formatHex64(S.RulesHash)
              << ")\n";
}

/// After a run that persisted a registry: fail loudly if any store
/// failed -- a half-written lineage must not look like success.
bool checkRegistryHealth(const FilterRegistry *Reg) {
  if (!Reg)
    return true;
  FilterRegistry::Stats S = Reg->stats();
  std::cerr << "registry: " << S.Stores << " versions persisted to "
            << Reg->directory() << "\n";
  if (S.StoreFailures) {
    std::cerr << "error: " << S.StoreFailures
              << " registry store(s) failed (disk full or unwritable "
                 "directory?)\n";
    return false;
  }
  return true;
}

/// The --workload path: expand the mix into apps, resolve the filter
/// (--rules or self-trained on the mix's own traces), replay the
/// interleaved stream under both optimizing-tier policies, and report
/// per-app and aggregate stats.  Everything on stdout is a pure function
/// of (mix, model, config) -- same contract as the single-app mode.
int serveMix(const CommandLine &CL, const WorkloadMix &Mix,
             const MachineModel &Model, ExperimentEngine &Engine,
             ServiceConfig Cfg, const std::string &RegistryDir) {
  std::vector<AppSpec> Apps = expandWorkloadMix(Mix);
  Cfg.StreamSeed = workloadMixSeed(Apps);

  RuleSet Rules(Label::NS);
  bool RulesFromFile = false;
  if (!loadRulesOption(CL, Rules, RulesFromFile))
    return 1;

  std::vector<Program> Programs;
  std::vector<BlockRecord> SeedRecords;
  if (RulesFromFile) {
    Programs = generateMixPrograms(Apps);
  } else {
    // Self-train on the whole mix: the factory filter for exactly the
    // population this service is about to serve.  Reuse the synthesized
    // programs instead of generating them a second time.
    double Threshold = 0.0;
    if (!parseThresholdFlag(CL, Threshold))
      return 1;
    std::vector<BenchmarkSpec> Suite;
    Suite.reserve(Apps.size());
    for (const AppSpec &A : Apps)
      Suite.push_back(A.Spec);
    std::cerr << "training filter on the mix's own traces (t = " << Threshold
              << "; tracing on cache miss)...\n";
    std::vector<BenchmarkRun> Runs = Engine.generateSuiteData(Suite, Model);
    std::vector<Dataset> Labeled = Engine.labelSuite(Runs, Threshold);
    Dataset Train(formatWorkloadMix(Mix));
    for (const Dataset &D : Labeled)
      Train.append(D);
    Rules = ripperLearner(Engine.pool())(Train);
    RuleAnalysis Lint = analyzeRuleSet(Rules, &Train);
    if (!Lint.clean())
      printFindings(Lint, std::cerr);
    Cfg.RetrainThreshold = Threshold;
    Programs.reserve(Runs.size());
    for (BenchmarkRun &Run : Runs) {
      if (Cfg.Online)
        SeedRecords.insert(SeedRecords.end(), Run.Records.begin(),
                           Run.Records.end());
      Programs.push_back(std::move(Run.Prog));
    }
  }

  std::optional<FilterRegistry> Registry;
  if (!RegistryDir.empty())
    Registry.emplace(RegistryDir);

  AccumulatingTimer Wall;
  Wall.start();
  MultiAppComparison Cmp = runMultiAppComparison(
      Apps, Programs, Model, Cfg, Rules, Engine.pool(), nullptr,
      std::move(SeedRecords), Registry ? &*Registry : nullptr,
      formatWorkloadMix(Mix), Model.getName());
  Wall.stop();

  // --- Deterministic report (stdout). ---
  const ServiceStats &LS = Cmp.Always.Total;
  const ServiceStats &LN = Cmp.Filtered.Total;
  std::cout << "workload mix " << formatWorkloadMix(Mix) << " on "
            << Model.getName() << ": " << Apps.size() << " apps, "
            << LS.Invocations << " invocations interleaved,\nsample every "
            << Cfg.SampleEvery << ", hot threshold " << Cfg.HotThreshold
            << ", queue cap " << Cfg.QueueCap << ", drain "
            << Cfg.DrainPerEpoch << "/epoch, epoch " << Cfg.EpochLen << " ("
            << LS.Epochs << " epochs)\n\n";

  TablePrinter PerApp({"App", "Family", "Invocations", "Optimized inv",
                       "Methods opt", "LS work", "L/N work", "Recouped"});
  for (size_t A = 0; A != Apps.size(); ++A) {
    const ServiceStats &ALS = Cmp.Always.PerApp[A];
    const ServiceStats &ALN = Cmp.Filtered.PerApp[A];
    PerApp.addRow({Cmp.Filtered.AppNames[A], Apps[A].Spec.Family,
                   std::to_string(ALN.Invocations),
                   std::to_string(ALN.OptimizedInvocations),
                   std::to_string(ALN.MethodsOptimized) + "/" +
                       std::to_string(ALN.MethodsTotal),
                   std::to_string(ALS.SchedulingWork),
                   std::to_string(ALN.SchedulingWork),
                   formatPercent(Cmp.PerAppRecoup[A], 1)});
  }
  PerApp.print(std::cout);

  std::cout << "\nrecompilation queue (L/N run, shared): max depth "
            << LN.MaxQueueDepth << ", mean "
            << formatDouble(LN.MeanQueueDepth, 2) << ", " << LN.Deferred
            << " deferred (backpressure), " << LN.FinalQueueDepth
            << " still queued\n\n";

  TablePrinter T({"Opt tier", "Compiled", "Blocks", "Scheduled",
                  "Work units", "Filter work", "App time vs baseline"});
  for (const ServiceStats *St : {&LS, &LN})
    T.addRow({St == &LS ? "LS" : "L/N", std::to_string(St->CompiledMethods),
              std::to_string(St->BlocksCompiled),
              std::to_string(St->BlocksScheduled),
              std::to_string(St->SchedulingWork),
              std::to_string(St->FilterWork),
              formatDouble(St->AppTime / St->BaselineAppTime, 4)});
  T.print(std::cout);

  std::cout << "\nonline filter decisions (optimizing tier): " << LN.FilterLS
            << " LS, " << LN.FilterNS << " NS\n";
  std::cout << "recouped scheduling work: "
            << formatPercent(Cmp.RecoupedWorkFraction, 1) << " (LS "
            << formatKiloUnits(LS.SchedulingWork) << " units -> L/N "
            << formatKiloUnits(LN.SchedulingWork) << " units)\n";
  if (Cfg.Online)
    printOnlineReport(LN);

  // --- Wall-clock throughput (stderr). ---
  double Seconds = Wall.seconds();
  double Served = 2.0 * static_cast<double>(LS.Invocations);
  std::cerr << "throughput: " << Served << " invocations served in "
            << formatDouble(Seconds * 1e3, 1) << " ms ("
            << formatDouble(Seconds > 0.0 ? Served / Seconds / 1e6 : 0.0, 2)
            << "M inv/s across both runs)\n";
  return checkRegistryHealth(Registry ? &*Registry : nullptr) ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  if (CL.has("help")) {
    printUsage(std::cout);
    return 0;
  }
  if (handleVersionOption(CL, "sf-serve"))
    return 0;
  if (CL.has("list")) {
    printWorkloadList(std::cout);
    return 0;
  }

  std::optional<BenchmarkSelection> Bench = parseBenchmarkOption(CL);
  if (!Bench)
    return 1;
  std::optional<WorkloadMix> Mix = parseWorkloadOption(CL);
  if (!Mix)
    return 1;
  if (Bench->Present == !Mix->empty()) {
    std::cerr << "error: give exactly one of --benchmark or --workload\n";
    printUsage(std::cerr);
    return 1;
  }
  const BenchmarkSpec *Spec = Bench->Spec;
  std::string Name = Bench->Present ? Spec->Name : std::string();

  std::optional<MachineModel> Model = parseModelOption(CL);
  if (!Model)
    return 1;
  if (!parseFilterEvalOption(CL))
    return 1;
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  ExperimentEngine &Engine = **Handle;

  ServiceConfig Cfg;
  std::optional<uint64_t> Invocations =
      parseCountOption(CL, "invocations", Cfg.Invocations, 1, 1000000000);
  std::optional<uint64_t> HotThreshold =
      parseCountOption(CL, "hot-threshold", Cfg.HotThreshold, 1, 1000000);
  std::optional<uint64_t> QueueCap =
      parseCountOption(CL, "queue-cap", Cfg.QueueCap, 1, 1000000);
  std::optional<uint64_t> SampleEvery =
      parseCountOption(CL, "sample-every", Cfg.SampleEvery, 1, 1000000);
  std::optional<uint64_t> EpochLen =
      parseCountOption(CL, "epoch-len", Cfg.EpochLen, 1, 100000000);
  std::optional<uint64_t> Drain =
      parseCountOption(CL, "drain", Cfg.DrainPerEpoch, 1, 1000000);
  if (!Invocations || !HotThreshold || !QueueCap || !SampleEvery ||
      !EpochLen || !Drain)
    return 1;
  Cfg.Invocations = *Invocations;
  Cfg.HotThreshold = static_cast<uint32_t>(*HotThreshold);
  Cfg.QueueCap = static_cast<uint32_t>(*QueueCap);
  Cfg.SampleEvery = static_cast<uint32_t>(*SampleEvery);
  Cfg.EpochLen = static_cast<uint32_t>(*EpochLen);
  Cfg.DrainPerEpoch = static_cast<uint32_t>(*Drain);

  std::string RegistryDir;
  if (!parseOnlineOptions(CL, Cfg, RegistryDir))
    return 1;

  // The interleaved multi-app mode has its own report shape.
  if (!Mix->empty())
    return serveMix(CL, *Mix, *Model, Engine, Cfg, RegistryDir);

  Cfg.StreamSeed = invocationStreamSeed(Spec->Seed);

  // The optimizing-tier filter: deserialized from --rules, or self-trained
  // on the benchmark's own trace (corpus-cache-served when warm).  The
  // self-training path already synthesized the program; reuse it instead
  // of generating it a second time.
  RuleSet Rules(Label::NS);
  bool RulesFromFile = false;
  if (!loadRulesOption(CL, Rules, RulesFromFile))
    return 1;
  std::optional<Program> P;
  std::vector<BlockRecord> SeedRecords;
  if (!RulesFromFile) {
    double Threshold = 0.0;
    if (!parseThresholdFlag(CL, Threshold))
      return 1;
    std::cerr << "training filter on " << Name << "'s own trace (t = "
              << Threshold << "; tracing on cache miss)...\n";
    std::vector<BenchmarkRun> Runs =
        Engine.generateSuiteData({*Spec}, *Model);
    std::vector<Dataset> Labeled = Engine.labelSuite(Runs, Threshold);
    Rules = ripperLearner(Engine.pool())(Labeled[0]);
    RuleAnalysis Lint = analyzeRuleSet(Rules, &Labeled[0]);
    if (!Lint.clean())
      printFindings(Lint, std::cerr);
    Cfg.RetrainThreshold = Threshold;
    if (Cfg.Online)
      SeedRecords = std::move(Runs[0].Records);
    P = std::move(Runs[0].Prog);
  }
  if (!P)
    P = generateWorkloadProgram(*Spec);

  std::optional<FilterRegistry> Registry;
  if (!RegistryDir.empty())
    Registry.emplace(RegistryDir);

  AccumulatingTimer Wall;
  Wall.start();
  ServeComparison Cmp = runServeComparison(
      *P, *Model, Cfg, Rules, Engine.pool(), std::move(SeedRecords),
      Registry ? &*Registry : nullptr, Name, Model->getName());
  Wall.stop();

  // --- Deterministic report (stdout). ---
  const ServiceStats &LS = Cmp.Always;
  const ServiceStats &LN = Cmp.Filtered;
  std::cout << Name << " on " << Model->getName() << ": " << LS.Invocations
            << " invocations, sample every " << Cfg.SampleEvery
            << ", hot threshold " << Cfg.HotThreshold << ",\nqueue cap "
            << Cfg.QueueCap << ", drain " << Cfg.DrainPerEpoch
            << "/epoch, epoch " << Cfg.EpochLen << " (" << LS.Epochs
            << " epochs)\n\n";

  std::cout << "tier residency (L/N run): " << LN.BaselineInvocations
            << " baseline / " << LN.OptimizedInvocations
            << " optimized invocations; " << LN.MethodsOptimized << "/"
            << LN.MethodsTotal << " methods optimized\n";
  std::cout << "recompilation queue: max depth " << LN.MaxQueueDepth
            << ", mean " << formatDouble(LN.MeanQueueDepth, 2) << ", "
            << LN.Deferred << " deferred (backpressure), "
            << LN.FinalQueueDepth << " still queued\n\n";

  TablePrinter T({"Opt tier", "Compiled", "Blocks", "Scheduled",
                  "Work units", "Filter work", "App time vs baseline"});
  for (const ServiceStats *St : {&LS, &LN})
    T.addRow({St == &LS ? "LS" : "L/N", std::to_string(St->CompiledMethods),
              std::to_string(St->BlocksCompiled),
              std::to_string(St->BlocksScheduled),
              std::to_string(St->SchedulingWork),
              std::to_string(St->FilterWork),
              formatDouble(St->AppTime / St->BaselineAppTime, 4)});
  T.print(std::cout);

  std::cout << "\nonline filter decisions (optimizing tier): " << LN.FilterLS
            << " LS, " << LN.FilterNS << " NS\n";
  std::cout << "recouped scheduling work: "
            << formatPercent(Cmp.RecoupedWorkFraction, 1) << " (LS "
            << formatKiloUnits(LS.SchedulingWork) << " units -> L/N "
            << formatKiloUnits(LN.SchedulingWork) << " units)\n";
  if (Cfg.Online)
    printOnlineReport(LN);

  // --- Wall-clock throughput (stderr: varies run to run, backs nothing
  // deterministic). ---
  double Seconds = Wall.seconds();
  double Served = 2.0 * static_cast<double>(LS.Invocations);
  std::cerr << "throughput: " << Served << " invocations served in "
            << formatDouble(Seconds * 1e3, 1) << " ms ("
            << formatDouble(Seconds > 0.0 ? Served / Seconds / 1e6 : 0.0, 2)
            << "M inv/s across both runs)\n";
  return checkRegistryHealth(Registry ? &*Registry : nullptr) ? 0 : 1;
}
