//===- tools/sf-train.cpp - Induce a filter from traces ---------------------===//
//
// Labels one or more traces (written by sf-trace, CSV or SFTB1 binary --
// auto-detected per file) at a threshold, trains a learner, prints the
// induced filter with coverage counts, and optionally serializes it for
// installation in the compiler -- the paper's offline "at the factory"
// procedure end to end.
//
// Usage:
//   sf-train [TRACE ...] [--workload FAMILY[,FAMILY...]] [--threshold T]
//            [--learner ripper|tree|oner|stump] [--out RULES.txt]
//            [--model ppc7410|ppc970|simple-scalar]
//            [--jobs N] [--corpus-dir DIR | --no-cache]
//
// Training data comes from trace files, from --workload, or both:
// --workload traces every benchmark of the named families itself
// (corpus-cache-served when warm) and appends them after the files, so
// "sf-train --workload specjvm98,serverloop" is the factory procedure
// for a mixed deployment with no intermediate trace files.
//
// --jobs N reads and labels the traces on N workers and fans the RIPPER
// grow phase's per-feature candidate scans across the same pool; traces
// are merged in command-line order and the learner reduces its argmax in
// feature order, so the induced filter is byte-identical at any N.
//
// --from-registry DIR inspects a filter lineage persisted by
// `sf-serve --online --registry DIR` instead of training: it lists every
// version's provenance (parent, trigger tick, corpus size) and prints the
// selected version's rules (--filter-version N; default newest).  --out
// exports that version as a plain rules file, ready for --rules in any
// tool.  Incompatible with trace files and --workload (the registry IS
// the training provenance).
//
//===----------------------------------------------------------------------===//

#include "analysis/RuleAnalysis.h"
#include "io/FilterRegistry.h"
#include "io/TraceStore.h"
#include "ml/Baselines.h"
#include "ml/DecisionTree.h"
#include "ml/Metrics.h"
#include "ml/Ripper.h"
#include "ml/Serialization.h"
#include "support/CommandLine.h"
#include "support/TaskPool.h"

#include "EngineOption.h"
#include "ModelOption.h"
#include "NoiseOption.h"
#include "VersionOption.h"
#include "WorkloadOption.h"

#include <fstream>
#include <iostream>

using namespace schedfilter;

static void printUsage(std::ostream &OS) {
  OS << "usage: sf-train [TRACE ...] [--workload FAMILY[,FAMILY...]]\n"
        "                [--threshold T]"
        " [--learner ripper|tree|oner|stump]\n"
        "                [--out RULES.txt]"
        " [--model ppc7410|ppc970|simple-scalar]\n"
        "                [--jobs N] [--corpus-dir DIR | --no-cache]\n"
        "                [--noise SRC:PARAM[,...]] [--noise-seed N]\n"
        "       sf-train --from-registry DIR [--filter-version N]\n"
        "                [--out RULES.txt]\n"
        "       sf-train --help | --version\n";
}

static int usage() {
  printUsage(std::cerr);
  return 1;
}

/// The --from-registry mode: list a persisted lineage's provenance
/// (stderr), print the selected version's rules (stdout), optionally
/// export with --out.  No training happens here.
static int inspectRegistry(const CommandLine &CL) {
  if (!CL.positional().empty() || CL.has("workload")) {
    std::cerr << "error: --from-registry is incompatible with trace files "
                 "and --workload (the registry is the training "
                 "provenance)\n";
    return 1;
  }
  std::string Dir = CL.get("from-registry");
  FilterRegistry Registry(Dir);
  std::vector<uint32_t> Versions = Registry.listVersions();
  if (Versions.empty()) {
    std::cerr << "error: no filter versions found in '" << Dir << "'\n";
    return 1;
  }

  std::optional<uint64_t> Selected =
      parseCountOption(CL, "filter-version", Versions.back(), 1, 0xFFFFFFFFull);
  if (!Selected)
    return 1;
  uint32_t Want = static_cast<uint32_t>(*Selected);

  // Lineage listing: every version's provenance, loaded and validated
  // (a corrupt entry fails the listing -- never silently skipped).
  std::cerr << "registry " << Dir << ": " << Versions.size()
            << " versions\n";
  std::optional<RegistryEntry> Chosen;
  for (uint32_t V : Versions) {
    ParseResult<RegistryEntry> E = Registry.load(V);
    if (!E) {
      std::cerr << "error: " << E.error().str() << '\n';
      return 1;
    }
    std::cerr << "  v" << E->Meta.Version << " <- v" << E->Meta.ParentVersion
              << ": trigger tick " << E->Meta.TriggerTick << ", corpus "
              << E->Meta.CorpusRecords << " records, t = "
              << E->Meta.ThresholdPct << ", " << E->Rules.size()
              << " rules (model " << E->Meta.Model << ", workload "
              << E->Meta.Workload << ")\n";
    if (V == Want)
      Chosen = std::move(*E);
  }
  if (!Chosen) {
    std::cerr << "error: version " << Want << " not found in '" << Dir
              << "'\n";
    return 1;
  }

  std::cout << Chosen->Rules.toString();

  std::string Out = CL.get("out");
  if (!Out.empty()) {
    std::ofstream OS(Out, std::ios::trunc);
    if (!OS) {
      std::cerr << "error: cannot open '" << Out << "' for writing\n";
      return 1;
    }
    writeRuleSet(Chosen->Rules, OS);
    OS.flush();
    if (!OS) {
      std::cerr << "error: failed writing filter to '" << Out
                << "' (disk full or device error)\n";
      return 1;
    }
    std::cerr << "\nwrote v" << Chosen->Meta.Version << " to " << Out << '\n';
  }
  return 0;
}

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  if (CL.has("help")) {
    printUsage(std::cout);
    return 0;
  }
  if (handleVersionOption(CL, "sf-train"))
    return 0;
  if (CL.has("from-registry"))
    return inspectRegistry(CL);
  if (CL.has("filter-version")) {
    std::cerr << "error: --filter-version only applies with "
                 "--from-registry\n";
    return 1;
  }
  std::optional<WorkloadMix> Mix = parseWorkloadOption(CL);
  if (!Mix)
    return 1;
  if (CL.positional().empty() && Mix->empty())
    return usage();

  std::optional<double> Threshold = CL.getDouble("threshold", 0.0);
  if (!Threshold)
    return 1;
  if (!(*Threshold >= 0.0 && *Threshold <= 100.0)) {
    std::cerr << "error: --threshold expects a percentage in [0, 100] "
                 "(got '" << CL.get("threshold") << "')\n";
    return 1;
  }
  std::string LearnerName = CL.get("learner", "ripper");
  std::optional<MachineModel> Model = parseModelOption(CL);
  if (!Model)
    return 1;
  std::optional<EngineHandle> Handle = parseEngineOptions(CL);
  if (!Handle)
    return 1;
  std::optional<NoiseStack> Noise = parseNoiseOption(CL);
  if (!Noise)
    return 1;
  ExperimentEngine &Engine = **Handle;
  TaskPool &Pool = Engine.pool();

  // Read and label each trace on the pool; merge in command-line order so
  // the training set (and thus the filter) is identical at any job count.
  // Each file is one run of the noise stack's lane space (run index =
  // command-line position; --workload runs continue the numbering), so a
  // perturbed training set replays bit-identically at any job count too.
  const std::vector<std::string> &Paths = CL.positional();
  std::vector<Dataset> Labeled(Paths.size());
  std::vector<size_t> BlockCounts(Paths.size(), 0);
  std::vector<std::string> Errors(Paths.size());
  Pool.parallelFor(Paths.size(), [&](size_t I) {
    ParseResult<std::vector<BlockRecord>> Records = readTraceFile(Paths[I]);
    if (!Records) {
      const ParseError &E = Records.error();
      Errors[I] = "error: " + Paths[I] +
                  (E.Line ? ":" + std::to_string(E.Line) : "") + ": " +
                  E.Message;
      return;
    }
    BlockCounts[I] = Records->size();
    BenchmarkRun Run;
    Run.Name = Paths[I];
    Run.Records = std::move(*Records);
    Noise->perturbRun(Run, I);
    Labeled[I] = Noise->labelRun(Run, I, *Threshold);
  });

  Dataset Train("train");
  size_t TotalBlocks = 0;
  for (size_t I = 0; I != Paths.size(); ++I) {
    if (!Errors[I].empty()) {
      std::cerr << Errors[I] << '\n';
      return 1;
    }
    TotalBlocks += BlockCounts[I];
    Train.append(Labeled[I]);
  }

  // --workload sources: trace (or cache-load) every benchmark of each
  // named family and append in suite order, after the file traces.
  if (!Mix->empty()) {
    std::vector<BenchmarkSpec> Suite = workloadMixSuite(*Mix);
    std::cerr << "tracing " << Suite.size() << " benchmarks from --workload "
              << formatWorkloadMix(*Mix)
              << " (cache-served when warm)...\n";
    std::vector<BenchmarkRun> Runs = Engine.generateSuiteData(Suite, *Model);
    std::vector<Dataset> FromMix(Runs.size());
    Pool.parallelFor(Runs.size(), [&](size_t I) {
      Noise->perturbRun(Runs[I], Paths.size() + I);
      FromMix[I] = Noise->labelRun(Runs[I], Paths.size() + I, *Threshold);
    });
    for (size_t I = 0; I != Runs.size(); ++I) {
      TotalBlocks += Runs[I].Records.size();
      Train.append(FromMix[I]);
    }
  }

  std::cerr << "labeled " << Train.size() << " of " << TotalBlocks
            << " blocks at t = " << *Threshold << " ("
            << Train.countLabel(Label::LS) << " LS, "
            << Train.countLabel(Label::NS) << " NS)\n";

  RuleSet Filter(Label::NS);
  if (LearnerName == "ripper")
    Filter = Ripper().train(Train, Pool);
  else if (LearnerName == "tree")
    Filter = learnDecisionTreeRules(Train);
  else if (LearnerName == "oner")
    Filter = learnOneR(Train);
  else if (LearnerName == "stump")
    Filter = learnSizeStump(Train);
  else {
    std::cerr << "error: unknown learner '" << LearnerName << "'\n";
    return usage();
  }

  std::cerr << "training error "
            << errorRatePercent(Filter, Train) << "%\n\n";
  std::cout << Filter.toString();

  // Surface analyzer findings on the induced filter (dead/shadowed rules,
  // redundant conditions, thresholds outside the training range) before
  // anyone installs it; sf-lint gives the same report for saved files.
  RuleAnalysis Lint = analyzeRuleSet(Filter, &Train);
  if (!Lint.clean())
    printFindings(Lint, std::cerr);

  std::string Out = CL.get("out");
  if (!Out.empty()) {
    std::ofstream OS(Out, std::ios::trunc);
    if (!OS) {
      std::cerr << "error: cannot open '" << Out << "' for writing\n";
      return 1;
    }
    writeRuleSet(Filter, OS);
    OS.flush();
    if (!OS) {
      std::cerr << "error: failed writing filter to '" << Out
                << "' (disk full or device error)\n";
      return 1;
    }
    std::cerr << "\nwrote filter to " << Out << '\n';
  }
  return 0;
}
