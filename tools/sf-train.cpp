//===- tools/sf-train.cpp - Induce a filter from traces ---------------------===//
//
// Labels one or more traces (written by sf-trace) at a threshold, trains
// a learner, prints the induced filter with coverage counts, and
// optionally serializes it for installation in the compiler -- the
// paper's offline "at the factory" procedure end to end.
//
// Usage:
//   sf-train TRACE.csv [TRACE2.csv ...] [--threshold T]
//            [--learner ripper|tree|oner|stump] [--out RULES.txt]
//
//===----------------------------------------------------------------------===//

#include "harness/TraceFile.h"
#include "ml/Baselines.h"
#include "ml/DecisionTree.h"
#include "ml/Metrics.h"
#include "ml/Ripper.h"
#include "ml/Serialization.h"
#include "support/CommandLine.h"

#include <fstream>
#include <iostream>

using namespace schedfilter;

static int usage() {
  std::cerr << "usage: sf-train TRACE.csv [TRACE2.csv ...] [--threshold T]\n"
               "                [--learner ripper|tree|oner|stump]"
               " [--out RULES.txt]\n";
  return 1;
}

int main(int argc, char **argv) {
  CommandLine CL(argc, argv);
  if (CL.positional().empty())
    return usage();

  double Threshold = CL.getDouble("threshold", 0.0);
  std::string LearnerName = CL.get("learner", "ripper");

  Dataset Train("train");
  size_t TotalBlocks = 0;
  for (const std::string &Path : CL.positional()) {
    std::ifstream IS(Path);
    if (!IS) {
      std::cerr << "error: cannot open trace '" << Path << "'\n";
      return 1;
    }
    std::optional<std::vector<BlockRecord>> Records = readTrace(IS);
    if (!Records) {
      std::cerr << "error: malformed trace '" << Path << "'\n";
      return 1;
    }
    TotalBlocks += Records->size();
    Train.append(buildDataset(*Records, Threshold, Path));
  }

  std::cerr << "labeled " << Train.size() << " of " << TotalBlocks
            << " blocks at t = " << Threshold << " ("
            << Train.countLabel(Label::LS) << " LS, "
            << Train.countLabel(Label::NS) << " NS)\n";

  RuleSet Filter(Label::NS);
  if (LearnerName == "ripper")
    Filter = Ripper().train(Train);
  else if (LearnerName == "tree")
    Filter = learnDecisionTreeRules(Train);
  else if (LearnerName == "oner")
    Filter = learnOneR(Train);
  else if (LearnerName == "stump")
    Filter = learnSizeStump(Train);
  else {
    std::cerr << "error: unknown learner '" << LearnerName << "'\n";
    return usage();
  }

  std::cerr << "training error "
            << errorRatePercent(Filter, Train) << "%\n\n";
  std::cout << Filter.toString();

  std::string Out = CL.get("out");
  if (!Out.empty()) {
    std::ofstream OS(Out);
    if (!OS) {
      std::cerr << "error: cannot open '" << Out << "' for writing\n";
      return 1;
    }
    writeRuleSet(Filter, OS);
    std::cerr << "\nwrote filter to " << Out << '\n';
  }
  return 0;
}
