//===- tools/WorkloadOption.h - Shared workload selection -------*- C++ -*-===//
///
/// \file
/// One place for the sf-* tools and bench drivers to resolve the workload
/// surface: --workload family[:weight],... mixes, --benchmark lookups,
/// and the --list body -- all answered from the WorkloadRegistry, so a
/// newly registered family shows up in every tool without touching any
/// of them.  Validation is strict in the JobsOption style: a mistyped
/// family or weight prints a diagnostic naming what is accepted and
/// returns nullopt; nothing ever silently falls back.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_TOOLS_WORKLOADOPTION_H
#define SCHEDFILTER_TOOLS_WORKLOADOPTION_H

#include "support/CommandLine.h"
#include "workloads/WorkloadFamily.h"

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace schedfilter {

/// A validated --workload mix: (family name, relative weight) in
/// command-line order.  Empty = the flag was absent.
using WorkloadMix = std::vector<std::pair<std::string, double>>;

/// Every registered family name, comma-joined in registry order -- the
/// "known: ..." tail of the selection diagnostics.
inline std::string knownFamilyNames() {
  std::string Out;
  for (const WorkloadFamily *F : WorkloadRegistry::instance().families()) {
    if (!Out.empty())
      Out += ", ";
    Out += F->name();
  }
  return Out;
}

/// Parses --workload family[:weight],... (e.g. "specjvm98:3,serverloop:1").
/// Weights are optional (default 1) and must be positive finite decimals;
/// family names must be registered and appear at most once.  Returns the
/// empty mix when the flag is absent, nullopt after a printed diagnostic
/// for any invalid spelling.
inline std::optional<WorkloadMix> parseWorkloadOption(const CommandLine &CL) {
  WorkloadMix Mix;
  if (!CL.has("workload"))
    return Mix;
  const std::string Value = CL.get("workload");

  std::vector<std::string> Items;
  size_t Start = 0;
  while (true) {
    size_t Comma = Value.find(',', Start);
    Items.push_back(Value.substr(Start, Comma - Start));
    if (Comma == std::string::npos)
      break;
    Start = Comma + 1;
  }

  for (const std::string &Item : Items) {
    if (Item.empty()) {
      std::cerr << "error: --workload has an empty item (got '" << Value
                << "')\n";
      return std::nullopt;
    }
    std::string Name = Item;
    double Weight = 1.0;
    size_t Colon = Item.find(':');
    if (Colon != std::string::npos) {
      Name = Item.substr(0, Colon);
      std::string W = Item.substr(Colon + 1);
      // Strict positive decimal, same contract as CommandLine::getDouble:
      // the whole token must parse, no hex spellings, finite, > 0.
      char *End = nullptr;
      double V = std::strtod(W.c_str(), &End);
      bool Hex = W.find('x') != std::string::npos ||
                 W.find('X') != std::string::npos;
      if (W.empty() || Hex || End == W.c_str() || *End != '\0' ||
          !std::isfinite(V) || V <= 0.0) {
        std::cerr << "error: --workload weight for '" << Name
                  << "' expects a positive number (got '" << W << "')\n";
        return std::nullopt;
      }
      Weight = V;
    }
    if (!findWorkloadFamily(Name)) {
      std::cerr << "error: unknown family: got '" << Name
                << "', known: " << knownFamilyNames() << '\n';
      return std::nullopt;
    }
    for (const auto &Seen : Mix)
      if (Seen.first == Name) {
        std::cerr << "error: --workload names family '" << Name
                  << "' twice (got '" << Value << "')\n";
        return std::nullopt;
      }
    Mix.emplace_back(Name, Weight);
  }
  return Mix;
}

/// Every benchmark of every family in \p Mix, concatenated in mix order
/// then suite order -- the deterministic expansion the suite-level tools
/// (trace, train) iterate.
inline std::vector<BenchmarkSpec> workloadMixSuite(const WorkloadMix &Mix) {
  std::vector<BenchmarkSpec> Suite;
  for (const auto &Item : Mix) {
    const WorkloadFamily *F = findWorkloadFamily(Item.first);
    for (BenchmarkSpec &S : F->makeBenchmarkSuite())
      Suite.push_back(std::move(S));
  }
  return Suite;
}

/// The resolved --benchmark flag: Present says whether it was given at
/// all; Spec is non-null exactly when it named a registered benchmark.
struct BenchmarkSelection {
  bool Present = false;
  const BenchmarkSpec *Spec = nullptr;
};

/// Resolves --benchmark NAME against every registered family's suite.
/// Absent flag -> {Present = false}; unknown name -> nullopt after the
/// shared "unknown benchmark '...' (try --list)" diagnostic.
inline std::optional<BenchmarkSelection>
parseBenchmarkOption(const CommandLine &CL) {
  BenchmarkSelection Sel;
  if (!CL.has("benchmark"))
    return Sel;
  Sel.Present = true;
  std::string Name = CL.get("benchmark");
  Sel.Spec = findBenchmarkSpec(Name);
  if (!Sel.Spec) {
    std::cerr << "error: unknown benchmark '" << Name << "' (try --list)\n";
    return std::nullopt;
  }
  return Sel;
}

/// The shared --list body: one line per registered benchmark
/// (name, family, description), in registry then suite order.
inline void printWorkloadList(std::ostream &OS) {
  for (const WorkloadFamily *F : WorkloadRegistry::instance().families())
    for (const BenchmarkSpec &S : F->makeBenchmarkSuite())
      OS << S.Name << "\t" << F->name() << "\t" << S.Description << '\n';
}

/// Renders a mix back to its canonical flag spelling
/// ("specjvm98:3,serverloop:1") for report headers.  Integral weights
/// print without a decimal point.
inline std::string formatWorkloadMix(const WorkloadMix &Mix) {
  std::string Out;
  for (const auto &Item : Mix) {
    if (!Out.empty())
      Out += ",";
    Out += Item.first;
    if (Item.second != 1.0) {
      Out += ":";
      double W = Item.second;
      if (W == static_cast<double>(static_cast<uint64_t>(W))) {
        Out += std::to_string(static_cast<uint64_t>(W));
      } else {
        std::string S = std::to_string(W); // fixed six decimals
        while (!S.empty() && S.back() == '0')
          S.pop_back();
        if (!S.empty() && S.back() == '.')
          S.pop_back();
        Out += S;
      }
    }
  }
  return Out;
}

} // namespace schedfilter

#endif // SCHEDFILTER_TOOLS_WORKLOADOPTION_H
