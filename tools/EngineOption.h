//===- tools/EngineOption.h - Shared engine construction --------*- C++ -*-===//
///
/// \file
/// One place for the sf-* tools and every suite-level bench driver to
/// turn the shared command-line surface (--jobs, --corpus-dir,
/// --no-cache) into a ready-to-use ExperimentEngine with its corpus
/// cache attached.  Eighteen drivers construct an engine; a single
/// helper keeps the option handling, the cache lifetime and the
/// attachment order from drifting between them.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_TOOLS_ENGINEOPTION_H
#define SCHEDFILTER_TOOLS_ENGINEOPTION_H

#include "harness/ParallelExperiments.h"

#include "CorpusOption.h"
#include "JobsOption.h"

#include <memory>
#include <optional>

namespace schedfilter {

/// An engine plus the corpus cache it borrows; keep the handle alive for
/// as long as the engine runs.
struct EngineHandle {
  std::unique_ptr<CorpusCache> Cache; ///< null when caching is disabled
  std::unique_ptr<ExperimentEngine> Engine;

  ExperimentEngine &operator*() { return *Engine; }
  ExperimentEngine *operator->() { return Engine.get(); }
};

/// Resolves --jobs/--corpus-dir/--no-cache and builds the engine.
/// nullopt = invalid flags (an error was printed; exit non-zero).
inline std::optional<EngineHandle> parseEngineOptions(const CommandLine &CL) {
  std::optional<unsigned> Jobs = parseJobsOption(CL);
  if (!Jobs)
    return std::nullopt;
  std::optional<std::unique_ptr<CorpusCache>> Cache = parseCorpusOption(CL);
  if (!Cache)
    return std::nullopt;
  EngineHandle H;
  H.Cache = std::move(*Cache);
  H.Engine = std::make_unique<ExperimentEngine>(*Jobs);
  H.Engine->setCorpusCache(H.Cache.get());
  return H;
}

} // namespace schedfilter

#endif // SCHEDFILTER_TOOLS_ENGINEOPTION_H
