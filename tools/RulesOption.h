//===- tools/RulesOption.h - Shared --rules file loading --------*- C++ -*-===//
//
// The one implementation of "open a rules file, parse it strictly, and
// report failures in the io/ file:line discipline" that sf-apply,
// sf-serve, and sf-lint all share.  Two entry points:
//
//   readRulesFileChecked  -- open + parse; diagnostics to stderr as
//                            "error: PATH[:LINE]: message".  For tools
//                            that run their own analysis afterwards
//                            (sf-lint lints the parsed set itself).
//   loadRulesFileWithLint -- the above plus the load-time lint: analyzer
//                            findings print to stderr (the load still
//                            succeeds -- predict() is well-defined even
//                            for a sloppy rule set; sf-lint --fix
//                            normalizes).  For tools about to *use* the
//                            filter (sf-apply, sf-serve).
//
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_TOOLS_RULESOPTION_H
#define SCHEDFILTER_TOOLS_RULESOPTION_H

#include "analysis/RuleAnalysis.h"
#include "ml/Serialization.h"

#include <fstream>
#include <iostream>
#include <optional>
#include <string>

namespace schedfilter {

/// Opens and strictly parses \p Path.  On failure prints the diagnostic
/// ("error: PATH:LINE: message"; no line for open failures) to stderr and
/// returns nullopt.
inline std::optional<RuleSetFile>
readRulesFileChecked(const std::string &Path) {
  std::ifstream IS(Path);
  if (!IS) {
    std::cerr << "error: cannot open rules '" << Path << "'\n";
    return std::nullopt;
  }
  ParseResult<RuleSetFile> Parsed = readRuleSetFile(IS);
  if (!Parsed) {
    const ParseError &E = Parsed.error();
    std::cerr << "error: " << Path
              << (E.Line ? ":" + std::to_string(E.Line) : "") << ": "
              << E.Message << '\n';
    return std::nullopt;
  }
  return std::move(*Parsed);
}

/// readRulesFileChecked plus the load-time lint: a dead or shadowed rule
/// burns serve-path work for nothing, so say so (stderr) before the tool
/// proceeds with the filter anyway.
inline std::optional<RuleSetFile>
loadRulesFileWithLint(const std::string &Path) {
  std::optional<RuleSetFile> File = readRulesFileChecked(Path);
  if (File) {
    RuleAnalysis Lint = analyzeRuleSet(File->Rules);
    if (!Lint.clean())
      printFindings(Lint, std::cerr, Path, &File->RuleLines);
  }
  return File;
}

} // namespace schedfilter

#endif // SCHEDFILTER_TOOLS_RULESOPTION_H
