//===- tools/VersionOption.h - Shared --version option handling -*- C++ -*-===//
///
/// \file
/// One place for every sf-* tool to answer --version, so a support ticket
/// can name the exact artifact versions in play: the two corpus-cache key
/// versions (GeneratorVersion for program synthesis, TracePipelineVersion
/// for everything downstream of it) and the on-disk format magics (SFTB1
/// traces, SFCC1 corpus entries, SFFR1 filter-registry entries).  Those
/// values fully identify
/// whether two machines can exchange artifacts and whether a warm cache
/// is still valid -- which is exactly what a "my trace won't load" or
/// "my numbers differ" report needs to quote.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_TOOLS_VERSIONOPTION_H
#define SCHEDFILTER_TOOLS_VERSIONOPTION_H

#include "harness/Experiments.h"
#include "io/CorpusCache.h"
#include "io/FilterRegistry.h"
#include "io/TraceStore.h"
#include "support/CommandLine.h"
#include "workloads/ProgramGenerator.h"
#include "workloads/WorkloadFamily.h"

#include <iostream>

namespace schedfilter {

/// Prints \p Tool's version report when --version was given; the caller
/// exits 0 on true.  Every sf-* tool handles --version before any other
/// flag validation, so the report is reachable even with otherwise
/// missing/invalid arguments.
inline bool handleVersionOption(const CommandLine &CL, const char *Tool) {
  if (!CL.has("version"))
    return false;
  std::cout << Tool << " (schedfilter)\n"
            << "  generator version:      " << GeneratorVersion
            << "   (workloads/ProgramGenerator.h)\n"
            << "  trace-pipeline version: " << TracePipelineVersion
            << "   (harness/Experiments.h)\n"
            << "  trace binary format:    " << TraceBinaryMagic
            << " (io/TraceStore.h)\n"
            << "  corpus entry format:    " << CorpusEntryMagic
            << " (io/CorpusCache.h)\n"
            << "  filter registry format: " << FilterRegistryMagic
            << " (io/FilterRegistry.h)\n"
            << "  family versions:       ";
  // Each family versions its own program synthesis (its half of the
  // corpus-cache key); a warm-cache mismatch report needs all of them.
  for (const WorkloadFamily *F : WorkloadRegistry::instance().families())
    std::cout << ' ' << F->name() << '=' << F->version();
  std::cout << "   (src/workloads/)\n";
  return true;
}

} // namespace schedfilter

#endif // SCHEDFILTER_TOOLS_VERSIONOPTION_H
