//===- tools/ModelOption.h - Shared --model option handling -----*- C++ -*-===//
///
/// \file
/// One place for the sf-* tools to resolve the --model flag, so the lookup
/// and the error message cannot drift between them.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_TOOLS_MODELOPTION_H
#define SCHEDFILTER_TOOLS_MODELOPTION_H

#include "support/CommandLine.h"
#include "target/MachineModel.h"

#include <iostream>
#include <optional>

namespace schedfilter {

/// Resolves --model (default ppc7410).  On an unknown name, prints an
/// error listing the accepted names and returns nullopt; the caller
/// should exit non-zero.
inline std::optional<MachineModel> parseModelOption(const CommandLine &CL) {
  std::string ModelName = CL.get("model", "ppc7410");
  std::optional<MachineModel> Model = MachineModel::byName(ModelName);
  if (!Model)
    std::cerr << "error: unknown model '" << ModelName << "' ("
              << MachineModel::knownNamesList() << ")\n";
  return Model;
}

} // namespace schedfilter

#endif // SCHEDFILTER_TOOLS_MODELOPTION_H
