//===- tools/NoiseOption.h - Shared --noise option handling -----*- C++ -*-===//
///
/// \file
/// One place for the sf-* tools and bench drivers to resolve the shared
/// perturbation surface -- --noise "src:param[,...]" and --noise-seed --
/// into a ready NoiseStack, so the spec grammar and the error messages
/// cannot drift between them.  An absent --noise is the empty (identity)
/// stack; a malformed spec prints the offending item and the accepted
/// sources and returns nullopt (exit non-zero -- a mistyped perturbation
/// must never silently run clean).
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_TOOLS_NOISEOPTION_H
#define SCHEDFILTER_TOOLS_NOISEOPTION_H

#include "noise/NoiseStack.h"
#include "support/CommandLine.h"

#include "JobsOption.h"

#include <iostream>
#include <optional>

namespace schedfilter {

/// The default --noise-seed.  Fixed (not wall-clock, not per-run): the
/// same perturbed experiment must replay bit-identically across
/// invocations, machines and job counts.
constexpr uint64_t DefaultNoiseSeed = 20040609; // the paper's conference date

/// Resolves --noise (default: empty stack) and --noise-seed (default
/// DefaultNoiseSeed).  nullopt = invalid flags (an error was printed;
/// exit non-zero).
inline std::optional<NoiseStack> parseNoiseOption(const CommandLine &CL) {
  std::optional<uint64_t> Seed =
      parseCountOption(CL, "noise-seed", DefaultNoiseSeed, 0, UINT64_MAX);
  if (!Seed)
    return std::nullopt;
  ParseResult<NoiseStack> Stack = parseNoiseStack(CL.get("noise"), *Seed);
  if (!Stack) {
    std::cerr << "error: --noise item " << Stack.error().Line << ": "
              << Stack.error().Message << '\n';
    return std::nullopt;
  }
  return std::move(*Stack);
}

} // namespace schedfilter

#endif // SCHEDFILTER_TOOLS_NOISEOPTION_H
