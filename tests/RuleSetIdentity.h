//===- tests/RuleSetIdentity.h - Bit-exact rule-set comparison ---*- C++ -*-===//
//
// The one definition of "these two RuleSets are byte-identical", shared
// by the engine-equivalence pin (tests/ripper_engine_test.cpp) and the
// training-scale bench's in-run identity gate (bench_train_scale.cpp) so
// the two checks cannot drift apart.  Thresholds are compared by bit
// pattern -- RuleSet::toString()'s rounded rendering could mask low-order
// FP divergence.
//
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_TESTS_RULESETIDENTITY_H
#define SCHEDFILTER_TESTS_RULESETIDENTITY_H

#include "ml/Rule.h"

#include <cstdint>
#include <cstring>

namespace schedfilter {

/// Bit-pattern equality: catches even a -0.0 vs +0.0 divergence that
/// operator== would wave through.
inline bool sameBits(double A, double B) {
  uint64_t BA, BB;
  std::memcpy(&BA, &A, sizeof(BA));
  std::memcpy(&BB, &B, sizeof(BB));
  return BA == BB;
}

/// Bit-exact rule-set identity: default class, rule order, per-rule
/// conditions (feature, operator, threshold bit pattern), conclusions
/// and annotated coverage counts.
inline bool identicalRuleSets(const RuleSet &A, const RuleSet &B) {
  if (A.getDefaultClass() != B.getDefaultClass() || A.size() != B.size())
    return false;
  for (size_t R = 0; R != A.size(); ++R) {
    const Rule &RA = A.rules()[R], &RB = B.rules()[R];
    if (RA.Conclusion != RB.Conclusion || RA.NumCorrect != RB.NumCorrect ||
        RA.NumIncorrect != RB.NumIncorrect || RA.size() != RB.size())
      return false;
    for (size_t C = 0; C != RA.size(); ++C) {
      if (RA.Conditions[C].Feature != RB.Conditions[C].Feature ||
          RA.Conditions[C].IsLessEqual != RB.Conditions[C].IsLessEqual ||
          !sameBits(RA.Conditions[C].Threshold, RB.Conditions[C].Threshold))
        return false;
    }
  }
  return true;
}

} // namespace schedfilter

#endif // SCHEDFILTER_TESTS_RULESETIDENTITY_H
