//===- tests/rule_test.cpp - ml/Rule unit tests ------------------------------===//

#include "ml/Rule.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace schedfilter;

namespace {

FeatureVector fv(double BBLen, double Loads = 0.0, double Calls = 0.0) {
  FeatureVector X{};
  X[FeatBBLen] = BBLen;
  X[FeatLoad] = Loads;
  X[FeatCall] = Calls;
  return X;
}

Rule lsRule(std::vector<Condition> Conds) {
  Rule R;
  R.Conclusion = Label::LS;
  R.Conditions = std::move(Conds);
  return R;
}

} // namespace

TEST(Condition, LessEqualAndGreaterEqual) {
  Condition LE{FeatBBLen, /*IsLessEqual=*/true, 7.0};
  EXPECT_TRUE(LE.matches(fv(7)));
  EXPECT_TRUE(LE.matches(fv(3)));
  EXPECT_FALSE(LE.matches(fv(8)));

  Condition GE{FeatBBLen, /*IsLessEqual=*/false, 7.0};
  EXPECT_TRUE(GE.matches(fv(7)));
  EXPECT_TRUE(GE.matches(fv(12)));
  EXPECT_FALSE(GE.matches(fv(6)));
}

TEST(Condition, ToStringFormats) {
  Condition C{FeatBBLen, false, 7.0};
  EXPECT_EQ(C.toString(), "bbLen >= 7");
  Condition D{FeatCall, true, 0.0857};
  EXPECT_EQ(D.toString(), "calls <= 0.0857");
}

TEST(Rule, ConjunctionSemantics) {
  Rule R = lsRule({{FeatBBLen, false, 7.0}, {FeatLoad, false, 0.3}});
  EXPECT_TRUE(R.matches(fv(8, 0.4)));
  EXPECT_FALSE(R.matches(fv(8, 0.2)));
  EXPECT_FALSE(R.matches(fv(5, 0.4)));
}

TEST(Rule, EmptyAntecedentMatchesEverything) {
  Rule R = lsRule({});
  EXPECT_TRUE(R.matches(fv(0)));
  EXPECT_TRUE(R.matches(fv(100, 1.0, 1.0)));
}

TEST(Rule, ToStringShowsCountsAndClass) {
  Rule R = lsRule({{FeatBBLen, false, 7.0}});
  R.NumCorrect = 924;
  R.NumIncorrect = 12;
  std::string S = R.toString();
  EXPECT_NE(S.find("924"), std::string::npos);
  EXPECT_NE(S.find("12"), std::string::npos);
  EXPECT_NE(S.find("list :-"), std::string::npos);
  EXPECT_NE(S.find("bbLen >= 7"), std::string::npos);
}

TEST(RuleSet, FirstMatchWins) {
  RuleSet RS(Label::NS);
  RS.addRule(lsRule({{FeatBBLen, false, 10.0}}));
  RS.addRule(lsRule({{FeatLoad, false, 0.5}}));
  EXPECT_EQ(RS.predict(fv(12, 0.0)), Label::LS); // first rule
  EXPECT_EQ(RS.predict(fv(4, 0.6)), Label::LS);  // second rule
  EXPECT_EQ(RS.predict(fv(4, 0.1)), Label::NS);  // default
}

TEST(RuleSet, EmptyPredictsDefault) {
  EXPECT_EQ(RuleSet(Label::NS).predict(fv(50)), Label::NS);
  EXPECT_EQ(RuleSet(Label::LS).predict(fv(50)), Label::LS);
}

TEST(RuleSet, PredictionWorkCountsEvaluatedConditions) {
  RuleSet RS(Label::NS);
  RS.addRule(lsRule({{FeatBBLen, false, 10.0}, {FeatLoad, false, 0.5}}));
  // First condition fails: 1 evaluation + 1 default step.
  EXPECT_EQ(RS.predictionWork(fv(4)), 2u);
  // Both pass: 2 evaluations, no default step.
  EXPECT_EQ(RS.predictionWork(fv(12, 0.6)), 2u);
  // First passes, second fails: 2 + default.
  EXPECT_EQ(RS.predictionWork(fv(12, 0.1)), 3u);
}

TEST(RuleSet, TotalConditions) {
  RuleSet RS(Label::NS);
  RS.addRule(lsRule({{FeatBBLen, false, 7.0}, {FeatLoad, false, 0.3}}));
  RS.addRule(lsRule({{FeatCall, true, 0.1}}));
  EXPECT_EQ(RS.totalConditions(), 3u);
}

TEST(RuleSet, AnnotateCoverageFirstClaim) {
  RuleSet RS(Label::NS);
  RS.addRule(lsRule({{FeatBBLen, false, 10.0}}));
  RS.addRule(lsRule({{FeatBBLen, false, 5.0}}));

  Dataset D("d");
  D.add({fv(12), Label::LS}); // claimed by rule 0, correct
  D.add({fv(11), Label::NS}); // claimed by rule 0, incorrect
  D.add({fv(7), Label::LS});  // claimed by rule 1, correct
  D.add({fv(3), Label::NS});  // default, correct
  D.add({fv(2), Label::LS});  // default, incorrect

  size_t DC = 0, DI = 0;
  RS.annotateCoverage(D, DC, DI);
  EXPECT_EQ(RS.rules()[0].NumCorrect, 1u);
  EXPECT_EQ(RS.rules()[0].NumIncorrect, 1u);
  EXPECT_EQ(RS.rules()[1].NumCorrect, 1u);
  EXPECT_EQ(RS.rules()[1].NumIncorrect, 0u);
  EXPECT_EQ(DC, 1u);
  EXPECT_EQ(DI, 1u);
}

TEST(RuleSet, MinMatchableBBLenGate) {
  RuleSet RS(Label::NS);
  RS.addRule(lsRule({{FeatBBLen, false, 7.0}, {FeatLoad, false, 0.3}}));
  RS.addRule(lsRule({{FeatBBLen, false, 5.0}}));
  EXPECT_DOUBLE_EQ(RS.minMatchableBBLen(), 5.0);
}

TEST(RuleSet, GateZeroWhenARuleLacksBBLenBound) {
  RuleSet RS(Label::NS);
  RS.addRule(lsRule({{FeatBBLen, false, 7.0}}));
  RS.addRule(lsRule({{FeatLoad, false, 0.5}})); // no bbLen bound
  EXPECT_DOUBLE_EQ(RS.minMatchableBBLen(), 0.0);
}

TEST(RuleSet, GateIgnoresUpperBounds) {
  RuleSet RS(Label::NS);
  RS.addRule(lsRule({{FeatBBLen, true, 7.0}})); // bbLen <= 7: no lower bound
  EXPECT_DOUBLE_EQ(RS.minMatchableBBLen(), 0.0);
}

TEST(RuleSet, EmptyRuleSetGateIsInfinite) {
  EXPECT_GT(RuleSet(Label::NS).minMatchableBBLen(), 1e300);
}

TEST(RuleSet, ToStringListsRulesAndDefault) {
  RuleSet RS(Label::NS);
  RS.addRule(lsRule({{FeatBBLen, false, 7.0}}));
  std::string S = RS.toString();
  EXPECT_NE(S.find("list :-"), std::string::npos);
  EXPECT_NE(S.find("(default) orig"), std::string::npos);
}

TEST(Dataset, CsvRoundTrip) {
  Dataset D("rt");
  D.add({fv(7, 0.25), Label::LS});
  D.add({fv(3, 0.0), Label::NS});
  std::stringstream SS;
  D.writeCsv(SS);
  Dataset Back("rt2");
  EXPECT_TRUE(Back.readCsv(SS));
  ASSERT_EQ(Back.size(), 2u);
  EXPECT_EQ(Back[0].Y, Label::LS);
  EXPECT_EQ(Back[1].Y, Label::NS);
  EXPECT_DOUBLE_EQ(Back[0].X[FeatBBLen], 7.0);
  EXPECT_DOUBLE_EQ(Back[0].X[FeatLoad], 0.25);
}

TEST(Dataset, CsvRejectsMalformed) {
  Dataset D("bad");
  std::stringstream SS("header\n1,2,3\n");
  EXPECT_FALSE(D.readCsv(SS));
  EXPECT_EQ(D.size(), 0u);
}

TEST(Dataset, AppendAndCounts) {
  Dataset A("a"), B("b");
  A.add({fv(1), Label::LS});
  B.add({fv(2), Label::NS});
  B.add({fv(3), Label::NS});
  A.append(B);
  EXPECT_EQ(A.size(), 3u);
  EXPECT_EQ(A.countLabel(Label::LS), 1u);
  EXPECT_EQ(A.countLabel(Label::NS), 2u);
}
