//===- tests/pipeline_test.cpp - filter/Pipeline unit tests -------------------===//

#include "filter/Pipeline.h"

#include "TestHelpers.h"
#include "workloads/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace schedfilter;
using namespace schedfilter::test;

namespace {

Program smallProgram() {
  const BenchmarkSpec *Spec = findBenchmarkSpec("raytrace");
  BenchmarkSpec S = *Spec;
  S.NumMethods = 8;
  return ProgramGenerator(S).generate();
}

} // namespace

TEST(Pipeline, PolicyNames) {
  EXPECT_STREQ(getPolicyName(SchedulingPolicy::Never), "NS");
  EXPECT_STREQ(getPolicyName(SchedulingPolicy::Always), "LS");
  EXPECT_STREQ(getPolicyName(SchedulingPolicy::Filtered), "L/N");
}

TEST(Pipeline, NeverSchedulesNothing) {
  MachineModel M = MachineModel::ppc7410();
  Program P = smallProgram();
  CompileReport R = compileProgram(P, M, SchedulingPolicy::Never);
  EXPECT_EQ(R.NumBlocks, P.totalBlocks());
  EXPECT_EQ(R.NumScheduled, 0u);
  EXPECT_EQ(R.SchedulingWork, 0u);
  EXPECT_GT(R.SimulatedTime, 0.0);
}

TEST(Pipeline, AlwaysSchedulesEverything) {
  MachineModel M = MachineModel::ppc7410();
  Program P = smallProgram();
  CompileReport R = compileProgram(P, M, SchedulingPolicy::Always);
  EXPECT_EQ(R.NumScheduled, P.totalBlocks());
  EXPECT_GT(R.SchedulingWork, 0u);
}

TEST(Pipeline, AlwaysAtLeastAsFastAsNeverOnSimTime) {
  MachineModel M = MachineModel::ppc7410();
  Program P = smallProgram();
  CompileReport NS = compileProgram(P, M, SchedulingPolicy::Never);
  CompileReport LS = compileProgram(P, M, SchedulingPolicy::Always);
  // CPS list scheduling may occasionally lose a cycle on a block, but
  // program-wide it must win on this ILP-bearing profile.
  EXPECT_LT(LS.SimulatedTime, NS.SimulatedTime);
}

TEST(Pipeline, FilteredCountsMatchFilterDecisions) {
  MachineModel M = MachineModel::ppc7410();
  Program P = smallProgram();

  RuleSet RS(Label::NS);
  Rule R;
  R.Conclusion = Label::LS;
  R.Conditions.push_back({FeatBBLen, false, 7.0});
  RS.addRule(std::move(R));

  ScheduleFilter F(RS);
  CompileReport Rep =
      compileProgram(P, M, SchedulingPolicy::Filtered, &F);
  EXPECT_EQ(Rep.NumScheduled, F.numScheduleDecisions());
  EXPECT_EQ(Rep.NumBlocks,
            F.numScheduleDecisions() + F.numSkipDecisions());
  EXPECT_EQ(Rep.FilterWork, F.workUnits());
  EXPECT_GE(Rep.SchedulingWork, Rep.FilterWork);
}

TEST(Pipeline, FilteredSimBetweenNeverAndAlwaysTypically) {
  MachineModel M = MachineModel::ppc7410();
  Program P = smallProgram();

  RuleSet RS(Label::NS);
  Rule R;
  R.Conclusion = Label::LS;
  R.Conditions.push_back({FeatBBLen, false, 6.0});
  RS.addRule(std::move(R));
  ScheduleFilter F(RS);

  CompileReport NS = compileProgram(P, M, SchedulingPolicy::Never);
  CompileReport LS = compileProgram(P, M, SchedulingPolicy::Always);
  CompileReport LN = compileProgram(P, M, SchedulingPolicy::Filtered, &F);
  EXPECT_LE(LN.SimulatedTime, NS.SimulatedTime);
  EXPECT_GE(LN.SimulatedTime, LS.SimulatedTime * 0.999);
}

TEST(Pipeline, FilteredWithAlwaysFilterMatchesAlways) {
  MachineModel M = MachineModel::ppc7410();
  Program P = smallProgram();

  // A filter that says LS for everything reproduces the Always policy's
  // simulated time (effort additionally pays the filter).
  RuleSet RS(Label::NS);
  Rule R;
  R.Conclusion = Label::LS;
  RS.addRule(std::move(R)); // empty antecedent
  ScheduleFilter F(RS);

  CompileReport LS = compileProgram(P, M, SchedulingPolicy::Always);
  CompileReport LN = compileProgram(P, M, SchedulingPolicy::Filtered, &F);
  EXPECT_EQ(LN.NumScheduled, LS.NumScheduled);
  EXPECT_DOUBLE_EQ(LN.SimulatedTime, LS.SimulatedTime);
  EXPECT_GT(LN.SchedulingWork, LS.SchedulingWork); // filter overhead
}

TEST(Pipeline, FilteredWithNeverFilterMatchesNever) {
  MachineModel M = MachineModel::ppc7410();
  Program P = smallProgram();
  ScheduleFilter F((RuleSet(Label::NS)));
  CompileReport NS = compileProgram(P, M, SchedulingPolicy::Never);
  CompileReport LN = compileProgram(P, M, SchedulingPolicy::Filtered, &F);
  EXPECT_EQ(LN.NumScheduled, 0u);
  EXPECT_DOUBLE_EQ(LN.SimulatedTime, NS.SimulatedTime);
}

TEST(Pipeline, SimulatedTimeWeightsByExecCount) {
  MachineModel M = MachineModel::ppc7410();
  Program P("weights");
  Method Meth("m");
  Meth.addBlock(makeChainBlock(/*ExecCount=*/10));
  P.addMethod(std::move(Meth));
  CompileReport R1 = compileProgram(P, M, SchedulingPolicy::Never);

  Program P2("weights2");
  Method Meth2("m");
  Meth2.addBlock(makeChainBlock(/*ExecCount=*/20));
  P2.addMethod(std::move(Meth2));
  CompileReport R2 = compileProgram(P2, M, SchedulingPolicy::Never);

  EXPECT_DOUBLE_EQ(R2.SimulatedTime, 2.0 * R1.SimulatedTime);
}

TEST(Pipeline, DeterministicWorkAccounting) {
  MachineModel M = MachineModel::ppc7410();
  Program P = smallProgram();
  CompileReport A = compileProgram(P, M, SchedulingPolicy::Always);
  CompileReport B = compileProgram(P, M, SchedulingPolicy::Always);
  EXPECT_EQ(A.SchedulingWork, B.SchedulingWork);
  EXPECT_DOUBLE_EQ(A.SimulatedTime, B.SimulatedTime);
}
