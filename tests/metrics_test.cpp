//===- tests/metrics_test.cpp - ml/Metrics unit tests ------------------------===//

#include "ml/Metrics.h"

#include <gtest/gtest.h>

using namespace schedfilter;

namespace {

FeatureVector fv(double BBLen) {
  FeatureVector X{};
  X[FeatBBLen] = BBLen;
  return X;
}

/// Filter: LS iff bbLen >= 10.
RuleSet thresholdFilter() {
  RuleSet RS(Label::NS);
  Rule R;
  R.Conclusion = Label::LS;
  R.Conditions.push_back({FeatBBLen, false, 10.0});
  RS.addRule(std::move(R));
  return RS;
}

} // namespace

TEST(Metrics, EmptyDatasetZeroError) {
  ConfusionMatrix M = evaluate(thresholdFilter(), Dataset("e"));
  EXPECT_EQ(M.total(), 0u);
  EXPECT_DOUBLE_EQ(M.errorRate(), 0.0);
}

TEST(Metrics, ConfusionCellsCorrect) {
  Dataset D("d");
  D.add({fv(12), Label::LS}); // TP
  D.add({fv(15), Label::NS}); // FP
  D.add({fv(3), Label::NS});  // TN
  D.add({fv(4), Label::LS});  // FN
  ConfusionMatrix M = evaluate(thresholdFilter(), D);
  EXPECT_EQ(M.TruePos, 1u);
  EXPECT_EQ(M.FalsePos, 1u);
  EXPECT_EQ(M.TrueNeg, 1u);
  EXPECT_EQ(M.FalseNeg, 1u);
  EXPECT_DOUBLE_EQ(M.errorRate(), 0.5);
  EXPECT_EQ(M.errors(), 2u);
}

TEST(Metrics, PerfectClassifier) {
  Dataset D("d");
  D.add({fv(12), Label::LS});
  D.add({fv(3), Label::NS});
  ConfusionMatrix M = evaluate(thresholdFilter(), D);
  EXPECT_DOUBLE_EQ(M.errorRate(), 0.0);
  EXPECT_DOUBLE_EQ(M.precision(), 1.0);
  EXPECT_DOUBLE_EQ(M.recall(), 1.0);
}

TEST(Metrics, PrecisionRecallAsymmetry) {
  Dataset D("d");
  D.add({fv(12), Label::LS}); // TP
  D.add({fv(11), Label::NS}); // FP
  D.add({fv(12), Label::LS}); // TP
  ConfusionMatrix M = evaluate(thresholdFilter(), D);
  EXPECT_NEAR(M.precision(), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(M.recall(), 1.0);
}

TEST(Metrics, UndefinedPrecisionRecallAreZero) {
  // Never-schedule filter: no positive predictions.
  RuleSet Never(Label::NS);
  Dataset D("d");
  D.add({fv(12), Label::NS});
  ConfusionMatrix M = evaluate(Never, D);
  EXPECT_DOUBLE_EQ(M.precision(), 0.0);
  EXPECT_DOUBLE_EQ(M.recall(), 0.0);
}

TEST(Metrics, ErrorRatePercentScales) {
  Dataset D("d");
  D.add({fv(12), Label::LS});
  D.add({fv(11), Label::NS});
  D.add({fv(3), Label::NS});
  D.add({fv(2), Label::NS});
  EXPECT_DOUBLE_EQ(errorRatePercent(thresholdFilter(), D), 25.0);
}
