//===- tests/baselines_test.cpp - ml/Baselines unit tests --------------------===//

#include "ml/Baselines.h"

#include "ml/Metrics.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace schedfilter;

namespace {

FeatureVector fv(double BBLen, double Floats = 0.0) {
  FeatureVector X{};
  X[FeatBBLen] = BBLen;
  X[FeatFloat] = Floats;
  return X;
}

} // namespace

TEST(Baselines, AlwaysScheduleSaysLSForEverything) {
  RuleSet RS = makeAlwaysSchedule();
  EXPECT_EQ(RS.predict(fv(1)), Label::LS);
  EXPECT_EQ(RS.predict(fv(100, 1.0)), Label::LS);
}

TEST(Baselines, NeverScheduleSaysNSForEverything) {
  RuleSet RS = makeNeverSchedule();
  EXPECT_EQ(RS.predict(fv(1)), Label::NS);
  EXPECT_EQ(RS.predict(fv(100, 1.0)), Label::NS);
  EXPECT_EQ(RS.size(), 0u);
}

TEST(Baselines, SizeStumpLearnsThreshold) {
  Dataset D("stump");
  for (int I = 1; I <= 50; ++I)
    D.add({fv(I), I >= 9 ? Label::LS : Label::NS});
  RuleSet RS = learnSizeStump(D);
  EXPECT_EQ(evaluate(RS, D).errors(), 0u);
  EXPECT_EQ(RS.predict(fv(20)), Label::LS);
  EXPECT_EQ(RS.predict(fv(5)), Label::NS);
}

TEST(Baselines, SizeStumpInvertedPolarity) {
  // Small blocks positive: the stump must handle "<=" splits too.
  Dataset D("inv");
  for (int I = 1; I <= 40; ++I)
    D.add({fv(I), I <= 6 ? Label::LS : Label::NS});
  RuleSet RS = learnSizeStump(D);
  EXPECT_EQ(evaluate(RS, D).errors(), 0u);
}

TEST(Baselines, SizeStumpFallsBackToMajority) {
  // bbLen carries no signal: stump degrades to the majority class.
  Dataset D("nosignal");
  Rng R(5);
  for (int I = 0; I != 200; ++I)
    D.add({fv(R.range(1, 10)), R.chance(0.2) ? Label::LS : Label::NS});
  RuleSet RS = learnSizeStump(D);
  size_t Minority = std::min(D.countLabel(Label::LS),
                             D.countLabel(Label::NS));
  EXPECT_LE(evaluate(RS, D).errors(), Minority);
}

TEST(Baselines, OneRPicksTheInformativeFeature) {
  // Signal lives in the float fraction, not bbLen.
  Dataset D("onerfeat");
  Rng R(9);
  for (int I = 0; I != 400; ++I) {
    double Floats = R.uniform();
    D.add({fv(R.range(1, 20), Floats),
           Floats >= 0.5 ? Label::LS : Label::NS});
  }
  RuleSet RS = learnOneR(D);
  EXPECT_LE(errorRatePercent(RS, D), 1.0);
  ASSERT_EQ(RS.size(), 1u);
  ASSERT_EQ(RS.rules()[0].size(), 1u);
  EXPECT_EQ(RS.rules()[0].Conditions[0].Feature,
            static_cast<unsigned>(FeatFloat));
}

TEST(Baselines, OneRAtLeastAsGoodAsSizeStump) {
  Dataset D("both");
  Rng R(13);
  for (int I = 0; I != 400; ++I) {
    double BBLen = R.range(1, 20);
    D.add({fv(BBLen, R.uniform()), BBLen >= 12 ? Label::LS : Label::NS});
  }
  EXPECT_LE(evaluate(learnOneR(D), D).errors(),
            evaluate(learnSizeStump(D), D).errors());
}

TEST(Baselines, EmptyDataSafe) {
  EXPECT_EQ(learnSizeStump(Dataset("e")).predict(fv(10)), Label::NS);
  EXPECT_EQ(learnOneR(Dataset("e")).predict(fv(10)), Label::NS);
}
