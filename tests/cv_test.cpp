//===- tests/cv_test.cpp - ml/CrossValidation unit tests ---------------------===//

#include "ml/CrossValidation.h"

#include <gtest/gtest.h>

using namespace schedfilter;

namespace {

FeatureVector fv(double BBLen) {
  FeatureVector X{};
  X[FeatBBLen] = BBLen;
  return X;
}

Dataset named(const std::string &Name, size_t N) {
  Dataset D(Name);
  for (size_t I = 0; I != N; ++I)
    D.add({fv(static_cast<double>(I)), Label::NS});
  return D;
}

} // namespace

TEST(CrossValidation, OneFoldPerBenchmark) {
  std::vector<Dataset> Suite = {named("a", 3), named("b", 4), named("c", 5)};
  std::vector<LoocvFold> Folds =
      leaveOneOut(Suite, [](const Dataset &) { return RuleSet(Label::NS); });
  ASSERT_EQ(Folds.size(), 3u);
  EXPECT_EQ(Folds[0].HeldOut, "a");
  EXPECT_EQ(Folds[1].HeldOut, "b");
  EXPECT_EQ(Folds[2].HeldOut, "c");
}

TEST(CrossValidation, TrainsOnExactlyTheOthers) {
  std::vector<Dataset> Suite = {named("a", 3), named("b", 4), named("c", 5)};
  std::vector<size_t> TrainSizes;
  leaveOneOut(Suite, [&](const Dataset &Train) {
    TrainSizes.push_back(Train.size());
    return RuleSet(Label::NS);
  });
  // Fold i trains on total minus the held-out benchmark.
  EXPECT_EQ(TrainSizes, (std::vector<size_t>{9, 8, 7}));
}

TEST(CrossValidation, NeverTrainsOnHeldOutInstances) {
  // Give each benchmark a unique bbLen range; assert the training set
  // seen for fold i contains no value from i's range.
  std::vector<Dataset> Suite;
  for (int B = 0; B != 3; ++B) {
    Dataset D("bench" + std::to_string(B));
    for (int I = 0; I != 10; ++I)
      D.add({fv(B * 100 + I), Label::NS});
    Suite.push_back(std::move(D));
  }
  size_t Fold = 0;
  leaveOneOut(Suite, [&](const Dataset &Train) {
    for (const Instance &I : Train) {
      double Lo = static_cast<double>(Fold) * 100.0;
      EXPECT_TRUE(I.X[FeatBBLen] < Lo || I.X[FeatBBLen] >= Lo + 100.0)
          << "fold " << Fold << " trained on its own benchmark";
    }
    ++Fold;
    return RuleSet(Label::NS);
  });
  EXPECT_EQ(Fold, 3u);
}

TEST(CrossValidation, SelfTrainUsesOwnDataOnly) {
  std::vector<Dataset> Suite = {named("a", 3), named("b", 7)};
  std::vector<size_t> TrainSizes;
  selfTrain(Suite, [&](const Dataset &Train) {
    TrainSizes.push_back(Train.size());
    return RuleSet(Label::NS);
  });
  EXPECT_EQ(TrainSizes, (std::vector<size_t>{3, 7}));
}

TEST(CrossValidation, SingleBenchmarkTrainsOnNothing) {
  std::vector<Dataset> Suite = {named("only", 5)};
  std::vector<LoocvFold> Folds =
      leaveOneOut(Suite, [](const Dataset &Train) {
        EXPECT_EQ(Train.size(), 0u);
        return RuleSet(Label::NS);
      });
  EXPECT_EQ(Folds.size(), 1u);
}

TEST(CrossValidation, EmptySuite) {
  EXPECT_TRUE(
      leaveOneOut({}, [](const Dataset &) { return RuleSet(Label::NS); })
          .empty());
}
