//===- tests/harness_test.cpp - harness/ unit tests ---------------------------===//

#include "harness/Experiments.h"
#include "harness/TableRender.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace schedfilter;
using namespace schedfilter::test;

namespace {

/// Shared tiny suite so the harness tests stay fast: generated once.
const std::vector<BenchmarkRun> &tinySuite() {
  static const std::vector<BenchmarkRun> Suite = [] {
    MachineModel Model = MachineModel::ppc7410();
    return generateSuiteData(shrinkSuite(specjvm98Suite(), 6), Model);
  }();
  return Suite;
}

} // namespace

TEST(Experiments, SuiteDataShape) {
  const std::vector<BenchmarkRun> &Suite = tinySuite();
  ASSERT_EQ(Suite.size(), 7u);
  for (const BenchmarkRun &Run : Suite) {
    EXPECT_EQ(Run.Records.size(), Run.Prog.totalBlocks());
    EXPECT_EQ(Run.NeverReport.NumBlocks, Run.Prog.totalBlocks());
    EXPECT_EQ(Run.AlwaysReport.NumScheduled, Run.Prog.totalBlocks());
    EXPECT_EQ(Run.NeverReport.NumScheduled, 0u);
  }
}

TEST(Experiments, RecordsMatchPolicyReports) {
  // Sum of exec-weighted unscheduled costs == the NS pipeline's SIM time;
  // same for the scheduled costs vs the LS pipeline.
  for (const BenchmarkRun &Run : tinySuite()) {
    double NoSched = 0.0, Sched = 0.0;
    for (const BlockRecord &R : Run.Records) {
      NoSched += static_cast<double>(R.ExecCount) *
                 static_cast<double>(R.CostNoSched);
      Sched += static_cast<double>(R.ExecCount) *
               static_cast<double>(R.CostSched);
    }
    EXPECT_DOUBLE_EQ(NoSched, Run.NeverReport.SimulatedTime);
    EXPECT_DOUBLE_EQ(Sched, Run.AlwaysReport.SimulatedTime);
  }
}

TEST(Experiments, LabelSuiteNamesAndNsInvariance) {
  const std::vector<BenchmarkRun> &Suite = tinySuite();
  std::vector<Dataset> At0 = labelSuite(Suite, 0.0);
  std::vector<Dataset> At30 = labelSuite(Suite, 30.0);
  ASSERT_EQ(At0.size(), Suite.size());
  for (size_t I = 0; I != Suite.size(); ++I) {
    EXPECT_EQ(At0[I].getName(), Suite[I].Name);
    // Table 5 property: NS constant, LS shrinking.
    EXPECT_EQ(At30[I].countLabel(Label::NS), At0[I].countLabel(Label::NS));
    EXPECT_LE(At30[I].countLabel(Label::LS), At0[I].countLabel(Label::LS));
  }
}

TEST(Experiments, PaperThresholdGrid) {
  std::vector<double> T = paperThresholds();
  ASSERT_EQ(T.size(), 11u);
  EXPECT_EQ(T.front(), 0.0);
  EXPECT_EQ(T.back(), 50.0);
  for (size_t I = 1; I != T.size(); ++I)
    EXPECT_EQ(T[I] - T[I - 1], 5.0);
}

TEST(Experiments, RunThresholdFieldShapes) {
  ThresholdResult R = runThreshold(tinySuite(), 0.0, ripperLearner());
  EXPECT_EQ(R.Names.size(), 7u);
  EXPECT_EQ(R.ErrorPct.size(), 7u);
  EXPECT_EQ(R.PredictedTimePct.size(), 7u);
  EXPECT_EQ(R.EffortRatioWork.size(), 7u);
  EXPECT_EQ(R.AppRatioLN.size(), 7u);
  EXPECT_EQ(R.AppRatioLS.size(), 7u);
  EXPECT_EQ(R.Filters.size(), 7u);
  size_t Blocks = 0;
  for (const BenchmarkRun &Run : tinySuite())
    Blocks += Run.Records.size();
  EXPECT_EQ(R.RuntimeLS + R.RuntimeNS, Blocks);
}

TEST(Experiments, RunThresholdValueRanges) {
  ThresholdResult R = runThreshold(tinySuite(), 0.0, ripperLearner());
  for (size_t I = 0; I != R.Names.size(); ++I) {
    EXPECT_GE(R.ErrorPct[I], 0.0);
    EXPECT_LE(R.ErrorPct[I], 100.0);
    EXPECT_GT(R.PredictedTimePct[I], 0.0);
    EXPECT_LE(R.PredictedTimePct[I], 100.5);
    EXPECT_GE(R.EffortRatioWork[I], 0.0);
    EXPECT_LE(R.AppRatioLN[I], 1.001);
    EXPECT_LE(R.AppRatioLS[I], 1.001);
  }
}

TEST(Experiments, SweepCoversAllThresholds) {
  std::vector<ThresholdResult> Sweep =
      runThresholdSweep(tinySuite(), {0.0, 25.0}, ripperLearner());
  ASSERT_EQ(Sweep.size(), 2u);
  EXPECT_EQ(Sweep[0].ThresholdPct, 0.0);
  EXPECT_EQ(Sweep[1].ThresholdPct, 25.0);
  // Higher threshold -> fewer LS training instances, fewer runtime LS.
  EXPECT_LE(Sweep[1].TrainLS, Sweep[0].TrainLS);
  EXPECT_LE(Sweep[1].RuntimeLS, Sweep[0].RuntimeLS);
}

TEST(TableRender, Table3RowsAndHeader) {
  std::vector<ThresholdResult> Sweep =
      runThresholdSweep(tinySuite(), {0.0, 20.0}, ripperLearner());
  std::ostringstream OS;
  renderTable3(Sweep, OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("Table 3"), std::string::npos);
  EXPECT_NE(Out.find("compress"), std::string::npos);
  EXPECT_NE(Out.find("Geo. mean"), std::string::npos);
  EXPECT_NE(Out.find("0%"), std::string::npos);
  EXPECT_NE(Out.find("20%"), std::string::npos);
  EXPECT_NE(Out.find("csv:"), std::string::npos);
}

TEST(TableRender, Table4PercentOfUnscheduled) {
  std::vector<ThresholdResult> Sweep =
      runThresholdSweep(tinySuite(), {0.0}, ripperLearner());
  std::ostringstream OS;
  renderTable4(Sweep, OS);
  EXPECT_NE(OS.str().find("percent of unscheduled"), std::string::npos);
}

TEST(TableRender, Table5And6RowLayout) {
  std::vector<ThresholdResult> Sweep =
      runThresholdSweep(tinySuite(), {0.0, 20.0}, ripperLearner());
  std::ostringstream OS5, OS6;
  renderTable5(Sweep, OS5);
  renderTable6(Sweep, OS6);
  EXPECT_NE(OS5.str().find("t=0"), std::string::npos);
  EXPECT_NE(OS5.str().find("t=20"), std::string::npos);
  EXPECT_NE(OS6.str().find("LS"), std::string::npos);
  EXPECT_NE(OS6.str().find("NS"), std::string::npos);
}

TEST(TableRender, FiguresAndHeadline) {
  std::vector<ThresholdResult> Sweep =
      runThresholdSweep(tinySuite(), {0.0}, ripperLearner());
  std::ostringstream OS;
  renderEffortFigure(Sweep, false, OS);
  renderEffortFigure(Sweep, true, OS);
  renderAppTimeFigure(Sweep, OS);
  renderHeadline(Sweep, OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("relative to LS"), std::string::npos);
  EXPECT_NE(Out.find("relative to NS"), std::string::npos);
  EXPECT_NE(Out.find("LS (always)"), std::string::npos);
  EXPECT_NE(Out.find("benefit retained"), std::string::npos);
}

TEST(TableRender, InducedFilterPrintout) {
  ThresholdResult R = runThreshold(tinySuite(), 0.0, ripperLearner());
  std::ostringstream OS;
  renderInducedFilter(R.Filters[0], OS);
  EXPECT_NE(OS.str().find("(default) orig"), std::string::npos);
}
