//===- tests/featurestats_test.cpp - FeatureStats & CommandLine tests ---------===//

#include "features/FeatureStats.h"
#include "support/CommandLine.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace schedfilter;

namespace {

FeatureVector fv(double BBLen, double Loads) {
  FeatureVector X{};
  X[FeatBBLen] = BBLen;
  X[FeatLoad] = Loads;
  return X;
}

Dataset separated() {
  Dataset D("sep");
  // LS blocks: big with many loads; NS blocks: small with few.
  for (int I = 0; I != 50; ++I) {
    D.add({fv(10 + I % 5, 0.6), Label::LS});
    D.add({fv(3 + I % 3, 0.1), Label::NS});
  }
  return D;
}

} // namespace

TEST(FeatureStats, MeansPerClass) {
  FeatureStats S(separated());
  EXPECT_GT(S.forClass(FeatBBLen, Label::LS).Mean,
            S.forClass(FeatBBLen, Label::NS).Mean);
  EXPECT_NEAR(S.forClass(FeatLoad, Label::LS).Mean, 0.6, 1e-9);
  EXPECT_NEAR(S.forClass(FeatLoad, Label::NS).Mean, 0.1, 1e-9);
  EXPECT_EQ(S.forClass(FeatLoad, Label::LS).Count, 50u);
}

TEST(FeatureStats, MinMaxTracked) {
  FeatureStats S(separated());
  EXPECT_DOUBLE_EQ(S.forClass(FeatBBLen, Label::LS).Min, 10.0);
  EXPECT_DOUBLE_EQ(S.forClass(FeatBBLen, Label::LS).Max, 14.0);
  EXPECT_DOUBLE_EQ(S.forClass(FeatBBLen, Label::NS).Min, 3.0);
}

TEST(FeatureStats, SeparationRanksInformativeFeaturesFirst) {
  FeatureStats S(separated());
  EXPECT_GT(S.separation(FeatLoad), 0.5);
  EXPECT_DOUBLE_EQ(S.separation(FeatFloat), 0.0); // constant feature
  std::vector<unsigned> Ranked = S.rankedFeatures();
  // The two informative features must outrank every constant one.
  EXPECT_TRUE(Ranked[0] == FeatLoad || Ranked[0] == FeatBBLen);
  EXPECT_TRUE(Ranked[1] == FeatLoad || Ranked[1] == FeatBBLen);
}

TEST(FeatureStats, EmptyAndSingleClassSafe) {
  FeatureStats Empty(Dataset("e"));
  EXPECT_DOUBLE_EQ(Empty.separation(FeatBBLen), 0.0);
  Dataset OneClass("o");
  OneClass.add({fv(5, 0.5), Label::NS});
  FeatureStats S(OneClass);
  EXPECT_DOUBLE_EQ(S.separation(FeatBBLen), 0.0);
}

TEST(FeatureStats, PrintIncludesAllFeatures) {
  std::ostringstream OS;
  FeatureStats(separated()).print(OS);
  for (unsigned F = 0; F != NumFeatures; ++F)
    EXPECT_NE(OS.str().find(getFeatureName(F)), std::string::npos);
}

TEST(CommandLine, OptionsAndPositionals) {
  const char *Argv[] = {"prog", "trace.csv", "--threshold", "20",
                        "--learner=tree", "more.csv", "--verbose"};
  CommandLine CL(7, const_cast<char **>(Argv));
  EXPECT_EQ(CL.get("threshold"), "20");
  EXPECT_EQ(CL.get("learner"), "tree");
  EXPECT_EQ(CL.get("verbose"), "true");
  EXPECT_TRUE(CL.has("verbose"));
  EXPECT_FALSE(CL.has("missing"));
  EXPECT_EQ(CL.get("missing", "dflt"), "dflt");
  ASSERT_EQ(CL.positional().size(), 2u);
  EXPECT_EQ(CL.positional()[0], "trace.csv");
  EXPECT_EQ(CL.positional()[1], "more.csv");
}

TEST(CommandLine, GetDouble) {
  const char *Argv[] = {"prog", "--threshold", "12.5"};
  CommandLine CL(3, const_cast<char **>(Argv));
  std::optional<double> T = CL.getDouble("threshold", 0.0);
  ASSERT_TRUE(T.has_value());
  EXPECT_DOUBLE_EQ(*T, 12.5);
  std::optional<double> Absent = CL.getDouble("absent", 7.0);
  ASSERT_TRUE(Absent.has_value());
  EXPECT_DOUBLE_EQ(*Absent, 7.0);
}

TEST(CommandLine, GetDoubleAcceptsTheUsualSpellings) {
  const char *Argv[] = {"prog", "--a=-3.25", "--b=1e2", "--c=+0.5", "--d=40."};
  CommandLine CL(5, const_cast<char **>(Argv));
  EXPECT_DOUBLE_EQ(*CL.getDouble("a", 0.0), -3.25);
  EXPECT_DOUBLE_EQ(*CL.getDouble("b", 0.0), 100.0);
  EXPECT_DOUBLE_EQ(*CL.getDouble("c", 0.0), 0.5);
  EXPECT_DOUBLE_EQ(*CL.getDouble("d", 0.0), 40.0);
}

TEST(CommandLine, GetDoubleRejectsGarbage) {
  // Each value used to strtod-parse as 0.0 (or truncate at the junk);
  // strict parsing must reject the whole token instead.
  const char *Argv[] = {"prog",        "--a=abc",  "--b=1.5x", "--c=",
                        "--d=nan",     "--e=inf",  "--f=1e999",
                        "--g=12 trailing", "--h=0x10", "--i=0x1p3"};
  CommandLine CL(10, const_cast<char **>(Argv));
  for (const char *Name : {"a", "b", "c", "d", "e", "f", "g", "h", "i"})
    EXPECT_FALSE(CL.getDouble(Name, 0.0).has_value()) << Name;
  // A bare boolean flag ("--flag" with no value) parses as the string
  // "true", which is not a number either.
  const char *Argv2[] = {"prog", "--hot"};
  CommandLine CL2(2, const_cast<char **>(Argv2));
  EXPECT_FALSE(CL2.getDouble("hot", 1.0).has_value());
}
