//===- tests/filter_test.cpp - filter/ScheduleFilter unit tests --------------===//

#include "filter/ScheduleFilter.h"

#include "TestHelpers.h"
#include "workloads/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace schedfilter;
using namespace schedfilter::test;

namespace {

/// Filter with one rule: LS iff bbLen >= 5 and loads >= 0.2.
RuleSet basicFilter() {
  RuleSet RS(Label::NS);
  Rule R;
  R.Conclusion = Label::LS;
  R.Conditions.push_back({FeatBBLen, false, 5.0});
  R.Conditions.push_back({FeatLoad, false, 0.2});
  RS.addRule(std::move(R));
  return RS;
}

} // namespace

TEST(ScheduleFilter, DecisionMatchesRuleSet) {
  ScheduleFilter F(basicFilter());
  // ilp-float: 6 instructions, 2/6 loads -> schedule.
  EXPECT_TRUE(F.shouldSchedule(makeIlpFloatBlock()));
  // trivial: 2 instructions -> below gate -> don't.
  EXPECT_FALSE(F.shouldSchedule(makeTrivialBlock()));
}

TEST(ScheduleFilter, CountsDecisions) {
  ScheduleFilter F(basicFilter());
  F.shouldSchedule(makeIlpFloatBlock());
  F.shouldSchedule(makeTrivialBlock());
  F.shouldSchedule(makeChainBlock());
  EXPECT_EQ(F.numScheduleDecisions() + F.numSkipDecisions(), 3u);
  EXPECT_EQ(F.numScheduleDecisions(), 1u);
  EXPECT_GT(F.workUnits(), 0u);
  F.resetStats();
  EXPECT_EQ(F.workUnits(), 0u);
  EXPECT_EQ(F.numScheduleDecisions(), 0u);
}

TEST(ScheduleFilter, GatedFastPathIsCheaper) {
  ScheduleFilter F(basicFilter());
  F.shouldSchedule(makeTrivialBlock()); // gated: 1 work unit
  uint64_t Gated = F.workUnits();
  EXPECT_EQ(Gated, 1u);
  F.shouldSchedule(makeIlpFloatBlock()); // full evaluation
  EXPECT_GT(F.workUnits() - Gated, 1u);
}

TEST(ScheduleFilter, ConstOverloadAgrees) {
  ScheduleFilter F(basicFilter());
  const ScheduleFilter &CF = F;
  for (const BasicBlock &BB :
       {makeIlpFloatBlock(), makeTrivialBlock(), makeChainBlock()})
    EXPECT_EQ(CF.shouldSchedule(BB), F.ruleSet().predict(extractFeatures(
                                         BB)) == Label::LS);
}

TEST(ScheduleFilter, NeverFilterSchedulesNothing) {
  ScheduleFilter F(RuleSet(Label::NS));
  EXPECT_FALSE(F.shouldSchedule(makeIlpFloatBlock()));
  EXPECT_FALSE(F.shouldSchedule(makeTrivialBlock()));
  EXPECT_EQ(F.numScheduleDecisions(), 0u);
}

// The gate-soundness property: the fast path must never change a
// decision.  Swept over generated blocks and several rule shapes.
class GateSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GateSoundness, FastPathNeverChangesDecisions) {
  const BenchmarkSpec *Spec = findBenchmarkSpec("raytrace");
  Rng R(GetParam());

  // Rule set with a bbLen-gated rule and a second rule gated higher.
  RuleSet RS(Label::NS);
  Rule R1;
  R1.Conclusion = Label::LS;
  R1.Conditions.push_back({FeatBBLen, false, static_cast<double>(R.range(4, 8))});
  R1.Conditions.push_back({FeatLoad, false, 0.15});
  RS.addRule(R1);
  Rule R2;
  R2.Conclusion = Label::LS;
  R2.Conditions.push_back({FeatBBLen, false, static_cast<double>(R.range(9, 14))});
  RS.addRule(R2);

  ScheduleFilter F(RS);
  for (int Trial = 0; Trial != 50; ++Trial) {
    BasicBlock BB = ProgramGenerator(*Spec).generateBlock(
        R, R.range(0, 8), /*EndWithTerminator=*/true);
    bool Slow = RS.predict(extractFeatures(BB)) == Label::LS;
    EXPECT_EQ(F.shouldSchedule(BB), Slow);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GateSoundness,
                         ::testing::Values(101, 202, 303, 404, 505));
