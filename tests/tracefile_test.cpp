//===- tests/tracefile_test.cpp - io/TraceStore unit tests --------------------===//
//
// CSV and SFTB1 binary trace round-trips, the CRLF and silent-truncation
// regression fixtures, and the line-numbered diagnostics contract.
//
//===----------------------------------------------------------------------===//

#include "io/TraceStore.h"

#include "TestHelpers.h"
#include "harness/Experiments.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace schedfilter;
using namespace schedfilter::test;

namespace {

/// Field-exact record comparison (doubles compared by value; traces never
/// contain NaNs, so == is bit-equality here).
void expectRecordsEqual(const std::vector<BlockRecord> &A,
                        const std::vector<BlockRecord> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    for (unsigned F = 0; F != NumFeatures; ++F)
      EXPECT_EQ(A[I].X[F], B[I].X[F]) << "record " << I << " feature " << F;
    EXPECT_EQ(A[I].CostNoSched, B[I].CostNoSched) << "record " << I;
    EXPECT_EQ(A[I].CostSched, B[I].CostSched) << "record " << I;
    EXPECT_EQ(A[I].ExecCount, B[I].ExecCount) << "record " << I;
  }
}

std::vector<BlockRecord> sampleRecords() {
  std::vector<BlockRecord> Records;
  BlockRecord R{};
  R.X[FeatBBLen] = 9;
  R.X[FeatLoad] = 0.333;
  R.X[FeatFloat] = 1.0 / 3.0; // needs 17 significant digits in text
  R.CostNoSched = 42;
  R.CostSched = 30;
  R.ExecCount = 123456;
  Records.push_back(R);
  R.X[FeatBBLen] = 2;
  R.X[FeatFloat] = 0.1 + 0.2;
  R.CostNoSched = 5;
  R.CostSched = 5;
  R.ExecCount = 1;
  Records.push_back(R);
  return Records;
}

} // namespace

TEST(TraceFile, RoundTripEmpty) {
  for (TraceFormat F : {TraceFormat::Csv, TraceFormat::Binary}) {
    std::stringstream SS;
    writeTrace({}, SS, F);
    ParseResult<std::vector<BlockRecord>> Back = readTrace(SS);
    ASSERT_TRUE(Back.has_value());
    EXPECT_TRUE(Back->empty());
  }
}

TEST(TraceFile, RoundTripPreservesEverything) {
  std::vector<BlockRecord> Records = sampleRecords();
  for (TraceFormat F : {TraceFormat::Csv, TraceFormat::Binary}) {
    std::stringstream SS;
    writeTrace(Records, SS, F);
    ParseResult<std::vector<BlockRecord>> Back = readTrace(SS);
    ASSERT_TRUE(Back.has_value());
    expectRecordsEqual(Records, *Back);
  }
}

TEST(TraceFile, CsvRoundTripsAwkwardDoublesExactly) {
  // The old writer printed features at default (6-digit) precision, so
  // 1/3 came back as 0.333333: labels survived but induced filters could
  // drift.  Cells are now shortest-round-trip.
  BlockRecord R{};
  R.X[FeatLoad] = 1.0 / 3.0;
  R.X[FeatStore] = 0.1 + 0.2;
  R.X[FeatFloat] = 5e-324; // smallest denormal
  R.X[FeatPEI] = 1e300;
  std::stringstream SS;
  writeTrace({R}, SS);
  ParseResult<std::vector<BlockRecord>> Back = readTrace(SS);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ((*Back)[0].X[FeatLoad], 1.0 / 3.0);
  EXPECT_EQ((*Back)[0].X[FeatStore], 0.1 + 0.2);
  EXPECT_EQ((*Back)[0].X[FeatFloat], 5e-324);
  EXPECT_EQ((*Back)[0].X[FeatPEI], 1e300);
}

TEST(TraceFile, AcceptsCrlfLineEndings) {
  // Regression: the header path stripped '\r' but data rows did not, so
  // any CRLF-saved trace was rejected wholesale.
  std::vector<BlockRecord> Records = sampleRecords();
  std::stringstream SS;
  writeTrace(Records, SS);
  std::string Text = SS.str();
  std::string Crlf;
  for (char C : Text) {
    if (C == '\n')
      Crlf += '\r';
    Crlf += C;
  }
  std::stringstream In(Crlf);
  ParseResult<std::vector<BlockRecord>> Back = readTrace(In);
  ASSERT_TRUE(Back.has_value()) << Back.error().str();
  expectRecordsEqual(Records, *Back);
}

TEST(TraceFile, RejectsWrongHeader) {
  std::stringstream SS("foo,bar\n1,2\n");
  ParseResult<std::vector<BlockRecord>> R = readTrace(SS);
  ASSERT_FALSE(R.has_value());
  EXPECT_EQ(R.error().Line, 1u);
}

TEST(TraceFile, RejectsShortRows) {
  std::vector<BlockRecord> Records(1);
  std::stringstream SS;
  writeTrace(Records, SS);
  std::string Text = SS.str();
  Text = Text.substr(0, Text.rfind(',')); // truncate the last column
  std::stringstream Bad(Text);
  ParseResult<std::vector<BlockRecord>> R = readTrace(Bad);
  ASSERT_FALSE(R.has_value());
  EXPECT_EQ(R.error().Line, 2u);
  EXPECT_NE(R.error().Message.find("cells"), std::string::npos);
}

TEST(TraceFile, RejectsNonNumericCell) {
  std::vector<BlockRecord> Records(1);
  std::stringstream SS;
  writeTrace(Records, SS);
  std::string Text = SS.str();
  Text.replace(Text.rfind('0'), 1, "x");
  std::stringstream Bad(Text);
  EXPECT_FALSE(readTrace(Bad).has_value());
}

TEST(TraceFile, RejectsFractionalCostCells) {
  // Regression: "7154.5" used to be strtod-parsed and silently truncated
  // to 7154, corrupting training data without a diagnostic.
  std::vector<BlockRecord> Records = sampleRecords();
  std::stringstream SS;
  writeTrace(Records, SS);
  std::string Text = SS.str();
  size_t Pos = Text.rfind(",30,");
  ASSERT_NE(Pos, std::string::npos);
  Text.replace(Pos, 4, ",30.5,");
  std::stringstream Bad(Text);
  ParseResult<std::vector<BlockRecord>> R = readTrace(Bad);
  ASSERT_FALSE(R.has_value());
  EXPECT_EQ(R.error().Line, 2u); // the record that held CostSched = 30
  EXPECT_NE(R.error().Message.find("costSched"), std::string::npos);
  EXPECT_NE(R.error().Message.find("30.5"), std::string::npos);
}

TEST(TraceFile, RejectsNegativeAndScientificCostCells) {
  for (const char *Bad : {"-5", "1e3", "+7", " 7"}) {
    std::vector<BlockRecord> Records(1);
    std::stringstream SS;
    writeTrace(Records, SS);
    std::string Text = SS.str();
    size_t Pos = Text.rfind(",1\n"); // execCount of the default record
    ASSERT_NE(Pos, std::string::npos);
    Text.replace(Pos + 1, 1, Bad);
    std::stringstream In(Text);
    ParseResult<std::vector<BlockRecord>> R = readTrace(In);
    ASSERT_FALSE(R.has_value()) << "accepted execCount '" << Bad << "'";
    EXPECT_EQ(R.error().Line, 2u);
  }
}

TEST(TraceFile, RejectsUint64OverflowInsteadOfTruncating) {
  // 2^64 = 18446744073709551616 survived the old strtod path as a
  // rounded double and came back as a wrong uint64_t.
  std::vector<BlockRecord> Records(1);
  std::stringstream SS;
  writeTrace(Records, SS);
  std::string Text = SS.str();
  size_t Pos = Text.rfind(",1\n");
  ASSERT_NE(Pos, std::string::npos);
  Text.replace(Pos + 1, 1, "18446744073709551616");
  std::stringstream In(Text);
  ParseResult<std::vector<BlockRecord>> R = readTrace(In);
  ASSERT_FALSE(R.has_value());
  EXPECT_EQ(R.error().Line, 2u);
  EXPECT_NE(R.error().Message.find("overflows"), std::string::npos);
  // The largest uint64_t itself is representable and must parse.
  std::string Max = SS.str();
  Pos = Max.rfind(",1\n");
  Max.replace(Pos + 1, 1, "18446744073709551615");
  std::stringstream MaxIn(Max);
  ParseResult<std::vector<BlockRecord>> Ok = readTrace(MaxIn);
  ASSERT_TRUE(Ok.has_value()) << Ok.error().str();
  EXPECT_EQ((*Ok)[0].ExecCount, 18446744073709551615ull);
}

TEST(TraceFile, ErrorsNameTheOffendingLine) {
  std::vector<BlockRecord> Records(4);
  std::stringstream SS;
  writeTrace(Records, SS);
  std::string Text = SS.str();
  // Break the third record: header is line 1, so that is line 4.
  size_t Row = 0, Pos = 0;
  for (; Row != 3; ++Row)
    Pos = Text.find('\n', Pos) + 1;
  Text.insert(Pos, "bad,row\n");
  std::stringstream In(Text);
  ParseResult<std::vector<BlockRecord>> R = readTrace(In);
  ASSERT_FALSE(R.has_value());
  EXPECT_EQ(R.error().Line, 4u);
}

TEST(TraceFile, BinaryRejectsCorruption) {
  std::vector<BlockRecord> Records = sampleRecords();
  std::stringstream SS;
  writeTrace(Records, SS, TraceFormat::Binary);
  std::string Bytes = SS.str();

  // Flip one payload byte: checksum must catch it.
  std::string Flipped = Bytes;
  Flipped[Flipped.size() - 3] = static_cast<char>(
      static_cast<unsigned char>(Flipped[Flipped.size() - 3]) ^ 0x40);
  std::stringstream FlippedIn(Flipped);
  ParseResult<std::vector<BlockRecord>> R1 = readTrace(FlippedIn);
  ASSERT_FALSE(R1.has_value());
  EXPECT_NE(R1.error().Message.find("checksum"), std::string::npos);

  // Truncate the payload: the header's record count must catch it.
  std::stringstream TruncIn(Bytes.substr(0, Bytes.size() - 5));
  ParseResult<std::vector<BlockRecord>> R2 = readTrace(TruncIn);
  ASSERT_FALSE(R2.has_value());
  EXPECT_NE(R2.error().Message.find("truncated"), std::string::npos);

  // Trailing garbage after the promised payload.
  std::stringstream TrailIn(Bytes + "xyz");
  ParseResult<std::vector<BlockRecord>> R3 = readTrace(TrailIn);
  ASSERT_FALSE(R3.has_value());
  EXPECT_NE(R3.error().Message.find("trailing"), std::string::npos);
}

TEST(TraceFile, BinaryRejectsForeignFeatureCount) {
  std::vector<BlockRecord> Records(1);
  std::stringstream SS;
  writeTrace(Records, SS, TraceFormat::Binary);
  std::string Bytes = SS.str();
  // The u16 feature count sits right after "SFTB1\n".
  Bytes[6] = static_cast<char>(NumFeatures + 1);
  std::stringstream In(Bytes);
  ParseResult<std::vector<BlockRecord>> R = readTrace(In);
  ASSERT_FALSE(R.has_value());
  EXPECT_NE(R.error().Message.find("features"), std::string::npos);
}

TEST(TraceFile, RealTraceRoundTripsBothFormatsAndLabelsIdentically) {
  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkRun> Runs =
      generateSuiteData(shrinkSuite({*findBenchmarkSpec("db")}, 5), Model);
  const std::vector<BlockRecord> &Records = Runs[0].Records;

  for (TraceFormat F : {TraceFormat::Csv, TraceFormat::Binary}) {
    std::stringstream SS;
    writeTrace(Records, SS, F);
    ParseResult<std::vector<BlockRecord>> Back = readTrace(SS);
    ASSERT_TRUE(Back.has_value()) << Back.error().str();
    expectRecordsEqual(Records, *Back);

    // Labeling the reloaded trace must agree at every threshold.
    for (double T : {0.0, 20.0, 45.0}) {
      Dataset A = buildDataset(Records, T, "a");
      Dataset B = buildDataset(*Back, T, "b");
      ASSERT_EQ(A.size(), B.size());
      for (size_t I = 0; I != A.size(); ++I)
        EXPECT_EQ(A[I].Y, B[I].Y);
    }
  }
}

TEST(TraceFile, CsvAndBinaryDecodeToIdenticalRecords) {
  // Property: whatever the suite generator emits, both encodings decode
  // to field-identical records (the acceptance bit-identity guarantee).
  MachineModel Model = MachineModel::ppc970();
  std::vector<BenchmarkRun> Runs = generateSuiteData(
      shrinkSuite({*findBenchmarkSpec("scimark")}, 4), Model);
  const std::vector<BlockRecord> &Records = Runs[0].Records;

  std::stringstream Csv, Bin;
  writeTrace(Records, Csv, TraceFormat::Csv);
  writeTrace(Records, Bin, TraceFormat::Binary);
  ParseResult<std::vector<BlockRecord>> FromCsv = readTrace(Csv);
  ParseResult<std::vector<BlockRecord>> FromBin = readTrace(Bin);
  ASSERT_TRUE(FromCsv.has_value());
  ASSERT_TRUE(FromBin.has_value());
  expectRecordsEqual(*FromCsv, *FromBin);
  expectRecordsEqual(Records, *FromCsv);
}
