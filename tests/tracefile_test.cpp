//===- tests/tracefile_test.cpp - harness/TraceFile unit tests ----------------===//

#include "harness/TraceFile.h"

#include "TestHelpers.h"
#include "harness/Experiments.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace schedfilter;
using namespace schedfilter::test;

TEST(TraceFile, RoundTripEmpty) {
  std::stringstream SS;
  writeTrace({}, SS);
  std::optional<std::vector<BlockRecord>> Back = readTrace(SS);
  ASSERT_TRUE(Back.has_value());
  EXPECT_TRUE(Back->empty());
}

TEST(TraceFile, RoundTripPreservesEverything) {
  std::vector<BlockRecord> Records;
  BlockRecord R;
  R.X[FeatBBLen] = 9;
  R.X[FeatLoad] = 0.333;
  R.CostNoSched = 42;
  R.CostSched = 30;
  R.ExecCount = 123456;
  Records.push_back(R);
  R.X[FeatBBLen] = 2;
  R.CostNoSched = 5;
  R.CostSched = 5;
  R.ExecCount = 1;
  Records.push_back(R);

  std::stringstream SS;
  writeTrace(Records, SS);
  std::optional<std::vector<BlockRecord>> Back = readTrace(SS);
  ASSERT_TRUE(Back.has_value());
  ASSERT_EQ(Back->size(), 2u);
  EXPECT_EQ((*Back)[0].X[FeatBBLen], 9.0);
  EXPECT_EQ((*Back)[0].X[FeatLoad], 0.333);
  EXPECT_EQ((*Back)[0].CostNoSched, 42u);
  EXPECT_EQ((*Back)[0].CostSched, 30u);
  EXPECT_EQ((*Back)[0].ExecCount, 123456u);
  EXPECT_EQ((*Back)[1].CostNoSched, 5u);
}

TEST(TraceFile, RejectsWrongHeader) {
  std::stringstream SS("foo,bar\n1,2\n");
  EXPECT_FALSE(readTrace(SS).has_value());
}

TEST(TraceFile, RejectsShortRows) {
  std::vector<BlockRecord> Records(1);
  std::stringstream SS;
  writeTrace(Records, SS);
  std::string Text = SS.str();
  Text = Text.substr(0, Text.rfind(',')); // truncate the last column
  std::stringstream Bad(Text);
  EXPECT_FALSE(readTrace(Bad).has_value());
}

TEST(TraceFile, RejectsNonNumericCell) {
  std::vector<BlockRecord> Records(1);
  std::stringstream SS;
  writeTrace(Records, SS);
  std::string Text = SS.str();
  Text.replace(Text.rfind('0'), 1, "x");
  std::stringstream Bad(Text);
  EXPECT_FALSE(readTrace(Bad).has_value());
}

TEST(TraceFile, RealTraceRoundTripsAndLabelsIdentically) {
  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkRun> Runs =
      generateSuiteData(shrinkSuite({*findBenchmarkSpec("db")}, 5), Model);
  const std::vector<BlockRecord> &Records = Runs[0].Records;

  std::stringstream SS;
  writeTrace(Records, SS);
  std::optional<std::vector<BlockRecord>> Back = readTrace(SS);
  ASSERT_TRUE(Back.has_value());
  ASSERT_EQ(Back->size(), Records.size());

  // Labeling the reloaded trace must agree at every threshold.
  for (double T : {0.0, 20.0, 45.0}) {
    Dataset A = buildDataset(Records, T, "a");
    Dataset B = buildDataset(*Back, T, "b");
    ASSERT_EQ(A.size(), B.size());
    for (size_t I = 0; I != A.size(); ++I)
      EXPECT_EQ(A[I].Y, B[I].Y);
  }
}
