//===- tests/TestHelpers.h - Shared fixtures for the test suite -*- C++ -*-===//
///
/// \file
/// Block builders and shrunken benchmark suites shared across test files.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_TESTS_TESTHELPERS_H
#define SCHEDFILTER_TESTS_TESTHELPERS_H

#include "mir/BasicBlock.h"
#include "workloads/BenchmarkSpec.h"

#include <filesystem>
#include <string>

#include <unistd.h>

namespace schedfilter {
namespace test {

/// A fresh, empty scratch directory per test, removed on scope exit --
/// RAII, so an early ASSERT return cannot leak it.
struct TempCacheDir {
  std::filesystem::path Path;
  explicit TempCacheDir(const std::string &Tag) {
    Path = std::filesystem::temp_directory_path() /
           ("schedfilter-" + Tag + "-" + std::to_string(::getpid()));
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~TempCacheDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }
};

/// Two independent float multiply trees feeding an add and a store, in
/// naive (depth-first) order: the canonical block that benefits from
/// scheduling on a machine with load/FP latency.
inline BasicBlock makeIlpFloatBlock(uint64_t ExecCount = 1) {
  BasicBlock BB("ilp-float", ExecCount);
  BB.append(Instruction(Opcode::LoadFloat, {100}, {0}));
  BB.append(Instruction(Opcode::FMul, {101}, {100, 100}));
  BB.append(Instruction(Opcode::LoadFloat, {102}, {1}));
  BB.append(Instruction(Opcode::FMul, {103}, {102, 102}));
  BB.append(Instruction(Opcode::FAdd, {104}, {101, 103}));
  BB.append(Instruction(Opcode::StoreFloat, {}, {104, 2}));
  return BB;
}

/// A pure dependence chain: load -> add -> add -> store.  Only one legal
/// order, so scheduling cannot help.
inline BasicBlock makeChainBlock(uint64_t ExecCount = 1) {
  BasicBlock BB("chain", ExecCount);
  BB.append(Instruction(Opcode::LoadInt, {100}, {0}));
  BB.append(Instruction(Opcode::Add, {101}, {100, 1}));
  BB.append(Instruction(Opcode::Add, {102}, {101, 2}));
  BB.append(Instruction(Opcode::StoreInt, {}, {102, 3}));
  return BB;
}

/// A tiny block: one move and a return.
inline BasicBlock makeTrivialBlock(uint64_t ExecCount = 1) {
  BasicBlock BB("trivial", ExecCount);
  BB.append(Instruction(Opcode::Move, {100}, {0}));
  BB.append(Instruction(Opcode::Ret, {}, {}));
  return BB;
}

/// Shrinks every spec of a suite so tests run in milliseconds.
inline std::vector<BenchmarkSpec>
shrinkSuite(std::vector<BenchmarkSpec> Suite, int NumMethods = 10) {
  for (BenchmarkSpec &S : Suite)
    S.NumMethods = NumMethods;
  return Suite;
}

} // namespace test
} // namespace schedfilter

#endif // SCHEDFILTER_TESTS_TESTHELPERS_H
