//===- tests/ReferenceRipper.h - The pre-index RIPPER trainer ----*- C++ -*-===//
//
// A faithful copy of the repository's original RIPPER implementation (the
// one that re-sorted every feature column for every candidate condition),
// kept as the reference the indexed engine is pinned against -- the same
// way tests/adaptive_test.cpp inlines the old batch fold to pin
// compileProgramAdaptive.  tests/ripper_engine_test.cpp asserts
// Ripper::train produces bit-for-bit this trainer's RuleSet on every
// dataset/seed/options combination it throws at both, and
// bench/bench_train_scale.cpp uses it as the throughput baseline.
//
// Do not "improve" this file: its value is being exactly the old
// algorithm, FP expression for FP expression.
//
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_TESTS_REFERENCERIPPER_H
#define SCHEDFILTER_TESTS_REFERENCERIPPER_H

#include "ml/Ripper.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace schedfilter {
namespace reference {

using IndexList = std::vector<int>;

inline double log2Binomial(size_t N, size_t K) {
  if (K > N)
    return 0.0;
  double L = std::lgamma(static_cast<double>(N) + 1.0) -
             std::lgamma(static_cast<double>(K) + 1.0) -
             std::lgamma(static_cast<double>(N - K) + 1.0);
  return L / std::log(2.0);
}

inline double subsetDL(size_t N, size_t K) {
  if (N == 0)
    return 0.0;
  return std::log2(static_cast<double>(N) + 1.0) + log2Binomial(N, K);
}

inline void shuffle(IndexList &V, Rng &R) {
  for (size_t I = V.size(); I > 1; --I)
    std::swap(V[I - 1], V[R.below(static_cast<uint32_t>(I))]);
}

inline void countCoverage(const Dataset &D, const Rule &R,
                          const IndexList &Pos, const IndexList &Neg,
                          size_t &P, size_t &N) {
  P = N = 0;
  for (int I : Pos)
    if (R.matches(D[static_cast<size_t>(I)].X))
      ++P;
  for (int I : Neg)
    if (R.matches(D[static_cast<size_t>(I)].X))
      ++N;
}

/// The whole learning state threaded through the helper routines.
struct Trainer {
  const Dataset &D;
  const RipperOptions &Opts;
  Label Target;
  double CondSpaceBits;

  Trainer(const Dataset &Data, const RipperOptions &O, Label Tgt)
      : D(Data), Opts(O), Target(Tgt) {
    size_t NumConds = 0;
    for (unsigned F = 0; F != NumFeatures; ++F) {
      std::set<double> Distinct;
      for (const Instance &I : D)
        Distinct.insert(I.X[F]);
      NumConds += 2 * Distinct.size();
    }
    CondSpaceBits =
        std::log2(std::max<double>(2.0, static_cast<double>(NumConds)));
  }

  bool isPos(int I) const { return D[static_cast<size_t>(I)].Y == Target; }

  double ruleDL(const Rule &R) const {
    double K = static_cast<double>(R.size());
    return 0.5 * (std::log2(K + 1.0) + K * CondSpaceBits);
  }

  double totalDL(const std::vector<Rule> &Rules, const IndexList &Pos,
                 const IndexList &Neg) const {
    auto CoveredByAny = [&](int I) {
      for (const Rule &R : Rules)
        if (R.matches(D[static_cast<size_t>(I)].X))
          return true;
      return false;
    };
    size_t Covered = 0, FP = 0, FN = 0;
    for (int I : Pos) {
      if (CoveredByAny(I))
        ++Covered;
      else
        ++FN;
    }
    for (int I : Neg) {
      if (CoveredByAny(I)) {
        ++Covered;
        ++FP;
      }
    }
    size_t Total = Pos.size() + Neg.size();
    double DL = subsetDL(Covered, FP) + subsetDL(Total - Covered, FN);
    for (const Rule &R : Rules)
      DL += ruleDL(R);
    return DL;
  }

  void splitGrowPrune(const IndexList &Pos, const IndexList &Neg, Rng &R,
                      IndexList &GrowPos, IndexList &GrowNeg,
                      IndexList &PrunePos, IndexList &PruneNeg) const {
    IndexList P = Pos, N = Neg;
    shuffle(P, R);
    shuffle(N, R);
    size_t PG = static_cast<size_t>(
        std::ceil(Opts.GrowFraction * static_cast<double>(P.size())));
    size_t NG = static_cast<size_t>(
        std::ceil(Opts.GrowFraction * static_cast<double>(N.size())));
    GrowPos.assign(P.begin(), P.begin() + static_cast<long>(PG));
    PrunePos.assign(P.begin() + static_cast<long>(PG), P.end());
    GrowNeg.assign(N.begin(), N.begin() + static_cast<long>(NG));
    PruneNeg.assign(N.begin() + static_cast<long>(NG), N.end());
  }

  bool findBestCondition(const IndexList &CovPos, const IndexList &CovNeg,
                         Condition &Best) const {
    size_t P0 = CovPos.size(), N0 = CovNeg.size();
    if (P0 == 0)
      return false;
    double BaseInfo = std::log2(static_cast<double>(P0) /
                                static_cast<double>(P0 + N0));
    double BestGain = 1e-9;
    bool Found = false;

    std::vector<std::pair<double, bool>> Vals;
    Vals.reserve(P0 + N0);
    for (unsigned F = 0; F != NumFeatures; ++F) {
      Vals.clear();
      for (int I : CovPos)
        Vals.push_back({D[static_cast<size_t>(I)].X[F], true});
      for (int I : CovNeg)
        Vals.push_back({D[static_cast<size_t>(I)].X[F], false});
      std::sort(Vals.begin(), Vals.end(),
                [](const auto &A, const auto &B) { return A.first < B.first; });

      size_t PrefP = 0, PrefN = 0;
      for (size_t I = 0; I != Vals.size();) {
        double V = Vals[I].first;
        while (I != Vals.size() && Vals[I].first == V) {
          if (Vals[I].second)
            ++PrefP;
          else
            ++PrefN;
          ++I;
        }
        auto Consider = [&](bool IsLE, size_t P, size_t N) {
          if (P == 0)
            return;
          if (P + N == P0 + N0)
            return;
          double Gain =
              static_cast<double>(P) *
              (std::log2(static_cast<double>(P) / static_cast<double>(P + N)) -
               BaseInfo);
          if (Gain > BestGain) {
            BestGain = Gain;
            Best = {F, IsLE, V};
            Found = true;
          }
        };
        Consider(true, PrefP, PrefN);
        size_t SuffP = P0 - PrefP, SuffN = N0 - PrefN;
        size_t GP = 0, GN = 0;
        for (size_t J = I; J-- > 0 && Vals[J].first == V;) {
          if (Vals[J].second)
            ++GP;
          else
            ++GN;
        }
        Consider(false, SuffP + GP, SuffN + GN);
      }
    }
    return Found;
  }

  void growRule(Rule &R, const IndexList &GrowPos,
                const IndexList &GrowNeg) const {
    IndexList CovPos, CovNeg;
    for (int I : GrowPos)
      if (R.matches(D[static_cast<size_t>(I)].X))
        CovPos.push_back(I);
    for (int I : GrowNeg)
      if (R.matches(D[static_cast<size_t>(I)].X))
        CovNeg.push_back(I);

    while (!CovNeg.empty() && R.size() < Opts.MaxConditionsPerRule) {
      Condition C;
      if (!findBestCondition(CovPos, CovNeg, C))
        break;
      R.Conditions.push_back(C);
      auto Keep = [&](IndexList &L) {
        IndexList Out;
        Out.reserve(L.size());
        for (int I : L)
          if (C.matches(D[static_cast<size_t>(I)].X))
            Out.push_back(I);
        L = std::move(Out);
      };
      Keep(CovPos);
      Keep(CovNeg);
    }
  }

  void pruneRule(Rule &R, const IndexList &PrunePos,
                 const IndexList &PruneNeg) const {
    if (R.Conditions.empty())
      return;
    double BestWorth = -2.0;
    size_t BestLen = R.size();
    Rule Prefix;
    Prefix.Conclusion = R.Conclusion;
    for (size_t Len = 0; Len <= R.size(); ++Len) {
      if (Len > 0)
        Prefix.Conditions.push_back(R.Conditions[Len - 1]);
      size_t P, N;
      countCoverage(D, Prefix, PrunePos, PruneNeg, P, N);
      double Worth = (P + N) == 0
                         ? 0.0
                         : (static_cast<double>(P) - static_cast<double>(N)) /
                               static_cast<double>(P + N);
      if (Worth > BestWorth + 1e-12) {
        BestWorth = Worth;
        BestLen = Len;
      }
    }
    R.Conditions.resize(BestLen);
  }

  std::vector<Rule> buildRuleList(IndexList Pos, IndexList Neg,
                                  Rng &R) const {
    std::vector<Rule> Rules;
    if (Pos.empty())
      return Rules;
    double BestDL = totalDL(Rules, Pos, Neg);
    IndexList AllPos = Pos, AllNeg = Neg;

    while (!Pos.empty() && Rules.size() < Opts.MaxRules) {
      IndexList GP, GN, PP, PN;
      splitGrowPrune(Pos, Neg, R, GP, GN, PP, PN);

      Rule NewRule;
      NewRule.Conclusion = Target;
      growRule(NewRule, GP, GN);
      pruneRule(NewRule, PP, PN);
      if (NewRule.Conditions.empty())
        break;

      size_t P, N;
      countCoverage(D, NewRule, PP, PN, P, N);
      if (P + N > 0 && N > P)
        break;

      size_t CovP, CovN;
      countCoverage(D, NewRule, Pos, Neg, CovP, CovN);
      if (CovP == 0)
        break;

      Rules.push_back(NewRule);
      double DL = totalDL(Rules, AllPos, AllNeg);
      if (DL < BestDL)
        BestDL = DL;
      if (DL > BestDL + Opts.MdlSlackBits) {
        Rules.pop_back();
        break;
      }

      auto RemoveCovered = [&](IndexList &L) {
        IndexList Out;
        Out.reserve(L.size());
        for (int I : L)
          if (!NewRule.matches(D[static_cast<size_t>(I)].X))
            Out.push_back(I);
        L = std::move(Out);
      };
      RemoveCovered(Pos);
      RemoveCovered(Neg);
    }
    return Rules;
  }

  void optimizePass(std::vector<Rule> &Rules, const IndexList &AllPos,
                    const IndexList &AllNeg, Rng &R) const {
    for (size_t RI = 0; RI != Rules.size(); ++RI) {
      IndexList ReachPos, ReachNeg;
      auto Reaches = [&](int I) {
        for (size_t J = 0; J != RI; ++J)
          if (Rules[J].matches(D[static_cast<size_t>(I)].X))
            return false;
        return true;
      };
      for (int I : AllPos)
        if (Reaches(I))
          ReachPos.push_back(I);
      for (int I : AllNeg)
        if (Reaches(I))
          ReachNeg.push_back(I);
      if (ReachPos.empty())
        continue;

      IndexList GP, GN, PP, PN;
      splitGrowPrune(ReachPos, ReachNeg, R, GP, GN, PP, PN);

      Rule Replacement;
      Replacement.Conclusion = Target;
      growRule(Replacement, GP, GN);
      pruneRule(Replacement, PP, PN);

      Rule Revision = Rules[RI];
      Revision.NumCorrect = Revision.NumIncorrect = 0;
      growRule(Revision, GP, GN);
      pruneRule(Revision, PP, PN);

      double DLOrig = totalDL(Rules, AllPos, AllNeg);
      std::vector<Rule> Variant = Rules;
      double DLRepl = 1e300, DLRev = 1e300;
      if (!Replacement.Conditions.empty()) {
        Variant[RI] = Replacement;
        DLRepl = totalDL(Variant, AllPos, AllNeg);
      }
      if (!Revision.Conditions.empty()) {
        Variant[RI] = Revision;
        DLRev = totalDL(Variant, AllPos, AllNeg);
      }
      if (DLRepl < DLOrig && DLRepl <= DLRev)
        Rules[RI] = Replacement;
      else if (DLRev < DLOrig)
        Rules[RI] = Revision;
    }

    IndexList UncovPos, UncovNeg;
    auto CoveredByAny = [&](int I) {
      for (const Rule &Rl : Rules)
        if (Rl.matches(D[static_cast<size_t>(I)].X))
          return true;
      return false;
    };
    for (int I : AllPos)
      if (!CoveredByAny(I))
        UncovPos.push_back(I);
    for (int I : AllNeg)
      if (!CoveredByAny(I))
        UncovNeg.push_back(I);
    std::vector<Rule> Extra = buildRuleList(UncovPos, UncovNeg, R);
    for (Rule &E : Extra)
      if (Rules.size() < Opts.MaxRules)
        Rules.push_back(std::move(E));

    bool Changed = true;
    while (Changed && !Rules.empty()) {
      Changed = false;
      double CurDL = totalDL(Rules, AllPos, AllNeg);
      double BestDL = CurDL;
      size_t BestIdx = Rules.size();
      for (size_t RI = 0; RI != Rules.size(); ++RI) {
        std::vector<Rule> Without = Rules;
        Without.erase(Without.begin() + static_cast<long>(RI));
        double DL = totalDL(Without, AllPos, AllNeg);
        if (DL < BestDL) {
          BestDL = DL;
          BestIdx = RI;
        }
      }
      if (BestIdx != Rules.size()) {
        Rules.erase(Rules.begin() + static_cast<long>(BestIdx));
        Changed = true;
      }
    }
  }
};

/// The original Ripper::train, verbatim.
inline RuleSet trainReference(const Dataset &Data,
                              const RipperOptions &Opts = RipperOptions()) {
  size_t NumLS = Data.countLabel(Label::LS);
  size_t NumNS = Data.size() - NumLS;

  if (Data.empty())
    return RuleSet(Label::NS);
  if (NumLS == 0)
    return RuleSet(Label::NS);
  if (NumNS == 0)
    return RuleSet(Label::LS);

  Label Target = NumLS <= NumNS ? Label::LS : Label::NS;
  Label Default = Target == Label::LS ? Label::NS : Label::LS;

  Trainer T(Data, Opts, Target);
  IndexList Pos, Neg;
  for (int I = 0, E = static_cast<int>(Data.size()); I != E; ++I)
    (T.isPos(I) ? Pos : Neg).push_back(I);

  Rng R(Opts.Seed);
  std::vector<Rule> Rules = T.buildRuleList(Pos, Neg, R);
  for (unsigned Pass = 0; Pass != Opts.OptimizePasses; ++Pass)
    T.optimizePass(Rules, Pos, Neg, R);

  RuleSet RS(Default);
  for (Rule &Rl : Rules) {
    Rl.Conclusion = Target;
    RS.addRule(std::move(Rl));
  }
  size_t DC, DI;
  RS.annotateCoverage(Data, DC, DI);
  return RS;
}

} // namespace reference
} // namespace schedfilter

#endif // SCHEDFILTER_TESTS_REFERENCERIPPER_H
