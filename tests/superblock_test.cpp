//===- tests/superblock_test.cpp - sched/Superblock unit tests ----------------===//

#include "sched/Superblock.h"

#include "TestHelpers.h"
#include "sched/ScheduleVerifier.h"
#include "sim/BlockSimulator.h"
#include "workloads/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace schedfilter;
using namespace schedfilter::test;

namespace {

/// A two-block method whose blocks have equal hotness (chains) and
/// complementary content: block 1's float loads can speculate above
/// block 0's side exit.
Method makeHotPathMethod() {
  Method M("hotpath");
  BasicBlock B0("b0", 1000);
  B0.append(Instruction(Opcode::LoadInt, {100}, {0}));
  B0.append(Instruction(Opcode::Add, {101}, {100, 1}));
  B0.append(Instruction(Opcode::Cmp, {102}, {101, 2}));
  B0.append(Instruction(Opcode::BrCond, {}, {102}));
  M.addBlock(std::move(B0));
  BasicBlock B1("b1", 950);
  B1.append(Instruction(Opcode::LoadFloat, {100}, {3}));
  B1.append(Instruction(Opcode::FMul, {101}, {100, 100}));
  B1.append(Instruction(Opcode::StoreFloat, {}, {101, 4}));
  B1.append(Instruction(Opcode::Ret, {}, {}));
  M.addBlock(std::move(B1));
  return M;
}

} // namespace

TEST(Superblock, FormsChainOnBalancedProfile) {
  Method M = makeHotPathMethod();
  std::vector<BasicBlock> Sbs = formSuperblocks(M);
  ASSERT_EQ(Sbs.size(), 1u);
  EXPECT_EQ(Sbs[0].size(), 8u);
  EXPECT_EQ(Sbs[0].getExecCount(), 1000u);
}

TEST(Superblock, ColdSuccessorBreaksTheChain) {
  Method M = makeHotPathMethod();
  M[1].setExecCount(10); // side exit almost always taken
  std::vector<BasicBlock> Sbs = formSuperblocks(M);
  EXPECT_EQ(Sbs.size(), 2u);
}

TEST(Superblock, ReturnsEndTraces) {
  Method M("rets");
  BasicBlock B0("b0", 100);
  B0.append(Instruction(Opcode::Add, {100}, {0, 1}));
  B0.append(Instruction(Opcode::Ret, {}, {}));
  M.addBlock(std::move(B0));
  BasicBlock B1("b1", 100);
  B1.append(Instruction(Opcode::Add, {100}, {0, 1}));
  B1.append(Instruction(Opcode::Br, {}, {}));
  M.addBlock(std::move(B1));
  EXPECT_EQ(formSuperblocks(M).size(), 2u);
}

TEST(Superblock, RenamingAvoidsFalseDependences) {
  Method M = makeHotPathMethod();
  std::vector<BasicBlock> Sbs = formSuperblocks(M);
  ASSERT_EQ(Sbs.size(), 1u);
  const BasicBlock &SB = Sbs[0];
  // Both blocks defined r100; after renaming the second block's defs are
  // offset, so no WAW edge is manufactured between them.
  EXPECT_NE(SB[0].defs()[0], SB[4].defs()[0]);
  // Live-ins (< 64) keep their numbers.
  EXPECT_EQ(SB[0].uses()[0], 0);
  EXPECT_EQ(SB[4].uses()[0], 3);
}

TEST(Superblock, MaxBlocksRespected) {
  Method M("long");
  for (int B = 0; B != 12; ++B) {
    BasicBlock BB("b" + std::to_string(B), 100);
    BB.append(Instruction(Opcode::Add, {100}, {0, 1}));
    BB.append(Instruction(Opcode::BrCond, {}, {100}));
    M.addBlock(std::move(BB));
  }
  SuperblockOptions Opts;
  Opts.MaxBlocks = 4;
  std::vector<BasicBlock> Sbs = formSuperblocks(M, Opts);
  EXPECT_EQ(Sbs.size(), 3u);
  for (const BasicBlock &SB : Sbs)
    EXPECT_EQ(SB.size(), 8u);
}

TEST(Superblock, SpeculationHoistsAcrossSideExit) {
  MachineModel Model = MachineModel::ppc7410();
  Method M = makeHotPathMethod();
  std::vector<BasicBlock> Sbs = formSuperblocks(M);
  ASSERT_EQ(Sbs.size(), 1u);
  ScheduleResult SR = scheduleSuperblock(Sbs[0], Model);

  // The float load (position 4, non-PEI) should hoist above the side exit
  // (position 3) into block 0's load-latency shadow.
  std::vector<int> Pos(Sbs[0].size());
  for (size_t P = 0; P != SR.Order.size(); ++P)
    Pos[static_cast<size_t>(SR.Order[P])] = static_cast<int>(P);
  EXPECT_LT(Pos[4], Pos[3]) << "float load should speculate above bc";
  // The store (position 6) must NOT move above the side exit.
  EXPECT_GT(Pos[6], Pos[3]);
}

TEST(Superblock, SuperblockScheduleBeatsLocalOnHotPath) {
  MachineModel Model = MachineModel::ppc7410();
  BlockSimulator Sim(Model);
  ListScheduler Local(Model);
  Method M = makeHotPathMethod();

  // Local scheduling: each block alone, costs summed.
  uint64_t LocalCycles = 0;
  for (const BasicBlock &BB : M)
    LocalCycles += Sim.simulate(BB, Local.schedule(BB).Order);

  // Superblock scheduling of the merged trace.
  std::vector<BasicBlock> Sbs = formSuperblocks(M);
  ASSERT_EQ(Sbs.size(), 1u);
  uint64_t SuperCycles =
      Sim.simulate(Sbs[0], scheduleSuperblock(Sbs[0], Model).Order);
  EXPECT_LT(SuperCycles, LocalCycles);
}

TEST(Superblock, SchedulesAreLegalUnderSuperblockDag) {
  MachineModel Model = MachineModel::ppc7410();
  const BenchmarkSpec *Spec = findBenchmarkSpec("power");
  BenchmarkSpec S = *Spec;
  S.NumMethods = 12;
  Program P = ProgramGenerator(S).generate();
  for (const Method &M : P)
    for (const BasicBlock &SB : formSuperblocks(M)) {
      DependenceGraph Dag(SB, Model, /*SuperblockMode=*/true);
      ScheduleResult SR = scheduleSuperblock(SB, Model);
      ScheduleVerifyResult V = verifySchedule(Dag, SR.Order);
      EXPECT_TRUE(V.Ok) << V.Message;
    }
}

TEST(Superblock, EveryInstructionAppearsExactlyOnce) {
  const BenchmarkSpec *Spec = findBenchmarkSpec("compress");
  BenchmarkSpec S = *Spec;
  S.NumMethods = 10;
  Program P = ProgramGenerator(S).generate();
  for (const Method &M : P) {
    size_t SbInsts = 0;
    for (const BasicBlock &SB : formSuperblocks(M))
      SbInsts += SB.size();
    EXPECT_EQ(SbInsts, M.totalInstructions());
  }
}

TEST(Superblock, SideExitDagStillForbidsDownwardMotion) {
  MachineModel Model = MachineModel::ppc7410();
  Method M = makeHotPathMethod();
  std::vector<BasicBlock> Sbs = formSuperblocks(M);
  DependenceGraph Dag(Sbs[0], Model, /*SuperblockMode=*/true);
  // Every instruction before the side exit (index 3) must have an edge to
  // it.
  for (int I = 0; I != 3; ++I)
    EXPECT_TRUE(Dag.hasEdge(I, 3));
}
