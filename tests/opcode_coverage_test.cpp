//===- tests/opcode_coverage_test.cpp - every opcode through every layer ------===//
//
// Parameterized sweep over all opcodes: each one must flow through the
// whole stack -- verifier, feature extraction, dependence graph, list
// scheduler, and simulator -- without violating any invariant.  Guards
// against adding an opcode and forgetting a table somewhere.
//
//===----------------------------------------------------------------------===//

#include "features/Features.h"
#include "mir/Verifier.h"
#include "sched/ListScheduler.h"
#include "sched/ScheduleVerifier.h"
#include "sim/BlockSimulator.h"

#include <gtest/gtest.h>

using namespace schedfilter;

namespace {

/// Builds a minimal well-formed block exercising \p Op: operands come
/// from live-in registers, and non-terminators are followed by a little
/// extra work so the DAG has somewhere to go.
BasicBlock makeBlockFor(Opcode Op) {
  const OpcodeInfo &Info = getOpcodeInfo(Op);
  BasicBlock BB(std::string("op-") + Info.Name);

  std::vector<Reg> Defs;
  if (Info.NumDefs == 1)
    Defs.push_back(100);
  // Give everything two register uses; extra uses are harmless in this IR
  // and exercise the dependence builder.
  std::vector<Reg> Uses = {1, 2};

  if (Info.IsTerminator) {
    BB.append(Instruction(Opcode::Add, {101}, {1, 2}));
    BB.append(Instruction(Op, Defs, Op == Opcode::Br ? std::vector<Reg>{}
                                                     : std::vector<Reg>{101}));
  } else {
    BB.append(Instruction(Op, Defs, Uses));
    // Consume the result (if any) so there is a RAW edge.
    BB.append(Instruction(Opcode::Add, {102},
                          Info.NumDefs == 1 ? std::vector<Reg>{100, 3}
                                            : std::vector<Reg>{1, 3}));
    BB.append(Instruction(Opcode::StoreInt, {}, {102, 4}));
  }
  return BB;
}

} // namespace

class OpcodeCoverage : public ::testing::TestWithParam<unsigned> {};

TEST_P(OpcodeCoverage, FlowsThroughEntireStack) {
  Opcode Op = static_cast<Opcode>(GetParam());
  BasicBlock BB = makeBlockFor(Op);

  // Verifier accepts the construction.
  VerifyResult VR = verifyBlock(BB);
  ASSERT_TRUE(VR.Ok) << VR.Message;

  // Features are in range and count this opcode's categories.
  FeatureVector X = extractFeatures(BB);
  EXPECT_EQ(X[FeatBBLen], static_cast<double>(BB.size()));
  for (unsigned F = FeatBranch; F != NumFeatures; ++F) {
    EXPECT_GE(X[F], 0.0);
    EXPECT_LE(X[F], 1.0);
  }

  for (const MachineModel &M :
       {MachineModel::ppc7410(), MachineModel::ppc970(),
        MachineModel::simpleScalar()}) {
    // DAG builds, heights positive.
    DependenceGraph Dag(BB, M);
    for (int I = 0; I != static_cast<int>(BB.size()); ++I)
      EXPECT_GE(Dag.criticalPath(I), 1);

    // Scheduler emits a legal order.
    ListScheduler S(M);
    ScheduleResult SR = S.schedule(BB, Dag);
    ScheduleVerifyResult SV = verifySchedule(Dag, SR.Order);
    EXPECT_TRUE(SV.Ok) << getOpcodeName(Op) << " on " << M.getName() << ": "
                       << SV.Message;

    // Simulator prices both orders sanely.
    BlockSimulator Sim(M);
    uint64_t Before = Sim.simulate(BB);
    uint64_t After = Sim.simulate(BB, SR.Order);
    EXPECT_GE(Before, M.getLatency(Op));
    EXPECT_GT(After, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeCoverage,
    ::testing::Range(0u, getNumOpcodes()),
    [](const ::testing::TestParamInfo<unsigned> &Info) {
      std::string Name = getOpcodeName(static_cast<Opcode>(Info.param));
      return Name; // opcode mnemonics are valid test-name characters
    });
