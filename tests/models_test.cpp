//===- tests/models_test.cpp - cross-model invariants (TEST_P sweeps) ----------===//
//
// Invariants that must hold on *every* machine model: scheduler legality,
// simulator sanity, and the end-to-end relationship NS >= L/N >= ~LS on
// simulated time.  Parameterized over the three models x several seeds.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "filter/Pipeline.h"
#include "ml/Serialization.h"
#include "sched/ScheduleVerifier.h"
#include "workloads/ProgramGenerator.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace schedfilter;
using namespace schedfilter::test;

namespace {

MachineModel makeModel(const std::string &Name) {
  std::optional<MachineModel> M = MachineModel::byName(Name);
  // value() throws (and fails the test cleanly) on an unknown name.
  return std::move(M).value();
}

} // namespace

class ModelInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(ModelInvariants, SchedulerLegalOnThisModel) {
  MachineModel M = makeModel(std::get<0>(GetParam()));
  ListScheduler S(M);
  const BenchmarkSpec *Spec = findBenchmarkSpec("raytrace");
  Rng R(std::get<1>(GetParam()));
  for (int Trial = 0; Trial != 15; ++Trial) {
    BasicBlock BB = ProgramGenerator(*Spec).generateBlock(
        R, R.range(0, 7), /*EndWithTerminator=*/true);
    ScheduleResult SR = S.schedule(BB);
    ScheduleVerifyResult V = verifySchedule(BB, M, SR.Order);
    EXPECT_TRUE(V.Ok) << M.getName() << ": " << V.Message;
  }
}

TEST_P(ModelInvariants, SimulatorBoundsHold) {
  MachineModel M = makeModel(std::get<0>(GetParam()));
  BlockSimulator Sim(M);
  const BenchmarkSpec *Spec = findBenchmarkSpec("power");
  Rng R(std::get<1>(GetParam()) * 7 + 3);
  for (int Trial = 0; Trial != 15; ++Trial) {
    BasicBlock BB = ProgramGenerator(*Spec).generateBlock(
        R, R.range(1, 6), /*EndWithTerminator=*/true);
    uint64_t Cycles = Sim.simulate(BB);
    // Lower bound: the longest single instruction latency and the issue
    // width.  Upper bound: fully serial execution.
    uint64_t MaxLat = 0, SumLat = 0;
    for (const Instruction &I : BB) {
      MaxLat = std::max<uint64_t>(MaxLat, M.getLatency(I.getOpcode()));
      SumLat += M.getLatency(I.getOpcode());
    }
    EXPECT_GE(Cycles, MaxLat);
    EXPECT_LE(Cycles, SumLat + BB.size());
  }
}

TEST_P(ModelInvariants, SchedulingHelpsOnNetAcrossAProgram) {
  MachineModel M = makeModel(std::get<0>(GetParam()));
  BenchmarkSpec Spec = *findBenchmarkSpec("scimark");
  Spec.NumMethods = 8;
  Spec.Seed ^= std::get<1>(GetParam());
  Program P = ProgramGenerator(Spec).generate();
  CompileReport NS = compileProgram(P, M, SchedulingPolicy::Never);
  CompileReport LS = compileProgram(P, M, SchedulingPolicy::Always);
  EXPECT_LT(LS.SimulatedTime, NS.SimulatedTime) << M.getName();
}

TEST_P(ModelInvariants, FilteredBetweenPolicies) {
  MachineModel M = makeModel(std::get<0>(GetParam()));
  BenchmarkSpec Spec = *findBenchmarkSpec("mpegaudio");
  Spec.NumMethods = 8;
  Program P = ProgramGenerator(Spec).generate();

  RuleSet RS(Label::NS);
  Rule R;
  R.Conclusion = Label::LS;
  R.Conditions.push_back({FeatBBLen, false, 7.0});
  RS.addRule(std::move(R));
  ScheduleFilter F(RS);

  CompileReport NS = compileProgram(P, M, SchedulingPolicy::Never);
  CompileReport LS = compileProgram(P, M, SchedulingPolicy::Always);
  CompileReport LN = compileProgram(P, M, SchedulingPolicy::Filtered, &F);
  EXPECT_LE(LN.SimulatedTime, NS.SimulatedTime);
  EXPECT_GE(LN.SimulatedTime, LS.SimulatedTime * 0.999);
  EXPECT_LT(LN.SchedulingWork, LS.SchedulingWork);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelInvariants,
    ::testing::Combine(::testing::Values("ppc7410", "ppc970",
                                         "simple-scalar"),
                       ::testing::Values(5u, 55u)));

// Serialization fuzzing: random rule sets always round-trip.
class SerializationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializationProperty, RandomRuleSetsRoundTrip) {
  Rng R(GetParam());
  RuleSet RS(R.chance(0.5) ? Label::LS : Label::NS);
  int NumRules = R.range(0, 8);
  for (int I = 0; I != NumRules; ++I) {
    Rule Rl;
    Rl.Conclusion = R.chance(0.7) ? Label::LS : Label::NS;
    int NumConds = R.range(0, 6);
    for (int C = 0; C != NumConds; ++C)
      Rl.Conditions.push_back({static_cast<unsigned>(R.below(NumFeatures)),
                               R.chance(0.5), R.uniform(0.0, 40.0)});
    RS.addRule(std::move(Rl));
  }

  std::stringstream SS;
  writeRuleSet(RS, SS);
  ParseResult<RuleSet> Back = readRuleSet(SS);
  ASSERT_TRUE(Back.has_value());
  // Predictions must agree on random feature vectors.
  for (int I = 0; I != 100; ++I) {
    FeatureVector X{};
    for (unsigned F = 0; F != NumFeatures; ++F)
      X[F] = R.uniform(0.0, 40.0);
    EXPECT_EQ(RS.predict(X), Back->predict(X));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));
