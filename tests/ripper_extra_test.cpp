//===- tests/ripper_extra_test.cpp - deeper RIPPER behaviour tests -------------===//
//
// Beyond ripper_test.cpp's functional checks: properties of the MDL
// stopping rule, the optimization passes, class handling, and behaviour
// on pathological datasets.
//
//===----------------------------------------------------------------------===//

#include "ml/Ripper.h"

#include "ml/Metrics.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace schedfilter;

namespace {

FeatureVector fv(double BBLen, double Loads = 0.0, double Calls = 0.0) {
  FeatureVector X{};
  X[FeatBBLen] = BBLen;
  X[FeatLoad] = Loads;
  X[FeatCall] = Calls;
  return X;
}

/// Three-clause disjunction with 5% noise: a realistic hard target.
Dataset hardData(size_t N, uint64_t Seed) {
  Dataset D("hard");
  Rng R(Seed);
  for (size_t I = 0; I != N; ++I) {
    double BBLen = R.range(1, 24);
    double Loads = R.uniform();
    double Calls = R.uniform() * 0.3;
    bool Pos = (BBLen >= 16) || (BBLen >= 8 && Loads >= 0.5) ||
               (Loads >= 0.85 && Calls <= 0.05);
    if (R.chance(0.05))
      Pos = !Pos;
    D.add({fv(BBLen, Loads, Calls), Pos ? Label::LS : Label::NS});
  }
  return D;
}

} // namespace

TEST(RipperExtra, MdlKeepsModelsSmallOnPureNoise) {
  Dataset D("purenoise");
  Rng R(1);
  for (int I = 0; I != 2000; ++I)
    D.add({fv(R.range(1, 20), R.uniform(), R.uniform()),
           R.chance(0.35) ? Label::LS : Label::NS});
  RuleSet RS = Ripper().train(D);
  // With no learnable signal, the description-length criterion should
  // keep the rule list very small (ideally empty).
  EXPECT_LE(RS.totalConditions(), 20u);
  // And never do worse than majority.
  EXPECT_LE(evaluate(RS, D).errors(),
            std::min(D.countLabel(Label::LS), D.countLabel(Label::NS)));
}

TEST(RipperExtra, OptimizationPassesDoNotHurtTrainingError) {
  Dataset D = hardData(1500, 2);
  RipperOptions NoOpt, TwoOpt;
  NoOpt.OptimizePasses = 0;
  TwoOpt.OptimizePasses = 2;
  double E0 = errorRatePercent(Ripper(NoOpt).train(D), D);
  double E2 = errorRatePercent(Ripper(TwoOpt).train(D), D);
  EXPECT_LE(E2, E0 + 1.0);
}

TEST(RipperExtra, OptimizationTendsToSimplify) {
  Dataset D = hardData(1500, 3);
  RipperOptions NoOpt, TwoOpt;
  NoOpt.OptimizePasses = 0;
  TwoOpt.OptimizePasses = 2;
  size_t C0 = Ripper(NoOpt).train(D).totalConditions();
  size_t C2 = Ripper(TwoOpt).train(D).totalConditions();
  EXPECT_LE(C2, C0 + 6); // usually smaller; never wildly bigger
}

TEST(RipperExtra, HandlesMajorityPositiveData) {
  // When LS is the majority, RIPPER must flip: rules for NS, default LS.
  Dataset D("majpos");
  Rng R(4);
  for (int I = 0; I != 600; ++I) {
    double BBLen = R.range(1, 20);
    D.add({fv(BBLen), BBLen >= 5 ? Label::LS : Label::NS}); // ~80% LS
  }
  RuleSet RS = Ripper().train(D);
  EXPECT_EQ(RS.getDefaultClass(), Label::LS);
  for (const Rule &Rl : RS.rules())
    EXPECT_EQ(Rl.Conclusion, Label::NS);
  EXPECT_LE(errorRatePercent(RS, D), 1.0);
}

TEST(RipperExtra, DuplicatedInstancesDoNotBreakTraining) {
  Dataset D("dups");
  for (int I = 0; I != 200; ++I) {
    D.add({fv(12, 0.5), Label::LS});
    D.add({fv(3, 0.1), Label::NS});
    D.add({fv(3, 0.1), Label::NS});
  }
  RuleSet RS = Ripper().train(D);
  EXPECT_EQ(evaluate(RS, D).errors(), 0u);
}

TEST(RipperExtra, ContradictoryDuplicatesHitNoiseFloor) {
  // The same point labeled both ways 20/80: Bayes error is 20%.
  Dataset D("contra");
  for (int I = 0; I != 500; ++I)
    D.add({fv(10, 0.5), I % 5 == 0 ? Label::LS : Label::NS});
  RuleSet RS = Ripper().train(D);
  double Err = errorRatePercent(RS, D);
  EXPECT_NEAR(Err, 20.0, 0.5); // cannot beat Bayes; must not overfit
}

TEST(RipperExtra, SingleInstancePerClass) {
  Dataset D("tiny");
  D.add({fv(12, 0.9), Label::LS});
  D.add({fv(2, 0.1), Label::NS});
  RuleSet RS = Ripper().train(D);
  // Must not crash; prediction quality on 2 points is unconstrained, but
  // the default class must be valid.
  (void)RS.predict(fv(12, 0.9));
  (void)RS.predict(fv(2, 0.1));
}

TEST(RipperExtra, GrowFractionExtremes) {
  Dataset D = hardData(800, 5);
  for (double Frac : {0.5, 0.9}) {
    RipperOptions O;
    O.GrowFraction = Frac;
    RuleSet RS = Ripper(O).train(D);
    EXPECT_LE(errorRatePercent(RS, D), 15.0) << "GrowFraction " << Frac;
  }
}

TEST(RipperExtra, MdlSlackZeroStillProducesAFilter) {
  RipperOptions O;
  O.MdlSlackBits = 0.0; // most aggressive stopping
  Dataset D = hardData(800, 6);
  RuleSet RS = Ripper(O).train(D);
  EXPECT_LE(evaluate(RS, D).errors(),
            std::min(D.countLabel(Label::LS), D.countLabel(Label::NS)));
}

TEST(RipperExtra, RulesNeverContradictTheirCoverageCounts) {
  Dataset D = hardData(1000, 7);
  RuleSet RS = Ripper().train(D);
  for (const Rule &Rl : RS.rules()) {
    // Every rule that survived must have claimed at least as many correct
    // as incorrect training instances (otherwise MDL deletion or the
    // prune-error guard should have removed it).
    EXPECT_GE(Rl.NumCorrect + 2, Rl.NumIncorrect)
        << Rl.toString();
  }
}

TEST(RipperExtra, GeneralizationGapIsBounded) {
  Dataset Train = hardData(2000, 8);
  Dataset Test = hardData(1000, 88);
  RuleSet RS = Ripper().train(Train);
  double TrainErr = errorRatePercent(RS, Train);
  double TestErr = errorRatePercent(RS, Test);
  EXPECT_LE(TestErr, TrainErr + 6.0) << "severe overfitting";
  EXPECT_LE(TestErr, 16.0); // 5% label noise floor + learnable structure
}
