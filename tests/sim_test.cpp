//===- tests/sim_test.cpp - sim/BlockSimulator unit tests -------------------===//

#include "sim/BlockSimulator.h"

#include "TestHelpers.h"
#include "sched/ListScheduler.h"
#include "workloads/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace schedfilter;
using namespace schedfilter::test;

namespace {

MachineModel model() { return MachineModel::ppc7410(); }

} // namespace

TEST(BlockSimulator, EmptyBlockIsZero) {
  MachineModel M = model();
  BlockSimulator Sim(M);
  BasicBlock BB("empty");
  EXPECT_EQ(Sim.simulate(BB), 0u);
}

TEST(BlockSimulator, SingleInstructionCostsItsLatency) {
  MachineModel M = model();
  BlockSimulator Sim(M);
  BasicBlock BB("one");
  BB.append(Instruction(Opcode::LoadInt, {100}, {0}));
  EXPECT_EQ(Sim.simulate(BB), M.getLatency(Opcode::LoadInt));
}

TEST(BlockSimulator, DependentChainSumsLatencies) {
  MachineModel M = model();
  BlockSimulator Sim(M);
  BasicBlock BB("chain2");
  BB.append(Instruction(Opcode::LoadInt, {100}, {0}));
  BB.append(Instruction(Opcode::Add, {101}, {100, 1}));
  EXPECT_EQ(Sim.simulate(BB),
            M.getLatency(Opcode::LoadInt) + M.getLatency(Opcode::Add));
}

TEST(BlockSimulator, DualIssueOfIndependentIntOps) {
  MachineModel M = model();
  BlockSimulator Sim(M);
  // Two independent adds on the two integer units: both issue in cycle 0.
  BasicBlock BB("dual");
  BB.append(Instruction(Opcode::Add, {100}, {0, 1}));
  BB.append(Instruction(Opcode::Add, {101}, {2, 3}));
  EXPECT_EQ(Sim.simulate(BB), 1u);
}

TEST(BlockSimulator, IssueWidthLimitsThirdOp) {
  MachineModel M = model();
  BlockSimulator Sim(M);
  // Three independent adds: only two non-branch issues per cycle (and only
  // two integer units), so the third lands in cycle 1.
  BasicBlock BB("triple");
  BB.append(Instruction(Opcode::Add, {100}, {0, 1}));
  BB.append(Instruction(Opcode::Add, {101}, {2, 3}));
  BB.append(Instruction(Opcode::Add, {102}, {4, 5}));
  EXPECT_EQ(Sim.simulate(BB), 2u);
}

TEST(BlockSimulator, BranchUsesItsOwnIssueSlot) {
  MachineModel M = model();
  BlockSimulator Sim(M);
  // Two adds + a branch can all go in cycle 0 (1 branch + 2 non-branch).
  BasicBlock BB("br-slot");
  BB.append(Instruction(Opcode::Add, {100}, {0, 1}));
  BB.append(Instruction(Opcode::Add, {101}, {2, 3}));
  BB.append(Instruction(Opcode::Br, {}, {}));
  EXPECT_EQ(Sim.simulate(BB), 1u);
}

TEST(BlockSimulator, FunctionalUnitContention) {
  MachineModel M = model();
  BlockSimulator Sim(M);
  // Two independent loads share the single LSU: second issues a cycle
  // later (pipelined), finishing one cycle after the first.
  BasicBlock BB("lsu");
  BB.append(Instruction(Opcode::LoadInt, {100}, {0}));
  BB.append(Instruction(Opcode::LoadInt, {101}, {1}));
  EXPECT_EQ(Sim.simulate(BB), M.getLatency(Opcode::LoadInt) + 1);
}

TEST(BlockSimulator, NonPipelinedDivBlocksUnit) {
  MachineModel M = model();
  BlockSimulator Sim(M);
  // Two independent fdivs on one non-pipelined FPU: serialized.
  BasicBlock BB("fdiv2");
  BB.append(Instruction(Opcode::FDiv, {100}, {32, 33}));
  BB.append(Instruction(Opcode::FDiv, {101}, {34, 35}));
  EXPECT_EQ(Sim.simulate(BB), 2 * M.getLatency(Opcode::FDiv));
}

TEST(BlockSimulator, LoadWaitsForPriorStore) {
  MachineModel M = model();
  BlockSimulator Sim(M);
  BasicBlock BB("st-ld");
  BB.append(Instruction(Opcode::StoreInt, {}, {0, 1}));
  BB.append(Instruction(Opcode::LoadInt, {100}, {2}));
  // Load issues only after the store completes (conservative memory
  // model): 1 (store) + 3 (load).
  EXPECT_EQ(Sim.simulate(BB),
            M.getLatency(Opcode::StoreInt) + M.getLatency(Opcode::LoadInt));
}

TEST(BlockSimulator, CallSerializesFollowingWork) {
  MachineModel M = model();
  BlockSimulator Sim(M);
  BasicBlock BB("call");
  BB.append(Instruction(Opcode::Call, {100}, {0}));
  BB.append(Instruction(Opcode::Add, {101}, {1, 2}));
  EXPECT_EQ(Sim.simulate(BB),
            M.getLatency(Opcode::Call) + M.getLatency(Opcode::Add));
}

TEST(BlockSimulator, IdentityOrderMatchesImplicitOrder) {
  MachineModel M = model();
  BlockSimulator Sim(M);
  BasicBlock BB = makeIlpFloatBlock();
  EXPECT_EQ(Sim.simulate(BB),
            Sim.simulate(BB, ListScheduler::identity(BB).Order));
}

TEST(BlockSimulator, ReorderingChangesCost) {
  MachineModel M = model();
  BlockSimulator Sim(M);
  BasicBlock BB = makeIlpFloatBlock();
  // Interleaved order hides load latency: strictly cheaper.
  std::vector<int> Interleaved = {0, 2, 1, 3, 4, 5};
  EXPECT_LT(Sim.simulate(BB, Interleaved), Sim.simulate(BB));
}

TEST(BlockSimulator, SimpleScalarSlowerThanSuperscalar) {
  MachineModel Wide = model();
  MachineModel Narrow = MachineModel::simpleScalar();
  BlockSimulator SimW(Wide), SimN(Narrow);
  BasicBlock BB = makeIlpFloatBlock();
  EXPECT_GE(SimN.simulate(BB), SimW.simulate(BB));
}

TEST(BlockSimulator, DeterministicAcrossCalls) {
  MachineModel M = model();
  BlockSimulator Sim(M);
  BasicBlock BB = makeIlpFloatBlock();
  EXPECT_EQ(Sim.simulate(BB), Sim.simulate(BB));
}

// Property sweep over generated blocks: appending an instruction never
// reduces block cost, and every legal schedule's cost is at least the
// dependence-graph critical path of the first instruction... (we assert
// the weaker, always-true form: cost >= max single latency).
class SimProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimProperty, MonotoneUnderAppend) {
  MachineModel M = model();
  BlockSimulator Sim(M);
  const BenchmarkSpec *Spec = findBenchmarkSpec("bh");
  Rng R(GetParam());
  for (int Trial = 0; Trial != 10; ++Trial) {
    BasicBlock BB = ProgramGenerator(*Spec).generateBlock(
        R, R.range(0, 5), /*EndWithTerminator=*/false);
    uint64_t Cost = Sim.simulate(BB);
    BB.append(Instruction(Opcode::Add, {999}, {0, 1}));
    EXPECT_GE(Sim.simulate(BB), Cost);
  }
}

TEST_P(SimProperty, CostAtLeastLongestSingleLatency) {
  MachineModel M = model();
  BlockSimulator Sim(M);
  const BenchmarkSpec *Spec = findBenchmarkSpec("power");
  Rng R(GetParam() * 31 + 1);
  for (int Trial = 0; Trial != 10; ++Trial) {
    BasicBlock BB = ProgramGenerator(*Spec).generateBlock(
        R, R.range(1, 6), /*EndWithTerminator=*/true);
    uint64_t MaxLat = 0;
    for (const Instruction &I : BB)
      MaxLat = std::max<uint64_t>(MaxLat, M.getLatency(I.getOpcode()));
    EXPECT_GE(Sim.simulate(BB), MaxLat);
    EXPECT_GE(Sim.simulate(BB), BB.size() / 3); // issue-width bound
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));
