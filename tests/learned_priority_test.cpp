//===- tests/learned_priority_test.cpp - optimal search & learned scheduler ----===//

#include "sched/LearnedPriority.h"
#include "sched/OptimalScheduler.h"

#include "TestHelpers.h"
#include "sched/ScheduleVerifier.h"
#include "sim/BlockSimulator.h"
#include "workloads/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace schedfilter;
using namespace schedfilter::test;

namespace {

std::vector<BasicBlock> smallBlocks(const char *Benchmark, uint64_t Seed,
                                    int Count, size_t MaxSize) {
  const BenchmarkSpec *Spec = findBenchmarkSpec(Benchmark);
  Rng R(Seed);
  std::vector<BasicBlock> Out;
  while (static_cast<int>(Out.size()) < Count) {
    BasicBlock BB = ProgramGenerator(*Spec).generateBlock(
        R, R.range(1, 3), /*EndWithTerminator=*/true);
    if (!BB.empty() && BB.size() <= MaxSize)
      Out.push_back(std::move(BB));
  }
  return Out;
}

} // namespace

TEST(OptimalScheduler, EmptyBlock) {
  MachineModel M = MachineModel::ppc7410();
  OptimalResult R = findOptimalSchedule(BasicBlock("e"), M);
  EXPECT_TRUE(R.Order.empty());
  EXPECT_TRUE(R.Exact);
}

TEST(OptimalScheduler, ChainHasOneOrder) {
  MachineModel M = MachineModel::ppc7410();
  BasicBlock BB = makeChainBlock();
  OptimalResult R = findOptimalSchedule(BB, M);
  EXPECT_TRUE(R.Exact);
  EXPECT_EQ(R.Order, (std::vector<int>{0, 1, 2, 3}));
  BlockSimulator Sim(M);
  EXPECT_EQ(R.Cycles, Sim.simulate(BB));
}

TEST(OptimalScheduler, BeatsNaiveOnIlpBlock) {
  MachineModel M = MachineModel::ppc7410();
  BlockSimulator Sim(M);
  BasicBlock BB = makeIlpFloatBlock();
  OptimalResult R = findOptimalSchedule(BB, M);
  EXPECT_TRUE(R.Exact);
  EXPECT_LT(R.Cycles, Sim.simulate(BB));
  EXPECT_EQ(R.Cycles, Sim.simulate(BB, R.Order));
}

TEST(OptimalScheduler, NeverWorseThanCps) {
  MachineModel M = MachineModel::ppc7410();
  ListScheduler Cps(M);
  BlockSimulator Sim(M);
  for (const BasicBlock &BB : smallBlocks("bh", 31, 40, 10)) {
    OptimalResult Opt = findOptimalSchedule(BB, M);
    uint64_t CpsCost = Sim.simulate(BB, Cps.schedule(BB).Order);
    EXPECT_LE(Opt.Cycles, CpsCost) << BB.toString();
    ScheduleVerifyResult V = verifySchedule(BB, M, Opt.Order);
    EXPECT_TRUE(V.Ok) << V.Message;
  }
}

TEST(OptimalScheduler, BudgetExhaustionFlagged) {
  MachineModel M = MachineModel::ppc7410();
  // A wide block with huge numbers of topological orders and a budget of
  // one leaf: must flag inexactness but still return the (legal) seed.
  BasicBlock BB("wide");
  for (int I = 0; I != 10; ++I)
    BB.append(Instruction(Opcode::Add, {static_cast<Reg>(100 + I)},
                          {static_cast<Reg>(I), static_cast<Reg>(I + 1)}));
  OptimalResult R = findOptimalSchedule(BB, M, /*MaxLeaves=*/1);
  EXPECT_FALSE(R.Exact);
  EXPECT_TRUE(verifySchedule(BB, M, R.Order).Ok);
}

TEST(DecisionFeaturesTest, NamesAndValues) {
  MachineModel M = MachineModel::ppc7410();
  BasicBlock BB = makeIlpFloatBlock();
  DependenceGraph Dag(BB, M);
  DecisionFeatures F =
      decisionFeatures(BB, Dag, M, /*Candidate=*/0, /*Earliest=*/3,
                       /*Clock=*/1);
  EXPECT_GT(F.Phi[0], 0.0);            // critical path
  EXPECT_GT(F.Phi[1], 0.0);            // latency
  EXPECT_DOUBLE_EQ(F.Phi[3], 2.0);     // slack = 3 - 1
  EXPECT_DOUBLE_EQ(F.Phi[4], 1.0);     // instruction 0 is a load
  for (unsigned I = 0; I != DecisionFeatures::NumFeatures; ++I)
    EXPECT_NE(getDecisionFeatureName(I), nullptr);
}

TEST(LearnedScheduler, AlwaysLegal) {
  MachineModel M = MachineModel::ppc7410();
  PreferenceFunction Fn = PreferenceLearner().train(
      smallBlocks("mpegaudio", 41, 30, 10), M);
  LearnedListScheduler S(M, Fn);
  for (const BasicBlock &BB : smallBlocks("jess", 42, 40, 16)) {
    ScheduleResult SR = S.schedule(BB);
    ScheduleVerifyResult V = verifySchedule(BB, M, SR.Order);
    EXPECT_TRUE(V.Ok) << V.Message;
  }
}

TEST(LearnedScheduler, ZeroWeightsStillLegalAndComplete) {
  MachineModel M = MachineModel::ppc7410();
  LearnedListScheduler S(M, PreferenceFunction());
  BasicBlock BB = makeIlpFloatBlock();
  ScheduleResult SR = S.schedule(BB);
  EXPECT_EQ(SR.Order.size(), BB.size());
  EXPECT_TRUE(verifySchedule(BB, M, SR.Order).Ok);
}

TEST(LearnedScheduler, LearnedFunctionIsCompetent) {
  // Train on one benchmark's small blocks; on held-out blocks the
  // learned scheduler must recover a decent share of what CPS recovers.
  MachineModel M = MachineModel::ppc7410();
  PreferenceFunction Fn = PreferenceLearner().train(
      smallBlocks("mpegaudio", 51, 80, 11), M);
  LearnedListScheduler Learned(M, Fn);
  ListScheduler Cps(M);
  BlockSimulator Sim(M);

  double CpsSaved = 0.0, LearnedSaved = 0.0;
  for (const BasicBlock &BB : smallBlocks("scimark", 52, 80, 11)) {
    double U = static_cast<double>(Sim.simulate(BB));
    CpsSaved += U - static_cast<double>(
                        Sim.simulate(BB, Cps.schedule(BB).Order));
    LearnedSaved += U - static_cast<double>(
                            Sim.simulate(BB, Learned.schedule(BB).Order));
  }
  ASSERT_GT(CpsSaved, 0.0);
  EXPECT_GT(LearnedSaved / CpsSaved, 0.7);
}

TEST(LearnedScheduler, CriticalPathWeightLearnedPositive) {
  // The trained function should rediscover CPS's core insight: prefer
  // long critical paths.
  MachineModel M = MachineModel::ppc7410();
  PreferenceFunction Fn = PreferenceLearner().train(
      smallBlocks("linpack", 61, 80, 11), M);
  EXPECT_GT(Fn.weights()[0], 0.0);
}
