//===- tests/serialization_test.cpp - ml/Serialization unit tests -------------===//

#include "ml/Serialization.h"

#include "ml/Ripper.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

using namespace schedfilter;

namespace {

RuleSet sampleRuleSet() {
  RuleSet RS(Label::NS);
  Rule R1;
  R1.Conclusion = Label::LS;
  R1.Conditions.push_back({FeatBBLen, false, 7.0});
  R1.Conditions.push_back({FeatCall, true, 0.0857});
  RS.addRule(R1);
  Rule R2;
  R2.Conclusion = Label::LS;
  R2.Conditions.push_back({FeatLoad, false, 0.3793});
  RS.addRule(R2);
  return RS;
}

} // namespace

TEST(Serialization, RoundTripPreservesSemantics) {
  RuleSet RS = sampleRuleSet();
  std::stringstream SS;
  writeRuleSet(RS, SS);
  ParseResult<RuleSet> Back = readRuleSet(SS);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->getDefaultClass(), RS.getDefaultClass());
  ASSERT_EQ(Back->size(), RS.size());
  for (size_t I = 0; I != RS.size(); ++I) {
    const Rule &A = RS.rules()[I];
    const Rule &B = Back->rules()[I];
    EXPECT_EQ(A.Conclusion, B.Conclusion);
    ASSERT_EQ(A.Conditions.size(), B.Conditions.size());
    for (size_t C = 0; C != A.Conditions.size(); ++C) {
      EXPECT_EQ(A.Conditions[C].Feature, B.Conditions[C].Feature);
      EXPECT_EQ(A.Conditions[C].IsLessEqual, B.Conditions[C].IsLessEqual);
      EXPECT_DOUBLE_EQ(A.Conditions[C].Threshold, B.Conditions[C].Threshold);
    }
  }
}

TEST(Serialization, RoundTripExactThresholds) {
  // %.17g must reproduce doubles bit-exactly.
  RuleSet RS(Label::NS);
  Rule R;
  R.Conclusion = Label::LS;
  R.Conditions.push_back({FeatLoad, false, 1.0 / 3.0});
  R.Conditions.push_back({FeatStore, true, 0.1 + 0.2});
  RS.addRule(R);
  std::stringstream SS;
  writeRuleSet(RS, SS);
  ParseResult<RuleSet> Back = readRuleSet(SS);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->rules()[0].Conditions[0].Threshold, 1.0 / 3.0);
  EXPECT_EQ(Back->rules()[0].Conditions[1].Threshold, 0.1 + 0.2);
}

TEST(Serialization, RoundTripExtremeThresholds) {
  // The far corners of double territory a learner can plausibly emit
  // (and a hand editor can type): denormals, the overflow boundary,
  // negatives, and huge magnitudes must all survive %.17g bit-exactly.
  const double Extremes[] = {
      5e-324,                  // smallest denormal
      2.2250738585072014e-308, // DBL_MIN
      1.7976931348623157e308,  // DBL_MAX
      -1.0 / 3.0,
      1e-300,
      123456789.12345679,
      -0.0,
  };
  RuleSet RS(Label::NS);
  Rule R;
  R.Conclusion = Label::LS;
  for (size_t I = 0; I != sizeof(Extremes) / sizeof(Extremes[0]); ++I)
    R.Conditions.push_back(
        {static_cast<unsigned>(I % NumFeatures), I % 2 == 0, Extremes[I]});
  RS.addRule(R);
  std::stringstream SS;
  writeRuleSet(RS, SS);
  ParseResult<RuleSet> Back = readRuleSet(SS);
  ASSERT_TRUE(Back.has_value()) << Back.error().str();
  const Rule &B = Back->rules()[0];
  for (size_t I = 0; I != sizeof(Extremes) / sizeof(Extremes[0]); ++I) {
    EXPECT_EQ(B.Conditions[I].Threshold, Extremes[I]) << "condition " << I;
    EXPECT_EQ(std::signbit(B.Conditions[I].Threshold),
              std::signbit(Extremes[I]))
        << "condition " << I; // -0.0 must stay negative zero
  }
}

TEST(Serialization, ErrorsCarryLineNumbers) {
  {
    std::stringstream SS("schedfilter-rules v1\n"
                         "default NS\n"
                         "rule LS :- bbLen >= 7\n"
                         "rule LS :- frobs >= 7\n");
    ParseResult<RuleSet> R = readRuleSet(SS);
    ASSERT_FALSE(R.has_value());
    EXPECT_EQ(R.error().Line, 4u);
    EXPECT_NE(R.error().Message.find("frobs"), std::string::npos);
  }
  {
    std::stringstream SS("schedfilter-rules v1\n"
                         "default NS\n"
                         "# comment\n"
                         "\n"
                         "rule LS :- bbLen >= seven\n");
    ParseResult<RuleSet> R = readRuleSet(SS);
    ASSERT_FALSE(R.has_value());
    EXPECT_EQ(R.error().Line, 5u); // comments and blanks still count
    EXPECT_NE(R.error().Message.find("seven"), std::string::npos);
  }
  {
    std::stringstream SS("wrong v9\n");
    ParseResult<RuleSet> R = readRuleSet(SS);
    ASSERT_FALSE(R.has_value());
    EXPECT_EQ(R.error().Line, 1u);
  }
}

TEST(Serialization, EmptyAntecedentRoundTrips) {
  RuleSet RS(Label::NS);
  Rule R;
  R.Conclusion = Label::LS; // matches everything
  RS.addRule(R);
  std::stringstream SS;
  writeRuleSet(RS, SS);
  ParseResult<RuleSet> Back = readRuleSet(SS);
  ASSERT_TRUE(Back.has_value());
  ASSERT_EQ(Back->size(), 1u);
  EXPECT_TRUE(Back->rules()[0].Conditions.empty());
}

TEST(Serialization, EmptyRuleSetRoundTrips) {
  RuleSet RS(Label::LS);
  std::stringstream SS;
  writeRuleSet(RS, SS);
  ParseResult<RuleSet> Back = readRuleSet(SS);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->size(), 0u);
  EXPECT_EQ(Back->getDefaultClass(), Label::LS);
}

TEST(Serialization, CommentsAndBlankLinesIgnored) {
  std::stringstream SS("schedfilter-rules v1\n"
                       "default NS\n"
                       "\n"
                       "# hand-tuned afterwards\n"
                       "rule LS :- bbLen >= 7\n");
  ParseResult<RuleSet> RS = readRuleSet(SS);
  ASSERT_TRUE(RS.has_value());
  EXPECT_EQ(RS->size(), 1u);
}

TEST(Serialization, RejectsBadHeader) {
  std::stringstream SS("wrong v9\ndefault NS\n");
  EXPECT_FALSE(readRuleSet(SS).has_value());
}

TEST(Serialization, RejectsUnknownFeature) {
  std::stringstream SS("schedfilter-rules v1\n"
                       "default NS\n"
                       "rule LS :- frobs >= 7\n");
  EXPECT_FALSE(readRuleSet(SS).has_value());
}

TEST(Serialization, RejectsBadOperatorOrValue) {
  std::stringstream A("schedfilter-rules v1\ndefault NS\n"
                      "rule LS :- bbLen == 7\n");
  EXPECT_FALSE(readRuleSet(A).has_value());
  std::stringstream B("schedfilter-rules v1\ndefault NS\n"
                      "rule LS :- bbLen >= seven\n");
  EXPECT_FALSE(readRuleSet(B).has_value());
}

TEST(Serialization, RejectsBadLabel) {
  std::stringstream SS("schedfilter-rules v1\ndefault MAYBE\n");
  EXPECT_FALSE(readRuleSet(SS).has_value());
}

TEST(Serialization, RejectsNonFiniteThresholds) {
  // strtod happily parses "nan", "inf" and friends, but a non-finite
  // threshold makes the condition never (or vacuously) match; the parser
  // must reject it with a line diagnostic naming the offending token.
  for (const char *Bad : {"nan", "NaN", "-nan", "inf", "INF", "-inf",
                          "infinity", "1e999", "-1e999"}) {
    std::stringstream SS(std::string("schedfilter-rules v1\n"
                                     "default NS\n"
                                     "rule LS :- bbLen >= ") +
                         Bad + "\n");
    ParseResult<RuleSet> R = readRuleSet(SS);
    ASSERT_FALSE(R.has_value()) << "accepted threshold '" << Bad << "'";
    EXPECT_EQ(R.error().Line, 3u) << Bad;
    EXPECT_NE(R.error().Message.find("finite"), std::string::npos) << Bad;
  }
}

TEST(Serialization, RejectsHexAndTrailingJunkThresholds) {
  for (const char *Bad : {"0x10", "0X10", "7junk", "1.5.2", "3,0"}) {
    std::stringstream SS(std::string("schedfilter-rules v1\n"
                                     "default NS\n"
                                     "rule LS :- loads <= ") +
                         Bad + "\n");
    ParseResult<RuleSet> R = readRuleSet(SS);
    EXPECT_FALSE(R.has_value()) << "accepted threshold '" << Bad << "'";
  }
}

TEST(Serialization, AcceptsOrdinaryNumericThresholds) {
  // The strict parse must not over-reject: plain, signed, scientific and
  // dotted forms are all legitimate learner/hand-editor output.
  for (const char *Good : {"7", "-7", "0.375", ".5", "1e-3", "1E3",
                           "5e-324", "-0.0", "00012"}) {
    std::stringstream SS(std::string("schedfilter-rules v1\n"
                                     "default NS\n"
                                     "rule LS :- stores <= ") +
                         Good + "\n");
    ParseResult<RuleSet> R = readRuleSet(SS);
    EXPECT_TRUE(R.has_value()) << "rejected threshold '" << Good
                               << "': " << R.error().str();
  }
}

TEST(Serialization, RuleSetFileRecordsRuleLines) {
  std::stringstream SS("schedfilter-rules v1\n"
                       "default NS\n"
                       "# comment\n"
                       "rule LS :- bbLen >= 7\n"
                       "\n"
                       "rule NS :- loads <= 0.5\n");
  ParseResult<RuleSetFile> F = readRuleSetFile(SS);
  ASSERT_TRUE(F.has_value()) << F.error().str();
  ASSERT_EQ(F->Rules.size(), 2u);
  ASSERT_EQ(F->RuleLines.size(), 2u);
  EXPECT_EQ(F->RuleLines[0], 4u);
  EXPECT_EQ(F->RuleLines[1], 6u);
}

TEST(Serialization, FeatureNameLookup) {
  EXPECT_EQ(findFeatureByName("bbLen"), static_cast<unsigned>(FeatBBLen));
  EXPECT_EQ(findFeatureByName("loads"), static_cast<unsigned>(FeatLoad));
  EXPECT_EQ(findFeatureByName("nothing"),
            static_cast<unsigned>(NumFeatures));
}

TEST(Serialization, TrainedFilterSurvivesRoundTrip) {
  // End-to-end: a real RIPPER filter serialized and reloaded must make
  // identical predictions.
  Dataset D("rt");
  Rng R(12);
  for (int I = 0; I != 600; ++I) {
    FeatureVector X{};
    X[FeatBBLen] = R.range(1, 20);
    X[FeatLoad] = R.uniform();
    X[FeatFloat] = R.uniform();
    bool Pos = X[FeatBBLen] >= 8 && X[FeatLoad] >= 0.3;
    D.add({X, Pos ? Label::LS : Label::NS});
  }
  RuleSet RS = Ripper().train(D);
  std::stringstream SS;
  writeRuleSet(RS, SS);
  ParseResult<RuleSet> Back = readRuleSet(SS);
  ASSERT_TRUE(Back.has_value());
  for (const Instance &I : D)
    EXPECT_EQ(RS.predict(I.X), Back->predict(I.X));
}
