//===- tests/compiled_filter_test.cpp - compiled-evaluator equivalence -------===//
//
// The compiled filter's contract is total: for EVERY feature vector --
// NaN coordinates included -- the flat cell form must return bit-exactly
// the interpreter's prediction AND its work count, and evaluateBatch must
// return, row for row, exactly what the scalar evaluator returns.  The
// corner-grid walk (analysis/RuleAnalysis.h) makes the first half a
// finite proof: every condition is an axis-aligned threshold compare, so
// one representative per threshold-cut cell of feature space covers every
// behaviorally distinct input.  Randomized rule sets and feature streams
// cover the batch layouts (fast-path mask word vs. the > 64-cell general
// path), and the Golden group pins the real trained filters and the
// serve-path ServiceStats byte-for-byte across evaluators.
//
//===----------------------------------------------------------------------===//

#include "filter/CompiledFilter.h"

#include "analysis/RuleAnalysis.h"
#include "filter/ScheduleFilter.h"
#include "harness/ParallelExperiments.h"
#include "ml/Ripper.h"
#include "runtime/CompileService.h"
#include "sched/SchedContext.h"
#include "support/Rng.h"
#include "workloads/ProgramGenerator.h"

#include "RuleSetIdentity.h"
#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace schedfilter;
using namespace schedfilter::test;

namespace {

/// Restores the process-wide evaluator default on scope exit, so a test
/// that flips it cannot leak the mode into later tests.
struct EvalModeGuard {
  FilterEval Saved = ScheduleFilter::defaultEval();
  ~EvalModeGuard() { ScheduleFilter::setDefaultEval(Saved); }
};

/// Proves (exhaustively when the corner grid fits \p MaxPoints) that the
/// compiled form of \p RS is prediction- and work-equivalent to the
/// interpreter, NaN coordinates included.
void expectEquivalentOnCornerGrid(const RuleSet &RS,
                                  uint64_t MaxPoints = 1u << 20) {
  CompiledFilter C(RS);
  uint64_t Mismatches = 0;
  CornerGridWalk W = forEachCornerPoint(
      {&RS}, /*WithNaN=*/true, MaxPoints, [&](const FeatureVector &X) {
        bool InterpLS = RS.predict(X) == Label::LS;
        uint64_t InterpWork = RS.predictionWork(X);
        CompiledFilter::Decision D = C.evaluate(X);
        if (D.ScheduleLS != InterpLS || D.Work != InterpWork) {
          ++Mismatches;
          return false; // first counterexample is enough
        }
        return true;
      });
  EXPECT_EQ(Mismatches, 0u);
  EXPECT_GT(W.PointsVisited, 0u);
}

/// Asserts evaluateBatch over \p Rows returns, row for row, exactly what
/// the scalar evaluator (and therefore the interpreter) returns.
void expectBatchMatchesScalar(const RuleSet &RS,
                              const std::vector<FeatureVector> &Rows) {
  CompiledFilter C(RS);
  FeatureMatrix M;
  for (const FeatureVector &X : Rows)
    M.appendRow(X);
  std::vector<unsigned char> LS(Rows.size(), 0xCC);
  std::vector<uint64_t> Work(Rows.size(), ~uint64_t{0});
  CompiledFilter::BatchScratch Scratch;
  C.evaluateBatch(M, Scratch, LS.data(), Work.data());
  for (size_t I = 0; I != Rows.size(); ++I) {
    CompiledFilter::Decision D = C.evaluate(Rows[I]);
    ASSERT_EQ(LS[I] != 0, D.ScheduleLS) << "row " << I;
    ASSERT_EQ(Work[I], D.Work) << "row " << I;
    ASSERT_EQ(D.ScheduleLS, RS.predict(Rows[I]) == Label::LS) << "row " << I;
    ASSERT_EQ(D.Work, RS.predictionWork(Rows[I])) << "row " << I;
  }
}

/// A deterministic random rule set.  Thresholds come from a small pool so
/// rules overlap, share predicate rows, and contain within-rule redundant
/// conditions -- the shapes that stress interning and work counting.
RuleSet randomRuleSet(Rng &R, size_t NumRules, size_t MaxConds,
                      bool AllowNaNThreshold) {
  static const double Pool[] = {-1.0, 0.0,  0.125, 0.25, 0.5,
                                1.0,  4.0,  5.0,   16.0, 1e6};
  RuleSet RS(R.below(2) ? Label::LS : Label::NS);
  for (size_t I = 0; I != NumRules; ++I) {
    Rule Ru;
    Ru.Conclusion = R.below(2) ? Label::LS : Label::NS;
    size_t NC = R.below(static_cast<uint32_t>(MaxConds + 1));
    for (size_t C = 0; C != NC; ++C) {
      Condition Cond;
      Cond.Feature = static_cast<FeatureIndex>(R.below(NumFeatures));
      Cond.IsLessEqual = R.below(2) != 0;
      Cond.Threshold = AllowNaNThreshold && R.below(16) == 0
                           ? std::numeric_limits<double>::quiet_NaN()
                           : Pool[R.below(10)];
      Ru.Conditions.push_back(Cond);
    }
    RS.addRule(std::move(Ru));
  }
  return RS;
}

/// Random feature vectors, salted with the values that break naive
/// evaluators: NaN, infinities, signed zero, and exact pool thresholds.
std::vector<FeatureVector> randomVectors(Rng &R, size_t N) {
  static const double Specials[] = {
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      -0.0,
      0.0,
      0.25,
      0.5,
      1.0,
      5.0};
  std::vector<FeatureVector> Rows(N);
  for (FeatureVector &X : Rows)
    for (double &V : X)
      V = R.below(4) == 0
              ? Specials[R.below(9)]
              : static_cast<double>(R.range(-8, 64)) * 0.125;
  return Rows;
}

RuleSet basicFilter() {
  RuleSet RS(Label::NS);
  Rule R;
  R.Conclusion = Label::LS;
  R.Conditions.push_back({FeatBBLen, false, 5.0});
  R.Conditions.push_back({FeatLoad, false, 0.2});
  RS.addRule(std::move(R));
  return RS;
}

} // namespace

TEST(CompiledFilter, EmptyRuleSet) {
  RuleSet RS(Label::NS);
  CompiledFilter C(RS);
  EXPECT_EQ(C.numCells(), 0u);
  FeatureVector X{};
  CompiledFilter::Decision D = C.evaluate(X);
  EXPECT_FALSE(D.ScheduleLS);
  EXPECT_EQ(D.Work, 1u); // the interpreter's default fall-through
  expectEquivalentOnCornerGrid(RS);
  Rng R(1);
  expectBatchMatchesScalar(RS, randomVectors(R, 300));
}

TEST(CompiledFilter, SingleRule) {
  expectEquivalentOnCornerGrid(basicFilter());
  Rng R(2);
  expectBatchMatchesScalar(basicFilter(), randomVectors(R, 300));
}

TEST(CompiledFilter, EmptyAntecedentRuleMatchesEverything) {
  // An empty-antecedent rule matches every input with zero condition
  // work; rules behind it are unreachable.  Both positions (first and
  // mid-list) exercise the rule-entry and guard-bit special cases.
  for (size_t Position : {size_t{0}, size_t{1}}) {
    RuleSet RS(Label::NS);
    if (Position == 1)
      RS = basicFilter();
    Rule Always;
    Always.Conclusion = Label::LS;
    RS.addRule(std::move(Always));
    Rule Behind;
    Behind.Conclusion = Label::NS;
    Behind.Conditions.push_back({FeatBBLen, true, 3.0});
    RS.addRule(std::move(Behind));
    expectEquivalentOnCornerGrid(RS);
    Rng R(3 + Position);
    expectBatchMatchesScalar(RS, randomVectors(R, 300));
  }
}

TEST(CompiledFilter, NaNThresholdConditionNeverMatches) {
  RuleSet RS(Label::NS);
  Rule Dead;
  Dead.Conclusion = Label::LS;
  Dead.Conditions.push_back({FeatBBLen, false, 2.0});
  Dead.Conditions.push_back(
      {FeatLoad, true, std::numeric_limits<double>::quiet_NaN()});
  RS.addRule(std::move(Dead));
  Rule Live;
  Live.Conclusion = Label::LS;
  Live.Conditions.push_back({FeatBBLen, false, 8.0});
  RS.addRule(std::move(Live));
  expectEquivalentOnCornerGrid(RS);
  // The NaN compare fails with its short-circuit work still counted.
  FeatureVector X{};
  X[FeatBBLen] = 10.0;
  CompiledFilter C(RS);
  EXPECT_EQ(C.evaluate(X).Work, RS.predictionWork(X));
  EXPECT_TRUE(C.evaluate(X).ScheduleLS);
  Rng R(5);
  expectBatchMatchesScalar(RS, randomVectors(R, 300));
}

TEST(CompiledFilter, MaxConditionRuleTakesGeneralBatchPath) {
  // 80 conditions in one rule: past the one-mask-word fast path, so the
  // batch evaluator must fall back to the predicate-row-major layout.
  Rng Seed(6);
  RuleSet RS(Label::NS);
  Rule Big;
  Big.Conclusion = Label::LS;
  for (size_t C = 0; C != 80; ++C)
    Big.Conditions.push_back(
        {static_cast<FeatureIndex>(C % NumFeatures), C % 2 == 0,
         static_cast<double>(C % 7) * 0.25 - 0.5});
  RS.addRule(std::move(Big));
  Rule Tail;
  Tail.Conclusion = Label::LS;
  Tail.Conditions.push_back({FeatBBLen, false, 4.0});
  RS.addRule(std::move(Tail));
  CompiledFilter C(RS);
  EXPECT_EQ(C.numCells(), 81u);
  expectEquivalentOnCornerGrid(RS, 1u << 16); // sampled: grid is huge
  expectBatchMatchesScalar(RS, randomVectors(Seed, 500));
}

TEST(CompiledFilter, FastPathBoundary) {
  // Cells + one guard per rule + the default bit must fit 64 bits for
  // the mask-word fast path; one condition either side of the boundary
  // must stay bit-identical.
  for (size_t Conds : {size_t{61}, size_t{62}, size_t{63}}) {
    RuleSet RS(Label::LS);
    Rule R1;
    R1.Conclusion = Label::NS;
    for (size_t C = 0; C != Conds; ++C)
      R1.Conditions.push_back({static_cast<FeatureIndex>(C % NumFeatures),
                               C % 3 != 0,
                               static_cast<double>(C % 5) * 0.5});
    RS.addRule(std::move(R1));
    Rng R(7 + Conds);
    expectBatchMatchesScalar(RS, randomVectors(R, 400));
  }
}

TEST(CompiledFilter, RandomizedRuleSets) {
  // 60 random rule sets spanning empty to many-rule, NaN thresholds
  // included: corner-grid equivalence plus batch identity on a salted
  // random stream.  Deterministic seeds -- failures reproduce.
  for (uint64_t Seed = 0; Seed != 60; ++Seed) {
    Rng R(0xC0FFEE + Seed);
    RuleSet RS = randomRuleSet(R, R.below(7), 6, /*AllowNaNThreshold=*/true);
    expectEquivalentOnCornerGrid(RS, 1u << 16);
    expectBatchMatchesScalar(RS, randomVectors(R, 200));
  }
}

TEST(CompiledFilter, CanonicalRulesSharesAnalyzerNormalization) {
  // canonicalRules must be exactly the within-rule half of sf-lint --fix:
  // on a set with redundant conditions but no dead/shadowed rules it is
  // bit-identical to normalizeRuleSet's output, predict-equivalent to the
  // original (proved on the corner grid), and idempotent.
  RuleSet RS(Label::NS);
  Rule R1;
  R1.Conclusion = Label::LS;
  R1.NumCorrect = 11;
  R1.NumIncorrect = 2;
  R1.Conditions.push_back({FeatBBLen, false, 5.0});
  R1.Conditions.push_back({FeatBBLen, false, 3.0}); // looser: subsumed
  R1.Conditions.push_back({FeatLoad, true, 0.5});
  R1.Conditions.push_back({FeatLoad, true, 0.5}); // duplicate: subsumed
  RS.addRule(std::move(R1));
  Rule R2;
  R2.Conclusion = Label::LS;
  R2.Conditions.push_back({FeatStore, true, 0.25});
  RS.addRule(std::move(R2));

  RuleSet Canon = CompiledFilter::canonicalRules(RS);
  EXPECT_EQ(Canon.totalConditions(), RS.totalConditions() - 2);
  EXPECT_TRUE(
      identicalRuleSets(Canon, normalizeRuleSet(RS, analyzeRuleSet(RS))));
  EXPECT_TRUE(identicalRuleSets(Canon, CompiledFilter::canonicalRules(Canon)));
  EquivalenceCheck E = checkPredictEquivalence(RS, Canon);
  EXPECT_TRUE(E.Equivalent);
  EXPECT_TRUE(E.Exhaustive);

  // The compiler intentionally evaluates the ORIGINAL conditions: work
  // counts include the redundant compares, exactly like the interpreter.
  FeatureVector X{};
  X[FeatBBLen] = 10.0;
  X[FeatLoad] = 0.1;
  EXPECT_EQ(CompiledFilter(RS).evaluate(X).Work, RS.predictionWork(X));
  EXPECT_GT(RS.predictionWork(X), Canon.predictionWork(X));
}

TEST(FeatureMatrix, ColumnMajorBitIdentity) {
  // appendBlock must store bit-for-bit what extractFeatures returns, in
  // both row and column views, and extractFeaturesBatch must sum exactly
  // the per-block featureExtractionWork.
  std::vector<BasicBlock> Blocks = {makeIlpFloatBlock(), makeChainBlock(),
                                    makeTrivialBlock()};
  std::vector<const BasicBlock *> Ptrs;
  for (const BasicBlock &BB : Blocks)
    Ptrs.push_back(&BB);

  FeatureMatrix M;
  uint64_t Work = extractFeaturesBatch(Ptrs.data(), Ptrs.size(), M);
  ASSERT_EQ(M.size(), Blocks.size());

  uint64_t ExpectWork = 0;
  for (size_t I = 0; I != Blocks.size(); ++I) {
    FeatureVector X = extractFeatures(Blocks[I]);
    ExpectWork += featureExtractionWork(Blocks[I]);
    for (unsigned F = 0; F != NumFeatures; ++F) {
      EXPECT_TRUE(sameBits(M.row(I)[F], X[F])) << "row " << I << " f " << F;
      EXPECT_TRUE(sameBits(M.column(F)[I], X[F])) << "row " << I << " f " << F;
    }
  }
  EXPECT_EQ(Work, ExpectWork);

  // Reuse keeps capacity but must re-fill identically.
  FeatureMatrix &Reused = M;
  uint64_t Work2 = extractFeaturesBatch(Ptrs.data(), Ptrs.size(), Reused);
  EXPECT_EQ(Work2, ExpectWork);
  ASSERT_EQ(Reused.size(), Blocks.size());
}

TEST(ScheduleFilter, ConstOverloadSharesTheOneEvalPath) {
  ScheduleFilter F(basicFilter());
  const ScheduleFilter &CF = F;
  BasicBlock A = makeIlpFloatBlock(), B = makeTrivialBlock();
  // The const, no-stats query returns the same decision and leaves the
  // counters untouched.
  bool ConstA = CF.shouldSchedule(A), ConstB = CF.shouldSchedule(B);
  EXPECT_EQ(F.numScheduleDecisions() + F.numSkipDecisions(), 0u);
  EXPECT_EQ(F.workUnits(), 0u);
  EXPECT_EQ(F.shouldSchedule(A), ConstA);
  EXPECT_EQ(F.shouldSchedule(B), ConstB);
  EXPECT_EQ(F.numScheduleDecisions() + F.numSkipDecisions(), 2u);
}

TEST(ScheduleFilter, EvaluatorModesAgreeBlockForBlock) {
  Program P = ProgramGenerator(shrinkSuite(specjvm98Suite(), 6)[0]).generate();
  RuleSet Rules = basicFilter();
  ScheduleFilter Compiled(Rules, FilterEval::Compiled);
  ScheduleFilter Interp(Rules, FilterEval::Interpreted);
  P.forEachBlock([&](const BasicBlock &BB) {
    ASSERT_EQ(Compiled.shouldSchedule(BB), Interp.shouldSchedule(BB));
  });
  EXPECT_EQ(Compiled.numScheduleDecisions(), Interp.numScheduleDecisions());
  EXPECT_EQ(Compiled.numSkipDecisions(), Interp.numSkipDecisions());
  EXPECT_EQ(Compiled.workUnits(), Interp.workUnits());
  EXPECT_GT(Compiled.workUnits(), 0u);
}

TEST(ScheduleFilter, BatchMatchesScalarLoopInBothModes) {
  Program P = ProgramGenerator(shrinkSuite(specjvm98Suite(), 6)[1]).generate();
  std::vector<const BasicBlock *> Blocks;
  P.forEachBlock([&](const BasicBlock &BB) { Blocks.push_back(&BB); });
  ASSERT_FALSE(Blocks.empty());

  for (FilterEval Mode : {FilterEval::Compiled, FilterEval::Interpreted}) {
    ScheduleFilter Batch(basicFilter(), Mode);
    ScheduleFilter Scalar(basicFilter(), Mode);
    SchedContext Ctx;
    std::vector<char> Decisions;
    Batch.shouldScheduleBatch(Blocks, Ctx, Decisions);
    ASSERT_EQ(Decisions.size(), Blocks.size());
    for (size_t I = 0; I != Blocks.size(); ++I)
      ASSERT_EQ(Decisions[I] != 0, Scalar.shouldSchedule(*Blocks[I]))
          << "block " << I;
    EXPECT_EQ(Batch.numScheduleDecisions(), Scalar.numScheduleDecisions());
    EXPECT_EQ(Batch.numSkipDecisions(), Scalar.numSkipDecisions());
    EXPECT_EQ(Batch.workUnits(), Scalar.workUnits());
  }
}

// --- Golden: the real trained filters and the serve path (skipped in the
// sanitizer CI lane like every other Golden test). ---

TEST(Golden, CompiledFilterEquivalentForTrainedFilters) {
  // The paper-setting filter (t = 0, every SPECjvm98 stand-in pooled)
  // plus all nine LOOCV fold filters: corner-grid prediction- and
  // work-equivalence, and batch identity over the real block stream.
  ExperimentEngine Engine(4);
  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkRun> Runs =
      Engine.generateSuiteData(specjvm98Suite(), Model);
  std::vector<Dataset> Labeled = Engine.labelSuite(Runs, 0.0);
  Dataset Pooled("suite");
  for (const Dataset &D : Labeled)
    Pooled.append(D);

  std::vector<RuleSet> Filters;
  Filters.push_back(Ripper().train(Pooled, Engine.pool()));
  for (const LoocvFold &F :
       leaveOneOut(Labeled, ripperLearner(), Engine.pool()))
    Filters.push_back(F.Filter);

  std::vector<FeatureVector> Rows;
  for (const BenchmarkRun &R : Runs)
    R.Prog.forEachBlock(
        [&](const BasicBlock &BB) { Rows.push_back(extractFeatures(BB)); });

  for (const RuleSet &RS : Filters) {
    expectEquivalentOnCornerGrid(RS, 1u << 18);
    expectBatchMatchesScalar(RS, Rows);
  }
}

TEST(Golden, ServeStatsByteIdenticalAcrossEvaluators) {
  // The serve-path pin: every deterministic ServiceStats field must be
  // byte-identical whichever evaluator runs, at jobs 1 and jobs 4.
  EvalModeGuard Guard;
  MachineModel Model = MachineModel::ppc7410();
  const BenchmarkSpec &Spec = *findBenchmarkSpec("db");
  std::vector<BenchmarkRun> Runs = generateSuiteData({Spec}, Model);
  RuleSet Rules = ripperLearner()(labelSuite(Runs, 0.0)[0]);
  ServiceConfig Cfg;
  Cfg.StreamSeed = invocationStreamSeed(Spec.Seed);

  std::vector<ServeComparison> PerMode;
  for (FilterEval Mode : {FilterEval::Compiled, FilterEval::Interpreted}) {
    ScheduleFilter::setDefaultEval(Mode);
    for (int Jobs : {1, 4}) {
      TaskPool Pool(static_cast<size_t>(Jobs));
      PerMode.push_back(
          runServeComparison(Runs[0].Prog, Model, Cfg, Rules, Pool));
    }
  }
  ASSERT_EQ(PerMode.size(), 4u);
  for (size_t I = 1; I != PerMode.size(); ++I) {
    EXPECT_TRUE(PerMode[I].Always == PerMode[0].Always) << "run " << I;
    EXPECT_TRUE(PerMode[I].Filtered == PerMode[0].Filtered) << "run " << I;
  }
}
