//===- tests/decisiontree_test.cpp - ml/DecisionTree unit tests ---------------===//

#include "ml/DecisionTree.h"

#include "ml/Metrics.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace schedfilter;

namespace {

FeatureVector fv(double BBLen, double Loads = 0.0, double Floats = 0.0) {
  FeatureVector X{};
  X[FeatBBLen] = BBLen;
  X[FeatLoad] = Loads;
  X[FeatFloat] = Floats;
  return X;
}

Dataset thresholdData(size_t N, uint64_t Seed, double Split = 8.0) {
  Dataset D("thresh");
  Rng R(Seed);
  for (size_t I = 0; I != N; ++I) {
    double BBLen = R.range(1, 20);
    D.add({fv(BBLen, R.uniform()), BBLen >= Split ? Label::LS : Label::NS});
  }
  return D;
}

Dataset xorishData(size_t N, uint64_t Seed) {
  // LS iff exactly one of (bbLen >= 10, loads >= 0.5): a concept a single
  // split cannot express, but a depth-2 tree can.
  Dataset D("xorish");
  Rng R(Seed);
  for (size_t I = 0; I != N; ++I) {
    double BBLen = R.range(1, 20);
    double Loads = R.uniform();
    bool A = BBLen >= 10.0, B = Loads >= 0.5;
    D.add({fv(BBLen, Loads), (A != B) ? Label::LS : Label::NS});
  }
  return D;
}

} // namespace

TEST(DecisionTree, EmptyDataPredictsNS) {
  DecisionTree T = DecisionTree::train(Dataset("e"));
  EXPECT_EQ(T.predict(fv(100)), Label::NS);
  EXPECT_EQ(T.numSplits(), 0u);
  EXPECT_EQ(T.numLeaves(), 1u);
}

TEST(DecisionTree, LearnsSimpleThreshold) {
  Dataset D = thresholdData(600, 1);
  DecisionTree T = DecisionTree::train(D);
  size_t Errors = 0;
  for (const Instance &I : D)
    Errors += T.predict(I.X) != I.Y;
  EXPECT_EQ(Errors, 0u);
  EXPECT_EQ(T.numSplits(), 1u) << "one threshold should need one split";
}

TEST(DecisionTree, LearnsXorishConcept) {
  Dataset D = xorishData(1200, 2);
  DecisionTree T = DecisionTree::train(D);
  size_t Errors = 0;
  for (const Instance &I : D)
    Errors += T.predict(I.X) != I.Y;
  EXPECT_LT(static_cast<double>(Errors) / static_cast<double>(D.size()),
            0.03);
  EXPECT_GE(T.depth(), 2u);
}

TEST(DecisionTree, GeneralizesToFreshSamples) {
  DecisionTree T = DecisionTree::train(xorishData(1200, 3));
  Dataset Test = xorishData(600, 33);
  size_t Errors = 0;
  for (const Instance &I : Test)
    Errors += T.predict(I.X) != I.Y;
  EXPECT_LT(static_cast<double>(Errors) / static_cast<double>(Test.size()),
            0.06);
}

TEST(DecisionTree, RespectsDepthCap) {
  DecisionTreeOptions O;
  O.MaxDepth = 2;
  DecisionTree T = DecisionTree::train(xorishData(800, 4), O);
  EXPECT_LE(T.depth(), 2u);
}

TEST(DecisionTree, MinLeafSizeLimitsGrowth) {
  DecisionTreeOptions Small, Large;
  Small.MinLeafSize = 2;
  Large.MinLeafSize = 200;
  Dataset D = xorishData(800, 5);
  EXPECT_GE(DecisionTree::train(D, Small).numLeaves(),
            DecisionTree::train(D, Large).numLeaves());
}

TEST(DecisionTree, PruningShrinksNoisyTrees) {
  // Pure noise: pruning should collapse to (nearly) a single leaf.
  Dataset D("noise");
  Rng R(6);
  for (int I = 0; I != 800; ++I)
    D.add({fv(R.range(1, 20), R.uniform()),
           R.chance(0.3) ? Label::LS : Label::NS});
  DecisionTree T = DecisionTree::train(D);
  EXPECT_LE(T.numLeaves(), 12u);
}

TEST(DecisionTree, ToRuleSetEquivalentToTree) {
  // Leaves are disjoint, so the extracted rules must predict identically
  // to the tree on any input.
  Dataset D = xorishData(900, 7);
  DecisionTree T = DecisionTree::train(D);
  RuleSet RS = T.toRuleSet(D);
  Rng R(77);
  for (int I = 0; I != 500; ++I) {
    FeatureVector X = fv(R.range(1, 20), R.uniform(), R.uniform());
    EXPECT_EQ(T.predict(X), RS.predict(X));
  }
}

TEST(DecisionTree, RuleSetCoverageAnnotated) {
  Dataset D = thresholdData(400, 8);
  RuleSet RS = DecisionTree::train(D).toRuleSet(D);
  size_t Claimed = 0;
  for (const Rule &R : RS.rules())
    Claimed += R.NumCorrect + R.NumIncorrect;
  EXPECT_EQ(Claimed, D.countLabel(Label::LS)); // perfect split: LS leaves
}

TEST(DecisionTree, ToStringRendersStructure) {
  Dataset D = thresholdData(400, 9);
  std::string S = DecisionTree::train(D).toString();
  EXPECT_NE(S.find("if bbLen <= "), std::string::npos);
  EXPECT_NE(S.find("-> list"), std::string::npos);
  EXPECT_NE(S.find("-> orig"), std::string::npos);
}

TEST(DecisionTree, LearnerAdapterWorksInLoocv) {
  Dataset D = thresholdData(500, 10);
  RuleSet RS = learnDecisionTreeRules(D);
  EXPECT_LE(errorRatePercent(RS, D), 1.0);
}

// Property: the tree never does worse on training data than the majority
// class, across seeds.
class TreeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreeProperty, NeverWorseThanMajority) {
  Dataset D = xorishData(400, GetParam());
  DecisionTree T = DecisionTree::train(D);
  size_t Errors = 0;
  for (const Instance &I : D)
    Errors += T.predict(I.X) != I.Y;
  EXPECT_LE(Errors,
            std::min(D.countLabel(Label::LS), D.countLabel(Label::NS)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeProperty,
                         ::testing::Values(10, 20, 30, 40, 50));
