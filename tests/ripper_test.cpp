//===- tests/ripper_test.cpp - ml/Ripper unit tests --------------------------===//

#include "ml/Ripper.h"

#include "ml/Metrics.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace schedfilter;

namespace {

FeatureVector fv(double BBLen, double Loads = 0.0, double Floats = 0.0) {
  FeatureVector X{};
  X[FeatBBLen] = BBLen;
  X[FeatLoad] = Loads;
  X[FeatFloat] = Floats;
  return X;
}

/// Linearly separable data: LS iff bbLen >= 8.  Minority LS.
Dataset separableData(size_t N, uint64_t Seed) {
  Dataset D("separable");
  Rng R(Seed);
  for (size_t I = 0; I != N; ++I) {
    bool Big = R.chance(0.25);
    double BBLen = Big ? R.range(8, 30) : R.range(1, 7);
    D.add({fv(BBLen, R.uniform(), R.uniform()),
           Big ? Label::LS : Label::NS});
  }
  return D;
}

/// Conjunctive concept: LS iff bbLen >= 8 AND loads >= 0.3.
Dataset conjunctiveData(size_t N, uint64_t Seed) {
  Dataset D("conj");
  Rng R(Seed);
  for (size_t I = 0; I != N; ++I) {
    double BBLen = R.range(1, 20);
    double Loads = R.uniform();
    bool Pos = BBLen >= 8.0 && Loads >= 0.3;
    D.add({fv(BBLen, Loads), Pos ? Label::LS : Label::NS});
  }
  return D;
}

/// Disjunctive concept (needs at least two rules): LS iff bbLen >= 15 OR
/// floats >= 0.7.
Dataset disjunctiveData(size_t N, uint64_t Seed) {
  Dataset D("disj");
  Rng R(Seed);
  for (size_t I = 0; I != N; ++I) {
    double BBLen = R.range(1, 20);
    double Floats = R.uniform();
    bool Pos = BBLen >= 15.0 || Floats >= 0.7;
    D.add({fv(BBLen, 0.0, Floats), Pos ? Label::LS : Label::NS});
  }
  return D;
}

} // namespace

TEST(Ripper, EmptyDataGivesEmptyNSRuleSet) {
  RuleSet RS = Ripper().train(Dataset("empty"));
  EXPECT_EQ(RS.size(), 0u);
  EXPECT_EQ(RS.getDefaultClass(), Label::NS);
}

TEST(Ripper, SingleClassAllNS) {
  Dataset D("allns");
  for (int I = 0; I != 50; ++I)
    D.add({fv(I % 10 + 1), Label::NS});
  RuleSet RS = Ripper().train(D);
  EXPECT_EQ(RS.size(), 0u);
  EXPECT_EQ(RS.getDefaultClass(), Label::NS);
  EXPECT_EQ(evaluate(RS, D).errors(), 0u);
}

TEST(Ripper, SingleClassAllLS) {
  Dataset D("allls");
  for (int I = 0; I != 50; ++I)
    D.add({fv(I % 10 + 1), Label::LS});
  RuleSet RS = Ripper().train(D);
  EXPECT_EQ(RS.getDefaultClass(), Label::LS);
  EXPECT_EQ(evaluate(RS, D).errors(), 0u);
}

TEST(Ripper, LearnsSeparableConceptExactly) {
  Dataset D = separableData(800, 42);
  RuleSet RS = Ripper().train(D);
  // A single threshold on bbLen separates the classes perfectly; RIPPER
  // should get training error (near) zero.
  EXPECT_LE(errorRatePercent(RS, D), 0.5);
  EXPECT_GE(RS.size(), 1u);
}

TEST(Ripper, GeneralizesSeparableConcept) {
  RuleSet RS = Ripper().train(separableData(800, 42));
  Dataset Test = separableData(400, 4242);
  EXPECT_LE(errorRatePercent(RS, Test), 2.0);
}

TEST(Ripper, LearnsConjunction) {
  Dataset D = conjunctiveData(1000, 7);
  RuleSet RS = Ripper().train(D);
  EXPECT_LE(errorRatePercent(RS, D), 2.0);
  Dataset Test = conjunctiveData(500, 77);
  EXPECT_LE(errorRatePercent(RS, Test), 4.0);
}

TEST(Ripper, LearnsDisjunctionWithMultipleRules) {
  Dataset D = disjunctiveData(1200, 13);
  RuleSet RS = Ripper().train(D);
  EXPECT_LE(errorRatePercent(RS, D), 3.0);
  // A disjunction of two unrelated tests needs at least two rules.
  EXPECT_GE(RS.size(), 2u);
}

TEST(Ripper, MinorityClassGetsTheRules) {
  Dataset D = separableData(600, 3); // LS minority by construction
  RuleSet RS = Ripper().train(D);
  EXPECT_EQ(RS.getDefaultClass(), Label::NS);
  for (const Rule &R : RS.rules())
    EXPECT_EQ(R.Conclusion, Label::LS);
}

TEST(Ripper, DeterministicGivenSeed) {
  Dataset D = conjunctiveData(600, 5);
  RuleSet A = Ripper().train(D);
  RuleSet B = Ripper().train(D);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    ASSERT_EQ(A.rules()[I].size(), B.rules()[I].size());
    for (size_t C = 0; C != A.rules()[I].size(); ++C) {
      EXPECT_EQ(A.rules()[I].Conditions[C].Feature,
                B.rules()[I].Conditions[C].Feature);
      EXPECT_EQ(A.rules()[I].Conditions[C].Threshold,
                B.rules()[I].Conditions[C].Threshold);
    }
  }
}

TEST(Ripper, SeedChangesSplitsButNotQuality) {
  Dataset D = conjunctiveData(800, 11);
  RipperOptions O1, O2;
  O1.Seed = 1;
  O2.Seed = 999;
  RuleSet A = Ripper(O1).train(D);
  RuleSet B = Ripper(O2).train(D);
  EXPECT_LE(errorRatePercent(A, D), 3.0);
  EXPECT_LE(errorRatePercent(B, D), 3.0);
}

TEST(Ripper, RobustToLabelNoise) {
  // 8% label noise: training error should stay near the noise floor, not
  // collapse to memorization (MDL pruning at work).
  Dataset D("noisy");
  Rng R(21);
  for (int I = 0; I != 1500; ++I) {
    double BBLen = R.range(1, 20);
    bool Pos = BBLen >= 10.0;
    if (R.chance(0.08))
      Pos = !Pos;
    D.add({fv(BBLen, R.uniform()), Pos ? Label::LS : Label::NS});
  }
  RuleSet RS = Ripper().train(D);
  double Err = errorRatePercent(RS, D);
  EXPECT_LE(Err, 12.0);
  // The rule list should stay compact despite the noise.
  EXPECT_LE(RS.size(), 12u);
}

TEST(Ripper, BeatsMajorityOnImbalancedData) {
  Dataset D = separableData(1000, 17);
  RuleSet RS = Ripper().train(D);
  double MajorityErr =
      100.0 * static_cast<double>(D.countLabel(Label::LS)) /
      static_cast<double>(D.size());
  EXPECT_LT(errorRatePercent(RS, D), MajorityErr);
}

TEST(Ripper, CoverageCountsConsistent) {
  Dataset D = conjunctiveData(700, 29);
  RuleSet RS = Ripper().train(D);
  // train() annotates coverage; claims plus defaults must account for
  // every instance exactly once.
  size_t DC = 0, DI = 0;
  RuleSet Copy = RS;
  Copy.annotateCoverage(D, DC, DI);
  size_t Sum = DC + DI;
  for (const Rule &R : Copy.rules())
    Sum += R.NumCorrect + R.NumIncorrect;
  EXPECT_EQ(Sum, D.size());
  // And the pre-annotated counts match a recount.
  for (size_t I = 0; I != RS.size(); ++I) {
    EXPECT_EQ(RS.rules()[I].NumCorrect, Copy.rules()[I].NumCorrect);
    EXPECT_EQ(RS.rules()[I].NumIncorrect, Copy.rules()[I].NumIncorrect);
  }
}

TEST(Ripper, RespectsRuleCountCap) {
  RipperOptions O;
  O.MaxRules = 3;
  Dataset D = disjunctiveData(800, 31);
  RuleSet RS = Ripper(O).train(D);
  EXPECT_LE(RS.size(), 3u);
}

TEST(Ripper, RespectsConditionCap) {
  RipperOptions O;
  O.MaxConditionsPerRule = 2;
  Dataset D = conjunctiveData(800, 37);
  RuleSet RS = Ripper(O).train(D);
  for (const Rule &R : RS.rules())
    EXPECT_LE(R.size(), 2u);
}

TEST(Ripper, ZeroOptimizePassesStillWorks) {
  RipperOptions O;
  O.OptimizePasses = 0;
  Dataset D = separableData(500, 41);
  RuleSet RS = Ripper(O).train(D);
  EXPECT_LE(errorRatePercent(RS, D), 2.0);
}

// Property sweep: across seeds, RIPPER never performs worse on its own
// training data than always predicting the majority class.
class RipperProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RipperProperty, NeverWorseThanMajority) {
  Dataset D = disjunctiveData(500, GetParam());
  RuleSet RS = Ripper().train(D);
  size_t Minority = std::min(D.countLabel(Label::LS),
                             D.countLabel(Label::NS));
  EXPECT_LE(evaluate(RS, D).errors(), Minority);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RipperProperty,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128));
