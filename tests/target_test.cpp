//===- tests/target_test.cpp - target/ unit tests ---------------------------===//

#include "target/MachineModel.h"

#include <gtest/gtest.h>

using namespace schedfilter;

TEST(MachineModel, Ppc7410UnitInventory) {
  MachineModel M = MachineModel::ppc7410();
  // 2 integer + FPU + LSU + BPU + SU.
  EXPECT_EQ(M.getNumUnits(), 6u);
  EXPECT_EQ(M.getName(), "ppc7410");
}

TEST(MachineModel, DissimilarIntegerUnits) {
  MachineModel M = MachineModel::ppc7410();
  // Simple integer ops can go on either integer unit; complex ones (mul,
  // div) only on the second.
  EXPECT_EQ(M.unitsFor(FuClass::IntSimple).size(), 2u);
  EXPECT_EQ(M.unitsFor(FuClass::IntComplex).size(), 1u);
}

TEST(MachineModel, SingleUnitClasses) {
  MachineModel M = MachineModel::ppc7410();
  EXPECT_EQ(M.unitsFor(FuClass::Float).size(), 1u);
  EXPECT_EQ(M.unitsFor(FuClass::LoadStore).size(), 1u);
  EXPECT_EQ(M.unitsFor(FuClass::Branch).size(), 1u);
  EXPECT_EQ(M.unitsFor(FuClass::System).size(), 1u);
}

TEST(MachineModel, IssueRules) {
  MachineModel M = MachineModel::ppc7410();
  // "One branch and two non-branch instructions per cycle."
  EXPECT_EQ(M.getMaxIssueNonBranch(), 2u);
  EXPECT_EQ(M.getMaxIssueBranch(), 1u);
}

TEST(MachineModel, LatenciesAtLeastOne) {
  MachineModel M = MachineModel::ppc7410();
  for (unsigned I = 0; I != getNumOpcodes(); ++I)
    EXPECT_GE(M.getLatency(static_cast<Opcode>(I)), 1u)
        << getOpcodeName(static_cast<Opcode>(I));
}

TEST(MachineModel, LatencyOrdering) {
  MachineModel M = MachineModel::ppc7410();
  // "Instructions take from one to many tens of cycles."
  EXPECT_EQ(M.getLatency(Opcode::Add), 1u);
  EXPECT_GT(M.getLatency(Opcode::FAdd), M.getLatency(Opcode::Add));
  EXPECT_GT(M.getLatency(Opcode::LoadInt), M.getLatency(Opcode::Add));
  EXPECT_GT(M.getLatency(Opcode::Div), M.getLatency(Opcode::Mul));
  EXPECT_GE(M.getLatency(Opcode::FDiv), 20u);
  EXPECT_GE(M.getLatency(Opcode::FSqrt), 20u);
}

TEST(MachineModel, BlockingOpsNotPipelined) {
  MachineModel M = MachineModel::ppc7410();
  EXPECT_FALSE(M.isPipelined(Opcode::Div));
  EXPECT_FALSE(M.isPipelined(Opcode::FDiv));
  EXPECT_FALSE(M.isPipelined(Opcode::FSqrt));
  EXPECT_TRUE(M.isPipelined(Opcode::FAdd));
  EXPECT_TRUE(M.isPipelined(Opcode::LoadInt));
}

TEST(MachineModel, SetLatencyOverrides) {
  MachineModel M = MachineModel::ppc7410();
  M.setLatency(Opcode::Add, 9);
  EXPECT_EQ(M.getLatency(Opcode::Add), 9u);
}

TEST(MachineModel, UnitAcceptMasks) {
  MachineModel M = MachineModel::ppc7410();
  for (FuClass C : {FuClass::IntSimple, FuClass::IntComplex, FuClass::Float,
                    FuClass::LoadStore, FuClass::Branch, FuClass::System})
    for (unsigned U : M.unitsFor(C))
      EXPECT_TRUE(M.units()[U].accepts(C));
}

TEST(MachineModel, SimpleScalarSingleIssue) {
  MachineModel M = MachineModel::simpleScalar();
  EXPECT_EQ(M.getNumUnits(), 1u);
  EXPECT_EQ(M.getMaxIssueNonBranch(), 1u);
  // The universal unit executes every class.
  for (FuClass C : {FuClass::IntSimple, FuClass::IntComplex, FuClass::Float,
                    FuClass::LoadStore, FuClass::Branch, FuClass::System})
    EXPECT_EQ(M.unitsFor(C).size(), 1u);
}
