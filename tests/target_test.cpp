//===- tests/target_test.cpp - target/ unit tests ---------------------------===//

#include "target/MachineModel.h"

#include "TestHelpers.h"
#include "sched/DependenceGraph.h"

#include <gtest/gtest.h>

using namespace schedfilter;
using namespace schedfilter::test;

TEST(MachineModel, Ppc7410UnitInventory) {
  MachineModel M = MachineModel::ppc7410();
  // 2 integer + FPU + LSU + BPU + SU.
  EXPECT_EQ(M.getNumUnits(), 6u);
  EXPECT_EQ(M.getName(), "ppc7410");
}

TEST(MachineModel, DissimilarIntegerUnits) {
  MachineModel M = MachineModel::ppc7410();
  // Simple integer ops can go on either integer unit; complex ones (mul,
  // div) only on the second.
  EXPECT_EQ(M.unitsFor(FuClass::IntSimple).size(), 2u);
  EXPECT_EQ(M.unitsFor(FuClass::IntComplex).size(), 1u);
}

TEST(MachineModel, SingleUnitClasses) {
  MachineModel M = MachineModel::ppc7410();
  EXPECT_EQ(M.unitsFor(FuClass::Float).size(), 1u);
  EXPECT_EQ(M.unitsFor(FuClass::LoadStore).size(), 1u);
  EXPECT_EQ(M.unitsFor(FuClass::Branch).size(), 1u);
  EXPECT_EQ(M.unitsFor(FuClass::System).size(), 1u);
}

TEST(MachineModel, IssueRules) {
  MachineModel M = MachineModel::ppc7410();
  // "One branch and two non-branch instructions per cycle."
  EXPECT_EQ(M.getMaxIssueNonBranch(), 2u);
  EXPECT_EQ(M.getMaxIssueBranch(), 1u);
}

TEST(MachineModel, LatenciesAtLeastOne) {
  MachineModel M = MachineModel::ppc7410();
  for (unsigned I = 0; I != getNumOpcodes(); ++I)
    EXPECT_GE(M.getLatency(static_cast<Opcode>(I)), 1u)
        << getOpcodeName(static_cast<Opcode>(I));
}

TEST(MachineModel, LatencyOrdering) {
  MachineModel M = MachineModel::ppc7410();
  // "Instructions take from one to many tens of cycles."
  EXPECT_EQ(M.getLatency(Opcode::Add), 1u);
  EXPECT_GT(M.getLatency(Opcode::FAdd), M.getLatency(Opcode::Add));
  EXPECT_GT(M.getLatency(Opcode::LoadInt), M.getLatency(Opcode::Add));
  EXPECT_GT(M.getLatency(Opcode::Div), M.getLatency(Opcode::Mul));
  EXPECT_GE(M.getLatency(Opcode::FDiv), 20u);
  EXPECT_GE(M.getLatency(Opcode::FSqrt), 20u);
}

TEST(MachineModel, BlockingOpsNotPipelined) {
  MachineModel M = MachineModel::ppc7410();
  EXPECT_FALSE(M.isPipelined(Opcode::Div));
  EXPECT_FALSE(M.isPipelined(Opcode::FDiv));
  EXPECT_FALSE(M.isPipelined(Opcode::FSqrt));
  EXPECT_TRUE(M.isPipelined(Opcode::FAdd));
  EXPECT_TRUE(M.isPipelined(Opcode::LoadInt));
}

TEST(MachineModel, SetLatencyOverrides) {
  MachineModel M = MachineModel::ppc7410();
  M.setLatency(Opcode::Add, 9);
  EXPECT_EQ(M.getLatency(Opcode::Add), 9u);
}

TEST(MachineModel, UnitAcceptMasks) {
  MachineModel M = MachineModel::ppc7410();
  for (FuClass C : {FuClass::IntSimple, FuClass::IntComplex, FuClass::Float,
                    FuClass::LoadStore, FuClass::Branch, FuClass::System})
    for (unsigned U : M.unitsFor(C))
      EXPECT_TRUE(M.units()[U].accepts(C));
}

TEST(MachineModel, SimpleScalarSingleIssue) {
  MachineModel M = MachineModel::simpleScalar();
  EXPECT_EQ(M.getNumUnits(), 1u);
  EXPECT_EQ(M.getMaxIssueNonBranch(), 1u);
  // The universal unit executes every class.
  for (FuClass C : {FuClass::IntSimple, FuClass::IntComplex, FuClass::Float,
                    FuClass::LoadStore, FuClass::Branch, FuClass::System})
    EXPECT_EQ(M.unitsFor(C).size(), 1u);
}

TEST(MachineModel, SimpleScalarIssueAndLatencyRules) {
  MachineModel M = MachineModel::simpleScalar();
  EXPECT_EQ(M.getName(), "simple-scalar");
  EXPECT_EQ(M.getMaxIssueBranch(), 1u);
  // Latencies deliberately match the ppc7410 table: the model differs only
  // in issue width and unit count, so on any block it can never beat the
  // superscalar G4 -- the property the cross-model sim tests rely on.
  MachineModel G4 = MachineModel::ppc7410();
  for (unsigned I = 0; I != getNumOpcodes(); ++I) {
    Opcode Op = static_cast<Opcode>(I);
    EXPECT_EQ(M.getLatency(Op), G4.getLatency(Op)) << getOpcodeName(Op);
    EXPECT_EQ(M.isPipelined(Op), G4.isPipelined(Op)) << getOpcodeName(Op);
    EXPECT_GE(M.getLatency(Op), 1u);
  }
  EXPECT_TRUE(M.units()[0].accepts(FuClass::IntComplex));
}

TEST(MachineModel, Ppc970UnitInventory) {
  MachineModel M = MachineModel::ppc970();
  EXPECT_EQ(M.getName(), "ppc970");
  // 2 integer + 2 FPU + 2 LSU + BPU + SU.
  EXPECT_EQ(M.getNumUnits(), 8u);
  EXPECT_EQ(M.unitsFor(FuClass::IntSimple).size(), 2u);
  EXPECT_EQ(M.unitsFor(FuClass::IntComplex).size(), 1u);
  EXPECT_EQ(M.unitsFor(FuClass::Float).size(), 2u);
  EXPECT_EQ(M.unitsFor(FuClass::LoadStore).size(), 2u);
  EXPECT_EQ(M.unitsFor(FuClass::Branch).size(), 1u);
  EXPECT_EQ(M.unitsFor(FuClass::System).size(), 1u);
  for (FuClass C : {FuClass::IntSimple, FuClass::IntComplex, FuClass::Float,
                    FuClass::LoadStore, FuClass::Branch, FuClass::System})
    for (unsigned U : M.unitsFor(C))
      EXPECT_TRUE(M.units()[U].accepts(C));
}

TEST(MachineModel, Ppc970IssueRules) {
  MachineModel M = MachineModel::ppc970();
  EXPECT_EQ(M.getMaxIssueNonBranch(), 4u);
  EXPECT_EQ(M.getMaxIssueBranch(), 1u);
}

TEST(MachineModel, Ppc970Latencies) {
  MachineModel M = MachineModel::ppc970();
  for (unsigned I = 0; I != getNumOpcodes(); ++I)
    EXPECT_GE(M.getLatency(static_cast<Opcode>(I)), 1u)
        << getOpcodeName(static_cast<Opcode>(I));
  // Same qualitative shape as the G4: cheap ALU, expensive blocking ops.
  EXPECT_GT(M.getLatency(Opcode::FAdd), M.getLatency(Opcode::Add));
  EXPECT_GT(M.getLatency(Opcode::Div), M.getLatency(Opcode::Mul));
  EXPECT_GE(M.getLatency(Opcode::FDiv), 20u);
  EXPECT_GE(M.getLatency(Opcode::FSqrt), 20u);
  EXPECT_FALSE(M.isPipelined(Opcode::Div));
  EXPECT_FALSE(M.isPipelined(Opcode::FDiv));
  EXPECT_FALSE(M.isPipelined(Opcode::FSqrt));
  EXPECT_TRUE(M.isPipelined(Opcode::FAdd));
  EXPECT_TRUE(M.isPipelined(Opcode::LoadFloat));
}

TEST(MachineModel, ByNameRoundTrips) {
  for (const char *Name : {"ppc7410", "ppc970", "simple-scalar"}) {
    std::optional<MachineModel> M = MachineModel::byName(Name);
    ASSERT_TRUE(M.has_value()) << Name;
    EXPECT_EQ(M->getName(), Name);
    // The advertised name list must mention every accepted name.
    EXPECT_NE(MachineModel::knownNamesList().find(Name), std::string::npos);
  }
  EXPECT_FALSE(MachineModel::byName("ppc601").has_value());
  EXPECT_FALSE(MachineModel::byName("").has_value());
}

TEST(MachineModel, G5NeverFasterPerOpcodeThanG4) {
  // The "wider but deeper" trade: the G5 wins via issue width and unit
  // count, never via a cheaper opcode -- the invariant behind the
  // cross-target critical-path test below.
  MachineModel G4 = MachineModel::ppc7410();
  MachineModel G5 = MachineModel::ppc970();
  for (unsigned I = 0; I != getNumOpcodes(); ++I) {
    Opcode Op = static_cast<Opcode>(I);
    EXPECT_GE(G5.getLatency(Op), G4.getLatency(Op)) << getOpcodeName(Op);
  }
}

TEST(MachineModel, DependenceHeightsDifferAcrossTargets) {
  // The same block has different latency-weighted critical paths on the G4
  // and the deeper G5 -- the reason per-target filters are induced per
  // machine rather than shared.
  MachineModel G4 = MachineModel::ppc7410();
  MachineModel G5 = MachineModel::ppc970();
  for (const BasicBlock &BB : {makeIlpFloatBlock(), makeChainBlock()}) {
    DependenceGraph D4(BB, G4);
    DependenceGraph D5(BB, G5);
    bool AnyDiffer = false;
    for (int I = 0; I != static_cast<int>(BB.size()); ++I) {
      EXPECT_GE(D4.criticalPath(I), 1) << BB.getName();
      EXPECT_GE(D5.criticalPath(I), 1) << BB.getName();
      AnyDiffer |= D4.criticalPath(I) != D5.criticalPath(I);
    }
    EXPECT_TRUE(AnyDiffer) << BB.getName();
    // The deeper pipeline can only stretch the critical path.
    EXPECT_GT(D5.criticalPath(0), D4.criticalPath(0)) << BB.getName();
  }
}
