//===- tests/integration_test.cpp - end-to-end reproduction checks -----------===//
//
// End-to-end tests asserting the paper's qualitative results on a reduced
// synthetic suite: the induced filter must classify well, cut scheduling
// effort, and preserve most of the scheduling benefit.  These are the
// "did we actually reproduce the paper?" tests.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiments.h"

#include "TestHelpers.h"
#include "ml/Metrics.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

using namespace schedfilter;
using namespace schedfilter::test;

namespace {

/// Moderate-size suite: big enough for the learning signal, small enough
/// for test time (~1s).
const std::vector<BenchmarkRun> &suite() {
  static const std::vector<BenchmarkRun> Suite = [] {
    MachineModel Model = MachineModel::ppc7410();
    return generateSuiteData(shrinkSuite(specjvm98Suite(), 30), Model);
  }();
  return Suite;
}

const ThresholdResult &atZero() {
  static const ThresholdResult R =
      runThreshold(suite(), 0.0, ripperLearner());
  return R;
}

} // namespace

TEST(Reproduction, SchedulingHelpsButOnlyOnAMinorityOfBlocks) {
  size_t LS = 0, Total = 0;
  for (const BenchmarkRun &Run : suite()) {
    for (const BlockRecord &Rec : Run.Records)
      LS += schedulingBenefitPercent(Rec) > 0.0;
    Total += Run.Records.size();
  }
  double Frac = static_cast<double>(LS) / static_cast<double>(Total);
  // The paper's premise: "in practice a large fraction of blocks do not
  // benefit from instruction scheduling."
  EXPECT_LT(Frac, 0.40);
  EXPECT_GT(Frac, 0.05);
}

TEST(Reproduction, SchedulingSometimesDegradesABlock) {
  // "...and in some rare cases, degrades performance."
  size_t Degraded = 0;
  for (const BenchmarkRun &Run : suite())
    for (const BlockRecord &Rec : Run.Records)
      Degraded += Rec.CostSched > Rec.CostNoSched;
  EXPECT_GT(Degraded, 0u);
}

TEST(Reproduction, CrossValidatedErrorIsSingleDigit) {
  // Table 3 at t=0: geometric-mean error 7.86% in the paper.
  double Geo = geometricMean(atZero().ErrorPct);
  EXPECT_LT(Geo, 12.0);
  EXPECT_GT(Geo, 0.5); // sanity: the task is not trivially separable
}

TEST(Reproduction, ErrorFallsAsThresholdRises) {
  double E0 = geometricMean(atZero().ErrorPct);
  double E40 =
      geometricMean(runThreshold(suite(), 40.0, ripperLearner()).ErrorPct);
  EXPECT_LT(E40, E0 * 0.5);
}

TEST(Reproduction, FilterCutsSchedulingEffort) {
  // Figure 1(a): L/N spends a fraction of LS's scheduling effort.
  double Effort = geometricMean(atZero().EffortRatioWork);
  EXPECT_LT(Effort, 0.70);
  EXPECT_GT(Effort, 0.05);
}

TEST(Reproduction, EffortFallsMonotonicallyWithThreshold) {
  // Figure 2(a): geometric-mean effort declines as t grows.
  std::vector<ThresholdResult> Sweep =
      runThresholdSweep(suite(), {0.0, 20.0, 40.0}, ripperLearner());
  double E0 = geometricMean(Sweep[0].EffortRatioWork);
  double E20 = geometricMean(Sweep[1].EffortRatioWork);
  double E40 = geometricMean(Sweep[2].EffortRatioWork);
  EXPECT_GT(E0, E20);
  EXPECT_GT(E20, E40);
}

TEST(Reproduction, FilterPreservesMostOfTheBenefit) {
  // Figure 1(b): L/N tracks LS closely at t=0.
  const ThresholdResult &R = atZero();
  double LS = geometricMean(R.AppRatioLS);
  double LN = geometricMean(R.AppRatioLN);
  ASSERT_LT(LS, 1.0);
  double Retention = (1.0 - LN) / (1.0 - LS);
  EXPECT_GT(Retention, 0.75);
  EXPECT_LE(Retention, 1.05); // can exceed 1 only via avoided degradations
}

TEST(Reproduction, FilteredNeverWorseThanNeverScheduling) {
  for (double V : atZero().AppRatioLN)
    EXPECT_LE(V, 1.0005);
}

TEST(Reproduction, PredictedTimesImproveAtAllThresholds) {
  // Table 4: "the model predicts improvements at all thresholds."
  for (double T : {0.0, 20.0, 50.0}) {
    ThresholdResult R = runThreshold(suite(), T, ripperLearner());
    EXPECT_LE(geometricMean(R.PredictedTimePct), 100.0) << "t=" << T;
  }
}

TEST(Reproduction, RuntimeLsSharePlausible) {
  // Table 6: the filter schedules a minority of blocks; the share falls
  // with t.
  const ThresholdResult &R0 = atZero();
  double Share0 = static_cast<double>(R0.RuntimeLS) /
                  static_cast<double>(R0.RuntimeLS + R0.RuntimeNS);
  EXPECT_LT(Share0, 0.45);
  ThresholdResult R30 = runThreshold(suite(), 30.0, ripperLearner());
  EXPECT_LT(R30.RuntimeLS, R0.RuntimeLS);
}

TEST(Reproduction, InducedRulesLookLikeFigure4) {
  // The paper's sample filter keys on block size with call/load/store
  // fractions refining.  Check bbLen appears in (almost) every rule and
  // that rules conclude "list" with default "orig".
  const ThresholdResult &R = atZero();
  size_t RulesTotal = 0, RulesWithBBLen = 0;
  for (const RuleSet &RS : R.Filters) {
    EXPECT_EQ(RS.getDefaultClass(), Label::NS);
    for (const Rule &Rule : RS.rules()) {
      EXPECT_EQ(Rule.Conclusion, Label::LS);
      ++RulesTotal;
      for (const Condition &C : Rule.Conditions)
        if (C.Feature == FeatBBLen) {
          ++RulesWithBBLen;
          break;
        }
    }
  }
  ASSERT_GT(RulesTotal, 0u);
  EXPECT_GT(static_cast<double>(RulesWithBBLen) /
                static_cast<double>(RulesTotal),
            0.6);
}

TEST(Reproduction, FpSuitePreservesLargeBenefit) {
  // Figure 3: on benchmarks selected to benefit, the filter must keep
  // nearly all of a large benefit.
  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkRun> Fp =
      generateSuiteData(shrinkSuite(fpSuite(), 25), Model);
  ThresholdResult R = runThreshold(Fp, 0.0, ripperLearner());
  double LS = geometricMean(R.AppRatioLS);
  double LN = geometricMean(R.AppRatioLN);
  EXPECT_LT(LS, 0.90) << "FP suite must benefit a lot from scheduling";
  EXPECT_GT((1.0 - LN) / (1.0 - LS), 0.85);
}

TEST(Reproduction, HeadlineEffortBenefitTradeoffExists) {
  // The abstract: most of the benefit at a fraction of the effort.  Find
  // any threshold achieving >=75% retention at <=55% effort.
  std::vector<ThresholdResult> Sweep =
      runThresholdSweep(suite(), {0.0, 10.0, 20.0}, ripperLearner());
  bool Achieved = false;
  for (const ThresholdResult &R : Sweep) {
    double LS = geometricMean(R.AppRatioLS);
    double LN = geometricMean(R.AppRatioLN);
    double Retention = (1.0 - LN) / (1.0 - LS);
    double Effort = geometricMean(R.EffortRatioWork);
    if (Retention >= 0.75 && Effort <= 0.55)
      Achieved = true;
  }
  EXPECT_TRUE(Achieved);
}
