//===- tests/corpuscache_test.cpp - io/CorpusCache unit tests -----------------===//
//
// The corpus-cache contract: a warm cache serves bit-identical records
// and reports while skipping all suite tracing (pinned via the engine's
// traced-block work counter); every key ingredient -- generator version,
// spec fingerprint, model -- isolates entries; and no corrupt or
// mismatched entry is ever believed.
//
//===----------------------------------------------------------------------===//

#include "io/CorpusCache.h"

#include "TestHelpers.h"
#include "harness/ParallelExperiments.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include <unistd.h>

using namespace schedfilter;
using namespace schedfilter::test;

namespace {

std::vector<BenchmarkSpec> testSuite() {
  return shrinkSuite({*findBenchmarkSpec("db"), *findBenchmarkSpec("jess")},
                     5);
}

/// \p CompareWallTime: true when B's reports were loaded from a cache
/// seeded by A (stored wall times reproduce exactly); false when both
/// sides measured their own wall clock.
void expectRunsIdentical(const std::vector<BenchmarkRun> &A,
                         const std::vector<BenchmarkRun> &B,
                         bool CompareWallTime = true) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t R = 0; R != A.size(); ++R) {
    EXPECT_EQ(A[R].Name, B[R].Name);
    EXPECT_EQ(A[R].ModelName, B[R].ModelName);
    ASSERT_EQ(A[R].Records.size(), B[R].Records.size());
    for (size_t I = 0; I != A[R].Records.size(); ++I) {
      const BlockRecord &X = A[R].Records[I];
      const BlockRecord &Y = B[R].Records[I];
      EXPECT_EQ(X.X, Y.X);
      EXPECT_EQ(X.CostNoSched, Y.CostNoSched);
      EXPECT_EQ(X.CostSched, Y.CostSched);
      EXPECT_EQ(X.ExecCount, Y.ExecCount);
    }
    // Cached reports reproduce every field, the measured wall time
    // included (it is stored, not re-measured).
    for (auto Pick : {&BenchmarkRun::NeverReport, &BenchmarkRun::AlwaysReport}) {
      const CompileReport &X = A[R].*Pick;
      const CompileReport &Y = B[R].*Pick;
      EXPECT_EQ(X.Policy, Y.Policy);
      EXPECT_EQ(X.NumBlocks, Y.NumBlocks);
      EXPECT_EQ(X.NumScheduled, Y.NumScheduled);
      EXPECT_EQ(X.SchedulingWork, Y.SchedulingWork);
      EXPECT_EQ(X.FilterWork, Y.FilterWork);
      EXPECT_EQ(X.SimulatedTime, Y.SimulatedTime);
      if (CompareWallTime) {
        EXPECT_EQ(X.SchedulingSeconds, Y.SchedulingSeconds);
      }
    }
  }
}

} // namespace

TEST(CorpusCache, StoreLoadRoundTrip) {
  TempCacheDir Dir("cc-roundtrip");
  CorpusCache Cache(Dir.str());
  CorpusKey Key{"db", "ppc7410", GeneratorVersion,
                TracePipelineVersion, 0x1234, ""};

  CachedRun Run;
  BlockRecord R{};
  R.X[FeatBBLen] = 7;
  R.X[FeatLoad] = 1.0 / 3.0;
  R.CostNoSched = 42;
  R.CostSched = 30;
  R.ExecCount = 99;
  Run.Records.push_back(R);
  Run.NeverReport.Policy = SchedulingPolicy::Never;
  Run.NeverReport.NumBlocks = 1;
  Run.NeverReport.SimulatedTime = 4200.0;
  Run.AlwaysReport.Policy = SchedulingPolicy::Always;
  Run.AlwaysReport.NumBlocks = 1;
  Run.AlwaysReport.NumScheduled = 1;
  Run.AlwaysReport.SchedulingWork = 17;
  Run.AlwaysReport.SchedulingSeconds = 0.00125;
  Run.AlwaysReport.SimulatedTime = 3000.0;

  EXPECT_TRUE(Cache.store(Key, Run));
  std::optional<CachedRun> Back = Cache.load(Key);
  ASSERT_TRUE(Back.has_value());
  ASSERT_EQ(Back->Records.size(), 1u);
  EXPECT_EQ(Back->Records[0].X, Run.Records[0].X);
  EXPECT_EQ(Back->Records[0].CostNoSched, 42u);
  EXPECT_EQ(Back->Records[0].ExecCount, 99u);
  EXPECT_EQ(Back->NeverReport.SimulatedTime, 4200.0);
  EXPECT_EQ(Back->AlwaysReport.SchedulingWork, 17u);
  EXPECT_EQ(Back->AlwaysReport.SchedulingSeconds, 0.00125);
  EXPECT_EQ(Back->AlwaysReport.NumScheduled, 1u);

  CorpusCache::Stats St = Cache.stats();
  EXPECT_EQ(St.Stores, 1u);
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Misses, 0u);
}

TEST(CorpusCache, EveryKeyIngredientIsolatesEntries) {
  TempCacheDir Dir("cc-keys");
  CorpusCache Cache(Dir.str());
  CorpusKey Key{"db", "ppc7410", GeneratorVersion,
                TracePipelineVersion, 0x1234, ""};
  CachedRun Run;
  Run.Records.emplace_back();
  ASSERT_TRUE(Cache.store(Key, Run));

  CorpusKey OtherBench = Key;
  OtherBench.Benchmark = "jess";
  CorpusKey OtherModel = Key;
  OtherModel.Model = "ppc970";
  CorpusKey OtherVersion = Key;
  OtherVersion.GeneratorVersion = GeneratorVersion + 1;
  CorpusKey OtherPipeline = Key;
  OtherPipeline.PipelineVersion = TracePipelineVersion + 1;
  CorpusKey OtherSpec = Key;
  OtherSpec.SpecFingerprint = 0x5678;
  EXPECT_FALSE(Cache.load(OtherBench).has_value());
  EXPECT_FALSE(Cache.load(OtherModel).has_value());
  EXPECT_FALSE(Cache.load(OtherVersion).has_value());
  EXPECT_FALSE(Cache.load(OtherPipeline).has_value());
  EXPECT_FALSE(Cache.load(OtherSpec).has_value());
  EXPECT_TRUE(Cache.load(Key).has_value());

  // The caller's expected record count is part of validation: an entry
  // with any other count is invalid (counted as such), not a hit.
  EXPECT_TRUE(Cache.load(Key, 1).has_value());
  uint64_t InvalidBefore = Cache.stats().InvalidEntries;
  EXPECT_FALSE(Cache.load(Key, 2).has_value());
  EXPECT_EQ(Cache.stats().InvalidEntries, InvalidBefore + 1);
}

TEST(CorpusCache, FamilyVersionBumpInvalidatesOnlyThatFamily) {
  // The per-family generator version promise (WorkloadFamily::version):
  // bumping one family's version misses only that family's entries;
  // every other family still hits, and the family name itself is a key
  // ingredient.
  TempCacheDir Dir("cc-family");
  CorpusCache Cache(Dir.str());
  CorpusKey Server{"httpd", "ppc7410", 1, TracePipelineVersion, 0x1111,
                   "serverloop"};
  CorpusKey Chase{"listwalk", "ppc7410", 1, TracePipelineVersion, 0x2222,
                  "ptrchase"};
  CachedRun Run;
  Run.Records.emplace_back();
  ASSERT_TRUE(Cache.store(Server, Run));
  ASSERT_TRUE(Cache.store(Chase, Run));

  CorpusKey ServerV2 = Server;
  ServerV2.GeneratorVersion = 2;
  EXPECT_FALSE(Cache.load(ServerV2).has_value());
  EXPECT_TRUE(Cache.load(Chase).has_value());   // other family unharmed
  EXPECT_TRUE(Cache.load(Server).has_value());  // old version still readable

  // Same spec under a different family is a different corpus.
  CorpusKey Refiled = Server;
  Refiled.Family = "fpkernel";
  EXPECT_FALSE(Cache.load(Refiled).has_value());

  // The family is visible in the entry path (family-less keys keep the
  // pre-registry layout; both pins live in io/CorpusCache).
  EXPECT_NE(Cache.entryPath(Server).find("__serverloop__"),
            std::string::npos);
  CorpusKey Bare{"db", "ppc7410", 1, TracePipelineVersion, 0x3333, ""};
  EXPECT_EQ(Cache.entryPath(Bare).find("____"), std::string::npos);
}

TEST(CorpusCache, RenamedEntryIsNotBelieved) {
  // The key is embedded in the entry and verified on load: renaming a
  // file onto another key's path must count as invalid, not serve the
  // wrong corpus.
  TempCacheDir Dir("cc-rename");
  CorpusCache Cache(Dir.str());
  CorpusKey Key{"db", "ppc7410", GeneratorVersion,
                TracePipelineVersion, 0x1234, ""};
  CorpusKey Victim{"jess", "ppc7410", GeneratorVersion,
                   TracePipelineVersion, 0x9999, ""};
  CachedRun Run;
  Run.Records.emplace_back();
  ASSERT_TRUE(Cache.store(Key, Run));
  std::filesystem::rename(Cache.entryPath(Key), Cache.entryPath(Victim));
  EXPECT_FALSE(Cache.load(Victim).has_value());
  EXPECT_EQ(Cache.stats().InvalidEntries, 1u);
}

TEST(CorpusCache, CorruptEntriesAreInvalidNotFatal) {
  TempCacheDir Dir("cc-corrupt");
  CorpusCache Cache(Dir.str());
  CorpusKey Key{"db", "ppc7410", GeneratorVersion,
                TracePipelineVersion, 0x1234, ""};
  CachedRun Run;
  Run.Records.emplace_back();
  Run.Records.emplace_back();
  ASSERT_TRUE(Cache.store(Key, Run));

  // Flip a payload byte in place.
  std::string Path = Cache.entryPath(Key);
  std::string Bytes;
  {
    std::ifstream IS(Path, std::ios::binary);
    Bytes.assign((std::istreambuf_iterator<char>(IS)),
                 std::istreambuf_iterator<char>());
  }
  Bytes[Bytes.size() - 2] = static_cast<char>(
      static_cast<unsigned char>(Bytes[Bytes.size() - 2]) ^ 0x01);
  {
    std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
    OS.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }
  EXPECT_FALSE(Cache.load(Key).has_value());
  CorpusCache::Stats St = Cache.stats();
  EXPECT_EQ(St.InvalidEntries, 1u);
  EXPECT_EQ(St.Misses, 1u);

  // A truncated entry is equally invalid.
  {
    std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
    OS.write(Bytes.data(), 10);
  }
  EXPECT_FALSE(Cache.load(Key).has_value());
  EXPECT_EQ(Cache.stats().InvalidEntries, 2u);

  // So is a flipped bit in the compile-report block (byte 50 sits inside
  // NeverReport for this key): the checksum covers the whole body, not
  // just the record payload.
  std::string ReportFlip = Bytes;
  ReportFlip[50] =
      static_cast<char>(static_cast<unsigned char>(ReportFlip[50]) ^ 0x01);
  {
    std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
    OS.write(ReportFlip.data(),
             static_cast<std::streamsize>(ReportFlip.size()));
  }
  EXPECT_FALSE(Cache.load(Key).has_value());
  EXPECT_EQ(Cache.stats().InvalidEntries, 3u);
}

TEST(CorpusCache, WarmEngineSkipsAllSuiteTracing) {
  TempCacheDir Dir("cc-warm");
  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkSpec> Suite = testSuite();

  // Cold: every benchmark is traced and stored.
  CorpusCache ColdCache(Dir.str());
  ExperimentEngine Cold(2);
  Cold.setCorpusCache(&ColdCache);
  std::vector<BenchmarkRun> ColdRuns = Cold.generateSuiteData(Suite, Model);
  size_t TotalBlocks = 0;
  for (const BenchmarkRun &R : ColdRuns)
    TotalBlocks += R.Records.size();
  EXPECT_EQ(Cold.tracedBlocks(), TotalBlocks);
  CorpusCache::Stats ColdStats = ColdCache.stats();
  EXPECT_EQ(ColdStats.Misses, Suite.size());
  EXPECT_EQ(ColdStats.Stores, Suite.size());
  EXPECT_EQ(ColdStats.Hits, 0u);

  // Warm: zero blocks traced -- the acceptance work-counter assertion --
  // and the output is field-identical, wall-clock included.
  CorpusCache WarmCache(Dir.str());
  ExperimentEngine Warm(2);
  Warm.setCorpusCache(&WarmCache);
  std::vector<BenchmarkRun> WarmRuns = Warm.generateSuiteData(Suite, Model);
  EXPECT_EQ(Warm.tracedBlocks(), 0u);
  CorpusCache::Stats WarmStats = WarmCache.stats();
  EXPECT_EQ(WarmStats.Hits, Suite.size());
  EXPECT_EQ(WarmStats.Misses, 0u);
  expectRunsIdentical(ColdRuns, WarmRuns);

  // The warm runs still carry a usable Program (it is regenerated, not
  // cached): downstream recompilation must agree with the cold path.
  ThresholdResult A = Warm.runThreshold(WarmRuns, 0.0, ripperLearner());
  ThresholdResult B = Cold.runThreshold(ColdRuns, 0.0, ripperLearner());
  EXPECT_EQ(A.TrainLS, B.TrainLS);
  EXPECT_EQ(A.TrainNS, B.TrainNS);
  EXPECT_EQ(A.ErrorPct, B.ErrorPct);
  EXPECT_EQ(A.PredictedTimePct, B.PredictedTimePct);
  EXPECT_EQ(A.EffortRatioWork, B.EffortRatioWork);
  EXPECT_EQ(A.AppRatioLN, B.AppRatioLN);
  EXPECT_EQ(A.AppRatioLS, B.AppRatioLS);
}

TEST(CorpusCache, WarmLoadIdenticalAtAnyJobCount) {
  TempCacheDir Dir("cc-jobs");
  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkSpec> Suite = testSuite();

  CorpusCache Seed(Dir.str());
  ExperimentEngine Cold(1);
  Cold.setCorpusCache(&Seed);
  std::vector<BenchmarkRun> Reference = Cold.generateSuiteData(Suite, Model);

  for (unsigned Jobs : {1u, 4u}) {
    CorpusCache Cache(Dir.str());
    ExperimentEngine Warm(Jobs);
    Warm.setCorpusCache(&Cache);
    std::vector<BenchmarkRun> Runs = Warm.generateSuiteData(Suite, Model);
    EXPECT_EQ(Warm.tracedBlocks(), 0u) << "jobs " << Jobs;
    expectRunsIdentical(Reference, Runs);
  }
}

TEST(CorpusCache, ShrunkSpecNeverCollidesWithStockBenchmark) {
  // Same benchmark name, same model, different spec parameters: the
  // fingerprint must keep the corpora apart.
  TempCacheDir Dir("cc-fingerprint");
  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkSpec> Small = shrinkSuite({*findBenchmarkSpec("db")}, 4);
  std::vector<BenchmarkSpec> Tiny = shrinkSuite({*findBenchmarkSpec("db")}, 2);
  EXPECT_NE(specFingerprint(Small[0]), specFingerprint(Tiny[0]));

  CorpusCache Cache(Dir.str());
  ExperimentEngine Engine(1);
  Engine.setCorpusCache(&Cache);
  std::vector<BenchmarkRun> A = Engine.generateSuiteData(Small, Model);
  std::vector<BenchmarkRun> B = Engine.generateSuiteData(Tiny, Model);
  EXPECT_NE(A[0].Records.size(), B[0].Records.size());
  CorpusCache::Stats St = Cache.stats();
  EXPECT_EQ(St.Hits, 0u);
  EXPECT_EQ(St.Stores, 2u);
}

TEST(CorpusCache, UnwritableDirectoryDegradesToTracing) {
  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkSpec> Suite = shrinkSuite({*findBenchmarkSpec("db")}, 3);

  CorpusCache Cache("/proc/definitely/not/writable");
  ExperimentEngine Engine(1);
  Engine.setCorpusCache(&Cache);
  std::vector<BenchmarkRun> Runs = Engine.generateSuiteData(Suite, Model);
  ASSERT_EQ(Runs.size(), 1u);
  EXPECT_FALSE(Runs[0].Records.empty());
  EXPECT_GT(Engine.tracedBlocks(), 0u);
  CorpusCache::Stats St = Cache.stats();
  EXPECT_EQ(St.StoreFailures, 1u);
  EXPECT_EQ(St.Stores, 0u);

  // Uncached reference must agree on every deterministic field.
  std::vector<BenchmarkRun> Ref = generateSuiteData(Suite, Model);
  expectRunsIdentical(Ref, Runs, /*CompareWallTime=*/false);
}
