//===- tests/taskpool_test.cpp - support/TaskPool unit tests ----------------===//
//
// The pool's contract: every index runs exactly once, results assembled
// by index are identical at any job count, nested parallelFor is safe
// (runs inline), exceptions propagate, and the Rng overload hands task i
// the stream Base.fork(i) regardless of execution order.
//
//===----------------------------------------------------------------------===//

#include "support/TaskPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

using namespace schedfilter;

namespace {

/// A small deterministic per-index computation.
uint64_t mix(size_t I) {
  uint64_t X = static_cast<uint64_t>(I) * 0x9e3779b97f4a7c15ULL + 1;
  X ^= X >> 29;
  return X * 0xbf58476d1ce4e5b9ULL;
}

std::vector<uint64_t> runWithJobs(unsigned Jobs, size_t Count) {
  TaskPool Pool(Jobs);
  std::vector<uint64_t> Out(Count, 0);
  Pool.parallelFor(Count, [&](size_t I) { Out[I] = mix(I); });
  return Out;
}

} // namespace

TEST(TaskPool, EveryIndexRunsExactlyOnce) {
  TaskPool Pool(4);
  std::vector<std::atomic<int>> Counts(257);
  for (auto &C : Counts)
    C = 0;
  Pool.parallelFor(Counts.size(), [&](size_t I) { ++Counts[I]; });
  for (auto &C : Counts)
    EXPECT_EQ(C.load(), 1);
}

TEST(TaskPool, ResultsIdenticalAtAnyJobCount) {
  std::vector<uint64_t> Serial = runWithJobs(1, 100);
  EXPECT_EQ(runWithJobs(2, 100), Serial);
  EXPECT_EQ(runWithJobs(4, 100), Serial);
  EXPECT_EQ(runWithJobs(13, 100), Serial);
}

TEST(TaskPool, ZeroTasksIsANoOp) {
  TaskPool Pool(4);
  Pool.parallelFor(0, [&](size_t) { FAIL() << "no task should run"; });
}

TEST(TaskPool, PoolIsReusableAcrossBatches) {
  TaskPool Pool(3);
  for (int Round = 0; Round < 5; ++Round) {
    std::vector<int> Out(40, -1);
    Pool.parallelFor(Out.size(),
                     [&](size_t I) { Out[I] = static_cast<int>(I) + Round; });
    for (size_t I = 0; I != Out.size(); ++I)
      EXPECT_EQ(Out[I], static_cast<int>(I) + Round);
  }
}

TEST(TaskPool, NestedParallelForRunsInline) {
  TaskPool Pool(4);
  std::vector<std::vector<int>> Out(8);
  Pool.parallelFor(Out.size(), [&](size_t I) {
    EXPECT_TRUE(TaskPool::insideTask());
    Out[I].assign(16, 0);
    // Nested call: must run inline on this thread without deadlocking.
    Pool.parallelFor(16, [&](size_t J) { Out[I][J] = static_cast<int>(I * 16 + J); });
  });
  for (size_t I = 0; I != Out.size(); ++I)
    for (size_t J = 0; J != 16; ++J)
      EXPECT_EQ(Out[I][J], static_cast<int>(I * 16 + J));
  EXPECT_FALSE(TaskPool::insideTask());
}

TEST(TaskPool, ExceptionsPropagateToCaller) {
  TaskPool Pool(4);
  EXPECT_THROW(
      Pool.parallelFor(32,
                       [&](size_t I) {
                         if (I == 17)
                           throw std::runtime_error("task 17 failed");
                       }),
      std::runtime_error);
  // The pool must remain usable after a failed batch.
  std::vector<int> Out(8, 0);
  Pool.parallelFor(Out.size(), [&](size_t I) { Out[I] = 1; });
  EXPECT_EQ(std::accumulate(Out.begin(), Out.end(), 0), 8);
}

TEST(TaskPool, AllTasksRunDespiteThrowAtAnyJobCount) {
  // The contract "remaining tasks still run, first exception rethrown"
  // must hold on the inline (jobs=1) path too, so error collection into
  // per-index slots never depends on the job count.
  for (unsigned Jobs : {1u, 4u}) {
    TaskPool Pool(Jobs);
    std::vector<int> Ran(16, 0);
    EXPECT_THROW(Pool.parallelFor(Ran.size(),
                                  [&](size_t I) {
                                    Ran[I] = 1;
                                    if (I == 3)
                                      throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    EXPECT_EQ(std::accumulate(Ran.begin(), Ran.end(), 0), 16)
        << "jobs=" << Jobs;
  }
}

TEST(TaskPool, ForkedStreamsMatchSerialAtAnyJobCount) {
  Rng Base(0xABCDEF);
  auto Run = [&](unsigned Jobs) {
    TaskPool Pool(Jobs);
    std::vector<uint64_t> Draws(64, 0);
    Pool.parallelFor(Draws.size(), Base,
                     [&](size_t I, Rng &Stream) { Draws[I] = Stream.next64(); });
    return Draws;
  };
  std::vector<uint64_t> Serial = Run(1);
  // Each slot is exactly Base.fork(i)'s first draw...
  for (size_t I = 0; I != Serial.size(); ++I)
    EXPECT_EQ(Serial[I], Base.fork(I).next64());
  // ...at any parallelism.
  EXPECT_EQ(Run(4), Serial);
  EXPECT_EQ(Run(7), Serial);
}
