//===- tests/workloads_test.cpp - workloads/ unit tests ----------------------===//

#include "workloads/ProgramGenerator.h"
#include "workloads/WorkloadFamily.h"

#include "TestHelpers.h"
#include "features/Features.h"
#include "mir/Verifier.h"

#include <gtest/gtest.h>

#include <set>

using namespace schedfilter;
using namespace schedfilter::test;

TEST(BenchmarkSpec, SuitesMatchPaperTables) {
  std::vector<BenchmarkSpec> Spec = specjvm98Suite();
  ASSERT_EQ(Spec.size(), 7u); // Table 2
  EXPECT_EQ(Spec[0].Name, "compress");
  EXPECT_EQ(Spec[1].Name, "jess");
  EXPECT_EQ(Spec[2].Name, "db");
  EXPECT_EQ(Spec[3].Name, "javac");
  EXPECT_EQ(Spec[4].Name, "mpegaudio");
  EXPECT_EQ(Spec[5].Name, "raytrace");
  EXPECT_EQ(Spec[6].Name, "jack");

  std::vector<BenchmarkSpec> Fp = fpSuite();
  ASSERT_EQ(Fp.size(), 6u); // Table 7
  EXPECT_EQ(Fp[0].Name, "linpack");
  EXPECT_EQ(Fp[5].Name, "scimark");
}

TEST(BenchmarkSpec, UniqueSeedsAndNames) {
  std::set<uint64_t> Seeds;
  std::set<std::string> Names;
  for (const auto &Suite : {specjvm98Suite(), fpSuite()})
    for (const BenchmarkSpec &S : Suite) {
      Seeds.insert(S.Seed);
      Names.insert(S.Name);
      EXPECT_FALSE(S.Description.empty());
    }
  EXPECT_EQ(Seeds.size(), 13u);
  EXPECT_EQ(Names.size(), 13u);
}

TEST(BenchmarkSpec, FindByName) {
  ASSERT_NE(findBenchmarkSpec("mpegaudio"), nullptr);
  EXPECT_EQ(findBenchmarkSpec("mpegaudio")->Name, "mpegaudio");
  ASSERT_NE(findBenchmarkSpec("aes"), nullptr);
  EXPECT_EQ(findBenchmarkSpec("no-such-benchmark"), nullptr);
}

TEST(ProgramGenerator, DeterministicFromSeed) {
  const BenchmarkSpec *Spec = findBenchmarkSpec("jess");
  BenchmarkSpec S = *Spec;
  S.NumMethods = 6;
  Program A = ProgramGenerator(S).generate();
  Program B = ProgramGenerator(S).generate();
  ASSERT_EQ(A.totalBlocks(), B.totalBlocks());
  ASSERT_EQ(A.totalInstructions(), B.totalInstructions());
  // Deep equality through textual dumps of a few blocks.
  for (size_t MI = 0; MI != A.size(); ++MI)
    for (size_t BI = 0; BI != A[MI].size(); ++BI) {
      EXPECT_EQ(A[MI][BI].toString(), B[MI][BI].toString());
      EXPECT_EQ(A[MI][BI].getExecCount(), B[MI][BI].getExecCount());
    }
}

TEST(ProgramGenerator, DifferentSeedsDiffer) {
  BenchmarkSpec S = *findBenchmarkSpec("jess");
  S.NumMethods = 6;
  Program A = ProgramGenerator(S).generate();
  S.Seed ^= 0xdeadbeef;
  Program B = ProgramGenerator(S).generate();
  EXPECT_NE(A.totalInstructions(), B.totalInstructions());
}

TEST(ProgramGenerator, ProgramsVerify) {
  for (const auto &Suite :
       {shrinkSuite(specjvm98Suite(), 5), shrinkSuite(fpSuite(), 5)})
    for (const BenchmarkSpec &S : Suite) {
      Program P = ProgramGenerator(S).generate();
      VerifyResult R = verifyProgram(P);
      EXPECT_TRUE(R.Ok) << S.Name << ": " << R.Message;
    }
}

TEST(ProgramGenerator, RespectsMethodCounts) {
  BenchmarkSpec S = *findBenchmarkSpec("db");
  S.NumMethods = 17;
  Program P = ProgramGenerator(S).generate();
  EXPECT_EQ(P.size(), 17u);
  for (const Method &M : P) {
    EXPECT_GE(static_cast<int>(M.size()), S.MinBlocksPerMethod);
    EXPECT_LE(static_cast<int>(M.size()), S.MaxBlocksPerMethod);
  }
}

TEST(ProgramGenerator, ExecCountsPositive) {
  BenchmarkSpec S = *findBenchmarkSpec("compress");
  S.NumMethods = 8;
  Program P = ProgramGenerator(S).generate();
  P.forEachBlock(
      [](const BasicBlock &BB) { EXPECT_GE(BB.getExecCount(), 1u); });
}

TEST(ProgramGenerator, FloatHeavyVsIntHeavyProfiles) {
  // mpegaudio must emit far more floating point than javac; javac far
  // more calls than linpack.  This is the population signal the filter
  // learns from.
  auto FracOf = [](const std::string &Name, unsigned Feature) {
    BenchmarkSpec S = *findBenchmarkSpec(Name);
    S.NumMethods = 20;
    Program P = ProgramGenerator(S).generate();
    double Sum = 0.0, N = 0.0;
    P.forEachBlock([&](const BasicBlock &BB) {
      if (BB.empty())
        return;
      Sum += extractFeatures(BB)[Feature];
      N += 1.0;
    });
    return Sum / N;
  };
  EXPECT_GT(FracOf("mpegaudio", FeatFloat), 4.0 * FracOf("javac", FeatFloat));
  EXPECT_GT(FracOf("javac", FeatCall), 2.0 * FracOf("linpack", FeatCall));
  EXPECT_GT(FracOf("db", FeatLoad), 0.9 * FracOf("javac", FeatLoad));
}

TEST(ProgramGenerator, TrivialBlocksExist) {
  BenchmarkSpec S = *findBenchmarkSpec("javac");
  S.NumMethods = 20;
  Program P = ProgramGenerator(S).generate();
  size_t Tiny = 0, Total = 0;
  P.forEachBlock([&](const BasicBlock &BB) {
    ++Total;
    Tiny += BB.size() <= 3;
  });
  // javac sets TrivialBlockProb = 0.40; with yields/moves some end up
  // larger, but a sizable fraction must stay tiny.
  EXPECT_GT(static_cast<double>(Tiny) / static_cast<double>(Total), 0.25);
}

TEST(ProgramGenerator, GenerateBlockHonorsStatementCount) {
  BenchmarkSpec S = *findBenchmarkSpec("linpack");
  Rng R(7);
  BasicBlock Zero = ProgramGenerator(S).generateBlock(R, 0, true);
  EXPECT_LE(Zero.size(), 4u); // at most yield + move + cmp-ish + term
  BasicBlock Many = ProgramGenerator(S).generateBlock(R, 8, true);
  EXPECT_GT(Many.size(), Zero.size());
}

TEST(ProgramGenerator, HazardsAppearAtExpectedRates) {
  BenchmarkSpec S = *findBenchmarkSpec("javac");
  S.NumMethods = 30;
  Program P = ProgramGenerator(S).generate();
  size_t WithYield = 0, Total = 0;
  P.forEachBlock([&](const BasicBlock &BB) {
    ++Total;
    for (const Instruction &I : BB)
      if (I.isInCategory(CatYieldPoint)) {
        ++WithYield;
        break;
      }
  });
  double Frac = static_cast<double>(WithYield) / static_cast<double>(Total);
  EXPECT_GT(Frac, 0.15);
  EXPECT_LT(Frac, 0.40);
}

//===----------------------------------------------------------------------===//
// WorkloadFamily registry
//===----------------------------------------------------------------------===//

namespace {

void expectProgramsIdentical(const Program &A, const Program &B) {
  ASSERT_EQ(A.size(), B.size());
  ASSERT_EQ(A.totalBlocks(), B.totalBlocks());
  ASSERT_EQ(A.totalInstructions(), B.totalInstructions());
  for (size_t MI = 0; MI != A.size(); ++MI) {
    ASSERT_EQ(A[MI].size(), B[MI].size());
    for (size_t BI = 0; BI != A[MI].size(); ++BI) {
      EXPECT_EQ(A[MI][BI].toString(), B[MI][BI].toString());
      EXPECT_EQ(A[MI][BI].getExecCount(), B[MI][BI].getExecCount());
    }
  }
}

} // namespace

TEST(WorkloadRegistry, BuiltinFamiliesInRegistrationOrder) {
  const std::vector<const WorkloadFamily *> &Fams =
      WorkloadRegistry::instance().families();
  ASSERT_EQ(Fams.size(), 5u);
  const char *Expected[] = {"specjvm98", "fp", "serverloop", "fpkernel",
                            "ptrchase"};
  for (size_t I = 0; I != Fams.size(); ++I) {
    EXPECT_STREQ(Fams[I]->name(), Expected[I]);
    EXPECT_NE(Fams[I]->description()[0], '\0');
    EXPECT_GE(Fams[I]->version(), 1u);
    EXPECT_EQ(findWorkloadFamily(Fams[I]->name()), Fams[I]);
  }
  EXPECT_EQ(findWorkloadFamily("no-such-family"), nullptr);
}

TEST(WorkloadRegistry, UniqueNamesAndSeedsAcrossEveryFamily) {
  std::set<uint64_t> Seeds;
  std::set<std::string> Names;
  size_t Total = 0;
  for (const WorkloadFamily *F : WorkloadRegistry::instance().families())
    for (const BenchmarkSpec &S : F->makeBenchmarkSuite()) {
      ++Total;
      Seeds.insert(S.Seed);
      Names.insert(S.Name);
      EXPECT_EQ(S.Family, F->name()) << S.Name;
      EXPECT_FALSE(S.Description.empty()) << S.Name;
      EXPECT_EQ(findBenchmarkSpec(S.Name)->Seed, S.Seed);
    }
  // Names and seeds are globally unique, not merely per family.
  EXPECT_EQ(Seeds.size(), Total);
  EXPECT_EQ(Names.size(), Total);
}

TEST(WorkloadRegistry, LoadIsDeterministicForEveryFamily) {
  for (const WorkloadFamily *F : WorkloadRegistry::instance().families()) {
    BenchmarkSpec S = F->makeBenchmarkSuite().front();
    S.NumMethods = 5;
    Program A = F->load(S);
    Program B = F->load(S);
    expectProgramsIdentical(A, B);
  }
}

TEST(WorkloadRegistry, ProgramsVerifyForEveryFamily) {
  for (const WorkloadFamily *F : WorkloadRegistry::instance().families())
    for (const BenchmarkSpec &S : shrinkSuite(F->makeBenchmarkSuite(), 4)) {
      Program P = generateWorkloadProgram(S);
      VerifyResult R = verifyProgram(P);
      EXPECT_TRUE(R.Ok) << F->name() << "/" << S.Name << ": " << R.Message;
      EXPECT_EQ(P.getName(), S.Name);
    }
}

TEST(WorkloadRegistry, FamilyLessSpecFallsBackToProgramGenerator) {
  // A hand-built spec with no Family must expand exactly as the
  // pre-registry ProgramGenerator path did -- and specjvm98's registered
  // load() is that same path, so the two can never diverge.
  BenchmarkSpec S = *findBenchmarkSpec("jess");
  S.NumMethods = 6;
  BenchmarkSpec Bare = S;
  Bare.Family.clear();
  expectProgramsIdentical(generateWorkloadProgram(Bare),
                          ProgramGenerator(Bare).generate());
  expectProgramsIdentical(generateWorkloadProgram(S),
                          findWorkloadFamily("specjvm98")->load(S));
  EXPECT_EQ(workloadGeneratorVersion(Bare), GeneratorVersion);
  EXPECT_EQ(workloadGeneratorVersion(S),
            findWorkloadFamily("specjvm98")->version());
  BenchmarkSpec Chase =
      findWorkloadFamily("ptrchase")->makeBenchmarkSuite().front();
  EXPECT_EQ(workloadGeneratorVersion(Chase),
            findWorkloadFamily("ptrchase")->version());
}

TEST(GenerateSuite, OneProgramPerSpecInOrder) {
  std::vector<BenchmarkSpec> Suite = shrinkSuite(specjvm98Suite(), 3);
  std::vector<Program> Programs = generateSuite(Suite);
  ASSERT_EQ(Programs.size(), Suite.size());
  for (size_t I = 0; I != Suite.size(); ++I)
    EXPECT_EQ(Programs[I].getName(), Suite[I].Name);
}
