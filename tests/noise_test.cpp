//===- tests/noise_test.cpp - noise/ unit + determinism + golden tests ------===//
//
// The noise layer's contract, pinned: every source is a pure function of
// (stack seed, source index, run index, record index), so any stack is
// bit-reproducible at any job count; composition order is semantic; the
// empty stack is the identity; and each source's distribution matches
// its documented shape at a fixed seed.  The Golden tests pin the
// robustness frontier's headline on the full SPECjvm98 stand-in suite --
// a rung where the induced filter still beats always-schedule and a rung
// where it loses.
//
//===----------------------------------------------------------------------===//

#include "noise/Robustness.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace schedfilter;

namespace {

/// The tools' default --noise-seed (tools/NoiseOption.h): the paper's
/// conference date.  Golden pins below must match bench_robustness run
/// with no flags, so the seed is repeated here literally.
constexpr uint64_t GoldenSeed = 20040609;

BlockRecord record(uint64_t CostNo, uint64_t CostSched,
                   uint64_t ExecCount = 1) {
  BlockRecord R;
  R.CostNoSched = CostNo;
  R.CostSched = CostSched;
  R.ExecCount = ExecCount;
  return R;
}

/// A synthetic run of \p N records with varied positive costs (plus one
/// zero-cost record) -- enough structure for perturbation tests without
/// generating programs.
BenchmarkRun syntheticRun(const std::string &Name, size_t N) {
  BenchmarkRun Run;
  Run.Name = Name;
  Run.ModelName = "ppc7410";
  for (size_t I = 0; I != N; ++I)
    Run.Records.push_back(
        record(100 + 13 * (I % 7), 60 + 11 * (I % 9), 1 + I % 5));
  Run.Records.push_back(record(0, 0));
  return Run;
}

std::vector<BenchmarkRun> syntheticSuite(size_t Runs, size_t RecordsPerRun) {
  std::vector<BenchmarkRun> Suite;
  for (size_t B = 0; B != Runs; ++B)
    Suite.push_back(syntheticRun("run" + std::to_string(B), RecordsPerRun));
  return Suite;
}

bool sameRecords(const std::vector<BlockRecord> &A,
                 const std::vector<BlockRecord> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (A[I].X != B[I].X || A[I].CostNoSched != B[I].CostNoSched ||
        A[I].CostSched != B[I].CostSched || A[I].ExecCount != B[I].ExecCount)
      return false;
  return true;
}

bool sameSuiteRecords(const std::vector<BenchmarkRun> &A,
                      const std::vector<BenchmarkRun> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (A[I].ModelName != B[I].ModelName ||
        !sameRecords(A[I].Records, B[I].Records))
      return false;
  return true;
}

NoiseStack parseOrDie(const std::string &Spec, uint64_t Seed) {
  ParseResult<NoiseStack> S = parseNoiseStack(Spec, Seed);
  EXPECT_TRUE(S.has_value()) << Spec;
  return std::move(*S);
}

} // namespace

//===----------------------------------------------------------------------===//
// --noise spec parsing
//===----------------------------------------------------------------------===//

TEST(NoiseParse, EmptySpecIsEmptyStack) {
  NoiseStack S = parseOrDie("", 1);
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.describe(), "none");
  EXPECT_EQ(S.seed(), 1u);
}

TEST(NoiseParse, CanonicalSpellingRoundTrips) {
  // describe() is exactly what parseNoiseStack accepts back, so specs
  // survive a report-header round trip.
  const std::string Spec =
      "jitter:0.1,spikes:0.05,labelflip:0.25,mistune:ppc970,drift:1";
  NoiseStack S = parseOrDie(Spec, 7);
  EXPECT_EQ(S.size(), 5u);
  EXPECT_EQ(S.describe(), Spec);
  EXPECT_EQ(parseOrDie(S.describe(), 7).describe(), Spec);
}

TEST(NoiseParse, SourcesMayRepeat) {
  NoiseStack S = parseOrDie("jitter:0.1,jitter:0.2", 7);
  EXPECT_EQ(S.size(), 2u);
  EXPECT_EQ(S.describe(), "jitter:0.1,jitter:0.2");
}

TEST(NoiseParse, RejectsBadSpecs) {
  const char *Bad[] = {
      "nosuch:1",      // unknown source
      "jitter",        // missing parameter
      "jitter:",       // empty parameter
      "jitter:abc",    // not a number
      "jitter:0x1",    // hex is banned by the strict contract
      "jitter:1e",     // trailing junk
      "jitter:nan",    // non-finite
      "jitter:2.1",    // above range [0, 2]
      "jitter:-0.1",   // below range
      "labelflip:1.5", // above range [0, 1]
      "spikes:-1",     // below range
      "drift:4.5",     // above range [0, 4]
      "mistune:vax",   // unknown machine model
      "mistune",       // missing model
      ",jitter:0.1",   // empty leading item
  };
  for (const char *Spec : Bad) {
    ParseResult<NoiseStack> S = parseNoiseStack(Spec, 1);
    EXPECT_FALSE(S.has_value()) << Spec;
  }
}

TEST(NoiseParse, ErrorNamesTheItemOrdinal) {
  ParseResult<NoiseStack> S = parseNoiseStack("jitter:0.1,bogus:1", 1);
  ASSERT_FALSE(S.has_value());
  EXPECT_EQ(S.error().Line, 2u);
  EXPECT_NE(S.error().Message.find("bogus"), std::string::npos);
  EXPECT_NE(S.error().Message.find("jitter:SIGMA"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Stack semantics: identity, determinism, composition order
//===----------------------------------------------------------------------===//

TEST(NoiseStackTest, EmptyStackIsIdentity) {
  std::vector<BenchmarkRun> Suite = syntheticSuite(3, 40);
  std::vector<BenchmarkRun> Orig = Suite;
  NoiseStack S = parseOrDie("", 99);

  TaskPool Pool(4);
  S.perturbSuite(Suite);
  S.perturbSuite(Suite, Pool);
  EXPECT_TRUE(sameSuiteRecords(Suite, Orig));

  // labelRun defers to the plain Labeler byte for byte.
  Dataset Noisy = S.labelRun(Suite[0], 0, 20.0);
  Dataset Plain = buildDataset(Suite[0].Records, 20.0, Suite[0].Name);
  ASSERT_EQ(Noisy.size(), Plain.size());
  for (size_t I = 0; I != Noisy.size(); ++I) {
    EXPECT_EQ(Noisy[I].X, Plain[I].X);
    EXPECT_EQ(Noisy[I].Y, Plain[I].Y);
  }
  EXPECT_EQ(S.mixDrift(), nullptr);
}

TEST(NoiseStackTest, PerturbationIdenticalAtAnyJobCount) {
  // The acceptance contract, per source and composed: serial, jobs=1 and
  // jobs=4 perturbation of the same suite agree on every record bit.
  for (const char *Spec :
       {"jitter:0.3", "spikes:0.2", "labelflip:0.5",
        "jitter:0.3,spikes:0.2,labelflip:0.5"}) {
    std::vector<BenchmarkRun> Serial = syntheticSuite(6, 120);
    std::vector<BenchmarkRun> Jobs1 = Serial, Jobs4 = Serial;
    NoiseStack S = parseOrDie(Spec, 42);

    S.perturbSuite(Serial);
    TaskPool P1(1), P4(4);
    S.perturbSuite(Jobs1, P1);
    S.perturbSuite(Jobs4, P4);
    EXPECT_TRUE(sameSuiteRecords(Serial, Jobs1)) << Spec;
    EXPECT_TRUE(sameSuiteRecords(Serial, Jobs4)) << Spec;

    // Label lanes too: parallel labelSuite equals per-run labelRun.
    std::vector<Dataset> L4 = S.labelSuite(Serial, 0.0, P4);
    for (size_t B = 0; B != Serial.size(); ++B) {
      Dataset One = S.labelRun(Serial[B], B, 0.0);
      ASSERT_EQ(L4[B].size(), One.size()) << Spec;
      for (size_t I = 0; I != One.size(); ++I)
        EXPECT_EQ(L4[B][I].Y, One[I].Y) << Spec;
    }
  }
}

TEST(NoiseStackTest, PerRunStreamsIndependentOfVisitOrder) {
  // perturbRun keys the lane on the run *index*, so perturbing run 2
  // alone yields the same bytes as perturbing the whole suite.
  std::vector<BenchmarkRun> Suite = syntheticSuite(4, 60);
  std::vector<BenchmarkRun> Whole = Suite;
  NoiseStack S = parseOrDie("jitter:0.4,spikes:0.3", 5);
  S.perturbSuite(Whole);
  BenchmarkRun Lone = Suite[2];
  S.perturbRun(Lone, 2);
  EXPECT_TRUE(sameRecords(Lone.Records, Whole[2].Records));
}

TEST(NoiseStackTest, CompositionOrderIsSemantic) {
  // jitter-then-spikes and spikes-then-jitter are different experiments:
  // the second source sees the first's record values, and the sources'
  // streams are keyed by stack position.  Pinned so a future "helpful"
  // canonicalization cannot silently reorder stacks.
  std::vector<BenchmarkRun> AB = syntheticSuite(2, 100);
  std::vector<BenchmarkRun> BA = AB;
  parseOrDie("jitter:0.5,spikes:0.5", 11).perturbSuite(AB);
  parseOrDie("spikes:0.5,jitter:0.5", 11).perturbSuite(BA);
  EXPECT_FALSE(sameSuiteRecords(AB, BA));
}

TEST(NoiseStackTest, SeedSelectsTheExperiment) {
  std::vector<BenchmarkRun> S1 = syntheticSuite(2, 100);
  std::vector<BenchmarkRun> S2 = S1, S1Again = S1;
  parseOrDie("jitter:0.3", 1).perturbSuite(S1);
  parseOrDie("jitter:0.3", 2).perturbSuite(S2);
  parseOrDie("jitter:0.3", 1).perturbSuite(S1Again);
  EXPECT_FALSE(sameSuiteRecords(S1, S2));
  EXPECT_TRUE(sameSuiteRecords(S1, S1Again));
}

//===----------------------------------------------------------------------===//
// Per-source distribution shape (fixed seeds, generous bounds)
//===----------------------------------------------------------------------===//

TEST(NoiseStats, JitterIsUnbiasedInLogSpaceAndClamped) {
  const size_t N = 4000;
  const double Sigma = 0.2;
  BenchmarkRun Run;
  Run.ModelName = "ppc7410";
  for (size_t I = 0; I != N; ++I)
    Run.Records.push_back(record(1000, 1000));
  Run.Records.push_back(record(0, 7)); // zero stays zero, partner jitters

  NoiseStack S = parseOrDie("jitter:0.2", 17);
  S.perturbRun(Run, 0);

  double SumLog = 0.0;
  size_t Changed = 0;
  for (size_t I = 0; I != N; ++I) {
    uint64_t C = Run.Records[I].CostNoSched;
    ASSERT_GE(C, 1u);
    SumLog += std::log(static_cast<double>(C) / 1000.0);
    Changed += C != 1000;
    // The two costs of one record draw independent factors.
    if (Run.Records[I].CostSched != C)
      ++Changed;
  }
  // Mean log-factor ~ N(0, Sigma/sqrt(N)); 5 standard errors of slack.
  EXPECT_NEAR(SumLog / static_cast<double>(N), 0.0,
              5.0 * Sigma / std::sqrt(static_cast<double>(N)));
  EXPECT_GT(Changed, N / 2); // the noise actually noises
  EXPECT_EQ(Run.Records[N].CostNoSched, 0u);
  EXPECT_GE(Run.Records[N].CostSched, 1u);
}

TEST(NoiseStats, SpikeRateAndTruncatedTail) {
  const size_t N = 4000;
  const double P = 0.1;
  BenchmarkRun Run;
  Run.ModelName = "ppc7410";
  for (size_t I = 0; I != N; ++I)
    Run.Records.push_back(record(100, 50));
  Run.Records.push_back(record(0, 0)); // empty block: nothing to miss on

  NoiseStack S = parseOrDie("spikes:0.1", 23);
  S.perturbRun(Run, 0);

  size_t Spiked = 0;
  uint64_t MaxBurst = 0;
  for (size_t I = 0; I != N; ++I) {
    const BlockRecord &R = Run.Records[I];
    if (R.CostNoSched == 100) {
      EXPECT_EQ(R.CostSched, 50u); // untouched record is fully untouched
      continue;
    }
    ++Spiked;
    uint64_t Burst = R.CostNoSched - 100;
    // The same burst lands on both costs (a miss stalls the block
    // however it was scheduled) and respects the documented support.
    EXPECT_EQ(R.CostSched - 50, Burst);
    EXPECT_GE(Burst, 8u);
    EXPECT_LE(Burst, 4096u);
    MaxBurst = std::max(MaxBurst, Burst);
  }
  double Rate = static_cast<double>(Spiked) / static_cast<double>(N);
  EXPECT_NEAR(Rate, P, 5.0 * std::sqrt(P * (1 - P) / N));
  EXPECT_GT(MaxBurst, 64u); // the tail is actually heavy
  EXPECT_EQ(Run.Records[N].CostNoSched, 0u);
  EXPECT_EQ(Run.Records[N].CostSched, 0u);
}

TEST(NoiseStats, LabelFlipRateMatchesAndBandStaysDropped) {
  // 2000 clear-LS records at t=0: the flip fraction must track P.
  const size_t N = 2000;
  const double P = 0.3;
  BenchmarkRun Run;
  Run.Name = "flips";
  for (size_t I = 0; I != N; ++I)
    Run.Records.push_back(record(100, 50)); // 50% benefit -> LS

  NoiseStack S = parseOrDie("labelflip:0.3", 31);
  Dataset D = S.labelRun(Run, 0, 0.0);
  ASSERT_EQ(D.size(), N); // flips never change the training-set size
  double Rate = static_cast<double>(D.countLabel(Label::NS)) /
                static_cast<double>(N);
  EXPECT_NEAR(Rate, P, 5.0 * std::sqrt(P * (1 - P) / N));

  // Records the threshold rule dropped stay dropped even at flip
  // probability 1: the source corrupts answers, not questions.
  BenchmarkRun Band;
  Band.Name = "band";
  for (size_t I = 0; I != 50; ++I)
    Band.Records.push_back(record(100, 90)); // 10% benefit: in (0, 20]
  EXPECT_EQ(parseOrDie("labelflip:1", 31).labelRun(Band, 0, 20.0).size(), 0u);
}

TEST(NoiseMisTune, SwapsModelAndRecomputesReports) {
  MachineModel Train = MachineModel::ppc7410();
  std::vector<BenchmarkRun> Suite =
      generateSuiteData(test::shrinkSuite(specjvm98Suite(), 4), Train);
  std::vector<BenchmarkRun> Orig = Suite;

  NoiseStack S = parseOrDie("mistune:ppc970", 3);
  S.perturbSuite(Suite);
  std::optional<MachineModel> Serve = MachineModel::byName("ppc970");
  ASSERT_TRUE(Serve.has_value());
  for (size_t B = 0; B != Suite.size(); ++B) {
    // The mis-tuning: records keep the training model's costs...
    EXPECT_TRUE(sameRecords(Suite[B].Records, Orig[B].Records));
    // ...while the run's identity and fixed policies move to the serve
    // machine.
    EXPECT_EQ(Suite[B].ModelName, "ppc970");
    CompileReport Never =
        compileProgram(Suite[B].Prog, *Serve, SchedulingPolicy::Never);
    CompileReport Always =
        compileProgram(Suite[B].Prog, *Serve, SchedulingPolicy::Always);
    EXPECT_EQ(Suite[B].NeverReport.SimulatedTime, Never.SimulatedTime);
    EXPECT_EQ(Suite[B].AlwaysReport.SimulatedTime, Always.SimulatedTime);
    EXPECT_EQ(Suite[B].AlwaysReport.SchedulingWork, Always.SchedulingWork);
    EXPECT_NE(Suite[B].NeverReport.SimulatedTime,
              Orig[B].NeverReport.SimulatedTime);
  }

  // Mis-tuning to the model the suite was traced under is the identity.
  std::vector<BenchmarkRun> Same = Orig;
  parseOrDie("mistune:ppc7410", 3).perturbSuite(Same);
  for (size_t B = 0; B != Same.size(); ++B) {
    EXPECT_EQ(Same[B].ModelName, Orig[B].ModelName);
    EXPECT_EQ(Same[B].NeverReport.SimulatedTime,
              Orig[B].NeverReport.SimulatedTime);
  }
}

TEST(NoiseDrift, FactorsArePureFunctionsOfEpochAndApp) {
  // The drift function borrows its stack, so every stack here outlives
  // the function taken from it.
  NoiseStack S = parseOrDie("drift:1", 13);
  std::function<double(uint64_t, size_t)> F = S.mixDrift();
  ASSERT_NE(F, nullptr);
  NoiseStack SameSeed = parseOrDie("drift:1", 13);
  std::function<double(uint64_t, size_t)> G = SameSeed.mixDrift();

  bool Varies = false;
  double First = F(0, 0);
  for (uint64_t E = 0; E != 48; ++E)
    for (size_t A = 0; A != 3; ++A) {
      double V = F(E, A);
      EXPECT_GT(V, 0.0);
      EXPECT_EQ(V, F(E, A)); // re-evaluation is free of hidden state
      EXPECT_EQ(V, G(E, A)); // same (seed, spec) -> same factor
      Varies = Varies || V != First;
    }
  EXPECT_TRUE(Varies); // the mix genuinely rotates

  // Amplitude 0 parses but drifts() is false: the service takes its
  // exact pre-noise path (no drift function at all).
  NoiseStack Zero = parseOrDie("drift:0", 13);
  EXPECT_EQ(Zero.mixDrift(), nullptr);
  // Different seeds give a different rotation.
  NoiseStack OtherSeed = parseOrDie("drift:1", 14);
  EXPECT_NE(OtherSeed.mixDrift()(1, 0), F(1, 0));
}

//===----------------------------------------------------------------------===//
// Golden pins: the robustness frontier on the full SPECjvm98 stand-in
//===----------------------------------------------------------------------===//

TEST(Golden, RobustnessFrontierWinsCleanLosesAtTopRung) {
  // The acceptance headline, at bench_robustness's defaults (t = 20,
  // noise seed 20040609): on the clean suite the induced filter beats
  // always-schedule by a wide margin; by the top rung of the severity
  // ladder always-schedule wins.  Margins never increase with severity,
  // which bench_robustness reports as "frontier monotone: yes".
  ExperimentEngine Engine(4);
  std::vector<BenchmarkRun> Suite = Engine.generateSuiteData(
      specjvm98Suite(), MachineModel::ppc7410());

  std::vector<RobustnessPoint> Points;
  for (unsigned L = 0; L != numRobustnessLevels(); ++L)
    Points.push_back(runRobustnessPoint(
        Engine, Suite, robustnessStack(L, GoldenSeed), 20.0));

  // Clean rung: the paper's frontier.  Effort well under retention.
  EXPECT_NEAR(Points.front().Retention, 0.68, 0.05);
  EXPECT_NEAR(Points.front().EffortRatio, 0.35, 0.05);
  EXPECT_GT(Points.front().WinMargin, 0.25);
  // Top rung: the corruption has eaten the whole margin.
  EXPECT_LT(Points.back().WinMargin, 0.0);
  EXPECT_GT(Points.back().WinMargin, -0.15);
  // Monotone frontier between them.
  for (size_t I = 1; I != Points.size(); ++I)
    EXPECT_LE(Points[I].WinMargin, Points[I - 1].WinMargin + 1e-12)
        << "rung " << I;
}

TEST(Golden, RobustnessPointIdenticalAtJobsOneAndFour) {
  // End-to-end determinism of a perturbed pipeline (perturb -> label ->
  // LOOCV -> price): every field of a mid-ladder point agrees exactly
  // between a serial and a four-worker engine.
  std::vector<RobustnessPoint> P;
  for (unsigned Jobs : {1u, 4u}) {
    ExperimentEngine Engine(Jobs);
    std::vector<BenchmarkRun> Suite = Engine.generateSuiteData(
        specjvm98Suite(), MachineModel::ppc7410());
    P.push_back(runRobustnessPoint(Engine, Suite,
                                   robustnessStack(2, GoldenSeed), 20.0));
  }
  EXPECT_EQ(P[0].Stack, P[1].Stack);
  EXPECT_EQ(P[0].EffortRatio, P[1].EffortRatio);
  EXPECT_EQ(P[0].AppTimeLN, P[1].AppTimeLN);
  EXPECT_EQ(P[0].AppTimeLS, P[1].AppTimeLS);
  EXPECT_EQ(P[0].Retention, P[1].Retention);
  EXPECT_EQ(P[0].WinMargin, P[1].WinMargin);
  EXPECT_EQ(P[0].TrainLS, P[1].TrainLS);
  EXPECT_EQ(P[0].TrainNS, P[1].TrainNS);
  EXPECT_EQ(P[0].RuntimeLS, P[1].RuntimeLS);
  EXPECT_EQ(P[0].RuntimeBlocks, P[1].RuntimeBlocks);
}
