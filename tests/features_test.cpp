//===- tests/features_test.cpp - features/ unit tests -----------------------===//

#include "features/Features.h"

#include "TestHelpers.h"
#include "workloads/ProgramGenerator.h"

#include <gtest/gtest.h>

#include <set>

using namespace schedfilter;
using namespace schedfilter::test;

TEST(Features, EmptyBlockAllZero) {
  BasicBlock BB("empty");
  FeatureVector X = extractFeatures(BB);
  for (unsigned F = 0; F != NumFeatures; ++F)
    EXPECT_EQ(X[F], 0.0);
}

TEST(Features, BBLenIsInstructionCount) {
  EXPECT_EQ(extractFeatures(makeChainBlock())[FeatBBLen], 4.0);
  EXPECT_EQ(extractFeatures(makeIlpFloatBlock())[FeatBBLen], 6.0);
}

TEST(Features, KnownBlockFractions) {
  // ilp-float: 2 loads, 3 float ops, 1 store; all six use either the FPU
  // or the LSU.
  FeatureVector X = extractFeatures(makeIlpFloatBlock());
  EXPECT_DOUBLE_EQ(X[FeatLoad], 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(X[FeatStore], 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(X[FeatFloat], 3.0 / 6.0);
  EXPECT_DOUBLE_EQ(X[FeatBranch], 0.0);
  EXPECT_DOUBLE_EQ(X[FeatCall], 0.0);
  EXPECT_DOUBLE_EQ(X[FeatInteger], 0.0);
}

TEST(Features, FractionsAreRatiosToBlockSize) {
  // The paper presents all features except bbLen as fractions so the
  // learner generalizes across block sizes.
  BasicBlock BB("frac");
  BB.append(Instruction(Opcode::LoadInt, {100}, {0}));
  BB.append(Instruction(Opcode::Add, {101}, {100, 1}));
  BB.append(Instruction(Opcode::Add, {102}, {101, 1}));
  BB.append(Instruction(Opcode::Br, {}, {}));
  FeatureVector X = extractFeatures(BB);
  EXPECT_DOUBLE_EQ(X[FeatLoad], 0.25);
  EXPECT_DOUBLE_EQ(X[FeatInteger], 0.5);
  EXPECT_DOUBLE_EQ(X[FeatBranch], 0.25);
}

TEST(Features, OverlappingCategoriesAllCounted) {
  BasicBlock BB("call");
  BB.append(Instruction(Opcode::Call, {100}, {0}));
  FeatureVector X = extractFeatures(BB);
  EXPECT_DOUBLE_EQ(X[FeatCall], 1.0);
  EXPECT_DOUBLE_EQ(X[FeatPEI], 1.0);
  EXPECT_DOUBLE_EQ(X[FeatGC], 1.0);
}

TEST(Features, HazardAttributesCounted) {
  BasicBlock BB("pei-load");
  BB.append(Instruction(Opcode::LoadRef, {100}, {0}, AttrPEI));
  BB.append(Instruction(Opcode::LoadRef, {101}, {1}));
  FeatureVector X = extractFeatures(BB);
  EXPECT_DOUBLE_EQ(X[FeatPEI], 0.5);
  EXPECT_DOUBLE_EQ(X[FeatLoad], 1.0);
}

TEST(Features, YieldAndThreadSwitchAndGC) {
  BasicBlock BB("hazards");
  BB.append(Instruction(Opcode::YieldPoint, {}, {}));
  BB.append(Instruction(Opcode::ThreadSwitchPoint, {}, {}));
  BB.append(Instruction(Opcode::GcSafepoint, {}, {}));
  BB.append(Instruction(Opcode::Add, {100}, {0, 1}));
  FeatureVector X = extractFeatures(BB);
  EXPECT_DOUBLE_EQ(X[FeatYield], 0.25);
  EXPECT_DOUBLE_EQ(X[FeatTS], 0.25);
  EXPECT_DOUBLE_EQ(X[FeatGC], 0.25);
}

TEST(Features, NamesUniqueAndNonEmpty) {
  std::set<std::string> Names;
  for (unsigned F = 0; F != NumFeatures; ++F) {
    std::string N = getFeatureName(F);
    EXPECT_FALSE(N.empty());
    Names.insert(N);
  }
  EXPECT_EQ(Names.size(), static_cast<size_t>(NumFeatures));
}

TEST(Features, TableOneOrder) {
  // Order matters: rule printouts and CSV headers follow Table 1.
  EXPECT_STREQ(getFeatureName(FeatBBLen), "bbLen");
  EXPECT_STREQ(getFeatureName(FeatBranch), "branches");
  EXPECT_STREQ(getFeatureName(FeatCall), "calls");
  EXPECT_STREQ(getFeatureName(FeatLoad), "loads");
  EXPECT_STREQ(getFeatureName(FeatYield), "yieldpoints");
}

TEST(Features, WorkIsLinearInBlockSize) {
  EXPECT_EQ(featureExtractionWork(makeChainBlock()), 5u);
  EXPECT_EQ(featureExtractionWork(makeIlpFloatBlock()), 7u);
}

// Property: all fractions lie in [0, 1] and equal manual recounts.
class FeatureProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FeatureProperty, FractionsInRangeAndConsistent) {
  const BenchmarkSpec *Spec = findBenchmarkSpec("jess");
  Rng R(GetParam());
  for (int Trial = 0; Trial != 20; ++Trial) {
    BasicBlock BB = ProgramGenerator(*Spec).generateBlock(
        R, R.range(0, 7), /*EndWithTerminator=*/true);
    FeatureVector X = extractFeatures(BB);
    EXPECT_EQ(X[FeatBBLen], static_cast<double>(BB.size()));
    for (unsigned F = FeatBranch; F != NumFeatures; ++F) {
      EXPECT_GE(X[F], 0.0);
      EXPECT_LE(X[F], 1.0);
    }
    // Manual recount of the load fraction.
    unsigned Loads = 0;
    for (const Instruction &I : BB)
      Loads += I.isInCategory(CatLoad);
    EXPECT_DOUBLE_EQ(X[FeatLoad],
                     static_cast<double>(Loads) /
                         static_cast<double>(BB.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeatureProperty,
                         ::testing::Values(3, 1415, 92, 65, 35));
