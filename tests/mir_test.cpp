//===- tests/mir_test.cpp - mir/ unit tests ----------------------------------===//

#include "mir/Opcode.h"
#include "mir/Program.h"
#include "mir/Verifier.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <set>

using namespace schedfilter;
using namespace schedfilter::test;

TEST(Opcode, EveryOpcodeHasInfo) {
  for (unsigned I = 0; I != getNumOpcodes(); ++I) {
    const OpcodeInfo &Info = getOpcodeInfo(static_cast<Opcode>(I));
    EXPECT_NE(Info.Name, nullptr);
    EXPECT_GT(std::string(Info.Name).size(), 0u);
  }
}

TEST(Opcode, NamesAreUnique) {
  std::set<std::string> Names;
  for (unsigned I = 0; I != getNumOpcodes(); ++I)
    Names.insert(getOpcodeName(static_cast<Opcode>(I)));
  EXPECT_EQ(Names.size(), getNumOpcodes());
}

TEST(Opcode, CategoryAssignments) {
  EXPECT_TRUE(getOpcodeInfo(Opcode::Add).Categories & CatIntegerFU);
  EXPECT_TRUE(getOpcodeInfo(Opcode::FAdd).Categories & CatFloatFU);
  EXPECT_TRUE(getOpcodeInfo(Opcode::LoadInt).Categories & CatLoad);
  EXPECT_TRUE(getOpcodeInfo(Opcode::StoreInt).Categories & CatStore);
  EXPECT_TRUE(getOpcodeInfo(Opcode::Br).Categories & CatBranch);
  EXPECT_TRUE(getOpcodeInfo(Opcode::Ret).Categories & CatReturn);
  EXPECT_TRUE(getOpcodeInfo(Opcode::MemBar).Categories & CatSystemFU);
}

TEST(Opcode, CallsOverlapCategories) {
  // The paper's categories are "possibly overlapping": a call is a call,
  // a PEI, and a GC point all at once.
  uint16_t C = getOpcodeInfo(Opcode::Call).Categories;
  EXPECT_TRUE(C & CatCall);
  EXPECT_TRUE(C & CatPEI);
  EXPECT_TRUE(C & CatGCPoint);
}

TEST(Opcode, TerminatorsMarked) {
  EXPECT_TRUE(getOpcodeInfo(Opcode::Br).IsTerminator);
  EXPECT_TRUE(getOpcodeInfo(Opcode::BrCond).IsTerminator);
  EXPECT_TRUE(getOpcodeInfo(Opcode::Ret).IsTerminator);
  EXPECT_FALSE(getOpcodeInfo(Opcode::Call).IsTerminator);
}

TEST(Opcode, MemoryEffects) {
  EXPECT_TRUE(getOpcodeInfo(Opcode::LoadFloat).ReadsMemory);
  EXPECT_FALSE(getOpcodeInfo(Opcode::LoadFloat).WritesMemory);
  EXPECT_TRUE(getOpcodeInfo(Opcode::StoreRef).WritesMemory);
  // Calls conservatively read and write memory.
  EXPECT_TRUE(getOpcodeInfo(Opcode::Call).ReadsMemory);
  EXPECT_TRUE(getOpcodeInfo(Opcode::Call).WritesMemory);
}

TEST(Instruction, DefsAndUses) {
  Instruction I(Opcode::Add, {5}, {1, 2});
  EXPECT_EQ(I.defs().size(), 1u);
  EXPECT_EQ(I.defs()[0], 5);
  EXPECT_EQ(I.uses().size(), 2u);
}

TEST(Instruction, ExtraAttrsExtendCategories) {
  Instruction Plain(Opcode::LoadInt, {5}, {1});
  EXPECT_FALSE(Plain.isInCategory(CatPEI));
  Instruction Pei(Opcode::LoadInt, {5}, {1}, AttrPEI);
  EXPECT_TRUE(Pei.isInCategory(CatPEI));
  EXPECT_TRUE(Pei.isInCategory(CatLoad)); // opcode category kept
}

TEST(Instruction, AddAttrsOnlyAdds) {
  Instruction I(Opcode::Add, {5}, {1, 2});
  I.addAttrs(AttrGCPoint);
  EXPECT_TRUE(I.isInCategory(CatGCPoint));
  // Non-hazard bits are masked out of attributes.
  Instruction J(Opcode::Add, {5}, {1, 2}, CatLoad);
  EXPECT_FALSE(J.isInCategory(CatLoad));
}

TEST(Instruction, BarrierClassification) {
  EXPECT_TRUE(Instruction(Opcode::Call, {5}, {1}).isBarrier());
  EXPECT_TRUE(Instruction(Opcode::GcSafepoint, {}, {}).isBarrier());
  EXPECT_TRUE(Instruction(Opcode::YieldPoint, {}, {}).isBarrier());
  EXPECT_TRUE(Instruction(Opcode::ThreadSwitchPoint, {}, {}).isBarrier());
  // A PEI alone is not a full barrier.
  EXPECT_FALSE(Instruction(Opcode::NullCheck, {}, {1}).isBarrier());
  EXPECT_FALSE(Instruction(Opcode::Add, {5}, {1, 2}).isBarrier());
}

TEST(Instruction, ToStringMentionsOpcodeAndTags) {
  Instruction I(Opcode::LoadRef, {7}, {3}, AttrPEI);
  std::string S = I.toString();
  EXPECT_NE(S.find("lref"), std::string::npos);
  EXPECT_NE(S.find("pei"), std::string::npos);
  EXPECT_NE(S.find("r7"), std::string::npos);
}

TEST(BasicBlock, AppendAndIterate) {
  BasicBlock BB = makeChainBlock();
  EXPECT_EQ(BB.size(), 4u);
  EXPECT_FALSE(BB.empty());
  size_t N = 0;
  for (const Instruction &I : BB) {
    (void)I;
    ++N;
  }
  EXPECT_EQ(N, 4u);
}

TEST(BasicBlock, ExecCount) {
  BasicBlock BB("b", 42);
  EXPECT_EQ(BB.getExecCount(), 42u);
  BB.setExecCount(7);
  EXPECT_EQ(BB.getExecCount(), 7u);
}

TEST(BasicBlock, ReorderedPermutes) {
  BasicBlock BB = makeIlpFloatBlock();
  std::vector<int> Order = {2, 0, 3, 1, 4, 5};
  BasicBlock R = BB.reordered(Order);
  EXPECT_EQ(R.size(), BB.size());
  EXPECT_EQ(R[0].getOpcode(), BB[2].getOpcode());
  EXPECT_EQ(R[1].getOpcode(), BB[0].getOpcode());
  EXPECT_EQ(R.getExecCount(), BB.getExecCount());
}

TEST(Method, TotalInstructions) {
  Method M("m");
  M.addBlock(makeChainBlock());
  M.addBlock(makeTrivialBlock());
  EXPECT_EQ(M.size(), 2u);
  EXPECT_EQ(M.totalInstructions(), 6u);
}

TEST(Program, CountsAndIteration) {
  Program P("p");
  Method M1("m1");
  M1.addBlock(makeChainBlock());
  Method M2("m2");
  M2.addBlock(makeTrivialBlock());
  M2.addBlock(makeIlpFloatBlock());
  P.addMethod(std::move(M1));
  P.addMethod(std::move(M2));
  EXPECT_EQ(P.size(), 2u);
  EXPECT_EQ(P.totalBlocks(), 3u);
  EXPECT_EQ(P.totalInstructions(), 4u + 2u + 6u);

  size_t Visited = 0;
  P.forEachBlock([&](const BasicBlock &) { ++Visited; });
  EXPECT_EQ(Visited, 3u);
}

TEST(Verifier, AcceptsWellFormedBlocks) {
  EXPECT_TRUE(verifyBlock(makeChainBlock()).Ok);
  EXPECT_TRUE(verifyBlock(makeIlpFloatBlock()).Ok);
  EXPECT_TRUE(verifyBlock(makeTrivialBlock()).Ok);
}

TEST(Verifier, RejectsMisplacedTerminator) {
  BasicBlock BB("bad");
  BB.append(Instruction(Opcode::Br, {}, {}));
  BB.append(Instruction(Opcode::Add, {100}, {0, 1}));
  VerifyResult R = verifyBlock(BB);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Message.find("terminator"), std::string::npos);
}

TEST(Verifier, RejectsWrongDefCount) {
  BasicBlock BB("bad-defs");
  BB.append(Instruction(Opcode::Add, {}, {0, 1})); // add must define a reg
  EXPECT_FALSE(verifyBlock(BB).Ok);
}

TEST(Verifier, MethodAndProgramPropagateFailure) {
  Program P("p");
  Method M("m");
  BasicBlock Bad("bad");
  Bad.append(Instruction(Opcode::StoreInt, {100}, {0, 1})); // store defs=0
  M.addBlock(std::move(Bad));
  P.addMethod(std::move(M));
  VerifyResult R = verifyProgram(P);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Message.find("p.m"), std::string::npos);
}

TEST(Verifier, EmptyBlockIsFine) {
  BasicBlock BB("empty");
  EXPECT_TRUE(verifyBlock(BB).Ok);
}
