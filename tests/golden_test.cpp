//===- tests/golden_test.cpp - pinned end-to-end reproduction numbers ---------===//
//
// Regression guards for the headline numbers reported in EXPERIMENTS.md,
// computed on the full (not shrunken) SPECjvm98 stand-in suite.  Exact
// integer counts are fully determined by the seeded generators; derived
// floating-point aggregates get tolerances.  If a deliberate change to
// the workloads, scheduler, simulator, or learner moves these, update
// EXPERIMENTS.md alongside this file.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"
#include "io/TraceStore.h"
#include "runtime/CompileService.h"
#include "support/Statistics.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace schedfilter;

namespace {

const std::vector<BenchmarkRun> &fullSuite() {
  static const std::vector<BenchmarkRun> Suite = [] {
    MachineModel Model = MachineModel::ppc7410();
    return generateSuiteData(specjvm98Suite(), Model);
  }();
  return Suite;
}

} // namespace

TEST(Golden, SuitePopulation) {
  size_t Blocks = 0, Insts = 0;
  for (const BenchmarkRun &Run : fullSuite()) {
    Blocks += Run.Prog.totalBlocks();
    Insts += Run.Prog.totalInstructions();
  }
  // Pure functions of the seeded generators.
  EXPECT_EQ(Blocks, 8827u);
  EXPECT_EQ(Insts, 51419u);
}

TEST(Golden, Table5TrainingSetSizes) {
  std::vector<Dataset> At0 = labelSuite(fullSuite(), 0.0);
  size_t LS = 0, NS = 0;
  for (const Dataset &D : At0) {
    LS += D.countLabel(Label::LS);
    NS += D.countLabel(Label::NS);
  }
  // Simulator outputs are integer cycle counts; labeling is exact.
  EXPECT_EQ(LS, 1673u);
  EXPECT_EQ(NS, 7154u);
}

TEST(Golden, Table3ErrorGeomeanAtZero) {
  ThresholdResult R = runThreshold(fullSuite(), 0.0, ripperLearner());
  // Paper: 7.86.  Pinned with a tolerance that still catches regressions
  // an order of magnitude smaller than the paper-vs-us gap.
  EXPECT_NEAR(geometricMean(R.ErrorPct), 7.78, 0.75);
}

TEST(Golden, HeadlineFrontierAtZero) {
  ThresholdResult R = runThreshold(fullSuite(), 0.0, ripperLearner());
  double LS = geometricMean(R.AppRatioLS);
  double LN = geometricMean(R.AppRatioLN);
  double Retention = (1.0 - LN) / (1.0 - LS);
  double Effort = geometricMean(R.EffortRatioWork);
  EXPECT_NEAR(Retention, 0.921, 0.05);
  EXPECT_NEAR(Effort, 0.539, 0.06);
  EXPECT_NEAR(LS, 0.890, 0.02);
}

TEST(Golden, HeadlineNumbersIdenticalAtJobsFour) {
  // The pinned numbers must reproduce exactly under the parallel engine:
  // regenerate the suite and rerun t = 0 at four jobs and compare both
  // against the absolute golden values and against the serial reference.
  MachineModel Model = MachineModel::ppc7410();
  ExperimentEngine Engine(4);
  std::vector<BenchmarkRun> Suite =
      Engine.generateSuiteData(specjvm98Suite(), Model);
  ThresholdResult R = Engine.runThreshold(Suite, 0.0, ripperLearner());

  // Table 5 at t = 0.
  EXPECT_EQ(R.TrainLS, 1673u);
  EXPECT_EQ(R.TrainNS, 7154u);
  // Table 3 geomean and the benefit-retention headline.
  EXPECT_NEAR(geometricMean(R.ErrorPct), 7.78, 0.75);
  double LS = geometricMean(R.AppRatioLS);
  double LN = geometricMean(R.AppRatioLN);
  EXPECT_NEAR((1.0 - LN) / (1.0 - LS), 0.921, 0.05);

  // Bit-for-bit agreement with the serial path on every deterministic
  // output (wall-clock fields excluded by construction).
  ThresholdResult S = runThreshold(fullSuite(), 0.0, ripperLearner());
  EXPECT_EQ(R.ErrorPct, S.ErrorPct);
  EXPECT_EQ(R.PredictedTimePct, S.PredictedTimePct);
  EXPECT_EQ(R.EffortRatioWork, S.EffortRatioWork);
  EXPECT_EQ(R.AppRatioLN, S.AppRatioLN);
  EXPECT_EQ(R.AppRatioLS, S.AppRatioLS);
  EXPECT_EQ(R.RuntimeLS, S.RuntimeLS);
  EXPECT_EQ(R.RuntimeNS, S.RuntimeNS);
  ASSERT_EQ(R.Filters.size(), S.Filters.size());
  for (size_t I = 0; I != R.Filters.size(); ++I)
    EXPECT_EQ(R.Filters[I].toString(), S.Filters[I].toString());
}

TEST(Golden, Table5IdenticalFromEveryArtifactSource) {
  // The acceptance bit-identity guarantee: the Table 5 counts (1673 LS /
  // 7154 NS at t = 0) must be reproduced exactly whether the records
  // come straight from the generator, from a CSV trace, from an SFTB1
  // binary trace, or from a warm corpus cache.
  const std::vector<BenchmarkRun> &Suite = fullSuite();

  auto CountAt0 = [](const std::vector<BenchmarkRun> &Runs) {
    std::pair<size_t, size_t> C{0, 0};
    for (const Dataset &D : labelSuite(Runs, 0.0)) {
      C.first += D.countLabel(Label::LS);
      C.second += D.countLabel(Label::NS);
    }
    return C;
  };
  const std::pair<size_t, size_t> Golden{1673u, 7154u};
  EXPECT_EQ(CountAt0(Suite), Golden);

  // CSV and binary trace round trips, per benchmark, field-exact.
  for (TraceFormat F : {TraceFormat::Csv, TraceFormat::Binary}) {
    std::vector<BenchmarkRun> FromTrace = Suite; // shares Prog/reports
    for (BenchmarkRun &Run : FromTrace) {
      std::stringstream SS;
      writeTrace(Run.Records, SS, F);
      ParseResult<std::vector<BlockRecord>> Back = readTrace(SS);
      ASSERT_TRUE(Back.has_value()) << Back.error().str();
      ASSERT_EQ(Back->size(), Run.Records.size());
      for (size_t I = 0; I != Run.Records.size(); ++I)
        ASSERT_EQ(Run.Records[I].X, (*Back)[I].X);
      Run.Records = std::move(*Back);
    }
    EXPECT_EQ(CountAt0(FromTrace), Golden);
  }

  // Warm corpus cache: seed it from the already-traced suite, reload
  // through a fresh engine, and require zero retracing.
  test::TempCacheDir Dir("golden");
  CorpusCache Seed(Dir.str());
  std::vector<BenchmarkSpec> Specs = specjvm98Suite();
  ASSERT_EQ(Specs.size(), Suite.size());
  for (size_t I = 0; I != Suite.size(); ++I) {
    CorpusKey Key{Specs[I].Name,           Suite[I].ModelName,
                  GeneratorVersion,        TracePipelineVersion,
                  specFingerprint(Specs[I]), Specs[I].Family};
    ASSERT_TRUE(Seed.store(Key, Suite[I].Records, Suite[I].NeverReport,
                           Suite[I].AlwaysReport));
  }

  CorpusCache Cache(Dir.str());
  ExperimentEngine Warm(4);
  Warm.setCorpusCache(&Cache);
  std::vector<BenchmarkRun> FromCache =
      Warm.generateSuiteData(Specs, MachineModel::ppc7410());
  EXPECT_EQ(Warm.tracedBlocks(), 0u);
  EXPECT_EQ(Cache.stats().Hits, Specs.size());
  EXPECT_EQ(CountAt0(FromCache), Golden);
}

TEST(Golden, AdaptiveRegimeStable) {
  // The §3.1 hot-method-only regime, now served by the runtime subsystem:
  // exact work units and block counts for one benchmark at one fraction,
  // so any drift in the rebased compileProgramAdaptive is caught without
  // rerunning the whole bench_adaptive_jit LOOCV table.
  MachineModel Model = MachineModel::ppc7410();
  Program P = ProgramGenerator(*findBenchmarkSpec("db")).generate();
  CompileReport LS = compileProgramAdaptive(P, Model,
                                            SchedulingPolicy::Always,
                                            nullptr, 0.25);
  CompileReport Full =
      compileProgram(P, Model, SchedulingPolicy::Always);
  EXPECT_EQ(LS.NumBlocks, Full.NumBlocks);
  EXPECT_LT(LS.NumScheduled, Full.NumScheduled);
  EXPECT_LT(LS.SchedulingWork, Full.SchedulingWork);
  EXPECT_GT(LS.NumScheduled, 0u);
  // Pure functions of the seeded generator + scheduler accounting.
  EXPECT_EQ(LS.NumScheduled, 405u);
  EXPECT_EQ(LS.SchedulingWork, 48870u);
}

TEST(Golden, ServeRecoupedHeadline) {
  // The sf-serve headline at the default service config: db's invocation
  // stream served with LS vs the self-trained t = 0 filter in the
  // optimizing tier.  The LS-side work is a pure integer function of the
  // stream and the scheduler and is pinned exactly; the recouped fraction
  // depends on the induced rule set and gets a tolerance, like the other
  // learner-dependent goldens.
  MachineModel Model = MachineModel::ppc7410();
  const BenchmarkSpec &Spec = *findBenchmarkSpec("db");
  std::vector<BenchmarkRun> Runs = generateSuiteData({Spec}, Model);
  RuleSet Rules = ripperLearner()(labelSuite(Runs, 0.0)[0]);

  ServiceConfig Cfg;
  Cfg.StreamSeed = invocationStreamSeed(Spec.Seed);
  TaskPool Pool(4);
  ServeComparison Cmp =
      runServeComparison(Runs[0].Prog, Model, Cfg, Rules, Pool);

  EXPECT_EQ(Cmp.Always.SchedulingWork, 102414u);
  EXPECT_EQ(Cmp.Always.Promotions, 77u);
  EXPECT_EQ(Cmp.Always.Deferred, 0u);
  EXPECT_EQ(Cmp.Always.FinalQueueDepth, 0u);
  EXPECT_NEAR(Cmp.RecoupedWorkFraction, 0.393, 0.06);
  // Filtering keeps the optimization's application-side value: the served
  // stream is within a whisker of the LS run's time.
  double AppLS = Cmp.Always.AppTime / Cmp.Always.BaselineAppTime;
  double AppLN = Cmp.Filtered.AppTime / Cmp.Filtered.BaselineAppTime;
  EXPECT_LT(AppLN - AppLS, 0.005);
}

TEST(Golden, EffortCollapsesAtHighThreshold) {
  ThresholdResult R = runThreshold(fullSuite(), 50.0, ripperLearner());
  EXPECT_LT(geometricMean(R.EffortRatioWork), 0.15);
  EXPECT_LT(R.RuntimeLS, 400u);
}

TEST(Golden, Figure4ShapeStable) {
  // Train on all-but-jack at t = 0 (the Figure 4 setting) and pin the
  // structural properties EXPERIMENTS.md describes.
  std::vector<Dataset> Labeled = labelSuite(fullSuite(), 0.0);
  Dataset Train("minus-jack");
  for (size_t I = 0; I + 1 < Labeled.size(); ++I)
    Train.append(Labeled[I]);
  RuleSet Filter = ripperLearner()(Train);
  ASSERT_GE(Filter.size(), 5u);
  ASSERT_LE(Filter.size(), 24u);
  EXPECT_EQ(Filter.getDefaultClass(), Label::NS);
  // The O(1) gate exists and is small (every rule bounds bbLen below).
  double Gate = Filter.minMatchableBBLen();
  EXPECT_GE(Gate, 4.0);
  EXPECT_LE(Gate, 9.0);
}
