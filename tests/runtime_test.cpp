//===- tests/runtime_test.cpp - CompileService / queue / determinism --------===//
//
// The runtime subsystem's contracts: the bounded recompilation queue is
// FIFO with load-shedding backpressure; the CompileService's virtual
// clock, sampling and promotion dynamics are pure functions of
// (program, config, rules); and every ServiceStats field -- doubles
// included -- is bit-identical at any TaskPool job count.
//
//===----------------------------------------------------------------------===//

#include "runtime/CompileService.h"
#include "runtime/MultiAppService.h"
#include "runtime/RecompileQueue.h"
#include "target/MachineModel.h"
#include "workloads/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace schedfilter;

namespace {

Program testProgram(int NumMethods = 16) {
  BenchmarkSpec S = *findBenchmarkSpec("mpegaudio");
  S.NumMethods = NumMethods;
  return ProgramGenerator(S).generate();
}

/// A hand-built filter (schedule blocks of >= 7 instructions), so the
/// tests exercise the service without paying for rule induction.
RuleSet testRules() {
  RuleSet RS(Label::NS);
  Rule R;
  R.Conclusion = Label::LS;
  R.Conditions.push_back({FeatBBLen, false, 7.0});
  RS.addRule(std::move(R));
  return RS;
}

/// A quick config: enough stream for several epochs of promotions.
ServiceConfig testConfig() {
  ServiceConfig Cfg;
  Cfg.Invocations = 20000;
  Cfg.EpochLen = 256;
  Cfg.SampleEvery = 4;
  Cfg.HotThreshold = 4;
  Cfg.QueueCap = 8;
  Cfg.DrainPerEpoch = 2;
  Cfg.StreamSeed = invocationStreamSeed(42);
  return Cfg;
}

} // namespace

//===----------------------------------------------------------------------===//
// RecompileQueue
//===----------------------------------------------------------------------===//

TEST(RecompileQueue, FifoOrder) {
  RecompileQueue Q(4);
  EXPECT_TRUE(Q.empty());
  for (uint32_t I = 0; I != 4; ++I)
    EXPECT_TRUE(Q.push(10 + I));
  uint32_t M = 0;
  for (uint32_t I = 0; I != 4; ++I) {
    ASSERT_TRUE(Q.pop(M));
    EXPECT_EQ(M, 10 + I);
  }
  EXPECT_FALSE(Q.pop(M));
}

TEST(RecompileQueue, BackpressureWhenFull) {
  RecompileQueue Q(2);
  EXPECT_TRUE(Q.push(1));
  EXPECT_TRUE(Q.push(2));
  EXPECT_TRUE(Q.full());
  // A full queue sheds the request and keeps its contents intact.
  EXPECT_FALSE(Q.push(3));
  EXPECT_EQ(Q.size(), 2u);
  uint32_t M = 0;
  ASSERT_TRUE(Q.pop(M));
  EXPECT_EQ(M, 1u);
  // Room again: push succeeds and FIFO order continues.
  EXPECT_TRUE(Q.push(4));
  ASSERT_TRUE(Q.pop(M));
  EXPECT_EQ(M, 2u);
  ASSERT_TRUE(Q.pop(M));
  EXPECT_EQ(M, 4u);
}

TEST(RecompileQueue, WrapsAroundRing) {
  RecompileQueue Q(3);
  uint32_t M = 0;
  for (uint32_t Round = 0; Round != 10; ++Round) {
    EXPECT_TRUE(Q.push(Round));
    ASSERT_TRUE(Q.pop(M));
    EXPECT_EQ(M, Round);
  }
  EXPECT_TRUE(Q.empty());
}

//===----------------------------------------------------------------------===//
// CompileService
//===----------------------------------------------------------------------===//

TEST(CompileService, RunIsDeterministic) {
  Program P = testProgram();
  MachineModel M = MachineModel::ppc7410();
  RuleSet RS = testRules();
  TaskPool Pool(1);
  CompileService A(P, M, testConfig(), &RS, Pool);
  CompileService B(P, M, testConfig(), &RS, Pool);
  EXPECT_TRUE(A.run() == B.run());
}

TEST(CompileService, BitIdenticalAtAnyJobCount) {
  // The acceptance guarantee: every ServiceStats field -- the AppTime and
  // MeanQueueDepth doubles included -- is identical at jobs=1 and jobs=4.
  Program P = testProgram();
  MachineModel M = MachineModel::ppc7410();
  RuleSet RS = testRules();
  TaskPool Serial(1), Wide(4);
  ServiceStats S1 =
      CompileService(P, M, testConfig(), &RS, Serial).run();
  ServiceStats S4 = CompileService(P, M, testConfig(), &RS, Wide).run();
  EXPECT_TRUE(S1 == S4);
  // And the run did real tiered work, so the comparison is not vacuous.
  EXPECT_GT(S1.Promotions, 0u);
  EXPECT_GT(S1.CompiledMethods, 0u);
  EXPECT_GT(S1.OptimizedInvocations, 0u);
  EXPECT_GT(S1.SchedulingWork, 0u);
}

TEST(CompileService, AccountingInvariantsHold) {
  Program P = testProgram();
  MachineModel M = MachineModel::ppc7410();
  RuleSet RS = testRules();
  TaskPool Pool(2);
  ServiceConfig Cfg = testConfig();
  ServiceStats St = CompileService(P, M, Cfg, &RS, Pool).run();

  EXPECT_EQ(St.Invocations, Cfg.Invocations);
  EXPECT_EQ(St.BaselineInvocations + St.OptimizedInvocations,
            St.Invocations);
  EXPECT_EQ(St.MethodsTotal, P.size());
  // Promotions either retired or still queued at stream end.
  EXPECT_EQ(St.Promotions, St.CompiledMethods + St.FinalQueueDepth);
  EXPECT_EQ(St.CompiledMethods, St.MethodsOptimized);
  // Every optimizing-tier block got exactly one online filter decision.
  EXPECT_EQ(St.FilterLS + St.FilterNS, St.BlocksCompiled);
  EXPECT_EQ(St.FilterLS, St.BlocksScheduled);
  // The filter's evaluation cost is charged to scheduling work.
  EXPECT_GE(St.SchedulingWork, St.FilterWork);
  // Optimization never makes the served stream slower than baseline.
  EXPECT_LE(St.AppTime, St.BaselineAppTime);
}

TEST(CompileService, TinyQueueShedsLoadButCatchesUp) {
  Program P = testProgram();
  MachineModel M = MachineModel::ppc7410();
  RuleSet RS = testRules();
  TaskPool Pool(1);
  ServiceConfig Cfg = testConfig();
  Cfg.QueueCap = 1;
  Cfg.DrainPerEpoch = 1;
  ServiceStats St = CompileService(P, M, Cfg, &RS, Pool).run();
  // With a one-slot queue the sampler nominates faster than the drain
  // retires: backpressure must shed load...
  EXPECT_GT(St.Deferred, 0u);
  // ...yet shed methods stay hot and re-nominate, so the service still
  // promotes a healthy set by stream end.
  EXPECT_GT(St.MethodsOptimized, 3u);
  EXPECT_LE(St.MaxQueueDepth, 1u);
}

TEST(CompileService, HotterThresholdPromotesFewerMethods) {
  Program P = testProgram();
  MachineModel M = MachineModel::ppc7410();
  RuleSet RS = testRules();
  TaskPool Pool(1);
  ServiceConfig Cold = testConfig();
  Cold.HotThreshold = 64;
  ServiceConfig Hot = testConfig();
  Hot.HotThreshold = 2;
  ServiceStats StCold = CompileService(P, M, Cold, &RS, Pool).run();
  ServiceStats StHot = CompileService(P, M, Hot, &RS, Pool).run();
  EXPECT_LT(StCold.Promotions, StHot.Promotions);
  EXPECT_LT(StCold.OptimizedInvocations, StHot.OptimizedInvocations);
}

TEST(CompileService, UnreachableThresholdKeepsEverythingBaseline) {
  Program P = testProgram();
  MachineModel M = MachineModel::ppc7410();
  TaskPool Pool(1);
  ServiceConfig Cfg = testConfig();
  Cfg.HotThreshold = 1000000; // more samples than the stream contains
  Cfg.OptimizingPolicy = SchedulingPolicy::Always;
  ServiceStats St = CompileService(P, M, Cfg, nullptr, Pool).run();
  EXPECT_EQ(St.Promotions, 0u);
  EXPECT_EQ(St.MethodsOptimized, 0u);
  EXPECT_EQ(St.OptimizedInvocations, 0u);
  EXPECT_EQ(St.SchedulingWork, 0u);
  EXPECT_EQ(St.AppTime, St.BaselineAppTime);
}

TEST(CompileService, VirtualClockDelaysInstalls) {
  // A method is never optimized in the epoch that nominates it, so some
  // invocations always execute at baseline first -- even when every
  // method eventually promotes.
  Program P = testProgram(4);
  MachineModel M = MachineModel::ppc7410();
  TaskPool Pool(1);
  ServiceConfig Cfg = testConfig();
  Cfg.HotThreshold = 1;
  Cfg.OptimizingPolicy = SchedulingPolicy::Always;
  ServiceStats St = CompileService(P, M, Cfg, nullptr, Pool).run();
  // (Not necessarily every method: a sufficiently cold one may never be
  // drawn at a sampled tick -- sampling is the paper's point.)
  EXPECT_GE(St.MethodsOptimized, P.size() - 1);
  EXPECT_GT(St.BaselineInvocations, 0u);
}

TEST(CompileService, ServeComparisonRecoupsWork) {
  Program P = testProgram();
  MachineModel M = MachineModel::ppc7410();
  RuleSet RS = testRules();
  TaskPool Pool(2);
  ServeComparison Cmp =
      runServeComparison(P, M, testConfig(), RS, Pool);
  // Identical promotion dynamics by construction...
  EXPECT_EQ(Cmp.Always.Promotions, Cmp.Filtered.Promotions);
  EXPECT_EQ(Cmp.Always.CompiledMethods, Cmp.Filtered.CompiledMethods);
  EXPECT_EQ(Cmp.Always.BaselineAppTime, Cmp.Filtered.BaselineAppTime);
  // ...so the work delta is the filter's recouped scheduling time.
  EXPECT_LT(Cmp.Filtered.SchedulingWork, Cmp.Always.SchedulingWork);
  EXPECT_GT(Cmp.RecoupedWorkFraction, 0.0);
  EXPECT_LT(Cmp.RecoupedWorkFraction, 1.0);
}

//===----------------------------------------------------------------------===//
// MultiAppService (interleaved multi-app streams)
//===----------------------------------------------------------------------===//

namespace {

/// A two-family mix with uneven weights: enough apps to make the
/// interleave non-trivial, cheap enough for a unit test.
std::vector<AppSpec> testMix() {
  return expandWorkloadMix({{"serverloop", 3.0}, {"ptrchase", 1.0}});
}

} // namespace

TEST(MultiAppService, ExpandSplitsFamilyWeightAcrossApps) {
  std::vector<AppSpec> Apps = testMix();
  ASSERT_EQ(Apps.size(), 6u); // three serverloop + three ptrchase apps
  for (const AppSpec &A : Apps.front().Spec.Family == "serverloop"
           ? std::vector<AppSpec>(Apps.begin(), Apps.begin() + 3)
           : std::vector<AppSpec>())
    EXPECT_DOUBLE_EQ(A.Weight, 1.0); // 3.0 over three benchmarks
  EXPECT_EQ(Apps[0].Spec.Family, "serverloop");
  EXPECT_EQ(Apps[3].Spec.Family, "ptrchase");
  EXPECT_DOUBLE_EQ(Apps[3].Weight, 1.0 / 3.0);
}

TEST(MultiAppService, MixSeedCoversEveryAppIdentity) {
  std::vector<AppSpec> Apps = testMix();
  uint64_t Seed = workloadMixSeed(Apps);
  // Reweighting, renaming, or reseeding any app is a different session.
  std::vector<AppSpec> Reweighted = Apps;
  Reweighted[0].Weight *= 2.0;
  EXPECT_NE(workloadMixSeed(Reweighted), Seed);
  std::vector<AppSpec> Reseeded = Apps;
  Reseeded[1].Spec.Seed ^= 1;
  EXPECT_NE(workloadMixSeed(Reseeded), Seed);
  // And it is a pure function of the identities.
  EXPECT_EQ(workloadMixSeed(testMix()), Seed);
}

TEST(MultiAppService, MixedStreamBitIdenticalAtAnyJobCount) {
  // The acceptance guarantee for the interleaved regime: every field of
  // every per-app ServiceStats -- doubles included -- identical at
  // jobs=1 and jobs=4.
  std::vector<AppSpec> Apps = testMix();
  std::vector<Program> Programs = generateMixPrograms(Apps);
  MachineModel M = MachineModel::ppc7410();
  RuleSet RS = testRules();
  ServiceConfig Cfg = testConfig();
  Cfg.StreamSeed = workloadMixSeed(Apps);
  TaskPool Serial(1), Wide(4);
  MultiAppStats S1 = MultiAppService(Apps, Programs, M, Cfg, &RS, Serial).run();
  MultiAppStats S4 = MultiAppService(Apps, Programs, M, Cfg, &RS, Wide).run();
  EXPECT_TRUE(S1 == S4);
  // Non-vacuous: the mixed stream promoted and optimized for real.
  EXPECT_GT(S1.Total.Promotions, 0u);
  EXPECT_GT(S1.Total.SchedulingWork, 0u);
  ASSERT_EQ(S1.PerApp.size(), Apps.size());
}

TEST(MultiAppService, AggregateIsSumOfPerAppIntegerFields) {
  // The double AppTime folds in global tick order, so only the integer
  // fields are promised to sum exactly (see MultiAppStats doc).
  std::vector<AppSpec> Apps = testMix();
  std::vector<Program> Programs = generateMixPrograms(Apps);
  MachineModel M = MachineModel::ppc7410();
  RuleSet RS = testRules();
  ServiceConfig Cfg = testConfig();
  Cfg.StreamSeed = workloadMixSeed(Apps);
  TaskPool Pool(2);
  MultiAppStats St = MultiAppService(Apps, Programs, M, Cfg, &RS, Pool).run();

  ServiceStats Sum;
  for (const ServiceStats &App : St.PerApp) {
    Sum.Invocations += App.Invocations;
    Sum.BaselineInvocations += App.BaselineInvocations;
    Sum.OptimizedInvocations += App.OptimizedInvocations;
    Sum.Promotions += App.Promotions;
    Sum.Deferred += App.Deferred;
    Sum.CompiledMethods += App.CompiledMethods;
    Sum.MethodsOptimized += App.MethodsOptimized;
    Sum.MethodsTotal += App.MethodsTotal;
    Sum.BlocksCompiled += App.BlocksCompiled;
    Sum.BlocksScheduled += App.BlocksScheduled;
    Sum.SchedulingWork += App.SchedulingWork;
    Sum.FilterWork += App.FilterWork;
    Sum.FilterLS += App.FilterLS;
    Sum.FilterNS += App.FilterNS;
  }
  EXPECT_EQ(Sum.Invocations, St.Total.Invocations);
  EXPECT_EQ(Sum.BaselineInvocations, St.Total.BaselineInvocations);
  EXPECT_EQ(Sum.OptimizedInvocations, St.Total.OptimizedInvocations);
  EXPECT_EQ(Sum.Promotions, St.Total.Promotions);
  EXPECT_EQ(Sum.Deferred, St.Total.Deferred);
  EXPECT_EQ(Sum.CompiledMethods, St.Total.CompiledMethods);
  EXPECT_EQ(Sum.MethodsOptimized, St.Total.MethodsOptimized);
  EXPECT_EQ(Sum.MethodsTotal, St.Total.MethodsTotal);
  EXPECT_EQ(Sum.BlocksCompiled, St.Total.BlocksCompiled);
  EXPECT_EQ(Sum.BlocksScheduled, St.Total.BlocksScheduled);
  EXPECT_EQ(Sum.SchedulingWork, St.Total.SchedulingWork);
  EXPECT_EQ(Sum.FilterWork, St.Total.FilterWork);
  EXPECT_EQ(Sum.FilterLS, St.Total.FilterLS);
  EXPECT_EQ(Sum.FilterNS, St.Total.FilterNS);
  // Queue/epoch fields describe the shared service and stay aggregate-only.
  for (const ServiceStats &App : St.PerApp) {
    EXPECT_EQ(App.Epochs, 0u);
    EXPECT_EQ(App.MaxQueueDepth, 0u);
    EXPECT_EQ(App.FinalQueueDepth, 0u);
  }
}

TEST(MultiAppService, ComparisonSharesPromotionDynamics) {
  std::vector<AppSpec> Apps = testMix();
  std::vector<Program> Programs = generateMixPrograms(Apps);
  MachineModel M = MachineModel::ppc7410();
  RuleSet RS = testRules();
  ServiceConfig Cfg = testConfig();
  Cfg.StreamSeed = workloadMixSeed(Apps);
  TaskPool Pool(2);
  MultiAppComparison Cmp =
      runMultiAppComparison(Apps, Programs, M, Cfg, RS, Pool);
  // Identical promotion dynamics between the two optimizing tiers, per
  // app and in aggregate...
  EXPECT_EQ(Cmp.Always.Total.Promotions, Cmp.Filtered.Total.Promotions);
  EXPECT_EQ(Cmp.Always.Total.BaselineAppTime,
            Cmp.Filtered.Total.BaselineAppTime);
  ASSERT_EQ(Cmp.PerAppRecoup.size(), Apps.size());
  for (size_t A = 0; A != Apps.size(); ++A) {
    EXPECT_EQ(Cmp.Always.PerApp[A].Invocations,
              Cmp.Filtered.PerApp[A].Invocations);
    EXPECT_EQ(Cmp.Always.PerApp[A].CompiledMethods,
              Cmp.Filtered.PerApp[A].CompiledMethods);
  }
  // ...so the work delta is the filter's doing.
  EXPECT_LT(Cmp.Filtered.Total.SchedulingWork,
            Cmp.Always.Total.SchedulingWork);
  EXPECT_GT(Cmp.RecoupedWorkFraction, 0.0);
  EXPECT_LT(Cmp.RecoupedWorkFraction, 1.0);
}

TEST(CompileService, StreamSeedIsPartOfWorkloadIdentity) {
  Program P = testProgram();
  MachineModel M = MachineModel::ppc7410();
  RuleSet RS = testRules();
  TaskPool Pool(1);
  ServiceConfig A = testConfig();
  ServiceConfig B = testConfig();
  B.StreamSeed = invocationStreamSeed(43);
  ServiceStats StA = CompileService(P, M, A, &RS, Pool).run();
  ServiceStats StB = CompileService(P, M, B, &RS, Pool).run();
  // Different workload seed, different stream (app time is a sum over
  // 20k weighted draws; collision would be astronomically unlikely).
  EXPECT_NE(StA.AppTime, StB.AppTime);
}
