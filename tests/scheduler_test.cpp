//===- tests/scheduler_test.cpp - sched/ListScheduler unit tests ------------===//

#include "sched/ListScheduler.h"

#include "TestHelpers.h"
#include "sched/ScheduleVerifier.h"
#include "sim/BlockSimulator.h"
#include "workloads/ProgramGenerator.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace schedfilter;
using namespace schedfilter::test;

namespace {

bool isPermutation(const std::vector<int> &Order, size_t N) {
  if (Order.size() != N)
    return false;
  std::vector<int> Sorted = Order;
  std::sort(Sorted.begin(), Sorted.end());
  for (size_t I = 0; I != N; ++I)
    if (Sorted[I] != static_cast<int>(I))
      return false;
  return true;
}

} // namespace

TEST(ListScheduler, IdentityHelper) {
  BasicBlock BB = makeChainBlock();
  ScheduleResult R = ListScheduler::identity(BB);
  EXPECT_EQ(R.Order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ListScheduler, EmptyBlock) {
  MachineModel M = MachineModel::ppc7410();
  ListScheduler S(M);
  BasicBlock BB("empty");
  EXPECT_TRUE(S.schedule(BB).Order.empty());
}

TEST(ListScheduler, ChainStaysInOrder) {
  MachineModel M = MachineModel::ppc7410();
  ListScheduler S(M);
  BasicBlock BB = makeChainBlock();
  ScheduleResult R = S.schedule(BB);
  EXPECT_EQ(R.Order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ListScheduler, HoistsIndependentLoadIntoStallSlot) {
  MachineModel M = MachineModel::ppc7410();
  ListScheduler S(M);
  BasicBlock BB = makeIlpFloatBlock();
  ScheduleResult R = S.schedule(BB);
  // The naive order is ld,fmul,ld,fmul,fadd,st; CPS should start both
  // loads before the first multiply.
  std::vector<int> Pos(BB.size());
  for (size_t P = 0; P != R.Order.size(); ++P)
    Pos[static_cast<size_t>(R.Order[P])] = static_cast<int>(P);
  EXPECT_LT(Pos[2], Pos[1]) << "second load should hoist above first fmul";
}

TEST(ListScheduler, ScheduledNeverSlowerOnIlpBlock) {
  MachineModel M = MachineModel::ppc7410();
  ListScheduler S(M);
  BlockSimulator Sim(M);
  BasicBlock BB = makeIlpFloatBlock();
  uint64_t Before = Sim.simulate(BB);
  uint64_t After = Sim.simulate(BB, S.schedule(BB).Order);
  EXPECT_LT(After, Before);
}

TEST(ListScheduler, DeterministicAcrossCalls) {
  MachineModel M = MachineModel::ppc7410();
  ListScheduler S(M);
  const BenchmarkSpec *Spec = findBenchmarkSpec("mpegaudio");
  Rng R(99);
  for (int Trial = 0; Trial != 10; ++Trial) {
    BasicBlock BB = ProgramGenerator(*Spec).generateBlock(R, 4, true);
    EXPECT_EQ(S.schedule(BB).Order, S.schedule(BB).Order);
  }
}

TEST(ListScheduler, WorkUnitsIncludeDagWhenSelfBuilt) {
  MachineModel M = MachineModel::ppc7410();
  ListScheduler S(M);
  BasicBlock BB = makeIlpFloatBlock();
  DependenceGraph Dag(BB, M);
  ScheduleResult WithDag = S.schedule(BB);
  ScheduleResult WithoutDag = S.schedule(BB, Dag);
  EXPECT_EQ(WithDag.WorkUnits, WithoutDag.WorkUnits + Dag.workUnits());
}

TEST(ListScheduler, PrefersLongerCriticalPathOnTies) {
  MachineModel M = MachineModel::ppc7410();
  ListScheduler S(M);
  // Two ready-at-zero chains; the fdiv chain is much longer and should be
  // started first even though it appears later in program order.
  BasicBlock BB("ties");
  BB.append(Instruction(Opcode::Add, {100}, {0, 1}));
  BB.append(Instruction(Opcode::FDiv, {101}, {32, 33}));
  BB.append(Instruction(Opcode::FAdd, {102}, {101, 34}));
  ScheduleResult R = S.schedule(BB);
  EXPECT_EQ(R.Order.front(), 1) << "long fdiv chain should start first";
}

TEST(ListScheduler, TerminatorAlwaysLast) {
  MachineModel M = MachineModel::ppc7410();
  ListScheduler S(M);
  const BenchmarkSpec *Spec = findBenchmarkSpec("javac");
  Rng R(123);
  for (int Trial = 0; Trial != 20; ++Trial) {
    BasicBlock BB = ProgramGenerator(*Spec).generateBlock(
        R, R.range(0, 6), /*EndWithTerminator=*/true);
    if (BB.empty() || !BB[BB.size() - 1].isTerminator())
      continue;
    ScheduleResult SR = S.schedule(BB);
    EXPECT_EQ(SR.Order.back(), static_cast<int>(BB.size()) - 1);
  }
}

TEST(ScheduleVerifier, AcceptsLegalAndRejectsIllegal) {
  MachineModel M = MachineModel::ppc7410();
  BasicBlock BB = makeChainBlock();
  EXPECT_TRUE(verifySchedule(BB, M, {0, 1, 2, 3}).Ok);
  EXPECT_FALSE(verifySchedule(BB, M, {1, 0, 2, 3}).Ok); // violates RAW
  EXPECT_FALSE(verifySchedule(BB, M, {0, 1, 2}).Ok);    // wrong size
  EXPECT_FALSE(verifySchedule(BB, M, {0, 0, 2, 3}).Ok); // duplicate
  EXPECT_FALSE(verifySchedule(BB, M, {0, 1, 2, 7}).Ok); // out of range
}

// The core safety property, swept over every benchmark profile and many
// seeds: the scheduler always emits a legal permutation (all dependent
// pairs keep their order -- the paper's definition of semantic
// equivalence).
class SchedulerLegality
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(SchedulerLegality, AlwaysLegalPermutation) {
  MachineModel M = MachineModel::ppc7410();
  ListScheduler S(M);
  const BenchmarkSpec *Spec =
      findBenchmarkSpec(std::get<0>(GetParam()));
  ASSERT_NE(Spec, nullptr);
  Rng R(std::get<1>(GetParam()));
  for (int Trial = 0; Trial != 25; ++Trial) {
    BasicBlock BB = ProgramGenerator(*Spec).generateBlock(
        R, R.range(0, 9), /*EndWithTerminator=*/R.chance(0.8));
    DependenceGraph Dag(BB, M);
    ScheduleResult SR = S.schedule(BB, Dag);
    EXPECT_TRUE(isPermutation(SR.Order, BB.size()));
    ScheduleVerifyResult V = verifySchedule(Dag, SR.Order);
    EXPECT_TRUE(V.Ok) << V.Message;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, SchedulerLegality,
    ::testing::Combine(::testing::Values("compress", "jess", "db", "javac",
                                         "mpegaudio", "raytrace", "jack",
                                         "linpack", "aes", "voronoi"),
                       ::testing::Values(7u, 77u)));
