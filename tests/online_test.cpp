//===- tests/online_test.cpp - Online self-training / hot-swap contracts ----===//
//
// The online-adaptation contracts on top of runtime_test's baseline:
// the hot-swap sequence, per-compile version pins, and registry bytes
// are bit-identical at any TaskPool job count; a version installed at an
// epoch boundary never retroactively claims a mid-epoch compile; and the
// SFFR1 registry never believes a corrupt, truncated, or renamed entry.
//
//===----------------------------------------------------------------------===//

#include "filter/FilterVersion.h"
#include "io/FilterRegistry.h"
#include "runtime/CompileService.h"
#include "workloads/ProgramGenerator.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace schedfilter;
using namespace schedfilter::test;

namespace {

Program testProgram(int NumMethods = 16) {
  BenchmarkSpec S = *findBenchmarkSpec("mpegaudio");
  S.NumMethods = NumMethods;
  return ProgramGenerator(S).generate();
}

/// The v1 "factory" filter every online run starts from (schedule blocks
/// of >= 7 instructions) -- hand-built, so tests control the baseline
/// without paying for rule induction.
RuleSet testRules() {
  RuleSet RS(Label::NS);
  Rule R;
  R.Conclusion = Label::LS;
  R.Conditions.push_back({FeatBBLen, false, 7.0});
  RS.addRule(std::move(R));
  return RS;
}

/// A small online config: several epochs, several retrains.
ServiceConfig onlineConfig() {
  ServiceConfig Cfg;
  Cfg.Invocations = 20000;
  Cfg.EpochLen = 256;
  Cfg.SampleEvery = 4;
  Cfg.HotThreshold = 4;
  Cfg.QueueCap = 8;
  Cfg.DrainPerEpoch = 2;
  Cfg.StreamSeed = invocationStreamSeed(42);
  Cfg.Online = true;
  Cfg.RetrainEvery = 2048;
  Cfg.RetrainThreshold = 0.0;
  return Cfg;
}

ServiceStats runOnline(TaskPool &Pool, FilterRegistry *Reg = nullptr) {
  Program P = testProgram();
  MachineModel M = MachineModel::ppc7410();
  RuleSet RS = testRules();
  CompileService Svc(P, M, onlineConfig(), &RS, Pool);
  if (Reg)
    Svc.setFilterRegistry(Reg, "test", M.getName());
  return Svc.run();
}

/// Reads a whole file as bytes; empty on open failure.
std::string slurp(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  std::ostringstream OS;
  OS << IS.rdbuf();
  return OS.str();
}

FilterVersionMeta testMeta(uint32_t Version) {
  FilterVersionMeta Meta;
  Meta.Version = Version;
  Meta.ParentVersion = Version ? Version - 1 : 0;
  Meta.TriggerTick = 4096;
  Meta.SessionSeed = 99;
  Meta.CorpusRecords = 123;
  Meta.ThresholdPct = 12.5;
  Meta.Model = "ppc7410";
  Meta.Workload = "mpegaudio";
  return Meta;
}

} // namespace

//===----------------------------------------------------------------------===//
// Hot-swap determinism
//===----------------------------------------------------------------------===//

TEST(OnlineService, BitIdenticalAtAnyJobCount) {
  // The tentpole guarantee: swap sequence, per-compile version pins, and
  // every online counter are identical at jobs=1 and jobs=4 (operator==
  // compares Swaps and Compiles element by element).
  TaskPool Serial(1), Wide(4);
  ServiceStats S1 = runOnline(Serial);
  ServiceStats S4 = runOnline(Wide);
  EXPECT_TRUE(S1 == S4);
  // And the run really adapted, so the comparison is not vacuous.
  EXPECT_GT(S1.Retrains, 0u);
  EXPECT_GT(S1.CorpusRecords, 0u);
  EXPECT_GE(S1.Swaps.size(), 2u);
  EXPECT_FALSE(S1.Compiles.empty());
  EXPECT_GT(S1.FinalFilterVersion, 1u);
}

TEST(OnlineService, RegistryBytesIdenticalAcrossJobs) {
  TempCacheDir D1("reg-j1"), D4("reg-j4");
  FilterRegistry R1(D1.str()), R4(D4.str());
  TaskPool Serial(1), Wide(4);
  runOnline(Serial, &R1);
  runOnline(Wide, &R4);

  std::vector<uint32_t> V1 = R1.listVersions();
  ASSERT_EQ(V1, R4.listVersions());
  ASSERT_GE(V1.size(), 2u);
  EXPECT_EQ(R1.stats().StoreFailures, 0u);
  for (uint32_t V : V1) {
    std::string A = slurp(R1.entryPath(V));
    ASSERT_FALSE(A.empty());
    EXPECT_EQ(A, slurp(R4.entryPath(V))) << "registry entry v" << V
                                         << " differs across job counts";
  }
}

TEST(OnlineService, MidEpochPinningInvariant) {
  TaskPool Pool(4);
  ServiceStats St = runOnline(Pool);

  // The swap sequence starts at the factory v1 on epoch 0 and installs
  // monotonically increasing versions at non-decreasing boundaries.
  ASSERT_FALSE(St.Swaps.empty());
  EXPECT_EQ(St.Swaps.front().Version, 1u);
  EXPECT_EQ(St.Swaps.front().Epoch, 0u);
  for (size_t I = 1; I < St.Swaps.size(); ++I) {
    EXPECT_EQ(St.Swaps[I].Version, St.Swaps[I - 1].Version + 1);
    EXPECT_GT(St.Swaps[I].Epoch, St.Swaps[I - 1].Epoch);
  }
  EXPECT_EQ(St.FinalFilterVersion, St.Swaps.back().Version);

  // Background-latency model: a retrain triggered at boundary E installs
  // at boundary E+1, exactly one epoch later on the virtual clock (the
  // final boundary may arrive early when the stream length is not a
  // multiple of the epoch length).
  ServiceConfig Cfg = onlineConfig();
  for (size_t I = 1; I < St.Swaps.size(); ++I)
    EXPECT_EQ(St.Swaps[I].Tick,
              std::min<uint64_t>(St.Swaps[I].TriggerTick + Cfg.EpochLen,
                                 Cfg.Invocations));

  // Every compile is pinned to the version installed at or before its
  // epoch -- never to a version that installed later (mid-epoch compiles
  // keep the old version).
  for (const ServiceStats::CompilePinStat &C : St.Compiles) {
    uint32_t Expected = 0;
    for (const ServiceStats::FilterSwapStat &Sw : St.Swaps)
      if (Sw.Epoch <= C.Epoch)
        Expected = Sw.Version;
    EXPECT_EQ(C.FilterVersion, Expected)
        << "compile at epoch " << C.Epoch << " pinned wrong version";
  }
}

TEST(OnlineService, StaticRunHasNoLineage) {
  TaskPool Pool(2);
  Program P = testProgram();
  MachineModel M = MachineModel::ppc7410();
  RuleSet RS = testRules();
  ServiceConfig Cfg = onlineConfig();
  Cfg.Online = false;
  ServiceStats St = CompileService(P, M, Cfg, &RS, Pool).run();
  EXPECT_EQ(St.Retrains, 0u);
  EXPECT_EQ(St.CorpusRecords, 0u);
  EXPECT_TRUE(St.Swaps.empty());
  EXPECT_EQ(St.FinalFilterVersion, 0u);
  // Per-compile pins are recorded for every policy (the alignment basis
  // of the adaptation bench), just with the unversioned filter.
  EXPECT_FALSE(St.Compiles.empty());
  for (const ServiceStats::CompilePinStat &C : St.Compiles)
    EXPECT_EQ(C.FilterVersion, 0u);
}

TEST(OnlineService, GoldenLineagePin) {
  // Golden pin of the small serve scenario's adaptation trajectory: every
  // value is a pure function of the seeded generator, the stream seed,
  // and the retrain policy.  If a deliberate learner or runtime change
  // moves these, update them alongside EXPERIMENTS.md.
  TaskPool Pool(4);
  ServiceStats St = runOnline(Pool);
  EXPECT_EQ(St.Retrains, 3u);
  EXPECT_EQ(St.FinalFilterVersion, 4u);
  EXPECT_EQ(St.Swaps.size(), 4u);
  EXPECT_EQ(St.CorpusRecords, 158u);
  EXPECT_EQ(St.CompiledMethods, 15u);
}

//===----------------------------------------------------------------------===//
// FilterRegistry (SFFR1)
//===----------------------------------------------------------------------===//

TEST(FilterRegistry, StoreLoadRoundTrip) {
  TempCacheDir Dir("sffr-roundtrip");
  FilterRegistry Reg(Dir.str());
  RuleSet RS = testRules();
  ASSERT_TRUE(Reg.store(testMeta(3), RS));

  ParseResult<RegistryEntry> E = Reg.load(3);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E->Meta.Version, 3u);
  EXPECT_EQ(E->Meta.ParentVersion, 2u);
  EXPECT_EQ(E->Meta.TriggerTick, 4096u);
  EXPECT_EQ(E->Meta.SessionSeed, 99u);
  EXPECT_EQ(E->Meta.CorpusRecords, 123u);
  EXPECT_EQ(E->Meta.ThresholdPct, 12.5);
  EXPECT_EQ(E->Meta.Model, "ppc7410");
  EXPECT_EQ(E->Meta.Workload, "mpegaudio");
  // The rules survive the text round-trip bit-exactly.
  EXPECT_EQ(rulesFingerprint(E->Rules), rulesFingerprint(RS));
}

TEST(FilterRegistry, RejectsCorruptEntry) {
  TempCacheDir Dir("sffr-corrupt");
  FilterRegistry Reg(Dir.str());
  ASSERT_TRUE(Reg.store(testMeta(1), testRules()));
  std::string Path = Reg.entryPath(1);
  std::string Bytes = slurp(Path);
  ASSERT_FALSE(Bytes.empty());

  // Flip one byte in the body: the checksum must catch it.
  std::string Flipped = Bytes;
  Flipped[Flipped.size() / 2] ^= 0x40;
  { std::ofstream(Path, std::ios::binary | std::ios::trunc) << Flipped; }
  EXPECT_FALSE(static_cast<bool>(Reg.load(1)));

  // Truncate: never believed either.
  { std::ofstream(Path, std::ios::binary | std::ios::trunc)
        << Bytes.substr(0, Bytes.size() - 7); }
  EXPECT_FALSE(static_cast<bool>(Reg.load(1)));

  // Wrong magic: rejected before anything else is read.
  std::string BadMagic = Bytes;
  BadMagic[3] = '9';
  { std::ofstream(Path, std::ios::binary | std::ios::trunc) << BadMagic; }
  EXPECT_FALSE(static_cast<bool>(Reg.load(1)));

  // Restore the original bytes: loads again (the test harness is not
  // fighting a stale cache).
  { std::ofstream(Path, std::ios::binary | std::ios::trunc) << Bytes; }
  EXPECT_TRUE(static_cast<bool>(Reg.load(1)));
}

TEST(FilterRegistry, RejectsRenamedEntry) {
  // An entry copied onto another version's filename carries its embedded
  // version and must not be believed -- same discipline as SFCC1.
  TempCacheDir Dir("sffr-renamed");
  FilterRegistry Reg(Dir.str());
  ASSERT_TRUE(Reg.store(testMeta(1), testRules()));
  std::filesystem::copy_file(Reg.entryPath(1), Reg.entryPath(2));
  EXPECT_TRUE(static_cast<bool>(Reg.load(1)));
  ParseResult<RegistryEntry> E = Reg.load(2);
  ASSERT_FALSE(static_cast<bool>(E));
  EXPECT_NE(E.error().Message.find("version"), std::string::npos);
}

TEST(FilterRegistry, ListVersionsSortedIgnoringJunk) {
  TempCacheDir Dir("sffr-list");
  FilterRegistry Reg(Dir.str());
  for (uint32_t V : {4u, 1u, 11u})
    ASSERT_TRUE(Reg.store(testMeta(V), testRules()));
  // Junk in the directory is not a version.
  { std::ofstream(Dir.Path / "notes.txt") << "hi"; }
  { std::ofstream(Dir.Path / "v00000a.sffr") << "junk"; }
  { std::ofstream(Dir.Path / "v1.sffr") << "junk"; }
  EXPECT_EQ(Reg.listVersions(), (std::vector<uint32_t>{1, 4, 11}));
  // A missing directory is an empty lineage, not an error.
  EXPECT_TRUE(FilterRegistry(Dir.str() + "-nonexistent")
                  .listVersions()
                  .empty());
}
