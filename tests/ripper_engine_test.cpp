//===- tests/ripper_engine_test.cpp - indexed-engine equivalence pins --------===//
//
// The indexed RIPPER trainer (column indexes + bit-set coverage +
// value-order sweeps, ml/Ripper.cpp) must produce *bit-for-bit* the
// RuleSet of the original sort-per-condition implementation, which lives
// on verbatim in tests/ReferenceRipper.h -- across datasets, seeds,
// option settings and TaskPool job counts.  Plus the degenerate inputs
// the rank-array machinery could plausibly mishandle: tiny datasets whose
// ceil-based grow/prune split leaves an empty prune side, single-class
// data, and all-identical feature columns.
//
//===----------------------------------------------------------------------===//

#include "ml/Ripper.h"

#include "ReferenceRipper.h"
#include "RuleSetIdentity.h"
#include "ml/Metrics.h"
#include "support/Rng.h"
#include "support/TaskPool.h"

#include <gtest/gtest.h>

using namespace schedfilter;

namespace {

FeatureVector fv(double BBLen, double Loads = 0.0, double Calls = 0.0) {
  FeatureVector X{};
  X[FeatBBLen] = BBLen;
  X[FeatLoad] = Loads;
  X[FeatCall] = Calls;
  return X;
}

/// Asserts two rule sets are byte-identical.  The verdict is the shared
/// identicalRuleSets (the same checker bench_train_scale gates on); the
/// per-field EXPECTs below it exist to name the first diverging field
/// when something breaks.
void expectIdentical(const RuleSet &A, const RuleSet &B,
                     const std::string &What) {
  EXPECT_TRUE(identicalRuleSets(A, B)) << What;
  EXPECT_EQ(A.getDefaultClass(), B.getDefaultClass()) << What;
  ASSERT_EQ(A.size(), B.size()) << What;
  for (size_t R = 0; R != A.size(); ++R) {
    const Rule &RA = A.rules()[R], &RB = B.rules()[R];
    EXPECT_EQ(RA.Conclusion, RB.Conclusion) << What << " rule " << R;
    EXPECT_EQ(RA.NumCorrect, RB.NumCorrect) << What << " rule " << R;
    EXPECT_EQ(RA.NumIncorrect, RB.NumIncorrect) << What << " rule " << R;
    ASSERT_EQ(RA.size(), RB.size()) << What << " rule " << R;
    for (size_t C = 0; C != RA.size(); ++C) {
      EXPECT_EQ(RA.Conditions[C].Feature, RB.Conditions[C].Feature)
          << What << " rule " << R << " cond " << C;
      EXPECT_EQ(RA.Conditions[C].IsLessEqual, RB.Conditions[C].IsLessEqual)
          << What << " rule " << R << " cond " << C;
      EXPECT_TRUE(sameBits(RA.Conditions[C].Threshold,
                           RB.Conditions[C].Threshold))
          << What << " rule " << R << " cond " << C << ": "
          << RA.Conditions[C].Threshold << " vs " << RB.Conditions[C].Threshold;
    }
  }
  // Belt and braces: the Figure 4 rendering is byte-identical too.
  EXPECT_EQ(A.toString(), B.toString()) << What;
}

/// Linearly separable data: LS iff bbLen >= 8.  Minority LS.
Dataset separableData(size_t N, uint64_t Seed) {
  Dataset D("separable");
  Rng R(Seed);
  for (size_t I = 0; I != N; ++I) {
    bool Big = R.chance(0.25);
    double BBLen = Big ? R.range(8, 30) : R.range(1, 7);
    D.add({fv(BBLen, R.uniform(), R.uniform()), Big ? Label::LS : Label::NS});
  }
  return D;
}

/// Three-clause disjunction with 5% noise: a realistic hard target.
Dataset hardData(size_t N, uint64_t Seed) {
  Dataset D("hard");
  Rng R(Seed);
  for (size_t I = 0; I != N; ++I) {
    double BBLen = R.range(1, 24);
    double Loads = R.uniform();
    double Calls = R.uniform() * 0.3;
    bool Pos = (BBLen >= 16) || (BBLen >= 8 && Loads >= 0.5) ||
               (Loads >= 0.85 && Calls <= 0.05);
    if (R.chance(0.05))
      Pos = !Pos;
    D.add({fv(BBLen, Loads, Calls), Pos ? Label::LS : Label::NS});
  }
  return D;
}

} // namespace

TEST(RipperEngine, ColumnViewMirrorsInstancesBitExactly) {
  Dataset D = hardData(257, 11);
  ColumnView CV = D.columns();
  ASSERT_EQ(CV.NumInstances, D.size());
  ASSERT_EQ(CV.Labels.size(), D.size());
  for (size_t I = 0; I != D.size(); ++I) {
    EXPECT_EQ(CV.Labels[I], D[I].Y);
    for (unsigned F = 0; F != NumFeatures; ++F)
      EXPECT_TRUE(sameBits(CV.col(F)[I], D[I].X[F])) << I << "/" << F;
  }
}

TEST(RipperEngine, MatchesReferenceOnStockDatasets) {
  std::vector<Dataset> Datasets = {
      separableData(800, 42), hardData(1000, 7), hardData(1500, 2)};
  for (const Dataset &D : Datasets)
    expectIdentical(Ripper().train(D), reference::trainReference(D),
                    D.getName());
}

TEST(RipperEngine, MatchesReferenceAcrossSeeds) {
  for (uint64_t Seed : {1ull, 2ull, 17ull, 999ull, 0xDEADBEEFull}) {
    Dataset D = hardData(700, Seed * 13 + 1);
    RipperOptions O;
    O.Seed = Seed;
    expectIdentical(Ripper(O).train(D),
                    reference::trainReference(D, O),
                    "seed " + std::to_string(Seed));
  }
}

TEST(RipperEngine, MatchesReferenceAcrossOptionSettings) {
  Dataset D = hardData(900, 5);
  std::vector<RipperOptions> Settings(5);
  Settings[1].OptimizePasses = 0;
  Settings[2].GrowFraction = 0.5;
  Settings[3].MdlSlackBits = 0.0;
  Settings[4].MaxConditionsPerRule = 2;
  Settings[4].MaxRules = 3;
  for (size_t S = 0; S != Settings.size(); ++S)
    expectIdentical(Ripper(Settings[S]).train(D),
                    reference::trainReference(D, Settings[S]),
                    "options " + std::to_string(S));
}

TEST(RipperEngine, PooledTrainingIsByteIdenticalAtAnyJobCount) {
  // Large enough that the per-feature fan-out actually engages (the
  // covered set exceeds the inline threshold), plus a small dataset where
  // it never does -- both must match serial and the reference exactly.
  for (size_t N : {300u, 6000u}) {
    Dataset D = hardData(N, 31);
    RuleSet Serial = Ripper().train(D);
    expectIdentical(Serial, reference::trainReference(D),
                    "serial vs reference n=" + std::to_string(N));
    for (unsigned Jobs : {2u, 4u}) {
      TaskPool Pool(Jobs);
      expectIdentical(Ripper().train(D, Pool), Serial,
                      "jobs=" + std::to_string(Jobs) +
                          " n=" + std::to_string(N));
    }
  }
}

TEST(RipperEngine, PooledLearnerMatchesFromInsideAPoolTask) {
  // LOOCV runs learners *inside* pool tasks (nested parallelFor runs
  // inline); the filter must still be byte-identical.
  Dataset D = hardData(500, 77);
  RuleSet Serial = Ripper().train(D);
  TaskPool Pool(4);
  std::vector<RuleSet> Out(3, RuleSet(Label::NS));
  Pool.parallelFor(Out.size(),
                   [&](size_t I) { Out[I] = Ripper().train(D, Pool); });
  for (size_t I = 0; I != Out.size(); ++I)
    expectIdentical(Out[I], Serial, "nested slot " + std::to_string(I));
}

// --- Degenerate inputs. ---

TEST(RipperEngine, EmptyAndSingleClassMatchReference) {
  Dataset Empty("empty");
  expectIdentical(Ripper().train(Empty), reference::trainReference(Empty),
                  "empty");

  Dataset AllNS("allns"), AllLS("allls");
  for (int I = 0; I != 40; ++I) {
    AllNS.add({fv(I % 10 + 1), Label::NS});
    AllLS.add({fv(I % 10 + 1), Label::LS});
  }
  expectIdentical(Ripper().train(AllNS), reference::trainReference(AllNS),
                  "all NS");
  expectIdentical(Ripper().train(AllLS), reference::trainReference(AllLS),
                  "all LS");
  EXPECT_EQ(Ripper().train(AllNS).getDefaultClass(), Label::NS);
  EXPECT_EQ(Ripper().train(AllLS).getDefaultClass(), Label::LS);
}

TEST(RipperEngine, TinyDatasetsWithEmptyPruneSplit) {
  // With <= 2 positives, ceil(2/3 * n) swallows every positive into the
  // grow split: the prune side is empty, every prefix scores Worth 0, and
  // the rule prunes to empty -- training must stop cleanly (no rules),
  // identically in both engines, at every size from 1 up.
  for (size_t Positives : {1u, 2u}) {
    for (size_t Negatives : {0u, 1u, 2u, 5u}) {
      Dataset D("tiny");
      for (size_t I = 0; I != Positives; ++I)
        D.add({fv(10 + static_cast<double>(I), 0.9), Label::LS});
      for (size_t I = 0; I != Negatives; ++I)
        D.add({fv(2 + static_cast<double>(I), 0.1), Label::NS});
      RuleSet RS = Ripper().train(D);
      expectIdentical(RS, reference::trainReference(D),
                      "tiny " + std::to_string(Positives) + "p" +
                          std::to_string(Negatives) + "n");
      // Up to 2 instances per class, ceil keeps *both* prune sides empty:
      // every prefix scores Worth 0, the first rule prunes to nothing and
      // training stops with zero rules.  (At 5 negatives the prune side
      // regains an instance and a rule may legitimately survive; those
      // cases are covered by the equivalence pin alone.)
      if (Negatives <= 2) {
        EXPECT_EQ(RS.size(), 0u) << "empty prune split must stop training";
      }
      // Predicting must be safe whatever was induced.
      (void)RS.predict(fv(10, 0.9));
    }
  }
}

TEST(RipperEngine, AllIdenticalFeatureVectors) {
  // Every instance identical: one distinct value per feature, so no
  // condition can exclude anything -- no rules, majority default.  The
  // sorted columns collapse to a single tie group; both engines must
  // agree.
  for (double LSShare : {0.2, 0.5, 0.8}) {
    Dataset D("const");
    for (int I = 0; I != 60; ++I)
      D.add({fv(7, 0.5, 0.25),
             I < 60 * LSShare ? Label::LS : Label::NS});
    RuleSet RS = Ripper().train(D);
    expectIdentical(RS, reference::trainReference(D),
                    "const features, LS share " + std::to_string(LSShare));
    EXPECT_EQ(RS.size(), 0u);
  }
}

TEST(RipperEngine, ConstantColumnsAmongInformativeOnes) {
  // Most features constant (the fv() helper zeroes them), one
  // informative: the sweep must skip the constant columns' single tie
  // group and still find the signal.
  Dataset D = separableData(400, 3);
  RuleSet RS = Ripper().train(D);
  expectIdentical(RS, reference::trainReference(D), "constant columns");
  EXPECT_GE(RS.size(), 1u);
  EXPECT_LE(errorRatePercent(RS, D), 1.0);
}

TEST(RipperEngine, ContradictoryDuplicatesMatchReference) {
  Dataset D("contra");
  for (int I = 0; I != 300; ++I)
    D.add({fv(10, 0.5), I % 5 == 0 ? Label::LS : Label::NS});
  expectIdentical(Ripper().train(D), reference::trainReference(D), "contra");
}

// Property sweep: equivalence holds across many generated datasets, with
// the pool engaged.
class RipperEngineProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RipperEngineProperty, IndexedEngineEqualsReference) {
  Dataset D = hardData(400 + 37 * (GetParam() % 5), GetParam());
  TaskPool Pool(3);
  RuleSet New = Ripper().train(D, Pool);
  expectIdentical(New, reference::trainReference(D),
                  "property seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RipperEngineProperty,
                         ::testing::Values(3, 9, 27, 81, 243, 729));
