//===- tests/labeler_test.cpp - ml/Labeler unit tests -----------------------===//

#include "ml/Labeler.h"

#include <gtest/gtest.h>

using namespace schedfilter;

namespace {

BlockRecord record(uint64_t CostNo, uint64_t CostSched) {
  BlockRecord R;
  R.CostNoSched = CostNo;
  R.CostSched = CostSched;
  return R;
}

} // namespace

TEST(Labeler, BenefitPercentMath) {
  EXPECT_DOUBLE_EQ(schedulingBenefitPercent(record(100, 80)), 20.0);
  EXPECT_DOUBLE_EQ(schedulingBenefitPercent(record(100, 100)), 0.0);
  EXPECT_DOUBLE_EQ(schedulingBenefitPercent(record(100, 110)), -10.0);
  EXPECT_DOUBLE_EQ(schedulingBenefitPercent(record(0, 0)), 0.0);
}

TEST(Labeler, ZeroThresholdSplitsOnAnyImprovement) {
  EXPECT_EQ(labelWithThreshold(record(100, 99), 0.0), Label::LS);
  EXPECT_EQ(labelWithThreshold(record(100, 100), 0.0), Label::NS);
  EXPECT_EQ(labelWithThreshold(record(100, 101), 0.0), Label::NS);
}

TEST(Labeler, PositiveThresholdDropsTheNoiseBand) {
  // Benefit 10% at t=20: in (0, t], so no training instance at all.
  EXPECT_EQ(labelWithThreshold(record(100, 90), 20.0), std::nullopt);
  // Benefit exactly t is still dropped (rule is "more than t% less").
  EXPECT_EQ(labelWithThreshold(record(100, 80), 20.0), std::nullopt);
  // Above t: LS.
  EXPECT_EQ(labelWithThreshold(record(100, 79), 20.0), Label::LS);
  // "NS if scheduling is not better (at all)" regardless of t.
  EXPECT_EQ(labelWithThreshold(record(100, 100), 20.0), Label::NS);
  EXPECT_EQ(labelWithThreshold(record(100, 120), 20.0), Label::NS);
}

TEST(Labeler, BuildDatasetDropsBandOnly) {
  std::vector<BlockRecord> Records = {
      record(100, 70),  // 30% -> LS at t=20
      record(100, 90),  // 10% -> dropped at t=20
      record(100, 100), // 0%  -> NS
      record(100, 130), // -30% -> NS
  };
  Dataset D = buildDataset(Records, 20.0, "x");
  EXPECT_EQ(D.size(), 3u);
  EXPECT_EQ(D.countLabel(Label::LS), 1u);
  EXPECT_EQ(D.countLabel(Label::NS), 2u);
}

TEST(Labeler, NsCountInvariantUnderThreshold) {
  // The paper's Table 5: NS is constant as t varies, only LS shrinks.
  std::vector<BlockRecord> Records;
  for (int B = 0; B <= 50; ++B)
    Records.push_back(record(100, static_cast<uint64_t>(100 - B)));
  for (int B = 1; B <= 20; ++B)
    Records.push_back(record(100, static_cast<uint64_t>(100 + B)));

  size_t NsAt0 = buildDataset(Records, 0.0, "x").countLabel(Label::NS);
  size_t PrevLS = buildDataset(Records, 0.0, "x").countLabel(Label::LS);
  for (double T : {5.0, 10.0, 25.0, 50.0}) {
    Dataset D = buildDataset(Records, T, "x");
    EXPECT_EQ(D.countLabel(Label::NS), NsAt0);
    EXPECT_LE(D.countLabel(Label::LS), PrevLS);
    PrevLS = D.countLabel(Label::LS);
  }
}

TEST(Labeler, DatasetKeepsName) {
  EXPECT_EQ(buildDataset({}, 0.0, "compress").getName(), "compress");
}

TEST(Labeler, FeaturesCarriedThrough) {
  BlockRecord R = record(100, 50);
  R.X[FeatBBLen] = 42.0;
  Dataset D = buildDataset({R}, 0.0, "x");
  ASSERT_EQ(D.size(), 1u);
  EXPECT_EQ(D[0].X[FeatBBLen], 42.0);
  EXPECT_EQ(D[0].Y, Label::LS);
}
