//===- tests/labeler_test.cpp - ml/Labeler unit tests -----------------------===//

#include "ml/Labeler.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace schedfilter;

namespace {

BlockRecord record(uint64_t CostNo, uint64_t CostSched) {
  BlockRecord R;
  R.CostNoSched = CostNo;
  R.CostSched = CostSched;
  return R;
}

} // namespace

TEST(Labeler, BenefitPercentMath) {
  EXPECT_DOUBLE_EQ(schedulingBenefitPercent(record(100, 80)), 20.0);
  EXPECT_DOUBLE_EQ(schedulingBenefitPercent(record(100, 100)), 0.0);
  EXPECT_DOUBLE_EQ(schedulingBenefitPercent(record(100, 110)), -10.0);
  EXPECT_DOUBLE_EQ(schedulingBenefitPercent(record(0, 0)), 0.0);
}

TEST(Labeler, ZeroThresholdSplitsOnAnyImprovement) {
  EXPECT_EQ(labelWithThreshold(record(100, 99), 0.0), Label::LS);
  EXPECT_EQ(labelWithThreshold(record(100, 100), 0.0), Label::NS);
  EXPECT_EQ(labelWithThreshold(record(100, 101), 0.0), Label::NS);
}

TEST(Labeler, PositiveThresholdDropsTheNoiseBand) {
  // Benefit 10% at t=20: in (0, t], so no training instance at all.
  EXPECT_EQ(labelWithThreshold(record(100, 90), 20.0), std::nullopt);
  // Benefit exactly t is still dropped (rule is "more than t% less").
  EXPECT_EQ(labelWithThreshold(record(100, 80), 20.0), std::nullopt);
  // Above t: LS.
  EXPECT_EQ(labelWithThreshold(record(100, 79), 20.0), Label::LS);
  // "NS if scheduling is not better (at all)" regardless of t.
  EXPECT_EQ(labelWithThreshold(record(100, 100), 20.0), Label::NS);
  EXPECT_EQ(labelWithThreshold(record(100, 120), 20.0), Label::NS);
}

TEST(Labeler, BuildDatasetDropsBandOnly) {
  std::vector<BlockRecord> Records = {
      record(100, 70),  // 30% -> LS at t=20
      record(100, 90),  // 10% -> dropped at t=20
      record(100, 100), // 0%  -> NS
      record(100, 130), // -30% -> NS
  };
  Dataset D = buildDataset(Records, 20.0, "x");
  EXPECT_EQ(D.size(), 3u);
  EXPECT_EQ(D.countLabel(Label::LS), 1u);
  EXPECT_EQ(D.countLabel(Label::NS), 2u);
}

TEST(Labeler, NsCountInvariantUnderThreshold) {
  // The paper's Table 5: NS is constant as t varies, only LS shrinks.
  std::vector<BlockRecord> Records;
  for (int B = 0; B <= 50; ++B)
    Records.push_back(record(100, static_cast<uint64_t>(100 - B)));
  for (int B = 1; B <= 20; ++B)
    Records.push_back(record(100, static_cast<uint64_t>(100 + B)));

  size_t NsAt0 = buildDataset(Records, 0.0, "x").countLabel(Label::NS);
  size_t PrevLS = buildDataset(Records, 0.0, "x").countLabel(Label::LS);
  for (double T : {5.0, 10.0, 25.0, 50.0}) {
    Dataset D = buildDataset(Records, T, "x");
    EXPECT_EQ(D.countLabel(Label::NS), NsAt0);
    EXPECT_LE(D.countLabel(Label::LS), PrevLS);
    PrevLS = D.countLabel(Label::LS);
  }
}

TEST(Labeler, DatasetKeepsName) {
  EXPECT_EQ(buildDataset({}, 0.0, "compress").getName(), "compress");
}

TEST(Labeler, FeaturesCarriedThrough) {
  BlockRecord R = record(100, 50);
  R.X[FeatBBLen] = 42.0;
  Dataset D = buildDataset({R}, 0.0, "x");
  ASSERT_EQ(D.size(), 1u);
  EXPECT_EQ(D[0].X[FeatBBLen], 42.0);
  EXPECT_EQ(D[0].Y, Label::LS);
}

TEST(Labeler, ZeroCostBlocksAreAlwaysNs) {
  // A zero-cost block has benefit defined as 0, so it is NS at every
  // threshold -- never dropped, never divided by zero.
  for (double T : {0.0, 20.0, 50.0}) {
    EXPECT_EQ(labelWithThreshold(record(0, 0), T), Label::NS);
    // Even a nonsense trace (scheduled cost without unscheduled cost)
    // falls back to the benefit-0 rule instead of misbehaving.
    EXPECT_EQ(labelWithThreshold(record(0, 7), T), Label::NS);
  }
}

TEST(Labeler, ExecCountDoesNotAffectLabeling) {
  // The threshold rule is per-block, not profile-weighted (the paper
  // labels each block once however hot it is); ExecCount matters to
  // evaluation, never to the label.
  for (uint64_t Exec : {uint64_t(1), uint64_t(1000), uint64_t(1) << 40}) {
    BlockRecord LS = record(100, 70), Band = record(100, 90),
                NS = record(100, 120);
    LS.ExecCount = Band.ExecCount = NS.ExecCount = Exec;
    EXPECT_EQ(labelWithThreshold(LS, 20.0), Label::LS);
    EXPECT_EQ(labelWithThreshold(Band, 20.0), std::nullopt);
    EXPECT_EQ(labelWithThreshold(NS, 20.0), Label::NS);
    Dataset D = buildDataset({LS, Band, NS}, 20.0, "x");
    EXPECT_EQ(D.size(), 2u);
    EXPECT_EQ(D.countLabel(Label::LS), 1u);
  }
}

TEST(Labeler, BuildDatasetAgreesWithLabelWithThresholdOnRandomRecords) {
  // buildDataset must be exactly "labelWithThreshold per record, drops
  // skipped, order preserved" -- checked on a seeded random trace across
  // several thresholds.
  Rng R(0xabcdef);
  std::vector<BlockRecord> Records;
  for (size_t I = 0; I != 500; ++I) {
    BlockRecord Rec = record(R.below(200), R.below(200));
    Rec.X[FeatBBLen] = static_cast<double>(I); // tag to verify order
    Records.push_back(Rec);
  }
  for (double T : {0.0, 5.0, 20.0, 75.0}) {
    Dataset D = buildDataset(Records, T, "rand");
    size_t Kept = 0;
    for (size_t I = 0; I != Records.size(); ++I) {
      std::optional<Label> L = labelWithThreshold(Records[I], T);
      if (!L)
        continue;
      ASSERT_LT(Kept, D.size());
      EXPECT_EQ(D[Kept].Y, *L) << "record " << I << " at t=" << T;
      EXPECT_EQ(D[Kept].X[FeatBBLen], static_cast<double>(I));
      ++Kept;
    }
    EXPECT_EQ(D.size(), Kept);
  }
}

TEST(Labeler, NullTransformIsThePlainOverload) {
  std::vector<BlockRecord> Records = {record(100, 70), record(100, 90),
                                      record(100, 120)};
  Dataset Plain = buildDataset(Records, 20.0, "x");
  Dataset Null = buildDataset(Records, 20.0, "x", LabelTransform());
  ASSERT_EQ(Null.size(), Plain.size());
  for (size_t I = 0; I != Plain.size(); ++I) {
    EXPECT_EQ(Null[I].X, Plain[I].X);
    EXPECT_EQ(Null[I].Y, Plain[I].Y);
  }
}

TEST(Labeler, TransformSeesVerdictRecordAndIndex) {
  // The hook contract of the noise layer: the transform receives the
  // threshold rule's verdict, the raw record, and the record's trace
  // index (the key per-record noise streams fork from), and its return
  // decides the instance.
  std::vector<BlockRecord> Records = {record(100, 70),   // LS
                                      record(100, 90),   // dropped at t=20
                                      record(100, 120)}; // NS
  std::vector<size_t> SeenIndices;
  std::vector<std::optional<Label>> SeenVerdicts;
  Dataset D = buildDataset(
      Records, 20.0, "x",
      [&](std::optional<Label> L, const BlockRecord &Rec, size_t I) {
        SeenIndices.push_back(I);
        SeenVerdicts.push_back(L);
        EXPECT_EQ(Rec.CostNoSched, 100u);
        // Resurrect the band as LS, drop true NS: both directions of
        // the transform exercised at once.
        if (!L)
          return std::optional<Label>(Label::LS);
        if (*L == Label::NS)
          return std::optional<Label>();
        return L;
      });
  EXPECT_EQ(SeenIndices, (std::vector<size_t>{0, 1, 2}));
  ASSERT_EQ(SeenVerdicts.size(), 3u);
  EXPECT_EQ(SeenVerdicts[0], Label::LS);
  EXPECT_EQ(SeenVerdicts[1], std::nullopt);
  EXPECT_EQ(SeenVerdicts[2], Label::NS);
  ASSERT_EQ(D.size(), 2u);
  EXPECT_EQ(D[0].Y, Label::LS);
  EXPECT_EQ(D[1].Y, Label::LS); // the resurrected band record
  EXPECT_EQ(D.countLabel(Label::NS), 0u);
}
