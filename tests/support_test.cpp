//===- tests/support_test.cpp - support/ unit tests -------------------------===//

#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace schedfilter;

TEST(Rng, DeterministicFromSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next64(), B.next64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next32() == B.next32();
  EXPECT_LT(Same, 4);
}

TEST(Rng, BelowIsInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(13), 13u);
}

TEST(Rng, RangeInclusive) {
  Rng R(7);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int V = R.range(3, 6);
    EXPECT_GE(V, 3);
    EXPECT_LE(V, 6);
    SawLo |= V == 3;
    SawHi |= V == 6;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I) {
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng R(11);
  for (int I = 0; I < 50; ++I) {
    EXPECT_FALSE(R.chance(0.0));
    EXPECT_TRUE(R.chance(1.0));
  }
}

TEST(Rng, GeometricAtLeastOne) {
  Rng R(13);
  for (int I = 0; I < 1000; ++I)
    EXPECT_GE(R.geometric(0.3), 1);
}

TEST(Rng, GeometricMeanRoughlyInverseP) {
  Rng R(17);
  double Sum = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    Sum += R.geometric(0.25);
  EXPECT_NEAR(Sum / N, 4.0, 0.2);
}

TEST(Rng, PickWeightedRespectsZeroWeight) {
  Rng R(19);
  std::vector<double> W = {0.0, 1.0, 0.0};
  for (int I = 0; I < 200; ++I)
    EXPECT_EQ(R.pickWeighted(W), 1u);
}

TEST(Rng, PickWeightedProportions) {
  Rng R(23);
  std::vector<double> W = {1.0, 3.0};
  int Count1 = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    Count1 += R.pickWeighted(W) == 1;
  EXPECT_NEAR(static_cast<double>(Count1) / N, 0.75, 0.02);
}

TEST(Rng, ZipfRankOneMostLikely) {
  Rng R(29);
  std::vector<int> Counts(11, 0);
  for (int I = 0; I < 20000; ++I)
    ++Counts[static_cast<size_t>(R.zipf(10, 1.2))];
  EXPECT_GT(Counts[1], Counts[2]);
  EXPECT_GT(Counts[2], Counts[5]);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng A(31);
  Rng B = A.split();
  Rng C = A.split();
  EXPECT_NE(B.next64(), C.next64());
}

TEST(Rng, ForkReplaysExactly) {
  Rng A(31);
  Rng B = A.fork(7);
  Rng C = A.fork(7);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(B.next64(), C.next64());
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng A(31), Untouched(31);
  (void)A.fork(0);
  (void)A.fork(123456789);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next64(), Untouched.next64());
}

TEST(Rng, ForkStreamsIndependent) {
  // Distinct stream ids (including adjacent ones) must give unrelated
  // streams; sample a few and check pairwise disagreement.
  Rng A(31);
  std::vector<uint64_t> Firsts;
  for (uint64_t Id : {0ULL, 1ULL, 2ULL, 1000ULL, 0xFFFFFFFFFFFFULL}) {
    Rng S = A.fork(Id);
    Firsts.push_back(S.next64());
  }
  for (size_t I = 0; I != Firsts.size(); ++I)
    for (size_t J = I + 1; J != Firsts.size(); ++J)
      EXPECT_NE(Firsts[I], Firsts[J]);
  // Longer prefixes of two adjacent streams should also disagree almost
  // everywhere.
  Rng S0 = A.fork(0), S1 = A.fork(1);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += S0.next32() == S1.next32();
  EXPECT_LT(Same, 4);
}

TEST(Rng, ForkDependsOnParentState) {
  Rng A(31), B(32);
  Rng FA = A.fork(5), FB = B.fork(5);
  EXPECT_NE(FA.next64(), FB.next64());
}

TEST(Statistics, MeanAndMedian) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Statistics, GeometricMeanBasics) {
  EXPECT_NEAR(geometricMean({2, 8}), 4.0, 1e-9);
  EXPECT_NEAR(geometricMean({5}), 5.0, 1e-9);
}

TEST(Statistics, GeometricMeanClampsZeros) {
  // A single 0 must not zero out the whole mean (Table 3 has exact zeros).
  double G = geometricMean({0.0, 1.0, 1.0});
  EXPECT_GT(G, 0.0);
  EXPECT_LT(G, 1.0);
}

TEST(Statistics, SampleStddev) {
  EXPECT_DOUBLE_EQ(sampleStddev({2, 2, 2}), 0.0);
  EXPECT_NEAR(sampleStddev({1, 2, 3}), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(sampleStddev({1}), 0.0);
}

TEST(Statistics, SafeRatio) {
  EXPECT_DOUBLE_EQ(safeRatio(6, 3), 2.0);
  EXPECT_DOUBLE_EQ(safeRatio(6, 0, -1.0), -1.0);
}

TEST(StringUtils, FormatDouble) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(StringUtils, Padding) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcd", 2), "abcd");
}

TEST(StringUtils, FormatPercent) {
  EXPECT_EQ(formatPercent(0.379, 1), "37.9%");
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter T({"a", "long-header"});
  T.addRow({"xxxx", "1"});
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("long-header"), std::string::npos);
  EXPECT_NE(Out.find("xxxx"), std::string::npos);
  EXPECT_EQ(T.numRows(), 1u);
}

TEST(TablePrinter, CsvRoundTripShape) {
  TablePrinter T({"x", "y"});
  T.addRow({"1", "2"});
  T.addRow({"3", "4"});
  std::ostringstream OS;
  T.printCsv(OS);
  EXPECT_EQ(OS.str(), "x,y\n1,2\n3,4\n");
}

TEST(TablePrinter, ShortRowsPadded) {
  TablePrinter T({"x", "y"});
  T.addRow({"only"});
  std::ostringstream OS;
  T.printCsv(OS);
  EXPECT_EQ(OS.str(), "x,y\nonly,\n");
}

TEST(Timer, AccumulatesAcrossIntervals) {
  AccumulatingTimer T;
  T.start();
  T.stop();
  int64_t First = T.nanoseconds();
  T.start();
  T.stop();
  EXPECT_GE(T.nanoseconds(), First);
  T.reset();
  EXPECT_EQ(T.nanoseconds(), 0);
}
