//===- tests/determinism_test.cpp - jobs=1 vs jobs=4 regression -------------===//
//
// The parallel engine's headline guarantee: running a suite end-to-end at
// --jobs 1 and --jobs 4 yields identical SIM(P) numbers, work units,
// induced rule sets and Table-5-style aggregates -- bit for bit.  Uses a
// shrunken FP suite so the test stays fast while still covering every
// layer (generation, labeling, LOOCV training, evaluation,
// recompilation).  Wall-clock fields (SchedulingSeconds) are the one
// deliberate exception: they are measurements, not results, and are
// excluded here just as they are from the golden tests.
//
//===----------------------------------------------------------------------===//

#include "harness/ParallelExperiments.h"

#include <gtest/gtest.h>

using namespace schedfilter;

namespace {

/// A small but non-trivial suite: four FP benchmarks at reduced size.
std::vector<BenchmarkSpec> smallSuite() {
  std::vector<BenchmarkSpec> Suite = fpSuite();
  Suite.resize(4);
  for (BenchmarkSpec &Spec : Suite)
    Spec.NumMethods = 14;
  return Suite;
}

void expectIdenticalRuns(const std::vector<BenchmarkRun> &A,
                         const std::vector<BenchmarkRun> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Name, B[I].Name);
    ASSERT_EQ(A[I].Records.size(), B[I].Records.size());
    for (size_t R = 0; R != A[I].Records.size(); ++R) {
      EXPECT_EQ(A[I].Records[R].X, B[I].Records[R].X);
      EXPECT_EQ(A[I].Records[R].CostNoSched, B[I].Records[R].CostNoSched);
      EXPECT_EQ(A[I].Records[R].CostSched, B[I].Records[R].CostSched);
      EXPECT_EQ(A[I].Records[R].ExecCount, B[I].Records[R].ExecCount);
    }
    // SIM(P) and deterministic effort, both fixed policies.
    EXPECT_EQ(A[I].NeverReport.NumBlocks, B[I].NeverReport.NumBlocks);
    EXPECT_EQ(A[I].NeverReport.SimulatedTime, B[I].NeverReport.SimulatedTime);
    EXPECT_EQ(A[I].AlwaysReport.NumScheduled, B[I].AlwaysReport.NumScheduled);
    EXPECT_EQ(A[I].AlwaysReport.SchedulingWork,
              B[I].AlwaysReport.SchedulingWork);
    EXPECT_EQ(A[I].AlwaysReport.SimulatedTime,
              B[I].AlwaysReport.SimulatedTime);
  }
}

void expectIdenticalThresholdResults(const ThresholdResult &A,
                                     const ThresholdResult &B) {
  EXPECT_EQ(A.ThresholdPct, B.ThresholdPct);
  EXPECT_EQ(A.Names, B.Names);
  // Table 5 aggregates.
  EXPECT_EQ(A.TrainLS, B.TrainLS);
  EXPECT_EQ(A.TrainNS, B.TrainNS);
  // Table 6 aggregates.
  EXPECT_EQ(A.RuntimeLS, B.RuntimeLS);
  EXPECT_EQ(A.RuntimeNS, B.RuntimeNS);
  // Per-benchmark evaluation vectors (exact double equality: the values
  // are pure functions of the data, computed in suite order).
  EXPECT_EQ(A.ErrorPct, B.ErrorPct);
  EXPECT_EQ(A.PredictedTimePct, B.PredictedTimePct);
  EXPECT_EQ(A.EffortRatioWork, B.EffortRatioWork);
  EXPECT_EQ(A.AppRatioLN, B.AppRatioLN);
  EXPECT_EQ(A.AppRatioLS, B.AppRatioLS);
  // Induced rule sets, structurally (via the full printable form).
  ASSERT_EQ(A.Filters.size(), B.Filters.size());
  for (size_t I = 0; I != A.Filters.size(); ++I) {
    EXPECT_EQ(A.Filters[I].getDefaultClass(), B.Filters[I].getDefaultClass());
    EXPECT_EQ(A.Filters[I].toString(), B.Filters[I].toString());
  }
}

} // namespace

TEST(Determinism, SuiteDataIdenticalAcrossJobCounts) {
  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkSpec> Suite = smallSuite();
  ExperimentEngine Serial(1), Parallel(4);
  std::vector<BenchmarkRun> A = Serial.generateSuiteData(Suite, Model);
  std::vector<BenchmarkRun> B = Parallel.generateSuiteData(Suite, Model);
  expectIdenticalRuns(A, B);
}

TEST(Determinism, EndToEndThresholdRunIdenticalAcrossJobCounts) {
  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkSpec> Suite = smallSuite();
  ExperimentEngine Serial(1), Parallel(4);

  std::vector<BenchmarkRun> RunsA = Serial.generateSuiteData(Suite, Model);
  std::vector<BenchmarkRun> RunsB = Parallel.generateSuiteData(Suite, Model);

  ThresholdResult A = Serial.runThreshold(RunsA, 0.0, ripperLearner());
  ThresholdResult B = Parallel.runThreshold(RunsB, 0.0, ripperLearner());
  expectIdenticalThresholdResults(A, B);
}

TEST(Determinism, SweepIdenticalAcrossJobCountsAndMatchesSerialApi) {
  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkSpec> Suite = smallSuite();
  ExperimentEngine Parallel(4);

  std::vector<BenchmarkRun> Runs = Parallel.generateSuiteData(Suite, Model);
  std::vector<double> Thresholds = {0.0, 20.0, 50.0};

  // The serial free functions are the reference implementation.
  std::vector<ThresholdResult> Serial =
      runThresholdSweep(Runs, Thresholds, ripperLearner());
  std::vector<ThresholdResult> Threaded =
      Parallel.runThresholdSweep(Runs, Thresholds, ripperLearner());

  ASSERT_EQ(Serial.size(), Threaded.size());
  for (size_t I = 0; I != Serial.size(); ++I)
    expectIdenticalThresholdResults(Serial[I], Threaded[I]);
}

TEST(Determinism, LoocvFoldsIdenticalAcrossJobCounts) {
  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkSpec> Suite = smallSuite();
  ExperimentEngine Engine(4);
  std::vector<BenchmarkRun> Runs = Engine.generateSuiteData(Suite, Model);
  std::vector<Dataset> Labeled = Engine.labelSuite(Runs, 0.0);

  std::vector<LoocvFold> Serial = leaveOneOut(Labeled, ripperLearner());
  std::vector<LoocvFold> Parallel =
      leaveOneOut(Labeled, ripperLearner(), Engine.pool());
  ASSERT_EQ(Serial.size(), Parallel.size());
  for (size_t I = 0; I != Serial.size(); ++I) {
    EXPECT_EQ(Serial[I].HeldOut, Parallel[I].HeldOut);
    EXPECT_EQ(Serial[I].Filter.toString(), Parallel[I].Filter.toString());
  }
}
