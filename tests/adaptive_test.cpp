//===- tests/adaptive_test.cpp - adaptive pipeline & ppc970 tests -------------===//

#include "runtime/CompileService.h"
#include "target/MachineModel.h"

#include "TestHelpers.h"
#include "workloads/ProgramGenerator.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace schedfilter;
using namespace schedfilter::test;

namespace {

Program testProgram() {
  BenchmarkSpec S = *findBenchmarkSpec("mpegaudio");
  S.NumMethods = 12;
  return ProgramGenerator(S).generate();
}

} // namespace

TEST(AdaptiveJit, ZeroFractionSchedulesNothing) {
  MachineModel M = MachineModel::ppc7410();
  Program P = testProgram();
  CompileReport R = compileProgramAdaptive(P, M, SchedulingPolicy::Always,
                                           nullptr, 0.0);
  EXPECT_EQ(R.NumScheduled, 0u);
  CompileReport NS = compileProgram(P, M, SchedulingPolicy::Never);
  EXPECT_DOUBLE_EQ(R.SimulatedTime, NS.SimulatedTime);
}

TEST(AdaptiveJit, FullFractionMatchesPlainPipeline) {
  MachineModel M = MachineModel::ppc7410();
  Program P = testProgram();
  CompileReport Adaptive = compileProgramAdaptive(
      P, M, SchedulingPolicy::Always, nullptr, 1.0);
  CompileReport Plain = compileProgram(P, M, SchedulingPolicy::Always);
  EXPECT_EQ(Adaptive.NumScheduled, Plain.NumScheduled);
  EXPECT_DOUBLE_EQ(Adaptive.SimulatedTime, Plain.SimulatedTime);
  EXPECT_EQ(Adaptive.SchedulingWork, Plain.SchedulingWork);
}

TEST(AdaptiveJit, HalfFractionBetweenExtremes) {
  MachineModel M = MachineModel::ppc7410();
  Program P = testProgram();
  CompileReport NS = compileProgram(P, M, SchedulingPolicy::Never);
  CompileReport LS = compileProgram(P, M, SchedulingPolicy::Always);
  CompileReport Half = compileProgramAdaptive(
      P, M, SchedulingPolicy::Always, nullptr, 0.5);
  EXPECT_GT(Half.NumScheduled, 0u);
  EXPECT_LT(Half.NumScheduled, LS.NumScheduled);
  EXPECT_LE(Half.SimulatedTime, NS.SimulatedTime);
  EXPECT_GE(Half.SimulatedTime, LS.SimulatedTime * 0.999);
  EXPECT_LT(Half.SchedulingWork, LS.SchedulingWork);
}

TEST(AdaptiveJit, HotSelectionCapturesMostBenefit) {
  // The point of hot-method JITs: optimizing the top half of methods by
  // weight should capture well over half of the available benefit.
  MachineModel M = MachineModel::ppc7410();
  Program P = testProgram();
  CompileReport NS = compileProgram(P, M, SchedulingPolicy::Never);
  CompileReport LS = compileProgram(P, M, SchedulingPolicy::Always);
  CompileReport Half = compileProgramAdaptive(
      P, M, SchedulingPolicy::Always, nullptr, 0.5);
  double FullBenefit = NS.SimulatedTime - LS.SimulatedTime;
  double HalfBenefit = NS.SimulatedTime - Half.SimulatedTime;
  ASSERT_GT(FullBenefit, 0.0);
  EXPECT_GT(HalfBenefit / FullBenefit, 0.5);
}

TEST(AdaptiveJit, FilteredPolicyComposes) {
  MachineModel M = MachineModel::ppc7410();
  Program P = testProgram();
  RuleSet RS(Label::NS);
  Rule R;
  R.Conclusion = Label::LS;
  R.Conditions.push_back({FeatBBLen, false, 7.0});
  RS.addRule(std::move(R));
  ScheduleFilter F(RS);
  CompileReport Rep = compileProgramAdaptive(
      P, M, SchedulingPolicy::Filtered, &F, 0.5);
  EXPECT_EQ(Rep.NumScheduled, F.numScheduleDecisions());
  // Filter only consulted for hot methods' blocks.
  EXPECT_LT(F.numScheduleDecisions() + F.numSkipDecisions(),
            P.totalBlocks());
}

TEST(AdaptiveJit, MatchesPartitionedPipelineBitForBit) {
  // compileProgramAdaptive moved from filter/Pipeline onto the runtime's
  // MethodCompiler; its historical algorithm -- partition into hot/cold
  // programs, compileProgram each, merge -- must be reproduced bit for
  // bit, the SimulatedTime floating-point fold included.  This test IS
  // that old algorithm, inlined.
  MachineModel M = MachineModel::ppc7410();
  Program P = testProgram();
  RuleSet RS(Label::NS);
  Rule Rl;
  Rl.Conclusion = Label::LS;
  Rl.Conditions.push_back({FeatBBLen, false, 7.0});
  RS.addRule(std::move(Rl));

  for (double Hot : {0.0, 0.25, 0.5, 1.0}) {
    for (SchedulingPolicy Policy :
         {SchedulingPolicy::Always, SchedulingPolicy::Filtered}) {
      ScheduleFilter NewF(RS);
      ScheduleFilter OldF(RS);
      ScheduleFilter *NewFilter =
          Policy == SchedulingPolicy::Filtered ? &NewF : nullptr;
      ScheduleFilter *OldFilter =
          Policy == SchedulingPolicy::Filtered ? &OldF : nullptr;

      CompileReport New =
          compileProgramAdaptive(P, M, Policy, NewFilter, Hot);

      // The pre-runtime implementation, verbatim.
      std::vector<std::pair<double, size_t>> Ranked;
      for (size_t MI = 0; MI != P.size(); ++MI) {
        double Weight = 0.0;
        for (const BasicBlock &BB : P[MI])
          Weight += static_cast<double>(BB.getExecCount());
        Ranked.push_back({Weight, MI});
      }
      std::sort(Ranked.begin(), Ranked.end(),
                [](const auto &A, const auto &B) {
                  if (A.first != B.first)
                    return A.first > B.first;
                  return A.second < B.second;
                });
      size_t NumHot = static_cast<size_t>(
          Hot * static_cast<double>(P.size()) + 0.5);
      std::vector<bool> IsHot(P.size(), false);
      for (size_t I = 0; I != NumHot && I != Ranked.size(); ++I)
        IsHot[Ranked[I].second] = true;
      Program HotProg("hot"), ColdProg("cold");
      for (size_t MI = 0; MI != P.size(); ++MI)
        (IsHot[MI] ? HotProg : ColdProg).addMethod(P[MI]);
      CompileReport HotReport =
          compileProgram(HotProg, M, Policy, OldFilter);
      CompileReport ColdReport =
          compileProgram(ColdProg, M, SchedulingPolicy::Never, nullptr);

      EXPECT_EQ(New.NumBlocks, HotReport.NumBlocks + ColdReport.NumBlocks);
      EXPECT_EQ(New.NumScheduled, HotReport.NumScheduled);
      EXPECT_EQ(New.SchedulingWork, HotReport.SchedulingWork);
      EXPECT_EQ(New.FilterWork, HotReport.FilterWork);
      // Exact double equality: the fold order/grouping must match, not
      // merely the value to within rounding.
      EXPECT_EQ(New.SimulatedTime,
                HotReport.SimulatedTime + ColdReport.SimulatedTime);
    }
  }
}

TEST(Ppc970, WiderAndDeeperThan7410) {
  MachineModel G4 = MachineModel::ppc7410();
  MachineModel G5 = MachineModel::ppc970();
  EXPECT_GT(G5.getMaxIssueNonBranch(), G4.getMaxIssueNonBranch());
  EXPECT_GT(G5.getNumUnits(), G4.getNumUnits());
  EXPECT_GT(G5.getLatency(Opcode::FAdd), G4.getLatency(Opcode::FAdd));
  EXPECT_GT(G5.getLatency(Opcode::LoadFloat),
            G4.getLatency(Opcode::LoadFloat));
  EXPECT_EQ(G5.unitsFor(FuClass::Float).size(), 2u);
  EXPECT_EQ(G5.unitsFor(FuClass::LoadStore).size(), 2u);
}

TEST(Ppc970, SchedulingStillLegalAndUseful) {
  MachineModel G5 = MachineModel::ppc970();
  ListScheduler S(G5);
  BlockSimulator Sim(G5);
  BasicBlock BB = makeIlpFloatBlock();
  ScheduleResult SR = S.schedule(BB);
  EXPECT_LE(Sim.simulate(BB, SR.Order), Sim.simulate(BB));
}
