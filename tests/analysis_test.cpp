//===- tests/analysis_test.cpp - analysis/RuleAnalysis unit tests -----------===//
//
// The static analyzer's contracts: dead-rule/shadowed-rule/redundant-
// condition detection in the interval domain, default-class reachability
// on the corner grid, threshold hygiene, normalization (including the
// predict()-equivalence proof), and the corner-grid equivalence checker
// validated against brute-force sampling on randomized rule sets.
//
//===----------------------------------------------------------------------===//

#include "analysis/RuleAnalysis.h"

#include "harness/Experiments.h"
#include "ml/Serialization.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

using namespace schedfilter;

namespace {

constexpr double NaN = std::numeric_limits<double>::quiet_NaN();
constexpr double Inf = std::numeric_limits<double>::infinity();

Rule makeRule(Label Conclusion, std::vector<Condition> Conds) {
  Rule R;
  R.Conclusion = Conclusion;
  R.Conditions = std::move(Conds);
  return R;
}

size_t countKind(const RuleAnalysis &A, LintKind K) {
  size_t N = 0;
  for (const LintFinding &F : A.Findings)
    N += F.Kind == K;
  return N;
}

const LintFinding *findKind(const RuleAnalysis &A, LintKind K) {
  for (const LintFinding &F : A.Findings)
    if (F.Kind == K)
      return &F;
  return nullptr;
}

/// A random rule set over a coarse threshold lattice, so contradictions,
/// duplicates and containments actually occur.
RuleSet randomRuleSet(Rng &R) {
  RuleSet RS(R.chance(0.5) ? Label::NS : Label::LS);
  size_t NumRules = 1 + R.below(5);
  for (size_t I = 0; I != NumRules; ++I) {
    Rule Rule_;
    Rule_.Conclusion = R.chance(0.5) ? Label::LS : Label::NS;
    size_t NumConds = R.below(4); // 0 = match-all rule
    for (size_t C = 0; C != NumConds; ++C) {
      unsigned F = R.below(3); // few features -> frequent interactions
      double T = F == FeatBBLen ? static_cast<double>(R.range(0, 4))
                                : 0.25 * static_cast<double>(R.range(0, 4));
      Rule_.Conditions.push_back({F, R.chance(0.5), T});
    }
    RS.addRule(std::move(Rule_));
  }
  return RS;
}

FeatureVector randomPoint(Rng &R) {
  FeatureVector X{};
  for (unsigned F = 0; F != NumFeatures; ++F) {
    // Mix lattice values (where behavior changes) with off-lattice ones.
    double Lattice = F == FeatBBLen ? static_cast<double>(R.range(0, 4))
                                    : 0.25 * static_cast<double>(R.range(0, 4));
    X[F] = R.chance(0.5) ? Lattice : R.uniform(-1.0, 5.0);
  }
  return X;
}

} // namespace

// --- Feasibility -----------------------------------------------------------

TEST(Analysis, DeadRuleContradictoryBounds) {
  RuleSet RS(Label::NS);
  RS.addRule(makeRule(Label::LS, {{FeatBBLen, true, 3.0},     // bbLen <= 3
                                  {FeatBBLen, false, 7.0}})); // bbLen >= 7
  RuleAnalysis A = analyzeRuleSet(RS);
  const LintFinding *F = findKind(A, LintKind::DeadRule);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Severity, LintSeverity::Error);
  EXPECT_EQ(F->RuleIndex, 0u);
  ASSERT_EQ(A.RemoveRule.size(), 1u);
  EXPECT_TRUE(A.RemoveRule[0]);
  EXPECT_TRUE(A.hasErrors());

  RuleSet N = normalizeRuleSet(RS, A);
  EXPECT_EQ(N.size(), 0u);
  EquivalenceCheck Eq = checkPredictEquivalence(RS, N);
  EXPECT_TRUE(Eq.Equivalent);
  EXPECT_TRUE(Eq.Exhaustive);
}

TEST(Analysis, TouchingBoundsAreFeasible) {
  // bbLen <= 7 and bbLen >= 7 matches exactly bbLen == 7: not dead.
  RuleSet RS(Label::NS);
  RS.addRule(makeRule(Label::LS, {{FeatBBLen, true, 7.0},
                                  {FeatBBLen, false, 7.0}}));
  RuleAnalysis A = analyzeRuleSet(RS);
  EXPECT_EQ(countKind(A, LintKind::DeadRule), 0u);
  EXPECT_FALSE(A.RemoveRule[0]);
}

TEST(Analysis, NaNThresholdIsDeadAndNonFinite) {
  RuleSet RS(Label::NS);
  RS.addRule(makeRule(Label::LS, {{FeatLoad, false, NaN}}));
  RuleAnalysis A = analyzeRuleSet(RS);
  EXPECT_EQ(countKind(A, LintKind::NonFiniteThreshold), 1u);
  EXPECT_EQ(countKind(A, LintKind::DeadRule), 1u);
  EXPECT_TRUE(A.RemoveRule[0]);

  RuleSet N = normalizeRuleSet(RS, A);
  EXPECT_EQ(N.size(), 0u);
  EXPECT_TRUE(checkPredictEquivalence(RS, N).Equivalent);
}

TEST(Analysis, InfiniteThresholdErrorButAlive) {
  // 'loads >= inf' matches only the (unreachable-in-practice) input +inf;
  // it is an error finding but not provably dead over all doubles, so the
  // removal plan must leave it alone.
  RuleSet RS(Label::NS);
  RS.addRule(makeRule(Label::LS, {{FeatLoad, false, Inf}}));
  RuleAnalysis A = analyzeRuleSet(RS);
  EXPECT_EQ(countKind(A, LintKind::NonFiniteThreshold), 1u);
  EXPECT_EQ(countKind(A, LintKind::DeadRule), 0u);
  EXPECT_FALSE(A.RemoveRule[0]);
  EXPECT_TRUE(A.hasErrors());
}

// --- Within-rule redundancy ------------------------------------------------

TEST(Analysis, RedundantConditionSubsumedByTighter) {
  RuleSet RS(Label::NS);
  RS.addRule(makeRule(Label::LS, {{FeatBBLen, false, 5.0},   // looser >=
                                  {FeatBBLen, false, 7.0},   // tighter >=
                                  {FeatLoad, true, 0.8},     // looser <=
                                  {FeatLoad, true, 0.3}}));  // tighter <=
  RuleAnalysis A = analyzeRuleSet(RS);
  EXPECT_EQ(countKind(A, LintKind::RedundantCondition), 2u);
  ASSERT_EQ(A.RemoveCondition[0].size(), 4u);
  EXPECT_TRUE(A.RemoveCondition[0][0]);  // bbLen >= 5 subsumed by >= 7
  EXPECT_FALSE(A.RemoveCondition[0][1]);
  EXPECT_TRUE(A.RemoveCondition[0][2]);  // loads <= 0.8 subsumed by <= 0.3
  EXPECT_FALSE(A.RemoveCondition[0][3]);
  EXPECT_FALSE(A.hasErrors()); // redundancy is a warning

  RuleSet N = normalizeRuleSet(RS, A);
  ASSERT_EQ(N.size(), 1u);
  EXPECT_EQ(N.rules()[0].Conditions.size(), 2u);
  EquivalenceCheck Eq = checkPredictEquivalence(RS, N);
  EXPECT_TRUE(Eq.Equivalent);
  EXPECT_TRUE(Eq.Exhaustive);
}

TEST(Analysis, DuplicateConditionKeepsFirst) {
  RuleSet RS(Label::NS);
  RS.addRule(makeRule(Label::LS, {{FeatStore, true, 0.5},
                                  {FeatStore, true, 0.5}}));
  RuleAnalysis A = analyzeRuleSet(RS);
  EXPECT_EQ(countKind(A, LintKind::RedundantCondition), 1u);
  EXPECT_FALSE(A.RemoveCondition[0][0]);
  EXPECT_TRUE(A.RemoveCondition[0][1]);
}

TEST(Analysis, OppositeDirectionsAreNotRedundant) {
  RuleSet RS(Label::NS);
  RS.addRule(makeRule(Label::LS, {{FeatBBLen, false, 5.0},   // >= 5
                                  {FeatBBLen, true, 9.0}})); // <= 9
  RuleAnalysis A = analyzeRuleSet(RS);
  EXPECT_EQ(countKind(A, LintKind::RedundantCondition), 0u);
}

// --- Cross-rule shadowing --------------------------------------------------

TEST(Analysis, ShadowedRuleSameConclusionIsWarning) {
  RuleSet RS(Label::NS);
  RS.addRule(makeRule(Label::LS, {{FeatBBLen, false, 5.0}}));
  RS.addRule(makeRule(Label::LS, {{FeatBBLen, false, 8.0},
                                  {FeatLoad, true, 0.4}}));
  RuleAnalysis A = analyzeRuleSet(RS);
  const LintFinding *F = findKind(A, LintKind::ShadowedRule);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Severity, LintSeverity::Warning);
  EXPECT_EQ(F->RuleIndex, 1u);
  EXPECT_EQ(F->OtherRule, 0u);
  EXPECT_TRUE(A.RemoveRule[1]);
  EXPECT_FALSE(A.hasErrors());

  RuleSet N = normalizeRuleSet(RS, A);
  EXPECT_EQ(N.size(), 1u);
  EXPECT_TRUE(checkPredictEquivalence(RS, N).Equivalent);
}

TEST(Analysis, ShadowedRuleOppositeConclusionIsError) {
  RuleSet RS(Label::NS);
  RS.addRule(makeRule(Label::LS, {{FeatBBLen, false, 5.0}}));
  RS.addRule(makeRule(Label::NS, {{FeatBBLen, false, 8.0}}));
  RuleAnalysis A = analyzeRuleSet(RS);
  const LintFinding *F = findKind(A, LintKind::ShadowedRule);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Severity, LintSeverity::Error);
  EXPECT_TRUE(A.hasErrors());
  // Removal is still predict()-equivalent: the shadowed rule never fired.
  EXPECT_TRUE(
      checkPredictEquivalence(RS, normalizeRuleSet(RS, A)).Equivalent);
}

TEST(Analysis, OverlapWithoutContainmentIsNotShadowing) {
  RuleSet RS(Label::NS);
  RS.addRule(makeRule(Label::LS, {{FeatBBLen, false, 5.0}}));
  RS.addRule(makeRule(Label::NS, {{FeatLoad, false, 0.5}})); // overlaps only
  RuleAnalysis A = analyzeRuleSet(RS);
  EXPECT_EQ(countKind(A, LintKind::ShadowedRule), 0u);
}

TEST(Analysis, MatchAllRuleShadowsEverythingAfterIt) {
  RuleSet RS(Label::NS);
  RS.addRule(makeRule(Label::LS, {{FeatBBLen, false, 5.0}}));
  RS.addRule(makeRule(Label::LS, {})); // true: matches every block
  RS.addRule(makeRule(Label::NS, {{FeatBBLen, true, 2.0}}));
  RuleAnalysis A = analyzeRuleSet(RS);
  EXPECT_EQ(countKind(A, LintKind::ShadowedRule), 1u);
  EXPECT_TRUE(A.RemoveRule[2]);
  EXPECT_FALSE(A.RemoveRule[1]);
  // ... and makes the default class unreachable.
  EXPECT_EQ(countKind(A, LintKind::UnreachableDefault), 1u);
}

// --- Default-class reachability --------------------------------------------

TEST(Analysis, DefaultReachableThroughGap) {
  RuleSet RS(Label::NS);
  RS.addRule(makeRule(Label::LS, {{FeatBBLen, true, 10.0}}));
  RS.addRule(makeRule(Label::LS, {{FeatBBLen, false, 11.0}}));
  // Blocks with bbLen strictly between 10 and 11 fall through.
  RuleAnalysis A = analyzeRuleSet(RS);
  EXPECT_EQ(countKind(A, LintKind::UnreachableDefault), 0u);
}

TEST(Analysis, UnreachableDefaultAcrossTwoRules) {
  // x <= 10 and x >= 10 jointly cover every real input even though
  // neither rule alone does -- only the corner grid sees this.
  RuleSet RS(Label::NS);
  RS.addRule(makeRule(Label::LS, {{FeatBBLen, true, 10.0}}));
  RS.addRule(makeRule(Label::LS, {{FeatBBLen, false, 10.0}}));
  RuleAnalysis A = analyzeRuleSet(RS);
  const LintFinding *F = findKind(A, LintKind::UnreachableDefault);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Severity, LintSeverity::Warning);
  EXPECT_EQ(F->RuleIndex, LintFinding::npos);
}

TEST(Analysis, HugeGridLeavesDefaultUndecided) {
  // Thresholds on many features blow the corner grid past the cap; the
  // analyzer must say so (a note) rather than guess.
  RuleSet RS(Label::NS);
  Rng R(7);
  for (int I = 0; I != 4; ++I) {
    Rule Rule_;
    Rule_.Conclusion = Label::LS;
    for (unsigned F = 0; F != NumFeatures; ++F)
      Rule_.Conditions.push_back(
          {F, I % 2 == 0, 0.1 * static_cast<double>(I + 1)});
    RS.addRule(std::move(Rule_));
  }
  RuleAnalysis A = analyzeRuleSet(RS, nullptr, /*MaxGridPoints=*/1000);
  const LintFinding *F = findKind(A, LintKind::UnreachableDefault);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Severity, LintSeverity::Note);
}

// --- Threshold hygiene -----------------------------------------------------

TEST(Analysis, NegativeThresholdWarnings) {
  RuleSet RS(Label::NS);
  RS.addRule(makeRule(Label::LS, {{FeatCall, true, -0.2}}));  // never matches
  RS.addRule(makeRule(Label::LS, {{FeatCall, false, -0.2}})); // vacuous
  RuleAnalysis A = analyzeRuleSet(RS);
  EXPECT_EQ(countKind(A, LintKind::DomainMismatch), 2u);
  for (const LintFinding &F : A.Findings)
    if (F.Kind == LintKind::DomainMismatch) {
      EXPECT_EQ(F.Severity, LintSeverity::Warning);
    }
  // Domain hygiene is advisory: removal would change full-domain
  // behavior, so the plan must not touch these rules.
  EXPECT_FALSE(A.RemoveRule[0]);
  EXPECT_FALSE(A.RemoveRule[1]);
}

TEST(Analysis, FractionAboveOneWarns) {
  RuleSet RS(Label::NS);
  RS.addRule(makeRule(Label::LS, {{FeatLoad, false, 1.5}})); // never matches
  RS.addRule(makeRule(Label::LS, {{FeatLoad, true, 1.5}}));  // vacuous
  RS.addRule(makeRule(Label::LS, {{FeatBBLen, false, 40.0}})); // fine: a count
  RuleAnalysis A = analyzeRuleSet(RS);
  EXPECT_EQ(countKind(A, LintKind::DomainMismatch), 2u);
}

TEST(Analysis, ObservedRangeNotes) {
  Dataset D("obs");
  for (int I = 1; I <= 10; ++I) {
    FeatureVector X{};
    X[FeatBBLen] = I;
    X[FeatLoad] = 0.1 * I;
    D.add({X, Label::NS});
  }
  RuleSet RS(Label::NS);
  RS.addRule(makeRule(Label::LS, {{FeatBBLen, false, 25.0},  // outside [1,10]
                                  {FeatLoad, true, 0.5}}));  // inside [0.1,1]
  RuleAnalysis With = analyzeRuleSet(RS, &D);
  EXPECT_EQ(countKind(With, LintKind::OutOfObservedRange), 1u);
  const LintFinding *F = findKind(With, LintKind::OutOfObservedRange);
  EXPECT_EQ(F->Severity, LintSeverity::Note);
  EXPECT_EQ(F->CondIndex, 0u);
  // Without a dataset the check is silent.
  RuleAnalysis Without = analyzeRuleSet(RS);
  EXPECT_EQ(countKind(Without, LintKind::OutOfObservedRange), 0u);
}

// --- Normalization ---------------------------------------------------------

TEST(Analysis, NormalizationPreservesCoverageAndOrder) {
  RuleSet RS(Label::LS);
  Rule Dead = makeRule(Label::NS, {{FeatBBLen, true, 1.0},
                                   {FeatBBLen, false, 9.0}});
  Rule Keep1 = makeRule(Label::NS, {{FeatBBLen, true, 4.0}});
  Keep1.NumCorrect = 21;
  Keep1.NumIncorrect = 2;
  Rule Keep2 = makeRule(Label::NS, {{FeatLoad, false, 0.7}});
  Keep2.NumCorrect = 9;
  RS.addRule(Dead);
  RS.addRule(Keep1);
  RS.addRule(Keep2);
  RuleAnalysis A = analyzeRuleSet(RS);
  RuleSet N = normalizeRuleSet(RS, A);
  ASSERT_EQ(N.size(), 2u);
  EXPECT_EQ(N.getDefaultClass(), Label::LS);
  EXPECT_EQ(N.rules()[0].NumCorrect, 21u);
  EXPECT_EQ(N.rules()[0].NumIncorrect, 2u);
  EXPECT_EQ(N.rules()[1].NumCorrect, 9u);
}

TEST(Analysis, NormalizationIsIdempotent) {
  Rng Seed(0xA11CE);
  for (int Trial = 0; Trial != 200; ++Trial) {
    Rng R = Seed.fork(Trial);
    RuleSet RS = randomRuleSet(R);
    RuleAnalysis A = analyzeRuleSet(RS);
    RuleSet N = normalizeRuleSet(RS, A);
    RuleAnalysis A2 = analyzeRuleSet(N);
    EXPECT_EQ(A2.removedRules(), 0u) << "trial " << Trial;
    EXPECT_EQ(A2.removedConditions(), 0u) << "trial " << Trial;
  }
}

// --- Corner-grid equivalence checker ---------------------------------------

TEST(Analysis, NormalizedSetsEquivalentOnRandomizedRuleSets) {
  // The heart of the --fix guarantee: for randomized rule sets (dense in
  // dead rules, duplicates and containments by construction), the
  // normalized set must agree with the original on the exhaustive corner
  // grid AND under independent brute-force sampling.
  Rng Seed(0xBEEF);
  size_t Normalized = 0;
  for (int Trial = 0; Trial != 300; ++Trial) {
    Rng R = Seed.fork(Trial);
    RuleSet RS = randomRuleSet(R);
    RuleAnalysis A = analyzeRuleSet(RS);
    RuleSet N = normalizeRuleSet(RS, A);
    Normalized += A.removedRules() + A.removedConditions() != 0;

    EquivalenceCheck Eq = checkPredictEquivalence(RS, N);
    ASSERT_TRUE(Eq.Exhaustive) << "trial " << Trial;
    ASSERT_TRUE(Eq.Equivalent)
        << "trial " << Trial << ": corner grid disagreed after "
        << Eq.PointsChecked << " points";

    for (int P = 0; P != 200; ++P) {
      FeatureVector X = randomPoint(R);
      ASSERT_EQ(RS.predict(X), N.predict(X)) << "trial " << Trial;
    }
  }
  // The lattice construction must actually exercise normalization.
  EXPECT_GT(Normalized, 50u);
}

TEST(Analysis, CheckerAgreesWithBruteForceOnIndependentPairs) {
  // Validate the checker itself: for *independent* random pairs, its
  // verdict must match reality -- a "not equivalent" must come with a
  // genuine counterexample, and an "equivalent" must survive brute force.
  Rng Seed(0xD15C);
  size_t Inequivalent = 0;
  for (int Trial = 0; Trial != 200; ++Trial) {
    Rng R = Seed.fork(Trial);
    RuleSet A = randomRuleSet(R);
    RuleSet B = randomRuleSet(R);
    EquivalenceCheck Eq = checkPredictEquivalence(A, B);
    ASSERT_TRUE(Eq.Exhaustive);
    if (!Eq.Equivalent) {
      ++Inequivalent;
      EXPECT_NE(A.predict(Eq.Counterexample), B.predict(Eq.Counterexample))
          << "trial " << Trial << ": counterexample does not disagree";
    } else {
      for (int P = 0; P != 500; ++P) {
        FeatureVector X = randomPoint(R);
        ASSERT_EQ(A.predict(X), B.predict(X))
            << "trial " << Trial << ": brute force refutes 'equivalent'";
      }
    }
  }
  // Independent pairs should usually differ somewhere.
  EXPECT_GT(Inequivalent, 100u);
}

TEST(Analysis, EquivalenceCatchesNaNOnlyDifference) {
  // Two sets that agree on every real input but differ on a NaN feature
  // vector: rule 'true' matches NaN inputs, the two-rule cover does not.
  // The grid's NaN coordinates must find the difference.
  RuleSet A(Label::NS);
  A.addRule(makeRule(Label::LS, {}));
  RuleSet B(Label::NS);
  B.addRule(makeRule(Label::LS, {{FeatBBLen, true, 10.0}}));
  B.addRule(makeRule(Label::LS, {{FeatBBLen, false, 10.0}}));
  EquivalenceCheck Eq = checkPredictEquivalence(A, B);
  ASSERT_TRUE(Eq.Exhaustive);
  EXPECT_FALSE(Eq.Equivalent);
  EXPECT_TRUE(std::isnan(Eq.Counterexample[FeatBBLen]));
}

TEST(Analysis, SampledFallbackOnHugeGrids) {
  // Dense thresholds on all 13 features: the grid is astronomically
  // large, so the checker must fall back to sampling and say so.
  RuleSet A(Label::NS);
  Rng R(3);
  for (int I = 0; I != 6; ++I) {
    Rule Rule_;
    Rule_.Conclusion = I % 2 ? Label::LS : Label::NS;
    for (unsigned F = 0; F != NumFeatures; ++F)
      Rule_.Conditions.push_back({F, R.chance(0.5), R.uniform()});
    A.addRule(std::move(Rule_));
  }
  EquivalenceCheck Eq = checkPredictEquivalence(A, A, /*MaxPoints=*/5000);
  EXPECT_FALSE(Eq.Exhaustive);
  EXPECT_TRUE(Eq.Equivalent);
  EXPECT_EQ(Eq.PointsChecked, 5000u);
}

// --- Diagnostics rendering -------------------------------------------------

TEST(Analysis, PrintFindingsUsesFileLineDiscipline) {
  std::stringstream File("schedfilter-rules v1\n"
                         "default NS\n"
                         "# comment\n"
                         "rule LS :- bbLen >= 7, bbLen <= 3\n");
  ParseResult<RuleSetFile> Parsed = readRuleSetFile(File);
  ASSERT_TRUE(Parsed.has_value()) << Parsed.error().str();
  ASSERT_EQ(Parsed->RuleLines.size(), 1u);
  EXPECT_EQ(Parsed->RuleLines[0], 4u);

  RuleAnalysis A = analyzeRuleSet(Parsed->Rules);
  std::stringstream Out;
  size_t N = printFindings(A, Out, "rules.txt", &Parsed->RuleLines);
  EXPECT_EQ(N, A.Findings.size());
  EXPECT_NE(Out.str().find("rules.txt:4: error: rule #1 is dead"),
            std::string::npos)
      << Out.str();
}

// --- Golden pin ------------------------------------------------------------

TEST(Golden, TrainedFilterLintStableAtZero) {
  // The paper-setting filter (SPECjvm98, t = 0, jack held out -- the
  // Figure 4 artifact): the trainer must induce no dead or shadowed
  // rules and no error-severity findings, and normalization (which may
  // only strip redundant conditions) must be proven predict()-equivalent
  // on the exhaustive corner grid.
  MachineModel Model = MachineModel::ppc7410();
  std::vector<BenchmarkRun> Suite =
      generateSuiteData(specjvm98Suite(), Model);
  std::vector<Dataset> Labeled = labelSuite(Suite, 0.0);
  Dataset Train("minus-jack");
  for (size_t I = 0; I + 1 < Labeled.size(); ++I)
    Train.append(Labeled[I]);
  RuleSet Filter = ripperLearner()(Train);

  RuleAnalysis A = analyzeRuleSet(Filter, &Train);
  EXPECT_EQ(A.numFindings(LintSeverity::Error), 0u);
  EXPECT_EQ(countKind(A, LintKind::DeadRule), 0u);
  EXPECT_EQ(countKind(A, LintKind::ShadowedRule), 0u);
  EXPECT_EQ(A.removedRules(), 0u);

  // The trained filter spreads ~25 thresholds over most of the 13
  // features, so the corner grid is astronomically large (observed
  // ~1.9e9 points); the checker samples it deterministically.  Either
  // way, the verdict must be "equivalent".
  RuleSet N = normalizeRuleSet(Filter, A);
  EquivalenceCheck Eq = checkPredictEquivalence(Filter, N);
  EXPECT_TRUE(Eq.Equivalent)
      << (Eq.Exhaustive ? "exhaustive" : "sampled") << " check over "
      << Eq.PointsChecked << " of " << Eq.GridSize << " points disagreed";
  EXPECT_GT(Eq.PointsChecked, 0u);

  // Normalization-stable: a second analysis finds nothing left to do.
  RuleAnalysis A2 = analyzeRuleSet(N);
  EXPECT_EQ(A2.removedRules(), 0u);
  EXPECT_EQ(A2.removedConditions(), 0u);

  // And per-benchmark self-trained filters are clean too.
  for (const Dataset &D : Labeled) {
    RuleSet Own = ripperLearner()(D);
    RuleAnalysis OwnA = analyzeRuleSet(Own, &D);
    EXPECT_EQ(OwnA.numFindings(LintSeverity::Error), 0u) << D.getName();
    EXPECT_EQ(OwnA.removedRules(), 0u) << D.getName();
    EquivalenceCheck OwnEq =
        checkPredictEquivalence(Own, normalizeRuleSet(Own, OwnA));
    EXPECT_TRUE(OwnEq.Equivalent) << D.getName();
  }
}
