//===- tests/schedcontext_test.cpp - context-reuse equivalence --------------===//
//
// The SchedContext contract: the allocation-free context-reuse entry
// points of DependenceGraph, ListScheduler, BlockSimulator and the
// compile Pipeline produce bit-for-bit the results of their one-shot
// counterparts -- including when one context is reused across many blocks
// of different shapes, sizes and register populations (stale scratch from
// a previous block must never leak into the next).
//
//===----------------------------------------------------------------------===//

#include "filter/Pipeline.h"
#include "sched/SchedContext.h"
#include "workloads/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace schedfilter;

namespace {

/// A diverse block population: several sizes from two different benchmark
/// profiles (integer-heavy and FP-heavy), exercising loads/stores, PEIs,
/// calls and long-latency ops.
std::vector<BasicBlock> testBlocks() {
  std::vector<BasicBlock> Blocks;
  for (const char *Name : {"compress", "mpegaudio", "linpack"}) {
    const BenchmarkSpec *Spec = findBenchmarkSpec(Name);
    Rng R(0x5EED ^ Blocks.size());
    for (int Statements = 0; Statements <= 8; ++Statements)
      Blocks.push_back(ProgramGenerator(*Spec).generateBlock(
          R, Statements, /*EndWithTerminator=*/true));
  }
  return Blocks;
}

} // namespace

TEST(SchedContext, DagBuildMatchesOneShot) {
  MachineModel Model = MachineModel::ppc7410();
  SchedContext Ctx;
  for (const BasicBlock &BB : testBlocks()) {
    DependenceGraph OneShot(BB, Model);
    DependenceGraph &Reused = Ctx.dag();
    Reused.build(BB, Model, Ctx.dagScratch());

    ASSERT_EQ(Reused.numNodes(), OneShot.numNodes());
    EXPECT_EQ(Reused.numEdges(), OneShot.numEdges());
    EXPECT_EQ(Reused.workUnits(), OneShot.workUnits());
    EXPECT_EQ(Reused.inDegrees(), OneShot.inDegrees());
    for (int I = 0; I != static_cast<int>(OneShot.numNodes()); ++I) {
      EXPECT_EQ(Reused.criticalPath(I), OneShot.criticalPath(I));
      const std::vector<DepEdge> &A = Reused.succs(I);
      const std::vector<DepEdge> &B = OneShot.succs(I);
      ASSERT_EQ(A.size(), B.size());
      for (size_t E = 0; E != A.size(); ++E) {
        EXPECT_EQ(A[E].To, B[E].To);
        EXPECT_EQ(A[E].Latency, B[E].Latency);
        EXPECT_EQ(A[E].Kind, B[E].Kind);
      }
    }
  }
}

TEST(SchedContext, SuperblockDagBuildMatchesOneShot) {
  MachineModel Model = MachineModel::ppc7410();
  // Stitch two blocks together so there is an interior terminator.
  std::vector<BasicBlock> Blocks = testBlocks();
  SchedContext Ctx;
  for (size_t I = 0; I + 1 < Blocks.size(); I += 2) {
    BasicBlock Merged("sb", 1);
    for (const Instruction &Inst : Blocks[I])
      Merged.append(Inst);
    for (const Instruction &Inst : Blocks[I + 1])
      Merged.append(Inst);
    DependenceGraph OneShot(Merged, Model, /*SuperblockMode=*/true);
    Ctx.dag().build(Merged, Model, Ctx.dagScratch(), /*SuperblockMode=*/true);
    EXPECT_EQ(Ctx.dag().numEdges(), OneShot.numEdges());
    EXPECT_EQ(Ctx.dag().workUnits(), OneShot.workUnits());
    EXPECT_EQ(Ctx.dag().inDegrees(), OneShot.inDegrees());
  }
}

TEST(SchedContext, ScheduleMatchesOneShot) {
  MachineModel Model = MachineModel::ppc7410();
  for (SchedPriority P : {SchedPriority::CriticalPath, SchedPriority::Fanout}) {
    ListScheduler Scheduler(Model, P);
    SchedContext Ctx;
    std::vector<int> Order;
    for (const BasicBlock &BB : testBlocks()) {
      ScheduleResult OneShot = Scheduler.schedule(BB);
      uint64_t Work = Scheduler.schedule(BB, Ctx, Order);
      EXPECT_EQ(Order, OneShot.Order);
      EXPECT_EQ(Work, OneShot.WorkUnits);
    }
  }
}

TEST(SchedContext, SimulateMatchesOneShot) {
  MachineModel Model = MachineModel::ppc7410();
  ListScheduler Scheduler(Model);
  BlockSimulator Sim(Model);
  SchedContext Ctx;
  std::vector<int> Order;
  for (const BasicBlock &BB : testBlocks()) {
    EXPECT_EQ(Sim.simulate(BB, Ctx), Sim.simulate(BB));
    Scheduler.schedule(BB, Ctx, Order);
    EXPECT_EQ(Sim.simulate(BB, Order, Ctx), Sim.simulate(BB, Order));
  }
}

TEST(SchedContext, TraceMatchesOneShot) {
  MachineModel Model = MachineModel::ppc7410();
  ListScheduler Scheduler(Model);
  BlockSimulator Sim(Model);
  SchedContext Ctx;
  std::vector<int> Order;
  for (const BasicBlock &BB : testBlocks()) {
    Scheduler.schedule(BB, Ctx, Order);
    SimTrace OneShot = Sim.simulateWithTrace(BB, Order);
    const SimTrace &Reused = Sim.simulateWithTrace(BB, Order, Ctx);
    EXPECT_EQ(Reused.TotalCycles, OneShot.TotalCycles);
    ASSERT_EQ(Reused.Events.size(), OneShot.Events.size());
    for (size_t E = 0; E != OneShot.Events.size(); ++E) {
      EXPECT_EQ(Reused.Events[E].OriginalIndex, OneShot.Events[E].OriginalIndex);
      EXPECT_EQ(Reused.Events[E].IssueCycle, OneShot.Events[E].IssueCycle);
      EXPECT_EQ(Reused.Events[E].CompleteCycle, OneShot.Events[E].CompleteCycle);
      EXPECT_EQ(Reused.Events[E].Unit, OneShot.Events[E].Unit);
    }
  }
}

TEST(SchedContext, ContextSurvivesModelSwitch) {
  // A context is model-agnostic: reusing one across machine models must
  // not leak per-model scoreboard state.
  SchedContext Ctx;
  std::vector<int> Order;
  for (const MachineModel &Model :
       {MachineModel::ppc7410(), MachineModel::ppc970(),
        MachineModel::simpleScalar()}) {
    ListScheduler Scheduler(Model);
    BlockSimulator Sim(Model);
    for (const BasicBlock &BB : testBlocks()) {
      ScheduleResult OneShot = Scheduler.schedule(BB);
      uint64_t Work = Scheduler.schedule(BB, Ctx, Order);
      EXPECT_EQ(Order, OneShot.Order);
      EXPECT_EQ(Work, OneShot.WorkUnits);
      EXPECT_EQ(Sim.simulate(BB, Order, Ctx), Sim.simulate(BB, OneShot.Order));
    }
  }
}

TEST(SchedContext, CompileProgramMatchesOneShot) {
  MachineModel Model = MachineModel::ppc7410();
  const BenchmarkSpec *Spec = findBenchmarkSpec("db");
  ASSERT_NE(Spec, nullptr);
  BenchmarkSpec Small = *Spec;
  Small.NumMethods = 10;
  Program P = ProgramGenerator(Small).generate();

  SchedContext Ctx;
  for (SchedulingPolicy Policy :
       {SchedulingPolicy::Never, SchedulingPolicy::Always}) {
    CompileReport OneShot = compileProgram(P, Model, Policy);
    CompileReport Reused = compileProgram(P, Model, Policy, nullptr, Ctx);
    EXPECT_EQ(Reused.NumBlocks, OneShot.NumBlocks);
    EXPECT_EQ(Reused.NumScheduled, OneShot.NumScheduled);
    EXPECT_EQ(Reused.SchedulingWork, OneShot.SchedulingWork);
    EXPECT_DOUBLE_EQ(Reused.SimulatedTime, OneShot.SimulatedTime);
  }
}
