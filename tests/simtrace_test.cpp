//===- tests/simtrace_test.cpp - SimTrace and scheduler-priority tests --------===//

#include "sim/BlockSimulator.h"

#include "TestHelpers.h"
#include "sched/ListScheduler.h"
#include "sched/ScheduleVerifier.h"
#include "workloads/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace schedfilter;
using namespace schedfilter::test;

TEST(SimTrace, TotalMatchesScalarSimulate) {
  MachineModel M = MachineModel::ppc7410();
  BlockSimulator Sim(M);
  const BenchmarkSpec *Spec = findBenchmarkSpec("bh");
  Rng R(61);
  for (int Trial = 0; Trial != 20; ++Trial) {
    BasicBlock BB = ProgramGenerator(*Spec).generateBlock(
        R, R.range(0, 6), /*EndWithTerminator=*/true);
    std::vector<int> Id(BB.size());
    for (size_t I = 0; I != BB.size(); ++I)
      Id[I] = static_cast<int>(I);
    SimTrace T = Sim.simulateWithTrace(BB, Id);
    EXPECT_EQ(T.TotalCycles, Sim.simulate(BB));
    EXPECT_EQ(T.Events.size(), BB.size());
  }
}

TEST(SimTrace, EventsWellFormed) {
  MachineModel M = MachineModel::ppc7410();
  BlockSimulator Sim(M);
  BasicBlock BB = makeIlpFloatBlock();
  std::vector<int> Id = ListScheduler::identity(BB).Order;
  SimTrace T = Sim.simulateWithTrace(BB, Id);
  uint64_t PrevIssue = 0;
  for (const IssueEvent &E : T.Events) {
    // In-order issue: cycles never go backwards.
    EXPECT_GE(E.IssueCycle, PrevIssue);
    PrevIssue = E.IssueCycle;
    // Completion is issue + latency.
    unsigned Lat = M.getLatency(
        BB[static_cast<size_t>(E.OriginalIndex)].getOpcode());
    EXPECT_EQ(E.CompleteCycle, E.IssueCycle + Lat);
    // The executing unit accepts the instruction's class.
    EXPECT_TRUE(M.units()[E.Unit].accepts(
        BB[static_cast<size_t>(E.OriginalIndex)].getInfo().Unit));
    EXPECT_LE(E.CompleteCycle, T.TotalCycles);
  }
}

TEST(SimTrace, DataDependenceVisibleInTrace) {
  MachineModel M = MachineModel::ppc7410();
  BlockSimulator Sim(M);
  BasicBlock BB("dep");
  BB.append(Instruction(Opcode::LoadFloat, {100}, {0}));
  BB.append(Instruction(Opcode::FAdd, {101}, {100, 32}));
  SimTrace T = Sim.simulateWithTrace(BB, {0, 1});
  ASSERT_EQ(T.Events.size(), 2u);
  EXPECT_GE(T.Events[1].IssueCycle, T.Events[0].CompleteCycle);
}

TEST(SimTrace, ToStringRendersEveryInstruction) {
  MachineModel M = MachineModel::ppc7410();
  BlockSimulator Sim(M);
  BasicBlock BB = makeChainBlock();
  SimTrace T = Sim.simulateWithTrace(BB, ListScheduler::identity(BB).Order);
  std::string S = T.toString(BB, M);
  EXPECT_NE(S.find("lwz"), std::string::npos);
  EXPECT_NE(S.find("stw"), std::string::npos);
  EXPECT_NE(S.find("total: " + std::to_string(T.TotalCycles)),
            std::string::npos);
}

TEST(SchedPriority, FanoutSchedulesLegally) {
  MachineModel M = MachineModel::ppc7410();
  ListScheduler Fanout(M, SchedPriority::Fanout);
  const BenchmarkSpec *Spec = findBenchmarkSpec("scimark");
  Rng R(71);
  for (int Trial = 0; Trial != 30; ++Trial) {
    BasicBlock BB = ProgramGenerator(*Spec).generateBlock(
        R, R.range(0, 8), /*EndWithTerminator=*/true);
    ScheduleResult SR = Fanout.schedule(BB);
    ScheduleVerifyResult V = verifySchedule(BB, M, SR.Order);
    EXPECT_TRUE(V.Ok) << V.Message;
  }
}

TEST(SchedPriority, BothPrioritiesCompetent) {
  // Both schedulers should substantially improve the canonical ILP block
  // (they may differ in how much).
  MachineModel M = MachineModel::ppc7410();
  BlockSimulator Sim(M);
  BasicBlock BB = makeIlpFloatBlock();
  uint64_t Before = Sim.simulate(BB);
  for (SchedPriority P : {SchedPriority::CriticalPath, SchedPriority::Fanout}) {
    ListScheduler S(M, P);
    EXPECT_LT(Sim.simulate(BB, S.schedule(BB).Order), Before);
  }
}

TEST(SchedPriority, PrioritiesCanDisagree) {
  // On a population of blocks the two tie-breaks must produce different
  // orders at least sometimes (otherwise the "any competent scheduler"
  // ablation tests nothing).
  MachineModel M = MachineModel::ppc7410();
  ListScheduler Cp(M, SchedPriority::CriticalPath);
  ListScheduler Fo(M, SchedPriority::Fanout);
  const BenchmarkSpec *Spec = findBenchmarkSpec("linpack");
  Rng R(81);
  int Different = 0;
  for (int Trial = 0; Trial != 40; ++Trial) {
    BasicBlock BB = ProgramGenerator(*Spec).generateBlock(
        R, R.range(2, 8), /*EndWithTerminator=*/true);
    if (Cp.schedule(BB).Order != Fo.schedule(BB).Order)
      ++Different;
  }
  EXPECT_GT(Different, 0);
}
