//===- tests/depgraph_test.cpp - sched/DependenceGraph unit tests -----------===//

#include "sched/DependenceGraph.h"

#include "TestHelpers.h"
#include "workloads/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace schedfilter;
using namespace schedfilter::test;

namespace {

MachineModel model() { return MachineModel::ppc7410(); }

/// Finds the edge From->To, or nullptr.
const DepEdge *findEdge(const DependenceGraph &G, int From, int To) {
  for (const DepEdge &E : G.succs(From))
    if (E.To == To)
      return &E;
  return nullptr;
}

} // namespace

TEST(DependenceGraph, RawDependenceCarriesProducerLatency) {
  MachineModel M = model();
  BasicBlock BB("raw");
  BB.append(Instruction(Opcode::LoadInt, {100}, {0}));
  BB.append(Instruction(Opcode::Add, {101}, {100, 1}));
  DependenceGraph G(BB, M);
  const DepEdge *E = findEdge(G, 0, 1);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Kind, DepKind::Data);
  EXPECT_EQ(E->Latency, M.getLatency(Opcode::LoadInt));
}

TEST(DependenceGraph, AntiDependence) {
  BasicBlock BB("war");
  BB.append(Instruction(Opcode::Add, {100}, {1, 2}));  // reads r1
  BB.append(Instruction(Opcode::Add, {1}, {3, 4}));    // writes r1
  DependenceGraph G(BB, model());
  const DepEdge *E = findEdge(G, 0, 1);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Kind, DepKind::Anti);
  EXPECT_EQ(E->Latency, 0u);
}

TEST(DependenceGraph, OutputDependence) {
  BasicBlock BB("waw");
  BB.append(Instruction(Opcode::Add, {100}, {1, 2}));
  BB.append(Instruction(Opcode::Sub, {100}, {3, 4}));
  DependenceGraph G(BB, model());
  const DepEdge *E = findEdge(G, 0, 1);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Kind, DepKind::Output);
}

TEST(DependenceGraph, IndependentInstructionsHaveNoEdge) {
  BasicBlock BB("indep");
  BB.append(Instruction(Opcode::Add, {100}, {1, 2}));
  BB.append(Instruction(Opcode::Add, {101}, {3, 4}));
  DependenceGraph G(BB, model());
  EXPECT_FALSE(G.hasEdge(0, 1));
}

TEST(DependenceGraph, StoreThenLoadOrdered) {
  BasicBlock BB("st-ld");
  BB.append(Instruction(Opcode::StoreInt, {}, {1, 2}));
  BB.append(Instruction(Opcode::LoadInt, {100}, {3}));
  DependenceGraph G(BB, model());
  EXPECT_TRUE(G.hasEdge(0, 1));
}

TEST(DependenceGraph, LoadThenStoreOrdered) {
  BasicBlock BB("ld-st");
  BB.append(Instruction(Opcode::LoadInt, {100}, {3}));
  BB.append(Instruction(Opcode::StoreInt, {}, {1, 2}));
  DependenceGraph G(BB, model());
  EXPECT_TRUE(G.hasEdge(0, 1));
}

TEST(DependenceGraph, StoreStoreOrdered) {
  BasicBlock BB("st-st");
  BB.append(Instruction(Opcode::StoreInt, {}, {1, 2}));
  BB.append(Instruction(Opcode::StoreInt, {}, {3, 4}));
  DependenceGraph G(BB, model());
  EXPECT_TRUE(G.hasEdge(0, 1));
}

TEST(DependenceGraph, LoadsMayReorderFreely) {
  BasicBlock BB("ld-ld");
  BB.append(Instruction(Opcode::LoadInt, {100}, {1}));
  BB.append(Instruction(Opcode::LoadInt, {101}, {2}));
  DependenceGraph G(BB, model());
  EXPECT_FALSE(G.hasEdge(0, 1));
}

TEST(DependenceGraph, PeisStayOrdered) {
  BasicBlock BB("pei-pei");
  BB.append(Instruction(Opcode::NullCheck, {}, {1}));
  BB.append(Instruction(Opcode::BoundsCheck, {}, {2}));
  DependenceGraph G(BB, model());
  EXPECT_TRUE(G.hasEdge(0, 1));
}

TEST(DependenceGraph, PeiAndStoreMutuallyOrdered) {
  BasicBlock BB("pei-st");
  BB.append(Instruction(Opcode::NullCheck, {}, {1}));
  BB.append(Instruction(Opcode::StoreInt, {}, {2, 3}));
  BB.append(Instruction(Opcode::BoundsCheck, {}, {4}));
  DependenceGraph G(BB, model());
  EXPECT_TRUE(G.hasEdge(0, 1)); // PEI before store stays before
  EXPECT_TRUE(G.hasEdge(1, 2)); // store before PEI stays before
}

TEST(DependenceGraph, CallIsFullBarrier) {
  BasicBlock BB("call");
  BB.append(Instruction(Opcode::Add, {100}, {1, 2}));
  BB.append(Instruction(Opcode::Call, {101}, {3}));
  BB.append(Instruction(Opcode::Add, {102}, {4, 5}));
  DependenceGraph G(BB, model());
  EXPECT_TRUE(G.hasEdge(0, 1)); // nothing moves below the call...
  EXPECT_TRUE(G.hasEdge(1, 2)); // ...or above it
}

TEST(DependenceGraph, YieldPointIsFullBarrier) {
  BasicBlock BB("yield");
  BB.append(Instruction(Opcode::Add, {100}, {1, 2}));
  BB.append(Instruction(Opcode::YieldPoint, {}, {}));
  BB.append(Instruction(Opcode::Add, {101}, {3, 4}));
  DependenceGraph G(BB, model());
  EXPECT_TRUE(G.hasEdge(0, 1));
  EXPECT_TRUE(G.hasEdge(1, 2));
}

TEST(DependenceGraph, EverythingBeforeTerminator) {
  BasicBlock BB("term");
  BB.append(Instruction(Opcode::Add, {100}, {1, 2}));
  BB.append(Instruction(Opcode::Add, {101}, {3, 4}));
  BB.append(Instruction(Opcode::Br, {}, {}));
  DependenceGraph G(BB, model());
  EXPECT_TRUE(G.hasEdge(0, 2));
  EXPECT_TRUE(G.hasEdge(1, 2));
}

TEST(DependenceGraph, EdgesDeduplicatedKeepingStrongest) {
  MachineModel M = model();
  BasicBlock BB("dup");
  // r100 feeds both operands: a single Data edge must remain.
  BB.append(Instruction(Opcode::LoadInt, {100}, {0}));
  BB.append(Instruction(Opcode::Add, {101}, {100, 100}));
  DependenceGraph G(BB, M);
  EXPECT_EQ(G.succs(0).size(), 1u);
  EXPECT_EQ(G.succs(0)[0].Latency, M.getLatency(Opcode::LoadInt));
}

TEST(DependenceGraph, CriticalPathOfChain) {
  MachineModel M = model();
  BasicBlock BB = makeChainBlock();
  DependenceGraph G(BB, M);
  // Height of the first instruction covers the whole chain:
  // lwz(3) -> add(1) -> add(1) -> stw(1).
  long Expected = static_cast<long>(M.getLatency(Opcode::LoadInt)) + 1 + 1 +
                  static_cast<long>(M.getLatency(Opcode::StoreInt));
  EXPECT_EQ(G.criticalPath(0), Expected);
  // Heights shrink along the chain.
  EXPECT_GT(G.criticalPath(0), G.criticalPath(1));
  EXPECT_GT(G.criticalPath(1), G.criticalPath(2));
}

TEST(DependenceGraph, CriticalPathAtLeastOwnLatency) {
  MachineModel M = model();
  BasicBlock BB = makeIlpFloatBlock();
  DependenceGraph G(BB, M);
  for (int I = 0; I != static_cast<int>(BB.size()); ++I)
    EXPECT_GE(G.criticalPath(I),
              static_cast<long>(
                  M.getLatency(BB[static_cast<size_t>(I)].getOpcode())));
}

TEST(DependenceGraph, WorkUnitsPositiveAndGrowWithSize) {
  MachineModel M = model();
  DependenceGraph Small(makeTrivialBlock(), M);
  DependenceGraph Large(makeIlpFloatBlock(), M);
  EXPECT_GT(Small.workUnits(), 0u);
  EXPECT_GT(Large.workUnits(), Small.workUnits());
}

TEST(DependenceGraph, EmptyBlock) {
  BasicBlock BB("empty");
  DependenceGraph G(BB, model());
  EXPECT_EQ(G.numNodes(), 0u);
  EXPECT_EQ(G.numEdges(), 0u);
}

// Property sweep: on generated blocks, all edges point forward and
// in-degrees are consistent with successor lists.
class DepGraphProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DepGraphProperty, EdgesForwardAndDegreesConsistent) {
  MachineModel M = model();
  const BenchmarkSpec *Spec = findBenchmarkSpec("raytrace");
  ASSERT_NE(Spec, nullptr);
  Rng R(GetParam());
  for (int Trial = 0; Trial != 20; ++Trial) {
    BasicBlock BB = ProgramGenerator(*Spec).generateBlock(
        R, R.range(0, 8), /*EndWithTerminator=*/true);
    DependenceGraph G(BB, M);
    std::vector<int> InDeg(G.numNodes(), 0);
    for (size_t I = 0; I != G.numNodes(); ++I)
      for (const DepEdge &E : G.succs(static_cast<int>(I))) {
        EXPECT_GT(E.To, static_cast<int>(I));
        EXPECT_LT(E.To, static_cast<int>(G.numNodes()));
        ++InDeg[static_cast<size_t>(E.To)];
      }
    EXPECT_EQ(InDeg, G.inDegrees());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DepGraphProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));
