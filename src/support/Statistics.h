//===- support/Statistics.h - Small statistics helpers ---------*- C++ -*-===//
///
/// \file
/// Summary statistics used when rendering the paper's tables and figures:
/// the paper reports geometric means of ratios and medians of repeated runs.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_SUPPORT_STATISTICS_H
#define SCHEDFILTER_SUPPORT_STATISTICS_H

#include <vector>

namespace schedfilter {

/// Returns the arithmetic mean of \p Values; 0 for an empty vector.
double mean(const std::vector<double> &Values);

/// Returns the geometric mean of \p Values.  Zero entries are clamped to a
/// tiny positive epsilon first (the paper's Table 3 contains exact 0.00%
/// error rates yet still reports a geometric mean, implying the authors did
/// the same or similar).  Returns 0 for an empty vector.
double geometricMean(const std::vector<double> &Values);

/// Returns the median of \p Values (copies and sorts); 0 for empty input.
double median(std::vector<double> Values);

/// Returns the sample standard deviation; 0 for fewer than two values.
double sampleStddev(const std::vector<double> &Values);

/// Returns Numerator / Denominator, or \p IfZero when the denominator is 0.
double safeRatio(double Numerator, double Denominator, double IfZero = 0.0);

} // namespace schedfilter

#endif // SCHEDFILTER_SUPPORT_STATISTICS_H
