//===- support/Timer.h - Wall-clock accumulation ---------------*- C++ -*-===//
///
/// \file
/// Accumulating wall-clock timers.  The paper measures elapsed time spent in
/// the compiler "broken down by phase and individual optimization" and folds
/// filter-evaluation cost into the scheduling phase; AccumulatingTimer plays
/// that role here.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_SUPPORT_TIMER_H
#define SCHEDFILTER_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace schedfilter {

/// Accumulates elapsed nanoseconds across many start/stop intervals.
class AccumulatingTimer {
public:
  void start() { Begin = Clock::now(); }

  void stop() {
    TotalNs += std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - Begin)
                   .count();
  }

  /// Total accumulated time in seconds.
  double seconds() const { return static_cast<double>(TotalNs) * 1e-9; }

  /// Total accumulated time in nanoseconds.
  int64_t nanoseconds() const { return TotalNs; }

  void reset() { TotalNs = 0; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Begin;
  int64_t TotalNs = 0;
};

/// RAII guard that accumulates into a timer for the current scope.
class TimerScope {
public:
  explicit TimerScope(AccumulatingTimer &T) : Timer(T) { Timer.start(); }
  ~TimerScope() { Timer.stop(); }
  TimerScope(const TimerScope &) = delete;
  TimerScope &operator=(const TimerScope &) = delete;

private:
  AccumulatingTimer &Timer;
};

} // namespace schedfilter

#endif // SCHEDFILTER_SUPPORT_TIMER_H
