//===- support/Rng.cpp - Deterministic random number generation ----------===//

#include "support/Rng.h"

#include <cmath>

using namespace schedfilter;

/// SplitMix64 step used for seeding so that nearby seeds give unrelated
/// streams.
static uint64_t splitMix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

void Rng::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  State = splitMix64(S);
  Inc = splitMix64(S) | 1ULL; // PCG requires an odd increment.
  (void)next32();
}

uint32_t Rng::next32() {
  uint64_t Old = State;
  State = Old * 6364136223846793005ULL + Inc;
  uint32_t XorShifted = static_cast<uint32_t>(((Old >> 18u) ^ Old) >> 27u);
  uint32_t Rot = static_cast<uint32_t>(Old >> 59u);
  return (XorShifted >> Rot) | (XorShifted << ((32 - Rot) & 31));
}

uint64_t Rng::next64() {
  uint64_t Hi = next32();
  return (Hi << 32) | next32();
}

uint32_t Rng::below(uint32_t Bound) {
  assert(Bound != 0 && "below() requires a nonzero bound");
  // Rejection sampling to avoid modulo bias.
  uint32_t Threshold = (0u - Bound) % Bound;
  for (;;) {
    uint32_t R = next32();
    if (R >= Threshold)
      return R % Bound;
  }
}

int Rng::range(int Lo, int Hi) {
  assert(Lo <= Hi && "range() requires Lo <= Hi");
  return Lo + static_cast<int>(below(static_cast<uint32_t>(Hi - Lo + 1)));
}

double Rng::uniform() {
  // 53 random bits mapped to [0, 1).
  return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double Lo, double Hi) { return Lo + (Hi - Lo) * uniform(); }

bool Rng::chance(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return uniform() < P;
}

int Rng::geometric(double P) {
  assert(P > 0.0 && P <= 1.0 && "geometric() requires P in (0, 1]");
  if (P >= 1.0)
    return 1;
  // Inverse transform: ceil(log(U) / log(1 - P)).
  double U = uniform();
  if (U <= 0.0)
    U = 0x1.0p-53;
  int K = static_cast<int>(std::ceil(std::log(U) / std::log1p(-P)));
  return K < 1 ? 1 : K;
}

double Rng::gaussian(double Mean, double Stddev) {
  double Sum = 0.0;
  for (int I = 0; I < 12; ++I)
    Sum += uniform();
  return Mean + (Sum - 6.0) * Stddev;
}

size_t Rng::pickWeighted(const std::vector<double> &Weights) {
  assert(!Weights.empty() && "pickWeighted() requires at least one weight");
  double Total = 0.0;
  for (double W : Weights) {
    assert(W >= 0.0 && "weights must be nonnegative");
    Total += W;
  }
  assert(Total > 0.0 && "weights must not all be zero");
  double X = uniform() * Total;
  for (size_t I = 0, E = Weights.size(); I != E; ++I) {
    X -= Weights[I];
    if (X < 0.0)
      return I;
  }
  return Weights.size() - 1;
}

int Rng::zipf(int N, double S) {
  assert(N >= 1 && "zipf() requires N >= 1");
  // Exact inverse transform over the normalization sum.  N is small in all
  // of our uses (block counts per method), so the O(N) scan is fine.
  double Norm = 0.0;
  for (int K = 1; K <= N; ++K)
    Norm += 1.0 / std::pow(static_cast<double>(K), S);
  double X = uniform() * Norm;
  for (int K = 1; K <= N; ++K) {
    X -= 1.0 / std::pow(static_cast<double>(K), S);
    if (X < 0.0)
      return K;
  }
  return N;
}

Rng Rng::split() { return Rng(next64()); }

Rng Rng::fork(uint64_t StreamId) const {
  // Hash (State, Inc, StreamId) through two SplitMix64 steps.  Unlike
  // split(), this is const: the parent stream is left untouched, so the
  // mapping StreamId -> stream does not depend on when (or whether) other
  // forks happen -- the property parallel task dispatch relies on.
  uint64_t S = State + 0x9e3779b97f4a7c15ULL * (StreamId + 1);
  uint64_t Seed = splitMix64(S);
  S ^= Inc;
  Seed ^= splitMix64(S);
  return Rng(Seed);
}
