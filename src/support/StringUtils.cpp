//===- support/StringUtils.cpp - Formatting helpers ----------------------===//

#include "support/StringUtils.h"

#include <cstdio>

using namespace schedfilter;

std::string schedfilter::formatDouble(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return std::string(Buf);
}

std::string schedfilter::padLeft(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string schedfilter::padRight(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}

std::string schedfilter::formatPercent(double Fraction, int Decimals) {
  return formatDouble(Fraction * 100.0, Decimals) + "%";
}

std::string schedfilter::formatTrimmed(double Value) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
  return std::string(Buf);
}
