//===- support/CommandLine.h - Minimal flag parsing -------------*- C++ -*-===//
///
/// \file
/// A deliberately tiny command-line parser for the tools/ binaries:
/// "--flag value" and "--flag=value" options plus positional arguments.
/// No subcommands, no type registry -- the tools validate their own
/// values and print their own usage.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_SUPPORT_COMMANDLINE_H
#define SCHEDFILTER_SUPPORT_COMMANDLINE_H

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace schedfilter {

/// Parsed command line: named options and positional arguments.
class CommandLine {
public:
  /// Parses argv.  A token "--name" consumes the following token as its
  /// value unless written "--name=value"; a bare trailing "--name" gets
  /// the value "true" (boolean flag).  Everything else is positional.
  CommandLine(int Argc, char **Argv) {
    for (int I = 1; I < Argc; ++I) {
      std::string Arg = Argv[I];
      if (Arg.rfind("--", 0) != 0) {
        Positional.push_back(Arg);
        continue;
      }
      std::string Name = Arg.substr(2);
      size_t Eq = Name.find('=');
      if (Eq != std::string::npos) {
        Options[Name.substr(0, Eq)] = Name.substr(Eq + 1);
      } else if (I + 1 < Argc && std::string(Argv[I + 1]).rfind("--", 0) != 0) {
        Options[Name] = Argv[++I];
      } else {
        Options[Name] = "true";
      }
    }
  }

  /// Returns the option's value or \p Default when absent.
  std::string get(const std::string &Name,
                  const std::string &Default = "") const {
    auto It = Options.find(Name);
    return It == Options.end() ? Default : It->second;
  }

  /// Returns \p Default when the option is absent, the strictly-parsed
  /// value otherwise.  The whole token must be a finite decimal number:
  /// trailing garbage, NaN, infinities and out-of-double-range values all
  /// print an "--name: expected a number, got '...'" diagnostic and
  /// return nullopt so the caller can exit non-zero -- a mistyped numeric
  /// flag must never silently parse as 0 or fall back to its default
  /// (same contract as the integer knobs in tools/JobsOption.h).
  std::optional<double> getDouble(const std::string &Name,
                                  double Default) const {
    auto It = Options.find(Name);
    if (It == Options.end())
      return Default;
    const std::string &Value = It->second;
    char *End = nullptr;
    double V = std::strtod(Value.c_str(), &End);
    // strtod also parses C99 hex-float spellings ("0x10", "0x1p3");
    // reject them to keep the decimal-only contract.
    bool Hex = Value.find('x') != std::string::npos ||
               Value.find('X') != std::string::npos;
    if (Hex || End == Value.c_str() || *End != '\0' || !std::isfinite(V)) {
      std::cerr << "error: --" << Name << ": expected a number, got '"
                << Value << "'\n";
      return std::nullopt;
    }
    return V;
  }

  bool has(const std::string &Name) const { return Options.count(Name) != 0; }

  const std::vector<std::string> &positional() const { return Positional; }

private:
  std::map<std::string, std::string> Options;
  std::vector<std::string> Positional;
};

} // namespace schedfilter

#endif // SCHEDFILTER_SUPPORT_COMMANDLINE_H
