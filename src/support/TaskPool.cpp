//===- support/TaskPool.cpp - Fixed worker pool ----------------------------===//

#include "support/TaskPool.h"

#include <cassert>

using namespace schedfilter;

namespace {
/// Set for the duration of each task body, on workers and on the calling
/// thread alike, so nested parallelFor calls can detect reentrancy.
thread_local bool InTask = false;

struct InTaskScope {
  bool Previous;
  InTaskScope() : Previous(InTask) { InTask = true; }
  ~InTaskScope() { InTask = Previous; }
};
} // namespace

bool TaskPool::insideTask() { return InTask; }

TaskPool::TaskPool(unsigned Jobs) : NumJobs(Jobs == 0 ? 1 : Jobs) {
  // The calling thread participates in every batch, so N jobs need only
  // N-1 dedicated workers; jobs == 1 spawns no threads at all.
  Workers.reserve(NumJobs - 1);
  for (unsigned I = 1; I < NumJobs; ++I)
    Workers.emplace_back([this] { workerMain(); });
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void TaskPool::runTasks() {
  for (;;) {
    size_t Index;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Body == nullptr || NextIndex >= Count)
        return;
      Index = NextIndex++;
    }
    {
      InTaskScope Scope;
      try {
        (*Body)(Index);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(Mutex);
        if (!FirstError)
          FirstError = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--Remaining == 0)
        DoneCV.notify_all();
    }
  }
}

void TaskPool::workerMain() {
  uint64_t SeenGeneration = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkCV.wait(Lock, [&] {
        return Stopping || (Generation != SeenGeneration && Body != nullptr);
      });
      if (Stopping)
        return;
      SeenGeneration = Generation;
    }
    runTasks();
  }
}

void TaskPool::parallelFor(size_t TaskCount,
                           const std::function<void(size_t)> &TaskBody) {
  if (TaskCount == 0)
    return;
  // Serial pool, a single task, or a nested call from inside a task body:
  // run inline.  Inline nested execution is what makes layered experiment
  // code (sweep -> threshold -> folds) safe against pool self-deadlock.
  // Exception semantics match the pooled path -- every task runs, the
  // first exception is rethrown at the end -- so behavior (e.g. which
  // per-index error slots get filled) never depends on the job count.
  if (NumJobs <= 1 || TaskCount == 1 || insideTask()) {
    std::exception_ptr First;
    for (size_t I = 0; I != TaskCount; ++I) {
      InTaskScope Scope;
      try {
        TaskBody(I);
      } catch (...) {
        if (!First)
          First = std::current_exception();
      }
    }
    if (First)
      std::rethrow_exception(First);
    return;
  }

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(Body == nullptr && "parallelFor is not re-entrant at batch level");
    Body = &TaskBody;
    Count = TaskCount;
    NextIndex = 0;
    Remaining = TaskCount;
    FirstError = nullptr;
    ++Generation;
  }
  WorkCV.notify_all();

  runTasks(); // the calling thread is worker 0

  std::exception_ptr Error;
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    DoneCV.wait(Lock, [&] { return Remaining == 0; });
    Body = nullptr;
    Error = FirstError;
    FirstError = nullptr;
  }
  if (Error)
    std::rethrow_exception(Error);
}

void TaskPool::parallelFor(size_t TaskCount, const Rng &Base,
                           const std::function<void(size_t, Rng &)> &TaskBody) {
  parallelFor(TaskCount, [&](size_t I) {
    Rng Stream = Base.fork(I);
    TaskBody(I, Stream);
  });
}
