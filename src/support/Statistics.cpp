//===- support/Statistics.cpp - Small statistics helpers -----------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cmath>

using namespace schedfilter;

double schedfilter::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double schedfilter::geometricMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  // Clamp zeros so that a single perfect 0.00% error rate does not zero out
  // the suite-wide summary.
  const double Eps = 1e-3;
  double LogSum = 0.0;
  for (double V : Values)
    LogSum += std::log(std::max(V, Eps));
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double schedfilter::median(std::vector<double> Values) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  size_t N = Values.size();
  if (N % 2 == 1)
    return Values[N / 2];
  return 0.5 * (Values[N / 2 - 1] + Values[N / 2]);
}

double schedfilter::sampleStddev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  double M = mean(Values);
  double Sum = 0.0;
  for (double V : Values)
    Sum += (V - M) * (V - M);
  return std::sqrt(Sum / static_cast<double>(Values.size() - 1));
}

double schedfilter::safeRatio(double Numerator, double Denominator,
                              double IfZero) {
  if (Denominator == 0.0)
    return IfZero;
  return Numerator / Denominator;
}
