//===- support/TablePrinter.cpp - Fixed-width table rendering ------------===//

#include "support/TablePrinter.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace schedfilter;

TablePrinter::TablePrinter(std::vector<std::string> Hdr)
    : Header(std::move(Hdr)) {
  assert(!Header.empty() && "table needs at least one column");
}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() <= Header.size() && "row longer than header");
  Cells.resize(Header.size());
  Rows.push_back(std::move(Cells));
}

void TablePrinter::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Header.size());
  for (size_t C = 0; C != Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      if (Row[C].size() > Widths[C])
        Widths[C] = Row[C].size();

  size_t Total = 0;
  for (size_t C = 0; C != Header.size(); ++C) {
    OS << (C ? "  " : "") << padRight(Header[C], Widths[C]);
    Total += Widths[C] + (C ? 2 : 0);
  }
  OS << '\n' << std::string(Total, '-') << '\n';
  for (const auto &Row : Rows) {
    for (size_t C = 0; C != Row.size(); ++C)
      OS << (C ? "  " : "") << padRight(Row[C], Widths[C]);
    OS << '\n';
  }
}

void TablePrinter::printCsv(std::ostream &OS) const {
  for (size_t C = 0; C != Header.size(); ++C)
    OS << (C ? "," : "") << Header[C];
  OS << '\n';
  for (const auto &Row : Rows) {
    for (size_t C = 0; C != Row.size(); ++C)
      OS << (C ? "," : "") << Row[C];
    OS << '\n';
  }
}
