//===- support/Rng.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the schedfilter project: a reproduction of Cavazos & Moss,
// "Inducing Heuristics To Decide Whether To Schedule" (PLDI 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable random number generation used by the synthetic
/// workload generators and by the learner's grow/prune splits.  Every source
/// of randomness in the repository flows through this class so that every
/// experiment is bit-for-bit reproducible from a named 64-bit seed.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_SUPPORT_RNG_H
#define SCHEDFILTER_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace schedfilter {

/// A small, fast, deterministic PCG32 generator seeded via SplitMix64.
///
/// We deliberately avoid std::mt19937 and the std distributions: their
/// output is implementation-defined across standard libraries for some
/// distributions, which would make the reproduced tables non-portable.
class Rng {
public:
  /// Seeds the generator.  Two Rng objects constructed with the same seed
  /// produce identical streams.
  explicit Rng(uint64_t Seed = 0x853c49e6748fea9bULL) { reseed(Seed); }

  /// Resets the stream as if the object had been constructed with \p Seed.
  void reseed(uint64_t Seed);

  /// Returns the next raw 32 bits of the stream.
  uint32_t next32();

  /// Returns the next raw 64 bits of the stream.
  uint64_t next64();

  /// Returns a uniformly distributed integer in [0, Bound).  \p Bound must
  /// be nonzero.  Uses rejection sampling, so the result is exactly uniform.
  uint32_t below(uint32_t Bound);

  /// Returns a uniformly distributed integer in [Lo, Hi] inclusive.
  int range(int Lo, int Hi);

  /// Returns a uniform double in [0, 1).
  double uniform();

  /// Returns a uniform double in [Lo, Hi).
  double uniform(double Lo, double Hi);

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool chance(double P);

  /// Samples a geometrically distributed integer >= 1 with success
  /// probability \p P in (0, 1]; i.e. the number of trials up to and
  /// including the first success.  Used for block-size distributions.
  int geometric(double P);

  /// Samples an approximately normal value via the sum of uniforms
  /// (Irwin-Hall with 12 terms), scaled to \p Mean and \p Stddev.
  double gaussian(double Mean, double Stddev);

  /// Samples an index in [0, Weights.size()) with probability proportional
  /// to Weights[i].  Weights must be nonnegative and not all zero.
  size_t pickWeighted(const std::vector<double> &Weights);

  /// Samples a Zipf-like rank in [1, N] with exponent \p S >= 0 by inverse
  /// transform over the exact normalization constant.  Rank 1 is the most
  /// probable.  Used for block execution-count (hotness) profiles.
  int zipf(int N, double S);

  /// Derives an independent generator from this stream; convenient for
  /// giving each generated method its own substream.  Consumes state (two
  /// split() calls return different generators).
  Rng split();

  /// Derives an independent generator for stream \p StreamId without
  /// advancing this generator (SplitMix-style).  fork(i) is a pure
  /// function of (current state, i): parallel tasks can each take
  /// Base.fork(taskIndex) in any order -- or concurrently -- and every
  /// task sees the same stream it would have seen serially.  Distinct
  /// stream ids give statistically independent streams.
  Rng fork(uint64_t StreamId) const;

private:
  uint64_t State;
  uint64_t Inc;
};

} // namespace schedfilter

#endif // SCHEDFILTER_SUPPORT_RNG_H
