//===- support/StringUtils.h - Formatting helpers --------------*- C++ -*-===//
///
/// \file
/// Tiny string-formatting helpers shared by the table renderers and rule
/// printers.  Kept deliberately minimal: fixed precision doubles, padding,
/// and percentage formatting.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_SUPPORT_STRINGUTILS_H
#define SCHEDFILTER_SUPPORT_STRINGUTILS_H

#include <string>

namespace schedfilter {

/// Formats \p Value with exactly \p Decimals digits after the point.
std::string formatDouble(double Value, int Decimals);

/// Left-pads \p S with spaces to width \p Width (no-op if already wider).
std::string padLeft(const std::string &S, size_t Width);

/// Right-pads \p S with spaces to width \p Width (no-op if already wider).
std::string padRight(const std::string &S, size_t Width);

/// Formats a fraction as a percent string, e.g. 0.379 -> "37.9%".
std::string formatPercent(double Fraction, int Decimals = 1);

/// Formats \p Value with up to six significant digits and no trailing
/// zeros, e.g. 0.1 -> "0.1", 2 -> "2".  Used for canonical parameter
/// spellings that must round-trip through strtod.
std::string formatTrimmed(double Value);

} // namespace schedfilter

#endif // SCHEDFILTER_SUPPORT_STRINGUTILS_H
