//===- support/TaskPool.h - Fixed worker pool ------------------*- C++ -*-===//
///
/// \file
/// A fixed pool of worker threads with deterministic result ordering: work
/// is always expressed as an indexed loop (task i of N), each index runs
/// exactly once, and callers write results into pre-sized slot i -- so the
/// assembled output is identical no matter how many workers ran or how the
/// OS interleaved them.  Combined with Rng::fork (per-task streams keyed by
/// the task index), every experiment in this repository produces bit-for-bit
/// the same numbers at any --jobs value.
///
/// parallelFor is reentrant: a body that itself calls parallelFor (nested
/// experiment layers, e.g. a threshold sweep whose per-threshold work fans
/// out LOOCV folds) runs the inner loop inline on the current thread, which
/// keeps the pool deadlock-free and the results unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_SUPPORT_TASKPOOL_H
#define SCHEDFILTER_SUPPORT_TASKPOOL_H

#include "support/Rng.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace schedfilter {

/// Fixed-size worker pool.  Jobs == 1 spawns no threads at all and runs
/// every loop inline; Jobs == N uses the calling thread plus N-1 workers.
class TaskPool {
public:
  /// \p Jobs must be >= 1 (the shared --jobs flag validates this before
  /// construction).
  explicit TaskPool(unsigned Jobs);
  ~TaskPool();

  TaskPool(const TaskPool &) = delete;
  TaskPool &operator=(const TaskPool &) = delete;

  unsigned jobs() const { return NumJobs; }

  /// Runs Body(0) .. Body(Count-1), each exactly once, possibly
  /// concurrently and in any order.  Blocks until all complete.  The first
  /// exception thrown by any task is rethrown here; remaining tasks still
  /// run, on the pooled and inline paths alike, so which indices execute
  /// never depends on the job count.  Bodies must only write to disjoint,
  /// index-owned state.
  void parallelFor(size_t Count, const std::function<void(size_t)> &Body);

  /// Like parallelFor, but additionally hands task i the forked stream
  /// Base.fork(i) -- reproducible and order-independent, so stochastic
  /// tasks stay deterministic at any job count.
  void parallelFor(size_t Count, const Rng &Base,
                   const std::function<void(size_t, Rng &)> &Body);

  /// True while the calling thread is executing a pool task (used to run
  /// nested parallelFor calls inline).
  static bool insideTask();

private:
  void workerMain();
  void runTasks();

  unsigned NumJobs;
  std::vector<std::thread> Workers;

  std::mutex Mutex;
  std::condition_variable WorkCV;
  std::condition_variable DoneCV;
  const std::function<void(size_t)> *Body = nullptr; // guarded by Mutex
  size_t Count = 0;                                  // guarded by Mutex
  size_t NextIndex = 0;                              // guarded by Mutex
  size_t Remaining = 0;                              // guarded by Mutex
  uint64_t Generation = 0;                           // guarded by Mutex
  bool Stopping = false;                             // guarded by Mutex
  std::exception_ptr FirstError;                     // guarded by Mutex
};

} // namespace schedfilter

#endif // SCHEDFILTER_SUPPORT_TASKPOOL_H
