//===- noise/Robustness.cpp - Severity ladder + frontier evaluation -------===//

#include "noise/Robustness.h"

#include "support/Statistics.h"
#include "target/MachineModel.h"

#include <cassert>

using namespace schedfilter;

namespace {

/// The built-in ladder.  Each rung keeps every corruption of the one
/// below at an equal-or-higher parameter, so severity is ordered by
/// construction.  Parameters were tuned on the registered families so
/// the win margin crosses zero inside the ladder: the filter still beats
/// always-schedule around the middle rungs and loses by the top.
const char *const LevelSpecs[] = {
    /*L0*/ "",
    /*L1*/ "jitter:0.1,spikes:0.05",
    /*L2*/ "jitter:0.2,spikes:0.1,labelflip:0.1",
    /*L3*/ "jitter:0.3,spikes:0.15,labelflip:0.25,mistune:ppc970",
    /*L4*/ "jitter:0.4,spikes:0.2,labelflip:0.4,mistune:ppc970",
};

} // namespace

unsigned schedfilter::numRobustnessLevels() {
  return sizeof(LevelSpecs) / sizeof(LevelSpecs[0]);
}

const char *schedfilter::robustnessLevelSpec(unsigned Level) {
  assert(Level < numRobustnessLevels() && "no such ladder rung");
  return LevelSpecs[Level];
}

NoiseStack schedfilter::robustnessStack(unsigned Level, uint64_t Seed) {
  ParseResult<NoiseStack> S = parseNoiseStack(robustnessLevelSpec(Level), Seed);
  assert(S && "ladder specs are known-valid");
  return std::move(*S);
}

RobustnessPoint schedfilter::runRobustnessPoint(ExperimentEngine &Engine,
                                                std::vector<BenchmarkRun> Suite,
                                                const NoiseStack &Stack,
                                                double ThresholdPct) {
  TaskPool &Pool = Engine.pool();
  Stack.perturbSuite(Suite, Pool);

  std::vector<Dataset> Labeled = Stack.labelSuite(Suite, ThresholdPct, Pool);
  std::vector<LoocvFold> Folds = leaveOneOut(Labeled, ripperLearner(), Pool);

  RobustnessPoint P;
  P.Stack = Stack.describe();
  for (const Dataset &D : Labeled) {
    P.TrainLS += D.countLabel(Label::LS);
    P.TrainNS += D.countLabel(Label::NS);
  }

  // Price every held-out filter under the run's own model -- after a
  // mistune source this is the serve model, matching the recomputed
  // fixed-policy reports.
  std::vector<double> Effort(Suite.size()), AppLN(Suite.size()),
      AppLS(Suite.size());
  std::vector<uint64_t> Scheduled(Suite.size()), Blocks(Suite.size());
  Pool.parallelFor(Suite.size(), [&](size_t B) {
    const BenchmarkRun &Run = Suite[B];
    std::optional<MachineModel> Model = MachineModel::byName(Run.ModelName);
    assert(Model && "BenchmarkRun carries a registered model name");
    ScheduleFilter F(Folds[B].Filter);
    CompileReport LN =
        compileProgram(Run.Prog, *Model, SchedulingPolicy::Filtered, &F);
    Effort[B] =
        safeRatio(static_cast<double>(LN.SchedulingWork),
                  static_cast<double>(Run.AlwaysReport.SchedulingWork));
    AppLN[B] = LN.SimulatedTime / Run.NeverReport.SimulatedTime;
    AppLS[B] =
        Run.AlwaysReport.SimulatedTime / Run.NeverReport.SimulatedTime;
    Scheduled[B] = LN.NumScheduled;
    Blocks[B] = LN.NumBlocks;
  });
  for (size_t B = 0; B != Suite.size(); ++B) {
    P.RuntimeLS += Scheduled[B];
    P.RuntimeBlocks += Blocks[B];
  }

  P.EffortRatio = geometricMean(Effort);
  P.AppTimeLN = geometricMean(AppLN);
  P.AppTimeLS = geometricMean(AppLS);
  P.Retention = safeRatio(1.0 - P.AppTimeLN, 1.0 - P.AppTimeLS);
  P.WinMargin = P.Retention - P.EffortRatio;
  return P;
}
