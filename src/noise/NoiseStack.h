//===- noise/NoiseStack.h - Ordered composition of noise sources -*- C++ -*-===//
///
/// \file
/// The NoiseStack builder: sources compose in declaration order, and the
/// whole stack is seeded once.  The fork-seeding contract that makes any
/// composition bit-reproducible at any --jobs and cache temperature:
///
///   source stream   S_i     = Rng(StackSeed).fork(i)         (i = add order)
///   perturb lane    P_i(b)  = S_i.fork(LanePerturb).fork(b)  (b = run index)
///   label lane      L_i(b)  = S_i.fork(LaneLabel).fork(b)
///   drift lane      D_i     = S_i.fork(LaneDrift)
///
/// Each hook invocation receives its lane stream and forks per record /
/// epoch from there (see NoiseSource.h), so every perturbation is a pure
/// function of (StackSeed, source index, run index, record index) --
/// independent of evaluation order, parallelism, and of which other
/// sources are stacked BEFORE it only through the record values they
/// already wrote (declaration order is semantic: jitter-then-spikes and
/// spikes-then-jitter are different experiments, pinned as such by
/// tests/noise_test.cpp).
///
/// An empty stack is exactly the identity: perturbSuite leaves every run
/// byte-equal and labelSuite defers to the plain Labeler.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_NOISE_NOISESTACK_H
#define SCHEDFILTER_NOISE_NOISESTACK_H

#include "io/ParseResult.h"
#include "noise/NoiseSource.h"
#include "support/TaskPool.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace schedfilter {

class NoiseStack {
public:
  explicit NoiseStack(uint64_t Seed = 0) : Seed(Seed) {}

  NoiseStack(NoiseStack &&) = default;
  NoiseStack &operator=(NoiseStack &&) = default;

  /// Appends \p S; declaration order is application order.  Returns
  /// *this for builder chaining.
  NoiseStack &add(std::unique_ptr<NoiseSource> S);

  size_t size() const { return Sources.size(); }
  bool empty() const { return Sources.empty(); }
  uint64_t seed() const { return Seed; }
  const NoiseSource &source(size_t I) const { return *Sources[I]; }

  /// Comma-joined canonical spellings ("jitter:0.1,spikes:0.05"), or
  /// "none" for the empty stack -- report headers print this.
  std::string describe() const;

  /// Applies every source's record-level hook to \p Run, in order.
  /// \p RunIndex must be the run's index in its suite -- it selects the
  /// per-run lane, so perturbing runs in any order (or in parallel)
  /// reproduces the serial result bit for bit.
  void perturbRun(BenchmarkRun &Run, size_t RunIndex) const;

  /// perturbRun over a whole suite; with \p Pool, parallel by run with
  /// identical results.
  void perturbSuite(std::vector<BenchmarkRun> &Suite) const;
  void perturbSuite(std::vector<BenchmarkRun> &Suite, TaskPool &Pool) const;

  /// The Labeler boundary: labels \p Run's records at \p ThresholdPct
  /// with every source's label hook applied in order after the threshold
  /// rule.  The empty stack is plain buildDataset.
  Dataset labelRun(const BenchmarkRun &Run, size_t RunIndex,
                   double ThresholdPct) const;

  /// labelRun over a whole suite; with \p Pool, parallel by run with
  /// identical results.
  std::vector<Dataset> labelSuite(const std::vector<BenchmarkRun> &Suite,
                                  double ThresholdPct) const;
  std::vector<Dataset> labelSuite(const std::vector<BenchmarkRun> &Suite,
                                  double ThresholdPct, TaskPool &Pool) const;

  /// The composed mix-drift function for MultiAppService::setMixDrift:
  /// the product of every drifting source's factor.  Null when no source
  /// drifts, so a drift-free stack leaves the service on its exact
  /// pre-noise path.  The function BORROWS this stack's sources -- it
  /// must not outlive the stack it came from.
  std::function<double(uint64_t Epoch, size_t AppIndex)> mixDrift() const;

private:
  /// Lane discriminators between a source's hook families (kept distinct
  /// so a source using two hooks never correlates their draws).
  enum Lane : uint64_t { LanePerturb = 0, LaneLabel = 1, LaneDrift = 2 };

  Rng laneStream(size_t SourceIndex, Lane L) const {
    return Rng(Seed).fork(SourceIndex).fork(L);
  }

  uint64_t Seed;
  std::vector<std::unique_ptr<NoiseSource>> Sources;
};

/// Parses a --noise specification "src:param[,src:param...]" into a
/// stack seeded with \p Seed.  Known sources and parameters:
///   jitter:SIGMA     multiplicative timing noise, SIGMA in [0, 2]
///   mistune:MODEL    serve-side machine model (MachineModel::byName)
///   labelflip:P      label-flip probability, P in [0, 1]
///   spikes:P         cost-spike probability, P in [0, 1]
///   drift:A          mix-drift amplitude, A in [0, 4]
/// Every source requires its parameter; numbers follow the strict
/// decimal contract of CommandLine::getDouble (no hex, no NaN/inf, no
/// trailing junk).  Sources may repeat (two jitter passes compose).  An
/// empty \p Spec is the empty stack.  Errors carry a message naming what
/// is accepted; ParseError::Line is the 1-based comma-separated item
/// ordinal.
ParseResult<NoiseStack> parseNoiseStack(const std::string &Spec,
                                        uint64_t Seed);

/// The comma-joined list of source spellings parseNoiseStack accepts,
/// for diagnostics and --help text.
std::string knownNoiseSources();

} // namespace schedfilter

#endif // SCHEDFILTER_NOISE_NOISESTACK_H
