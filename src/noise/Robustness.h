//===- noise/Robustness.h - Severity ladder + frontier evaluation -*- C++ -*-===//
///
/// \file
/// The robustness suite's measurement core: a fixed ladder of noise
/// stacks of increasing severity, and the evaluation of one (suite,
/// stack) point -- perturb, label through the stack, LOOCV-train, and
/// price the induced filter against the always-schedule baseline.
///
/// The frontier vocabulary (bench_robustness and EXPERIMENTS.md):
///   Retention R = (1 - geomean AppRatioLN) / (1 - geomean AppRatioLS),
///     the share of always-schedule's app-time benefit the filter keeps;
///   Effort E    = geomean(Work_LN / Work_LS),
///     the share of always-schedule's scheduling work it spends.
/// Always-schedule itself sits at (R, E) = (1, 1), so the filter beats
/// it exactly when it retains at least as large a share of the benefit
/// as it spends of the effort: WinMargin = R - E >= 0.  On a clean suite
/// the filter wins by a wide margin; the ladder measures how much signal
/// corruption that margin survives.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_NOISE_ROBUSTNESS_H
#define SCHEDFILTER_NOISE_ROBUSTNESS_H

#include "harness/ParallelExperiments.h"
#include "noise/NoiseStack.h"

namespace schedfilter {

/// Everything measured at one (suite, stack) point.
struct RobustnessPoint {
  std::string Stack;     ///< NoiseStack::describe() of the point.
  double EffortRatio = 0.0; ///< E: geomean L/N work / LS work.
  double AppTimeLN = 0.0;   ///< geomean L/N app time / NS app time.
  double AppTimeLS = 0.0;   ///< geomean LS app time / NS app time.
  double Retention = 0.0;   ///< R: benefit share retained vs LS.
  double WinMargin = 0.0;   ///< R - E; >= 0 means the filter wins.
  size_t TrainLS = 0;       ///< LS training instances, suite total.
  size_t TrainNS = 0;       ///< NS training instances, suite total.
  size_t RuntimeLS = 0;     ///< blocks the held-out filters scheduled.
  size_t RuntimeBlocks = 0; ///< blocks the held-out filters classified.
};

/// Number of rungs on the built-in severity ladder (level 0 is the
/// clean, empty stack).
unsigned numRobustnessLevels();

/// The --noise spec of ladder rung \p Level (< numRobustnessLevels());
/// level 0 is the empty spec.  Specs are ordered by strictly increasing
/// severity: each rung contains every corruption of the previous one at
/// an equal-or-higher parameter, so the measured frontier is monotone by
/// construction of the inputs (the *outputs* staying monotone is the
/// result bench_robustness pins).
const char *robustnessLevelSpec(unsigned Level);

/// robustnessLevelSpec(Level) parsed into a stack seeded with \p Seed.
NoiseStack robustnessStack(unsigned Level, uint64_t Seed);

/// Evaluates one point: perturbs \p Suite through \p Stack (by value --
/// the caller's clean suite is untouched), labels at \p ThresholdPct
/// with the stack's label hooks, LOOCV-trains RIPPER, and prices every
/// held-out filter against the run's own fixed-policy reports under the
/// run's (possibly mis-tuned) model.  Deterministic at any job count:
/// perturbation, labeling, folds and evaluation all fan out over
/// index-owned slots.
RobustnessPoint runRobustnessPoint(ExperimentEngine &Engine,
                                   std::vector<BenchmarkRun> Suite,
                                   const NoiseStack &Stack,
                                   double ThresholdPct);

} // namespace schedfilter

#endif // SCHEDFILTER_NOISE_ROBUSTNESS_H
