//===- noise/NoiseSource.h - Composable trace perturbation ------*- C++ -*-===//
///
/// \file
/// The trace-perturbation interface: every way the training/serving
/// signal can be imperfect in production -- timer jitter, a mis-tuned
/// machine model, mislabeled instances, cache-miss cost spikes, a
/// drifting traffic mix -- is one NoiseSource.  Sources compose into a
/// NoiseStack (noise/NoiseStack.h) that applies them in declaration
/// order, and the robustness suite (noise/Robustness.h,
/// bench_robustness) sweeps stacks of increasing severity to measure how
/// far the induced filter's benefit degrades before the always-schedule
/// baseline wins.
///
/// A source may act at up to three boundaries, each an overridable hook
/// with a no-op default:
///   - perturb(): mutate a traced BenchmarkRun's records/reports before
///     labeling and evaluation (jitter, spikes, model mis-tuning);
///   - perturbLabel(): transform the verdict the Labeler's threshold
///     rule produced for one record (label noise, band-handling
///     ablations);
///   - mixWeightFactor(): modulate one app's interleave weight per epoch
///     of a MultiAppService stream (workload-mix drift).
///
/// Determinism contract (pinned by tests/noise_test.cpp and the CI
/// byte-diffs): a source draws randomness ONLY from the Rng stream the
/// stack hands it, and only via random-access forks -- per record
/// Stream.fork(RecordIndex), per epoch/app Stream.fork(Epoch).fork(App)
/// -- never by advancing a shared sequential stream.  Every hook is
/// therefore a pure function of (stack seed, source index, run index,
/// record/epoch index), so any stack composition is bit-reproducible at
/// any --jobs and across corpus-cache temperatures.  Wall clocks,
/// std::random engines and hash-order iteration are banned here by
/// scripts/lint_determinism.sh like everywhere else.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_NOISE_NOISESOURCE_H
#define SCHEDFILTER_NOISE_NOISESOURCE_H

#include "harness/Experiments.h"
#include "ml/Labeler.h"
#include "support/Rng.h"

#include <memory>
#include <optional>
#include <string>

namespace schedfilter {

/// One perturbation of the training/serving signal.  Implementations
/// must be stateless after construction (parameters only): every hook is
/// const and a pure function of its arguments, so sources are shared
/// freely across threads.
class NoiseSource {
public:
  virtual ~NoiseSource() = default;

  /// Registry key and --noise spelling, lowercase [a-z0-9-]; unique
  /// across the built-in sources.
  virtual const char *name() const = 0;

  /// Version of this source's perturbation.  Perturbed records never
  /// enter the corpus cache (the stack applies downstream of it), so
  /// this is not a cache key; it versions the *meaning* of a severity
  /// parameter, and MUST be bumped by any change that alters what a
  /// given (parameter, seed) pair emits -- pinned robustness frontiers
  /// cite it.
  virtual uint32_t version() const = 0;

  /// Canonical parameterized spelling, e.g. "jitter:0.1" -- exactly what
  /// parseNoiseStack would accept to reconstruct this source.
  virtual std::string describe() const = 0;

  /// Record-level hook: mutate \p Run in place.  \p Stream is this
  /// source's private perturbation stream for this run; draw via
  /// Stream.fork(RecordIndex) per record.  Default: no-op.
  virtual void perturb(BenchmarkRun &Run, const Rng &Stream) const;

  /// Label-boundary hook: transform the threshold rule's verdict for
  /// record \p RecordIndex (nullopt = dropped from training).  \p Stream
  /// is this source's private label stream for the run; draw via
  /// Stream.fork(RecordIndex).  Default: identity.
  virtual std::optional<Label> perturbLabel(std::optional<Label> L,
                                            const BlockRecord &Rec,
                                            size_t RecordIndex,
                                            const Rng &Stream) const;

  /// True when mixWeightFactor is non-trivial; lets the stack hand
  /// MultiAppService no drift function at all (the exact pre-noise fast
  /// path) when no source drifts.
  virtual bool drifts() const { return false; }

  /// Mix-drift hook: the multiplicative factor on app \p AppIndex's
  /// interleave weight during epoch \p Epoch.  Must be positive and a
  /// pure function of the arguments and \p Stream (this source's private
  /// drift stream; draw via Stream.fork(Epoch).fork(AppIndex)).
  /// Default: 1.0.
  virtual double mixWeightFactor(uint64_t Epoch, size_t AppIndex,
                                 const Rng &Stream) const;
};

/// Factories of the built-in sources, each defined in its own
/// translation unit (one file per source, like the workload families).
/// Parameter ranges are enforced by parseNoiseStack; the factories
/// assert.

/// Per-record multiplicative timing noise: each cost c > 0 becomes
/// round(c * exp(N(0, Sigma))), clamped to >= 1; zero costs stay zero.
/// Models simulator/timer inaccuracy that is independent per block.
std::unique_ptr<NoiseSource> makeLatencyJitter(double Sigma);

/// Systematic model mis-tuning: the records keep the costs traced under
/// the training model, but the run's ModelName and fixed-policy reports
/// are recomputed under \p ServeModel (MachineModel::byName) -- the
/// paper's transfer experiment (train on ppc7410, measure on ppc970) as
/// a composable source.  Draws no randomness.
std::unique_ptr<NoiseSource> makeModelMisTune(std::string ServeModel);

/// Label noise: each labeled instance flips LS<->NS with probability
/// \p FlipProb at the Labeler boundary; dropped (noise-band) records
/// stay dropped.
std::unique_ptr<NoiseSource> makeLabelNoise(double FlipProb);

/// Cache-miss-style cost spikes: with probability \p Prob a record gains
/// a heavy-tailed (truncated Pareto) burst added to BOTH costs -- the
/// miss hits the block however it was scheduled -- which shrinks the
/// block's relative scheduling benefit the way a miss-dominated block's
/// real benefit shrinks.
std::unique_ptr<NoiseSource> makeCostSpikes(double Prob);

/// Drifting workload mix: app weights swing smoothly over the virtual
/// clock -- factor(epoch, app) = exp(Amplitude * sin(2*pi*epoch/period
/// + phase)) with a per-app period and phase drawn from the drift
/// stream -- so a MultiAppService mix's traffic shares change over time
/// while every draw stays a pure function of (seed, epoch, app).
std::unique_ptr<NoiseSource> makeMixDrift(double Amplitude);

} // namespace schedfilter

#endif // SCHEDFILTER_NOISE_NOISESOURCE_H
