//===- noise/LatencyJitter.cpp - Multiplicative timing noise --------------===//
///
/// \file
/// Per-record multiplicative timing noise: each positive cost c becomes
/// round(c * exp(N(0, Sigma))), clamped to >= 1.  The lognormal factor
/// models a simulator/timer whose per-block error is unbiased in log
/// space -- small blocks wobble by a cycle, big blocks by a share -- and
/// the two costs of one record draw independent factors, so the
/// scheduling benefit itself gets noisy, not just its scale.
///
//===----------------------------------------------------------------------===//

#include "noise/NoiseSource.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cmath>

using namespace schedfilter;

namespace {

class LatencyJitter final : public NoiseSource {
public:
  explicit LatencyJitter(double Sigma) : Sigma(Sigma) {
    assert(Sigma >= 0.0 && Sigma <= 2.0 && "parseNoiseStack enforces range");
  }

  const char *name() const override { return "jitter"; }
  uint32_t version() const override { return 1; }
  std::string describe() const override {
    return "jitter:" + formatTrimmed(Sigma);
  }

  void perturb(BenchmarkRun &Run, const Rng &Stream) const override {
    for (size_t I = 0; I != Run.Records.size(); ++I) {
      Rng R = Stream.fork(I);
      BlockRecord &Rec = Run.Records[I];
      Rec.CostNoSched = jitterCost(Rec.CostNoSched, R);
      Rec.CostSched = jitterCost(Rec.CostSched, R);
    }
  }

private:
  /// Scales \p Cost by an independent lognormal factor; zero costs stay
  /// zero (an empty block has no latency to mis-measure).
  uint64_t jitterCost(uint64_t Cost, Rng &R) const {
    // Draw even when Cost == 0 so a record's second cost sees the same
    // stream position whether or not the first was zero.
    double Factor = std::exp(R.gaussian(0.0, Sigma));
    if (Cost == 0)
      return 0;
    double Scaled = std::round(static_cast<double>(Cost) * Factor);
    return Scaled < 1.0 ? 1 : static_cast<uint64_t>(Scaled);
  }

  double Sigma;
};

} // namespace

std::unique_ptr<NoiseSource> schedfilter::makeLatencyJitter(double Sigma) {
  return std::make_unique<LatencyJitter>(Sigma);
}
