//===- noise/ModelMisTune.cpp - Systematic model mis-tuning ---------------===//
///
/// \file
/// The paper's transfer experiment as a composable source: the records
/// keep the costs traced under the *training* model -- that is the
/// mis-tuning -- while the run's ModelName and fixed-policy reports are
/// recomputed under the serve model, so downstream evaluation
/// (runThreshold recompiles under Suite.front().ModelName) prices every
/// schedule on the machine the filter actually serves.  Train on
/// ppc7410, serve on ppc970.  Draws no randomness.
///
//===----------------------------------------------------------------------===//

#include "noise/NoiseSource.h"

#include "target/MachineModel.h"

#include <cassert>

using namespace schedfilter;

namespace {

class ModelMisTune final : public NoiseSource {
public:
  explicit ModelMisTune(std::string ServeModel)
      : ServeModel(std::move(ServeModel)) {
    assert(MachineModel::byName(this->ServeModel) &&
           "parseNoiseStack validates the model name");
  }

  const char *name() const override { return "mistune"; }
  uint32_t version() const override { return 1; }
  std::string describe() const override { return "mistune:" + ServeModel; }

  void perturb(BenchmarkRun &Run, const Rng &) const override {
    if (Run.ModelName == ServeModel)
      return;
    MachineModel Model = *MachineModel::byName(ServeModel);
    Run.ModelName = ServeModel;
    Run.NeverReport =
        compileProgram(Run.Prog, Model, SchedulingPolicy::Never);
    Run.AlwaysReport =
        compileProgram(Run.Prog, Model, SchedulingPolicy::Always);
  }

private:
  std::string ServeModel;
};

} // namespace

std::unique_ptr<NoiseSource> schedfilter::makeModelMisTune(std::string ServeModel) {
  return std::make_unique<ModelMisTune>(std::move(ServeModel));
}
