//===- noise/CostSpikes.cpp - Heavy-tailed cache-miss cost bursts ---------===//
///
/// \file
/// Cache-miss-style cost spikes: with probability P a record gains a
/// truncated-Pareto burst added to BOTH costs -- a miss stalls the block
/// however it was scheduled.  Adding the same burst to numerator and
/// denominator shrinks the block's *relative* scheduling benefit, the
/// way a miss-dominated block's real benefit shrinks, so spikes push
/// borderline-LS blocks below the labeling threshold without inventing
/// benefit anywhere.
///
//===----------------------------------------------------------------------===//

#include "noise/NoiseSource.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cmath>

using namespace schedfilter;

namespace {

/// Tail exponent and support of the burst distribution.  Alpha 1.5 gives
/// a finite-mean, infinite-variance tail (the classic miss-latency
/// shape); bursts span [MinBurst, MaxBurst] cycles.
constexpr double Alpha = 1.5;
constexpr double MinBurst = 8.0;
constexpr double MaxBurst = 4096.0;

class CostSpikes final : public NoiseSource {
public:
  explicit CostSpikes(double Prob) : Prob(Prob) {
    assert(Prob >= 0.0 && Prob <= 1.0 && "parseNoiseStack enforces range");
  }

  const char *name() const override { return "spikes"; }
  uint32_t version() const override { return 1; }
  std::string describe() const override {
    return "spikes:" + formatTrimmed(Prob);
  }

  void perturb(BenchmarkRun &Run, const Rng &Stream) const override {
    for (size_t I = 0; I != Run.Records.size(); ++I) {
      BlockRecord &Rec = Run.Records[I];
      if (Rec.CostNoSched == 0)
        continue; // Empty blocks have nothing to miss on.
      Rng R = Stream.fork(I);
      if (!R.chance(Prob))
        continue;
      uint64_t Burst = sampleBurst(R);
      Rec.CostNoSched += Burst;
      Rec.CostSched += Burst;
    }
  }

private:
  /// Inverse-transform sample of a Pareto(Alpha) truncated to
  /// [MinBurst, MaxBurst]: exactly uniform in the truncated CDF, so the
  /// cap never piles mass at the endpoint.
  uint64_t sampleBurst(Rng &R) const {
    double U = R.uniform();
    double CdfAtMax = 1.0 - std::pow(MinBurst / MaxBurst, Alpha);
    double X = MinBurst * std::pow(1.0 - U * CdfAtMax, -1.0 / Alpha);
    return static_cast<uint64_t>(std::round(X));
  }

  double Prob;
};

} // namespace

std::unique_ptr<NoiseSource> schedfilter::makeCostSpikes(double Prob) {
  return std::make_unique<CostSpikes>(Prob);
}
