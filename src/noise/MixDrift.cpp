//===- noise/MixDrift.cpp - Drifting workload mix -------------------------===//
///
/// \file
/// Time-varying traffic shares for MultiAppService: app A's interleave
/// weight during epoch E is scaled by exp(Amplitude * sin(2*pi*E/period
/// + phase)), with a per-app period and phase drawn once from the drift
/// stream.  Incommensurate per-app periods keep the apps' swings out of
/// lockstep, so the *mix* genuinely rotates rather than breathing in
/// unison.  The factor is a pure function of (stream, epoch, app) --
/// fork(App), draw period and phase, evaluate -- so any epoch can be
/// priced in any order, and Amplitude 0 is exactly factor 1.0.
///
//===----------------------------------------------------------------------===//

#include "noise/NoiseSource.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cmath>

using namespace schedfilter;

namespace {

/// Per-app swing periods land in [MinPeriod, MaxPeriod) epochs: long
/// enough that a mix is stable within an epoch, short enough that a
/// bench-length stream sees several full rotations.
constexpr double MinPeriod = 6.0;
constexpr double MaxPeriod = 24.0;
constexpr double TwoPi = 6.283185307179586;

class MixDrift final : public NoiseSource {
public:
  explicit MixDrift(double Amplitude) : Amplitude(Amplitude) {
    assert(Amplitude >= 0.0 && Amplitude <= 4.0 &&
           "parseNoiseStack enforces range");
  }

  const char *name() const override { return "drift"; }
  uint32_t version() const override { return 1; }
  std::string describe() const override {
    return "drift:" + formatTrimmed(Amplitude);
  }

  bool drifts() const override { return Amplitude != 0.0; }

  double mixWeightFactor(uint64_t Epoch, size_t AppIndex,
                         const Rng &Stream) const override {
    Rng A = Stream.fork(AppIndex);
    double Period = A.uniform(MinPeriod, MaxPeriod);
    double Phase = A.uniform(0.0, TwoPi);
    double E = static_cast<double>(Epoch);
    return std::exp(Amplitude * std::sin(TwoPi * E / Period + Phase));
  }

private:
  double Amplitude;
};

} // namespace

std::unique_ptr<NoiseSource> schedfilter::makeMixDrift(double Amplitude) {
  return std::make_unique<MixDrift>(Amplitude);
}
