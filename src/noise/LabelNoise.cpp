//===- noise/LabelNoise.cpp - Seeded label flips --------------------------===//
///
/// \file
/// Label noise at the Labeler boundary: each instance the threshold rule
/// kept flips LS<->NS with probability P.  Records the rule dropped into
/// the (0, t] noise band stay dropped -- the source corrupts answers, it
/// does not resurrect questions -- so the training-set *size* is
/// invariant under this source and only its class assignment degrades.
///
//===----------------------------------------------------------------------===//

#include "noise/NoiseSource.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace schedfilter;

namespace {

class LabelNoise final : public NoiseSource {
public:
  explicit LabelNoise(double FlipProb) : FlipProb(FlipProb) {
    assert(FlipProb >= 0.0 && FlipProb <= 1.0 &&
           "parseNoiseStack enforces range");
  }

  const char *name() const override { return "labelflip"; }
  uint32_t version() const override { return 1; }
  std::string describe() const override {
    return "labelflip:" + formatTrimmed(FlipProb);
  }

  std::optional<Label> perturbLabel(std::optional<Label> L,
                                    const BlockRecord &, size_t RecordIndex,
                                    const Rng &Stream) const override {
    if (!L)
      return L;
    Rng R = Stream.fork(RecordIndex);
    if (!R.chance(FlipProb))
      return L;
    return *L == Label::LS ? Label::NS : Label::LS;
  }

private:
  double FlipProb;
};

} // namespace

std::unique_ptr<NoiseSource> schedfilter::makeLabelNoise(double FlipProb) {
  return std::make_unique<LabelNoise>(FlipProb);
}
