//===- noise/NoiseStack.cpp - Ordered composition of noise sources ----------===//

#include "noise/NoiseStack.h"

#include "support/StringUtils.h"
#include "target/MachineModel.h"

#include <cmath>
#include <cstdlib>

using namespace schedfilter;

void NoiseSource::perturb(BenchmarkRun &, const Rng &) const {}

std::optional<Label> NoiseSource::perturbLabel(std::optional<Label> L,
                                               const BlockRecord &, size_t,
                                               const Rng &) const {
  return L;
}

double NoiseSource::mixWeightFactor(uint64_t, size_t, const Rng &) const {
  return 1.0;
}

NoiseStack &NoiseStack::add(std::unique_ptr<NoiseSource> S) {
  Sources.push_back(std::move(S));
  return *this;
}

std::string NoiseStack::describe() const {
  if (Sources.empty())
    return "none";
  std::string Out;
  for (const std::unique_ptr<NoiseSource> &S : Sources) {
    if (!Out.empty())
      Out += ",";
    Out += S->describe();
  }
  return Out;
}

void NoiseStack::perturbRun(BenchmarkRun &Run, size_t RunIndex) const {
  for (size_t S = 0; S != Sources.size(); ++S)
    Sources[S]->perturb(Run, laneStream(S, LanePerturb).fork(RunIndex));
}

void NoiseStack::perturbSuite(std::vector<BenchmarkRun> &Suite) const {
  for (size_t B = 0; B != Suite.size(); ++B)
    perturbRun(Suite[B], B);
}

void NoiseStack::perturbSuite(std::vector<BenchmarkRun> &Suite,
                              TaskPool &Pool) const {
  if (Sources.empty())
    return;
  Pool.parallelFor(Suite.size(), [&](size_t B) { perturbRun(Suite[B], B); });
}

Dataset NoiseStack::labelRun(const BenchmarkRun &Run, size_t RunIndex,
                             double ThresholdPct) const {
  if (Sources.empty())
    return buildDataset(Run.Records, ThresholdPct, Run.Name);
  std::vector<Rng> Lanes;
  Lanes.reserve(Sources.size());
  for (size_t S = 0; S != Sources.size(); ++S)
    Lanes.push_back(laneStream(S, LaneLabel).fork(RunIndex));
  LabelTransform T = [&](std::optional<Label> L, const BlockRecord &Rec,
                         size_t I) {
    for (size_t S = 0; S != Sources.size(); ++S)
      L = Sources[S]->perturbLabel(L, Rec, I, Lanes[S]);
    return L;
  };
  return buildDataset(Run.Records, ThresholdPct, Run.Name, T);
}

std::vector<Dataset>
NoiseStack::labelSuite(const std::vector<BenchmarkRun> &Suite,
                       double ThresholdPct) const {
  std::vector<Dataset> Out(Suite.size());
  for (size_t B = 0; B != Suite.size(); ++B)
    Out[B] = labelRun(Suite[B], B, ThresholdPct);
  return Out;
}

std::vector<Dataset>
NoiseStack::labelSuite(const std::vector<BenchmarkRun> &Suite,
                       double ThresholdPct, TaskPool &Pool) const {
  std::vector<Dataset> Out(Suite.size());
  Pool.parallelFor(Suite.size(),
                   [&](size_t B) { Out[B] = labelRun(Suite[B], B, ThresholdPct); });
  return Out;
}

std::function<double(uint64_t, size_t)> NoiseStack::mixDrift() const {
  // Lane streams are captured by value; the source pointers borrow the
  // stack (see the header: the function must not outlive it).
  std::vector<std::pair<const NoiseSource *, Rng>> Drifting;
  for (size_t S = 0; S != Sources.size(); ++S)
    if (Sources[S]->drifts())
      Drifting.emplace_back(Sources[S].get(), laneStream(S, LaneDrift));
  if (Drifting.empty())
    return nullptr;
  return [Drifting](uint64_t Epoch, size_t App) {
    double F = 1.0;
    for (const auto &[Src, Stream] : Drifting)
      F *= Src->mixWeightFactor(Epoch, App, Stream);
    return F;
  };
}

//===----------------------------------------------------------------------===//
// --noise spec parsing
//===----------------------------------------------------------------------===//

std::string schedfilter::knownNoiseSources() {
  return "jitter:SIGMA, mistune:MODEL, labelflip:P, spikes:P, drift:A";
}

namespace {

/// Strict finite decimal in [Lo, Hi], the CommandLine::getDouble
/// contract re-stated for spec fragments.
std::optional<double> parseParam(const std::string &V, double Lo, double Hi) {
  if (V.empty())
    return std::nullopt;
  char *End = nullptr;
  double X = std::strtod(V.c_str(), &End);
  bool Hex = V.find('x') != std::string::npos ||
             V.find('X') != std::string::npos;
  if (Hex || End == V.c_str() || *End != '\0' || !std::isfinite(X) ||
      X < Lo || X > Hi)
    return std::nullopt;
  return X;
}

} // namespace

ParseResult<NoiseStack> schedfilter::parseNoiseStack(const std::string &Spec,
                                                     uint64_t Seed) {
  NoiseStack Stack(Seed);
  if (Spec.empty())
    return Stack;

  std::vector<std::string> Items;
  size_t Start = 0;
  while (true) {
    size_t Comma = Spec.find(',', Start);
    Items.push_back(Spec.substr(Start, Comma - Start));
    if (Comma == std::string::npos)
      break;
    Start = Comma + 1;
  }

  for (size_t I = 0; I != Items.size(); ++I) {
    const std::string &Item = Items[I];
    const size_t Ordinal = I + 1;
    if (Item.empty())
      return ParseError{Ordinal, "empty noise item (known sources: " +
                                     knownNoiseSources() + ")"};
    std::string Name = Item;
    std::string Param;
    bool HasParam = false;
    size_t Colon = Item.find(':');
    if (Colon != std::string::npos) {
      Name = Item.substr(0, Colon);
      Param = Item.substr(Colon + 1);
      HasParam = true;
    }

    auto NumericParam = [&](const char *Spelling, double Lo,
                            double Hi) -> ParseResult<double> {
      if (!HasParam)
        return ParseError{Ordinal, "'" + Name + "' requires a parameter (" +
                                       std::string(Spelling) + ")"};
      std::optional<double> V = parseParam(Param, Lo, Hi);
      if (!V)
        return ParseError{Ordinal,
                          "'" + Name + "' expects a number in [" +
                              formatDouble(Lo, 0) + ", " + formatDouble(Hi, 0) +
                              "], got '" + Param + "'"};
      return *V;
    };

    if (Name == "jitter") {
      ParseResult<double> V = NumericParam("jitter:SIGMA", 0.0, 2.0);
      if (!V)
        return V.error();
      Stack.add(makeLatencyJitter(*V));
    } else if (Name == "mistune") {
      if (!HasParam)
        return ParseError{Ordinal,
                          "'mistune' requires a model name (mistune:MODEL)"};
      if (!MachineModel::byName(Param))
        return ParseError{Ordinal, "'mistune' names unknown model '" + Param +
                                       "' (" + MachineModel::knownNamesList() +
                                       ")"};
      Stack.add(makeModelMisTune(Param));
    } else if (Name == "labelflip") {
      ParseResult<double> V = NumericParam("labelflip:P", 0.0, 1.0);
      if (!V)
        return V.error();
      Stack.add(makeLabelNoise(*V));
    } else if (Name == "spikes") {
      ParseResult<double> V = NumericParam("spikes:P", 0.0, 1.0);
      if (!V)
        return V.error();
      Stack.add(makeCostSpikes(*V));
    } else if (Name == "drift") {
      ParseResult<double> V = NumericParam("drift:A", 0.0, 4.0);
      if (!V)
        return V.error();
      Stack.add(makeMixDrift(*V));
    } else {
      return ParseError{Ordinal, "unknown noise source '" + Name +
                                     "' (known: " + knownNoiseSources() + ")"};
    }
  }
  return Stack;
}
