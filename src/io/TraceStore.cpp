//===- io/TraceStore.cpp - Versioned trace formats (CSV + SFTB1) ------------===//

#include "io/TraceStore.h"

#include "features/Features.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <iterator>
#include <ostream>

using namespace schedfilter;

//===----------------------------------------------------------------------===//
// Wire helpers
//===----------------------------------------------------------------------===//

void wire::putU16(std::string &Out, uint16_t V) {
  for (int I = 0; I != 2; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void wire::putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void wire::putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void wire::putF64(std::string &Out, double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V), "double must be 64-bit");
  std::memcpy(&Bits, &V, sizeof(Bits));
  putU64(Out, Bits);
}

void wire::putString(std::string &Out, const std::string &S) {
  putU32(Out, static_cast<uint32_t>(S.size()));
  Out.append(S);
}

bool wire::getU16(const char *&P, const char *End, uint16_t &V) {
  if (End - P < 2)
    return false;
  V = 0;
  for (int I = 0; I != 2; ++I)
    V = static_cast<uint16_t>(V | static_cast<uint16_t>(
                                      static_cast<unsigned char>(P[I]))
                                      << (8 * I));
  P += 2;
  return true;
}

bool wire::getU32(const char *&P, const char *End, uint32_t &V) {
  if (End - P < 4)
    return false;
  V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(static_cast<unsigned char>(P[I])) << (8 * I);
  P += 4;
  return true;
}

bool wire::getU64(const char *&P, const char *End, uint64_t &V) {
  if (End - P < 8)
    return false;
  V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(static_cast<unsigned char>(P[I])) << (8 * I);
  P += 8;
  return true;
}

bool wire::getF64(const char *&P, const char *End, double &V) {
  uint64_t Bits;
  if (!getU64(P, End, Bits))
    return false;
  std::memcpy(&V, &Bits, sizeof(V));
  return true;
}

bool wire::getString(const char *&P, const char *End, std::string &S) {
  uint32_t Len;
  if (!getU32(P, End, Len) || static_cast<size_t>(End - P) < Len)
    return false;
  S.assign(P, Len);
  P += Len;
  return true;
}

uint64_t wire::fnv1a(const char *Data, size_t Size) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (size_t I = 0; I != Size; ++I) {
    H ^= static_cast<unsigned char>(Data[I]);
    H *= 0x100000001b3ull;
  }
  return H;
}

std::string wire::encodeRecords(const std::vector<BlockRecord> &Records) {
  std::string Payload;
  Payload.reserve(Records.size() * (NumFeatures * 8 + 24));
  for (const BlockRecord &R : Records) {
    for (unsigned F = 0; F != NumFeatures; ++F)
      putF64(Payload, R.X[F]);
    putU64(Payload, R.CostNoSched);
    putU64(Payload, R.CostSched);
    putU64(Payload, R.ExecCount);
  }
  return Payload;
}

ParseResult<std::vector<BlockRecord>>
wire::decodeRecords(const char *P, const char *End, uint64_t Count) {
  std::vector<BlockRecord> Records;
  Records.reserve(Count);
  for (uint64_t I = 0; I != Count; ++I) {
    BlockRecord R;
    bool Ok = true;
    for (unsigned F = 0; F != NumFeatures && Ok; ++F)
      Ok = getF64(P, End, R.X[F]);
    Ok = Ok && getU64(P, End, R.CostNoSched) && getU64(P, End, R.CostSched) &&
         getU64(P, End, R.ExecCount);
    if (!Ok)
      return ParseError{static_cast<size_t>(I + 1),
                        "record payload truncated"};
    Records.push_back(R);
  }
  return Records;
}

//===----------------------------------------------------------------------===//
// Shared formatting
//===----------------------------------------------------------------------===//

std::string schedfilter::formatDoubleShortest(double V) {
  char Buf[40];
  for (int Prec = 15; Prec <= 17; ++Prec) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Prec, V);
    if (std::strtod(Buf, nullptr) == V)
      break;
  }
  return Buf;
}

//===----------------------------------------------------------------------===//
// CSV
//===----------------------------------------------------------------------===//

namespace {

/// First line of an SFTB1 stream (the header-exported constant, locally
/// named for the readers/writers below).
const char *const BinaryMagicLine = TraceBinaryMagic;

std::string expectedHeader() {
  std::string H;
  for (unsigned F = 0; F != NumFeatures; ++F) {
    H += getFeatureName(F);
    H += ',';
  }
  H += "costNoSched,costSched,execCount";
  return H;
}

void stripCR(std::string &Line) {
  if (!Line.empty() && Line.back() == '\r')
    Line.pop_back();
}

void splitCells(const std::string &Line, std::vector<std::string> &Cells) {
  Cells.clear();
  size_t Start = 0;
  while (true) {
    size_t Comma = Line.find(',', Start);
    if (Comma == std::string::npos) {
      Cells.push_back(Line.substr(Start));
      return;
    }
    Cells.push_back(Line.substr(Start, Comma - Start));
    Start = Comma + 1;
  }
}

bool parseDoubleCell(const std::string &Cell, double &Out) {
  if (Cell.empty())
    return false;
  char *End = nullptr;
  Out = std::strtod(Cell.c_str(), &End);
  return End == Cell.c_str() + Cell.size();
}

/// Strict unsigned-integer cell parse: digits only (no sign, fraction or
/// exponent), must fit uint64_t.  Returns the reason on failure, "" on
/// success -- the silent-truncation fix: "7154.5" and 2^64 used to be
/// accepted and cast through strtod.
std::string parseU64Cell(const std::string &Cell, const char *ColName,
                         uint64_t &Out) {
  if (Cell.empty())
    return std::string(ColName) + " cell is empty";
  for (char C : Cell)
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return std::string(ColName) + " cell '" + Cell +
             "' is not an unsigned integer";
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Cell.c_str(), &End, 10);
  if (errno == ERANGE)
    return std::string(ColName) + " cell '" + Cell + "' overflows uint64_t";
  Out = V;
  return "";
}

ParseResult<std::vector<BlockRecord>> readTraceCsvBody(std::istream &IS,
                                                       std::string Header) {
  if (Header != expectedHeader())
    return ParseError{1, "bad trace header (expected '" + expectedHeader() +
                             "')"};

  std::vector<BlockRecord> Records;
  std::vector<std::string> Cells;
  std::string Line;
  size_t LineNo = 1;
  const size_t ExpectedCells = NumFeatures + 3;
  while (std::getline(IS, Line)) {
    ++LineNo;
    stripCR(Line);
    if (Line.empty())
      continue;
    splitCells(Line, Cells);
    if (Cells.size() != ExpectedCells)
      return ParseError{LineNo, "row has " + std::to_string(Cells.size()) +
                                    " cells, expected " +
                                    std::to_string(ExpectedCells)};
    BlockRecord R;
    for (unsigned F = 0; F != NumFeatures; ++F)
      if (!parseDoubleCell(Cells[F], R.X[F]))
        return ParseError{LineNo, std::string(getFeatureName(F)) + " cell '" +
                                      Cells[F] + "' is not a number"};
    const char *Cols[3] = {"costNoSched", "costSched", "execCount"};
    uint64_t *Dsts[3] = {&R.CostNoSched, &R.CostSched, &R.ExecCount};
    for (int I = 0; I != 3; ++I) {
      std::string Why = parseU64Cell(Cells[NumFeatures + I], Cols[I], *Dsts[I]);
      if (!Why.empty())
        return ParseError{LineNo, Why};
    }
    Records.push_back(R);
  }
  return Records;
}

//===----------------------------------------------------------------------===//
// SFTB1
//===----------------------------------------------------------------------===//

ParseResult<std::vector<BlockRecord>> readTraceBinaryBody(std::istream &IS) {
  std::string Rest((std::istreambuf_iterator<char>(IS)),
                   std::istreambuf_iterator<char>());
  const char *P = Rest.data();
  const char *End = P + Rest.size();

  uint16_t FeatCount;
  uint64_t Count, Checksum;
  if (!wire::getU16(P, End, FeatCount) || !wire::getU64(P, End, Count) ||
      !wire::getU64(P, End, Checksum))
    return ParseError{0, "truncated SFTB1 header"};
  if (FeatCount != NumFeatures)
    return ParseError{0, "SFTB1 trace has " + std::to_string(FeatCount) +
                             " features per record, this build expects " +
                             std::to_string(static_cast<unsigned>(
                                 NumFeatures))};

  const uint64_t RecordSize = NumFeatures * 8 + 24;
  const uint64_t Avail = static_cast<uint64_t>(End - P);
  if (Count > Avail / RecordSize || Count * RecordSize > Avail)
    return ParseError{0, "SFTB1 payload truncated: header promises " +
                             std::to_string(Count) + " records, only " +
                             std::to_string(Avail) + " payload bytes"};
  if (Count * RecordSize < Avail)
    return ParseError{0, "SFTB1 payload has " +
                             std::to_string(Avail - Count * RecordSize) +
                             " trailing bytes"};
  if (wire::fnv1a(P, static_cast<size_t>(Avail)) != Checksum)
    return ParseError{0, "SFTB1 checksum mismatch (corrupt payload)"};
  return wire::decodeRecords(P, End, Count);
}

} // namespace

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

void schedfilter::writeTrace(const std::vector<BlockRecord> &Records,
                             std::ostream &OS, TraceFormat Format) {
  if (Format == TraceFormat::Csv) {
    OS << expectedHeader() << '\n';
    for (const BlockRecord &R : Records) {
      for (unsigned F = 0; F != NumFeatures; ++F)
        OS << formatDoubleShortest(R.X[F]) << ',';
      OS << R.CostNoSched << ',' << R.CostSched << ',' << R.ExecCount << '\n';
    }
    return;
  }

  std::string Payload = wire::encodeRecords(Records);
  std::string Header(BinaryMagicLine);
  Header += '\n';
  wire::putU16(Header, NumFeatures);
  wire::putU64(Header, Records.size());
  wire::putU64(Header, wire::fnv1a(Payload.data(), Payload.size()));
  OS.write(Header.data(), static_cast<std::streamsize>(Header.size()));
  OS.write(Payload.data(), static_cast<std::streamsize>(Payload.size()));
}

ParseResult<std::vector<BlockRecord>> schedfilter::readTrace(std::istream &IS) {
  std::string First;
  if (!std::getline(IS, First))
    return ParseError{0, "empty input (expected a trace header or SFTB1 "
                         "magic)"};
  if (First == BinaryMagicLine)
    return readTraceBinaryBody(IS);
  stripCR(First);
  return readTraceCsvBody(IS, std::move(First));
}

ParseResult<std::vector<BlockRecord>>
schedfilter::readTraceFile(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return ParseError{0, "cannot open file"}; // callers prefix the path
  return readTrace(IS);
}
