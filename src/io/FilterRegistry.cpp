//===- io/FilterRegistry.cpp - On-disk filter-version lineage ---------------===//

#include "io/FilterRegistry.h"

#include "io/TraceStore.h"
#include "ml/Serialization.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

#include <unistd.h>

using namespace schedfilter;

FilterRegistry::FilterRegistry(std::string Directory)
    : Dir(std::move(Directory)) {}

std::string FilterRegistry::entryPath(uint32_t Version) const {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "v%06u.sffr", Version);
  return Dir + "/" + Name;
}

bool FilterRegistry::store(const FilterVersionMeta &Meta,
                           const RuleSet &Rules) {
  std::string RulesText;
  {
    std::ostringstream OS;
    writeRuleSet(Rules, OS);
    RulesText = OS.str();
  }

  std::string Body;
  wire::putU32(Body, Meta.Version);
  wire::putU32(Body, Meta.ParentVersion);
  wire::putU64(Body, Meta.TriggerTick);
  wire::putU64(Body, Meta.SessionSeed);
  wire::putU64(Body, Meta.CorpusRecords);
  wire::putF64(Body, Meta.ThresholdPct);
  wire::putString(Body, Meta.Model);
  wire::putString(Body, Meta.Workload);
  wire::putString(Body, RulesText);

  std::string Bytes(FilterRegistryMagic);
  Bytes += '\n';
  wire::putU64(Bytes, wire::fnv1a(Body.data(), Body.size()));
  Bytes += Body;

  std::error_code EC;
  std::filesystem::create_directories(Dir, EC); // best effort; open reports

  // Unique temp name, then an atomic rename -- the CorpusCache idiom: a
  // concurrent reader sees the old entry or the new one, never torn bytes.
  static std::atomic<uint64_t> StoreSerial{0};
  std::string Path = entryPath(Meta.Version);
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(StoreSerial.fetch_add(1));
  {
    std::ofstream OS(Tmp, std::ios::binary | std::ios::trunc);
    if (!OS) {
      ++S.StoreFailures;
      return false;
    }
    OS.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    OS.flush();
    if (!OS) {
      OS.close();
      std::filesystem::remove(Tmp, EC);
      ++S.StoreFailures;
      return false;
    }
  }
  std::filesystem::rename(Tmp, Path, EC);
  if (EC) {
    std::filesystem::remove(Tmp, EC);
    ++S.StoreFailures;
    return false;
  }

  ++S.Stores;
  return true;
}

ParseResult<RegistryEntry> FilterRegistry::load(uint32_t Version) const {
  std::string Path = entryPath(Version);
  auto Fail = [&](const std::string &Why) {
    return ParseResult<RegistryEntry>(ParseError{0, Path + ": " + Why});
  };

  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return Fail("cannot open registry entry");

  std::string Bytes((std::istreambuf_iterator<char>(IS)),
                    std::istreambuf_iterator<char>());
  const char *P = Bytes.data();
  const char *End = P + Bytes.size();

  // Magic line.
  const size_t MagicLen = sizeof(FilterRegistryMagic); // includes '\n' slot
  if (Bytes.size() < MagicLen ||
      Bytes.compare(0, MagicLen - 1, FilterRegistryMagic) != 0 ||
      Bytes[MagicLen - 1] != '\n')
    return Fail("not an SFFR1 registry entry");
  P += MagicLen;

  // Whole-body checksum before believing a single field.
  uint64_t Checksum;
  if (!wire::getU64(P, End, Checksum))
    return Fail("truncated entry (no checksum)");
  if (wire::fnv1a(P, static_cast<size_t>(End - P)) != Checksum)
    return Fail("checksum mismatch (corrupt or truncated entry)");

  RegistryEntry E;
  std::string RulesText;
  if (!wire::getU32(P, End, E.Meta.Version) ||
      !wire::getU32(P, End, E.Meta.ParentVersion) ||
      !wire::getU64(P, End, E.Meta.TriggerTick) ||
      !wire::getU64(P, End, E.Meta.SessionSeed) ||
      !wire::getU64(P, End, E.Meta.CorpusRecords) ||
      !wire::getF64(P, End, E.Meta.ThresholdPct) ||
      !wire::getString(P, End, E.Meta.Model) ||
      !wire::getString(P, End, E.Meta.Workload) ||
      !wire::getString(P, End, RulesText))
    return Fail("truncated entry body");
  if (P != End)
    return Fail("trailing bytes after entry body");

  // Embedded version must match the filename's: an entry renamed onto
  // another version number must not be believed.
  if (E.Meta.Version != Version)
    return Fail("embedded version " + std::to_string(E.Meta.Version) +
                " does not match requested version " +
                std::to_string(Version));

  std::istringstream RS(RulesText);
  ParseResult<RuleSet> Rules = readRuleSet(RS);
  if (!Rules)
    return Fail("bad rule set in entry: " + Rules.error().str());
  E.Rules = std::move(*Rules);
  return ParseResult<RegistryEntry>(std::move(E));
}

std::vector<uint32_t> FilterRegistry::listVersions() const {
  std::vector<uint32_t> Versions;
  std::error_code EC;
  std::filesystem::directory_iterator It(Dir, EC);
  if (EC)
    return Versions;
  for (const auto &Entry : It) {
    std::string Name = Entry.path().filename().string();
    // v%06u.sffr and nothing else: 12 chars, digits in [1,7).
    if (Name.size() != 12 || Name[0] != 'v' ||
        Name.compare(7, 5, ".sffr") != 0)
      continue;
    uint32_t V = 0;
    bool AllDigits = true;
    for (size_t I = 1; I != 7; ++I) {
      if (Name[I] < '0' || Name[I] > '9') {
        AllDigits = false;
        break;
      }
      V = V * 10 + static_cast<uint32_t>(Name[I] - '0');
    }
    if (AllDigits)
      Versions.push_back(V);
  }
  std::sort(Versions.begin(), Versions.end());
  return Versions;
}
