//===- io/TraceStore.h - Versioned trace formats (CSV + SFTB1) --*- C++ -*-===//
///
/// \file
/// Reading and writing the raw trace the instrumented scheduler produces
/// (§2.2): one row per block with the Table 1 features, the simulated
/// cost without and with list scheduling, and the profile weight.  Having
/// the trace on disk decouples the (expensive) tracing run from the
/// (cheap, repeatable) labeling + learning experiments, exactly as the
/// paper's offline procedure does.
///
/// Two interchangeable encodings, auto-detected on read:
///
///   CSV (human readable)  -- a header row naming every column, then one
///   row per block.  Doubles are printed with the shortest decimal that
///   parses back bit-exactly, so CSV round-trips records exactly too.
///   CRLF line endings are accepted on every line.  Cost and exec-count
///   cells must be unsigned integers: fractional, negative, or
///   uint64_t-overflowing cells are rejected with a line diagnostic
///   rather than silently truncated.
///
///   SFTB1 (binary interchange) -- little-endian, for fast exact
///   round-trips between tools and the corpus cache:
///
///     bytes 0..5   magic "SFTB1\n"
///     u16          feature count (must equal NumFeatures)
///     u64          record count
///     u64          FNV-1a 64 checksum of the payload
///     payload      per record: NumFeatures f64 (IEEE-754 bit pattern),
///                  then costNoSched, costSched, execCount as u64
///
/// Bumping either format is a new magic/header ("SFTB2", a "v2" header
/// line), never a silent change: readers must keep rejecting what they
/// cannot parse, with a diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_IO_TRACESTORE_H
#define SCHEDFILTER_IO_TRACESTORE_H

#include "io/ParseResult.h"
#include "ml/Labeler.h"

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace schedfilter {

/// Magic of the binary trace format, the first line of every SFTB1 stream.
/// Version bumps change this string (a new magic, never a silent format
/// change); the sf-* tools report it under --version so a support ticket
/// can name the exact artifact format in play.
inline constexpr char TraceBinaryMagic[] = "SFTB1";

/// On-disk trace encodings.  Every reader auto-detects; writers choose.
enum class TraceFormat {
  Csv,    ///< human-readable, header row + one CSV row per block
  Binary, ///< SFTB1: little-endian, checksummed, bit-exact
};

/// Writes \p Records to \p OS in \p Format.  For Binary, \p OS must have
/// been opened in binary mode.
void writeTrace(const std::vector<BlockRecord> &Records, std::ostream &OS,
                TraceFormat Format = TraceFormat::Csv);

/// Parses a trace written by writeTrace, auto-detecting the format from
/// the first line ("SFTB1" magic => binary, else the CSV header).  On
/// failure the ParseError pinpoints the offending line (CSV) or record /
/// header field (binary).
ParseResult<std::vector<BlockRecord>> readTrace(std::istream &IS);

/// Opens \p Path in binary mode and reads it with readTrace.  A file
/// that cannot be opened is a (non-positional) ParseError.
ParseResult<std::vector<BlockRecord>> readTraceFile(const std::string &Path);

/// The shortest decimal representation of \p V that strtod parses back
/// bit-exactly (tries %.15g, %.16g, %.17g).  Used for CSV cells and
/// anywhere else a double must survive a text round trip.
std::string formatDoubleShortest(double V);

/// Low-level little-endian wire helpers shared by the SFTB1 trace format
/// and the corpus cache's SFCC1 entries.
namespace wire {

void putU16(std::string &Out, uint16_t V);
void putU32(std::string &Out, uint32_t V);
void putU64(std::string &Out, uint64_t V);
void putF64(std::string &Out, double V);
void putString(std::string &Out, const std::string &S); ///< u32 length + bytes

/// Cursor-based readers: advance \p P, fail (return false) on underrun.
bool getU16(const char *&P, const char *End, uint16_t &V);
bool getU32(const char *&P, const char *End, uint32_t &V);
bool getU64(const char *&P, const char *End, uint64_t &V);
bool getF64(const char *&P, const char *End, double &V);
bool getString(const char *&P, const char *End, std::string &S);

/// FNV-1a 64-bit over \p Size bytes.
uint64_t fnv1a(const char *Data, size_t Size);

/// Encodes \p Records as the SFTB1/SFCC1 record payload (no header).
std::string encodeRecords(const std::vector<BlockRecord> &Records);

/// Decodes \p Count records from a payload previously produced by
/// encodeRecords; the ParseError's Line is the 1-based record ordinal.
ParseResult<std::vector<BlockRecord>>
decodeRecords(const char *P, const char *End, uint64_t Count);

} // namespace wire

} // namespace schedfilter

#endif // SCHEDFILTER_IO_TRACESTORE_H
