//===- io/FilterRegistry.h - On-disk filter-version lineage -----*- C++ -*-===//
///
/// \file
/// Persistence for the online-serving loop's filter lineage: one SFFR1
/// file per installed filter version, so a serve run's adaptation history
/// can be inspected, exported (sf-train --from-registry), and byte-diffed
/// across runs -- the registry directory is part of the deterministic
/// contract (identical bytes at any --jobs and cache temperature).
///
/// Format (SFFR1), following the SFCC1 never-trust-a-file discipline:
///
///   SFFR1\n
///   u64  FNV-1a checksum of everything after this field
///   u32  Version          (embedded and verified against the filename)
///   u32  ParentVersion
///   u64  TriggerTick      (virtual tick of the retrain trigger)
///   u64  SessionSeed      (the serve run's stream seed)
///   u64  CorpusRecords    (corpus size the version trained on)
///   f64  ThresholdPct     (labeling threshold)
///   str  Model
///   str  Workload
///   str  RulesText        (the v1 text format; %.17g thresholds)
///
/// Entries are named v%06u.sffr inside the registry directory.  Loading
/// validates magic, checksum, embedded version, and rule-set syntax; any
/// mismatch is a hard parse error (an entry renamed onto another version
/// number must not be believed).  Stores write a unique temp file and
/// atomically rename, the CorpusCache idiom.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_IO_FILTERREGISTRY_H
#define SCHEDFILTER_IO_FILTERREGISTRY_H

#include "io/ParseResult.h"
#include "ml/Rule.h"

#include <cstdint>
#include <string>
#include <vector>

namespace schedfilter {

/// Magic line of a registry entry (version suffix bumps on layout change).
inline constexpr char FilterRegistryMagic[] = "SFFR1";

/// Provenance stamped on every persisted filter version.
struct FilterVersionMeta {
  uint32_t Version = 0;
  uint32_t ParentVersion = 0;
  uint64_t TriggerTick = 0;
  uint64_t SessionSeed = 0;
  uint64_t CorpusRecords = 0;
  double ThresholdPct = 0.0;
  std::string Model;
  std::string Workload;
};

/// One loaded entry: metadata plus the version's rule set.
struct RegistryEntry {
  FilterVersionMeta Meta;
  RuleSet Rules{Label::NS};
};

/// A directory of SFFR1 entries.  Not thread-safe: the serving loop
/// stores from its serial install path only, and the inspection tools are
/// single-threaded.
class FilterRegistry {
public:
  explicit FilterRegistry(std::string Directory);

  const std::string &directory() const { return Dir; }

  /// Path of version \p V's entry (v%06u.sffr under the directory).
  std::string entryPath(uint32_t Version) const;

  /// Persists one version.  Creates the directory on first store.
  /// Returns false (and counts a StoreFailure) on any I/O error.
  bool store(const FilterVersionMeta &Meta, const RuleSet &Rules);

  /// Loads version \p Version, validating the full ladder: magic,
  /// checksum, embedded version == requested, rule-set syntax.  Errors
  /// carry the entry path and a specific reason.
  ParseResult<RegistryEntry> load(uint32_t Version) const;

  /// All version numbers present in the directory (files matching the
  /// v%06u.sffr shape), sorted ascending.  A missing directory is an
  /// empty lineage, not an error.
  std::vector<uint32_t> listVersions() const;

  struct Stats {
    uint64_t Stores = 0;
    uint64_t StoreFailures = 0;
  };
  Stats stats() const { return S; }

private:
  std::string Dir;
  Stats S;
};

} // namespace schedfilter

#endif // SCHEDFILTER_IO_FILTERREGISTRY_H
