//===- io/CorpusCache.cpp - On-disk corpus of traced benchmarks -------------===//

#include "io/CorpusCache.h"

#include "io/TraceStore.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>

#include <unistd.h>

using namespace schedfilter;

namespace {

/// Benchmark/model names are short identifiers, but never trust them as
/// path components: keep [A-Za-z0-9._-], replace the rest.
std::string sanitize(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    bool Safe = std::isalnum(static_cast<unsigned char>(C)) || C == '.' ||
                C == '_' || C == '-';
    Out.push_back(Safe ? C : '_');
  }
  return Out.empty() ? "unnamed" : Out;
}

std::string hex64(uint64_t V) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I, V >>= 4)
    Out[static_cast<size_t>(I)] = Digits[V & 0xf];
  return Out;
}

void putReport(std::string &Out, const CompileReport &R) {
  wire::putU32(Out, static_cast<uint32_t>(R.Policy));
  wire::putU64(Out, R.NumBlocks);
  wire::putU64(Out, R.NumScheduled);
  wire::putF64(Out, R.SchedulingSeconds);
  wire::putU64(Out, R.SchedulingWork);
  wire::putU64(Out, R.FilterWork);
  wire::putF64(Out, R.SimulatedTime);
}

bool getReport(const char *&P, const char *End, CompileReport &R) {
  uint32_t Policy;
  if (!wire::getU32(P, End, Policy) || Policy > 2)
    return false;
  R.Policy = static_cast<SchedulingPolicy>(Policy);
  return wire::getU64(P, End, R.NumBlocks) &&
         wire::getU64(P, End, R.NumScheduled) &&
         wire::getF64(P, End, R.SchedulingSeconds) &&
         wire::getU64(P, End, R.SchedulingWork) &&
         wire::getU64(P, End, R.FilterWork) &&
         wire::getF64(P, End, R.SimulatedTime);
}

} // namespace

CorpusCache::CorpusCache(std::string Directory) : Dir(std::move(Directory)) {}

std::string CorpusCache::entryPath(const CorpusKey &K) const {
  std::string FamilySeg = K.Family.empty() ? "" : sanitize(K.Family) + "__";
  return Dir + "/" + sanitize(K.Benchmark) + "__" + sanitize(K.Model) +
         "__" + FamilySeg + "g" + std::to_string(K.GeneratorVersion) + "p" +
         std::to_string(K.PipelineVersion) + "__" +
         hex64(K.SpecFingerprint) + ".sfcc";
}

std::optional<CachedRun>
CorpusCache::load(const CorpusKey &K,
                  std::optional<uint64_t> ExpectedRecords) {
  std::ifstream IS(entryPath(K), std::ios::binary);
  if (!IS) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++S.Misses;
    return std::nullopt;
  }

  auto Invalid = [&]() -> std::optional<CachedRun> {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++S.Misses;
    ++S.InvalidEntries;
    return std::nullopt;
  };

  std::string Bytes((std::istreambuf_iterator<char>(IS)),
                    std::istreambuf_iterator<char>());
  const char *P = Bytes.data();
  const char *End = P + Bytes.size();

  // Magic line.
  const size_t MagicLen = sizeof(CorpusEntryMagic); // includes the '\n' slot
  if (Bytes.size() < MagicLen ||
      Bytes.compare(0, MagicLen - 1, CorpusEntryMagic) != 0 ||
      Bytes[MagicLen - 1] != '\n')
    return Invalid();
  P += MagicLen;

  // Whole-body checksum: everything after this field -- key, reports and
  // records alike.  A flipped bit in the report block must be as fatal
  // as one in the payload.
  uint64_t Checksum;
  if (!wire::getU64(P, End, Checksum) ||
      wire::fnv1a(P, static_cast<size_t>(End - P)) != Checksum)
    return Invalid();

  // Header: the full key, embedded and verified -- an entry renamed onto
  // another key must not be believed.
  uint16_t FeatCount;
  uint32_t GenVersion, PipeVersion;
  uint64_t Fingerprint;
  std::string Bench, Model, Family;
  if (!wire::getU16(P, End, FeatCount) || FeatCount != NumFeatures ||
      !wire::getU32(P, End, GenVersion) ||
      !wire::getU32(P, End, PipeVersion) ||
      !wire::getU64(P, End, Fingerprint) ||
      !wire::getString(P, End, Bench) || !wire::getString(P, End, Model) ||
      !wire::getString(P, End, Family))
    return Invalid();
  if (GenVersion != K.GeneratorVersion ||
      PipeVersion != K.PipelineVersion ||
      Fingerprint != K.SpecFingerprint || Bench != K.Benchmark ||
      Model != K.Model || Family != K.Family)
    return Invalid();

  CachedRun Run;
  if (!getReport(P, End, Run.NeverReport) ||
      !getReport(P, End, Run.AlwaysReport))
    return Invalid();

  uint64_t Count;
  if (!wire::getU64(P, End, Count))
    return Invalid();
  if (ExpectedRecords && Count != *ExpectedRecords)
    return Invalid();
  const uint64_t RecordSize = NumFeatures * 8 + 24;
  const uint64_t Avail = static_cast<uint64_t>(End - P);
  if (Count > Avail / RecordSize || Count * RecordSize != Avail)
    return Invalid();
  ParseResult<std::vector<BlockRecord>> Records =
      wire::decodeRecords(P, End, Count);
  if (!Records)
    return Invalid();
  Run.Records = std::move(*Records);

  std::lock_guard<std::mutex> Lock(Mutex);
  ++S.Hits;
  return Run;
}

bool CorpusCache::store(const CorpusKey &K,
                        const std::vector<BlockRecord> &Records,
                        const CompileReport &NeverReport,
                        const CompileReport &AlwaysReport) {
  auto Failed = [&]() {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++S.StoreFailures;
    return false;
  };

  std::string Body;
  wire::putU16(Body, NumFeatures);
  wire::putU32(Body, K.GeneratorVersion);
  wire::putU32(Body, K.PipelineVersion);
  wire::putU64(Body, K.SpecFingerprint);
  wire::putString(Body, K.Benchmark);
  wire::putString(Body, K.Model);
  wire::putString(Body, K.Family);
  putReport(Body, NeverReport);
  putReport(Body, AlwaysReport);
  wire::putU64(Body, Records.size());
  Body += wire::encodeRecords(Records);

  std::string Bytes(CorpusEntryMagic);
  Bytes += '\n';
  wire::putU64(Bytes, wire::fnv1a(Body.data(), Body.size()));
  Bytes += Body;

  std::error_code EC;
  std::filesystem::create_directories(Dir, EC); // best effort; open reports

  // Unique temp name per process and store call, then an atomic rename:
  // a concurrent reader sees the old entry or the new one, never a torn
  // file.
  static std::atomic<uint64_t> StoreSerial{0};
  std::string Path = entryPath(K);
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(StoreSerial.fetch_add(1));
  {
    std::ofstream OS(Tmp, std::ios::binary | std::ios::trunc);
    if (!OS)
      return Failed();
    OS.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    OS.flush();
    if (!OS) {
      OS.close();
      std::filesystem::remove(Tmp, EC);
      return Failed();
    }
  }
  std::filesystem::rename(Tmp, Path, EC);
  if (EC) {
    std::filesystem::remove(Tmp, EC);
    return Failed();
  }

  std::lock_guard<std::mutex> Lock(Mutex);
  ++S.Stores;
  return true;
}

CorpusCache::Stats CorpusCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return S;
}

std::string CorpusCache::defaultDirectory() {
  if (const char *E = std::getenv("SCHEDFILTER_CORPUS_DIR"))
    return E; // empty value = explicitly disabled
  if (const char *X = std::getenv("XDG_CACHE_HOME"))
    if (*X)
      return std::string(X) + "/schedfilter/corpus";
  if (const char *H = std::getenv("HOME"))
    if (*H)
      return std::string(H) + "/.cache/schedfilter/corpus";
  return "";
}
