//===- io/CorpusCache.h - On-disk corpus of traced benchmarks ---*- C++ -*-===//
///
/// \file
/// The per-machine corpus cache: every suite-level driver traces each
/// benchmark once, then loads bit-identical records (and the two
/// fixed-policy compile reports) from disk thereafter.  Tracing dominates
/// the wall time of every bench driver -- the full SPECjvm98 stand-in is
/// 8,827 blocks, each scheduled and simulated twice -- and its output is a
/// pure function of the cache key, so a warm run skips the whole phase.
///
/// An entry is keyed by (benchmark name, machine-model name, workload
/// family, per-family generator version, trace-pipeline version,
/// benchmark-spec fingerprint):
///   - Family + GeneratorVersion come from the benchmark's registered
///     WorkloadFamily (workloads/WorkloadFamily.h): each family versions
///     its own program synthesis, so bumping one family's version
///     invalidates that family's corpora and leaves every other family
///     warm.  TracePipelineVersion (harness/Experiments.h) must be
///     bumped by any change to the scheduler, simulator or machine-model
///     tables the records are computed with, and invalidates every
///     cached corpus at once.
///   - The spec fingerprint hashes every BenchmarkSpec field, so a
///     modified spec (a shrunken test suite, an ablation variant) can
///     never collide with the stock benchmark of the same name.
///
/// Entries are single files in the SFCC1 format: after the magic line,
/// an FNV-1a checksum covering the whole remaining body -- the embedded
/// key (verified on load: a renamed file cannot lie about its contents),
/// the NS/LS compile reports, and the SFTB1-encoded record payload
/// (io/TraceStore.h).  Loads never trust a file: any mismatch -- magic,
/// checksum, key, feature count, size -- counts as a miss and the
/// benchmark is retraced and the entry rewritten.  Stores write to a
/// temporary file and rename, so concurrent drivers only ever observe
/// complete entries.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_IO_CORPUSCACHE_H
#define SCHEDFILTER_IO_CORPUSCACHE_H

#include "filter/Pipeline.h"
#include "ml/Labeler.h"

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace schedfilter {

/// Magic of the corpus-entry format, the first line of every SFCC1 entry
/// file.  Version bumps change this string (a new magic, never a silent
/// format change); the sf-* tools report it under --version so a support
/// ticket can name the exact artifact format in play.
inline constexpr char CorpusEntryMagic[] = "SFCC1";

/// Identity of one traced benchmark corpus.
struct CorpusKey {
  std::string Benchmark;        ///< BenchmarkSpec::Name
  std::string Model;            ///< MachineModel::getName()
  uint32_t GeneratorVersion = 0; ///< the family's version()
  uint32_t PipelineVersion = 0;  ///< harness/Experiments.h
  uint64_t SpecFingerprint = 0;  ///< specFingerprint(Spec)
  std::string Family;            ///< BenchmarkSpec::Family ("" pre-registry)
};

/// What generateSuiteData produces per benchmark, minus the Program
/// (regenerated deterministically from the spec at load time).
struct CachedRun {
  std::vector<BlockRecord> Records;
  CompileReport NeverReport;
  CompileReport AlwaysReport;
};

/// Thread-safe on-disk cache of CachedRun entries.  Per-key file I/O is
/// lock-free (suite keys are distinct); only the counters share a mutex.
class CorpusCache {
public:
  explicit CorpusCache(std::string Directory);

  const std::string &directory() const { return Dir; }

  /// The entry file for \p K:
  /// <dir>/<bench>__<model>__<family>__g<gen>p<pipe>__<hash>.sfcc
  /// (the family segment is omitted for family-less keys, which keep
  /// their historical paths).
  std::string entryPath(const CorpusKey &K) const;

  /// Loads the entry for \p K.  nullopt on a cold miss or on any
  /// validation failure (counted separately as InvalidEntries) -- a hit
  /// is only ever reported for an entry that passed every check.  When
  /// \p ExpectedRecords is given, an entry with any other record count
  /// is invalid too (the engine passes the regenerated program's block
  /// count, catching stale entries that survived an un-bumped version).
  std::optional<CachedRun>
  load(const CorpusKey &K,
       std::optional<uint64_t> ExpectedRecords = std::nullopt);

  /// Writes the entry for \p K (temp file + rename).  Returns false --
  /// and leaves no partial entry behind -- when the directory or file is
  /// unwritable.  The reference overload serializes straight from the
  /// caller's storage (the cold path holds multi-megabyte record
  /// vectors; no copy into a CachedRun needed).
  bool store(const CorpusKey &K, const std::vector<BlockRecord> &Records,
             const CompileReport &NeverReport,
             const CompileReport &AlwaysReport);
  bool store(const CorpusKey &K, const CachedRun &Run) {
    return store(K, Run.Records, Run.NeverReport, Run.AlwaysReport);
  }

  /// Hit/miss accounting, for tests and for --verbose style reporting.
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;         ///< includes invalid entries
    uint64_t InvalidEntries = 0; ///< present but failed validation
    uint64_t Stores = 0;
    uint64_t StoreFailures = 0;
  };
  Stats stats() const;

  /// The per-machine default: $SCHEDFILTER_CORPUS_DIR if set (empty value
  /// = caching disabled), else $XDG_CACHE_HOME/schedfilter/corpus, else
  /// $HOME/.cache/schedfilter/corpus, else "" (no resolvable location).
  static std::string defaultDirectory();

private:
  std::string Dir;
  mutable std::mutex Mutex;
  Stats S;
};

} // namespace schedfilter

#endif // SCHEDFILTER_IO_CORPUSCACHE_H
