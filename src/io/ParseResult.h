//===- io/ParseResult.h - Diagnostic-carrying parse results -----*- C++ -*-===//
///
/// \file
/// The result type every artifact parser in this repository returns.  A
/// ParseResult<T> is either the parsed value or a ParseError locating the
/// problem, so tools can report "trace.csv:42: costSched cell '7154.5' is
/// not an unsigned integer" instead of a bare "malformed input".
///
/// The accessors mirror std::optional (has_value / operator bool /
/// operator* / operator->), which keeps call sites that only care about
/// success unchanged; callers that report failures add .error().
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_IO_PARSERESULT_H
#define SCHEDFILTER_IO_PARSERESULT_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace schedfilter {

/// Where and why a parse failed.
struct ParseError {
  /// 1-based line number for text formats, 1-based record ordinal for
  /// binary payload errors, 0 when the error is not positional (empty
  /// file, bad magic, bad checksum).
  size_t Line = 0;
  std::string Message;

  /// "line 42: <message>" when positional, else just the message.
  std::string str() const {
    if (Line == 0)
      return Message;
    return "line " + std::to_string(Line) + ": " + Message;
  }
};

/// Either a parsed T or a ParseError; never both, never neither.
template <typename T> class ParseResult {
public:
  ParseResult(T Value) : Value(std::move(Value)) {}
  ParseResult(ParseError E) : Err(std::move(E)) {}

  bool has_value() const { return Value.has_value(); }
  explicit operator bool() const { return has_value(); }

  T &operator*() { return *Value; }
  const T &operator*() const { return *Value; }
  T *operator->() { return &*Value; }
  const T *operator->() const { return &*Value; }
  T &value() { return *Value; }
  const T &value() const { return *Value; }

  const ParseError &error() const {
    assert(Err && "error() on a successful ParseResult");
    return *Err;
  }

private:
  std::optional<T> Value;
  std::optional<ParseError> Err;
};

} // namespace schedfilter

#endif // SCHEDFILTER_IO_PARSERESULT_H
