//===- filter/Pipeline.h - JIT-style compile pass ----------------*- C++ -*-===//
///
/// \file
/// The experiment pipeline: "compile" a program block by block under a
/// scheduling policy, as the paper's JIT presents blocks to its scheduler.
///
/// Three policies, matching §4: NS (never schedule), LS (always run the
/// list scheduler), and L/N (consult the induced filter per block).  The
/// pipeline accounts scheduling effort two ways — measured wall-clock time
/// and deterministic work units — and computes the paper's SIM(P) metric,
/// the sum over blocks of (execution count x simulated cycles) under the
/// order the policy produced.  As in the paper, the cost of computing
/// features and evaluating the heuristic is charged to scheduling effort.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_FILTER_PIPELINE_H
#define SCHEDFILTER_FILTER_PIPELINE_H

#include "filter/ScheduleFilter.h"
#include "mir/Program.h"
#include "sched/ListScheduler.h"
#include "sim/BlockSimulator.h"

#include <optional>

namespace schedfilter {

/// Which blocks get scheduled.
enum class SchedulingPolicy {
  Never,    ///< NS: schedule nothing.
  Always,   ///< LS: schedule every block.
  Filtered, ///< L/N: schedule blocks the induced filter selects.
};

/// Returns "NS", "LS" or "L/N".
const char *getPolicyName(SchedulingPolicy P);

/// Everything measured while compiling one program under one policy.
struct CompileReport {
  SchedulingPolicy Policy = SchedulingPolicy::Never;
  uint64_t NumBlocks = 0;
  uint64_t NumScheduled = 0;

  /// Measured wall-clock scheduling phase time (DAG build + list
  /// scheduling + feature/filter evaluation), seconds.
  double SchedulingSeconds = 0.0;
  /// Deterministic counterpart of SchedulingSeconds (work units).
  uint64_t SchedulingWork = 0;
  /// Portion of SchedulingWork spent on features + rule evaluation.
  uint64_t FilterWork = 0;

  /// The paper's SIM(P): sum over blocks of exec-count x simulated cycles
  /// under the final (possibly rescheduled) order.
  double SimulatedTime = 0.0;
};

/// Compiles \p P under \p Policy on \p Model.  \p Filter must be non-null
/// iff Policy == Filtered.  Every produced schedule is verified against
/// the block's dependence graph (programmatic error if violated).
CompileReport compileProgram(const Program &P, const MachineModel &Model,
                             SchedulingPolicy Policy,
                             ScheduleFilter *Filter = nullptr);

/// Context-reuse variant: identical report, but all per-block scratch
/// (DAG adjacency, ready queues, scoreboards, order buffers) lives in
/// \p Ctx, so compiling block after block -- and program after program
/// with the same context -- performs zero steady-state allocations.
CompileReport compileProgram(const Program &P, const MachineModel &Model,
                             SchedulingPolicy Policy, ScheduleFilter *Filter,
                             SchedContext &Ctx);

// The adaptive (hot-method-only) variant of §3.1 lives in the runtime
// subsystem: runtime/CompileService.h declares compileProgramAdaptive on
// top of the per-method MethodCompiler, bit-compatible with this
// pipeline's accounting.

} // namespace schedfilter

#endif // SCHEDFILTER_FILTER_PIPELINE_H
