//===- filter/ScheduleFilter.cpp - Online whether-to-schedule ---------------===//

#include "filter/ScheduleFilter.h"

#include "sched/SchedContext.h"

using namespace schedfilter;

bool ScheduleFilter::shouldSchedule(const BasicBlock &BB, SchedContext &Ctx) {
  (void)Ctx; // no scratch needed yet; see the header
  return shouldSchedule(BB);
}

bool ScheduleFilter::shouldSchedule(const BasicBlock &BB) {
  // O(1) rejection for blocks no rule can match.
  if (static_cast<double>(BB.size()) < BBLenGate) {
    ++Work;
    bool Schedule = Rules.getDefaultClass() == Label::LS;
    if (Schedule)
      ++NumLS;
    else
      ++NumNS;
    return Schedule;
  }

  FeatureVector X = extractFeatures(BB);
  Work += featureExtractionWork(BB);
  Work += Rules.predictionWork(X);
  bool Schedule = Rules.predict(X) == Label::LS;
  if (Schedule)
    ++NumLS;
  else
    ++NumNS;
  return Schedule;
}

bool ScheduleFilter::shouldSchedule(const BasicBlock &BB) const {
  if (static_cast<double>(BB.size()) < BBLenGate)
    return Rules.getDefaultClass() == Label::LS;
  return Rules.predict(extractFeatures(BB)) == Label::LS;
}
