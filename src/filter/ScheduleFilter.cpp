//===- filter/ScheduleFilter.cpp - Online whether-to-schedule ---------------===//

#include "filter/ScheduleFilter.h"

#include "sched/SchedContext.h"

using namespace schedfilter;

std::atomic<FilterEval> ScheduleFilter::DefaultEval{FilterEval::Compiled};

const char *schedfilter::getFilterEvalName(FilterEval E) {
  return E == FilterEval::Compiled ? "compiled" : "interpreter";
}

bool ScheduleFilter::shouldSchedule(const BasicBlock &BB, SchedContext &Ctx) {
  (void)Ctx; // scalar decisions need no scratch; see the header
  return shouldSchedule(BB);
}

void ScheduleFilter::shouldScheduleBatch(
    const std::vector<const BasicBlock *> &Blocks, SchedContext &Ctx,
    std::vector<char> &Decisions) {
  const size_t N = Blocks.size();
  Decisions.assign(N, 0);

  if (Eval != FilterEval::Compiled) {
    // Reference path: the scalar loop, decision for decision.
    for (size_t I = 0; I != N; ++I)
      Decisions[I] = shouldSchedule(*Blocks[I]);
    return;
  }

  // Split gated blocks (one work unit, default class -- same as
  // decide()'s fast path) from blocks that need the feature pass.
  std::vector<const BasicBlock *> &Batch = Ctx.batchBlocks();
  std::vector<uint32_t> &Rows = Ctx.batchRowIndex();
  Batch.clear();
  Rows.clear();
  for (size_t I = 0; I != N; ++I) {
    if (static_cast<double>(Blocks[I]->size()) < Art->BBLenGate)
      record({Art->DefaultIsLS, 1}), Decisions[I] = Art->DefaultIsLS;
    else {
      Batch.push_back(Blocks[I]);
      Rows.push_back(static_cast<uint32_t>(I));
    }
  }
  if (Batch.empty())
    return;

  // Extract all surviving blocks into the SoA matrix (bit-identical
  // values and summed work by construction), then one batch evaluation.
  FeatureMatrix &M = Ctx.featureMatrix();
  Work += extractFeaturesBatch(Batch.data(), Batch.size(), M);
  std::vector<unsigned char> &IsLS = Ctx.batchIsLS();
  std::vector<uint64_t> &RowWork = Ctx.batchWork();
  IsLS.assign(Batch.size(), 0);
  RowWork.assign(Batch.size(), 0);
  Art->Compiled.evaluateBatch(M, Ctx.predScratch(), IsLS.data(),
                              RowWork.data());
  for (size_t R = 0; R != Batch.size(); ++R) {
    record({IsLS[R] != 0, RowWork[R]});
    Decisions[Rows[R]] = IsLS[R];
  }
}
