//===- filter/Pipeline.cpp - JIT-style compile pass -------------------------===//

#include "filter/Pipeline.h"

#include "sched/SchedContext.h"
#include "support/Timer.h"

#include <cassert>

using namespace schedfilter;

const char *schedfilter::getPolicyName(SchedulingPolicy P) {
  switch (P) {
  case SchedulingPolicy::Never:
    return "NS";
  case SchedulingPolicy::Always:
    return "LS";
  case SchedulingPolicy::Filtered:
    return "L/N";
  }
  return "?";
}

CompileReport schedfilter::compileProgram(const Program &P,
                                          const MachineModel &Model,
                                          SchedulingPolicy Policy,
                                          ScheduleFilter *Filter) {
  SchedContext Ctx;
  return compileProgram(P, Model, Policy, Filter, Ctx);
}

CompileReport schedfilter::compileProgram(const Program &P,
                                          const MachineModel &Model,
                                          SchedulingPolicy Policy,
                                          ScheduleFilter *Filter,
                                          SchedContext &Ctx) {
  assert((Policy == SchedulingPolicy::Filtered) == (Filter != nullptr) &&
         "filter must be supplied exactly for the Filtered policy");

  CompileReport Report;
  Report.Policy = Policy;
  ListScheduler Scheduler(Model);
  BlockSimulator Sim(Model);
  uint64_t FilterWorkBefore = Filter ? Filter->workUnits() : 0;

  std::vector<const BasicBlock *> &Blocks = Ctx.blockList();
  Blocks.clear();
  P.forEachBlock([&](const BasicBlock &BB) { Blocks.push_back(&BB); });
  Report.NumBlocks = Blocks.size();

  // Per-block order slots.  The outer arena only grows, so each inner
  // vector -- cleared per block -- keeps its heap allocation across blocks
  // and across programs compiled with the same context.
  std::vector<std::vector<int>> &Orders = Ctx.orderArena();
  if (Orders.size() < Blocks.size())
    Orders.resize(Blocks.size());
  for (size_t B = 0; B != Blocks.size(); ++B)
    Orders[B].clear();

  // Phase 1 (timed): the scheduling phase proper -- filter decisions plus
  // list scheduling of the chosen blocks.  One timer spans the whole
  // phase, like the paper's per-phase compiler timers; the filter's cost
  // is thereby charged to scheduling (§3.1).  Under the Filtered policy
  // all decisions are made up front in one batch pass (SoA feature
  // extraction + compiled predicate-matrix evaluation), which accumulates
  // exactly the per-block counters and work units -- the scheduling loop
  // then just reads the decision bytes in block order.
  AccumulatingTimer SchedTimer;
  SchedTimer.start();
  std::vector<char> &Decisions = Ctx.batchDecisions();
  if (Policy == SchedulingPolicy::Filtered)
    Filter->shouldScheduleBatch(Blocks, Ctx, Decisions);
  for (size_t B = 0; B != Blocks.size(); ++B) {
    const BasicBlock &BB = *Blocks[B];
    bool DoSchedule = false;
    switch (Policy) {
    case SchedulingPolicy::Never:
      DoSchedule = false;
      break;
    case SchedulingPolicy::Always:
      DoSchedule = true;
      break;
    case SchedulingPolicy::Filtered:
      DoSchedule = Decisions[B] != 0;
      break;
    }
    if (!DoSchedule)
      continue;
    Report.SchedulingWork += Scheduler.schedule(BB, Ctx, Orders[B]);
    ++Report.NumScheduled;
  }
  SchedTimer.stop();
  Report.SchedulingSeconds = SchedTimer.seconds();

  // Phase 2 (untimed): the paper's SIM(P) application-time metric.
  for (size_t B = 0; B != Blocks.size(); ++B) {
    const BasicBlock &BB = *Blocks[B];
    uint64_t Cycles = Orders[B].empty() ? Sim.simulate(BB, Ctx)
                                        : Sim.simulate(BB, Orders[B], Ctx);
    Report.SimulatedTime +=
        static_cast<double>(BB.getExecCount()) * static_cast<double>(Cycles);
  }

  if (Filter) {
    Report.FilterWork = Filter->workUnits() - FilterWorkBefore;
    Report.SchedulingWork += Report.FilterWork;
  }
  return Report;
}
