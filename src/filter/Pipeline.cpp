//===- filter/Pipeline.cpp - JIT-style compile pass -------------------------===//

#include "filter/Pipeline.h"

#include "sched/SchedContext.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>

using namespace schedfilter;

const char *schedfilter::getPolicyName(SchedulingPolicy P) {
  switch (P) {
  case SchedulingPolicy::Never:
    return "NS";
  case SchedulingPolicy::Always:
    return "LS";
  case SchedulingPolicy::Filtered:
    return "L/N";
  }
  return "?";
}

CompileReport schedfilter::compileProgram(const Program &P,
                                          const MachineModel &Model,
                                          SchedulingPolicy Policy,
                                          ScheduleFilter *Filter) {
  SchedContext Ctx;
  return compileProgram(P, Model, Policy, Filter, Ctx);
}

CompileReport schedfilter::compileProgram(const Program &P,
                                          const MachineModel &Model,
                                          SchedulingPolicy Policy,
                                          ScheduleFilter *Filter,
                                          SchedContext &Ctx) {
  assert((Policy == SchedulingPolicy::Filtered) == (Filter != nullptr) &&
         "filter must be supplied exactly for the Filtered policy");

  CompileReport Report;
  Report.Policy = Policy;
  ListScheduler Scheduler(Model);
  BlockSimulator Sim(Model);
  uint64_t FilterWorkBefore = Filter ? Filter->workUnits() : 0;

  std::vector<const BasicBlock *> &Blocks = Ctx.blockList();
  Blocks.clear();
  P.forEachBlock([&](const BasicBlock &BB) { Blocks.push_back(&BB); });
  Report.NumBlocks = Blocks.size();

  // Per-block order slots.  The outer arena only grows, so each inner
  // vector -- cleared per block -- keeps its heap allocation across blocks
  // and across programs compiled with the same context.
  std::vector<std::vector<int>> &Orders = Ctx.orderArena();
  if (Orders.size() < Blocks.size())
    Orders.resize(Blocks.size());
  for (size_t B = 0; B != Blocks.size(); ++B)
    Orders[B].clear();

  // Phase 1 (timed): the scheduling phase proper -- per-block filter
  // decision plus list scheduling of the chosen blocks.  One timer spans
  // the whole phase, like the paper's per-phase compiler timers; the
  // filter's cost is thereby charged to scheduling (§3.1).
  AccumulatingTimer SchedTimer;
  SchedTimer.start();
  for (size_t B = 0; B != Blocks.size(); ++B) {
    const BasicBlock &BB = *Blocks[B];
    bool DoSchedule = false;
    switch (Policy) {
    case SchedulingPolicy::Never:
      DoSchedule = false;
      break;
    case SchedulingPolicy::Always:
      DoSchedule = true;
      break;
    case SchedulingPolicy::Filtered:
      DoSchedule = Filter->shouldSchedule(BB, Ctx);
      break;
    }
    if (!DoSchedule)
      continue;
    Report.SchedulingWork += Scheduler.schedule(BB, Ctx, Orders[B]);
    ++Report.NumScheduled;
  }
  SchedTimer.stop();
  Report.SchedulingSeconds = SchedTimer.seconds();

  // Phase 2 (untimed): the paper's SIM(P) application-time metric.
  for (size_t B = 0; B != Blocks.size(); ++B) {
    const BasicBlock &BB = *Blocks[B];
    uint64_t Cycles = Orders[B].empty() ? Sim.simulate(BB, Ctx)
                                        : Sim.simulate(BB, Orders[B], Ctx);
    Report.SimulatedTime +=
        static_cast<double>(BB.getExecCount()) * static_cast<double>(Cycles);
  }

  if (Filter) {
    Report.FilterWork = Filter->workUnits() - FilterWorkBefore;
    Report.SchedulingWork += Report.FilterWork;
  }
  return Report;
}

CompileReport schedfilter::compileProgramAdaptive(const Program &P,
                                                  const MachineModel &Model,
                                                  SchedulingPolicy Policy,
                                                  ScheduleFilter *Filter,
                                                  double HotMethodFraction) {
  SchedContext Ctx;
  return compileProgramAdaptive(P, Model, Policy, Filter, HotMethodFraction,
                                Ctx);
}

CompileReport schedfilter::compileProgramAdaptive(const Program &P,
                                                  const MachineModel &Model,
                                                  SchedulingPolicy Policy,
                                                  ScheduleFilter *Filter,
                                                  double HotMethodFraction,
                                                  SchedContext &Ctx) {
  assert(HotMethodFraction >= 0.0 && HotMethodFraction <= 1.0 &&
         "fraction must be in [0, 1]");

  // Rank methods by total profile weight.
  std::vector<std::pair<double, size_t>> Ranked;
  for (size_t MI = 0; MI != P.size(); ++MI) {
    double Weight = 0.0;
    for (const BasicBlock &BB : P[MI])
      Weight += static_cast<double>(BB.getExecCount());
    Ranked.push_back({Weight, MI});
  }
  std::sort(Ranked.begin(), Ranked.end(), [](const auto &A, const auto &B) {
    if (A.first != B.first)
      return A.first > B.first;
    return A.second < B.second;
  });
  size_t NumHot = static_cast<size_t>(HotMethodFraction *
                                      static_cast<double>(P.size()) + 0.5);
  std::vector<bool> IsHot(P.size(), false);
  for (size_t I = 0; I != NumHot && I != Ranked.size(); ++I)
    IsHot[Ranked[I].second] = true;

  // Build a program view: hot methods keep the policy; cold methods are
  // compiled baseline.  Reuse compileProgram on the two partitions and
  // merge the reports.
  Program Hot(P.getName() + ".hot");
  Program Cold(P.getName() + ".cold");
  for (size_t MI = 0; MI != P.size(); ++MI)
    (IsHot[MI] ? Hot : Cold).addMethod(P[MI]);

  CompileReport HotReport = compileProgram(Hot, Model, Policy, Filter, Ctx);
  CompileReport ColdReport =
      compileProgram(Cold, Model, SchedulingPolicy::Never, nullptr, Ctx);

  CompileReport Merged;
  Merged.Policy = Policy;
  Merged.NumBlocks = HotReport.NumBlocks + ColdReport.NumBlocks;
  Merged.NumScheduled = HotReport.NumScheduled;
  Merged.SchedulingSeconds =
      HotReport.SchedulingSeconds + ColdReport.SchedulingSeconds;
  Merged.SchedulingWork = HotReport.SchedulingWork;
  Merged.FilterWork = HotReport.FilterWork;
  Merged.SimulatedTime = HotReport.SimulatedTime + ColdReport.SimulatedTime;
  return Merged;
}
