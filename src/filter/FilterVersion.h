//===- filter/FilterVersion.h - Versioned immutable filter artifact -*- C++ -*-===//
///
/// \file
/// The unit the online-serving loop hot-swaps: one immutable bundle of
/// (RuleSet, CompiledFilter, fast-path constants) stamped with a
/// monotone version and its training provenance (parent version, the
/// virtual tick of the retrain trigger, the corpus size it was trained
/// on).  ScheduleFilter instances borrow an artifact through a
/// shared_ptr, so
///   - compiling the rule set happens once per *version*, not once per
///     per-task filter copy (CompileService used to recompile the same
///     rules for every drained method);
///   - swapping the service's current artifact between epochs can never
///     mutate a filter some in-flight compile task already captured --
///     the old version stays alive until its last borrower drops it.
/// Everything in an artifact is const after construction and evaluation
/// is const, so one artifact is safely shared across TaskPool workers.
///
/// Version numbers are per serving session, starting at 1 for the
/// initial (factory) filter; 0 means "unversioned" -- a plain
/// ScheduleFilter built outside any online session.  The provenance
/// fields are exactly what io/FilterRegistry.h persists per version.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_FILTER_FILTERVERSION_H
#define SCHEDFILTER_FILTER_FILTERVERSION_H

#include "filter/CompiledFilter.h"
#include "ml/Rule.h"

#include <cstdint>
#include <memory>

namespace schedfilter {

/// One immutable filter version: the rule set, its compiled form, the
/// scalar fast-path constants every evaluation reads, and provenance.
struct FilterArtifact {
  RuleSet Rules;
  CompiledFilter Compiled;
  double BBLenGate;  ///< RuleSet::minMatchableBBLen of Rules
  bool DefaultIsLS;  ///< default class == LS

  uint32_t Version = 0;       ///< monotone per session; 0 = unversioned
  uint32_t ParentVersion = 0; ///< version this one retrained from
  uint64_t TriggerTick = 0;   ///< virtual tick of the retrain trigger
  uint64_t CorpusRecords = 0; ///< corpus size the version trained on

  explicit FilterArtifact(RuleSet RS, uint32_t Version = 0,
                          uint32_t ParentVersion = 0,
                          uint64_t TriggerTick = 0,
                          uint64_t CorpusRecords = 0)
      : Rules(std::move(RS)), Compiled(Rules),
        BBLenGate(Rules.minMatchableBBLen()),
        DefaultIsLS(Rules.getDefaultClass() == Label::LS), Version(Version),
        ParentVersion(ParentVersion), TriggerTick(TriggerTick),
        CorpusRecords(CorpusRecords) {}
};

/// Shared immutable handle: how services, per-task filters, and stats
/// reference a version.
using FilterArtifactRef = std::shared_ptr<const FilterArtifact>;

/// Builds a shared artifact (the one constructor every caller uses, so
/// the shared_ptr discipline is uniform).
FilterArtifactRef makeFilterArtifact(RuleSet RS, uint32_t Version = 0,
                                     uint32_t ParentVersion = 0,
                                     uint64_t TriggerTick = 0,
                                     uint64_t CorpusRecords = 0);

/// Content fingerprint of a rule set: FNV-1a over its v1 text
/// serialization (thresholds print %.17g, so the hash covers every bit
/// of every threshold).  ServiceStats pins each hot-swap with this, and
/// tests compare registry round-trips by it.
uint64_t rulesFingerprint(const RuleSet &RS);

} // namespace schedfilter

#endif // SCHEDFILTER_FILTER_FILTERVERSION_H
