//===- filter/ScheduleFilter.h - Online whether-to-schedule ------*- C++ -*-===//
///
/// \file
/// The installed heuristic: given a basic block, compute its Table 1
/// features and evaluate the induced rule set; the first matching rule
/// (conclusion LS) means "run the list scheduler on this block", the
/// default (NS) means "leave it alone".  Mirrors §2.2's final step of
/// installing the learned function in the compiler and applying it online.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_FILTER_SCHEDULEFILTER_H
#define SCHEDFILTER_FILTER_SCHEDULEFILTER_H

#include "features/Features.h"
#include "ml/Rule.h"

namespace schedfilter {

class SchedContext;

/// Wraps an induced RuleSet as an online block filter.
class ScheduleFilter {
public:
  explicit ScheduleFilter(RuleSet RS)
      : Rules(std::move(RS)), BBLenGate(Rules.minMatchableBBLen()) {}

  /// True if the filter predicts the block benefits from scheduling.
  /// Accumulates decision counters and deterministic work units.
  ///
  /// Fast path: blocks shorter than the rule set's minimum matchable
  /// length resolve to the default class with a single comparison and no
  /// feature extraction (see RuleSet::minMatchableBBLen).
  bool shouldSchedule(const BasicBlock &BB);

  /// Context-threading variant used by the allocation-free pipeline.
  /// Feature extraction and rule evaluation are already allocation-free
  /// (the feature vector is a fixed-size array), so this simply keeps the
  /// per-block call shape uniform; \p Ctx is reserved for future filters
  /// that need scratch (e.g. DAG-derived features).
  bool shouldSchedule(const BasicBlock &BB, SchedContext &Ctx);

  /// Const query without statistics (for tests).
  bool shouldSchedule(const BasicBlock &BB) const;

  const RuleSet &ruleSet() const { return Rules; }

  /// Decision counters (since construction or resetStats()).
  uint64_t numScheduleDecisions() const { return NumLS; }
  uint64_t numSkipDecisions() const { return NumNS; }

  /// Deterministic cost of all decisions so far: feature-pass units plus
  /// rule conditions evaluated; comparable with scheduler work units.
  uint64_t workUnits() const { return Work; }

  void resetStats() { NumLS = NumNS = Work = 0; }

private:
  RuleSet Rules;
  double BBLenGate;
  uint64_t NumLS = 0;
  uint64_t NumNS = 0;
  uint64_t Work = 0;
};

} // namespace schedfilter

#endif // SCHEDFILTER_FILTER_SCHEDULEFILTER_H
