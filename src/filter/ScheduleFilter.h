//===- filter/ScheduleFilter.h - Online whether-to-schedule ------*- C++ -*-===//
///
/// \file
/// The installed heuristic: given a basic block, compute its Table 1
/// features and evaluate the induced rule set; the first matching rule
/// (conclusion LS) means "run the list scheduler on this block", the
/// default (NS) means "leave it alone".  Mirrors §2.2's final step of
/// installing the learned function in the compiler and applying it online.
///
/// Every ScheduleFilter borrows an immutable FilterArtifact (rule set +
/// CompiledFilter + fast-path constants; see filter/FilterVersion.h), so
/// all callers (sf-apply, sf-serve, CompileService, the bench drivers)
/// get the flat branchless evaluator for free, and a rule set is
/// compiled once per *version* rather than once per filter instance.
/// Construction from a plain RuleSet wraps it in a fresh unversioned
/// artifact; the online-serving loop instead shares one versioned
/// artifact across every per-task filter and swaps the shared handle at
/// epoch boundaries -- in-flight borrowers keep the version they
/// captured, which is what makes the hot-swap safe.  The original
/// interpreter is kept behind FilterEval::Interpreted purely as a
/// cross-check: both paths are bit-exactly equivalent in predictions
/// AND work units (tests/compiled_filter_test.cpp proves it), so stats
/// and golden pins are byte-identical whichever one runs.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_FILTER_SCHEDULEFILTER_H
#define SCHEDFILTER_FILTER_SCHEDULEFILTER_H

#include "features/Features.h"
#include "filter/FilterVersion.h"

#include <atomic>
#include <vector>

namespace schedfilter {

class SchedContext;

/// Which evaluator a ScheduleFilter runs.  Compiled is the default and
/// strictly faster; Interpreted exists so tools and CI can force the
/// reference path and byte-diff the two (sf-serve --filter-eval).
enum class FilterEval { Compiled, Interpreted };

/// "compiled" or "interpreter" (the sf-serve flag spelling).
const char *getFilterEvalName(FilterEval E);

/// Wraps an induced RuleSet as an online block filter.
class ScheduleFilter {
public:
  /// Compiles \p RS into a fresh unversioned artifact and captures the
  /// evaluator mode; by default the process-wide mode (see
  /// setDefaultEval), so components that build filters internally honor
  /// a tool-level --filter-eval switch without plumbing.
  explicit ScheduleFilter(RuleSet RS, FilterEval Eval = defaultEval())
      : ScheduleFilter(makeFilterArtifact(std::move(RS)), Eval) {}

  /// Borrows an existing (possibly shared) artifact: no recompilation,
  /// just a shared_ptr copy.  This is the per-version swap-safe path the
  /// runtime services use -- each parallel compile task constructs one of
  /// these from the service's current artifact, and a concurrent install
  /// of a newer version cannot perturb it.  The evaluator mode is still
  /// captured per instance (the process-wide default is a tool-level
  /// setting, never part of an artifact).
  explicit ScheduleFilter(FilterArtifactRef Artifact,
                          FilterEval Eval = defaultEval())
      : Art(std::move(Artifact)), Eval(Eval) {}

  /// True if the filter predicts the block benefits from scheduling.
  /// Accumulates decision counters and deterministic work units.
  ///
  /// Fast path: blocks shorter than the rule set's minimum matchable
  /// length resolve to the default class with a single comparison and no
  /// feature extraction (see RuleSet::minMatchableBBLen).
  bool shouldSchedule(const BasicBlock &BB) {
    CompiledFilter::Decision D = decide(BB);
    record(D);
    return D.ScheduleLS;
  }

  /// Context-threading variant used by the allocation-free pipeline.
  /// Scalar decisions are already allocation-free (the feature vector is
  /// a fixed-size array); \p Ctx keeps the call shape uniform with the
  /// batch path.
  bool shouldSchedule(const BasicBlock &BB, SchedContext &Ctx);

  /// Const query without statistics (for tests).  Same decide() path as
  /// the stat-accumulating overloads -- the variants cannot diverge.
  bool shouldSchedule(const BasicBlock &BB) const {
    return decide(BB).ScheduleLS;
  }

  /// Batch decision pass: fills Decisions[i] with shouldSchedule(*Blocks[i])
  /// for all i, accumulating exactly the counters and work units the
  /// per-block loop would.  In Compiled mode, non-gated blocks stream
  /// through extractFeaturesBatch into \p Ctx's SoA feature matrix and
  /// one evaluateBatch call; Interpreted mode falls back to the scalar
  /// loop.  Decisions is sized to Blocks.size().
  void shouldScheduleBatch(const std::vector<const BasicBlock *> &Blocks,
                           SchedContext &Ctx, std::vector<char> &Decisions);

  const RuleSet &ruleSet() const { return Art->Rules; }
  const CompiledFilter &compiled() const { return Art->Compiled; }
  const FilterArtifactRef &artifact() const { return Art; }
  /// The borrowed artifact's version (0 for plain rule-set filters).
  uint32_t version() const { return Art->Version; }
  FilterEval evalMode() const { return Eval; }

  /// Process-wide default evaluator for subsequently constructed filters
  /// (existing instances keep the mode they captured).  Tools set this
  /// once from --filter-eval before any filter exists.
  static void setDefaultEval(FilterEval E) {
    DefaultEval.store(E, std::memory_order_relaxed);
  }
  static FilterEval defaultEval() {
    return DefaultEval.load(std::memory_order_relaxed);
  }

  /// Decision counters (since construction or resetStats()).
  uint64_t numScheduleDecisions() const { return NumLS; }
  uint64_t numSkipDecisions() const { return NumNS; }

  /// Deterministic cost of all decisions so far: feature-pass units plus
  /// rule conditions evaluated; comparable with scheduler work units.
  uint64_t workUnits() const { return Work; }

  void resetStats() { NumLS = NumNS = Work = 0; }

private:
  /// The one evaluation path every overload shares: gate, extract,
  /// evaluate.  Work includes the feature pass (or the single gate
  /// comparison), matching the historical accounting bit for bit.
  CompiledFilter::Decision decide(const BasicBlock &BB) const {
    if (static_cast<double>(BB.size()) < Art->BBLenGate)
      return {Art->DefaultIsLS, 1};
    FeatureVector X = extractFeatures(BB);
    uint64_t ExtractWork = featureExtractionWork(BB);
    if (Eval == FilterEval::Compiled) {
      CompiledFilter::Decision D = Art->Compiled.evaluate(X);
      D.Work += ExtractWork;
      return D;
    }
    return {Art->Rules.predict(X) == Label::LS,
            ExtractWork + Art->Rules.predictionWork(X)};
  }

  void record(const CompiledFilter::Decision &D) {
    Work += D.Work;
    if (D.ScheduleLS)
      ++NumLS;
    else
      ++NumNS;
  }

  static std::atomic<FilterEval> DefaultEval;

  FilterArtifactRef Art; ///< never null; shared and immutable
  FilterEval Eval;
  uint64_t NumLS = 0;
  uint64_t NumNS = 0;
  uint64_t Work = 0;
};

} // namespace schedfilter

#endif // SCHEDFILTER_FILTER_SCHEDULEFILTER_H
