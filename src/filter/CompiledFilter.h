//===- filter/CompiledFilter.h - Branchless rule-set evaluator ---*- C++ -*-===//
///
/// \file
/// A compiler from any trained RuleSet into a flat, branch-minimal
/// evaluation form.  The interpreter (RuleSet::predict) walks a
/// vector-of-vectors of Conditions -- two pointer indirections and an
/// unpredictable branch per condition, and the serve hot path pays it
/// twice (once for predict, once for predictionWork).  The compiled form
/// is one contiguous array of condition cells:
///
///   cell c = { Feature, Sign, Threshold, OnPass, OnFail }
///
/// laid out in first-match rule order.  Every test is canonicalized to
/// one compare shape -- Sign * X[Feature] <= Threshold, with Sign = +1 for
/// "<=" conditions and Sign = -1 / Threshold negated for ">=" (exact for
/// every double, NaN and infinities included) -- so evaluation is a single
/// data-driven loop with no per-condition branch on the operator:
///
///   c = (Sign * X[Feature] <= Threshold) ? OnPass : OnFail
///
/// OnPass chains to the next cell of the rule, or to a *terminal* (an
/// index past the cell array) carrying the rule's conclusion when the
/// cell is the rule's last; OnFail skips to the first cell of the next
/// rule, or to the default terminal after the last rule.  Indices, not
/// pointers: the whole evaluator state is one cursor.
///
/// Contracts (tests/compiled_filter_test.cpp proves them on the
/// analyzer's nextafter corner grid plus randomized cross-checks):
///   * evaluate(X).ScheduleLS  == (RS.predict(X) == Label::LS) and
///     evaluate(X).Work        == RS.predictionWork(X)
///     for every FeatureVector X, NaN coordinates included -- the
///     compiled form is bit-exactly prediction- AND work-equivalent, so
///     ScheduleFilter's decision counters and every golden pin are
///     byte-identical whichever evaluator runs;
///   * evaluateBatch over a FeatureMatrix returns, row for row, exactly
///     what evaluate returns on that row.
///
/// Batch mode is where compilation pays: distinct (Feature, Sign,
/// Threshold) triples are deduplicated into predicate rows, each row is
/// evaluated for all N blocks with one auto-vectorizable compare sweep
/// over the SoA feature column, and the first-match resolution then walks
/// precomputed bits instead of re-comparing doubles.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_FILTER_COMPILEDFILTER_H
#define SCHEDFILTER_FILTER_COMPILEDFILTER_H

#include "features/FeatureMatrix.h"
#include "ml/Rule.h"

#include <cstdint>
#include <vector>

namespace schedfilter {

/// One compiled condition: Sign * X[Feature] <= Threshold.
struct FilterCell {
  double Threshold = 0.0; ///< original threshold, negated for ">=" tests
  double Sign = 1.0;      ///< +1.0 for "<=", -1.0 for ">="
  uint32_t Feature = 0;
  uint32_t OnPass = 0; ///< next cell, or a terminal when last in its rule
  uint32_t OnFail = 0; ///< first cell of the next rule, or TermDefault
  uint32_t PredRow = 0; ///< deduplicated predicate row (batch mode)
};

/// A RuleSet compiled to the flat cell form.  Immutable after
/// construction; copyable and safely shared across threads (evaluation
/// takes scratch by argument).
class CompiledFilter {
public:
  /// What one evaluation decides: the class (as "schedule?") and the
  /// deterministic work units, bit-equal to RuleSet::predictionWork.
  struct Decision {
    bool ScheduleLS = false;
    uint64_t Work = 0;
  };

  /// Reusable batch scratch: the predicate bit matrix, packed into
  /// 64-bit words.  When the filter's cells plus one guard bit per rule
  /// fit one word (every trained filter in the repo), the layout is one
  /// word per block, one bit per cell in rule order, so first-match
  /// resolution is straight-line bit arithmetic on a single register
  /// (see evaluateBatch); larger filters fall back to predicate-row-major
  /// words.  Packing matters: with byte-per-predicate storage each
  /// resolution step touched a different N-spaced cache line.  Grow-only,
  /// one per thread like every other arena buffer.
  using BatchScratch = std::vector<uint64_t>;

  CompiledFilter() = default; ///< empty set: always the default class (NS)
  explicit CompiledFilter(const RuleSet &RS);

  /// Scalar evaluation of one feature vector.
  Decision evaluate(const FeatureVector &X) const {
    const uint32_t End = NumCells;
    const FilterCell *Cs = Cells.data();
    uint32_t C = Entry;
    uint64_t W = 0;
    while (C < End) {
      const FilterCell &L = Cs[C];
      ++W;
      C = L.Sign * X[L.Feature] <= L.Threshold ? L.OnPass : L.OnFail;
    }
    return terminalDecision(C, W);
  }

  /// Batch evaluation: for every row I of \p M, writes evaluate(row I)
  /// into IsLS[I] / Work[I] (arrays of at least M.size()).  The predicate
  /// matrix lives in \p Scratch and is reused across calls.
  void evaluateBatch(const FeatureMatrix &M, BatchScratch &Scratch,
                     unsigned char *IsLS, uint64_t *Work) const;

  size_t numCells() const { return Cells.size(); }
  size_t numPredRows() const { return PredRows.size(); }
  Label defaultClass() const { return Default; }

  /// The canonical (keep-tightest) form of \p RS: every within-rule
  /// condition that the analyzer's shared redundantConditionMask marks as
  /// subsumed is dropped; rule order, conclusions, coverage counts and
  /// the default class are preserved.  This is exactly the within-rule
  /// half of sf-lint --fix (analysis/normalizeRuleSet applies the same
  /// mask), so a linted file and a compiled filter agree on condition
  /// order -- tests/compiled_filter_test.cpp round-trips the two.
  ///
  /// Note the compiler itself intentionally does NOT evaluate from the
  /// canonical form: dropping a redundant condition would change
  /// predictionWork, and the cell array is contractually work-equivalent
  /// to the interpreter over the rule set as given.
  static RuleSet canonicalRules(const RuleSet &RS);

private:
  Decision terminalDecision(uint32_t C, uint64_t W) const {
    uint32_t T = C - NumCells;
    if (T == TermDefault)
      return {Default == Label::LS, W + 1}; // predictionWork's default +1
    return {T == TermMatchLS, W};
  }

  // Terminal offsets past the cell array (cursor = NumCells + offset).
  enum : uint32_t { TermMatchLS = 0, TermMatchNS = 1, TermDefault = 2 };

  std::vector<FilterCell> Cells;
  /// Deduplicated predicate rows for batch mode: cell c's compare is
  /// PredRows[Cells[c].PredRow].
  struct PredRowInfo {
    double Threshold = 0.0;
    double Sign = 1.0;
    uint32_t Feature = 0;
  };
  std::vector<PredRowInfo> PredRows;
  /// Batch fast-path tables, built when every cell bit, one guard bit
  /// per rule, and the default's sentinel bit fit one mask word
  /// (NumCells + #rules + 1 <= 64; true for every trained filter in the
  /// repo).  Bit layout, low to high: rule 0's cells in condition order,
  /// rule 0's guard bit, rule 1's cells, rule 1's guard, ..., the
  /// default bit.  RowCellBits[r]: the (laid-out) cell bits predicate
  /// row r feeds -- one OR per compare sweep fans the row out to all
  /// duplicates.  Resolution is then branchless over the whole rule
  /// list (see evaluateBatch): Fail + CellBitsAll carries into exactly
  /// the guard bits of failing rules, so the first match is one ctz,
  /// and the interpreter's short-circuit work is a popcount of the
  /// visited-cell mask XB ^ (XB - BaseBits).
  std::vector<uint64_t> RowCellBits;
  /// Predicate-row sweep order, grouped by feature (stable within a
  /// feature), so consecutive sweeps reuse the cached column tile.
  std::vector<uint32_t> RowOrder;
  uint64_t CellBitsAll = 0; ///< every cell bit (guard/default bits clear)
  uint64_t GuardBits = 0;   ///< per-rule guard bits plus the default bit
  uint64_t BaseBits = 0;    ///< lowest cell bit of each non-empty rule
  /// Per guard/default bit position: the work the matching rule adds
  /// (its condition count; 1 for the default's +1), its conclusion, and
  /// the mask of all bits strictly below the matching rule's own first
  /// cell -- the failing rules the interpreter walked through.
  unsigned char LenAtPos[64] = {};
  unsigned char LSAtPos[64] = {};
  uint64_t PrefixMaskAtPos[64] = {};
  bool BatchFastPath = false;
  uint32_t NumCells = 0;
  uint32_t Entry = TermDefault; ///< first cell, or a terminal (+NumCells)
  Label Default = Label::NS;
};

} // namespace schedfilter

#endif // SCHEDFILTER_FILTER_COMPILEDFILTER_H
