//===- filter/CompiledFilter.cpp - Branchless rule-set evaluator ------------===//

#include "filter/CompiledFilter.h"

#include "analysis/RuleAnalysis.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>
#include <tuple>

using namespace schedfilter;

namespace {

/// Exact-bit key for predicate-row deduplication: two cells share a row
/// iff feature, direction and threshold *bit pattern* all agree (bitwise,
/// so -0.0 and +0.0 -- which compare equal but are the same predicate
/// anyway -- and NaN payloads are handled without FP comparisons).
uint64_t bitsOf(double V) {
  uint64_t B;
  std::memcpy(&B, &V, sizeof B);
  return B;
}

} // namespace

CompiledFilter::CompiledFilter(const RuleSet &RS)
    : Default(RS.getDefaultClass()) {
  const std::vector<Rule> &Rules = RS.rules();
  size_t Total = RS.totalConditions();
  assert(Total < std::numeric_limits<uint32_t>::max() - 3 &&
         "rule set too large to index with 32-bit cells");
  NumCells = static_cast<uint32_t>(Total);
  Cells.reserve(Total);

  // Entry point of each rule: its first cell, or -- for a rule with an
  // empty antecedent, which matches everything -- directly the match
  // terminal of its conclusion.  RuleEntry[size()] is the default
  // terminal, so "fall past the last rule" needs no special case.
  std::vector<uint32_t> RuleEntry(Rules.size() + 1);
  uint32_t NextCell = 0;
  for (size_t R = 0; R != Rules.size(); ++R) {
    if (Rules[R].Conditions.empty())
      RuleEntry[R] = NumCells + (Rules[R].Conclusion == Label::LS
                                     ? TermMatchLS
                                     : TermMatchNS);
    else
      RuleEntry[R] = NextCell;
    NextCell += static_cast<uint32_t>(Rules[R].Conditions.size());
  }
  RuleEntry[Rules.size()] = NumCells + TermDefault;
  Entry = Rules.empty() ? NumCells + TermDefault : RuleEntry[0];

  // Predicate-row interning (batch mode): distinct (feature, sign,
  // threshold-bits) triples map to one compare sweep each.  A std::map
  // keyed on exact bits keeps the assignment deterministic (first
  // occurrence in cell order wins) without hash-order iteration.
  std::map<std::tuple<uint32_t, uint64_t, uint64_t>, uint32_t> Interned;

  for (size_t R = 0; R != Rules.size(); ++R) {
    const std::vector<Condition> &Conds = Rules[R].Conditions;
    for (size_t CI = 0; CI != Conds.size(); ++CI) {
      const Condition &C = Conds[CI];
      FilterCell L;
      L.Feature = C.Feature;
      // Canonicalize ">=" to "<=": x >= T  <=>  -x <= -T, exact for every
      // double (signed zeros, infinities, and NaN -- both sides are false
      // -- included), so one compare shape serves both directions.
      if (C.IsLessEqual) {
        L.Sign = 1.0;
        L.Threshold = C.Threshold;
      } else {
        L.Sign = -1.0;
        L.Threshold = -C.Threshold;
      }
      L.OnFail = RuleEntry[R + 1];
      L.OnPass = CI + 1 != Conds.size()
                     ? static_cast<uint32_t>(Cells.size()) + 1
                     : NumCells + (Rules[R].Conclusion == Label::LS
                                       ? TermMatchLS
                                       : TermMatchNS);

      auto Key = std::make_tuple(L.Feature, bitsOf(L.Sign), bitsOf(L.Threshold));
      auto It = Interned.find(Key);
      if (It == Interned.end())
        It = Interned
                 .emplace(Key, static_cast<uint32_t>(PredRows.size()))
                 .first,
        PredRows.push_back({L.Threshold, L.Sign, L.Feature});
      L.PredRow = It->second;
      Cells.push_back(L);
    }
  }

  // Batch fast-path tables (see the header): only when every cell bit,
  // one guard bit per rule, and the default bit fit one mask word.
  if (Total + Rules.size() + 1 <= 64) {
    BatchFastPath = true;
    // Sweep order: predicate rows grouped by feature (stable, so ties keep
    // first-occurrence order -- deterministic), letting consecutive sweeps
    // reuse the L1-resident column tile instead of re-streaming it.
    RowOrder.resize(PredRows.size());
    for (uint32_t J = 0; J != RowOrder.size(); ++J)
      RowOrder[J] = J;
    std::stable_sort(RowOrder.begin(), RowOrder.end(),
                     [&](uint32_t A, uint32_t B) {
                       return PredRows[A].Feature < PredRows[B].Feature;
                     });
    // Bit layout: each rule's cells in condition order, then its guard
    // bit; the default bit sits above the last guard.
    RowCellBits.assign(PredRows.size(), 0);
    unsigned Pos = 0;
    uint32_t Cell = 0;
    for (const Rule &R : Rules) {
      const unsigned Len = static_cast<unsigned>(R.Conditions.size());
      const uint64_t Prefix = (uint64_t{1} << Pos) - 1; // below this rule
      if (Len != 0)
        BaseBits |= uint64_t{1} << Pos;
      for (unsigned C = 0; C != Len; ++C, ++Pos, ++Cell) {
        CellBitsAll |= uint64_t{1} << Pos;
        RowCellBits[Cells[Cell].PredRow] |= uint64_t{1} << Pos;
      }
      GuardBits |= uint64_t{1} << Pos; // rule guard
      LenAtPos[Pos] = static_cast<unsigned char>(Len);
      LSAtPos[Pos] = R.Conclusion == Label::LS;
      PrefixMaskAtPos[Pos] = Prefix;
      ++Pos;
    }
    GuardBits |= uint64_t{1} << Pos; // default bit
    LenAtPos[Pos] = 1;               // predictionWork's default +1
    LSAtPos[Pos] = Default == Label::LS;
    PrefixMaskAtPos[Pos] = (uint64_t{1} << Pos) - 1;
  }
}

namespace {

/// Index of the lowest set bit; \p V must be nonzero.
unsigned lowestSetBit(uint64_t V) {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<unsigned>(__builtin_ctzll(V));
#else
  unsigned I = 0;
  while (!(V & 1)) {
    V >>= 1;
    ++I;
  }
  return I;
#endif
}

/// Number of set bits.
unsigned popCount(uint64_t V) {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<unsigned>(__builtin_popcountll(V));
#else
  unsigned N = 0;
  for (; V; V &= V - 1)
    ++N;
  return N;
#endif
}

// The two compare-sweep kernels, multi-versioned where the toolchain
// supports it: the build stays generic (no -march), but on x86-64 the
// loader picks an AVX2 clone when the CPU has it -- twice the lanes of
// the baseline SSE2 codegen.  Purely a codegen knob: double compares are
// exact at any vector width, so results are bit-identical across clones.
#if defined(__x86_64__) && defined(__has_attribute)
#if __has_attribute(target_clones) && defined(__ELF__)
#define SF_SWEEP_CLONES __attribute__((target_clones("default", "avx2")))
#endif
#endif
#ifndef SF_SWEEP_CLONES
#define SF_SWEEP_CLONES
#endif

/// Out[i] |= (Col[i] <= T) ? Bits : 0 over one tile.
SF_SWEEP_CLONES
void sweepLE(const double *Col, uint64_t *Out, size_t TN, double T,
             uint64_t Bits) {
  for (size_t I = 0; I != TN; ++I)
    Out[I] |= Col[I] <= T ? Bits : 0;
}

/// Out[i] |= (Col[i] >= T) ? Bits : 0 over one tile.
SF_SWEEP_CLONES
void sweepGE(const double *Col, uint64_t *Out, size_t TN, double T,
             uint64_t Bits) {
  for (size_t I = 0; I != TN; ++I)
    Out[I] |= Col[I] >= T ? Bits : 0;
}

} // namespace

void CompiledFilter::evaluateBatch(const FeatureMatrix &M,
                                   BatchScratch &Scratch, unsigned char *IsLS,
                                   uint64_t *Work) const {
  const size_t N = M.size();
  if (N == 0)
    return;

  if (BatchFastPath) {
    // Fast path: one mask word per block, one bit per cell (in guard-bit
    // layout; see the header).  Blocks are processed in L1-sized tiles;
    // within a tile, phase 1 sweeps every predicate row, then phase 2
    // resolves the tile while its masks are still cache-hot.  Without
    // tiling each sweep streams the full column set and the scratch
    // array through L2 once per row.
    Scratch.assign(N, 0);
    constexpr size_t Tile = 1024;
    for (size_t T0 = 0; T0 < N; T0 += Tile) {
      const size_t TN = N - T0 < Tile ? N - T0 : Tile;
      uint64_t *Out = Scratch.data() + T0;

      // Phase 1: one compare sweep per interned predicate row over its
      // SoA column tile -- the loop the compiler auto-vectorizes, and the
      // reason features are stored column-major -- fanned out to every
      // cell using that row with one OR of RowCellBits.  RowOrder groups
      // rows by feature so consecutive sweeps hit the same column tile.
      for (uint32_t J : RowOrder) {
        const PredRowInfo &R = PredRows[J];
        const double *Col = M.column(R.Feature) + T0;
        const uint64_t Bits = RowCellBits[J];
        // Specialize the sign outside the loop: -x <= T <=> x >= -T
        // (exact, NaN included -- both compares are false), sparing the
        // sweep a vector multiply per element.
        if (R.Sign > 0.0)
          sweepLE(Col, Out, TN, R.Threshold, Bits);
        else
          sweepGE(Col, Out, TN, -R.Threshold, Bits);
      }

      // Phase 2: first-match resolution in ~15 straight-line ops per
      // block -- no per-rule loop, no data-dependent branch.  Adding
      // CellBitsAll to the failed-cell mask carries into a rule's guard
      // bit iff any of its cells failed (the sum of a field and its own
      // mask overflows the field iff the field is nonzero, and the carry
      // stops at the guard bit, so adjacent rules never interfere); the
      // first clear guard is therefore the first matching rule, with the
      // always-clear default bit as the fall-through sentinel.  The
      // interpreter's short-circuit work is recovered exactly: every
      // rule strictly before the match fails, PrefixMaskAtPos cuts the
      // mask to exactly those rules' cells, and XB ^ (XB - base-bits)
      // flips, per failing rule, the cells from its first condition
      // through its first failed one -- precisely the conditions the
      // interpreter tests -- so one popcount sums the whole prefix, and
      // LenAtPos adds the matched rule's full condition count (or the
      // default's +1).
      for (size_t I = 0; I != TN; ++I) {
        const uint64_t Fail = ~Out[I] & CellBitsAll;
        const uint64_t Clear = ~(Fail + CellBitsAll) & GuardBits;
        const unsigned WinPos = lowestSetBit(Clear);
        const uint64_t Prefix = PrefixMaskAtPos[WinPos];
        const uint64_t XB = Fail & Prefix;
        const uint64_t Visited = XB ^ (XB - (BaseBits & Prefix));
        IsLS[T0 + I] = LSAtPos[WinPos];
        Work[T0 + I] = popCount(Visited) + LenAtPos[WinPos];
      }
    }
    return;
  }

  // General path (> 64 cells): predicate-row-major mask words, resolved
  // with the same cursor walk as evaluate() -- identical Work counting by
  // construction -- but each step is a bit test instead of a double
  // multiply-compare.
  const size_t Rows = PredRows.size();
  const size_t Words = (Rows + 63) / 64;
  Scratch.assign(Words * N, 0);
  for (size_t J = 0; J != Rows; ++J) {
    const PredRowInfo &R = PredRows[J];
    const double *Col = M.column(R.Feature);
    const double S = R.Sign;
    const double T = R.Threshold;
    const uint64_t Bit = uint64_t{1} << (J & 63);
    uint64_t *Out = Scratch.data() + (J >> 6) * N;
    for (size_t I = 0; I != N; ++I)
      Out[I] |= S * Col[I] <= T ? Bit : 0;
  }
  const uint32_t End = NumCells;
  const FilterCell *Cs = Cells.data();
  const uint64_t *Pred = Scratch.data();
  for (size_t I = 0; I != N; ++I) {
    uint32_t C = Entry;
    uint64_t W = 0;
    while (C < End) {
      const FilterCell &L = Cs[C];
      ++W;
      uint64_t WordV = Pred[static_cast<size_t>(L.PredRow >> 6) * N + I];
      C = (WordV >> (L.PredRow & 63)) & 1 ? L.OnPass : L.OnFail;
    }
    Decision D = terminalDecision(C, W);
    IsLS[I] = D.ScheduleLS;
    Work[I] = D.Work;
  }
}

RuleSet CompiledFilter::canonicalRules(const RuleSet &RS) {
  RuleSet Out(RS.getDefaultClass());
  for (const Rule &R : RS.rules()) {
    std::vector<char> Drop = redundantConditionMask(R);
    Rule Kept;
    Kept.Conclusion = R.Conclusion;
    Kept.NumCorrect = R.NumCorrect;
    Kept.NumIncorrect = R.NumIncorrect;
    for (size_t C = 0; C != R.Conditions.size(); ++C)
      if (!Drop[C])
        Kept.Conditions.push_back(R.Conditions[C]);
    Out.addRule(std::move(Kept));
  }
  return Out;
}
