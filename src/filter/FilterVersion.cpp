//===- filter/FilterVersion.cpp - Versioned immutable filter artifact -------===//

#include "filter/FilterVersion.h"

#include "io/TraceStore.h"
#include "ml/Serialization.h"

#include <sstream>

using namespace schedfilter;

FilterArtifactRef schedfilter::makeFilterArtifact(RuleSet RS, uint32_t Version,
                                                  uint32_t ParentVersion,
                                                  uint64_t TriggerTick,
                                                  uint64_t CorpusRecords) {
  return std::make_shared<const FilterArtifact>(
      std::move(RS), Version, ParentVersion, TriggerTick, CorpusRecords);
}

uint64_t schedfilter::rulesFingerprint(const RuleSet &RS) {
  std::ostringstream OS;
  writeRuleSet(RS, OS);
  std::string Text = OS.str();
  return wire::fnv1a(Text.data(), Text.size());
}
