//===- analysis/RuleAnalysis.cpp - Static analysis of rule sets ------------===//

#include "analysis/RuleAnalysis.h"

#include "support/Rng.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

using namespace schedfilter;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

/// Shortest-round-trip rendering for diagnostics: %g is compact for the
/// common thresholds and precise enough to paste back into a rules file.
std::string fmt(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%g", V);
  return Buf;
}

std::string ruleRef(size_t I) { return "rule #" + std::to_string(I + 1); }

/// The axis-aligned box a rule's antecedent denotes: one closed interval
/// per feature, [-inf, +inf] when unconstrained.  NeverMatches records a
/// NaN threshold (x <= NaN and x >= NaN are false for every x, so the
/// rule cannot fire no matter what the other conditions say).
struct Box {
  double Lo[NumFeatures];
  double Hi[NumFeatures];
  bool NeverMatches = false;

  Box() {
    for (unsigned F = 0; F != NumFeatures; ++F) {
      Lo[F] = -Inf;
      Hi[F] = Inf;
    }
  }

  /// The feature whose interval is empty, or NumFeatures when the box is
  /// nonempty.  NaN-threshold boxes report NumFeatures here; callers
  /// check NeverMatches first.
  unsigned emptyFeature() const {
    for (unsigned F = 0; F != NumFeatures; ++F)
      if (Lo[F] > Hi[F])
        return F;
    return NumFeatures;
  }

  bool empty() const { return NeverMatches || emptyFeature() != NumFeatures; }

  /// True when every point of \p B lies in this box (both nonempty;
  /// callers skip empty boxes).
  bool contains(const Box &B) const {
    for (unsigned F = 0; F != NumFeatures; ++F)
      if (B.Lo[F] < Lo[F] || B.Hi[F] > Hi[F])
        return false;
    return true;
  }
};

Box buildBox(const Rule &R) {
  Box B;
  for (const Condition &C : R.Conditions) {
    if (std::isnan(C.Threshold)) {
      B.NeverMatches = true;
      continue;
    }
    if (C.IsLessEqual)
      B.Hi[C.Feature] = std::min(B.Hi[C.Feature], C.Threshold);
    else
      B.Lo[C.Feature] = std::max(B.Lo[C.Feature], C.Threshold);
  }
  return B;
}

/// The corner grid of a condition set: per feature, one representative
/// per behaviorally distinct cell.  Every condition is an axis-aligned
/// threshold test, so along feature F the outcome vector of all
/// conditions on F is constant between consecutive thresholds; the
/// thresholds themselves plus their neighboring doubles hit every cell
/// that contains a double.  WithNaN additionally appends a NaN
/// coordinate per used feature (all comparisons false), which extends
/// completeness from real-valued inputs to every possible double input.
struct CornerGrid {
  std::vector<std::vector<double>> Values; // per feature, nonempty

  explicit CornerGrid(const std::vector<const RuleSet *> &Sets, bool WithNaN) {
    Values.resize(NumFeatures);
    for (const RuleSet *RS : Sets)
      for (const Rule &R : RS->rules())
        for (const Condition &C : R.Conditions) {
          if (std::isnan(C.Threshold))
            continue;
          double T = C.Threshold;
          Values[C.Feature].push_back(std::nextafter(T, -Inf));
          Values[C.Feature].push_back(T);
          Values[C.Feature].push_back(std::nextafter(T, Inf));
        }
    for (unsigned F = 0; F != NumFeatures; ++F) {
      std::vector<double> &V = Values[F];
      if (V.empty()) {
        V.push_back(0.0);
        continue;
      }
      std::sort(V.begin(), V.end());
      V.erase(std::unique(V.begin(), V.end()), V.end());
      if (WithNaN)
        V.push_back(std::numeric_limits<double>::quiet_NaN());
    }
  }

  /// Grid cardinality, saturated at UINT64_MAX.
  uint64_t size() const {
    uint64_t N = 1;
    for (const std::vector<double> &V : Values) {
      uint64_t K = V.size();
      if (N > std::numeric_limits<uint64_t>::max() / K)
        return std::numeric_limits<uint64_t>::max();
      N *= K;
    }
    return N;
  }

  /// Calls \p Visit on every grid point until it returns false (early
  /// exit) or the grid is exhausted.  Returns the number of points
  /// visited.
  template <typename Fn> uint64_t forEachPoint(Fn Visit) const {
    size_t Idx[NumFeatures] = {};
    FeatureVector X{};
    for (unsigned F = 0; F != NumFeatures; ++F)
      X[F] = Values[F][0];
    uint64_t Visited = 0;
    for (;;) {
      ++Visited;
      if (!Visit(const_cast<const FeatureVector &>(X)))
        return Visited;
      unsigned F = 0;
      for (; F != NumFeatures; ++F) {
        if (++Idx[F] < Values[F].size()) {
          X[F] = Values[F][Idx[F]];
          break;
        }
        Idx[F] = 0;
        X[F] = Values[F][0];
      }
      if (F == NumFeatures)
        return Visited;
    }
  }
};

/// Per-feature observed [min, max] over a dataset.
struct ObservedRange {
  double Min[NumFeatures];
  double Max[NumFeatures];
  bool Valid = false;

  explicit ObservedRange(const Dataset *Data) {
    if (!Data || Data->empty())
      return;
    Valid = true;
    for (unsigned F = 0; F != NumFeatures; ++F) {
      Min[F] = Inf;
      Max[F] = -Inf;
    }
    for (const Instance &I : *Data)
      for (unsigned F = 0; F != NumFeatures; ++F) {
        Min[F] = std::min(Min[F], I.X[F]);
        Max[F] = std::max(Max[F], I.X[F]);
      }
  }
};

} // namespace

const char *schedfilter::getSeverityName(LintSeverity S) {
  switch (S) {
  case LintSeverity::Note:
    return "note";
  case LintSeverity::Warning:
    return "warning";
  case LintSeverity::Error:
    return "error";
  }
  return "unknown";
}

size_t RuleAnalysis::numFindings(LintSeverity S) const {
  size_t N = 0;
  for (const LintFinding &F : Findings)
    N += F.Severity == S;
  return N;
}

size_t RuleAnalysis::removedRules() const {
  size_t N = 0;
  for (char R : RemoveRule)
    N += R != 0;
  return N;
}

size_t RuleAnalysis::removedConditions() const {
  size_t N = 0;
  for (size_t I = 0; I != RemoveCondition.size(); ++I) {
    if (I < RemoveRule.size() && RemoveRule[I])
      continue;
    for (char C : RemoveCondition[I])
      N += C != 0;
  }
  return N;
}

std::vector<char>
schedfilter::redundantConditionMask(const Rule &R,
                                    std::vector<size_t> *Subsumer) {
  // Keep the tightest test per (feature, direction); every looser or
  // later-duplicate same-direction test is subsumed.  NaN thresholds are
  // excluded (the rule is dead regardless; the analyzer reports that as
  // its own finding).
  std::vector<char> Mask(R.Conditions.size(), 0);
  if (Subsumer)
    Subsumer->assign(R.Conditions.size(), LintFinding::npos);
  for (size_t C = 0; C != R.Conditions.size(); ++C) {
    const Condition &Cond = R.Conditions[C];
    if (std::isnan(Cond.Threshold))
      continue;
    size_t Tightest = LintFinding::npos;
    for (size_t D = 0; D != R.Conditions.size(); ++D) {
      const Condition &Other = R.Conditions[D];
      if (D == C || Other.Feature != Cond.Feature ||
          Other.IsLessEqual != Cond.IsLessEqual ||
          std::isnan(Other.Threshold))
        continue;
      bool OtherTighter = Cond.IsLessEqual
                              ? Other.Threshold < Cond.Threshold
                              : Other.Threshold > Cond.Threshold;
      bool Duplicate = Other.Threshold == Cond.Threshold && D < C;
      if (OtherTighter || Duplicate) {
        Tightest = D;
        break;
      }
    }
    if (Tightest != LintFinding::npos) {
      Mask[C] = 1;
      if (Subsumer)
        (*Subsumer)[C] = Tightest;
    }
  }
  return Mask;
}

RuleAnalysis schedfilter::analyzeRuleSet(const RuleSet &RS,
                                         const Dataset *Observed,
                                         uint64_t MaxGridPoints) {
  RuleAnalysis A;
  const std::vector<Rule> &Rules = RS.rules();
  A.RemoveRule.assign(Rules.size(), 0);
  A.RemoveCondition.resize(Rules.size());

  ObservedRange Range(Observed);
  std::vector<Box> Boxes;
  Boxes.reserve(Rules.size());

  auto Emit = [&A](LintKind Kind, LintSeverity Sev, size_t RuleI, size_t CondI,
                   size_t Other, std::string Msg) {
    A.Findings.push_back(
        {Kind, Sev, RuleI, CondI, Other, std::move(Msg)});
  };

  // --- Per-rule pass: threshold hygiene, within-rule redundancy, and
  // feasibility of the interval box. ---
  for (size_t I = 0; I != Rules.size(); ++I) {
    const Rule &R = Rules[I];
    A.RemoveCondition[I].assign(R.Conditions.size(), 0);

    for (size_t C = 0; C != R.Conditions.size(); ++C) {
      const Condition &Cond = R.Conditions[C];
      unsigned F = Cond.Feature;
      double T = Cond.Threshold;
      std::string CondStr = "condition '" + Cond.toString() + "'";

      if (!std::isfinite(T)) {
        Emit(LintKind::NonFiniteThreshold, LintSeverity::Error, I, C,
             LintFinding::npos,
             ruleRef(I) + ": " + CondStr + " has a non-finite threshold" +
                 (std::isnan(T) ? " (NaN can never compare true)"
                                : " (no real block reaches infinity)"));
        continue;
      }

      // Domain hygiene: every Table 1 feature is nonnegative, and all but
      // bbLen are fractions in [0, 1].
      bool Mismatch = false;
      const char *Domain = F == FeatBBLen ? "a nonnegative instruction count"
                                          : "a fraction in [0, 1]";
      if (T < 0.0) {
        Mismatch = true;
        Emit(LintKind::DomainMismatch, LintSeverity::Warning, I, C,
             LintFinding::npos,
             ruleRef(I) + ": " + CondStr +
                 (Cond.IsLessEqual
                      ? " can never match a real block ('" +
                            std::string(getFeatureName(F)) + "' is " + Domain +
                            ", never below " + fmt(T) + ")"
                      : " is vacuous ('" + std::string(getFeatureName(F)) +
                            "' is " + Domain + ", always above " + fmt(T) +
                            ")"));
      } else if (F != FeatBBLen && T > 1.0) {
        Mismatch = true;
        Emit(LintKind::DomainMismatch, LintSeverity::Warning, I, C,
             LintFinding::npos,
             ruleRef(I) + ": " + CondStr +
                 (Cond.IsLessEqual
                      ? " is vacuous ('" + std::string(getFeatureName(F)) +
                            "' is a fraction in [0, 1], always below " +
                            fmt(T) + ")"
                      : " can never match a real block ('" +
                            std::string(getFeatureName(F)) +
                            "' is a fraction in [0, 1], never above " +
                            fmt(T) + ")"));
      }

      // Observed-training-range hygiene (only when the static domain was
      // fine -- a negative threshold is already reported above).
      if (Range.Valid && !Mismatch &&
          (T < Range.Min[F] || T > Range.Max[F]))
        Emit(LintKind::OutOfObservedRange, LintSeverity::Note, I, C,
             LintFinding::npos,
             ruleRef(I) + ": threshold " + fmt(T) + " on '" +
                 getFeatureName(F) + "' lies outside the observed training "
                 "range [" + fmt(Range.Min[F]) + ", " + fmt(Range.Max[F]) +
                 "]");
    }

    // Within-rule redundancy via the shared keep-tightest pass (also
    // used by CompiledFilter::canonicalRules).
    {
      std::vector<size_t> Subsumer;
      A.RemoveCondition[I] = redundantConditionMask(R, &Subsumer);
      for (size_t C = 0; C != R.Conditions.size(); ++C)
        if (A.RemoveCondition[I][C])
          Emit(LintKind::RedundantCondition, LintSeverity::Warning, I, C,
               Subsumer[C],
               ruleRef(I) + ": condition '" + R.Conditions[C].toString() +
                   "' is redundant (subsumed by '" +
                   R.Conditions[Subsumer[C]].toString() + "')");
    }

    // Feasibility of the box.
    Box B = buildBox(R);
    if (B.NeverMatches) {
      A.RemoveRule[I] = 1;
      Emit(LintKind::DeadRule, LintSeverity::Error, I, LintFinding::npos,
           LintFinding::npos,
           ruleRef(I) + " is dead: a NaN threshold makes its antecedent "
                        "unsatisfiable");
    } else if (unsigned F = B.emptyFeature(); F != NumFeatures) {
      A.RemoveRule[I] = 1;
      Emit(LintKind::DeadRule, LintSeverity::Error, I, LintFinding::npos,
           LintFinding::npos,
           ruleRef(I) + " is dead: it requires '" + getFeatureName(F) +
               "' >= " + fmt(B.Lo[F]) + " and <= " + fmt(B.Hi[F]) +
               ", which no value satisfies");
    }
    Boxes.push_back(B);
  }

  // --- Cross-rule pass: shadowing.  First-match semantics: any input
  // matching rule J also matches the containing earlier rule I, so I
  // always claims it and J can never fire.  Containment is transitive,
  // so a rule shadowed by an already-shadowed rule is itself reported
  // against the earliest container found. ---
  for (size_t J = 0; J != Rules.size(); ++J) {
    if (A.RemoveRule[J] || Boxes[J].empty())
      continue;
    for (size_t I = 0; I != J; ++I) {
      if (Boxes[I].empty() || !Boxes[I].contains(Boxes[J]))
        continue;
      bool SameConclusion = Rules[I].Conclusion == Rules[J].Conclusion;
      A.RemoveRule[J] = 1;
      Emit(LintKind::ShadowedRule,
           SameConclusion ? LintSeverity::Warning : LintSeverity::Error, J,
           LintFinding::npos, I,
           ruleRef(J) + " is shadowed: every block it matches is claimed "
                        "first by " +
               ruleRef(I) +
               (SameConclusion
                    ? " (same conclusion; the rule is redundant)"
                    : ", which concludes the opposite class"));
      break;
    }
  }

  // --- Default-class reachability, decided exactly on the corner grid
  // of the rule set's own thresholds (real-valued inputs; feature
  // vectors of real blocks are never NaN). ---
  {
    CornerGrid Grid({&RS}, /*WithNaN=*/false);
    uint64_t Size = Grid.size();
    if (Size > MaxGridPoints) {
      Emit(LintKind::UnreachableDefault, LintSeverity::Note,
           LintFinding::npos, LintFinding::npos, LintFinding::npos,
           "default-class reachability left undecided: the threshold corner "
           "grid has " + std::to_string(Size) + " points (cap " +
               std::to_string(MaxGridPoints) + ")");
    } else {
      bool Reachable = false;
      Grid.forEachPoint([&](const FeatureVector &X) {
        bool Covered = false;
        for (const Rule &R : Rules)
          if (R.matches(X)) {
            Covered = true;
            break;
          }
        Reachable = !Covered;
        return Covered; // stop at the first fall-through point
      });
      if (!Reachable)
        Emit(LintKind::UnreachableDefault, LintSeverity::Warning,
             LintFinding::npos, LintFinding::npos, LintFinding::npos,
             "the default class '" +
                 std::string(getLabelName(RS.getDefaultClass())) +
                 "' can never apply: the rules jointly cover every "
                 "real-valued input");
    }
  }

  // Present findings in source order (set-level findings last); passes
  // above already emit conditions in order within each rule.
  std::stable_sort(A.Findings.begin(), A.Findings.end(),
                   [](const LintFinding &L, const LintFinding &R) {
                     return L.RuleIndex < R.RuleIndex;
                   });
  return A;
}

RuleSet schedfilter::normalizeRuleSet(const RuleSet &RS,
                                      const RuleAnalysis &A) {
  RuleSet Out(RS.getDefaultClass());
  const std::vector<Rule> &Rules = RS.rules();
  for (size_t I = 0; I != Rules.size(); ++I) {
    if (I < A.RemoveRule.size() && A.RemoveRule[I])
      continue;
    const Rule &R = Rules[I];
    Rule Kept;
    Kept.Conclusion = R.Conclusion;
    Kept.NumCorrect = R.NumCorrect;
    Kept.NumIncorrect = R.NumIncorrect;
    for (size_t C = 0; C != R.Conditions.size(); ++C) {
      bool Drop = I < A.RemoveCondition.size() &&
                  C < A.RemoveCondition[I].size() && A.RemoveCondition[I][C];
      if (!Drop)
        Kept.Conditions.push_back(R.Conditions[C]);
    }
    Out.addRule(std::move(Kept));
  }
  return Out;
}

CornerGridWalk schedfilter::forEachCornerPoint(
    const std::vector<const RuleSet *> &Sets, bool WithNaN,
    uint64_t MaxPoints,
    const std::function<bool(const FeatureVector &)> &Visit) {
  CornerGridWalk Walk;
  CornerGrid Grid(Sets, WithNaN);
  Walk.GridSize = Grid.size();

  if (Walk.GridSize <= MaxPoints) {
    Walk.PointsVisited = Grid.forEachPoint(Visit);
    return Walk;
  }

  // Grid too large to enumerate: visit a deterministic sample of grid
  // points instead.  Conclusions are then evidence, not a proof.
  Walk.Exhaustive = false;
  Rng R(0x5f11e7);
  FeatureVector X{};
  for (uint64_t P = 0; P != MaxPoints; ++P) {
    for (unsigned F = 0; F != NumFeatures; ++F) {
      const std::vector<double> &V = Grid.Values[F];
      X[F] = V[R.below(static_cast<uint32_t>(V.size()))];
    }
    ++Walk.PointsVisited;
    if (!Visit(X))
      return Walk;
  }
  return Walk;
}

EquivalenceCheck schedfilter::checkPredictEquivalence(const RuleSet &A,
                                                      const RuleSet &B,
                                                      uint64_t MaxPoints) {
  EquivalenceCheck Result;
  CornerGridWalk Walk = forEachCornerPoint(
      {&A, &B}, /*WithNaN=*/true, MaxPoints, [&](const FeatureVector &X) {
        if (A.predict(X) == B.predict(X))
          return true;
        Result.Equivalent = false;
        Result.Counterexample = X;
        return false;
      });
  Result.Exhaustive = Walk.Exhaustive;
  Result.GridSize = Walk.GridSize;
  Result.PointsChecked = Walk.PointsVisited;
  return Result;
}

size_t schedfilter::printFindings(const RuleAnalysis &A, std::ostream &OS,
                                  const std::string &Path,
                                  const std::vector<size_t> *RuleLines) {
  for (const LintFinding &F : A.Findings) {
    if (!Path.empty()) {
      OS << Path;
      if (RuleLines && F.RuleIndex != LintFinding::npos &&
          F.RuleIndex < RuleLines->size())
        OS << ':' << (*RuleLines)[F.RuleIndex];
      OS << ": ";
    }
    OS << getSeverityName(F.Severity) << ": " << F.Message << '\n';
  }
  return A.Findings.size();
}
