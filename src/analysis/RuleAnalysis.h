//===- analysis/RuleAnalysis.h - Static analysis of rule sets ---*- C++ -*-===//
///
/// \file
/// A static analyzer for induced filters.  Every rule's antecedent is a
/// conjunction of single-feature threshold tests, so it denotes an
/// axis-aligned box over feature space: "bbLen >= 7, calls <= 0.0857" is
/// the box bbLen in [7, +inf] x calls in [-inf, 0.0857].  Abstracting each
/// rule to its box (a per-feature interval domain) makes the interesting
/// questions about a RuleSet decidable by interval arithmetic:
///
///   * feasibility -- a rule whose intervals are empty on some feature
///     ("bbLen <= 3, bbLen >= 7") can never fire (a *dead* rule);
///   * condition redundancy -- within one rule, a tighter test on a
///     feature subsumes a looser same-direction test ("bbLen >= 7" makes
///     "bbLen >= 5" redundant);
///   * shadowing -- a later rule whose box is contained in an earlier
///     rule's box can never fire, because first-match semantics hand every
///     input it would match to the earlier rule; likewise the default
///     class is unreachable when the rules jointly cover all inputs;
///   * threshold hygiene -- NaN/infinite thresholds, negative thresholds
///     on nonnegative features, fraction tests outside [0, 1], and (when a
///     training Dataset is supplied) thresholds outside a feature's
///     observed range.
///
/// The analyzer emits structured findings and a removal plan; applying the
/// plan (normalizeRuleSet) deletes dead/shadowed rules and redundant
/// conditions.  The transformation is predict()-equivalent by
/// construction, and checkPredictEquivalence *proves* it for a concrete
/// pair of rule sets by exhaustive evaluation over the threshold corner
/// grid: because every test is an axis-aligned threshold comparison, the
/// outcome of every condition in either set is constant on the cells that
/// feature's thresholds cut the double line into, so evaluating one
/// representative per cell (the threshold itself and its two neighboring
/// doubles, plus NaN) covers every behaviorally distinct input -- a sound
/// and complete finite test basis.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_ANALYSIS_RULEANALYSIS_H
#define SCHEDFILTER_ANALYSIS_RULEANALYSIS_H

#include "ml/Rule.h"

#include <functional>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

namespace schedfilter {

/// Severity of a lint finding.  Errors are facts provable over *all*
/// inputs (a rule that can never fire, a non-finite threshold); warnings
/// are either removable redundancy or tests no real block can satisfy;
/// notes are advisory (e.g. a threshold outside the observed training
/// range).
enum class LintSeverity { Note, Warning, Error };

/// "note", "warning" or "error".
const char *getSeverityName(LintSeverity S);

/// What kind of defect a finding reports.
enum class LintKind {
  DeadRule,           ///< Antecedent infeasible: the rule can never fire.
  NonFiniteThreshold, ///< NaN or infinite threshold.
  ShadowedRule,       ///< Box contained in an earlier rule's box.
  RedundantCondition, ///< Subsumed by a tighter test in the same rule.
  UnreachableDefault, ///< No real-valued input reaches the default class.
  DomainMismatch,     ///< Threshold outside the feature's domain.
  OutOfObservedRange, ///< Threshold outside the supplied training range.
};

/// One diagnostic.  RuleIndex/CondIndex locate the subject (npos = the
/// rule set as a whole, e.g. default-class findings); OtherRule names the
/// earlier rule for shadowing findings.
struct LintFinding {
  static constexpr size_t npos = std::numeric_limits<size_t>::max();

  LintKind Kind = LintKind::DeadRule;
  LintSeverity Severity = LintSeverity::Error;
  size_t RuleIndex = npos;
  size_t CondIndex = npos;
  size_t OtherRule = npos;
  std::string Message; ///< Human text, no severity/position prefix.
};

/// The analyzer's full output: findings plus the removal plan that
/// normalizeRuleSet applies.
struct RuleAnalysis {
  std::vector<LintFinding> Findings;

  /// RemoveRule[i]: rule i is dead or shadowed (removal is
  /// predict()-equivalent).
  std::vector<char> RemoveRule;
  /// RemoveCondition[i][c]: condition c of rule i is subsumed by a
  /// tighter same-feature test in the same rule.
  std::vector<std::vector<char>> RemoveCondition;

  size_t numFindings(LintSeverity S) const;
  bool hasErrors() const { return numFindings(LintSeverity::Error) != 0; }
  /// True when there is nothing to report at any severity.
  bool clean() const { return Findings.empty(); }

  /// Rules / conditions the removal plan deletes.  RemovedConditions
  /// counts only conditions of surviving rules (a removed rule's
  /// conditions disappear with it).
  size_t removedRules() const;
  size_t removedConditions() const;
};

/// Statically analyzes \p RS.  When \p Observed is non-null, threshold
/// hygiene additionally checks each condition against the feature ranges
/// observed in that dataset (the training corpus).  \p MaxGridPoints
/// bounds the corner-grid default-reachability check; when the grid is
/// larger the check is skipped with a note (every other analysis is
/// grid-free interval arithmetic and always runs).
RuleAnalysis analyzeRuleSet(const RuleSet &RS,
                            const Dataset *Observed = nullptr,
                            uint64_t MaxGridPoints = 1u << 22);

/// The analyzer's within-rule keep-tightest pass, exported on its own:
/// Mask[c] != 0 iff condition c of \p R is subsumed by a tighter (or
/// earlier duplicate) same-feature, same-direction test in the same rule,
/// so dropping it is predict()-equivalent.  NaN-threshold conditions are
/// never marked (the rule is dead regardless; the analyzer reports that
/// separately).  This is the single definition of "canonical condition
/// order" shared by analyzeRuleSet / normalizeRuleSet (sf-lint --fix) and
/// CompiledFilter::canonicalRules, so a linted file and a compiled
/// filter's canonical form agree by construction.  When \p Subsumer is
/// non-null it receives, per condition, the index of the subsuming
/// condition (LintFinding::npos when the condition is kept).
std::vector<char> redundantConditionMask(const Rule &R,
                                         std::vector<size_t> *Subsumer =
                                             nullptr);

/// Applies \p A's removal plan to \p RS: dead and shadowed rules are
/// dropped, redundant conditions of surviving rules are dropped, order
/// and the default class are preserved, and per-rule coverage counts are
/// carried over.  The result is predict()-equivalent to \p RS on every
/// input (including NaN features: a removed rule could never fire, and a
/// removed condition always leaves a tighter test on the same feature in
/// place).
RuleSet normalizeRuleSet(const RuleSet &RS, const RuleAnalysis &A);

/// Outcome of the corner-grid equivalence check.
struct EquivalenceCheck {
  bool Equivalent = true;
  /// True when the whole corner grid was evaluated: the verdict is a
  /// proof.  False when GridSize exceeded the cap and a deterministic
  /// sample of the grid was evaluated instead.
  bool Exhaustive = true;
  uint64_t GridSize = 0;      ///< Corner-grid cardinality (saturated).
  uint64_t PointsChecked = 0; ///< Inputs actually evaluated.
  /// When !Equivalent: an input the two sets classify differently.
  FeatureVector Counterexample{};
};

/// Result of enumerating a threshold corner grid with forEachCornerPoint.
struct CornerGridWalk {
  /// True when every grid point was offered to the visitor (or it exited
  /// early): conclusions drawn from the walk hold for *all* inputs.
  /// False when the grid exceeded the cap and a deterministic sample was
  /// visited instead.
  bool Exhaustive = true;
  uint64_t GridSize = 0;      ///< Corner-grid cardinality (saturated).
  uint64_t PointsVisited = 0; ///< Points actually offered to the visitor.
};

/// Enumerates the threshold corner grid of the union of \p Sets'
/// conditions: per feature, each threshold and its two neighboring
/// doubles (plus, when \p WithNaN, a NaN coordinate), i.e. one
/// representative per behaviorally distinct cell of feature space -- a
/// sound and complete finite test basis for any predicate built from
/// those thresholds.  Calls \p Visit on every point until it returns
/// false (early exit).  When the grid exceeds \p MaxPoints, visits a
/// deterministic pseudo-random sample of MaxPoints grid points instead
/// and reports Exhaustive = false.
CornerGridWalk
forEachCornerPoint(const std::vector<const RuleSet *> &Sets, bool WithNaN,
                   uint64_t MaxPoints,
                   const std::function<bool(const FeatureVector &)> &Visit);

/// Decides predict()-equivalence of \p A and \p B over every double-valued
/// feature vector (NaN coordinates included) by evaluating both on the
/// threshold corner grid of the union of their conditions.  Exhaustive --
/// a proof of equivalence -- whenever the grid fits in \p MaxPoints;
/// otherwise falls back to a deterministic sample of the grid and reports
/// Exhaustive = false.
EquivalenceCheck checkPredictEquivalence(const RuleSet &A, const RuleSet &B,
                                         uint64_t MaxPoints = 1u << 22);

/// Renders findings one per line to \p OS in the file:line discipline of
/// src/io/: "PATH:LINE: severity: message" when \p Path and \p RuleLines
/// (1-based source line per rule, from readRuleSetFile) are supplied,
/// "rule #N: severity: message" otherwise.  Returns the number of
/// findings printed.
size_t printFindings(const RuleAnalysis &A, std::ostream &OS,
                     const std::string &Path = "",
                     const std::vector<size_t> *RuleLines = nullptr);

} // namespace schedfilter

#endif // SCHEDFILTER_ANALYSIS_RULEANALYSIS_H
