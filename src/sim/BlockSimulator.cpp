//===- sim/BlockSimulator.cpp - Simplified block timing model --------------===//

#include "sim/BlockSimulator.h"

#include "sched/SchedContext.h"

#include <algorithm>
#include <cassert>

using namespace schedfilter;

namespace {

/// Fills \p Identity with 0..N-1, reusing its capacity.
const std::vector<int> &identityOrder(std::vector<int> &Identity, size_t N) {
  Identity.resize(N);
  for (size_t I = 0; I != N; ++I)
    Identity[I] = static_cast<int>(I);
  return Identity;
}

} // namespace

uint64_t BlockSimulator::simulate(const BasicBlock &BB) const {
  SimScratch S;
  return run(BB, identityOrder(S.Identity, BB.size()), S, nullptr);
}

uint64_t BlockSimulator::simulate(const BasicBlock &BB,
                                  const std::vector<int> &Order) const {
  SimScratch S;
  return run(BB, Order, S, nullptr);
}

uint64_t BlockSimulator::simulate(const BasicBlock &BB,
                                  SchedContext &Ctx) const {
  SimScratch &S = Ctx.simScratch();
  return run(BB, identityOrder(S.Identity, BB.size()), S, nullptr);
}

uint64_t BlockSimulator::simulate(const BasicBlock &BB,
                                  const std::vector<int> &Order,
                                  SchedContext &Ctx) const {
  return run(BB, Order, Ctx.simScratch(), nullptr);
}

SimTrace BlockSimulator::simulateWithTrace(
    const BasicBlock &BB, const std::vector<int> &Order) const {
  SimTrace Trace;
  SimScratch S;
  Trace.TotalCycles = run(BB, Order, S, &Trace);
  return Trace;
}

const SimTrace &
BlockSimulator::simulateWithTrace(const BasicBlock &BB,
                                  const std::vector<int> &Order,
                                  SchedContext &Ctx) const {
  SimTrace &Trace = Ctx.trace();
  Trace.Events.clear();
  Trace.TotalCycles = run(BB, Order, Ctx.simScratch(), &Trace);
  return Trace;
}

uint64_t BlockSimulator::run(const BasicBlock &BB,
                             const std::vector<int> &Order, SimScratch &S,
                             SimTrace *Trace) const {
  assert(Order.size() == BB.size() && "order must cover the block");
  if (BB.empty())
    return 0;

  // Scoreboard state.  One epoch per block invalidates every register's
  // ready cycle in O(1); the per-unit table is tiny and cleared directly.
  ++S.Epoch;
  S.UnitFree.assign(Model.getNumUnits(), 0);
  uint64_t LastStoreDone = 0;   // completion cycle of the latest store
  uint64_t SerializeUntil = 0;  // barrier: nothing may issue before this
  uint64_t MaxCompletion = 0;

  uint64_t Cycle = 0;
  unsigned IssuedNonBranch = 0;
  unsigned IssuedBranch = 0;

  size_t Pos = 0;
  while (Pos != Order.size()) {
    const Instruction &Inst = BB[static_cast<size_t>(Order[Pos])];
    const OpcodeInfo &Info = Inst.getInfo();
    unsigned Lat = Model.getLatency(Inst.getOpcode());
    bool IsBranchClass = Info.Unit == FuClass::Branch;

    // Earliest cycle the instruction could issue, independent of the
    // current cycle cursor: operands ready, memory ordered, barriers
    // drained, and a suitable functional unit free.
    uint64_t Earliest = SerializeUntil;
    for (Reg U : Inst.uses()) {
      if (static_cast<size_t>(U) < S.RegStamp.size() &&
          S.RegStamp[U] == S.Epoch)
        Earliest = std::max(Earliest, S.RegReady[U]);
    }
    if (Inst.readsMemory())
      Earliest = std::max(Earliest, LastStoreDone);

    const std::vector<unsigned> &Candidates = Model.unitsFor(Info.Unit);
    assert(!Candidates.empty() && "no functional unit for this class");
    unsigned BestUnit = Candidates.front();
    uint64_t BestFree = S.UnitFree[BestUnit];
    for (unsigned U : Candidates) {
      if (S.UnitFree[U] < BestFree) {
        BestFree = S.UnitFree[U];
        BestUnit = U;
      }
    }
    Earliest = std::max(Earliest, BestFree);

    // Advance the cycle cursor if this instruction must stall.  In-order
    // issue: later instructions cannot bypass it.
    if (Earliest > Cycle) {
      Cycle = Earliest;
      IssuedNonBranch = 0;
      IssuedBranch = 0;
    }

    // Enforce per-cycle issue limits.
    if (IsBranchClass ? IssuedBranch >= Model.getMaxIssueBranch()
                      : IssuedNonBranch >= Model.getMaxIssueNonBranch()) {
      ++Cycle;
      IssuedNonBranch = 0;
      IssuedBranch = 0;
      continue; // retry the same instruction in the new cycle
    }

    // Issue.
    uint64_t Done = Cycle + Lat;
    for (Reg D : Inst.defs()) {
      if (static_cast<size_t>(D) >= S.RegStamp.size()) {
        S.RegStamp.resize(static_cast<size_t>(D) + 1, 0);
        S.RegReady.resize(static_cast<size_t>(D) + 1, 0);
      }
      S.RegStamp[D] = S.Epoch;
      S.RegReady[D] = Done;
    }
    if (Inst.writesMemory())
      LastStoreDone = std::max(LastStoreDone, Done);
    S.UnitFree[BestUnit] =
        Model.isPipelined(Inst.getOpcode()) ? Cycle + 1 : Done;
    if (Inst.isBarrier())
      SerializeUntil = std::max(SerializeUntil, Done);
    MaxCompletion = std::max(MaxCompletion, Done);
    if (Trace)
      Trace->Events.push_back({Order[Pos], Cycle, Done, BestUnit});
    if (IsBranchClass)
      ++IssuedBranch;
    else
      ++IssuedNonBranch;
    ++Pos;
  }

  return MaxCompletion;
}

std::string SimTrace::toString(const BasicBlock &BB,
                               const MachineModel &M) const {
  std::string Out = "cycle  unit  instruction (completes)\n";
  for (const IssueEvent &E : Events) {
    std::string Line = std::to_string(E.IssueCycle);
    while (Line.size() < 5)
      Line += ' ';
    Line += "  " + M.units()[E.Unit].Name;
    while (Line.size() < 11)
      Line += ' ';
    Line += "  " +
            BB[static_cast<size_t>(E.OriginalIndex)].toString() + " (" +
            std::to_string(E.CompleteCycle) + ")\n";
    Out += Line;
  }
  Out += "total: " + std::to_string(TotalCycles) + " cycles\n";
  return Out;
}
