//===- sim/BlockSimulator.h - Simplified block timing model -----*- C++ -*-===//
///
/// \file
/// The simplified machine simulator the paper uses to label training
/// instances (§2.2): it estimates the cost in cycles of one basic block
/// under a given instruction order.  As in the paper, the simulator makes
/// simplifying assumptions — it models in-order issue with the 7410's issue
/// rules (one branch plus two non-branch per cycle), per-class functional
/// units with result latencies, and scoreboarded operand readiness; it does
/// not model caches, branch prediction, or machine state carried across
/// blocks.  "The exact cycle estimate is not crucial; rather, the estimate
/// needs only to give a good sense of the difference in timing between two
/// versions of the same block."
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_SIM_BLOCKSIMULATOR_H
#define SCHEDFILTER_SIM_BLOCKSIMULATOR_H

#include "mir/BasicBlock.h"
#include "target/MachineModel.h"

#include <cstdint>
#include <vector>

namespace schedfilter {

class SchedContext;

/// Per-instruction pipeline events recorded by simulateWithTrace.
struct IssueEvent {
  int OriginalIndex = 0;     ///< index into the (unpermuted) block
  uint64_t IssueCycle = 0;   ///< cycle the instruction began executing
  uint64_t CompleteCycle = 0;///< cycle its result became available
  unsigned Unit = 0;         ///< functional unit index that executed it
};

/// A full simulation trace: the block's total cycles plus one event per
/// instruction, in issue order.  Useful for debugging schedules and for
/// the examples' visualizations; the scalar simulate() entry points are
/// what the experiment harness uses.
struct SimTrace {
  uint64_t TotalCycles = 0;
  std::vector<IssueEvent> Events;

  /// Renders an issue table, one line per instruction.
  std::string toString(const BasicBlock &BB, const MachineModel &M) const;
};

/// Scoreboard scratch for simulating one block: per-register result-ready
/// cycles (epoch-stamped flat array -- absent entries are invalidated in
/// O(1) per block) and per-unit busy cycles.  Owned by a SchedContext in
/// the reused path or created locally by the one-shot entry points.
struct SimScratch {
  uint64_t Epoch = 0;
  /// RegReady[R] is valid iff RegStamp[R] == Epoch; an invalid entry means
  /// "ready at cycle 0" (value never written in this block).
  std::vector<uint64_t> RegStamp;
  std::vector<uint64_t> RegReady;
  std::vector<uint64_t> UnitFree;
  /// Reused identity permutation for the order-less simulate() path.
  std::vector<int> Identity;
};

/// Estimates block cost in cycles under a machine model.
class BlockSimulator {
public:
  explicit BlockSimulator(const MachineModel &Model) : Model(Model) {}

  /// Cycles to execute \p BB in its current instruction order.  Returns 0
  /// for an empty block.
  uint64_t simulate(const BasicBlock &BB) const;

  /// Cycles to execute \p BB with its instructions permuted by \p Order
  /// (Order[i] = original index of the i-th instruction executed).
  uint64_t simulate(const BasicBlock &BB, const std::vector<int> &Order) const;

  /// Allocation-free steady-state variants reusing \p Ctx scoreboard
  /// scratch; results are identical to the one-shot entry points.
  uint64_t simulate(const BasicBlock &BB, SchedContext &Ctx) const;
  uint64_t simulate(const BasicBlock &BB, const std::vector<int> &Order,
                    SchedContext &Ctx) const;

  /// Like simulate(), additionally recording per-instruction issue and
  /// completion cycles.  TotalCycles always equals what simulate()
  /// returns for the same inputs.
  SimTrace simulateWithTrace(const BasicBlock &BB,
                             const std::vector<int> &Order) const;

  /// Trace variant reusing \p Ctx scratch and its trace buffer; the
  /// returned reference lives until the next trace call on \p Ctx.
  const SimTrace &simulateWithTrace(const BasicBlock &BB,
                                    const std::vector<int> &Order,
                                    SchedContext &Ctx) const;

private:
  uint64_t run(const BasicBlock &BB, const std::vector<int> &Order,
               SimScratch &S, SimTrace *Trace) const;

  const MachineModel &Model;
};

} // namespace schedfilter

#endif // SCHEDFILTER_SIM_BLOCKSIMULATOR_H
