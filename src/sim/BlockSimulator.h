//===- sim/BlockSimulator.h - Simplified block timing model -----*- C++ -*-===//
///
/// \file
/// The simplified machine simulator the paper uses to label training
/// instances (§2.2): it estimates the cost in cycles of one basic block
/// under a given instruction order.  As in the paper, the simulator makes
/// simplifying assumptions — it models in-order issue with the 7410's issue
/// rules (one branch plus two non-branch per cycle), per-class functional
/// units with result latencies, and scoreboarded operand readiness; it does
/// not model caches, branch prediction, or machine state carried across
/// blocks.  "The exact cycle estimate is not crucial; rather, the estimate
/// needs only to give a good sense of the difference in timing between two
/// versions of the same block."
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_SIM_BLOCKSIMULATOR_H
#define SCHEDFILTER_SIM_BLOCKSIMULATOR_H

#include "mir/BasicBlock.h"
#include "target/MachineModel.h"

#include <cstdint>
#include <vector>

namespace schedfilter {

/// Per-instruction pipeline events recorded by simulateWithTrace.
struct IssueEvent {
  int OriginalIndex = 0;     ///< index into the (unpermuted) block
  uint64_t IssueCycle = 0;   ///< cycle the instruction began executing
  uint64_t CompleteCycle = 0;///< cycle its result became available
  unsigned Unit = 0;         ///< functional unit index that executed it
};

/// A full simulation trace: the block's total cycles plus one event per
/// instruction, in issue order.  Useful for debugging schedules and for
/// the examples' visualizations; the scalar simulate() entry points are
/// what the experiment harness uses.
struct SimTrace {
  uint64_t TotalCycles = 0;
  std::vector<IssueEvent> Events;

  /// Renders an issue table, one line per instruction.
  std::string toString(const BasicBlock &BB, const MachineModel &M) const;
};

/// Estimates block cost in cycles under a machine model.
class BlockSimulator {
public:
  explicit BlockSimulator(const MachineModel &Model) : Model(Model) {}

  /// Cycles to execute \p BB in its current instruction order.  Returns 0
  /// for an empty block.
  uint64_t simulate(const BasicBlock &BB) const;

  /// Cycles to execute \p BB with its instructions permuted by \p Order
  /// (Order[i] = original index of the i-th instruction executed).
  uint64_t simulate(const BasicBlock &BB, const std::vector<int> &Order) const;

  /// Like simulate(), additionally recording per-instruction issue and
  /// completion cycles.  TotalCycles always equals what simulate()
  /// returns for the same inputs.
  SimTrace simulateWithTrace(const BasicBlock &BB,
                             const std::vector<int> &Order) const;

private:
  uint64_t run(const BasicBlock &BB, const std::vector<int> &Order,
               SimTrace *Trace) const;

  const MachineModel &Model;
};

} // namespace schedfilter

#endif // SCHEDFILTER_SIM_BLOCKSIMULATOR_H
