//===- target/MachineModel.cpp - Target machine timing models -------------===//

#include "target/MachineModel.h"

#include <cstdio>
#include <cstdlib>

using namespace schedfilter;

// Every factory below must assign a latency to every opcode.  If you add
// an opcode to mir/Opcode.h, this assert fires until you extend each
// model's latencyFor() switch; finalize() additionally aborts at model
// construction if any opcode would end up with latency 0.
static_assert(getNumOpcodes() == 42,
              "Opcode enum changed: update every machine model's "
              "latencyFor() table in target/MachineModel.cpp");

namespace schedfilter {
struct LatSpec {
  unsigned Cycles;
  bool Pipelined;
};
} // namespace schedfilter

namespace {

constexpr LatSpec P(unsigned Cycles) { return {Cycles, true}; }
constexpr LatSpec Blocking(unsigned Cycles) { return {Cycles, false}; }

/// MPC7410 (G4) timings.  Simple ALU ops are single-cycle; loads hit the
/// L1 in 3 cycles; stores retire in 1; FP arithmetic is a 3-cycle
/// pipeline; integer and FP divides and square root block their unit for
/// tens of cycles.
LatSpec g4LatencyFor(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Cmp:
  case Opcode::AddImm:
  case Opcode::LoadConst:
  case Opcode::Move:
    return P(1);
  case Opcode::Mul:
    return P(4);
  case Opcode::Div:
    return Blocking(19);
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FMAdd:
  case Opcode::FCmp:
  case Opcode::FNeg:
  case Opcode::FMove:
    return P(3);
  case Opcode::FDiv:
    return Blocking(31);
  case Opcode::FSqrt:
    return Blocking(35);
  case Opcode::LoadInt:
  case Opcode::LoadRef:
    return P(3);
  case Opcode::LoadFloat:
    return P(5); // FPR loads pay extra cycles through the LSU
  case Opcode::StoreInt:
  case Opcode::StoreRef:
    return P(1);
  case Opcode::StoreFloat:
    return P(2); // FPR-to-LSU handoff
  case Opcode::Br:
  case Opcode::BrCond:
  case Opcode::Ret:
    return P(1);
  case Opcode::Call:
    // The call itself is a single dispatch cycle; the callee's cost is
    // accounted elsewhere (and the call is a scheduling barrier anyway).
    return P(1);
  case Opcode::CallVirtual:
    return P(8); // dispatch chain: table load + indirect branch
  case Opcode::SysRegRead:
    return P(3);
  case Opcode::SysRegWrite:
    return P(2);
  case Opcode::MemBar:
    return Blocking(8);
  case Opcode::Trap:
    return P(2);
  case Opcode::NullCheck:
  case Opcode::BoundsCheck:
  case Opcode::GcSafepoint:
  case Opcode::YieldPoint:
  case Opcode::ThreadSwitchPoint:
    return P(1);
  case Opcode::NumOpcodes:
    break;
  }
  return {0, true}; // caught by finalize()
}

/// PowerPC 970 (G5) timings: deeper pipelines than the G4 -- FP
/// arithmetic is a 6-cycle pipeline, loads take 5 cycles to the FPRs --
/// in exchange for the wider issue the unit inventory provides.
LatSpec g5LatencyFor(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Cmp:
  case Opcode::AddImm:
  case Opcode::LoadConst:
  case Opcode::Move:
    return P(2);
  case Opcode::Mul:
    return P(7);
  case Opcode::Div:
    return Blocking(68);
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FMAdd:
  case Opcode::FCmp:
  case Opcode::FNeg:
    return P(6);
  case Opcode::FMove:
    return P(3);
  case Opcode::FDiv:
    return Blocking(33);
  case Opcode::FSqrt:
    return Blocking(40);
  case Opcode::LoadInt:
  case Opcode::LoadRef:
    return P(5);
  case Opcode::LoadFloat:
    return P(7);
  case Opcode::StoreInt:
  case Opcode::StoreRef:
    return P(1);
  case Opcode::StoreFloat:
    return P(2);
  case Opcode::Br:
  case Opcode::BrCond:
  case Opcode::Ret:
    return P(1);
  case Opcode::Call:
    return P(8);
  case Opcode::CallVirtual:
    return P(10);
  case Opcode::SysRegRead:
    return P(4);
  case Opcode::SysRegWrite:
    return P(3);
  case Opcode::MemBar:
    return Blocking(10);
  case Opcode::Trap:
    return P(2);
  case Opcode::NullCheck:
  case Opcode::BoundsCheck:
  case Opcode::GcSafepoint:
  case Opcode::YieldPoint:
  case Opcode::ThreadSwitchPoint:
    return P(1);
  case Opcode::NumOpcodes:
    break;
  }
  return {0, true}; // caught by finalize()
}

constexpr uint16_t maskAll =
    fuClassBit(FuClass::IntSimple) | fuClassBit(FuClass::IntComplex) |
    fuClassBit(FuClass::Float) | fuClassBit(FuClass::LoadStore) |
    fuClassBit(FuClass::Branch) | fuClassBit(FuClass::System);

} // namespace

unsigned MachineModel::addUnit(std::string UnitName, uint16_t AcceptMask) {
  Units.push_back({std::move(UnitName), AcceptMask});
  return static_cast<unsigned>(Units.size() - 1);
}

void MachineModel::setTimings(LatSpec (*TableFn)(Opcode)) {
  for (unsigned I = 0; I != getNumOpcodes(); ++I) {
    LatSpec S = TableFn(static_cast<Opcode>(I));
    Latency[I] = S.Cycles;
    Pipelined[I] = S.Pipelined;
  }
}

void MachineModel::finalize() {
  for (auto &List : UnitsByClass)
    List.clear();
  for (unsigned U = 0; U != getNumUnits(); ++U)
    for (unsigned C = 0; C != static_cast<unsigned>(FuClass::NumClasses); ++C)
      if (Units[U].accepts(static_cast<FuClass>(C)))
        UnitsByClass[C].push_back(U);

  for (unsigned C = 0; C != static_cast<unsigned>(FuClass::NumClasses); ++C) {
    if (UnitsByClass[C].empty()) {
      std::fprintf(stderr,
                   "MachineModel %s: no functional unit for FuClass %u\n",
                   Name.c_str(), C);
      std::abort();
    }
  }

  for (unsigned I = 0; I != getNumOpcodes(); ++I) {
    if (Latency[I] == 0) {
      std::fprintf(stderr,
                   "MachineModel %s: opcode %s has no latency entry\n",
                   Name.c_str(), getOpcodeName(static_cast<Opcode>(I)));
      std::abort();
    }
  }
}

namespace {

struct ModelEntry {
  const char *Name;
  MachineModel (*Factory)();
};

const ModelEntry ModelRegistry[] = {
    {"ppc7410", &MachineModel::ppc7410},
    {"ppc970", &MachineModel::ppc970},
    {"simple-scalar", &MachineModel::simpleScalar},
};

} // namespace

std::optional<MachineModel> MachineModel::byName(const std::string &Name) {
  for (const ModelEntry &E : ModelRegistry)
    if (Name == E.Name)
      return E.Factory();
  return std::nullopt;
}

std::string MachineModel::knownNamesList() {
  std::string Out;
  constexpr size_t N = sizeof(ModelRegistry) / sizeof(ModelRegistry[0]);
  for (size_t I = 0; I != N; ++I) {
    if (I != 0)
      Out += I + 1 == N ? " or " : ", ";
    Out += ModelRegistry[I].Name;
  }
  return Out;
}

MachineModel MachineModel::ppc7410() {
  // "One branch and two non-branch instructions per cycle."
  MachineModel M("ppc7410", /*MaxNonBranch=*/2, /*MaxBranch=*/1);

  // Two dissimilar integer units: IU1 runs only simple ALU ops, IU2 also
  // handles mul/div.  One each of FPU, LSU, BPU and system unit.
  M.addUnit("IU1", fuClassBit(FuClass::IntSimple));
  M.addUnit("IU2",
            fuClassBit(FuClass::IntSimple) | fuClassBit(FuClass::IntComplex));
  M.addUnit("FPU", fuClassBit(FuClass::Float));
  M.addUnit("LSU", fuClassBit(FuClass::LoadStore));
  M.addUnit("BPU", fuClassBit(FuClass::Branch));
  M.addUnit("SU", fuClassBit(FuClass::System));

  M.setTimings(&g4LatencyFor);
  M.finalize();
  return M;
}

MachineModel MachineModel::ppc970() {
  // Wider than the G4: up to four non-branch instructions plus a branch
  // per cycle, fed by duplicated FPUs and LSUs.
  MachineModel M("ppc970", /*MaxNonBranch=*/4, /*MaxBranch=*/1);

  M.addUnit("IU1", fuClassBit(FuClass::IntSimple));
  M.addUnit("IU2",
            fuClassBit(FuClass::IntSimple) | fuClassBit(FuClass::IntComplex));
  M.addUnit("FPU1", fuClassBit(FuClass::Float));
  M.addUnit("FPU2", fuClassBit(FuClass::Float));
  M.addUnit("LSU1", fuClassBit(FuClass::LoadStore));
  M.addUnit("LSU2", fuClassBit(FuClass::LoadStore));
  M.addUnit("BPU", fuClassBit(FuClass::Branch));
  M.addUnit("SU", fuClassBit(FuClass::System));

  M.setTimings(&g5LatencyFor);
  M.finalize();
  return M;
}

MachineModel MachineModel::simpleScalar() {
  // Single-issue in-order baseline: one universal unit, G4 latencies.
  // Sharing the G4 latency table keeps it comparable: it differs from the
  // ppc7410 only in issue width and unit count, so it can never beat the
  // superscalar model on the same block.
  MachineModel M("simple-scalar", /*MaxNonBranch=*/1, /*MaxBranch=*/1);
  M.addUnit("ALU", maskAll);
  M.setTimings(&g4LatencyFor);
  M.finalize();
  return M;
}
