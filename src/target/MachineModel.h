//===- target/MachineModel.h - Target machine timing models ----*- C++ -*-===//
///
/// \file
/// Describes the target machine the scheduler and block simulator price
/// code against: the functional-unit inventory, per-opcode latency and
/// pipelining tables, and the per-cycle issue rules.
///
/// The paper's experiments target the PowerPC MPC7410 (G4): two dissimilar
/// integer units (simple ALU ops run on either, mul/div only on the
/// second), one floating-point unit, one load/store unit, one branch unit
/// and one system unit, issuing at most two non-branch instructions plus
/// one branch per cycle, with latencies from one cycle (simple ALU) to
/// many tens of cycles (divides and square roots, which also block their
/// unit because they are not pipelined).  Two more models ride along for
/// the transfer experiments: a PowerPC 970 (G5) -- wider and deeper --
/// and a single-issue "simple-scalar" baseline with one universal unit.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_TARGET_MACHINEMODEL_H
#define SCHEDFILTER_TARGET_MACHINEMODEL_H

#include "mir/Opcode.h"

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace schedfilter {

/// Bit for \p C in a functional unit's accept mask.
constexpr uint16_t fuClassBit(FuClass C) {
  return static_cast<uint16_t>(1u << static_cast<unsigned>(C));
}

/// Latency entry for one opcode: cycles plus whether the unit is
/// pipelined for it.  Defined in MachineModel.cpp alongside the tables.
struct LatSpec;

/// One functional-unit instance (e.g. the second integer unit "IU2").
struct FunctionalUnit {
  std::string Name;
  /// Which FuClasses this unit executes, as an OR of fuClassBit().
  uint16_t AcceptMask = 0;

  bool accepts(FuClass C) const { return (AcceptMask & fuClassBit(C)) != 0; }
};

/// A target machine: unit inventory, latency/pipelining tables and issue
/// rules.  Value type; copying is cheap enough for tests that tweak one
/// model against another.
class MachineModel {
public:
  /// PowerPC MPC7410 (G4), the paper's experimental target.
  static MachineModel ppc7410();
  /// PowerPC 970 (G5): wider issue, more units, deeper pipelines.
  static MachineModel ppc970();
  /// Single-issue baseline: one universal unit, G4 latencies.
  static MachineModel simpleScalar();

  /// Looks up a factory model by its getName() string ("ppc7410",
  /// "ppc970", "simple-scalar"); nullopt for anything else.
  static std::optional<MachineModel> byName(const std::string &Name);

  /// Human-readable list of the names byName() accepts, for tool error
  /// messages: "ppc7410, ppc970 or simple-scalar".
  static std::string knownNamesList();

  const std::string &getName() const { return Name; }

  /// Unit inventory.
  unsigned getNumUnits() const { return static_cast<unsigned>(Units.size()); }
  const std::vector<FunctionalUnit> &units() const { return Units; }

  /// Indices (into units()) of the units that can execute \p C.  Never
  /// empty for a valid model.
  const std::vector<unsigned> &unitsFor(FuClass C) const {
    return UnitsByClass[static_cast<size_t>(C)];
  }

  /// Result latency of \p Op in cycles (always >= 1).
  unsigned getLatency(Opcode Op) const {
    return Latency[static_cast<size_t>(Op)];
  }

  /// Overrides the latency of \p Op, e.g. to model a different cache
  /// assumption in an experiment.
  void setLatency(Opcode Op, unsigned Cycles) {
    Latency[static_cast<size_t>(Op)] = Cycles;
  }

  /// True if a new instruction may start on \p Op's unit the cycle after
  /// \p Op issues; false for blocking ops (div, fdiv, fsqrt) that occupy
  /// their unit until completion.
  bool isPipelined(Opcode Op) const {
    return Pipelined[static_cast<size_t>(Op)];
  }

  /// Per-cycle issue rules ("one branch and two non-branch instructions
  /// per cycle" on the G4).
  unsigned getMaxIssueNonBranch() const { return MaxIssueNonBranch; }
  unsigned getMaxIssueBranch() const { return MaxIssueBranch; }

private:
  MachineModel(std::string ModelName, unsigned MaxNonBranch,
               unsigned MaxBranch)
      : Name(std::move(ModelName)), MaxIssueNonBranch(MaxNonBranch),
        MaxIssueBranch(MaxBranch) {}

  /// Appends a unit and returns its index.
  unsigned addUnit(std::string UnitName, uint16_t AcceptMask);

  /// Fills the latency/pipelining tables from a per-opcode spec function
  /// (one of the tables in MachineModel.cpp).
  void setTimings(LatSpec (*TableFn)(Opcode));

  /// Builds UnitsByClass and verifies the model is complete: every FuClass
  /// has at least one unit and every opcode has latency >= 1.  Aborts with
  /// a diagnostic naming the offending opcode/class otherwise, so adding
  /// an opcode can never silently yield latency 0.
  void finalize();

  std::string Name;
  std::vector<FunctionalUnit> Units;
  std::array<std::vector<unsigned>,
             static_cast<size_t>(FuClass::NumClasses)>
      UnitsByClass;
  std::array<unsigned, getNumOpcodes()> Latency{};
  std::array<bool, getNumOpcodes()> Pipelined{};
  unsigned MaxIssueNonBranch;
  unsigned MaxIssueBranch;
};

} // namespace schedfilter

#endif // SCHEDFILTER_TARGET_MACHINEMODEL_H
