//===- runtime/MethodCompiler.h - Per-method tiered compile -----*- C++ -*-===//
///
/// \file
/// The unit of work the CompileService's recompilation queue retires: one
/// method, compiled under one scheduling policy.  The per-block loop is
/// the same decision/schedule/simulate sequence as filter/Pipeline's
/// compileProgram, and accumulation into the caller's CompileReport uses
/// the identical flat per-block fold -- including the floating-point
/// grouping of SimulatedTime -- so a program compiled method by method
/// through a MethodCompiler produces bit-for-bit the report of a
/// whole-program compileProgram over the same block sequence.  That
/// equivalence is what lets compileProgramAdaptive (and therefore
/// bench_adaptive_jit's table) move onto the runtime subsystem without
/// perturbing a single pinned number; tests/adaptive_test.cpp locks it in.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_RUNTIME_METHODCOMPILER_H
#define SCHEDFILTER_RUNTIME_METHODCOMPILER_H

#include "filter/Pipeline.h"
#include "mir/Method.h"
#include "ml/Labeler.h"

namespace schedfilter {

class SchedContext;

/// Compiles methods one at a time under a scheduling policy, accumulating
/// into a running CompileReport.  Holds the scheduler/simulator pair and
/// borrows a SchedContext, so retiring method after method on the same
/// compiler performs zero steady-state allocations (one compiler per
/// worker thread; contexts are not thread-safe).
class MethodCompiler {
public:
  MethodCompiler(const MachineModel &Model, SchedContext &Ctx);

  /// Compiles \p M under \p Policy, accumulating counts, work units, wall
  /// time and simulated application time into \p Report.  \p Filter must
  /// be non-null iff Policy == Filtered; its work-unit delta is charged to
  /// Report.FilterWork and Report.SchedulingWork, as the pipeline does.
  ///
  /// Accumulation is a flat per-block fold in block order: calling this
  /// for a sequence of methods yields the exact CompileReport (bit-for-bit
  /// SimulatedTime included) of compileProgram over a program holding the
  /// same methods in the same order.
  void compileMethod(const Method &M, SchedulingPolicy Policy,
                     ScheduleFilter *Filter, CompileReport &Report);

  /// The §2.2 instrumented-scheduler pass over one method: appends one
  /// BlockRecord per block (features, simulated cost unscheduled and
  /// list-scheduled, profile weight) to \p Records, in block order.  The
  /// same per-block recipe as the experiment engine's whole-benchmark
  /// trace, factored to method granularity so the online serving loop can
  /// trace exactly the methods its optimizing tier compiles.  A pure
  /// function of (method, model) -- safe at any parallelism when each
  /// worker appends into its own index-owned vector.
  void traceMethod(const Method &M, std::vector<BlockRecord> &Records);

private:
  ListScheduler Scheduler;
  BlockSimulator Sim;
  SchedContext &Ctx;
  /// Per-method block-pointer scratch for the batch filter pass
  /// (grow-only; the decision bytes live in the context's arena).
  std::vector<const BasicBlock *> BlockPtrs;
};

} // namespace schedfilter

#endif // SCHEDFILTER_RUNTIME_METHODCOMPILER_H
