//===- runtime/CompileService.cpp - Deterministic adaptive-JIT engine -------===//

#include "runtime/CompileService.h"

#include "io/FilterRegistry.h"
#include "runtime/MethodCompiler.h"
#include "runtime/RecompileQueue.h"
#include "sched/SchedContext.h"

#include <algorithm>
#include <cassert>

using namespace schedfilter;

bool schedfilter::operator==(const ServiceStats::FilterSwapStat &A,
                             const ServiceStats::FilterSwapStat &B) {
  return A.Epoch == B.Epoch && A.Tick == B.Tick && A.Version == B.Version &&
         A.ParentVersion == B.ParentVersion &&
         A.TriggerTick == B.TriggerTick &&
         A.CorpusRecords == B.CorpusRecords && A.RulesHash == B.RulesHash;
}

bool schedfilter::operator==(const ServiceStats::CompilePinStat &A,
                             const ServiceStats::CompilePinStat &B) {
  return A.Epoch == B.Epoch && A.Method == B.Method &&
         A.FilterVersion == B.FilterVersion &&
         A.SchedulingWork == B.SchedulingWork;
}

bool schedfilter::operator==(const ServiceStats &A, const ServiceStats &B) {
  return A.Invocations == B.Invocations && A.Epochs == B.Epochs &&
         A.SampledInvocations == B.SampledInvocations &&
         A.Promotions == B.Promotions && A.Deferred == B.Deferred &&
         A.CompiledMethods == B.CompiledMethods &&
         A.MethodsOptimized == B.MethodsOptimized &&
         A.MethodsTotal == B.MethodsTotal &&
         A.MaxQueueDepth == B.MaxQueueDepth &&
         A.MeanQueueDepth == B.MeanQueueDepth &&
         A.FinalQueueDepth == B.FinalQueueDepth &&
         A.BaselineInvocations == B.BaselineInvocations &&
         A.OptimizedInvocations == B.OptimizedInvocations &&
         A.SchedulingWork == B.SchedulingWork &&
         A.FilterWork == B.FilterWork &&
         A.BlocksCompiled == B.BlocksCompiled &&
         A.BlocksScheduled == B.BlocksScheduled &&
         A.FilterLS == B.FilterLS && A.FilterNS == B.FilterNS &&
         A.AppTime == B.AppTime && A.BaselineAppTime == B.BaselineAppTime &&
         A.Retrains == B.Retrains && A.CorpusRecords == B.CorpusRecords &&
         A.FinalFilterVersion == B.FinalFilterVersion && A.Swaps == B.Swaps &&
         A.Compiles == B.Compiles;
}

uint64_t schedfilter::invocationStreamSeed(uint64_t WorkloadSeed) {
  // Forked, not derived by ad-hoc arithmetic: the stream must be
  // statistically independent of the generator's own draws from the same
  // seed, or invocation hotness would correlate with program shape.
  return Rng(WorkloadSeed).fork(0x1457BEA7CA11ULL).next64();
}

CompileService::CompileService(const Program &P, const MachineModel &Model,
                               const ServiceConfig &Cfg, const RuleSet *Rules,
                               TaskPool &Pool,
                               const std::vector<double> *SharedBaselineCost)
    : Prog(P), Model(Model), Cfg(Cfg), Rules(Rules), Pool(Pool) {
  assert((Cfg.OptimizingPolicy == SchedulingPolicy::Filtered) ==
             (Rules != nullptr) &&
         "rules must be supplied exactly for the Filtered policy");
  assert(Cfg.QueueCap >= 1 && Cfg.EpochLen >= 1 && Cfg.SampleEvery >= 1 &&
         "degenerate service configuration");
  assert((!Cfg.Online || Rules) && "online mode requires the Filtered policy");

  // Compile the initial filter version once; every per-task filter of
  // every drain borrows it.  Online sessions number their lineage from 1.
  if (Rules)
    BaseArt = makeFilterArtifact(*Rules, Cfg.Online ? 1 : 0);

  // Invocation distribution: methods invoked proportionally to their total
  // profile weight, the populations the generator's hotness profile
  // encodes.
  CumWeight.reserve(P.size());
  for (const Method &M : P) {
    double W = 0.0;
    for (const BasicBlock &BB : M)
      W += static_cast<double>(BB.getExecCount());
    TotalWeight += W;
    CumWeight.push_back(TotalWeight);
  }

  // Baseline tier: per-invocation cost of every method compiled without
  // scheduling.  A pure function of (program, model), so a sibling
  // service's vector can stand in wholesale...
  const size_t NumMethods = P.size();
  if (SharedBaselineCost) {
    assert(SharedBaselineCost->size() == NumMethods &&
           "shared baseline costs must come from the same program");
    BaselineCost = *SharedBaselineCost;
    return;
  }
  // ...and otherwise it is computed once per service, chunked so each
  // worker folds its contiguous method range through one reused
  // SchedContext (results stay index-owned per method: identical at any
  // job count).
  BaselineCost.resize(NumMethods);
  size_t NumChunks = std::min<size_t>(NumMethods, Pool.jobs());
  if (NumChunks) {
    size_t PerChunk = (NumMethods + NumChunks - 1) / NumChunks;
    Pool.parallelFor(NumChunks, [&](size_t C) {
      SchedContext Ctx;
      MethodCompiler MC(Model, Ctx);
      size_t End = std::min(NumMethods, (C + 1) * PerChunk);
      for (size_t I = C * PerChunk; I < End; ++I) {
        CompileReport R;
        MC.compileMethod(P[I], SchedulingPolicy::Never, nullptr, R);
        BaselineCost[I] = R.SimulatedTime;
      }
    });
  }
}

size_t CompileService::sampleMethod(Rng &Stream) const {
  double U = Stream.uniform() * TotalWeight;
  size_t I = static_cast<size_t>(
      std::upper_bound(CumWeight.begin(), CumWeight.end(), U) -
      CumWeight.begin());
  return std::min(I, CumWeight.size() - 1);
}

ServiceStats CompileService::run() {
  ServiceStats St;
  const size_t NumMethods = Prog.size();
  St.MethodsTotal = NumMethods;
  if (NumMethods == 0 || TotalWeight <= 0.0)
    return St;

  std::vector<double> Cost = BaselineCost; // current-tier cost per method
  std::vector<Tier> Tiers(NumMethods, Tier::Baseline);
  std::vector<uint32_t> Samples(NumMethods, 0);
  std::vector<bool> Pending(NumMethods, false);
  RecompileQueue Queue(Cfg.QueueCap);
  Rng Stream = Rng(Cfg.StreamSeed).fork(0);

  /// Index-owned slot one drained compile writes into.
  struct CompileOutcome {
    CompileReport Report;
    uint64_t FilterLS = 0;
    uint64_t FilterNS = 0;
    std::vector<BlockRecord> Records; ///< serve trace (online mode only)
  };
  std::vector<uint32_t> Drained;
  std::vector<CompileOutcome> Outcomes;
  double QueueDepthSum = 0.0;

  // Online self-training state.  Cur is the filter version the *next*
  // drain compiles with; a retrain triggered at boundary E becomes
  // PendingArt and installs at boundary E+1 -- the virtual clock's model
  // of background training latency, mirroring compile latency.  All
  // trainer calls happen on this serial path, so the swap sequence is a
  // pure function of (seed, config) at any job count.
  FilterArtifactRef Cur = BaseArt;
  FilterArtifactRef PendingArt;
  OnlineTrainer Trainer(Pool, Cfg.RetrainThreshold,
                        {Cfg.RetrainEvery, Cfg.MinRetrainRecords});
  auto InstallSwap = [&](ServiceStats &S, const FilterArtifactRef &Art,
                         uint64_t Epoch, uint64_t Tick) {
    S.Swaps.push_back({Epoch, Tick, Art->Version, Art->ParentVersion,
                       Art->TriggerTick, Art->CorpusRecords,
                       rulesFingerprint(Art->Rules)});
    if (Registry)
      Registry->store({Art->Version, Art->ParentVersion, Art->TriggerTick,
                       Cfg.StreamSeed, Art->CorpusRecords,
                       Cfg.RetrainThreshold, RegistryModel, RegistryWorkload},
                      Art->Rules);
  };
  if (Cfg.Online) {
    Trainer.seedCorpus(SeedCorpus);
    InstallSwap(St, Cur, 0, 0); // the initial version is swap entry 0
  }

  for (uint64_t Tick = 0; Tick < Cfg.Invocations;) {
    // --- One epoch of invocations (the virtual clock's install
    // granularity). ---
    uint64_t EpochEnd = std::min(Tick + Cfg.EpochLen, Cfg.Invocations);
    for (; Tick != EpochEnd; ++Tick) {
      size_t M = sampleMethod(Stream);
      St.AppTime += Cost[M];
      St.BaselineAppTime += BaselineCost[M];
      if (Tiers[M] == Tier::Baseline)
        ++St.BaselineInvocations;
      else
        ++St.OptimizedInvocations;

      if (Tick % Cfg.SampleEvery == 0) {
        ++St.SampledInvocations;
        ++Samples[M];
        if (Tiers[M] == Tier::Baseline && !Pending[M] &&
            Samples[M] >= Cfg.HotThreshold) {
          if (Queue.push(static_cast<uint32_t>(M))) {
            Pending[M] = true;
            ++St.Promotions;
          } else {
            // Backpressure: shed the nomination; the method stays hot and
            // is re-nominated at its next sample.
            ++St.Deferred;
          }
        }
      }
    }

    // --- Epoch boundary: the virtual compiler retires queued requests. ---
    ++St.Epochs;
    St.MaxQueueDepth = std::max<uint64_t>(St.MaxQueueDepth, Queue.size());
    QueueDepthSum += static_cast<double>(Queue.size());

    // A retrain triggered at the previous boundary installs now, before
    // this boundary's drain: methods compiled since the trigger kept the
    // old version (mid-epoch pinning), this drain onward uses the new.
    if (PendingArt) {
      Cur = std::move(PendingArt);
      PendingArt = nullptr;
      InstallSwap(St, Cur, St.Epochs, Tick);
    }

    Drained.clear();
    for (uint32_t I = 0; I != Cfg.DrainPerEpoch; ++I) {
      uint32_t M = 0;
      if (!Queue.pop(M))
        break;
      Drained.push_back(M);
    }

    Outcomes.assign(Drained.size(), CompileOutcome());
    Pool.parallelFor(Drained.size(), [&](size_t I) {
      // Per-task context and per-task filter view of the shared current
      // artifact: the filter's statistics counters are not thread-safe,
      // but the artifact itself is immutable, so borrowing it keeps each
      // outcome a pure function of (method, model, version) without
      // recompiling the rules per task.
      SchedContext Ctx;
      MethodCompiler MC(Model, Ctx);
      CompileOutcome &Out = Outcomes[I];
      if (Cur && Cfg.OptimizingPolicy == SchedulingPolicy::Filtered) {
        ScheduleFilter F(Cur);
        MC.compileMethod(Prog[Drained[I]], Cfg.OptimizingPolicy, &F,
                         Out.Report);
        Out.FilterLS = F.numScheduleDecisions();
        Out.FilterNS = F.numSkipDecisions();
      } else {
        MC.compileMethod(Prog[Drained[I]], Cfg.OptimizingPolicy, nullptr,
                         Out.Report);
      }
      if (Cfg.Online)
        MC.traceMethod(Prog[Drained[I]], Out.Records);
    });

    // Install in drain order (never completion order): deterministic
    // stat folds, and the new tier takes effect from the next epoch's
    // first tick -- compile latency under the virtual clock.
    for (size_t I = 0; I != Drained.size(); ++I) {
      uint32_t M = Drained[I];
      CompileOutcome &Out = Outcomes[I];
      Tiers[M] = Tier::Optimizing;
      Pending[M] = false;
      Cost[M] = Out.Report.SimulatedTime;
      St.SchedulingWork += Out.Report.SchedulingWork;
      St.FilterWork += Out.Report.FilterWork;
      St.BlocksCompiled += Out.Report.NumBlocks;
      St.BlocksScheduled += Out.Report.NumScheduled;
      St.FilterLS += Out.FilterLS;
      St.FilterNS += Out.FilterNS;
      ++St.CompiledMethods;
      St.Compiles.push_back({St.Epochs, M, Cur ? Cur->Version : 0,
                             Out.Report.SchedulingWork});
      if (Cfg.Online) {
        St.CorpusRecords += Out.Records.size();
        Trainer.absorb(Out.Records);
      }
    }

    // Retrain trigger: a pure function of the virtual clock and the
    // absorb sequence.  The trained artifact waits as PendingArt until
    // the next boundary (training runs on the shared pool, bit-identical
    // at any job count).
    if (Cfg.Online) {
      PendingArt = Trainer.maybeRetrain(Tick, Cur->Version);
      if (PendingArt)
        ++St.Retrains;
    }
  }

  St.FinalFilterVersion = Cur ? Cur->Version : 0;
  St.Invocations = Cfg.Invocations;
  St.FinalQueueDepth = Queue.size();
  St.MeanQueueDepth =
      St.Epochs ? QueueDepthSum / static_cast<double>(St.Epochs) : 0.0;
  for (Tier T : Tiers)
    St.MethodsOptimized += T == Tier::Optimizing;
  return St;
}

ServeComparison schedfilter::runServeComparison(
    const Program &P, const MachineModel &Model, ServiceConfig Cfg,
    const RuleSet &Rules, TaskPool &Pool,
    std::vector<BlockRecord> SeedCorpus, FilterRegistry *Registry,
    const std::string &Workload, const std::string &ModelName) {
  ServeComparison Cmp;
  bool Online = Cfg.Online;

  Cfg.OptimizingPolicy = SchedulingPolicy::Always;
  Cfg.Online = false; // the LS tier ignores the filter; nothing to train
  CompileService Always(P, Model, Cfg, nullptr, Pool);
  Cmp.Always = Always.run();

  Cfg.OptimizingPolicy = SchedulingPolicy::Filtered;
  Cfg.Online = Online;
  CompileService Filtered(P, Model, Cfg, &Rules, Pool,
                          &Always.baselineCosts());
  if (Online) {
    Filtered.setSeedCorpus(std::move(SeedCorpus));
    if (Registry)
      Filtered.setFilterRegistry(Registry, Workload, ModelName);
  }
  Cmp.Filtered = Filtered.run();

  if (Cmp.Always.SchedulingWork)
    Cmp.RecoupedWorkFraction =
        (static_cast<double>(Cmp.Always.SchedulingWork) -
         static_cast<double>(Cmp.Filtered.SchedulingWork)) /
        static_cast<double>(Cmp.Always.SchedulingWork);
  return Cmp;
}

//===----------------------------------------------------------------------===//
// Profile-directed batch entry (the §3.1 hot-method-only regime).
//===----------------------------------------------------------------------===//

CompileReport schedfilter::compileProgramAdaptive(const Program &P,
                                                  const MachineModel &Model,
                                                  SchedulingPolicy Policy,
                                                  ScheduleFilter *Filter,
                                                  double HotMethodFraction) {
  SchedContext Ctx;
  return compileProgramAdaptive(P, Model, Policy, Filter, HotMethodFraction,
                                Ctx);
}

CompileReport schedfilter::compileProgramAdaptive(const Program &P,
                                                  const MachineModel &Model,
                                                  SchedulingPolicy Policy,
                                                  ScheduleFilter *Filter,
                                                  double HotMethodFraction,
                                                  SchedContext &Ctx) {
  assert(HotMethodFraction >= 0.0 && HotMethodFraction <= 1.0 &&
         "fraction must be in [0, 1]");

  // Rank methods by total profile weight, ties toward earlier methods.
  std::vector<std::pair<double, size_t>> Ranked;
  for (size_t MI = 0; MI != P.size(); ++MI) {
    double Weight = 0.0;
    for (const BasicBlock &BB : P[MI])
      Weight += static_cast<double>(BB.getExecCount());
    Ranked.push_back({Weight, MI});
  }
  std::sort(Ranked.begin(), Ranked.end(), [](const auto &A, const auto &B) {
    if (A.first != B.first)
      return A.first > B.first;
    return A.second < B.second;
  });
  size_t NumHot = static_cast<size_t>(
      HotMethodFraction * static_cast<double>(P.size()) + 0.5);
  std::vector<bool> IsHot(P.size(), false);
  for (size_t I = 0; I != NumHot && I != Ranked.size(); ++I)
    IsHot[Ranked[I].second] = true;

  // Hot methods compile under the policy, cold methods baseline, each
  // partition folded method by method in program order -- the exact block
  // sequence (and therefore the exact SimulatedTime fold) of compiling the
  // two partition programs, as this function historically did.
  MethodCompiler MC(Model, Ctx);
  CompileReport HotReport;
  HotReport.Policy = Policy;
  for (size_t MI = 0; MI != P.size(); ++MI)
    if (IsHot[MI])
      MC.compileMethod(P[MI], Policy, Filter, HotReport);
  CompileReport ColdReport;
  for (size_t MI = 0; MI != P.size(); ++MI)
    if (!IsHot[MI])
      MC.compileMethod(P[MI], SchedulingPolicy::Never, nullptr, ColdReport);

  CompileReport Merged;
  Merged.Policy = Policy;
  Merged.NumBlocks = HotReport.NumBlocks + ColdReport.NumBlocks;
  Merged.NumScheduled = HotReport.NumScheduled;
  Merged.SchedulingSeconds =
      HotReport.SchedulingSeconds + ColdReport.SchedulingSeconds;
  Merged.SchedulingWork = HotReport.SchedulingWork;
  Merged.FilterWork = HotReport.FilterWork;
  Merged.SimulatedTime = HotReport.SimulatedTime + ColdReport.SimulatedTime;
  return Merged;
}
