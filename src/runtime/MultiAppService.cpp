//===- runtime/MultiAppService.cpp - Interleaved multi-app serving ----------===//

#include "runtime/MultiAppService.h"

#include "io/FilterRegistry.h"
#include "io/TraceStore.h"
#include "runtime/MethodCompiler.h"
#include "runtime/RecompileQueue.h"
#include "sched/SchedContext.h"

#include <algorithm>
#include <cassert>

using namespace schedfilter;

bool schedfilter::operator==(const MultiAppStats &A, const MultiAppStats &B) {
  return A.Total == B.Total && A.AppNames == B.AppNames &&
         A.PerApp == B.PerApp;
}

std::vector<AppSpec> schedfilter::expandWorkloadMix(
    const std::vector<std::pair<std::string, double>> &Mix) {
  std::vector<AppSpec> Apps;
  for (const auto &[FamilyName, Weight] : Mix) {
    const WorkloadFamily *F = findWorkloadFamily(FamilyName);
    assert(F && "unvalidated family name (tools check before expanding)");
    if (!F)
      continue;
    std::vector<BenchmarkSpec> Suite = F->makeBenchmarkSuite();
    assert(!Suite.empty() && "family with an empty suite");
    double Per = Weight / static_cast<double>(Suite.size());
    for (BenchmarkSpec &S : Suite)
      Apps.push_back({std::move(S), Per});
  }
  return Apps;
}

uint64_t schedfilter::workloadMixSeed(const std::vector<AppSpec> &Apps) {
  // Canonical serialization of every app's identity, hashed with the one
  // FNV-1a implementation -- the same stability contract as
  // specFingerprint.  The seed, not the mix string, is what every layer
  // forks from, so "specjvm98:1" and "specjvm98:1.0" are the same
  // session.
  std::string B;
  wire::putU64(B, Apps.size());
  for (const AppSpec &A : Apps) {
    wire::putString(B, A.Spec.Family);
    wire::putString(B, A.Spec.Name);
    wire::putU64(B, A.Spec.Seed);
    wire::putF64(B, A.Weight);
  }
  return wire::fnv1a(B.data(), B.size());
}

std::vector<Program>
schedfilter::generateMixPrograms(const std::vector<AppSpec> &Apps) {
  std::vector<Program> Programs;
  Programs.reserve(Apps.size());
  for (const AppSpec &A : Apps)
    Programs.push_back(generateWorkloadProgram(A.Spec));
  return Programs;
}

MultiAppService::MultiAppService(const std::vector<AppSpec> &Apps,
                                 const std::vector<Program> &Programs,
                                 const MachineModel &Model,
                                 const ServiceConfig &Cfg,
                                 const RuleSet *Rules, TaskPool &Pool,
                                 const std::vector<double> *SharedBaselineCost)
    : Apps(Apps), Programs(Programs), Model(Model), Cfg(Cfg), Rules(Rules),
      Pool(Pool) {
  assert(Apps.size() == Programs.size() && "one program per app");
  assert((Cfg.OptimizingPolicy == SchedulingPolicy::Filtered) ==
             (Rules != nullptr) &&
         "rules must be supplied exactly for the Filtered policy");
  assert((!Cfg.Online || Rules) && "online mode requires the Filtered policy");

  if (Rules)
    BaseArt = makeFilterArtifact(*Rules, Cfg.Online ? 1 : 0);

  // App-interleave CDF and, per app, the method-draw CDF -- the same
  // profile-weight distribution CompileService builds, one per tenant.
  size_t NumMethods = 0;
  for (size_t A = 0; A != Apps.size(); ++A) {
    TotalAppWeight += Apps[A].Weight;
    AppCumWeight.push_back(TotalAppWeight);
    Families.push_back(findWorkloadFamily(Apps[A].Spec.Family));

    std::vector<double> Cum;
    double Total = 0.0;
    for (const Method &M : Programs[A]) {
      double W = 0.0;
      for (const BasicBlock &BB : M)
        W += static_cast<double>(BB.getExecCount());
      Total += W;
      Cum.push_back(Total);
    }
    CumWeight.push_back(std::move(Cum));
    TotalWeight.push_back(Total);

    Offset.push_back(NumMethods);
    NumMethods += Programs[A].size();
  }

  if (SharedBaselineCost) {
    assert(SharedBaselineCost->size() == NumMethods &&
           "shared baseline costs must come from the same apps");
    BaselineCost = *SharedBaselineCost;
    return;
  }
  // Baseline tier per global method id, chunk-parallel with index-owned
  // results like CompileService's constructor.
  BaselineCost.resize(NumMethods);
  size_t NumChunks = std::min<size_t>(NumMethods, Pool.jobs());
  if (NumChunks) {
    size_t PerChunk = (NumMethods + NumChunks - 1) / NumChunks;
    Pool.parallelFor(NumChunks, [&](size_t C) {
      SchedContext Ctx;
      MethodCompiler MC(Model, Ctx);
      size_t End = std::min(NumMethods, (C + 1) * PerChunk);
      for (size_t I = C * PerChunk; I < End; ++I) {
        size_t A = appOf(I);
        CompileReport R;
        MC.compileMethod(Programs[A][I - Offset[A]], SchedulingPolicy::Never,
                         nullptr, R);
        BaselineCost[I] = R.SimulatedTime;
      }
    });
  }
}

size_t MultiAppService::appOf(size_t GlobalMethod) const {
  size_t A = static_cast<size_t>(
      std::upper_bound(Offset.begin(), Offset.end(), GlobalMethod) -
      Offset.begin());
  return A - 1;
}

MultiAppStats MultiAppService::run() {
  MultiAppStats St;
  St.PerApp.resize(Apps.size());
  for (size_t A = 0; A != Apps.size(); ++A) {
    St.AppNames.push_back(Apps[A].Spec.Name);
    St.PerApp[A].MethodsTotal = Programs[A].size();
    St.Total.MethodsTotal += Programs[A].size();
  }
  const size_t NumMethods = BaselineCost.size();
  if (NumMethods == 0 || TotalAppWeight <= 0.0)
    return St;

  std::vector<double> Cost = BaselineCost;
  std::vector<Tier> Tiers(NumMethods, Tier::Baseline);
  std::vector<uint32_t> Samples(NumMethods, 0);
  std::vector<bool> Pending(NumMethods, false);
  RecompileQueue Queue(Cfg.QueueCap);

  // The session's entropy: stream 0 decides *which app* owns each tick;
  // stream A+1 is app A's private method sequence.  Because the
  // substreams never interact, reweighting the mix reshuffles only the
  // schedule, never any app's own draw sequence.
  Rng Interleave = Rng(Cfg.StreamSeed).fork(0);
  std::vector<Rng> AppStream;
  for (size_t A = 0; A != Apps.size(); ++A)
    AppStream.push_back(Rng(Cfg.StreamSeed).fork(A + 1));

  struct CompileOutcome {
    CompileReport Report;
    uint64_t FilterLS = 0;
    uint64_t FilterNS = 0;
    std::vector<BlockRecord> Records; ///< serve trace (online mode only)
  };
  std::vector<uint32_t> Drained;
  std::vector<CompileOutcome> Outcomes;
  double QueueDepthSum = 0.0;

  // Online self-training state (see CompileService::run for the install
  // ordering contract).  Swaps and compile pins fold into St.Total only:
  // the filter lineage is a property of the shared service, not of any
  // single tenant.
  FilterArtifactRef Cur = BaseArt;
  FilterArtifactRef PendingArt;
  OnlineTrainer Trainer(Pool, Cfg.RetrainThreshold,
                        {Cfg.RetrainEvery, Cfg.MinRetrainRecords});
  auto InstallSwap = [&](const FilterArtifactRef &Art, uint64_t Epoch,
                         uint64_t Tick) {
    St.Total.Swaps.push_back({Epoch, Tick, Art->Version, Art->ParentVersion,
                              Art->TriggerTick, Art->CorpusRecords,
                              rulesFingerprint(Art->Rules)});
    if (Registry)
      Registry->store({Art->Version, Art->ParentVersion, Art->TriggerTick,
                       Cfg.StreamSeed, Art->CorpusRecords,
                       Cfg.RetrainThreshold, RegistryModel, RegistryWorkload},
                      Art->Rules);
  };
  if (Cfg.Online) {
    Trainer.seedCorpus(SeedCorpus);
    InstallSwap(Cur, 0, 0);
  }

  // The interleave CDF of the current epoch.  Without drift this IS the
  // static mix; with drift it is rebuilt (serially, per epoch) from the
  // pure per-epoch factors, so the drifting stream replays identically
  // at any job count.
  std::vector<double> EpochCum = AppCumWeight;
  double EpochTotal = TotalAppWeight;
  uint64_t EpochIndex = 0;

  for (uint64_t Tick = 0; Tick < Cfg.Invocations;) {
    if (MixDrift) {
      EpochTotal = 0.0;
      for (size_t A = 0; A != Apps.size(); ++A) {
        EpochTotal += Apps[A].Weight * MixDrift(EpochIndex, A);
        EpochCum[A] = EpochTotal;
      }
      assert(EpochTotal > 0.0 && "drift factors must stay positive");
    }
    ++EpochIndex;
    uint64_t EpochEnd = std::min(Tick + Cfg.EpochLen, Cfg.Invocations);
    for (; Tick != EpochEnd; ++Tick) {
      // Whose tick is it?  One uniform draw on the interleave CDF.
      double U = Interleave.uniform() * EpochTotal;
      size_t A = static_cast<size_t>(
          std::upper_bound(EpochCum.begin(), EpochCum.end(), U) -
          EpochCum.begin());
      A = std::min(A, Apps.size() - 1);
      if (TotalWeight[A] <= 0.0)
        continue; // degenerate app (empty program); tick still elapses

      // The app's family draws the invoked method from the app's own
      // substream.
      size_t Local;
      if (Families[A]) {
        Local = Families[A]->nextMethod(A, AppStream[A], CumWeight[A],
                                        TotalWeight[A]);
      } else {
        double V = AppStream[A].uniform() * TotalWeight[A];
        Local = static_cast<size_t>(
            std::upper_bound(CumWeight[A].begin(), CumWeight[A].end(), V) -
            CumWeight[A].begin());
        Local = std::min(Local, CumWeight[A].size() - 1);
      }
      size_t M = Offset[A] + Local;

      ServiceStats &App = St.PerApp[A];
      ++App.Invocations;
      St.Total.AppTime += Cost[M];
      St.Total.BaselineAppTime += BaselineCost[M];
      App.AppTime += Cost[M];
      App.BaselineAppTime += BaselineCost[M];
      if (Tiers[M] == Tier::Baseline) {
        ++St.Total.BaselineInvocations;
        ++App.BaselineInvocations;
      } else {
        ++St.Total.OptimizedInvocations;
        ++App.OptimizedInvocations;
      }

      if (Tick % Cfg.SampleEvery == 0) {
        ++St.Total.SampledInvocations;
        ++Samples[M];
        if (Tiers[M] == Tier::Baseline && !Pending[M] &&
            Samples[M] >= Cfg.HotThreshold) {
          if (Queue.push(static_cast<uint32_t>(M))) {
            Pending[M] = true;
            ++St.Total.Promotions;
            ++App.Promotions;
          } else {
            ++St.Total.Deferred;
            ++App.Deferred;
          }
        }
      }
    }

    // Epoch boundary: the shared virtual compiler drains for all apps.
    ++St.Total.Epochs;
    St.Total.MaxQueueDepth =
        std::max<uint64_t>(St.Total.MaxQueueDepth, Queue.size());
    QueueDepthSum += static_cast<double>(Queue.size());

    // Install the pending retrain before this boundary's drain (mid-epoch
    // pinning: everything compiled since the trigger kept the old version).
    if (PendingArt) {
      Cur = std::move(PendingArt);
      PendingArt = nullptr;
      InstallSwap(Cur, St.Total.Epochs, Tick);
    }

    Drained.clear();
    for (uint32_t I = 0; I != Cfg.DrainPerEpoch; ++I) {
      uint32_t M = 0;
      if (!Queue.pop(M))
        break;
      Drained.push_back(M);
    }

    Outcomes.assign(Drained.size(), CompileOutcome());
    Pool.parallelFor(Drained.size(), [&](size_t I) {
      SchedContext Ctx;
      MethodCompiler MC(Model, Ctx);
      size_t A = appOf(Drained[I]);
      const Method &Meth = Programs[A][Drained[I] - Offset[A]];
      CompileOutcome &Out = Outcomes[I];
      if (Cur && Cfg.OptimizingPolicy == SchedulingPolicy::Filtered) {
        ScheduleFilter F(Cur);
        MC.compileMethod(Meth, Cfg.OptimizingPolicy, &F, Out.Report);
        Out.FilterLS = F.numScheduleDecisions();
        Out.FilterNS = F.numSkipDecisions();
      } else {
        MC.compileMethod(Meth, Cfg.OptimizingPolicy, nullptr, Out.Report);
      }
      if (Cfg.Online)
        MC.traceMethod(Meth, Out.Records);
    });

    // Install in drain order; each outcome folds into its app's stats
    // and the aggregate.
    for (size_t I = 0; I != Drained.size(); ++I) {
      uint32_t M = Drained[I];
      CompileOutcome &Out = Outcomes[I];
      ServiceStats &App = St.PerApp[appOf(M)];
      Tiers[M] = Tier::Optimizing;
      Pending[M] = false;
      Cost[M] = Out.Report.SimulatedTime;
      for (ServiceStats *Dst : {&St.Total, &App}) {
        Dst->SchedulingWork += Out.Report.SchedulingWork;
        Dst->FilterWork += Out.Report.FilterWork;
        Dst->BlocksCompiled += Out.Report.NumBlocks;
        Dst->BlocksScheduled += Out.Report.NumScheduled;
        Dst->FilterLS += Out.FilterLS;
        Dst->FilterNS += Out.FilterNS;
        ++Dst->CompiledMethods;
      }
      St.Total.Compiles.push_back({St.Total.Epochs, M,
                                   Cur ? Cur->Version : 0,
                                   Out.Report.SchedulingWork});
      if (Cfg.Online) {
        St.Total.CorpusRecords += Out.Records.size();
        Trainer.absorb(Out.Records);
      }
    }

    if (Cfg.Online) {
      PendingArt = Trainer.maybeRetrain(Tick, Cur->Version);
      if (PendingArt)
        ++St.Total.Retrains;
    }
  }

  St.Total.FinalFilterVersion = Cur ? Cur->Version : 0;

  St.Total.Invocations = Cfg.Invocations;
  St.Total.FinalQueueDepth = Queue.size();
  St.Total.MeanQueueDepth =
      St.Total.Epochs ? QueueDepthSum / static_cast<double>(St.Total.Epochs)
                      : 0.0;
  for (size_t M = 0; M != NumMethods; ++M)
    if (Tiers[M] == Tier::Optimizing) {
      ++St.Total.MethodsOptimized;
      ++St.PerApp[appOf(M)].MethodsOptimized;
    }
  return St;
}

MultiAppComparison schedfilter::runMultiAppComparison(
    const std::vector<AppSpec> &Apps, const std::vector<Program> &Programs,
    const MachineModel &Model, ServiceConfig Cfg, const RuleSet &Rules,
    TaskPool &Pool, const std::function<double(uint64_t, size_t)> &MixDrift,
    std::vector<BlockRecord> SeedCorpus, FilterRegistry *Registry,
    const std::string &Workload, const std::string &ModelName) {
  MultiAppComparison Cmp;
  bool Online = Cfg.Online;

  Cfg.OptimizingPolicy = SchedulingPolicy::Always;
  Cfg.Online = false; // the LS tier ignores the filter; nothing to train
  MultiAppService Always(Apps, Programs, Model, Cfg, nullptr, Pool);
  Always.setMixDrift(MixDrift);
  Cmp.Always = Always.run();

  Cfg.OptimizingPolicy = SchedulingPolicy::Filtered;
  Cfg.Online = Online;
  MultiAppService Filtered(Apps, Programs, Model, Cfg, &Rules, Pool,
                           &Always.baselineCosts());
  Filtered.setMixDrift(MixDrift);
  if (Online) {
    Filtered.setSeedCorpus(std::move(SeedCorpus));
    if (Registry)
      Filtered.setFilterRegistry(Registry, Workload, ModelName);
  }
  Cmp.Filtered = Filtered.run();

  auto Recoup = [](const ServiceStats &LS, const ServiceStats &LN) {
    if (!LS.SchedulingWork)
      return 0.0;
    return (static_cast<double>(LS.SchedulingWork) -
            static_cast<double>(LN.SchedulingWork)) /
           static_cast<double>(LS.SchedulingWork);
  };
  Cmp.RecoupedWorkFraction = Recoup(Cmp.Always.Total, Cmp.Filtered.Total);
  for (size_t A = 0; A != Apps.size(); ++A)
    Cmp.PerAppRecoup.push_back(
        Recoup(Cmp.Always.PerApp[A], Cmp.Filtered.PerApp[A]));
  return Cmp;
}
