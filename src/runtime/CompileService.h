//===- runtime/CompileService.h - Deterministic adaptive-JIT engine -*- C++ -*-===//
///
/// \file
/// The runtime subsystem: a CompileService receives a method-invocation
/// stream instead of batch-compiling whole programs, the regime the paper's
/// host system (Jikes RVM's adaptive optimization system) actually runs in
/// and the one §3.1 discusses for hot-method-only compilation.  Methods
/// start in a baseline tier (never scheduled); sampling-based hotness
/// counters nominate hot methods into a bounded recompilation queue; a
/// virtual compiler drains the queue at epoch boundaries and installs
/// optimizing-tier code, where the scheduling policy (NS / LS / the induced
/// ScheduleFilter) is applied block by block.
///
/// Everything is deterministic by construction, at any TaskPool job count
/// and with a cold or warm corpus cache:
///   - the invocation stream is replayed from the workload's own seed
///     through a forked Rng stream (invocationStreamSeed), so the stream is
///     part of the workload's identity, not of the run;
///   - time is virtual: one invocation advances the clock one tick, and a
///     method nominated during an epoch is installed exactly at that
///     epoch's boundary, never earlier -- so compile latency is modeled
///     without depending on worker timing;
///   - the bounded queue (runtime/RecompileQueue.h) is FIFO and its
///     backpressure rule (drop when full, re-nominate at the next hot
///     sample) depends only on arrival order;
///   - drained requests compile in parallel on the TaskPool into
///     index-owned slots (each task builds its results from its own
///     SchedContext and its own ScheduleFilter copy), and stats are folded
///     in drain order -- the same indexed-loop idiom as the experiment
///     engine.
/// tests/runtime_test.cpp pins jobs=1 vs jobs=4 ServiceStats equality
/// field by field, doubles included.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_RUNTIME_COMPILESERVICE_H
#define SCHEDFILTER_RUNTIME_COMPILESERVICE_H

#include "filter/Pipeline.h"
#include "ml/OnlineTrainer.h"
#include "support/Rng.h"
#include "support/TaskPool.h"

#include <cstdint>

namespace schedfilter {

class FilterRegistry;

/// Compilation tiers a method moves through.
enum class Tier {
  Baseline,   ///< entry state: compiled without any scheduling (NS)
  Optimizing, ///< recompiled by the service; the configured policy decides
              ///< per block whether the list scheduler runs
};

/// Knobs of one service run.  Defaults are the sf-serve defaults; the
/// golden headline (Golden.ServeRecoupedHeadline) is pinned against them.
struct ServiceConfig {
  /// Policy of the optimizing tier.  Filtered requires a rule set.
  SchedulingPolicy OptimizingPolicy = SchedulingPolicy::Filtered;
  /// Length of the invocation stream (virtual ticks).
  uint64_t Invocations = 200000;
  /// Sampling period: every Nth invocation is sampled into the hotness
  /// counters (Jikes RVM samples on timer ticks; a fixed stride is its
  /// deterministic stand-in).
  uint32_t SampleEvery = 16;
  /// Samples a baseline method must accumulate before it is nominated for
  /// the optimizing tier (the --hot-threshold flag).  The default keeps
  /// the service selective -- roughly the hottest two thirds of a stock
  /// workload's methods promote over a 200k-invocation stream.
  uint32_t HotThreshold = 32;
  /// Capacity of the bounded recompilation queue (the --queue-cap flag).
  uint32_t QueueCap = 32;
  /// Requests the virtual compiler retires per epoch boundary.
  uint32_t DrainPerEpoch = 4;
  /// Invocations per epoch (compile-install granularity of the virtual
  /// clock).
  uint32_t EpochLen = 1024;
  /// Seed of the invocation stream; derive with invocationStreamSeed so
  /// the stream is a pure function of the workload.
  uint64_t StreamSeed = 0;

  /// Online self-training (requires the Filtered policy): the optimizing
  /// tier traces every method it compiles, records accumulate in an
  /// OnlineTrainer, and when the RetrainPolicy fires (virtual clock only)
  /// a new filter version trains on the shared pool and installs at the
  /// *next* epoch boundary -- methods compiled in between keep the old
  /// version (ServiceStats pins which version compiled each method).
  bool Online = false;
  /// RetrainPolicy::RetrainEvery, in virtual ticks (--retrain-every).
  uint64_t RetrainEvery = 8192;
  /// RetrainPolicy::MinNewRecords.
  uint64_t MinRetrainRecords = 1;
  /// Labeling threshold (percent) every online retrain uses.
  double RetrainThreshold = 0.0;
};

/// Everything one service run measures.  All fields are deterministic --
/// bit-identical at any job count and cache temperature -- so the struct
/// is directly comparable; wall time is measured by callers around run().
struct ServiceStats {
  uint64_t Invocations = 0;        ///< virtual ticks consumed
  uint64_t Epochs = 0;             ///< epoch boundaries crossed
  uint64_t SampledInvocations = 0; ///< ticks inspected by the sampler
  uint64_t Promotions = 0;         ///< nominations accepted by the queue
  uint64_t Deferred = 0;           ///< nominations dropped (queue full)
  uint64_t CompiledMethods = 0;    ///< requests retired by the drain
  uint64_t MethodsOptimized = 0;   ///< methods in the optimizing tier at end
  uint64_t MethodsTotal = 0;

  uint64_t MaxQueueDepth = 0;   ///< sampled at epoch boundaries
  double MeanQueueDepth = 0.0;  ///< ditto, averaged over epochs
  uint64_t FinalQueueDepth = 0; ///< requests still queued at stream end

  /// Tier residency: invocations executed while the target method was in
  /// each tier.
  uint64_t BaselineInvocations = 0;
  uint64_t OptimizedInvocations = 0;

  /// Compile-side effort of the optimizing tier (deterministic work
  /// units; wall time backs no pinned number and is measured by callers).
  uint64_t SchedulingWork = 0;
  uint64_t FilterWork = 0;     ///< portion spent on features + rules
  uint64_t BlocksCompiled = 0; ///< blocks passed through the opt tier
  uint64_t BlocksScheduled = 0;
  uint64_t FilterLS = 0; ///< online filter decisions, optimizing tier
  uint64_t FilterNS = 0;

  /// Application side, in SIM units (exec-weight x simulated cycles):
  /// AppTime charges each invocation its method's current-tier cost;
  /// BaselineAppTime charges the baseline cost throughout (what the
  /// service's optimization recouped).
  double AppTime = 0.0;
  double BaselineAppTime = 0.0;

  /// Online self-training (all zero / empty when Cfg.Online is off).
  uint64_t Retrains = 0;          ///< retrain triggers that fired
  uint64_t CorpusRecords = 0;     ///< records absorbed from serve traces
  uint32_t FinalFilterVersion = 0; ///< version installed at stream end

  /// One record per installed filter version, in install order -- the
  /// swap sequence of the run, byte-comparable across job counts.  The
  /// initial version appears as entry 0 (Epoch 0, Tick 0).
  struct FilterSwapStat {
    uint64_t Epoch = 0;         ///< boundary index the swap installed at
    uint64_t Tick = 0;          ///< virtual tick of the install
    uint32_t Version = 0;
    uint32_t ParentVersion = 0;
    uint64_t TriggerTick = 0;   ///< when the retrain was triggered
    uint64_t CorpusRecords = 0; ///< corpus size the version trained on
    uint64_t RulesHash = 0;     ///< rulesFingerprint of the version
  };
  std::vector<FilterSwapStat> Swaps;

  /// One record per retired compile, in install order: which filter
  /// version compiled the method (0 for non-filtered runs) and what it
  /// cost.  The mid-epoch pinning invariant lives here -- a method
  /// drained at boundary E carries the version current at E, even if a
  /// retrain triggered at E installs a newer one at E+1.
  struct CompilePinStat {
    uint64_t Epoch = 0;
    uint32_t Method = 0;
    uint32_t FilterVersion = 0;
    uint64_t SchedulingWork = 0;
  };
  std::vector<CompilePinStat> Compiles;
};

bool operator==(const ServiceStats::FilterSwapStat &A,
                const ServiceStats::FilterSwapStat &B);
bool operator==(const ServiceStats::CompilePinStat &A,
                const ServiceStats::CompilePinStat &B);

/// True when every deterministic field matches (all of them are).
bool operator==(const ServiceStats &A, const ServiceStats &B);
inline bool operator!=(const ServiceStats &A, const ServiceStats &B) {
  return !(A == B);
}

/// The invocation-stream seed for a workload: forked from the workload's
/// own seed (BenchmarkSpec::Seed), so every driver replaying the same
/// benchmark sees the same stream -- the stream identifies the workload,
/// not the tool.
uint64_t invocationStreamSeed(uint64_t WorkloadSeed);

/// The adaptive-JIT engine.  Construct per (program, model, config) and
/// call run(); the service is reusable (each run starts from a fresh
/// all-baseline state and an identical stream).
class CompileService {
public:
  /// \p Rules must be non-null iff Cfg.OptimizingPolicy == Filtered; the
  /// service copies it into per-task ScheduleFilters as requests retire.
  /// \p Pool is borrowed; drained batches compile on its workers.
  /// \p SharedBaselineCost, when given, must be another service's
  /// baselineCosts() over the same (program, model) -- it is copied
  /// instead of recompiled (the vector is a pure function of both, so
  /// sharing cannot change results; runServeComparison uses this to pay
  /// the baseline compile once, not per policy run).
  CompileService(const Program &P, const MachineModel &Model,
                 const ServiceConfig &Cfg, const RuleSet *Rules,
                 TaskPool &Pool,
                 const std::vector<double> *SharedBaselineCost = nullptr);

  /// Replays the whole invocation stream and returns the run's stats.
  ServiceStats run();

  const ServiceConfig &config() const { return Cfg; }

  /// Pre-serve training corpus for online mode (the records the v1
  /// factory filter trained on): the first retrain learns from seed +
  /// serve traces, not serve traces alone.
  void setSeedCorpus(std::vector<BlockRecord> Records) {
    SeedCorpus = std::move(Records);
  }

  /// Persists every installed filter version (including v1) into \p Reg
  /// during run().  \p Workload and \p ModelName are stamped into each
  /// entry's metadata; \p Reg is borrowed and must outlive run().
  void setFilterRegistry(FilterRegistry *Reg, std::string Workload,
                         std::string ModelName) {
    Registry = Reg;
    RegistryWorkload = std::move(Workload);
    RegistryModel = std::move(ModelName);
  }

  /// Per-invocation baseline-tier cost of each method (computed at
  /// construction; sharable across services over the same program/model).
  const std::vector<double> &baselineCosts() const { return BaselineCost; }

private:
  const Program &Prog;
  const MachineModel &Model;
  ServiceConfig Cfg;
  const RuleSet *Rules;
  TaskPool &Pool;
  /// The initial filter version (version 1 online, 0 otherwise),
  /// compiled once at construction and shared by every per-task filter.
  FilterArtifactRef BaseArt;
  std::vector<BlockRecord> SeedCorpus;
  FilterRegistry *Registry = nullptr;
  std::string RegistryWorkload;
  std::string RegistryModel;

  /// Cumulative profile-weight distribution over methods (CDF) for the
  /// invocation sampler.
  std::vector<double> CumWeight;
  double TotalWeight = 0.0;
  /// Per-invocation cost of each method at the baseline tier; computed
  /// once at construction (pure function of program + model).
  std::vector<double> BaselineCost;

  size_t sampleMethod(Rng &Stream) const;
};

/// The sf-serve headline: one stream replayed under both optimizing-tier
/// policies (LS and the induced filter), so the recouped scheduling time
/// is an apples-to-apples difference on identical promotion dynamics.
struct ServeComparison {
  ServiceStats Always;   ///< optimizing tier = LS (schedule every block)
  ServiceStats Filtered; ///< optimizing tier = L/N (filter decides)
  /// Scheduling work the filter recouped: (LS - L/N) / LS work units; 0
  /// when the LS run did no scheduling at all.  Negative when the filter
  /// costs more than it saves (it schedules nearly everything and still
  /// pays feature/rule evaluation) -- a filter regression worth seeing,
  /// never clamped away.
  double RecoupedWorkFraction = 0.0;
};

/// Runs the service twice over the identical stream (Always, then
/// Filtered with \p Rules) and computes the recouped-work headline.  In
/// online mode (Cfg.Online) the Filtered side self-trains: it is seeded
/// with \p SeedCorpus, retrains per Cfg's policy, and -- when \p Registry
/// is non-null -- persists its filter lineage stamped with \p Workload
/// and \p ModelName.  The Always side never trains (its policy ignores
/// the filter entirely), so Cfg.Online is forced off for it.
ServeComparison runServeComparison(const Program &P, const MachineModel &Model,
                                   ServiceConfig Cfg, const RuleSet &Rules,
                                   TaskPool &Pool,
                                   std::vector<BlockRecord> SeedCorpus = {},
                                   FilterRegistry *Registry = nullptr,
                                   const std::string &Workload = "",
                                   const std::string &ModelName = "");

/// The profile-directed batch entry of the tiered-compilation subsystem,
/// the §3.1 hot-method-only regime: methods are ranked by total profile
/// weight, the top \p HotMethodFraction (by method count, ties toward
/// hotter) compile under \p Policy, the rest compile baseline.  Retains
/// its historical name and bit-exact behavior from filter/Pipeline.h --
/// bench_adaptive_jit's table reproduces unchanged on top of the runtime's
/// MethodCompiler (tests/adaptive_test.cpp pins the equivalence).
CompileReport compileProgramAdaptive(const Program &P,
                                     const MachineModel &Model,
                                     SchedulingPolicy Policy,
                                     ScheduleFilter *Filter,
                                     double HotMethodFraction);

/// Context-reuse variant of compileProgramAdaptive.
CompileReport compileProgramAdaptive(const Program &P,
                                     const MachineModel &Model,
                                     SchedulingPolicy Policy,
                                     ScheduleFilter *Filter,
                                     double HotMethodFraction,
                                     SchedContext &Ctx);

} // namespace schedfilter

#endif // SCHEDFILTER_RUNTIME_COMPILESERVICE_H
