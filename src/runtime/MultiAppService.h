//===- runtime/MultiAppService.h - Interleaved multi-app serving -*- C++ -*-===//
///
/// \file
/// The multi-tenant counterpart of CompileService: one virtual machine
/// serving an interleaved invocation stream drawn from several
/// applications at once -- the traffic shape a server JIT actually sees,
/// and the regime the --workload flag exposes.  Each app is one
/// benchmark of a registered WorkloadFamily, weighted by its share of
/// the mix; the service keeps a single global virtual clock, hotness
/// sampler, bounded recompilation queue and epoch drain across all apps,
/// so apps compete for compilation bandwidth exactly as tenants compete
/// in a shared VM.
///
/// Determinism mirrors CompileService and is pinned by runtime_test:
///   - which app runs at tick T is a pure function of the session seed
///     (Rng(StreamSeed).fork(0) drives the app interleave);
///   - which method the chosen app invokes is a pure function of the
///     app's own substream (Rng(StreamSeed).fork(AppId + 1)), drawn
///     through its family's nextMethod hook -- so adding app B never
///     perturbs app A's method sequence, only its schedule on the clock;
///   - drained requests compile into index-owned slots and install in
///     drain order; per-app stats fold in tick/drain order.
/// Everything is bit-identical at any --jobs and cache temperature.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_RUNTIME_MULTIAPPSERVICE_H
#define SCHEDFILTER_RUNTIME_MULTIAPPSERVICE_H

#include "runtime/CompileService.h"
#include "workloads/WorkloadFamily.h"

#include <functional>

namespace schedfilter {

/// One tenant of the mixed stream: a family benchmark plus its share of
/// the interleave (relative; normalized by the service).
struct AppSpec {
  BenchmarkSpec Spec;
  double Weight = 1.0;
};

/// Expands a validated --workload mix (family name, family weight) into
/// one AppSpec per benchmark of each family, in registry/suite order.  A
/// family's weight is split evenly across its benchmarks, so
/// "specjvm98:3,serverloop:1" gives the seven SPECjvm98 apps 3/7 each
/// and the three serverloop apps 1/3 each.  Unknown family names are a
/// caller bug (tools validate first) and assert.
std::vector<AppSpec>
expandWorkloadMix(const std::vector<std::pair<std::string, double>> &Mix);

/// The session seed of a mix: a stable hash over every app's identity
/// (family, benchmark name, spec seed, weight).  The interleave and the
/// per-app substreams all derive from it, so the mix *is* the stream --
/// same mix, same traffic, in any tool at any parallelism.
uint64_t workloadMixSeed(const std::vector<AppSpec> &Apps);

/// Generates every app's program through its registered family, in app
/// order (apps are independent; order is presentation only).
std::vector<Program> generateMixPrograms(const std::vector<AppSpec> &Apps);

/// What one multi-app run measures: the aggregate ServiceStats plus one
/// per-app breakdown.  Aggregate integer fields equal the sum of the
/// per-app fields; the queue/epoch fields (MaxQueueDepth, MeanQueueDepth,
/// FinalQueueDepth, Epochs, SampledInvocations) describe the shared
/// service and are aggregate-only (zero per app).  The double AppTime
/// folds accumulate in global tick order, so the aggregate is NOT
/// necessarily the bitwise sum of the per-app values -- compare
/// like-for-like (runtime_test cross-checks with the integer fields).
struct MultiAppStats {
  ServiceStats Total;
  std::vector<std::string> AppNames; ///< BenchmarkSpec::Name, app order
  std::vector<ServiceStats> PerApp;
};

bool operator==(const MultiAppStats &A, const MultiAppStats &B);
inline bool operator!=(const MultiAppStats &A, const MultiAppStats &B) {
  return !(A == B);
}

/// The multi-tenant adaptive-JIT engine.  Construct per (apps, programs,
/// model, config) and call run(); reusable like CompileService.
class MultiAppService {
public:
  /// \p Programs must be generateMixPrograms(Apps) (or bit-identical);
  /// both are borrowed for the service's lifetime.  \p Cfg.StreamSeed
  /// should come from workloadMixSeed.  \p Rules as in CompileService.
  /// \p SharedBaselineCost, when given, must be another service's
  /// baselineCosts() over the same apps/programs/model.
  MultiAppService(const std::vector<AppSpec> &Apps,
                  const std::vector<Program> &Programs,
                  const MachineModel &Model, const ServiceConfig &Cfg,
                  const RuleSet *Rules, TaskPool &Pool,
                  const std::vector<double> *SharedBaselineCost = nullptr);

  /// Installs a workload-mix drift function: during epoch E, app A's
  /// interleave weight is Apps[A].Weight * Drift(E, A).  The function
  /// must return positive factors and be pure (the noise layer's
  /// composed mixDrift() is -- a pure function of (stack seed, epoch,
  /// app)), so the drifting stream stays bit-identical at any --jobs.
  /// Null restores the static mix, and a null drift takes exactly the
  /// pre-drift code path: which app owns tick T is unchanged, because
  /// the per-app substreams never see the interleave weights at all.
  void setMixDrift(std::function<double(uint64_t Epoch, size_t App)> Drift) {
    MixDrift = std::move(Drift);
  }

  /// Replays the whole interleaved stream and returns per-app + total
  /// stats.
  MultiAppStats run();

  /// Pre-serve training corpus for online mode (see
  /// CompileService::setSeedCorpus).
  void setSeedCorpus(std::vector<BlockRecord> Records) {
    SeedCorpus = std::move(Records);
  }

  /// Persists the session's filter lineage (see
  /// CompileService::setFilterRegistry).
  void setFilterRegistry(FilterRegistry *Reg, std::string Workload,
                         std::string ModelName) {
    Registry = Reg;
    RegistryWorkload = std::move(Workload);
    RegistryModel = std::move(ModelName);
  }

  /// Per-invocation baseline cost per global method id (app-major);
  /// sharable across services over the same apps/programs/model.
  const std::vector<double> &baselineCosts() const { return BaselineCost; }

private:
  const std::vector<AppSpec> &Apps;
  const std::vector<Program> &Programs;
  const MachineModel &Model;
  ServiceConfig Cfg;
  const RuleSet *Rules;
  TaskPool &Pool;

  /// App-interleave CDF over AppSpec weights.
  std::vector<double> AppCumWeight;
  double TotalAppWeight = 0.0;
  /// Optional per-epoch reweighting of the interleave (see setMixDrift).
  std::function<double(uint64_t, size_t)> MixDrift;
  /// Per-app method-draw CDFs (profile weights, as in CompileService).
  std::vector<std::vector<double>> CumWeight;
  std::vector<double> TotalWeight;
  /// Global method ids are app-major: app A's method m is Offset[A] + m.
  std::vector<size_t> Offset;
  std::vector<const WorkloadFamily *> Families; ///< per app, may be null
  std::vector<double> BaselineCost; ///< per global method id

  /// Online-mode state, mirroring CompileService.
  FilterArtifactRef BaseArt;
  std::vector<BlockRecord> SeedCorpus;
  FilterRegistry *Registry = nullptr;
  std::string RegistryWorkload;
  std::string RegistryModel;

  size_t appOf(size_t GlobalMethod) const;
};

/// The mixed-traffic counterpart of runServeComparison: the identical
/// interleaved stream served under both optimizing-tier policies, with
/// the recouped-work headline overall and per app.
struct MultiAppComparison {
  MultiAppStats Always;   ///< optimizing tier = LS
  MultiAppStats Filtered; ///< optimizing tier = L/N (filter decides)
  double RecoupedWorkFraction = 0.0;
  std::vector<double> PerAppRecoup; ///< same convention, per app
};

/// \p MixDrift, when non-null, is installed on BOTH services (see
/// MultiAppService::setMixDrift), so the two policies face the same
/// drifting traffic.  Online mode behaves as in runServeComparison: the
/// Filtered side self-trains from \p SeedCorpus and optionally persists
/// its lineage into \p Registry; the Always side never trains.
MultiAppComparison runMultiAppComparison(
    const std::vector<AppSpec> &Apps, const std::vector<Program> &Programs,
    const MachineModel &Model, ServiceConfig Cfg, const RuleSet &Rules,
    TaskPool &Pool,
    const std::function<double(uint64_t, size_t)> &MixDrift = nullptr,
    std::vector<BlockRecord> SeedCorpus = {},
    FilterRegistry *Registry = nullptr, const std::string &Workload = "",
    const std::string &ModelName = "");

} // namespace schedfilter

#endif // SCHEDFILTER_RUNTIME_MULTIAPPSERVICE_H
