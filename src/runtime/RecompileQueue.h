//===- runtime/RecompileQueue.h - Bounded recompilation queue ---*- C++ -*-===//
///
/// \file
/// The CompileService's bounded FIFO of recompilation requests.  A real
/// adaptive system (Jikes RVM's, the paper's host) feeds hot-method events
/// into a fixed-capacity queue drained by compiler threads; when the queue
/// is full the event is dropped and the method is re-nominated the next
/// time it is sampled hot.  That backpressure rule is load-shedding, not
/// data loss: a method that stays hot keeps getting sampled, so it gets
/// promoted as soon as the queue has room again.
///
/// The queue is a plain ring over a fixed vector -- no allocation after
/// construction, no locking (the service's virtual clock serializes all
/// access), and FIFO order is part of the determinism contract: which
/// requests drain in an epoch depends only on arrival order, never on
/// worker timing.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_RUNTIME_RECOMPILEQUEUE_H
#define SCHEDFILTER_RUNTIME_RECOMPILEQUEUE_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace schedfilter {

/// Fixed-capacity FIFO of method indices awaiting recompilation.
class RecompileQueue {
public:
  /// \p Capacity must be >= 1 (the --queue-cap flag validates this).
  explicit RecompileQueue(size_t Capacity) : Ring(Capacity) {
    assert(Capacity >= 1 && "a queue that can hold nothing is a bug");
  }

  size_t capacity() const { return Ring.size(); }
  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  bool full() const { return Count == Ring.size(); }

  /// Enqueues \p MethodIndex; returns false (and changes nothing) when the
  /// queue is full -- the caller counts a backpressure event and retries
  /// at the method's next hot sample.
  bool push(uint32_t MethodIndex) {
    if (full())
      return false;
    Ring[(Head + Count) % Ring.size()] = MethodIndex;
    ++Count;
    return true;
  }

  /// Dequeues the oldest request into \p MethodIndex; returns false when
  /// empty.
  bool pop(uint32_t &MethodIndex) {
    if (empty())
      return false;
    MethodIndex = Ring[Head];
    Head = (Head + 1) % Ring.size();
    --Count;
    return true;
  }

private:
  std::vector<uint32_t> Ring;
  size_t Head = 0;
  size_t Count = 0;
};

} // namespace schedfilter

#endif // SCHEDFILTER_RUNTIME_RECOMPILEQUEUE_H
