//===- runtime/MethodCompiler.cpp - Per-method tiered compile ---------------===//

#include "runtime/MethodCompiler.h"

#include "sched/SchedContext.h"
#include "support/Timer.h"

#include <cassert>

using namespace schedfilter;

MethodCompiler::MethodCompiler(const MachineModel &Model, SchedContext &Ctx)
    : Scheduler(Model), Sim(Model), Ctx(Ctx) {}

void MethodCompiler::compileMethod(const Method &M, SchedulingPolicy Policy,
                                   ScheduleFilter *Filter,
                                   CompileReport &Report) {
  assert((Policy == SchedulingPolicy::Filtered) == (Filter != nullptr) &&
         "filter must be supplied exactly for the Filtered policy");

  Report.Policy = Policy;
  uint64_t FilterWorkBefore = Filter ? Filter->workUnits() : 0;
  std::vector<int> &Order = Ctx.orderBuffer();

  // The same per-block sequence as compileProgram, with the timer spanning
  // the scheduling phase (filter decisions + list scheduling; §3.1 charges
  // filter evaluation to scheduling) and simulation untimed.  Filter
  // decisions for the whole method are made in one batch pass up front --
  // identical counters and work units to the per-block loop -- and
  // SimulatedTime accumulates directly into Report in block order,
  // preserving the flat left-to-right fold the pipeline uses: the
  // bit-identity contract in the header.
  AccumulatingTimer SchedTimer;
  std::vector<char> &Decisions = Ctx.batchDecisions();
  if (Policy == SchedulingPolicy::Filtered) {
    BlockPtrs.clear();
    for (const BasicBlock &BB : M)
      BlockPtrs.push_back(&BB);
    SchedTimer.start();
    Filter->shouldScheduleBatch(BlockPtrs, Ctx, Decisions);
    SchedTimer.stop();
  }
  size_t B = 0;
  for (const BasicBlock &BB : M) {
    ++Report.NumBlocks;
    SchedTimer.start();
    bool DoSchedule = false;
    switch (Policy) {
    case SchedulingPolicy::Never:
      break;
    case SchedulingPolicy::Always:
      DoSchedule = true;
      break;
    case SchedulingPolicy::Filtered:
      DoSchedule = Decisions[B] != 0;
      break;
    }
    ++B;
    if (DoSchedule) {
      Report.SchedulingWork += Scheduler.schedule(BB, Ctx, Order);
      ++Report.NumScheduled;
    }
    SchedTimer.stop();

    uint64_t Cycles = (DoSchedule && !Order.empty())
                          ? Sim.simulate(BB, Order, Ctx)
                          : Sim.simulate(BB, Ctx);
    Report.SimulatedTime +=
        static_cast<double>(BB.getExecCount()) * static_cast<double>(Cycles);
  }
  Report.SchedulingSeconds += SchedTimer.seconds();

  if (Filter) {
    uint64_t Delta = Filter->workUnits() - FilterWorkBefore;
    Report.FilterWork += Delta;
    Report.SchedulingWork += Delta;
  }
}

void MethodCompiler::traceMethod(const Method &M,
                                 std::vector<BlockRecord> &Records) {
  // Mirrors the experiment engine's traceBenchmark block recipe exactly:
  // unscheduled cost first, then schedule and re-simulate -- so records
  // produced here label identically to a whole-program trace of the same
  // blocks.
  std::vector<int> &Order = Ctx.orderBuffer();
  for (const BasicBlock &BB : M) {
    BlockRecord Rec;
    Rec.X = extractFeatures(BB);
    Rec.ExecCount = BB.getExecCount();
    Rec.CostNoSched = Sim.simulate(BB, Ctx);
    Scheduler.schedule(BB, Ctx, Order);
    Rec.CostSched = Sim.simulate(BB, Order, Ctx);
    Records.push_back(Rec);
  }
}
