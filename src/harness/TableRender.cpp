//===- harness/TableRender.cpp - Paper-layout table printing ----------------===//

#include "harness/TableRender.h"

#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cassert>

using namespace schedfilter;

namespace {

/// Builds the shared "Threshold | bench1 .. benchN | Geometric mean"
/// table over per-benchmark values extracted by \p Get.
TablePrinter makePerBenchmarkTable(
    const std::vector<ThresholdResult> &Sweep, int Decimals,
    const std::function<const std::vector<double> &(const ThresholdResult &)>
        &Get) {
  assert(!Sweep.empty() && "sweep must contain at least one threshold");
  std::vector<std::string> Header = {"Threshold"};
  for (const std::string &N : Sweep.front().Names)
    Header.push_back(N);
  Header.push_back("Geo. mean");

  TablePrinter T(Header);
  for (const ThresholdResult &R : Sweep) {
    std::vector<std::string> Row = {formatDouble(R.ThresholdPct, 0) + "%"};
    const std::vector<double> &Vals = Get(R);
    for (double V : Vals)
      Row.push_back(formatDouble(V, Decimals));
    Row.push_back(formatDouble(geometricMean(Vals), Decimals));
    T.addRow(std::move(Row));
  }
  return T;
}

void printBoth(const TablePrinter &T, std::ostream &OS) {
  T.print(OS);
  OS << "\ncsv:\n";
  T.printCsv(OS);
}

} // namespace

void schedfilter::renderTable3(const std::vector<ThresholdResult> &Sweep,
                               std::ostream &OS) {
  OS << "Table 3: classification error rates (percent misclassified) for "
        "different threshold values\n\n";
  printBoth(makePerBenchmarkTable(
                Sweep, 2,
                [](const ThresholdResult &R) -> const std::vector<double> & {
                  return R.ErrorPct;
                }),
            OS);
}

void schedfilter::renderTable4(const std::vector<ThresholdResult> &Sweep,
                               std::ostream &OS) {
  OS << "Table 4: predicted execution times (percent of unscheduled code) "
        "for different threshold values\n\n";
  printBoth(makePerBenchmarkTable(
                Sweep, 2,
                [](const ThresholdResult &R) -> const std::vector<double> & {
                  return R.PredictedTimePct;
                }),
            OS);
}

void schedfilter::renderTable5(const std::vector<ThresholdResult> &Sweep,
                               std::ostream &OS) {
  OS << "Table 5: effect of t on training set size (counts summed over the "
        "suite; NS is constant at " +
            std::to_string(Sweep.empty() ? 0 : Sweep.front().TrainNS) +
            ")\n\n";
  std::vector<std::string> Header = {"Label"};
  for (const ThresholdResult &R : Sweep)
    Header.push_back("t=" + formatDouble(R.ThresholdPct, 0));
  TablePrinter T(Header);
  std::vector<std::string> RowLS = {"LS"}, RowNS = {"NS"};
  for (const ThresholdResult &R : Sweep) {
    RowLS.push_back(std::to_string(R.TrainLS));
    RowNS.push_back(std::to_string(R.TrainNS));
  }
  T.addRow(RowLS);
  T.addRow(RowNS);
  printBoth(T, OS);
}

void schedfilter::renderTable6(const std::vector<ThresholdResult> &Sweep,
                               std::ostream &OS) {
  OS << "Table 6: effect of t on run-time classification of blocks "
        "(counts summed over the suite; total is constant)\n\n";
  std::vector<std::string> Header = {"Label"};
  for (const ThresholdResult &R : Sweep)
    Header.push_back("t=" + formatDouble(R.ThresholdPct, 0));
  TablePrinter T(Header);
  std::vector<std::string> RowNS = {"NS"}, RowLS = {"LS"};
  for (const ThresholdResult &R : Sweep) {
    RowNS.push_back(std::to_string(R.RuntimeNS));
    RowLS.push_back(std::to_string(R.RuntimeLS));
  }
  T.addRow(RowNS);
  T.addRow(RowLS);
  printBoth(T, OS);
}

void schedfilter::renderEffortFigure(const std::vector<ThresholdResult> &Sweep,
                                     bool UseWallTime, std::ostream &OS) {
  OS << "Figure (a): scheduling effort of L/N relative to LS "
     << (UseWallTime ? "(measured wall time)" : "(deterministic work units)")
     << "; NS is 0 by definition\n\n";
  printBoth(
      makePerBenchmarkTable(
          Sweep, 3,
          [UseWallTime](const ThresholdResult &R)
              -> const std::vector<double> & {
            return UseWallTime ? R.EffortRatioWall : R.EffortRatioWork;
          }),
      OS);
}

void schedfilter::renderAppTimeFigure(
    const std::vector<ThresholdResult> &Sweep, std::ostream &OS) {
  OS << "Figure (b): application (simulated) running time relative to NS "
        "(< 1 is an improvement)\n\n";
  assert(!Sweep.empty());
  std::vector<std::string> Header = {"Policy"};
  for (const std::string &N : Sweep.front().Names)
    Header.push_back(N);
  Header.push_back("Geo. mean");
  TablePrinter T(Header);

  std::vector<std::string> LSRow = {"LS (always)"};
  for (double V : Sweep.front().AppRatioLS)
    LSRow.push_back(formatDouble(V, 4));
  LSRow.push_back(formatDouble(geometricMean(Sweep.front().AppRatioLS), 4));
  T.addRow(LSRow);

  for (const ThresholdResult &R : Sweep) {
    std::vector<std::string> Row = {"L/N t=" +
                                    formatDouble(R.ThresholdPct, 0)};
    for (double V : R.AppRatioLN)
      Row.push_back(formatDouble(V, 4));
    Row.push_back(formatDouble(geometricMean(R.AppRatioLN), 4));
    T.addRow(Row);
  }
  printBoth(T, OS);
}

void schedfilter::renderInducedFilter(const RuleSet &Filter,
                                      std::ostream &OS) {
  OS << "Figure 4: induced heuristic generated by rule induction\n"
     << "(correct/incorrect training coverage)  class :- conditions\n\n"
     << Filter.toString();
}

void schedfilter::renderHeadline(const std::vector<ThresholdResult> &Sweep,
                                 std::ostream &OS) {
  OS << "Headline: benefit retained vs effort spent (suite geometric "
        "means)\n\n";
  TablePrinter T({"Threshold", "LS benefit retained", "Effort vs LS (work)",
                  "Effort vs LS (wall)"});
  for (const ThresholdResult &R : Sweep) {
    double LS = geometricMean(R.AppRatioLS);
    double LN = geometricMean(R.AppRatioLN);
    double BenefitLS = 1.0 - LS;
    double BenefitLN = 1.0 - LN;
    double Retained =
        BenefitLS > 0.0 ? 100.0 * BenefitLN / BenefitLS : 100.0;
    T.addRow({formatDouble(R.ThresholdPct, 0) + "%",
              formatDouble(Retained, 1) + "%",
              formatPercent(geometricMean(R.EffortRatioWork), 1),
              formatPercent(geometricMean(R.EffortRatioWall), 1)});
  }
  T.print(OS);
}
