//===- harness/Experiments.h - Paper experiment drivers ---------*- C++ -*-===//
///
/// \file
/// Drivers that reproduce the paper's evaluation: generate the benchmark
/// suites, collect per-block raw records (features + simulated cost with
/// and without list scheduling + profile weight), run leave-one-out
/// cross-validated training at each threshold t, and package everything
/// Tables 3-6 and Figures 1-3 need.  The bench/ binaries are thin wrappers
/// over these functions.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_HARNESS_EXPERIMENTS_H
#define SCHEDFILTER_HARNESS_EXPERIMENTS_H

#include "filter/Pipeline.h"
#include "ml/CrossValidation.h"
#include "ml/Labeler.h"
#include "workloads/ProgramGenerator.h"

namespace schedfilter {

/// Version of the tracing pipeline *downstream* of the program
/// generator, the other half of the corpus-cache key
/// (io/CorpusCache.h).  A cached record is
/// f(program, ListScheduler, BlockSimulator, MachineModel tables), so
/// this MUST be bumped by any change that alters traced costs or
/// fixed-policy compile reports for some block -- scheduler priority or
/// tie-breaking tweaks, simulator scoreboard changes, latency/issue
/// table edits -- or warm caches will keep serving records computed by
/// the old code.  GeneratorVersion (workloads/ProgramGenerator.h)
/// covers the program-synthesis half.
constexpr uint32_t TracePipelineVersion = 1;

/// One benchmark, fully instrumented: its program, the raw per-block
/// records (the paper's trace file), and its two fixed-policy compile
/// reports.
struct BenchmarkRun {
  std::string Name;
  /// Name of the MachineModel the records and reports were generated
  /// under (set by generateSuiteData); runThreshold recompiles under the
  /// same target so cross-model experiments stay consistent.
  std::string ModelName;
  Program Prog;
  std::vector<BlockRecord> Records;
  CompileReport NeverReport;  ///< NS: baseline SIM time, zero effort.
  CompileReport AlwaysReport; ///< LS: full effort, best-effort SIM time.

  BenchmarkRun() : Prog("") {}
};

/// Generates programs for \p Suite, simulates every block unscheduled and
/// list-scheduled (the instrumented-scheduler step of §2.2), and compiles
/// each program under the NS and LS fixed policies.
std::vector<BenchmarkRun>
generateSuiteData(const std::vector<BenchmarkSpec> &Suite,
                  const MachineModel &Model);

/// Labels every benchmark's records at threshold \p ThresholdPct (dropping
/// the (0, t] noise band), one Dataset per benchmark, in suite order.
std::vector<Dataset> labelSuite(const std::vector<BenchmarkRun> &Suite,
                                double ThresholdPct);

/// Everything measured at one threshold value, per benchmark (parallel
/// arrays in suite order) plus suite-level aggregates.
struct ThresholdResult {
  double ThresholdPct = 0.0;
  std::vector<std::string> Names;

  /// Table 3: LOOCV classification error, percent.
  std::vector<double> ErrorPct;
  /// Table 4: predicted (simulated) execution time as a percent of
  /// unscheduled, using each benchmark's cross-validated filter.
  std::vector<double> PredictedTimePct;
  /// Table 5 aggregates: labeled training-set sizes summed over the suite.
  size_t TrainLS = 0;
  size_t TrainNS = 0;
  /// Table 6 aggregates: run-time classification of every block by the
  /// held-out benchmark's own filter, summed over the suite.
  size_t RuntimeLS = 0;
  size_t RuntimeNS = 0;

  /// Figures (a): scheduling effort of L/N relative to LS, per benchmark.
  std::vector<double> EffortRatioWork; ///< deterministic work units
  std::vector<double> EffortRatioWall; ///< measured wall time
  /// Figures (b): application (simulated) running time relative to NS.
  std::vector<double> AppRatioLN; ///< L/N filter
  std::vector<double> AppRatioLS; ///< always-schedule, threshold-invariant

  /// The cross-validated filter per benchmark (for Figure 4 printing and
  /// the tests).
  std::vector<RuleSet> Filters;
};

/// Runs the full experiment at one threshold: label, LOOCV-train with
/// \p Learner, evaluate, and compile each program under its held-out
/// filter.
ThresholdResult runThreshold(const std::vector<BenchmarkRun> &Suite,
                             double ThresholdPct, const LearnerFn &Learner);

/// Sweeps thresholds (the paper uses 0..50 step 5) and returns one
/// ThresholdResult per value.
std::vector<ThresholdResult>
runThresholdSweep(const std::vector<BenchmarkRun> &Suite,
                  const std::vector<double> &Thresholds,
                  const LearnerFn &Learner);

/// The paper's threshold grid: {0, 5, ..., 50}.
std::vector<double> paperThresholds();

/// Default learner used throughout: RIPPER with its stock options.
LearnerFn ripperLearner();

/// Pooled default learner: RIPPER with its stock options, fanning the
/// per-feature candidate scans of each train() call across \p Pool.
/// Bit-identical to ripperLearner() at any job count, and safe to hand to
/// the pooled leaveOneOut overload on the same pool (nested parallelFor
/// runs inline).  \p Pool must outlive the returned functor.
LearnerFn ripperLearner(TaskPool &Pool);

} // namespace schedfilter

#endif // SCHEDFILTER_HARNESS_EXPERIMENTS_H
