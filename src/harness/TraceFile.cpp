//===- harness/TraceFile.cpp - Instrumented-scheduler trace IO --------------===//

#include "harness/TraceFile.h"

#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

using namespace schedfilter;

static std::string expectedHeader() {
  std::string H;
  for (unsigned F = 0; F != NumFeatures; ++F) {
    H += getFeatureName(F);
    H += ',';
  }
  H += "costNoSched,costSched,execCount";
  return H;
}

void schedfilter::writeTrace(const std::vector<BlockRecord> &Records,
                             std::ostream &OS) {
  OS << expectedHeader() << '\n';
  for (const BlockRecord &R : Records) {
    for (unsigned F = 0; F != NumFeatures; ++F)
      OS << R.X[F] << ',';
    OS << R.CostNoSched << ',' << R.CostSched << ',' << R.ExecCount << '\n';
  }
}

std::optional<std::vector<BlockRecord>>
schedfilter::readTrace(std::istream &IS) {
  std::string Line;
  if (!std::getline(IS, Line))
    return std::nullopt;
  if (!Line.empty() && Line.back() == '\r')
    Line.pop_back();
  if (Line != expectedHeader())
    return std::nullopt;

  std::vector<BlockRecord> Records;
  while (std::getline(IS, Line)) {
    if (Line.empty())
      continue;
    std::stringstream SS(Line);
    std::string Cell;
    BlockRecord R;
    auto ParseDouble = [&](double &Out) {
      if (!std::getline(SS, Cell, ','))
        return false;
      char *End = nullptr;
      Out = std::strtod(Cell.c_str(), &End);
      return End == Cell.c_str() + Cell.size() && !Cell.empty();
    };
    bool Ok = true;
    for (unsigned F = 0; F != NumFeatures && Ok; ++F)
      Ok = ParseDouble(R.X[F]);
    double CostNo = 0, CostLS = 0, Exec = 0;
    Ok = Ok && ParseDouble(CostNo) && ParseDouble(CostLS);
    // execCount is the last cell: read to end of line.
    if (Ok) {
      if (!std::getline(SS, Cell))
        Ok = false;
      else {
        char *End = nullptr;
        Exec = std::strtod(Cell.c_str(), &End);
        Ok = End == Cell.c_str() + Cell.size() && !Cell.empty();
      }
    }
    if (!Ok || CostNo < 0 || CostLS < 0 || Exec < 0)
      return std::nullopt;
    R.CostNoSched = static_cast<uint64_t>(CostNo);
    R.CostSched = static_cast<uint64_t>(CostLS);
    R.ExecCount = static_cast<uint64_t>(Exec);
    Records.push_back(R);
  }
  return Records;
}
