//===- harness/ParallelExperiments.cpp - Deterministic parallel engine ------===//

#include "harness/ParallelExperiments.h"

#include "ml/Metrics.h"
#include "sched/SchedContext.h"
#include "support/Statistics.h"
#include "workloads/WorkloadFamily.h"

#include <cassert>

using namespace schedfilter;

namespace {

/// The §2.2 instrumented-scheduler pass plus the two fixed-policy compile
/// reports for one benchmark; fills \p Run.Records and the reports from
/// the already-generated Run.Prog.  All per-block work reuses \p Ctx, so
/// this is the allocation-free steady state the SchedContext refactor
/// bought; a pure function of (Run.Prog, Model) -- safe at any
/// parallelism.
void traceBenchmark(BenchmarkRun &Run, const MachineModel &Model,
                    SchedContext &Ctx) {
  ListScheduler Scheduler(Model);
  BlockSimulator Sim(Model);

  // For every block, record its features and its simulated cost with and
  // without list scheduling.
  std::vector<int> &Order = Ctx.orderBuffer();
  Run.Prog.forEachBlock([&](const BasicBlock &BB) {
    BlockRecord Rec;
    Rec.X = extractFeatures(BB);
    Rec.ExecCount = BB.getExecCount();
    Rec.CostNoSched = Sim.simulate(BB, Ctx);
    Scheduler.schedule(BB, Ctx, Order);
    Rec.CostSched = Sim.simulate(BB, Order, Ctx);
    Run.Records.push_back(Rec);
  });

  Run.NeverReport =
      compileProgram(Run.Prog, Model, SchedulingPolicy::Never, nullptr, Ctx);
  Run.AlwaysReport =
      compileProgram(Run.Prog, Model, SchedulingPolicy::Always, nullptr, Ctx);
}

/// Everything runThreshold measures for one held-out benchmark.
struct PerBenchmarkEval {
  double ErrorPct = 0.0;
  double PredictedTimePct = 0.0;
  size_t RuntimeLS = 0;
  size_t RuntimeNS = 0;
  double EffortRatioWork = 0.0;
  double EffortRatioWall = 0.0;
  double AppRatioLN = 0.0;
  double AppRatioLS = 0.0;
};

PerBenchmarkEval evaluateBenchmark(const BenchmarkRun &Run,
                                   const RuleSet &Filter,
                                   const Dataset &Labeled,
                                   const MachineModel &Model,
                                   SchedContext &Ctx) {
  PerBenchmarkEval Out;

  // Table 3: classification error on the held-out benchmark's labeled
  // (threshold-filtered) instances.
  Out.ErrorPct = errorRatePercent(Filter, Labeled);

  // Table 4 + Table 6: apply the filter to every block of the held-out
  // benchmark (no instances are dropped at run time).
  double PredTime = 0.0, NoSchedTime = 0.0;
  for (const BlockRecord &Rec : Run.Records) {
    double W = static_cast<double>(Rec.ExecCount);
    bool SchedIt = Filter.predict(Rec.X) == Label::LS;
    if (SchedIt)
      ++Out.RuntimeLS;
    else
      ++Out.RuntimeNS;
    PredTime += W * static_cast<double>(SchedIt ? Rec.CostSched
                                                : Rec.CostNoSched);
    NoSchedTime += W * static_cast<double>(Rec.CostNoSched);
  }
  Out.PredictedTimePct = 100.0 * safeRatio(PredTime, NoSchedTime, 1.0);

  // Figures: recompile under the held-out filter and compare effort and
  // simulated application time against the fixed policies.
  ScheduleFilter Online(Filter);
  CompileReport LN =
      compileProgram(Run.Prog, Model, SchedulingPolicy::Filtered, &Online,
                     Ctx);
  Out.EffortRatioWork =
      safeRatio(static_cast<double>(LN.SchedulingWork),
                static_cast<double>(Run.AlwaysReport.SchedulingWork));
  Out.EffortRatioWall =
      safeRatio(LN.SchedulingSeconds, Run.AlwaysReport.SchedulingSeconds);
  Out.AppRatioLN =
      safeRatio(LN.SimulatedTime, Run.NeverReport.SimulatedTime, 1.0);
  Out.AppRatioLS = safeRatio(Run.AlwaysReport.SimulatedTime,
                             Run.NeverReport.SimulatedTime, 1.0);
  return Out;
}

} // namespace

std::vector<BenchmarkRun>
ExperimentEngine::generateSuiteData(const std::vector<BenchmarkSpec> &Suite,
                                    const MachineModel &Model) {
  std::vector<BenchmarkRun> Runs(Suite.size());
  Pool.parallelFor(Suite.size(), [&](size_t I) {
    const BenchmarkSpec &Spec = Suite[I];
    BenchmarkRun Run;
    Run.Name = Spec.Name;
    Run.ModelName = Model.getName();
    // The program is always regenerated (it is not cached; downstream
    // evaluation recompiles it under induced filters) -- and its block
    // count is handed to load() as an extra integrity check, so a stale
    // entry that somehow survived the versioned key is invalidated, not
    // believed.  The spec's registered family does the synthesis and
    // versions its half of the cache key.
    Run.Prog = generateWorkloadProgram(Spec);

    CorpusKey Key{Spec.Name,           Model.getName(),
                  workloadGeneratorVersion(Spec), TracePipelineVersion,
                  specFingerprint(Spec), Spec.Family};
    if (Cache) {
      if (std::optional<CachedRun> Hit =
              Cache->load(Key, Run.Prog.totalBlocks())) {
        Run.Records = std::move(Hit->Records);
        Run.NeverReport = Hit->NeverReport;
        Run.AlwaysReport = Hit->AlwaysReport;
        Runs[I] = std::move(Run);
        return;
      }
    }

    SchedContext Ctx;
    traceBenchmark(Run, Model, Ctx);
    TracedBlocks.fetch_add(Run.Records.size());
    if (Cache)
      Cache->store(Key, Run.Records, Run.NeverReport, Run.AlwaysReport);
    Runs[I] = std::move(Run);
  });
  return Runs;
}

std::vector<Dataset>
ExperimentEngine::labelSuite(const std::vector<BenchmarkRun> &Suite,
                             double ThresholdPct) {
  std::vector<Dataset> Datasets(Suite.size());
  Pool.parallelFor(Suite.size(), [&](size_t I) {
    Datasets[I] =
        buildDataset(Suite[I].Records, ThresholdPct, Suite[I].Name);
  });
  return Datasets;
}

ThresholdResult
ExperimentEngine::runThreshold(const std::vector<BenchmarkRun> &Suite,
                               double ThresholdPct, const LearnerFn &Learner) {
  ThresholdResult Result;
  Result.ThresholdPct = ThresholdPct;

  std::vector<Dataset> Labeled = labelSuite(Suite, ThresholdPct);
  for (const Dataset &D : Labeled) {
    Result.TrainLS += D.countLabel(Label::LS);
    Result.TrainNS += D.countLabel(Label::NS);
  }

  std::vector<LoocvFold> Folds = leaveOneOut(Labeled, Learner, Pool);
  assert(Folds.size() == Suite.size() && "one fold per benchmark");

  // Recompile under the same target the suite data was generated with
  // (generateSuiteData records it); fall back to the paper's target for
  // hand-assembled runs.
  MachineModel Model = MachineModel::ppc7410();
  if (!Suite.empty() && !Suite.front().ModelName.empty())
    if (std::optional<MachineModel> M =
            MachineModel::byName(Suite.front().ModelName))
      Model = *M;

  std::vector<PerBenchmarkEval> Evals(Suite.size());
  Pool.parallelFor(Suite.size(), [&](size_t B) {
    SchedContext Ctx;
    Evals[B] = evaluateBenchmark(Suite[B], Folds[B].Filter, Labeled[B],
                                 Model, Ctx);
  });

  // Assemble in suite order (never completion order).
  for (size_t B = 0; B != Suite.size(); ++B) {
    Result.Names.push_back(Suite[B].Name);
    Result.Filters.push_back(std::move(Folds[B].Filter));
    Result.ErrorPct.push_back(Evals[B].ErrorPct);
    Result.PredictedTimePct.push_back(Evals[B].PredictedTimePct);
    Result.RuntimeLS += Evals[B].RuntimeLS;
    Result.RuntimeNS += Evals[B].RuntimeNS;
    Result.EffortRatioWork.push_back(Evals[B].EffortRatioWork);
    Result.EffortRatioWall.push_back(Evals[B].EffortRatioWall);
    Result.AppRatioLN.push_back(Evals[B].AppRatioLN);
    Result.AppRatioLS.push_back(Evals[B].AppRatioLS);
  }
  return Result;
}

std::vector<ThresholdResult>
ExperimentEngine::runThresholdSweep(const std::vector<BenchmarkRun> &Suite,
                                    const std::vector<double> &Thresholds,
                                    const LearnerFn &Learner) {
  std::vector<ThresholdResult> Results(Thresholds.size());
  Pool.parallelFor(Thresholds.size(), [&](size_t I) {
    Results[I] = runThreshold(Suite, Thresholds[I], Learner);
  });
  return Results;
}
