//===- harness/TraceFile.h - Instrumented-scheduler trace IO ----*- C++ -*-===//
///
/// \file
/// Reading and writing the raw trace the instrumented scheduler produces
/// (§2.2): one row per block with the Table 1 features, the simulated
/// cost without and with list scheduling, and the profile weight.  Having
/// the trace on disk decouples the (expensive) tracing run from the
/// (cheap, repeatable) labeling + learning experiments, exactly as the
/// paper's offline procedure does.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_HARNESS_TRACEFILE_H
#define SCHEDFILTER_HARNESS_TRACEFILE_H

#include "ml/Labeler.h"

#include <iosfwd>
#include <optional>

namespace schedfilter {

/// Writes \p Records as CSV with a header row:
/// bbLen,...,yieldpoints,costNoSched,costSched,execCount
void writeTrace(const std::vector<BlockRecord> &Records, std::ostream &OS);

/// Parses a trace written by writeTrace; std::nullopt on malformed input
/// (wrong header, wrong column count, non-numeric cells).
std::optional<std::vector<BlockRecord>> readTrace(std::istream &IS);

} // namespace schedfilter

#endif // SCHEDFILTER_HARNESS_TRACEFILE_H
