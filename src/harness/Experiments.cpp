//===- harness/Experiments.cpp - Paper experiment drivers -------------------===//
//
// The serial entry points are thin wrappers over a one-job
// ExperimentEngine (harness/ParallelExperiments.h): one implementation,
// one set of numbers, at any --jobs value.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiments.h"

#include "harness/ParallelExperiments.h"
#include "ml/Ripper.h"

using namespace schedfilter;

std::vector<BenchmarkRun>
schedfilter::generateSuiteData(const std::vector<BenchmarkSpec> &Suite,
                               const MachineModel &Model) {
  return ExperimentEngine(1).generateSuiteData(Suite, Model);
}

std::vector<Dataset>
schedfilter::labelSuite(const std::vector<BenchmarkRun> &Suite,
                        double ThresholdPct) {
  return ExperimentEngine(1).labelSuite(Suite, ThresholdPct);
}

ThresholdResult
schedfilter::runThreshold(const std::vector<BenchmarkRun> &Suite,
                          double ThresholdPct, const LearnerFn &Learner) {
  return ExperimentEngine(1).runThreshold(Suite, ThresholdPct, Learner);
}

std::vector<ThresholdResult>
schedfilter::runThresholdSweep(const std::vector<BenchmarkRun> &Suite,
                               const std::vector<double> &Thresholds,
                               const LearnerFn &Learner) {
  return ExperimentEngine(1).runThresholdSweep(Suite, Thresholds, Learner);
}

std::vector<double> schedfilter::paperThresholds() {
  std::vector<double> T;
  for (int V = 0; V <= 50; V += 5)
    T.push_back(static_cast<double>(V));
  return T;
}

LearnerFn schedfilter::ripperLearner() {
  return [](const Dataset &Train) { return Ripper().train(Train); };
}

LearnerFn schedfilter::ripperLearner(TaskPool &Pool) {
  return [&Pool](const Dataset &Train) { return Ripper().train(Train, Pool); };
}
