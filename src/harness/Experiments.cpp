//===- harness/Experiments.cpp - Paper experiment drivers -------------------===//

#include "harness/Experiments.h"

#include "ml/Metrics.h"
#include "ml/Ripper.h"
#include "support/Statistics.h"

#include <cassert>

using namespace schedfilter;

std::vector<BenchmarkRun>
schedfilter::generateSuiteData(const std::vector<BenchmarkSpec> &Suite,
                               const MachineModel &Model) {
  std::vector<BenchmarkRun> Runs;
  Runs.reserve(Suite.size());
  ListScheduler Scheduler(Model);
  BlockSimulator Sim(Model);

  for (const BenchmarkSpec &Spec : Suite) {
    BenchmarkRun Run;
    Run.Name = Spec.Name;
    Run.Prog = ProgramGenerator(Spec).generate();

    // The instrumented-scheduler pass of §2.2: for every block, record its
    // features and its simulated cost with and without list scheduling.
    Run.Prog.forEachBlock([&](const BasicBlock &BB) {
      BlockRecord Rec;
      Rec.X = extractFeatures(BB);
      Rec.ExecCount = BB.getExecCount();
      Rec.CostNoSched = Sim.simulate(BB);
      ScheduleResult SR = Scheduler.schedule(BB);
      Rec.CostSched = Sim.simulate(BB, SR.Order);
      Run.Records.push_back(Rec);
    });

    Run.NeverReport =
        compileProgram(Run.Prog, Model, SchedulingPolicy::Never);
    Run.AlwaysReport =
        compileProgram(Run.Prog, Model, SchedulingPolicy::Always);
    Runs.push_back(std::move(Run));
  }
  return Runs;
}

std::vector<Dataset>
schedfilter::labelSuite(const std::vector<BenchmarkRun> &Suite,
                        double ThresholdPct) {
  std::vector<Dataset> Datasets;
  Datasets.reserve(Suite.size());
  for (const BenchmarkRun &Run : Suite)
    Datasets.push_back(buildDataset(Run.Records, ThresholdPct, Run.Name));
  return Datasets;
}

ThresholdResult
schedfilter::runThreshold(const std::vector<BenchmarkRun> &Suite,
                          double ThresholdPct, const LearnerFn &Learner) {
  ThresholdResult Result;
  Result.ThresholdPct = ThresholdPct;

  std::vector<Dataset> Labeled = labelSuite(Suite, ThresholdPct);
  for (const Dataset &D : Labeled) {
    Result.TrainLS += D.countLabel(Label::LS);
    Result.TrainNS += D.countLabel(Label::NS);
  }

  std::vector<LoocvFold> Folds = leaveOneOut(Labeled, Learner);
  assert(Folds.size() == Suite.size() && "one fold per benchmark");

  // We need the model to recompile under the filter; reuse the paper's
  // target.  (Suite data must have been generated with the same model;
  // the bench drivers do so.)
  MachineModel Model = MachineModel::ppc7410();

  for (size_t B = 0; B != Suite.size(); ++B) {
    const BenchmarkRun &Run = Suite[B];
    const RuleSet &Filter = Folds[B].Filter;
    Result.Names.push_back(Run.Name);
    Result.Filters.push_back(Filter);

    // Table 3: classification error on the held-out benchmark's labeled
    // (threshold-filtered) instances.
    Result.ErrorPct.push_back(errorRatePercent(Filter, Labeled[B]));

    // Table 4 + Table 6: apply the filter to every block of the held-out
    // benchmark (no instances are dropped at run time).
    double PredTime = 0.0, NoSchedTime = 0.0;
    size_t RtLS = 0, RtNS = 0;
    for (const BlockRecord &Rec : Run.Records) {
      double W = static_cast<double>(Rec.ExecCount);
      bool SchedIt = Filter.predict(Rec.X) == Label::LS;
      if (SchedIt)
        ++RtLS;
      else
        ++RtNS;
      PredTime += W * static_cast<double>(SchedIt ? Rec.CostSched
                                                  : Rec.CostNoSched);
      NoSchedTime += W * static_cast<double>(Rec.CostNoSched);
    }
    Result.PredictedTimePct.push_back(
        100.0 * safeRatio(PredTime, NoSchedTime, 1.0));
    Result.RuntimeLS += RtLS;
    Result.RuntimeNS += RtNS;

    // Figures: recompile under the held-out filter and compare effort and
    // simulated application time against the fixed policies.
    ScheduleFilter Online(Filter);
    CompileReport LN =
        compileProgram(Run.Prog, Model, SchedulingPolicy::Filtered, &Online);
    Result.EffortRatioWork.push_back(
        safeRatio(static_cast<double>(LN.SchedulingWork),
                  static_cast<double>(Run.AlwaysReport.SchedulingWork)));
    Result.EffortRatioWall.push_back(safeRatio(
        LN.SchedulingSeconds, Run.AlwaysReport.SchedulingSeconds));
    Result.AppRatioLN.push_back(
        safeRatio(LN.SimulatedTime, Run.NeverReport.SimulatedTime, 1.0));
    Result.AppRatioLS.push_back(safeRatio(Run.AlwaysReport.SimulatedTime,
                                          Run.NeverReport.SimulatedTime,
                                          1.0));
  }
  return Result;
}

std::vector<ThresholdResult>
schedfilter::runThresholdSweep(const std::vector<BenchmarkRun> &Suite,
                               const std::vector<double> &Thresholds,
                               const LearnerFn &Learner) {
  std::vector<ThresholdResult> Results;
  Results.reserve(Thresholds.size());
  for (double T : Thresholds)
    Results.push_back(runThreshold(Suite, T, Learner));
  return Results;
}

std::vector<double> schedfilter::paperThresholds() {
  std::vector<double> T;
  for (int V = 0; V <= 50; V += 5)
    T.push_back(static_cast<double>(V));
  return T;
}

LearnerFn schedfilter::ripperLearner() {
  return [](const Dataset &Train) { return Ripper().train(Train); };
}
