//===- harness/ParallelExperiments.h - Deterministic parallel engine -*- C++ -*-===//
///
/// \file
/// The parallel experiment engine: fans suite data generation, threshold
/// sweeps and LOOCV folds out across a fixed TaskPool, with per-task
/// SchedContext arenas and (for stochastic tasks) per-task forked Rng
/// streams.
///
/// The determinism contract: every method returns bit-for-bit the same
/// result at any job count, equal to the serial functions in
/// Experiments.h/CrossValidation.h (which are thin wrappers over a
/// one-job engine).  Three properties deliver it:
///   1. every task is a pure function of its own inputs -- workloads are
///      generated from per-benchmark seeds, learners seed their own Rng,
///      and any task-level randomness comes from Rng::fork(taskIndex);
///   2. results are written into index-owned slots, so assembly order is
///      the input order, not completion order;
///   3. the only non-deterministic outputs anywhere are measured
///      wall-clock fields (CompileReport::SchedulingSeconds), which vary
///      run to run even serially and back no pinned number.
/// tests/determinism_test.cpp locks the contract in; EXPERIMENTS.md
/// documents it for the --jobs flag.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_HARNESS_PARALLELEXPERIMENTS_H
#define SCHEDFILTER_HARNESS_PARALLELEXPERIMENTS_H

#include "harness/Experiments.h"
#include "io/CorpusCache.h"
#include "support/TaskPool.h"

#include <atomic>

namespace schedfilter {

/// Experiment drivers over a fixed worker pool.  An engine is cheap to
/// construct (Jobs == 1 spawns no threads) and reusable across calls.
class ExperimentEngine {
public:
  explicit ExperimentEngine(unsigned Jobs = 1) : Pool(Jobs) {}

  unsigned jobs() const { return Pool.jobs(); }
  TaskPool &pool() { return Pool; }

  /// Attaches an on-disk corpus cache (not owned; may be null to detach).
  /// With a cache attached, generateSuiteData loads each benchmark's
  /// records and fixed-policy reports from disk when a valid entry exists
  /// -- bit-identical to retracing, including at any job count -- and
  /// populates the cache when one does not.  Tracing is a pure function
  /// of the cache key (benchmark, model, family, the family's generator
  /// version, TracePipelineVersion, spec fingerprint), which is what makes
  /// serving cached records sound -- provided the versions are bumped
  /// with the code they stand for (see their doc comments).
  void setCorpusCache(CorpusCache *C) { Cache = C; }
  CorpusCache *corpusCache() const { return Cache; }

  /// Blocks actually traced (scheduled + simulated) by this engine's
  /// generateSuiteData calls.  A warm-cache suite run adds zero -- the
  /// counter the cache tests pin this guarantee with.
  uint64_t tracedBlocks() const { return TracedBlocks.load(); }

  /// Parallel-by-benchmark counterpart of schedfilter::generateSuiteData.
  std::vector<BenchmarkRun>
  generateSuiteData(const std::vector<BenchmarkSpec> &Suite,
                    const MachineModel &Model);

  /// Parallel-by-benchmark counterpart of schedfilter::labelSuite.
  std::vector<Dataset> labelSuite(const std::vector<BenchmarkRun> &Suite,
                                  double ThresholdPct);

  /// Parallel counterpart of schedfilter::runThreshold: LOOCV folds and
  /// the per-benchmark evaluation/recompilation both fan out.
  ThresholdResult runThreshold(const std::vector<BenchmarkRun> &Suite,
                               double ThresholdPct, const LearnerFn &Learner);

  /// Parallel counterpart of schedfilter::runThresholdSweep: thresholds
  /// fan out across the pool; each threshold's inner layers run inline on
  /// the worker that owns it (TaskPool nesting).
  std::vector<ThresholdResult>
  runThresholdSweep(const std::vector<BenchmarkRun> &Suite,
                    const std::vector<double> &Thresholds,
                    const LearnerFn &Learner);

private:
  TaskPool Pool;
  CorpusCache *Cache = nullptr;
  std::atomic<uint64_t> TracedBlocks{0};
};

} // namespace schedfilter

#endif // SCHEDFILTER_HARNESS_PARALLELEXPERIMENTS_H
