//===- harness/TableRender.h - Paper-layout table printing ------*- C++ -*-===//
///
/// \file
/// Renders ThresholdResult sweeps in the layout of the paper's Tables 3-6
/// and emits the data series behind Figures 1-3 (as tables + CSV, so any
/// plotting tool can regenerate the figures).
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_HARNESS_TABLERENDER_H
#define SCHEDFILTER_HARNESS_TABLERENDER_H

#include "harness/Experiments.h"

#include <ostream>

namespace schedfilter {

/// Table 3: classification error rates (percent) per benchmark per
/// threshold, with geometric mean.
void renderTable3(const std::vector<ThresholdResult> &Sweep,
                  std::ostream &OS);

/// Table 4: predicted execution times (percent of unscheduled).
void renderTable4(const std::vector<ThresholdResult> &Sweep,
                  std::ostream &OS);

/// Table 5: effect of t on training-set size (LS row; NS is constant).
void renderTable5(const std::vector<ThresholdResult> &Sweep,
                  std::ostream &OS);

/// Table 6: effect of t on run-time classification of blocks.
void renderTable6(const std::vector<ThresholdResult> &Sweep,
                  std::ostream &OS);

/// Figure 1(a)/2(a)/3(a): scheduling effort of L/N relative to LS.
/// Prints one row per threshold with per-benchmark columns and the
/// geometric mean, for the chosen effort metric.
void renderEffortFigure(const std::vector<ThresholdResult> &Sweep,
                        bool UseWallTime, std::ostream &OS);

/// Figure 1(b)/2(b)/3(b): application (simulated) running time relative
/// to NS, for L/N at each threshold; also prints the LS reference row.
void renderAppTimeFigure(const std::vector<ThresholdResult> &Sweep,
                         std::ostream &OS);

/// Figure 4: prints one induced filter (rules with coverage counts).
void renderInducedFilter(const RuleSet &Filter, std::ostream &OS);

/// Headline summary (the abstract's claim): percent of LS benefit
/// retained and fraction of LS effort spent, at each threshold.
void renderHeadline(const std::vector<ThresholdResult> &Sweep,
                    std::ostream &OS);

} // namespace schedfilter

#endif // SCHEDFILTER_HARNESS_TABLERENDER_H
