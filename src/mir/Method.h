//===- mir/Method.h - Compiled method ---------------------------*- C++ -*-===//
///
/// \file
/// A method: a named list of basic blocks, mirroring how the paper's JIT
/// presents each compiled Java method to the instruction scheduler block by
/// block.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_MIR_METHOD_H
#define SCHEDFILTER_MIR_METHOD_H

#include "mir/BasicBlock.h"

namespace schedfilter {

/// A named sequence of basic blocks.
class Method {
public:
  explicit Method(std::string Name) : Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }

  void addBlock(BasicBlock BB) { Blocks.push_back(std::move(BB)); }

  size_t size() const { return Blocks.size(); }

  const BasicBlock &operator[](size_t I) const { return Blocks[I]; }
  BasicBlock &operator[](size_t I) { return Blocks[I]; }

  std::vector<BasicBlock>::const_iterator begin() const {
    return Blocks.begin();
  }
  std::vector<BasicBlock>::const_iterator end() const { return Blocks.end(); }

  std::vector<BasicBlock> &blocks() { return Blocks; }
  const std::vector<BasicBlock> &blocks() const { return Blocks; }

  /// Total instruction count across all blocks.
  size_t totalInstructions() const;

private:
  std::string Name;
  std::vector<BasicBlock> Blocks;
};

} // namespace schedfilter

#endif // SCHEDFILTER_MIR_METHOD_H
