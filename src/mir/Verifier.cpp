//===- mir/Verifier.cpp - Structural IR checks -----------------------------===//

#include "mir/Verifier.h"

using namespace schedfilter;

VerifyResult schedfilter::verifyBlock(const BasicBlock &BB) {
  for (size_t I = 0, E = BB.size(); I != E; ++I) {
    const Instruction &Inst = BB[I];
    const OpcodeInfo &Info = Inst.getInfo();
    if (Inst.defs().size() != Info.NumDefs)
      return VerifyResult::fail(BB.getName() + ": '" + Info.Name +
                                "' expects " + std::to_string(Info.NumDefs) +
                                " def(s), has " +
                                std::to_string(Inst.defs().size()));
    if (Info.IsTerminator && I + 1 != E)
      return VerifyResult::fail(BB.getName() + ": terminator '" + Info.Name +
                                "' is not the last instruction");
  }
  return VerifyResult::pass();
}

VerifyResult schedfilter::verifyMethod(const Method &M) {
  for (const BasicBlock &BB : M) {
    VerifyResult R = verifyBlock(BB);
    if (!R.Ok) {
      R.Message = M.getName() + "." + R.Message;
      return R;
    }
  }
  return VerifyResult::pass();
}

VerifyResult schedfilter::verifyProgram(const Program &P) {
  for (const Method &M : P) {
    VerifyResult R = verifyMethod(M);
    if (!R.Ok) {
      R.Message = P.getName() + "." + R.Message;
      return R;
    }
  }
  return VerifyResult::pass();
}
