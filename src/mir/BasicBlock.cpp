//===- mir/BasicBlock.cpp - Straight-line code block ----------------------===//

#include "mir/BasicBlock.h"

#include <cassert>

using namespace schedfilter;

BasicBlock BasicBlock::reordered(const std::vector<int> &Order) const {
  assert(Order.size() == Insts.size() && "order must cover every instruction");
  BasicBlock BB(Name, ExecCount);
  for (int Idx : Order) {
    assert(Idx >= 0 && static_cast<size_t>(Idx) < Insts.size() &&
           "order index out of range");
    BB.append(Insts[static_cast<size_t>(Idx)]);
  }
  return BB;
}

std::string BasicBlock::toString() const {
  std::string S = Name + " (x" + std::to_string(ExecCount) + "):\n";
  for (const Instruction &I : Insts)
    S += "  " + I.toString() + "\n";
  return S;
}
