//===- mir/Opcode.cpp - Machine opcodes and category metadata ------------===//

#include "mir/Opcode.h"

#include <cassert>
#include <cstddef>

using namespace schedfilter;

namespace {

constexpr uint16_t IntCat = CatIntegerFU;
constexpr uint16_t FltCat = CatFloatFU;
constexpr uint16_t SysCat = CatSystemFU;

/// Indexed by Opcode.  Keep in sync with the enum; the order is asserted in
/// tests.
const OpcodeInfo Infos[] = {
    // Name, Categories, Unit, ReadsMem, WritesMem, NumDefs, IsTerminator
    {"add", IntCat, FuClass::IntSimple, false, false, 1, false},
    {"sub", IntCat, FuClass::IntSimple, false, false, 1, false},
    {"and", IntCat, FuClass::IntSimple, false, false, 1, false},
    {"or", IntCat, FuClass::IntSimple, false, false, 1, false},
    {"xor", IntCat, FuClass::IntSimple, false, false, 1, false},
    {"shl", IntCat, FuClass::IntSimple, false, false, 1, false},
    {"shr", IntCat, FuClass::IntSimple, false, false, 1, false},
    {"cmp", IntCat, FuClass::IntSimple, false, false, 1, false},
    {"addi", IntCat, FuClass::IntSimple, false, false, 1, false},
    {"li", IntCat, FuClass::IntSimple, false, false, 1, false},
    {"mr", IntCat, FuClass::IntSimple, false, false, 1, false},
    {"mul", IntCat, FuClass::IntComplex, false, false, 1, false},
    {"div", IntCat | CatPEI, FuClass::IntComplex, false, false, 1, false},
    {"fadd", FltCat, FuClass::Float, false, false, 1, false},
    {"fsub", FltCat, FuClass::Float, false, false, 1, false},
    {"fmul", FltCat, FuClass::Float, false, false, 1, false},
    {"fdiv", FltCat, FuClass::Float, false, false, 1, false},
    {"fmadd", FltCat, FuClass::Float, false, false, 1, false},
    {"fcmp", FltCat, FuClass::Float, false, false, 1, false},
    {"fneg", FltCat, FuClass::Float, false, false, 1, false},
    {"fsqrt", FltCat, FuClass::Float, false, false, 1, false},
    {"fmr", FltCat, FuClass::Float, false, false, 1, false},
    {"lwz", CatLoad, FuClass::LoadStore, true, false, 1, false},
    {"lfd", CatLoad, FuClass::LoadStore, true, false, 1, false},
    {"lref", CatLoad, FuClass::LoadStore, true, false, 1, false},
    {"stw", CatStore, FuClass::LoadStore, false, true, 0, false},
    {"stfd", CatStore, FuClass::LoadStore, false, true, 0, false},
    {"stref", CatStore, FuClass::LoadStore, false, true, 0, false},
    {"b", CatBranch, FuClass::Branch, false, false, 0, true},
    {"bc", CatBranch, FuClass::Branch, false, false, 0, true},
    {"call", CatCall | CatPEI | CatGCPoint, FuClass::Branch, true, true, 1,
     false},
    {"callv", CatCall | CatPEI | CatGCPoint, FuClass::Branch, true, true, 1,
     false},
    {"ret", CatReturn, FuClass::Branch, false, false, 0, true},
    {"mfspr", SysCat, FuClass::System, false, false, 1, false},
    {"mtspr", SysCat, FuClass::System, false, false, 0, false},
    {"sync", SysCat, FuClass::System, true, true, 0, false},
    {"trap", SysCat | CatPEI, FuClass::System, false, false, 0, false},
    {"nullchk", IntCat | CatPEI, FuClass::IntSimple, false, false, 0, false},
    {"boundchk", IntCat | CatPEI, FuClass::IntSimple, false, false, 0, false},
    {"gcpoint", CatGCPoint, FuClass::System, false, false, 0, false},
    {"yield", CatYieldPoint, FuClass::System, false, false, 0, false},
    {"tswitch", CatThreadSwitch, FuClass::System, false, false, 0, false},
};

static_assert(sizeof(Infos) / sizeof(Infos[0]) ==
                  static_cast<size_t>(Opcode::NumOpcodes),
              "OpcodeInfo table out of sync with the Opcode enum");

} // namespace

const OpcodeInfo &schedfilter::getOpcodeInfo(Opcode Op) {
  assert(Op < Opcode::NumOpcodes && "invalid opcode");
  return Infos[static_cast<size_t>(Op)];
}

const char *schedfilter::getOpcodeName(Opcode Op) {
  return getOpcodeInfo(Op).Name;
}
