//===- mir/Instruction.cpp - Machine instruction --------------------------===//

#include "mir/Instruction.h"

using namespace schedfilter;

std::string Instruction::toString() const {
  std::string S = getOpcodeName(Op);
  if (!Defs.empty()) {
    S += ' ';
    for (size_t I = 0; I != Defs.size(); ++I)
      S += (I ? ", r" : "r") + std::to_string(Defs[I]);
    S += " =";
  }
  for (size_t I = 0; I != Uses.size(); ++I)
    S += (I ? ", r" : " r") + std::to_string(Uses[I]);
  uint16_t Cats = categories();
  std::string Tags;
  auto AddTag = [&](uint16_t Bit, const char *Tag) {
    if (Cats & Bit) {
      if (!Tags.empty())
        Tags += ',';
      Tags += Tag;
    }
  };
  AddTag(CatPEI, "pei");
  AddTag(CatGCPoint, "gc");
  AddTag(CatThreadSwitch, "ts");
  AddTag(CatYieldPoint, "yield");
  if (!Tags.empty())
    S += " [" + Tags + "]";
  return S;
}
