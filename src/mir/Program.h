//===- mir/Program.h - Whole benchmark program ------------------*- C++ -*-===//
///
/// \file
/// A program: a named collection of methods, corresponding to one benchmark
/// (e.g. "compress").  The experiment harness compiles programs under
/// different scheduling policies and compares compile effort and simulated
/// application time.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_MIR_PROGRAM_H
#define SCHEDFILTER_MIR_PROGRAM_H

#include "mir/Method.h"

#include <functional>

namespace schedfilter {

/// A named collection of methods.
class Program {
public:
  explicit Program(std::string Name) : Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }

  void addMethod(Method M) { Methods.push_back(std::move(M)); }

  size_t size() const { return Methods.size(); }

  const Method &operator[](size_t I) const { return Methods[I]; }
  Method &operator[](size_t I) { return Methods[I]; }

  std::vector<Method>::const_iterator begin() const { return Methods.begin(); }
  std::vector<Method>::const_iterator end() const { return Methods.end(); }

  std::vector<Method> &methods() { return Methods; }

  /// Total number of basic blocks across all methods.
  size_t totalBlocks() const;

  /// Total number of instructions across all methods.
  size_t totalInstructions() const;

  /// Calls \p Fn on every block, in method order then block order.
  void forEachBlock(const std::function<void(const BasicBlock &)> &Fn) const;

private:
  std::string Name;
  std::vector<Method> Methods;
};

} // namespace schedfilter

#endif // SCHEDFILTER_MIR_PROGRAM_H
