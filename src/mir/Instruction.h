//===- mir/Instruction.h - Machine instruction -----------------*- C++ -*-===//
///
/// \file
/// A single machine instruction: an opcode plus register defs/uses and
/// per-instance hazard attributes.  Registers are virtual and identified by
/// small integers; memory operands are abstract (the dependence graph is
/// conservative about aliasing, like the paper's local scheduler).
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_MIR_INSTRUCTION_H
#define SCHEDFILTER_MIR_INSTRUCTION_H

#include "mir/Opcode.h"

#include <string>
#include <vector>

namespace schedfilter {

/// Virtual register number.
using Reg = uint16_t;

/// One machine instruction.
class Instruction {
public:
  Instruction(Opcode Op, std::vector<Reg> Defs, std::vector<Reg> Uses,
              uint16_t ExtraAttrs = 0)
      : Op(Op), Defs(std::move(Defs)), Uses(std::move(Uses)),
        Attrs(ExtraAttrs & AttrAllHazards) {}

  Opcode getOpcode() const { return Op; }
  const OpcodeInfo &getInfo() const { return getOpcodeInfo(Op); }

  const std::vector<Reg> &defs() const { return Defs; }
  const std::vector<Reg> &uses() const { return Uses; }

  /// All of the paper's category bits for this instruction: the opcode's
  /// intrinsic categories plus any per-instance hazard attributes.
  uint16_t categories() const { return getInfo().Categories | Attrs; }

  /// True if this instruction belongs to category \p Bit (a CategoryBits
  /// value), e.g. isInCategory(CatPEI).
  bool isInCategory(uint16_t Bit) const { return (categories() & Bit) != 0; }

  /// Adds hazard attributes (a mask of AttrBits).  Attributes can only be
  /// added, never removed: an instruction cannot become less hazardous.
  void addAttrs(uint16_t Mask) { Attrs |= (Mask & AttrAllHazards); }

  bool readsMemory() const { return getInfo().ReadsMemory; }
  bool writesMemory() const { return getInfo().WritesMemory; }
  bool isTerminator() const { return getInfo().IsTerminator; }
  bool isCall() const { return isInCategory(CatCall); }

  /// True if any hazard bit (PEI/GC/thread-switch/yield) is set.
  bool isHazard() const { return (categories() & AttrAllHazards) != 0; }

  /// True for hazards that act as full scheduling barriers.  The paper
  /// treats GC safepoints, thread-switch points and yield points as
  /// "possible but unusual branches, which disallow reordering"; PEIs are
  /// weaker (they must stay ordered w.r.t. each other and stores, see
  /// DependenceGraph).
  bool isBarrier() const {
    return (categories() &
            (CatGCPoint | CatThreadSwitch | CatYieldPoint)) != 0 ||
           isCall();
  }

  /// Renders e.g. "fadd f3 = f1, f2 [pei]".
  std::string toString() const;

private:
  Opcode Op;
  std::vector<Reg> Defs;
  std::vector<Reg> Uses;
  uint16_t Attrs;
};

} // namespace schedfilter

#endif // SCHEDFILTER_MIR_INSTRUCTION_H
