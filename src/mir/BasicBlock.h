//===- mir/BasicBlock.h - Straight-line code block --------------*- C++ -*-===//
///
/// \file
/// A basic block: a single-entry single-exit sequence of instructions, the
/// unit over which the paper's filter makes its schedule / don't-schedule
/// decision.  Each block carries an execution count (profile weight) used
/// by the paper's SIM(P) weighted-simulated-time metric (§4.2).
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_MIR_BASICBLOCK_H
#define SCHEDFILTER_MIR_BASICBLOCK_H

#include "mir/Instruction.h"

#include <cstdint>
#include <string>
#include <vector>

namespace schedfilter {

/// A straight-line sequence of instructions with one entry and one exit.
class BasicBlock {
public:
  explicit BasicBlock(std::string Name = "bb", uint64_t ExecCount = 1)
      : Name(std::move(Name)), ExecCount(ExecCount) {}

  const std::string &getName() const { return Name; }

  /// Number of times profiling says this block executes; weight in SIM(P).
  uint64_t getExecCount() const { return ExecCount; }
  void setExecCount(uint64_t N) { ExecCount = N; }

  /// Appends an instruction.  Callers must append any terminator last; the
  /// verifier checks this.
  void append(Instruction I) { Insts.push_back(std::move(I)); }

  size_t size() const { return Insts.size(); }
  bool empty() const { return Insts.empty(); }

  const Instruction &operator[](size_t I) const { return Insts[I]; }
  Instruction &operator[](size_t I) { return Insts[I]; }

  std::vector<Instruction>::const_iterator begin() const {
    return Insts.begin();
  }
  std::vector<Instruction>::const_iterator end() const { return Insts.end(); }

  const std::vector<Instruction> &instructions() const { return Insts; }

  /// Returns a copy of this block with its instructions permuted by
  /// \p Order, where Order[i] is the index (into this block) of the i-th
  /// instruction of the new block.  Order must be a permutation of
  /// [0, size()).
  BasicBlock reordered(const std::vector<int> &Order) const;

  /// Multi-line textual dump (one instruction per line).
  std::string toString() const;

private:
  std::string Name;
  uint64_t ExecCount;
  std::vector<Instruction> Insts;
};

} // namespace schedfilter

#endif // SCHEDFILTER_MIR_BASICBLOCK_H
