//===- mir/Method.cpp - Compiled method ------------------------------------===//

#include "mir/Method.h"

using namespace schedfilter;

size_t Method::totalInstructions() const {
  size_t N = 0;
  for (const BasicBlock &BB : Blocks)
    N += BB.size();
  return N;
}
