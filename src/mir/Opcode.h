//===- mir/Opcode.h - Machine opcodes and category metadata ----*- C++ -*-===//
///
/// \file
/// Opcodes for the machine-level IR that the scheduler and the learned
/// filter operate on.  The set is PowerPC/Jikes-RVM flavoured: plain ALU and
/// floating point arithmetic, loads/stores, branches, calls, returns,
/// "system" instructions, and the JVM-specific pseudo-instructions that the
/// paper's Table 1 calls *hazards*: potentially-excepting instructions
/// (PEIs), garbage-collection safepoints, thread-switch points, and yield
/// points.
///
/// Each opcode carries static metadata (OpcodeInfo): which of the paper's
/// 12 possibly-overlapping categories it belongs to, which functional-unit
/// class it executes on, and its default hazard attributes.  A concrete
/// Instruction may extend (never shrink) the hazard attributes, e.g. a load
/// whose null check was not proven redundant is a PEI.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_MIR_OPCODE_H
#define SCHEDFILTER_MIR_OPCODE_H

#include <cstdint>

namespace schedfilter {

/// All opcodes understood by the target model, the scheduler, and the block
/// simulator.
enum class Opcode : uint8_t {
  // Simple integer ALU (either integer unit).
  Add,
  Sub,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Cmp,
  AddImm,
  LoadConst,
  Move,
  // Complex integer (second, "dissimilar" integer unit only).
  Mul,
  Div,
  // Floating point.
  FAdd,
  FSub,
  FMul,
  FDiv,
  FMAdd,
  FCmp,
  FNeg,
  FSqrt,
  FMove,
  // Memory.
  LoadInt,
  LoadFloat,
  LoadRef,
  StoreInt,
  StoreFloat,
  StoreRef,
  // Control.
  Br,
  BrCond,
  Call,
  CallVirtual,
  Ret,
  // System unit (special-purpose registers, barriers, traps).
  SysRegRead,
  SysRegWrite,
  MemBar,
  Trap,
  // JVM runtime pseudo-instructions (the paper's hazards).
  NullCheck,
  BoundsCheck,
  GcSafepoint,
  YieldPoint,
  ThreadSwitchPoint,
  NumOpcodes
};

/// The paper's 12 possibly-overlapping block categories (Table 1), as a
/// bitmask.  Op-kind bits and FU-use bits come from the opcode; hazard bits
/// come from the opcode's defaults OR'd with per-instruction attributes.
enum CategoryBits : uint16_t {
  CatBranch = 1u << 0,
  CatCall = 1u << 1,
  CatLoad = 1u << 2,
  CatStore = 1u << 3,
  CatReturn = 1u << 4,
  CatIntegerFU = 1u << 5,
  CatFloatFU = 1u << 6,
  CatSystemFU = 1u << 7,
  CatPEI = 1u << 8,
  CatGCPoint = 1u << 9,
  CatThreadSwitch = 1u << 10,
  CatYieldPoint = 1u << 11,
};

/// Hazard attribute bits carried per-instruction (a subset of CategoryBits).
enum AttrBits : uint16_t {
  AttrPEI = CatPEI,
  AttrGCPoint = CatGCPoint,
  AttrThreadSwitch = CatThreadSwitch,
  AttrYieldPoint = CatYieldPoint,
  AttrAllHazards = AttrPEI | AttrGCPoint | AttrThreadSwitch | AttrYieldPoint,
};

/// Which class of functional unit executes an opcode.  The MPC7410-like
/// model has two dissimilar integer units: IntSimple ops run on either,
/// IntComplex ops (mul/div) only on the second.
enum class FuClass : uint8_t {
  IntSimple,
  IntComplex,
  Float,
  LoadStore,
  Branch,
  System,
  NumClasses
};

/// Static per-opcode metadata.
struct OpcodeInfo {
  const char *Name;
  /// Paper categories this opcode always belongs to (op kind + FU use +
  /// intrinsic hazards).
  uint16_t Categories;
  FuClass Unit;
  /// True for instructions that read memory.
  bool ReadsMemory;
  /// True for instructions that write memory.
  bool WritesMemory;
  /// Expected number of register results (0 or 1 in this IR).
  uint8_t NumDefs;
  /// True for control-flow terminators (branches and returns).
  bool IsTerminator;
};

/// Returns the metadata record for \p Op.
const OpcodeInfo &getOpcodeInfo(Opcode Op);

/// Returns the mnemonic for \p Op, e.g. "fadd".
const char *getOpcodeName(Opcode Op);

/// Total number of opcodes (for iteration in tests).
constexpr unsigned getNumOpcodes() {
  return static_cast<unsigned>(Opcode::NumOpcodes);
}

} // namespace schedfilter

#endif // SCHEDFILTER_MIR_OPCODE_H
