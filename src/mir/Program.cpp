//===- mir/Program.cpp - Whole benchmark program ---------------------------===//

#include "mir/Program.h"

using namespace schedfilter;

size_t Program::totalBlocks() const {
  size_t N = 0;
  for (const Method &M : Methods)
    N += M.size();
  return N;
}

size_t Program::totalInstructions() const {
  size_t N = 0;
  for (const Method &M : Methods)
    N += M.totalInstructions();
  return N;
}

void Program::forEachBlock(
    const std::function<void(const BasicBlock &)> &Fn) const {
  for (const Method &M : Methods)
    for (const BasicBlock &BB : M)
      Fn(BB);
}
