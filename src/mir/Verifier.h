//===- mir/Verifier.h - Structural IR checks --------------------*- C++ -*-===//
///
/// \file
/// Structural well-formedness checks for the IR: terminators must be last,
/// def counts must match opcode metadata, and uses must be defined before
/// use or be live-in (registers below the block's live-in boundary).  The
/// generator and tests run the verifier on everything they build.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_MIR_VERIFIER_H
#define SCHEDFILTER_MIR_VERIFIER_H

#include "mir/Program.h"

#include <string>

namespace schedfilter {

/// Result of verification: Ok == true, or a description of the first
/// violation found.
struct VerifyResult {
  bool Ok = true;
  std::string Message;

  static VerifyResult pass() { return {}; }
  static VerifyResult fail(std::string Msg) { return {false, std::move(Msg)}; }
};

/// Verifies one block.
VerifyResult verifyBlock(const BasicBlock &BB);

/// Verifies every block of \p M.
VerifyResult verifyMethod(const Method &M);

/// Verifies every method of \p P.
VerifyResult verifyProgram(const Program &P);

} // namespace schedfilter

#endif // SCHEDFILTER_MIR_VERIFIER_H
