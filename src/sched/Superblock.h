//===- sched/Superblock.h - Profile-guided superblock formation -*- C++ -*-===//
///
/// \file
/// Superblock formation and scheduling: the extension the paper sketches
/// in §3.1 ("we have investigated superblock scheduling in our compiler
/// setting, and with it one can get slight (1-2%) additional improvement
/// over local scheduling").
///
/// A superblock is a single-entry, multiple-exit trace: consecutive
/// blocks of a method whose profile weights say they usually execute in
/// sequence, concatenated with the interior branches kept as side exits.
/// Scheduling a superblock can move speculation-safe work upward across
/// side exits (see DependenceGraph's superblock mode), recovering
/// parallelism local scheduling cannot see.
///
/// Block-local temporaries of the merged blocks are renamed into disjoint
/// ranges so the concatenation does not manufacture false register
/// dependences.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_SCHED_SUPERBLOCK_H
#define SCHEDFILTER_SCHED_SUPERBLOCK_H

#include "mir/Method.h"
#include "sched/ListScheduler.h"

namespace schedfilter {

/// Formation knobs.
struct SuperblockOptions {
  /// Continue the trace only while the next block's execution count is at
  /// least this fraction of the current block's (likely fallthrough).
  double MinContinuationRatio = 0.5;
  /// Maximum number of blocks merged into one superblock.
  size_t MaxBlocks = 8;
  /// Registers >= TempBase are block-local temporaries eligible for
  /// renaming; smaller registers are method live-ins and keep their
  /// numbers.
  Reg TempBase = 64;
  /// Spacing between renamed temp ranges of consecutive merged blocks.
  Reg RenameStride = 2048;
};

/// Greedily merges consecutive blocks of \p M into superblocks following
/// the profile.  Every instruction of the method appears in exactly one
/// returned superblock; a superblock's execution count is its entry
/// block's count.  Blocks that do not chain become singleton superblocks.
std::vector<BasicBlock> formSuperblocks(const Method &M,
                                        SuperblockOptions Opts = {});

/// Schedules \p Superblock with side-exit-aware dependences (superblock
/// mode), returning a legal order.
ScheduleResult scheduleSuperblock(const BasicBlock &Superblock,
                                  const MachineModel &Model);

} // namespace schedfilter

#endif // SCHEDFILTER_SCHED_SUPERBLOCK_H
