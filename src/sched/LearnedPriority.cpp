//===- sched/LearnedPriority.cpp - Learning *how* to schedule ---------------===//

#include "sched/LearnedPriority.h"

#include "sched/OptimalScheduler.h"

#include <algorithm>
#include <cassert>
#include <queue>

using namespace schedfilter;

const char *schedfilter::getDecisionFeatureName(unsigned F) {
  static const char *Names[DecisionFeatures::NumFeatures] = {
      "criticalPath", "latency", "fanout",  "slack",
      "isLoad",       "isFloat", "isStore",
  };
  assert(F < DecisionFeatures::NumFeatures && "bad decision feature index");
  return Names[F];
}

DecisionFeatures schedfilter::decisionFeatures(const BasicBlock &BB,
                                               const DependenceGraph &Dag,
                                               const MachineModel &Model,
                                               int Candidate,
                                               long EarliestStart,
                                               long Clock) {
  const Instruction &I = BB[static_cast<size_t>(Candidate)];
  DecisionFeatures F;
  double N = static_cast<double>(BB.size());
  F.Phi[0] = static_cast<double>(Dag.criticalPath(Candidate)) / (N + 1.0);
  F.Phi[1] = static_cast<double>(Model.getLatency(I.getOpcode())) / 8.0;
  F.Phi[2] = static_cast<double>(Dag.succs(Candidate).size()) / (N + 1.0);
  F.Phi[3] = static_cast<double>(std::max<long>(0, EarliestStart - Clock));
  F.Phi[4] = I.isInCategory(CatLoad) ? 1.0 : 0.0;
  F.Phi[5] = I.isInCategory(CatFloatFU) ? 1.0 : 0.0;
  F.Phi[6] = I.isInCategory(CatStore) ? 1.0 : 0.0;
  return F;
}

namespace {

/// One harvested training pair: at some decision point, Chosen was the
/// optimal pick and Other was a startable alternative.
struct PreferencePair {
  DecisionFeatures Chosen;
  DecisionFeatures Other;
};

/// Replays an order through the scheduler's bookkeeping, invoking
/// \p OnDecision(candidates, chosen, earliest-starts, clock) at every
/// decision point where more than one instruction could start now.
template <typename Callback>
void replaySchedule(const BasicBlock &BB, const DependenceGraph &Dag,
                    const std::vector<int> &Order, Callback OnDecision) {
  size_t N = BB.size();
  std::vector<long> EarliestStart(N, 0);
  std::vector<int> Pending = Dag.inDegrees();
  std::vector<bool> Ready(N, false);
  for (size_t I = 0; I != N; ++I)
    if (Pending[I] == 0)
      Ready[I] = true;

  long Clock = 0;
  for (int Chosen : Order) {
    // Candidates: ready instructions; the clock first advances to the
    // chosen instruction's earliest start (mirroring the cycle-driven
    // scheduler when it runs out of startable-now work).
    Clock = std::max(Clock, EarliestStart[static_cast<size_t>(Chosen)]);
    std::vector<int> Startable;
    for (size_t I = 0; I != N; ++I)
      if (Ready[I] && EarliestStart[I] <= Clock)
        Startable.push_back(static_cast<int>(I));
    if (Startable.size() > 1)
      OnDecision(Startable, Chosen, EarliestStart, Clock);

    Ready[static_cast<size_t>(Chosen)] = false;
    for (const DepEdge &E : Dag.succs(Chosen)) {
      size_t To = static_cast<size_t>(E.To);
      EarliestStart[To] =
          std::max(EarliestStart[To], Clock + static_cast<long>(E.Latency));
      if (--Pending[To] == 0)
        Ready[To] = true;
    }
  }
}

} // namespace

PreferenceFunction
PreferenceLearner::train(const std::vector<BasicBlock> &Blocks,
                         const MachineModel &Model) const {
  // Harvest pairs from optimal schedules.
  std::vector<PreferencePair> Pairs;
  for (const BasicBlock &BB : Blocks) {
    if (BB.empty() || BB.size() > Opts.MaxBlockSize)
      continue;
    OptimalResult Opt = findOptimalSchedule(BB, Model);
    DependenceGraph Dag(BB, Model);
    replaySchedule(BB, Dag, Opt.Order,
                   [&](const std::vector<int> &Startable, int Chosen,
                       const std::vector<long> &Earliest, long Clock) {
                     DecisionFeatures Good = decisionFeatures(
                         BB, Dag, Model, Chosen,
                         Earliest[static_cast<size_t>(Chosen)], Clock);
                     for (int Other : Startable) {
                       if (Other == Chosen)
                         continue;
                       Pairs.push_back(
                           {Good, decisionFeatures(
                                      BB, Dag, Model, Other,
                                      Earliest[static_cast<size_t>(Other)],
                                      Clock)});
                     }
                   });
  }

  // Averaged perceptron on feature differences: want
  // w . (chosen - other) > 0 for every pair.
  constexpr unsigned NF = DecisionFeatures::NumFeatures;
  std::array<double, NF> W{}, Sum{};
  uint64_t Updates = 1;
  Rng R(Opts.Seed);
  std::vector<size_t> Idx(Pairs.size());
  for (size_t I = 0; I != Pairs.size(); ++I)
    Idx[I] = I;

  for (unsigned Epoch = 0; Epoch != Opts.Epochs; ++Epoch) {
    for (size_t I = Idx.size(); I > 1; --I)
      std::swap(Idx[I - 1], Idx[R.below(static_cast<uint32_t>(I))]);
    for (size_t PI : Idx) {
      const PreferencePair &P = Pairs[PI];
      double Margin = 0.0;
      for (unsigned F = 0; F != NF; ++F)
        Margin += W[F] * (P.Chosen.Phi[F] - P.Other.Phi[F]);
      if (Margin <= 0.0)
        for (unsigned F = 0; F != NF; ++F)
          W[F] += P.Chosen.Phi[F] - P.Other.Phi[F];
      for (unsigned F = 0; F != NF; ++F)
        Sum[F] += W[F];
      ++Updates;
    }
  }
  for (unsigned F = 0; F != NF; ++F)
    Sum[F] /= static_cast<double>(Updates);
  return PreferenceFunction(Sum);
}

ScheduleResult LearnedListScheduler::schedule(const BasicBlock &BB) const {
  DependenceGraph Dag(BB, Model);
  ScheduleResult R = schedule(BB, Dag);
  R.WorkUnits += Dag.workUnits();
  return R;
}

ScheduleResult
LearnedListScheduler::schedule(const BasicBlock &BB,
                               const DependenceGraph &Dag) const {
  int N = static_cast<int>(BB.size());
  ScheduleResult R;
  R.Order.reserve(static_cast<size_t>(N));

  std::vector<long> EarliestStart(static_cast<size_t>(N), 0);
  std::vector<int> Pending = Dag.inDegrees();
  std::vector<int> Ready;
  for (int I = 0; I != N; ++I)
    if (Pending[static_cast<size_t>(I)] == 0)
      Ready.push_back(I);

  long Clock = 0;
  while (!Ready.empty()) {
    // Advance the clock to the minimum earliest start if nothing can
    // start now.
    long MinStart = EarliestStart[static_cast<size_t>(Ready.front())];
    for (int I : Ready)
      MinStart = std::min(MinStart, EarliestStart[static_cast<size_t>(I)]);
    Clock = std::max(Clock, MinStart);

    // Among startable-now candidates, pick the preference argmax.
    int BestIdx = -1;
    double BestScore = 0.0;
    for (size_t Pos = 0; Pos != Ready.size(); ++Pos) {
      int I = Ready[Pos];
      if (EarliestStart[static_cast<size_t>(I)] > Clock)
        continue;
      double Score = Fn.score(decisionFeatures(
          BB, Dag, Model, I, EarliestStart[static_cast<size_t>(I)], Clock));
      ++R.WorkUnits;
      if (BestIdx < 0 || Score > BestScore ||
          (Score == BestScore && I < Ready[static_cast<size_t>(BestIdx)])) {
        BestIdx = static_cast<int>(Pos);
        BestScore = Score;
      }
    }
    assert(BestIdx >= 0 && "clock advance guarantees a startable candidate");

    int Picked = Ready[static_cast<size_t>(BestIdx)];
    Ready.erase(Ready.begin() + BestIdx);
    R.Order.push_back(Picked);
    for (const DepEdge &E : Dag.succs(Picked)) {
      size_t To = static_cast<size_t>(E.To);
      EarliestStart[To] =
          std::max(EarliestStart[To], Clock + static_cast<long>(E.Latency));
      ++R.WorkUnits;
      if (--Pending[To] == 0)
        Ready.push_back(E.To);
    }
  }

  assert(R.Order.size() == static_cast<size_t>(N) && "incomplete schedule");
  return R;
}
