//===- sched/DependenceGraph.cpp - Block dependence DAG --------------------===//

#include "sched/DependenceGraph.h"

#include <algorithm>
#include <cassert>

using namespace schedfilter;

namespace {

/// Grows the per-register arrays of \p S to cover register \p R.  Fresh
/// entries carry stamp 0, which never equals a live epoch.
void growTo(DagBuildScratch &S, Reg R) {
  if (static_cast<size_t>(R) < S.DefStamp.size())
    return;
  size_t N = static_cast<size_t>(R) + 1;
  S.DefStamp.resize(N, 0);
  S.LastDef.resize(N, -1);
  S.ReaderStamp.resize(N, 0);
  S.Readers.resize(N);
}

/// Pointer to the last def of \p R this epoch, or nullptr.
const int *lastDef(const DagBuildScratch &S, Reg R) {
  if (static_cast<size_t>(R) >= S.DefStamp.size() ||
      S.DefStamp[R] != S.Epoch)
    return nullptr;
  return &S.LastDef[R];
}

/// The readers-since-def list of \p R, cleared lazily on first touch this
/// epoch (capacity is retained).
std::vector<int> &readersOf(DagBuildScratch &S, Reg R) {
  growTo(S, R);
  if (S.ReaderStamp[R] != S.Epoch) {
    S.ReaderStamp[R] = S.Epoch;
    S.Readers[R].clear();
  }
  return S.Readers[R];
}

} // namespace

void DependenceGraph::addEdge(int From, int To, unsigned Latency,
                              DepKind Kind) {
  assert(From < To && "dependence edges must point forward in program order");
  auto &List = Succs[static_cast<size_t>(From)];
  // Deduplicate, keeping the strongest (largest latency) constraint.  Out
  // degrees are small, so a linear scan beats a hash set here.
  for (DepEdge &E : List) {
    if (E.To != To)
      continue;
    if (Latency > E.Latency) {
      E.Latency = Latency;
      E.Kind = Kind;
    }
    return;
  }
  List.push_back({To, Latency, Kind});
  ++InDegree[static_cast<size_t>(To)];
  ++EdgeCount;
  // An edge insert costs several elementary operations: the dedupe scan,
  // the push, and the bookkeeping that led here (def/use lookups in the
  // builder).  Weight it so work units track wall time.
  Work += 4;
}

/// True if \p Inst may be speculated upward across a superblock side
/// exit: pure register computation or a non-excepting load.
static bool isSpeculationSafe(const Instruction &Inst) {
  if (Inst.writesMemory() || Inst.isTerminator() || Inst.isHazard() ||
      Inst.isCall())
    return false;
  if (Inst.getInfo().Unit == FuClass::System)
    return false;
  return true;
}

DependenceGraph::DependenceGraph(const BasicBlock &BB,
                                 const MachineModel &Model,
                                 bool SuperblockMode) {
  DagBuildScratch Scratch;
  build(BB, Model, Scratch, SuperblockMode);
}

void DependenceGraph::build(const BasicBlock &BB, const MachineModel &Model,
                            DagBuildScratch &S, bool SuperblockMode) {
  size_t N = BB.size();
  // Reset reusing capacity: the outer Succs vector only grows, so the
  // inner edge lists (and their heap blocks) survive across blocks.
  if (Succs.size() < N)
    Succs.resize(N);
  for (size_t I = 0; I != N; ++I)
    Succs[I].clear();
  NodeCount = N;
  InDegree.assign(N, 0);
  Height.assign(N, 0);
  EdgeCount = 0;
  Work = 0;

  // One epoch per build invalidates all per-register state in O(1).
  ++S.Epoch;
  S.LoadsSinceStore.clear();
  S.SinceBarrier.clear();

  // Memory ordering state.
  int LastStore = -1;
  // Hazard ordering state.
  int LastPEI = -1;
  int LastBarrier = -1;
  // Superblock state: the most recent interior terminator (side exit).
  int LastSideExit = -1;

  for (int I = 0, E = static_cast<int>(N); I != E; ++I) {
    const Instruction &Inst = BB[static_cast<size_t>(I)];
    Work += 3; // per-instruction def/use bookkeeping

    // Register dependences.
    for (Reg U : Inst.uses()) {
      if (const int *Def = lastDef(S, U))
        addEdge(*Def, I,
                Model.getLatency(BB[static_cast<size_t>(*Def)].getOpcode()),
                DepKind::Data);
      readersOf(S, U).push_back(I);
    }
    for (Reg D : Inst.defs()) {
      if (const int *Def = lastDef(S, D))
        addEdge(*Def, I, 1, DepKind::Output);
      growTo(S, D);
      if (S.ReaderStamp[D] == S.Epoch) {
        for (int Reader : S.Readers[D])
          if (Reader != I)
            addEdge(Reader, I, 0, DepKind::Anti);
        S.Readers[D].clear();
      }
      S.DefStamp[D] = S.Epoch;
      S.LastDef[D] = I;
    }

    // Memory ordering: conservative aliasing.  Loads may reorder freely
    // among themselves; stores order against everything memory-related.
    if (Inst.readsMemory() && LastStore >= 0)
      addEdge(LastStore, I, 1, DepKind::Memory);
    if (Inst.writesMemory()) {
      if (LastStore >= 0)
        addEdge(LastStore, I, 1, DepKind::Memory);
      for (int L : S.LoadsSinceStore)
        if (L != I)
          addEdge(L, I, 0, DepKind::Memory);
      S.LoadsSinceStore.clear();
      LastStore = I;
    } else if (Inst.readsMemory()) {
      S.LoadsSinceStore.push_back(I);
    }

    // Hazards.  PEIs must stay ordered among themselves (exceptions are
    // precise and ordered) and with respect to stores in both directions
    // (memory must reflect exactly the pre-exception program prefix).
    bool IsPEI = Inst.isInCategory(CatPEI);
    if (IsPEI) {
      if (LastPEI >= 0)
        addEdge(LastPEI, I, 0, DepKind::Hazard);
      if (LastStore >= 0 && LastStore != I)
        addEdge(LastStore, I, 0, DepKind::Hazard);
      LastPEI = I;
    }
    if (Inst.writesMemory() && LastPEI >= 0 && LastPEI != I)
      addEdge(LastPEI, I, 0, DepKind::Hazard);

    // Full barriers: calls, GC safepoints, thread switches, yield points.
    // Nothing moves across them in either direction.
    if (LastBarrier >= 0)
      addEdge(LastBarrier, I, 0, DepKind::Hazard);
    if (Inst.isBarrier()) {
      for (int P : S.SinceBarrier)
        addEdge(P, I, 0, DepKind::Hazard);
      S.SinceBarrier.clear();
      LastBarrier = I;
    } else {
      S.SinceBarrier.push_back(I);
    }

    // Side exits: in superblock mode, unsafe instructions may not move up
    // across the previous interior terminator.
    if (SuperblockMode && LastSideExit >= 0 && LastSideExit != I &&
        !isSpeculationSafe(Inst))
      addEdge(LastSideExit, I, 0, DepKind::Control);

    // Terminator: every earlier instruction must stay before it (no
    // downward motion across a branch, interior or final).
    if (Inst.isTerminator()) {
      for (int P = 0; P != I; ++P)
        addEdge(P, I, 0, DepKind::Control);
      if (SuperblockMode && I + 1 != static_cast<int>(N))
        LastSideExit = I;
    }
  }

  computeHeights(BB, Model);
}

void DependenceGraph::computeHeights(const BasicBlock &BB,
                                     const MachineModel &Model) {
  // Nodes are numbered in program order and edges point forward, so a
  // reverse scan is a valid reverse-topological traversal.
  for (int I = static_cast<int>(numNodes()) - 1; I >= 0; --I) {
    long H = Model.getLatency(BB[static_cast<size_t>(I)].getOpcode());
    for (const DepEdge &E : Succs[static_cast<size_t>(I)]) {
      long Via = static_cast<long>(E.Latency) + Height[static_cast<size_t>(E.To)];
      H = std::max(H, Via);
      ++Work;
    }
    Height[static_cast<size_t>(I)] = H;
  }
}

bool DependenceGraph::hasEdge(int From, int To) const {
  for (const DepEdge &E : Succs[static_cast<size_t>(From)])
    if (E.To == To)
      return true;
  return false;
}
