//===- sched/LearnedPriority.h - Learning *how* to schedule -----*- C++ -*-===//
///
/// \file
/// The companion problem to the paper's contribution.  §2: "our goal here
/// is to learn to choose between scheduling and not scheduling, not to
/// induce the heuristic used by the scheduler" — that earlier work (Moss
/// et al., NIPS'97) learned a *preference function* that picks which
/// ready instruction to schedule next, trained from optimal schedules of
/// small blocks.  This module reproduces it:
///
///   - decisionFeatures(): a per-candidate feature vector at a scheduling
///     decision point (critical path, latency, earliest start, fanout,
///     and class indicators);
///   - PreferenceFunction: a linear scorer over those features;
///   - PreferenceLearner: averaged-perceptron training on preference
///     pairs (optimal choice beats every alternative candidate);
///   - LearnedListScheduler: the cycle-driven list scheduler driven by a
///     PreferenceFunction instead of the CPS tie-break.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_SCHED_LEARNEDPRIORITY_H
#define SCHEDFILTER_SCHED_LEARNEDPRIORITY_H

#include "sched/ListScheduler.h"
#include "support/Rng.h"

#include <array>

namespace schedfilter {

/// Features describing one ready candidate instruction at a decision
/// point.
struct DecisionFeatures {
  static constexpr unsigned NumFeatures = 7;
  std::array<double, NumFeatures> Phi{};
};

/// Feature names, index-aligned with DecisionFeatures::Phi.
const char *getDecisionFeatureName(unsigned F);

/// Extracts candidate features: \p EarliestStart and \p Clock come from
/// the scheduler's bookkeeping.
DecisionFeatures decisionFeatures(const BasicBlock &BB,
                                  const DependenceGraph &Dag,
                                  const MachineModel &Model, int Candidate,
                                  long EarliestStart, long Clock);

/// A linear preference function over DecisionFeatures.
class PreferenceFunction {
public:
  PreferenceFunction() { Weights.fill(0.0); }
  explicit PreferenceFunction(std::array<double, DecisionFeatures::NumFeatures> W)
      : Weights(W) {}

  double score(const DecisionFeatures &F) const {
    double S = 0.0;
    for (unsigned I = 0; I != DecisionFeatures::NumFeatures; ++I)
      S += Weights[I] * F.Phi[I];
    return S;
  }

  const std::array<double, DecisionFeatures::NumFeatures> &weights() const {
    return Weights;
  }

private:
  std::array<double, DecisionFeatures::NumFeatures> Weights;
};

/// Averaged-perceptron trainer over preference pairs harvested from
/// optimal schedules of small blocks.
class PreferenceLearner {
public:
  struct Options {
    unsigned Epochs = 8;
    uint64_t Seed = 0x9e17;
    /// Blocks larger than this are skipped (optimal search cost).
    size_t MaxBlockSize = 11;
  };

  PreferenceLearner() : PreferenceLearner(Options()) {}
  explicit PreferenceLearner(Options O) : Opts(O) {}

  /// Harvests preference pairs from \p Blocks (decision points of their
  /// optimal schedules) and trains the scorer.
  PreferenceFunction train(const std::vector<BasicBlock> &Blocks,
                           const MachineModel &Model) const;

private:
  Options Opts;
};

/// List scheduler whose pick among startable-now instructions is the
/// PreferenceFunction argmax (ties to program order).
class LearnedListScheduler {
public:
  LearnedListScheduler(const MachineModel &Model, PreferenceFunction Fn)
      : Model(Model), Fn(std::move(Fn)) {}

  ScheduleResult schedule(const BasicBlock &BB) const;
  ScheduleResult schedule(const BasicBlock &BB,
                          const DependenceGraph &Dag) const;

private:
  const MachineModel &Model;
  PreferenceFunction Fn;
};

} // namespace schedfilter

#endif // SCHEDFILTER_SCHED_LEARNEDPRIORITY_H
