//===- sched/SchedContext.h - Reusable per-block scheduling arena -*- C++ -*-===//
///
/// \file
/// The scratch arena behind the repository's allocation-free hot path.
/// Scheduling one block used to heap-allocate a fresh dependence-graph
/// adjacency, ready queues, scoreboard maps and trace buffers; a
/// SchedContext owns all of that storage and is threaded through
/// DependenceGraph, ListScheduler, BlockSimulator, ScheduleFilter and the
/// compile Pipeline, so that after a short warm-up, scheduling and
/// simulating a block performs zero steady-state allocations.
///
/// Contexts are cheap to construct, model-agnostic (the same context can
/// serve blocks for different MachineModels), and deliberately not
/// thread-safe: one context per thread.  Reuse never changes results --
/// every context entry point produces bit-for-bit the output of its
/// one-shot counterpart, which tests/schedcontext_test.cpp locks in.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_SCHED_SCHEDCONTEXT_H
#define SCHEDFILTER_SCHED_SCHEDCONTEXT_H

#include "features/FeatureMatrix.h"
#include "sched/DependenceGraph.h"
#include "sched/ListScheduler.h"
#include "sim/BlockSimulator.h"

namespace schedfilter {

/// Scratch arena for the per-block schedule/simulate pipeline.
class SchedContext {
public:
  SchedContext() = default;
  SchedContext(const SchedContext &) = delete;
  SchedContext &operator=(const SchedContext &) = delete;

  /// The reusable dependence graph (adjacency storage persists across
  /// build() calls).  Valid until the next build on this context.
  DependenceGraph &dag() { return Dag; }
  const DependenceGraph &dag() const { return Dag; }

  /// Register bookkeeping scratch for DAG construction.
  DagBuildScratch &dagScratch() { return DagScratch; }

  /// Ready queues and scoreboards for the list scheduler.
  ListSchedulerScratch &schedulerScratch() { return SchedScratch; }

  /// Scoreboard scratch for the block simulator.
  SimScratch &simScratch() { return SimulatorScratch; }

  /// Reusable trace buffer for BlockSimulator::simulateWithTrace; valid
  /// until the next trace call on this context.
  SimTrace &trace() { return Trace; }

  /// Reusable per-block order buffer for callers that schedule one block
  /// at a time (e.g. the instrumented-scheduler pass).
  std::vector<int> &orderBuffer() { return OrderBuffer; }

  /// Per-program arenas for the compile pipeline: the block-pointer list
  /// and one order slot per block.  Outer vectors are resized per program;
  /// inner order vectors keep their capacity across programs.
  std::vector<const BasicBlock *> &blockList() { return BlockList; }
  std::vector<std::vector<int>> &orderArena() { return OrderArena; }

  /// Scratch for ScheduleFilter::shouldScheduleBatch: the SoA feature
  /// matrix, the non-gated block list with its original-index map, the
  /// compiled filter's predicate bit matrix, per-row results, and the
  /// per-batch decision buffer pipelines hand back to the filter.  All
  /// grow-only, like every other arena buffer.
  FeatureMatrix &featureMatrix() { return Features; }
  std::vector<const BasicBlock *> &batchBlocks() { return BatchBlocks; }
  std::vector<uint32_t> &batchRowIndex() { return BatchRowIndex; }
  std::vector<uint64_t> &predScratch() { return PredScratch; }
  std::vector<unsigned char> &batchIsLS() { return BatchIsLS; }
  std::vector<uint64_t> &batchWork() { return BatchWork; }
  std::vector<char> &batchDecisions() { return BatchDecisions; }

private:
  DependenceGraph Dag;
  DagBuildScratch DagScratch;
  ListSchedulerScratch SchedScratch;
  SimScratch SimulatorScratch;
  SimTrace Trace;
  std::vector<int> OrderBuffer;
  std::vector<const BasicBlock *> BlockList;
  std::vector<std::vector<int>> OrderArena;
  FeatureMatrix Features;
  std::vector<const BasicBlock *> BatchBlocks;
  std::vector<uint32_t> BatchRowIndex;
  std::vector<uint64_t> PredScratch;
  std::vector<unsigned char> BatchIsLS;
  std::vector<uint64_t> BatchWork;
  std::vector<char> BatchDecisions;
};

} // namespace schedfilter

#endif // SCHEDFILTER_SCHED_SCHEDCONTEXT_H
