//===- sched/DependenceGraph.h - Block dependence DAG -----------*- C++ -*-===//
///
/// \file
/// Builds the dependence DAG over one basic block.  Two instructions are
/// dependent (paper §1.1) if they access the same data and at least one
/// writes it, or if at least one is a branch; in addition, Java-specific
/// hazards constrain reordering: PEIs stay ordered with respect to each
/// other and to stores (exception state must be precise), and GC
/// safepoints, thread-switch points, yield points and calls are full
/// barriers ("possible but unusual branches, which disallow reordering").
///
/// Building the DAG is the expensive part of scheduling (the paper cites it
/// as sometimes dominating scheduling time), which is exactly why the
/// induced filter refuses to even build it for blocks predicted not to
/// benefit.  The builder counts abstract work units so effort can be
/// reported deterministically alongside wall-clock time.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_SCHED_DEPENDENCEGRAPH_H
#define SCHEDFILTER_SCHED_DEPENDENCEGRAPH_H

#include "mir/BasicBlock.h"
#include "target/MachineModel.h"

#include <vector>

namespace schedfilter {

/// Why an edge exists; used by tests and the dumper.
enum class DepKind : uint8_t {
  Data,    ///< True (read-after-write) register dependence.
  Anti,    ///< Write-after-read register dependence.
  Output,  ///< Write-after-write register dependence.
  Memory,  ///< Conservative memory ordering (store/load interplay).
  Control, ///< Order w.r.t. the block terminator.
  Hazard,  ///< PEI/store ordering or full-barrier ordering.
};

/// One dependence edge From -> To with a latency weight: To may not begin
/// until Latency cycles after From begins issuing (0 = same cycle is fine,
/// order only).
struct DepEdge {
  int To;
  unsigned Latency;
  DepKind Kind;
};

/// Register bookkeeping scratch used while building one DAG.  Owned either
/// by a SchedContext (the allocation-free steady-state path: capacities
/// persist across blocks, entries are invalidated in O(1) by bumping
/// Epoch) or by the one-shot DependenceGraph constructor (a short-lived
/// local).  Indexed by virtual register number; registers are small dense
/// integers, so flat arrays replace the hash maps the one-shot path used
/// to allocate per block.
struct DagBuildScratch {
  uint64_t Epoch = 0;
  /// LastDef[R] is valid iff DefStamp[R] == Epoch.
  std::vector<uint64_t> DefStamp;
  std::vector<int> LastDef;
  /// Readers[R] holds the readers of R since its last def; the list is
  /// logically empty (and physically cleared on first touch, keeping its
  /// capacity) when ReaderStamp[R] != Epoch.
  std::vector<uint64_t> ReaderStamp;
  std::vector<std::vector<int>> Readers;
  std::vector<int> LoadsSinceStore;
  std::vector<int> SinceBarrier;
};

/// Dependence DAG for one block.  Node i is instruction i of the block.
/// Default-construct once and build() repeatedly to reuse the adjacency
/// storage across blocks (zero steady-state allocations); the build
/// results are identical to the one-shot constructor's.
class DependenceGraph {
public:
  DependenceGraph() = default;

  /// One-shot convenience: builds the DAG for \p BB under machine model
  /// \p Model with a local scratch.  Semantics of \p SuperblockMode as for
  /// build().
  DependenceGraph(const BasicBlock &BB, const MachineModel &Model,
                  bool SuperblockMode = false);

  /// (Re)builds the DAG for \p BB under \p Model, reusing this graph's
  /// adjacency storage and \p Scratch across calls.
  ///
  /// With \p SuperblockMode, interior terminators (side exits of a
  /// superblock) are permitted: nothing may move *down* across a side
  /// exit, but speculation-safe instructions appearing after it -- pure
  /// register computation and non-excepting loads, whose targets are
  /// superblock-local temporaries dead on the exit path -- may move *up*
  /// across it.  Stores, calls, hazards, system ops and other branches
  /// stay put.  Without the flag (the default, the paper's local
  /// scheduler), a terminator is expected only at the end.
  void build(const BasicBlock &BB, const MachineModel &Model,
             DagBuildScratch &Scratch, bool SuperblockMode = false);

  size_t numNodes() const { return NodeCount; }
  size_t numEdges() const { return EdgeCount; }

  const std::vector<DepEdge> &succs(int Node) const {
    return Succs[static_cast<size_t>(Node)];
  }

  /// Number of unscheduled predecessors; copied by the scheduler.
  const std::vector<int> &inDegrees() const { return InDegree; }

  /// Weighted critical-path height of node i: the longest latency-weighted
  /// dependent chain from i to the end of the block, including i's own
  /// latency.  This is the CPS tie-break key.
  long criticalPath(int Node) const {
    return Height[static_cast<size_t>(Node)];
  }

  /// True if there is an edge From -> To (any kind); O(out-degree).
  bool hasEdge(int From, int To) const;

  /// Abstract build cost: one unit per instruction scanned plus one per
  /// edge inserted.  Deterministic stand-in for DAG-build wall time.
  uint64_t workUnits() const { return Work; }

private:
  void addEdge(int From, int To, unsigned Latency, DepKind Kind);
  void computeHeights(const BasicBlock &BB, const MachineModel &Model);

  /// Outer vector never shrinks (inner edge lists keep their capacity
  /// across build() calls); NodeCount tracks the active prefix.
  std::vector<std::vector<DepEdge>> Succs;
  std::vector<int> InDegree;
  std::vector<long> Height;
  size_t NodeCount = 0;
  size_t EdgeCount = 0;
  uint64_t Work = 0;
};

} // namespace schedfilter

#endif // SCHEDFILTER_SCHED_DEPENDENCEGRAPH_H
