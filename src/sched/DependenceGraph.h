//===- sched/DependenceGraph.h - Block dependence DAG -----------*- C++ -*-===//
///
/// \file
/// Builds the dependence DAG over one basic block.  Two instructions are
/// dependent (paper §1.1) if they access the same data and at least one
/// writes it, or if at least one is a branch; in addition, Java-specific
/// hazards constrain reordering: PEIs stay ordered with respect to each
/// other and to stores (exception state must be precise), and GC
/// safepoints, thread-switch points, yield points and calls are full
/// barriers ("possible but unusual branches, which disallow reordering").
///
/// Building the DAG is the expensive part of scheduling (the paper cites it
/// as sometimes dominating scheduling time), which is exactly why the
/// induced filter refuses to even build it for blocks predicted not to
/// benefit.  The builder counts abstract work units so effort can be
/// reported deterministically alongside wall-clock time.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_SCHED_DEPENDENCEGRAPH_H
#define SCHEDFILTER_SCHED_DEPENDENCEGRAPH_H

#include "mir/BasicBlock.h"
#include "target/MachineModel.h"

#include <vector>

namespace schedfilter {

/// Why an edge exists; used by tests and the dumper.
enum class DepKind : uint8_t {
  Data,    ///< True (read-after-write) register dependence.
  Anti,    ///< Write-after-read register dependence.
  Output,  ///< Write-after-write register dependence.
  Memory,  ///< Conservative memory ordering (store/load interplay).
  Control, ///< Order w.r.t. the block terminator.
  Hazard,  ///< PEI/store ordering or full-barrier ordering.
};

/// One dependence edge From -> To with a latency weight: To may not begin
/// until Latency cycles after From begins issuing (0 = same cycle is fine,
/// order only).
struct DepEdge {
  int To;
  unsigned Latency;
  DepKind Kind;
};

/// Dependence DAG for one block.  Node i is instruction i of the block.
class DependenceGraph {
public:
  /// Builds the DAG for \p BB under machine model \p Model.
  ///
  /// With \p SuperblockMode, interior terminators (side exits of a
  /// superblock) are permitted: nothing may move *down* across a side
  /// exit, but speculation-safe instructions appearing after it -- pure
  /// register computation and non-excepting loads, whose targets are
  /// superblock-local temporaries dead on the exit path -- may move *up*
  /// across it.  Stores, calls, hazards, system ops and other branches
  /// stay put.  Without the flag (the default, the paper's local
  /// scheduler), a terminator is expected only at the end.
  DependenceGraph(const BasicBlock &BB, const MachineModel &Model,
                  bool SuperblockMode = false);

  size_t numNodes() const { return Succs.size(); }
  size_t numEdges() const { return EdgeCount; }

  const std::vector<DepEdge> &succs(int Node) const {
    return Succs[static_cast<size_t>(Node)];
  }

  /// Number of unscheduled predecessors; copied by the scheduler.
  const std::vector<int> &inDegrees() const { return InDegree; }

  /// Weighted critical-path height of node i: the longest latency-weighted
  /// dependent chain from i to the end of the block, including i's own
  /// latency.  This is the CPS tie-break key.
  long criticalPath(int Node) const {
    return Height[static_cast<size_t>(Node)];
  }

  /// True if there is an edge From -> To (any kind); O(out-degree).
  bool hasEdge(int From, int To) const;

  /// Abstract build cost: one unit per instruction scanned plus one per
  /// edge inserted.  Deterministic stand-in for DAG-build wall time.
  uint64_t workUnits() const { return Work; }

private:
  void addEdge(int From, int To, unsigned Latency, DepKind Kind);
  void computeHeights(const BasicBlock &BB, const MachineModel &Model);

  std::vector<std::vector<DepEdge>> Succs;
  std::vector<int> InDegree;
  std::vector<long> Height;
  size_t EdgeCount = 0;
  uint64_t Work = 0;
};

} // namespace schedfilter

#endif // SCHEDFILTER_SCHED_DEPENDENCEGRAPH_H
