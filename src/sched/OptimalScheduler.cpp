//===- sched/OptimalScheduler.cpp - Exhaustive small-block scheduling --------===//

#include "sched/OptimalScheduler.h"

#include "sched/ListScheduler.h"

#include <algorithm>
#include <cassert>

using namespace schedfilter;

namespace {

/// DFS state for the branch-and-bound enumeration of topological orders.
struct Search {
  const BasicBlock &BB;
  const MachineModel &Model;
  const DependenceGraph &Dag;
  BlockSimulator Sim;
  uint64_t MaxLeaves;

  std::vector<int> Current;
  std::vector<int> Pending; // remaining predecessor counts
  std::vector<int> Best;
  uint64_t BestCycles;
  uint64_t Leaves = 0;
  uint64_t Nodes = 0;
  uint64_t MaxNodes;
  bool Budgeted = false;

  Search(const BasicBlock &BB, const MachineModel &Model,
         const DependenceGraph &Dag, uint64_t MaxLeaves, uint64_t SeedCost,
         std::vector<int> SeedOrder)
      : BB(BB), Model(Model), Dag(Dag), Sim(Model), MaxLeaves(MaxLeaves),
        Pending(Dag.inDegrees()), Best(std::move(SeedOrder)),
        BestCycles(SeedCost),
        MaxNodes(std::max<uint64_t>(10000, MaxLeaves * 16)) {}

  /// Simulated cost of the current partial order, used as an admissible
  /// pruning bound (costs only grow as instructions are appended, by the
  /// simulator's monotonicity).
  uint64_t prefixCost() const {
    BasicBlock Prefix("prefix");
    for (int I : Current)
      Prefix.append(BB[static_cast<size_t>(I)]);
    return Sim.simulate(Prefix);
  }

  void dfs() {
    if (Budgeted)
      return;
    // Bound internal work too: heavy pruning can keep the search leafless
    // while it still walks an exponential frontier.
    if (++Nodes > MaxNodes) {
      Budgeted = true;
      return;
    }
    if (Current.size() == BB.size()) {
      ++Leaves;
      uint64_t Cost = Sim.simulate(BB, Current);
      if (Cost < BestCycles) {
        BestCycles = Cost;
        Best = Current;
      }
      if (Leaves >= MaxLeaves)
        Budgeted = true;
      return;
    }

    // Prune: a partial order already as expensive as the best complete
    // one cannot improve (appending never reduces simulated cost).
    if (!Current.empty() && prefixCost() >= BestCycles)
      return;

    for (int I = 0, E = static_cast<int>(BB.size()); I != E; ++I) {
      if (Pending[static_cast<size_t>(I)] != 0)
        continue;
      bool Scheduled = false;
      for (int C : Current)
        if (C == I) {
          Scheduled = true;
          break;
        }
      if (Scheduled)
        continue;

      Current.push_back(I);
      for (const DepEdge &Edge : Dag.succs(I))
        --Pending[static_cast<size_t>(Edge.To)];
      dfs();
      for (const DepEdge &Edge : Dag.succs(I))
        ++Pending[static_cast<size_t>(Edge.To)];
      Current.pop_back();
      if (Budgeted)
        return;
    }
  }
};

} // namespace

OptimalResult schedfilter::findOptimalSchedule(const BasicBlock &BB,
                                               const MachineModel &Model,
                                               uint64_t MaxLeaves) {
  OptimalResult R;
  if (BB.empty())
    return R;

  DependenceGraph Dag(BB, Model);
  // Seed the bound with the CPS heuristic's schedule: pruning then cuts
  // everything the heuristic already beats.
  ListScheduler Heuristic(Model);
  ScheduleResult Seed = Heuristic.schedule(BB, Dag);
  BlockSimulator Sim(Model);
  uint64_t SeedCost = Sim.simulate(BB, Seed.Order);

  Search S(BB, Model, Dag, MaxLeaves, SeedCost, Seed.Order);
  S.dfs();

  R.Order = S.Best;
  R.Cycles = S.BestCycles;
  R.Exact = !S.Budgeted;
  R.LeavesExplored = S.Leaves;
  assert(R.Order.size() == BB.size() && "search lost the seed order");
  return R;
}
