//===- sched/ScheduleVerifier.h - Semantic-equivalence check ----*- C++ -*-===//
///
/// \file
/// Verifies that a schedule is a semantically equivalent permutation of the
/// original block: per the paper, "permutations are semantically equivalent
/// if all pairs of dependent instructions occur in the same order in both
/// permutations."  Used heavily by the property tests.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_SCHED_SCHEDULEVERIFIER_H
#define SCHEDFILTER_SCHED_SCHEDULEVERIFIER_H

#include "sched/DependenceGraph.h"

#include <string>
#include <vector>

namespace schedfilter {

/// Outcome of schedule verification.
struct ScheduleVerifyResult {
  bool Ok = true;
  std::string Message;
};

/// Checks that \p Order is a permutation of [0, n) that respects every edge
/// of \p Dag.
ScheduleVerifyResult verifySchedule(const DependenceGraph &Dag,
                                    const std::vector<int> &Order);

/// Convenience overload that builds the DAG itself.
ScheduleVerifyResult verifySchedule(const BasicBlock &BB,
                                    const MachineModel &Model,
                                    const std::vector<int> &Order);

} // namespace schedfilter

#endif // SCHEDFILTER_SCHED_SCHEDULEVERIFIER_H
