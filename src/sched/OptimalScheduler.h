//===- sched/OptimalScheduler.h - Exhaustive small-block scheduling -*- C++ -*-===//
///
/// \file
/// Branch-and-bound search for a *simulator-optimal* instruction order of
/// a (small) basic block: the minimum-cycle topological order of the
/// dependence DAG under the block timing simulator.
///
/// Optimal scheduling is NP-complete in general (the paper cites Garey &
/// Johnson), but blocks of ten-or-so instructions are exhaustively
/// searchable.  The companion "learning how to schedule" line of work the
/// paper builds on (Moss et al., NIPS'97) trained preference functions
/// from exactly such small-block optimal schedules; PreferenceLearner
/// reproduces that, and the tests use this search as ground truth for the
/// CPS heuristic's quality.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_SCHED_OPTIMALSCHEDULER_H
#define SCHEDFILTER_SCHED_OPTIMALSCHEDULER_H

#include "sched/DependenceGraph.h"
#include "sim/BlockSimulator.h"

namespace schedfilter {

/// Result of the exhaustive search.
struct OptimalResult {
  /// A minimum-cost order (the lexicographically-first found).
  std::vector<int> Order;
  /// Its simulated cost in cycles.
  uint64_t Cycles = 0;
  /// True when the search space was fully explored (or pruned soundly);
  /// false when the leaf budget was exhausted, making Cycles an upper
  /// bound on the true optimum.
  bool Exact = true;
  /// Number of complete orders evaluated.
  uint64_t LeavesExplored = 0;
};

/// Searches for the optimal order of \p BB under \p Model.  \p MaxLeaves
/// bounds the number of complete schedules evaluated; blocks up to ~10-12
/// instructions are typically exact well within the default budget.
OptimalResult findOptimalSchedule(const BasicBlock &BB,
                                  const MachineModel &Model,
                                  uint64_t MaxLeaves = 200000);

} // namespace schedfilter

#endif // SCHEDFILTER_SCHED_OPTIMALSCHEDULER_H
