//===- sched/ListScheduler.h - Critical-path list scheduling ----*- C++ -*-===//
///
/// \file
/// The paper's list scheduler (§1.1): starting from an empty schedule,
/// repeatedly append a ready instruction; under the critical path
/// scheduling (CPS) model, prefer the ready instruction that can start
/// soonest, and break ties by the longest weighted critical path to the end
/// of the block.  Ties beyond that resolve to original program order so the
/// result is deterministic.
///
/// The scheduler reports abstract work units (DAG build + priority-queue
/// traffic) so that "scheduling effort" can be measured both as wall time
/// and as a deterministic count.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_SCHED_LISTSCHEDULER_H
#define SCHEDFILTER_SCHED_LISTSCHEDULER_H

#include "sched/DependenceGraph.h"

#include <cstdint>
#include <vector>

namespace schedfilter {

class SchedContext;

/// Result of scheduling one block.
struct ScheduleResult {
  /// Order[i] is the original index of the i-th instruction in the new
  /// schedule; a permutation of [0, n).
  std::vector<int> Order;
  /// Deterministic effort: DAG work plus scheduler loop work.
  uint64_t WorkUnits = 0;
};

/// Ready instruction that can start at the current clock; ordered by a
/// primary and secondary priority key (larger is better), then original
/// program order.  std::push_heap/pop_heap over a reused vector realize
/// exactly the max-priority-queue the one-shot path used, so the pick
/// sequence is identical (the key is a total order: indices are unique).
struct ReadyNowEntry {
  long Primary;
  long Secondary;
  int Index;
  bool operator<(const ReadyNowEntry &O) const {
    if (Primary != O.Primary)
      return Primary < O.Primary; // max-heap on the priority key
    if (Secondary != O.Secondary)
      return Secondary < O.Secondary;
    return Index > O.Index; // then min index
  }
};

/// Ready instruction whose operands are not available yet; ordered by
/// earliest start time ("the instruction that can start soonest").
struct ReadyFutureEntry {
  long EarliestStart;
  int Index;
  bool operator>(const ReadyFutureEntry &O) const {
    if (EarliestStart != O.EarliestStart)
      return EarliestStart > O.EarliestStart;
    return Index > O.Index;
  }
};

/// Per-block scheduling scratch: ready queues, the in-degree scoreboard
/// and the earliest-start table.  Owned by a SchedContext in the reused
/// path (capacities persist across blocks) or created locally by the
/// one-shot entry points.
struct ListSchedulerScratch {
  std::vector<long> EarliestStart;
  std::vector<int> Pending;
  std::vector<ReadyNowEntry> Now;       ///< max-heap via std::push_heap
  std::vector<ReadyFutureEntry> Future; ///< min-heap via std::greater
};

/// Tie-breaking priority used among instructions that can start soonest.
/// The paper notes its filtering technique "applies to any competent
/// scheduler"; providing a second priority function lets the ablation
/// benches test that claim (train labels with one scheduler, deploy the
/// filter over another).
enum class SchedPriority {
  /// The paper's CPS model: longest weighted critical path first.
  CriticalPath,
  /// Gibbons/Muchnick-flavoured alternative: most dependence successors
  /// first (unblock the most work), then critical path.
  Fanout,
};

/// Critical-path list scheduler over basic blocks.
class ListScheduler {
public:
  explicit ListScheduler(const MachineModel &Model,
                         SchedPriority Priority = SchedPriority::CriticalPath)
      : Model(Model), Priority(Priority) {}

  /// Schedules \p BB and returns the chosen instruction order.  Always
  /// legal: every dependence-graph edge is respected.
  ScheduleResult schedule(const BasicBlock &BB) const;

  /// Schedules using a caller-provided, already-built DAG (lets callers
  /// account DAG-build cost separately).
  ScheduleResult schedule(const BasicBlock &BB,
                          const DependenceGraph &Dag) const;

  /// Allocation-free steady-state path: builds the DAG into \p Ctx and
  /// schedules with \p Ctx scratch, writing the order into \p OrderOut
  /// (cleared first; its capacity is reused).  Returns the total work
  /// units (DAG build + scheduling), identical to schedule(BB).WorkUnits,
  /// and produces the identical order.
  uint64_t schedule(const BasicBlock &BB, SchedContext &Ctx,
                    std::vector<int> &OrderOut) const;

  /// Core loop over an already-built DAG with caller-owned scratch;
  /// returns the scheduling (not DAG) work units.
  uint64_t scheduleInto(const BasicBlock &BB, const DependenceGraph &Dag,
                        ListSchedulerScratch &Scratch,
                        std::vector<int> &OrderOut) const;

  /// The identity schedule, i.e. "no scheduling" (NS).  Provided so that
  /// policies can be written uniformly.
  static ScheduleResult identity(const BasicBlock &BB);

private:
  const MachineModel &Model;
  SchedPriority Priority;
};

} // namespace schedfilter

#endif // SCHEDFILTER_SCHED_LISTSCHEDULER_H
