//===- sched/ListScheduler.h - Critical-path list scheduling ----*- C++ -*-===//
///
/// \file
/// The paper's list scheduler (§1.1): starting from an empty schedule,
/// repeatedly append a ready instruction; under the critical path
/// scheduling (CPS) model, prefer the ready instruction that can start
/// soonest, and break ties by the longest weighted critical path to the end
/// of the block.  Ties beyond that resolve to original program order so the
/// result is deterministic.
///
/// The scheduler reports abstract work units (DAG build + priority-queue
/// traffic) so that "scheduling effort" can be measured both as wall time
/// and as a deterministic count.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_SCHED_LISTSCHEDULER_H
#define SCHEDFILTER_SCHED_LISTSCHEDULER_H

#include "sched/DependenceGraph.h"

#include <cstdint>
#include <vector>

namespace schedfilter {

/// Result of scheduling one block.
struct ScheduleResult {
  /// Order[i] is the original index of the i-th instruction in the new
  /// schedule; a permutation of [0, n).
  std::vector<int> Order;
  /// Deterministic effort: DAG work plus scheduler loop work.
  uint64_t WorkUnits = 0;
};

/// Tie-breaking priority used among instructions that can start soonest.
/// The paper notes its filtering technique "applies to any competent
/// scheduler"; providing a second priority function lets the ablation
/// benches test that claim (train labels with one scheduler, deploy the
/// filter over another).
enum class SchedPriority {
  /// The paper's CPS model: longest weighted critical path first.
  CriticalPath,
  /// Gibbons/Muchnick-flavoured alternative: most dependence successors
  /// first (unblock the most work), then critical path.
  Fanout,
};

/// Critical-path list scheduler over basic blocks.
class ListScheduler {
public:
  explicit ListScheduler(const MachineModel &Model,
                         SchedPriority Priority = SchedPriority::CriticalPath)
      : Model(Model), Priority(Priority) {}

  /// Schedules \p BB and returns the chosen instruction order.  Always
  /// legal: every dependence-graph edge is respected.
  ScheduleResult schedule(const BasicBlock &BB) const;

  /// Schedules using a caller-provided, already-built DAG (lets callers
  /// account DAG-build cost separately).
  ScheduleResult schedule(const BasicBlock &BB,
                          const DependenceGraph &Dag) const;

  /// The identity schedule, i.e. "no scheduling" (NS).  Provided so that
  /// policies can be written uniformly.
  static ScheduleResult identity(const BasicBlock &BB);

private:
  const MachineModel &Model;
  SchedPriority Priority;
};

} // namespace schedfilter

#endif // SCHEDFILTER_SCHED_LISTSCHEDULER_H
