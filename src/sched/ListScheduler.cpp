//===- sched/ListScheduler.cpp - Critical-path list scheduling -------------===//

#include "sched/ListScheduler.h"

#include <algorithm>
#include <cassert>
#include <queue>

using namespace schedfilter;

namespace {

/// Ready instruction that can start at the current clock; ordered by a
/// primary and secondary priority key (larger is better), then original
/// program order.
struct NowEntry {
  long Primary;
  long Secondary;
  int Index;
  bool operator<(const NowEntry &O) const {
    if (Primary != O.Primary)
      return Primary < O.Primary; // max-heap on the priority key
    if (Secondary != O.Secondary)
      return Secondary < O.Secondary;
    return Index > O.Index; // then min index
  }
};

/// Ready instruction whose operands are not available yet; ordered by
/// earliest start time ("the instruction that can start soonest").
struct FutureEntry {
  long EarliestStart;
  int Index;
  bool operator>(const FutureEntry &O) const {
    if (EarliestStart != O.EarliestStart)
      return EarliestStart > O.EarliestStart;
    return Index > O.Index;
  }
};

} // namespace

ScheduleResult ListScheduler::identity(const BasicBlock &BB) {
  ScheduleResult R;
  R.Order.resize(BB.size());
  for (size_t I = 0; I != BB.size(); ++I)
    R.Order[I] = static_cast<int>(I);
  return R;
}

ScheduleResult ListScheduler::schedule(const BasicBlock &BB) const {
  DependenceGraph Dag(BB, Model);
  ScheduleResult R = schedule(BB, Dag);
  R.WorkUnits += Dag.workUnits();
  return R;
}

ScheduleResult ListScheduler::schedule(const BasicBlock &BB,
                                       const DependenceGraph &Dag) const {
  int N = static_cast<int>(BB.size());
  ScheduleResult R;
  R.Order.reserve(static_cast<size_t>(N));

  // Cycle-driven CPS: among instructions that can start at the current
  // clock, pick the one with the longest weighted critical path; when none
  // can, advance the clock to the next earliest start time.  This realizes
  // the paper's "can start soonest, ties by critical path" rule with
  // O(log n) per decision.
  std::vector<long> EarliestStart(static_cast<size_t>(N), 0);
  std::vector<int> Pending = Dag.inDegrees();
  std::priority_queue<NowEntry> Now;
  std::priority_queue<FutureEntry, std::vector<FutureEntry>,
                      std::greater<FutureEntry>>
      Future;

  for (int I = 0; I != N; ++I)
    if (Pending[static_cast<size_t>(I)] == 0)
      Future.push({0, I});

  long Clock = 0;
  while (!Now.empty() || !Future.empty()) {
    if (Now.empty()) {
      Clock = std::max(Clock, Future.top().EarliestStart);
      ++R.WorkUnits;
    }
    // Promote everything that can start at (or before) the clock.
    while (!Future.empty() && Future.top().EarliestStart <= Clock) {
      int Idx = Future.top().Index;
      Future.pop();
      long Cp = Dag.criticalPath(Idx);
      long Fanout = static_cast<long>(Dag.succs(Idx).size());
      if (Priority == SchedPriority::CriticalPath)
        Now.push({Cp, Fanout, Idx});
      else
        Now.push({Fanout, Cp, Idx});
      R.WorkUnits += 2; // one pop + one push
    }
    if (Now.empty())
      continue; // clock advanced; promote again

    int Picked = Now.top().Index;
    Now.pop();
    ++R.WorkUnits;
    R.Order.push_back(Picked);

    for (const DepEdge &E : Dag.succs(Picked)) {
      long Avail = Clock + static_cast<long>(E.Latency);
      size_t To = static_cast<size_t>(E.To);
      if (Avail > EarliestStart[To])
        EarliestStart[To] = Avail;
      ++R.WorkUnits;
      if (--Pending[To] == 0)
        Future.push({EarliestStart[To], E.To});
    }
  }

  assert(R.Order.size() == static_cast<size_t>(N) &&
         "cycle in dependence graph: not all instructions were scheduled");
  return R;
}
