//===- sched/ListScheduler.cpp - Critical-path list scheduling -------------===//

#include "sched/ListScheduler.h"

#include "sched/SchedContext.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace schedfilter;

ScheduleResult ListScheduler::identity(const BasicBlock &BB) {
  ScheduleResult R;
  R.Order.resize(BB.size());
  for (size_t I = 0; I != BB.size(); ++I)
    R.Order[I] = static_cast<int>(I);
  return R;
}

ScheduleResult ListScheduler::schedule(const BasicBlock &BB) const {
  DagBuildScratch DagScratch;
  DependenceGraph Dag;
  Dag.build(BB, Model, DagScratch);
  ScheduleResult R = schedule(BB, Dag);
  R.WorkUnits += Dag.workUnits();
  return R;
}

ScheduleResult ListScheduler::schedule(const BasicBlock &BB,
                                       const DependenceGraph &Dag) const {
  ScheduleResult R;
  ListSchedulerScratch Scratch;
  R.WorkUnits = scheduleInto(BB, Dag, Scratch, R.Order);
  return R;
}

uint64_t ListScheduler::schedule(const BasicBlock &BB, SchedContext &Ctx,
                                 std::vector<int> &OrderOut) const {
  DependenceGraph &Dag = Ctx.dag();
  Dag.build(BB, Model, Ctx.dagScratch());
  return scheduleInto(BB, Dag, Ctx.schedulerScratch(), OrderOut) +
         Dag.workUnits();
}

uint64_t ListScheduler::scheduleInto(const BasicBlock &BB,
                                     const DependenceGraph &Dag,
                                     ListSchedulerScratch &S,
                                     std::vector<int> &OrderOut) const {
  int N = static_cast<int>(BB.size());
  uint64_t WorkUnits = 0;
  OrderOut.clear();
  OrderOut.reserve(static_cast<size_t>(N));

  // Cycle-driven CPS: among instructions that can start at the current
  // clock, pick the one with the longest weighted critical path; when none
  // can, advance the clock to the next earliest start time.  This realizes
  // the paper's "can start soonest, ties by critical path" rule with
  // O(log n) per decision.
  S.EarliestStart.assign(static_cast<size_t>(N), 0);
  const std::vector<int> &InDeg = Dag.inDegrees();
  S.Pending.assign(InDeg.begin(), InDeg.end());
  std::vector<ReadyNowEntry> &Now = S.Now;
  std::vector<ReadyFutureEntry> &Future = S.Future;
  Now.clear();
  Future.clear();
  const std::greater<ReadyFutureEntry> FutureLess; // min-heap comparator

  for (int I = 0; I != N; ++I)
    if (S.Pending[static_cast<size_t>(I)] == 0) {
      Future.push_back({0, I});
      std::push_heap(Future.begin(), Future.end(), FutureLess);
    }

  long Clock = 0;
  while (!Now.empty() || !Future.empty()) {
    if (Now.empty()) {
      Clock = std::max(Clock, Future.front().EarliestStart);
      ++WorkUnits;
    }
    // Promote everything that can start at (or before) the clock.
    while (!Future.empty() && Future.front().EarliestStart <= Clock) {
      int Idx = Future.front().Index;
      std::pop_heap(Future.begin(), Future.end(), FutureLess);
      Future.pop_back();
      long Cp = Dag.criticalPath(Idx);
      long Fanout = static_cast<long>(Dag.succs(Idx).size());
      if (Priority == SchedPriority::CriticalPath)
        Now.push_back({Cp, Fanout, Idx});
      else
        Now.push_back({Fanout, Cp, Idx});
      std::push_heap(Now.begin(), Now.end());
      WorkUnits += 2; // one pop + one push
    }
    if (Now.empty())
      continue; // clock advanced; promote again

    int Picked = Now.front().Index;
    std::pop_heap(Now.begin(), Now.end());
    Now.pop_back();
    ++WorkUnits;
    OrderOut.push_back(Picked);

    for (const DepEdge &E : Dag.succs(Picked)) {
      long Avail = Clock + static_cast<long>(E.Latency);
      size_t To = static_cast<size_t>(E.To);
      if (Avail > S.EarliestStart[To])
        S.EarliestStart[To] = Avail;
      ++WorkUnits;
      if (--S.Pending[To] == 0) {
        Future.push_back({S.EarliestStart[To], E.To});
        std::push_heap(Future.begin(), Future.end(), FutureLess);
      }
    }
  }

  assert(OrderOut.size() == static_cast<size_t>(N) &&
         "cycle in dependence graph: not all instructions were scheduled");
  return WorkUnits;
}
