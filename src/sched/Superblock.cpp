//===- sched/Superblock.cpp - Profile-guided superblock formation -----------===//

#include "sched/Superblock.h"

#include <cassert>

using namespace schedfilter;

namespace {

/// Appends \p Src to \p Dst, renaming Src's block-local temporaries
/// (registers >= TempBase) by \p Offset.
void appendRenamed(BasicBlock &Dst, const BasicBlock &Src, Reg TempBase,
                   Reg Offset) {
  auto Rename = [&](std::vector<Reg> Regs) {
    for (Reg &R : Regs)
      if (R >= TempBase)
        R = static_cast<Reg>(R + Offset);
    return Regs;
  };
  for (const Instruction &I : Src) {
    Instruction Renamed(I.getOpcode(), Rename(I.defs()), Rename(I.uses()));
    Renamed.addAttrs(I.categories());
    Dst.append(std::move(Renamed));
  }
}

/// True when a trace that already contains \p Prev should continue into
/// \p Next according to the profile.
bool shouldChain(const BasicBlock &Prev, const BasicBlock &Next,
                 const SuperblockOptions &Opts) {
  if (Prev.empty() || Next.empty())
    return false;
  // A trace cannot continue past a return (no fallthrough).
  const Instruction &Last = Prev[Prev.size() - 1];
  if (Last.isTerminator() && Last.getOpcode() == Opcode::Ret)
    return false;
  double PrevExec = static_cast<double>(Prev.getExecCount());
  double NextExec = static_cast<double>(Next.getExecCount());
  if (PrevExec <= 0.0)
    return false;
  return NextExec >= Opts.MinContinuationRatio * PrevExec &&
         NextExec <= PrevExec / Opts.MinContinuationRatio;
}

} // namespace

std::vector<BasicBlock>
schedfilter::formSuperblocks(const Method &M, SuperblockOptions Opts) {
  std::vector<BasicBlock> Out;
  size_t B = 0;
  while (B != M.size()) {
    const BasicBlock &Entry = M[B];
    BasicBlock Super(M.getName() + ".sb" + std::to_string(Out.size()),
                     Entry.getExecCount());
    appendRenamed(Super, Entry, Opts.TempBase, /*Offset=*/0);
    size_t Chained = 1;
    while (B + Chained != M.size() && Chained < Opts.MaxBlocks &&
           shouldChain(M[B + Chained - 1], M[B + Chained], Opts)) {
      appendRenamed(Super, M[B + Chained], Opts.TempBase,
                    static_cast<Reg>(Chained * Opts.RenameStride));
      ++Chained;
    }
    B += Chained;
    Out.push_back(std::move(Super));
  }
  return Out;
}

ScheduleResult
schedfilter::scheduleSuperblock(const BasicBlock &Superblock,
                                const MachineModel &Model) {
  DependenceGraph Dag(Superblock, Model, /*SuperblockMode=*/true);
  ListScheduler Scheduler(Model);
  ScheduleResult R = Scheduler.schedule(Superblock, Dag);
  R.WorkUnits += Dag.workUnits();
  return R;
}
