//===- sched/ScheduleVerifier.cpp - Semantic-equivalence check -------------===//

#include "sched/ScheduleVerifier.h"

using namespace schedfilter;

ScheduleVerifyResult
schedfilter::verifySchedule(const DependenceGraph &Dag,
                            const std::vector<int> &Order) {
  size_t N = Dag.numNodes();
  if (Order.size() != N)
    return {false, "order has " + std::to_string(Order.size()) +
                       " entries for " + std::to_string(N) + " instructions"};

  std::vector<int> Position(N, -1);
  for (size_t Pos = 0; Pos != Order.size(); ++Pos) {
    int Idx = Order[Pos];
    if (Idx < 0 || static_cast<size_t>(Idx) >= N)
      return {false, "order entry " + std::to_string(Idx) + " out of range"};
    if (Position[static_cast<size_t>(Idx)] != -1)
      return {false,
              "instruction " + std::to_string(Idx) + " appears twice"};
    Position[static_cast<size_t>(Idx)] = static_cast<int>(Pos);
  }

  for (size_t From = 0; From != N; ++From)
    for (const DepEdge &E : Dag.succs(static_cast<int>(From)))
      if (Position[From] >= Position[static_cast<size_t>(E.To)])
        return {false, "dependence " + std::to_string(From) + " -> " +
                           std::to_string(E.To) + " violated"};
  return {true, ""};
}

ScheduleVerifyResult
schedfilter::verifySchedule(const BasicBlock &BB, const MachineModel &Model,
                            const std::vector<int> &Order) {
  DependenceGraph Dag(BB, Model);
  return verifySchedule(Dag, Order);
}
