//===- ml/Metrics.cpp - Classifier evaluation -------------------------------===//

#include "ml/Metrics.h"

using namespace schedfilter;

double ConfusionMatrix::errorRate() const {
  size_t N = total();
  if (N == 0)
    return 0.0;
  return static_cast<double>(errors()) / static_cast<double>(N);
}

double ConfusionMatrix::precision() const {
  size_t Denom = TruePos + FalsePos;
  if (Denom == 0)
    return 0.0;
  return static_cast<double>(TruePos) / static_cast<double>(Denom);
}

double ConfusionMatrix::recall() const {
  size_t Denom = TruePos + FalseNeg;
  if (Denom == 0)
    return 0.0;
  return static_cast<double>(TruePos) / static_cast<double>(Denom);
}

ConfusionMatrix schedfilter::evaluate(const RuleSet &RS, const Dataset &Data) {
  ConfusionMatrix M;
  for (const Instance &I : Data) {
    Label Pred = RS.predict(I.X);
    if (I.Y == Label::LS) {
      if (Pred == Label::LS)
        ++M.TruePos;
      else
        ++M.FalseNeg;
    } else {
      if (Pred == Label::LS)
        ++M.FalsePos;
      else
        ++M.TrueNeg;
    }
  }
  return M;
}

double schedfilter::errorRatePercent(const RuleSet &RS, const Dataset &Data) {
  return 100.0 * evaluate(RS, Data).errorRate();
}
