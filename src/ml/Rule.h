//===- ml/Rule.h - If-then rules over block features -------------*- C++ -*-===//
///
/// \file
/// The hypothesis language of the induced filters: ordered lists of
/// if-then rules whose antecedents are conjunctions of single-feature
/// threshold tests (feature <= v or feature >= v), exactly the form RIPPER
/// induces over numeric attributes and the form shown in the paper's
/// Figure 4.  A RuleSet predicts the class of the first rule whose
/// antecedent matches, falling back to a default class.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_ML_RULE_H
#define SCHEDFILTER_ML_RULE_H

#include "ml/Dataset.h"

#include <string>
#include <vector>

namespace schedfilter {

/// One antecedent test: X[Feature] <= Threshold or X[Feature] >= Threshold.
struct Condition {
  unsigned Feature = 0;
  bool IsLessEqual = true;
  double Threshold = 0.0;

  bool matches(const FeatureVector &X) const {
    return IsLessEqual ? X[Feature] <= Threshold : X[Feature] >= Threshold;
  }

  std::string toString() const;
};

/// A conjunction of conditions concluding a class.  Also carries training
/// coverage counts (correct/incorrect) for Figure 4-style printing.
struct Rule {
  std::vector<Condition> Conditions;
  Label Conclusion = Label::LS;
  /// Training instances matched by this rule (claimed first by it) whose
  /// label equals / differs from the conclusion; filled by the learner.
  size_t NumCorrect = 0;
  size_t NumIncorrect = 0;

  bool matches(const FeatureVector &X) const {
    for (const Condition &C : Conditions)
      if (!C.matches(X))
        return false;
    return true;
  }

  size_t size() const { return Conditions.size(); }

  /// Renders e.g. "( 924/ 12) list :- bbLen >= 7, calls <= 0.0857".
  std::string toString() const;
};

/// An ordered rule list with a default class.
class RuleSet {
public:
  explicit RuleSet(Label DefaultClass = Label::NS)
      : DefaultClass(DefaultClass) {}

  void addRule(Rule R) { Rules.push_back(std::move(R)); }

  Label getDefaultClass() const { return DefaultClass; }
  void setDefaultClass(Label L) { DefaultClass = L; }

  const std::vector<Rule> &rules() const { return Rules; }
  std::vector<Rule> &rules() { return Rules; }
  size_t size() const { return Rules.size(); }

  /// Classifies \p X: the conclusion of the first matching rule, or the
  /// default class.
  Label predict(const FeatureVector &X) const {
    for (const Rule &R : Rules)
      if (R.matches(X))
        return R.Conclusion;
    return DefaultClass;
  }

  /// Deterministic work-unit cost of one prediction: conditions actually
  /// evaluated (comparable to scheduler work units).
  uint64_t predictionWork(const FeatureVector &X) const;

  /// Sound O(1) rejection gate: the smallest block length any rule can
  /// match.  Every rule's conditions imply a lower bound on bbLen (0 when
  /// a rule has no "bbLen >= v" condition); the gate is the minimum over
  /// rules.  A block shorter than the gate is guaranteed to classify as
  /// the default class without evaluating any rule -- the production
  /// fast path for the sea of trivial blocks.
  double minMatchableBBLen() const;

  /// Total number of conditions across all rules.
  size_t totalConditions() const;

  /// Recomputes each rule's NumCorrect/NumIncorrect over \p Data with
  /// first-match-claims semantics, and counts the default rule's coverage
  /// into \p DefaultCorrect / \p DefaultIncorrect.
  void annotateCoverage(const Dataset &Data, size_t &DefaultCorrect,
                        size_t &DefaultIncorrect);

  /// Multi-line Figure 4-style rendering, including the default rule line.
  std::string toString() const;

private:
  Label DefaultClass;
  std::vector<Rule> Rules;
};

} // namespace schedfilter

#endif // SCHEDFILTER_ML_RULE_H
